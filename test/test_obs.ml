(* Tests for the zero-dependency observability layer (lib/obs):
   per-domain metric shards merged deterministically on read, the
   bounded trace ring, and the JSON codec the exporters share. *)

module Json = Avm_obs.Json
module Metrics = Avm_obs.Metrics
module Trace = Avm_obs.Trace

let reset () =
  Metrics.reset ();
  Trace.clear ()

(* --- json codec -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 1.5);
        ("string", Json.String "with \"quotes\" and \n control \x01 bytes");
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  let text = Json.to_string j in
  Alcotest.(check bool) "compact roundtrip" true (Json.parse text = j);
  let pretty = Json.to_string ~indent:2 j in
  Alcotest.(check bool) "pretty roundtrip" true (Json.parse pretty = j);
  (* non-finite floats degrade to null rather than emitting invalid JSON *)
  (match Json.parse (Json.to_string (Json.Float Float.nan)) with
  | Json.Null -> ()
  | _ -> Alcotest.fail "nan must serialize as null");
  Alcotest.(check bool) "garbage rejected" true
    (match Json.parse "{\"a\": }" with
    | _ -> false
    | exception Json.Parse_error _ -> true);
  Alcotest.(check bool) "trailing garbage rejected" true
    (match Json.parse "1 2" with
    | _ -> false
    | exception Json.Parse_error _ -> true)

(* --- metrics ----------------------------------------------------------------- *)

let test_counters_and_gauges () =
  reset ();
  Metrics.incr "c";
  Metrics.incr ~by:4 "c";
  Metrics.set "g" 2.5;
  Metrics.set "g" 7.25;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter summed" 5 (Metrics.counter snap "c");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter snap "nope");
  Alcotest.(check (list (pair string (float 0.0)))) "last gauge write wins"
    [ ("g", 7.25) ] snap.Metrics.gauges;
  Metrics.reset ();
  Alcotest.(check int) "reset clears" 0 (Metrics.counter (Metrics.snapshot ()) "c")

let test_histogram_percentiles () =
  reset ();
  (* 1..100, shuffled: order must not matter to the summary. *)
  let xs = List.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  List.iter (fun x -> Metrics.observe "h" x) xs;
  let snap = Metrics.snapshot () in
  match List.assoc_opt "h" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 100 h.Metrics.count;
    Alcotest.(check (float 1e-9)) "min" 1.0 h.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 h.Metrics.max;
    Alcotest.(check (float 1e-9)) "total" 5050.0 h.Metrics.total;
    Alcotest.(check (float 1e-9)) "mean" 50.5 h.Metrics.mean;
    Alcotest.(check (float 1e-9)) "p50" 50.0 h.Metrics.p50;
    Alcotest.(check (float 1e-9)) "p90" 90.0 h.Metrics.p90;
    Alcotest.(check (float 1e-9)) "p99" 99.0 h.Metrics.p99

(* Worker domains write to their own shards lock-free; the snapshot
   merges them. Whatever the interleaving, the merged result must be
   the same as a single-domain run recording the same values. *)
let test_shard_merge_determinism () =
  reset ();
  let jobs = 4 in
  let per_worker = 250 in
  Avm_util.Domain_pool.with_pool ~jobs (fun pool ->
      ignore
        (Avm_util.Domain_pool.run pool
           (List.init jobs (fun w ->
                fun () ->
                 for i = 1 to per_worker do
                   Metrics.incr "shard.counter";
                   Metrics.observe "shard.histo" (float_of_int (((w * per_worker) + i) mod 97))
                 done))));
  let parallel = Metrics.snapshot () in
  Metrics.reset ();
  for w = 0 to jobs - 1 do
    for i = 1 to per_worker do
      Metrics.incr "shard.counter";
      Metrics.observe "shard.histo" (float_of_int (((w * per_worker) + i) mod 97))
    done
  done;
  let serial = Metrics.snapshot () in
  Alcotest.(check int) "all writes counted" (jobs * per_worker)
    (Metrics.counter parallel "shard.counter");
  Alcotest.(check bool) "merged snapshot equals single-domain run" true
    (parallel.Metrics.counters = serial.Metrics.counters
    && parallel.Metrics.histograms = serial.Metrics.histograms)

let test_time_records_duration () =
  reset ();
  let r = Metrics.time "timed" (fun () -> 41 + 1) in
  Alcotest.(check int) "returns result" 42 r;
  let snap = Metrics.snapshot () in
  match List.assoc_opt "timed" snap.Metrics.histograms with
  | None -> Alcotest.fail "no duration recorded"
  | Some h -> Alcotest.(check int) "one sample" 1 h.Metrics.count

(* --- tracing ----------------------------------------------------------------- *)

let test_span_nesting () =
  reset ();
  let r =
    Trace.with_span ~name:"outer" (fun () ->
        Trace.with_span ~name:"inner" ~attrs:[ ("k", "v") ] (fun () -> 7))
  in
  Alcotest.(check int) "result" 7 r;
  let spans = Trace.spans () in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let find name = List.find (fun (s : Trace.span) -> s.Trace.name = name) spans in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer at depth 0" 0 outer.Trace.depth;
  Alcotest.(check int) "inner at depth 1" 1 inner.Trace.depth;
  Alcotest.(check bool) "inner contained" true (inner.Trace.dur_us <= outer.Trace.dur_us);
  Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ] inner.Trace.attrs

let test_span_depth_restored_on_exception () =
  reset ();
  (try Trace.with_span ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
  Trace.with_span ~name:"after" ignore;
  let after = List.find (fun (s : Trace.span) -> s.Trace.name = "after") (Trace.spans ()) in
  Alcotest.(check int) "depth back to 0" 0 after.Trace.depth

let test_ring_bound () =
  reset ();
  Trace.set_capacity 8;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity 4096)
    (fun () ->
      for i = 1 to 20 do
        Trace.with_span ~name:(Printf.sprintf "s%d" i) ignore
      done;
      let spans = Trace.spans () in
      Alcotest.(check int) "ring keeps capacity" 8 (List.length spans);
      (* the survivors are the most recent spans, in order *)
      Alcotest.(check (list string)) "most recent retained"
        (List.init 8 (fun i -> Printf.sprintf "s%d" (i + 13)))
        (List.map (fun (s : Trace.span) -> s.Trace.name) spans))

let test_report_json_parses () =
  reset ();
  Metrics.incr "r.counter";
  Metrics.observe "r.histo" 3.0;
  Trace.with_span ~name:"r.span" ignore;
  let j = Json.parse (Json.to_string (Avm_obs.Report.to_json ())) in
  (match Json.member "counters" j with
  | Some (Json.Obj [ ("r.counter", Json.Int 1) ]) -> ()
  | _ -> Alcotest.fail "counters block wrong");
  match Json.member "spans" j with
  | Some (Json.List [ Json.Obj fields ]) ->
    Alcotest.(check bool) "span name exported" true
      (List.assoc_opt "name" fields = Some (Json.String "r.span"))
  | _ -> Alcotest.fail "spans block wrong"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "roundtrip and rejection" `Quick test_json_roundtrip ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "shard merge determinism" `Quick test_shard_merge_determinism;
          Alcotest.test_case "time records duration" `Quick test_time_records_duration;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "depth restored on exception" `Quick
            test_span_depth_restored_on_exception;
          Alcotest.test_case "ring bound" `Quick test_ring_bound;
          Alcotest.test_case "report json parses" `Quick test_report_json_parses;
        ] );
    ]
