open Avm_core
open Avm_tamperlog
module Identity = Avm_crypto.Identity
module Rng = Avm_util.Rng
module Machine = Avm_machine.Machine

(* Shared fixtures: two accountable machines running a small echo
   guest, connected by hand (no netsim — this exercises the core in
   isolation). *)

let guest_src =
  {|
global seen;
global quiet;   // never touches any output — only snapshots can see it

interrupt fn on_irq() { seen = seen + 1; }

fn main() {
  ivt(on_irq);
  ei();
  // announce ourselves to peer 1: [dest=1, tag, clock]
  out(NET_TX, 1);
  out(NET_TX, 77);
  out(NET_TX, in(CLOCK));
  out(NET_TX_SEND, 0);
  while (1) {
    var t = in(CLOCK);
    quiet = quiet + (t & 1);
    var avail = in(NET_RX_AVAIL);
    while (avail > 0) {
      var len = in(NET_RX_LEN);
      out(NET_TX, 1);
      while (len > 0) {
        out(NET_TX, in(NET_RX) + 1);
        len = len - 1;
      }
      out(NET_RX_NEXT, 0);
      out(NET_TX_SEND, 0);
      avail = in(NET_RX_AVAIL);
    }
  }
}
|}

let guest_image () = (Avm_mlang.Compile.compile ~stack_top:4096 guest_src).Avm_isa.Asm.words

let rng = Rng.create 555L
let ca = Identity.create_ca rng ~bits:512 "ca"
let alice = Identity.issue ca rng ~bits:512 "alice"
let bob = Identity.issue ca rng ~bits:512 "bob"
let cert_of name = Identity.certificate (if name = "alice" then alice else bob)
let peers_a = [ (0, "alice"); (1, "bob") ]
let peers_b = [ (0, "bob"); (1, "alice") ]

let make_pair ?(config = Config.make ~snapshot_every_us:(Some 100_000) Config.Avmm_rsa768) () =
  let img = guest_image () in
  let a_out = Queue.create () and b_out = Queue.create () in
  let a =
    Avmm.create ~identity:alice ~config ~image:img ~mem_words:4096 ~peers:peers_a
      ~on_send:(fun e -> Queue.add e a_out) ()
  in
  let b =
    Avmm.create ~identity:bob ~config ~image:img ~mem_words:4096 ~peers:peers_b
      ~on_send:(fun e -> Queue.add e b_out) ()
  in
  (a, b, a_out, b_out)

let shuttle src dst outq =
  let delivered = ref 0 in
  while not (Queue.is_empty outq) do
    let env = Queue.pop outq in
    (match Avmm.deliver dst env ~sender_cert:(cert_of env.Wireformat.src) with
    | `Ack ack | `Duplicate ack -> (
      incr delivered;
      match Avmm.accept_ack src ack ~acker_cert:(cert_of ack.Wireformat.acker) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ack rejected: %s" e)
    | `Rejected r -> Alcotest.failf "rejected: %s" r)
  done;
  !delivered

let run_pair ?config ~slices () =
  let a, b, a_out, b_out = make_pair ?config () in
  let t = ref 0.0 in
  for _ = 1 to slices do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  (a, b)

let entries_of avmm =
  let log = Avmm.log avmm in
  Log.segment log ~from:1 ~upto:(Log.length log)

let replay_avmm ?start avmm peers =
  Replay.replay ~image:(guest_image ()) ~mem_words:4096 ?start ~peers
    ~entries:(entries_of avmm) ()

let expect_verified outcome =
  match outcome with
  | Replay.Verified _ -> ()
  | Replay.Diverged _ ->
    Alcotest.failf "expected verified, got %s" (Format.asprintf "%a" Replay.pp_outcome outcome)

let expect_diverged kind outcome =
  match outcome with
  | Replay.Diverged d when d.Replay.kind = kind -> ()
  | _ ->
    Alcotest.failf "expected %s divergence, got %s" (Replay.kind_name kind)
      (Format.asprintf "%a" Replay.pp_outcome outcome)

(* --- record/replay -------------------------------------------------------------- *)

let test_honest_replay_verifies () =
  let a, b = run_pair ~slices:40 () in
  expect_verified (replay_avmm a peers_a);
  expect_verified (replay_avmm b peers_b)

let test_memory_poke_diverges () =
  let a, b, a_out, b_out = make_pair () in
  let t = ref 0.0 in
  for i = 1 to 40 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    if i = 20 then begin
      let addr = Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 guest_src) "g_seen" in
      Avmm.poke b ~addr ~value:999
    end;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  expect_verified (replay_avmm a peers_a);
  match replay_avmm b peers_b with
  | Replay.Diverged _ -> ()
  | o -> Alcotest.failf "poke not detected: %s" (Format.asprintf "%a" Replay.pp_outcome o)

let test_quiet_poke_caught_by_snapshot () =
  (* Poking state that never reaches any output is exactly what
     snapshot digests exist for. *)
  let a, b, a_out, b_out = make_pair () in
  let t = ref 0.0 in
  let addr = Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 guest_src) "g_quiet" in
  for i = 1 to 40 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    if i = 10 then Avmm.poke b ~addr ~value:123456;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  expect_verified (replay_avmm a peers_a);
  expect_diverged Replay.Snapshot_mismatch (replay_avmm b peers_b)

(* Bob runs a modified image; the auditor replays the reference. *)
let test_image_patch_diverges () =
  let src =
    let anchor = "out(NET_TX, in(NET_RX) + 1);" in
    let idx =
      let rec find i =
        if String.sub guest_src i (String.length anchor) = anchor then i else find (i + 1)
      in
      find 0
    in
    String.sub guest_src 0 idx
    ^ "out(NET_TX, in(NET_RX) + 2);"
    ^ String.sub guest_src
        (idx + String.length anchor)
        (String.length guest_src - idx - String.length anchor)
  in
  let patched = (Avm_mlang.Compile.compile ~stack_top:4096 src).Avm_isa.Asm.words in
  let config = Config.make ~snapshot_every_us:(Some 100_000) Config.Avmm_rsa768 in
  let a_out = Queue.create () and b_out = Queue.create () in
  let a =
    Avmm.create ~identity:alice ~config ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_a
      ~on_send:(fun e -> Queue.add e a_out) ()
  in
  let b =
    Avmm.create ~identity:bob ~config ~image:patched ~mem_words:4096 ~peers:peers_b
      ~on_send:(fun e -> Queue.add e b_out) ()
  in
  let t = ref 0.0 in
  for _ = 1 to 30 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  (* Replaying Bob's log against the REFERENCE image must diverge. *)
  match replay_avmm b peers_b with
  | Replay.Diverged _ -> ()
  | o -> Alcotest.failf "patched image not detected: %s" (Format.asprintf "%a" Replay.pp_outcome o)

let test_log_truncation_fails_replay () =
  let _, b = run_pair ~slices:30 () in
  let entries = entries_of b in
  let n = List.length entries in
  let truncated = List.filteri (fun i _ -> i < n - 10) entries in
  (* Chain still verifies as a prefix, but a full audit against the
     final authenticator would catch it; replay alone just verifies
     the shorter prefix. *)
  match
    Replay.replay ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b ~entries:truncated ()
  with
  | Replay.Verified _ -> ()
  | o -> Alcotest.failf "prefix should verify: %s" (Format.asprintf "%a" Replay.pp_outcome o)

let test_crossref_mismatch () =
  (* Bob alters a received packet between logging RECV and injecting it
     into the AVM: the Io_in entries disagree with the RECV entry. *)
  let _, b = run_pair ~slices:30 () in
  let entries = entries_of b in
  (* Find an rx-read event and corrupt its value, resealing the chain
     like a competent cheater would. *)
  let log = Avmm.log b in
  let target =
    List.find_map
      (fun (e : Entry.t) ->
        match e.content with
        | Entry.Exec (Avm_machine.Event.Io_in { port; value; msg })
          when msg >= 0 && port = Avm_isa.Isa.port_net_rx ->
          Some (e.seq, value, msg)
        | _ -> None)
      entries
  in
  match target with
  | None -> Alcotest.fail "no rx read found in log"
  | Some (seq, value, msg) ->
    Log.tamper_reseal log seq
      (Entry.Exec
         (Avm_machine.Event.Io_in { port = Avm_isa.Isa.port_net_rx; value = value + 7; msg }));
    expect_diverged Replay.Crossref_mismatch
      (Replay.replay ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b
         ~entries:(Log.segment log ~from:1 ~upto:(Log.length log)) ())

let test_replay_engine_incremental () =
  let _, b = run_pair ~slices:30 () in
  let entries = entries_of b in
  let engine = Replay.engine ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b () in
  (* Feed in small chunks, cranking between feeds. *)
  let rec chunks xs = match xs with [] -> [] | _ -> (
    let take = min 50 (List.length xs) in
    let rec split i acc rest = if i = 0 then (List.rev acc, rest) else
      match rest with [] -> (List.rev acc, []) | x :: r -> split (i-1) (x :: acc) r in
    let (c, rest) = split take [] xs in
    c :: chunks rest)
  in
  List.iter
    (fun chunk ->
      Replay.feed engine chunk;
      let rec drain () =
        match Replay.crank engine ~fuel:100_000 with
        | `Blocked -> ()
        | `Fuel_exhausted -> drain ()
        | `Fault d ->
          Alcotest.failf "engine fault: %s"
            (Format.asprintf "%a" Replay.pp_outcome (Replay.Diverged d))
      in
      drain ())
    (chunks entries);
  Alcotest.(check int) "no lag" 0 (Replay.pending_entries engine)

(* --- audit + evidence -------------------------------------------------------------- *)

let collect_auths_from_envelopes entries =
  (* In these two-party tests we reconstruct Alice's collected
     authenticators from Bob's wire traffic directly. *)
  ignore entries;
  []

let test_full_audit_honest () =
  let a, b, a_out, b_out = make_pair () in
  let auths_b = ref [] in
  let t = ref 0.0 in
  for _ = 1 to 30 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    (* capture bob's authenticators as alice would *)
    Queue.iter (fun env -> auths_b := env.Wireformat.auth :: !auths_b) b_out;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  let report =
    Audit.full
      ~ctx:
        (Audit.ctx ~node_cert:(cert_of "bob")
           ~peer_certs:[ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]
           ~auths:!auths_b ())
      ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b ~prev_hash:Log.genesis_hash
      ~entries:(entries_of b) ()
  in
  (match report.Audit.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest audit failed: %s" e);
  Alcotest.(check bool) "auths matched" true (report.Audit.syntactic.Audit.auths_matched > 0);
  Alcotest.(check bool) "recv sigs" true
    (report.Audit.syntactic.Audit.recv_signatures_verified > 0)

let test_audit_detects_reseal () =
  let a, b, a_out, b_out = make_pair () in
  let auths_b = ref [] in
  let t = ref 0.0 in
  for _ = 1 to 30 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    Queue.iter (fun env -> auths_b := env.Wireformat.auth :: !auths_b) b_out;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  (* Bob rewrites one of his SEND entries and reseals. *)
  let log = Avmm.log b in
  let send_seq =
    List.find_map
      (fun (e : Entry.t) -> match e.content with Entry.Send _ -> Some e.seq | _ -> None)
      (entries_of b)
  in
  (match send_seq with
  | None -> Alcotest.fail "no send"
  | Some seq ->
    Log.tamper_reseal log seq (Entry.Send { dest = "alice"; nonce = 12345; payload = "forged" }));
  let syn =
    Audit.syntactic
      ~ctx:
        (Audit.ctx ~node_cert:(cert_of "bob")
           ~peer_certs:[ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]
           ~auths:!auths_b ())
      ~prev_hash:Log.genesis_hash ~entries:(entries_of b) ()
  in
  Alcotest.(check bool) "syntactic failure" true (syn.Audit.failures <> [])

let test_audit_detects_forged_recv () =
  let _, b = run_pair ~slices:30 () in
  let log = Avmm.log b in
  let recv_seq =
    List.find_map
      (fun (e : Entry.t) -> match e.content with Entry.Recv _ -> Some e.seq | _ -> None)
      (entries_of b)
  in
  (match recv_seq with
  | None -> Alcotest.fail "no recv"
  | Some seq ->
    (* Bob invents a message from Alice; he cannot forge her signature. *)
    Log.tamper_reseal log seq
      (Entry.Recv { src = "alice"; nonce = 9; payload = "gift"; signature = "forged" }));
  let syn =
    Audit.syntactic
      ~ctx:
        (Audit.ctx ~node_cert:(cert_of "bob")
           ~peer_certs:[ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]
           ())
      ~prev_hash:Log.genesis_hash ~entries:(entries_of b) ()
  in
  Alcotest.(check bool) "forged recv caught" true
    (List.exists (fun f -> String.length f > 0) syn.Audit.failures)

let test_evidence_roundtrip_and_check () =
  let a, b, a_out, b_out = make_pair () in
  let t = ref 0.0 in
  for i = 1 to 30 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    if i = 15 then begin
      let addr = Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 guest_src) "g_seen" in
      Avmm.poke b ~addr ~value:31337
    end;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  let outcome = replay_avmm b peers_b in
  let d = match outcome with Replay.Diverged d -> d | _ -> Alcotest.fail "expected fault" in
  let ev =
    {
      Evidence.accused = "bob";
      prev_hash = Log.genesis_hash;
      segment = entries_of b;
      auths = [];
      accusation = Evidence.Replay_divergence d;
    }
  in
  let ev' = Evidence.decode (Evidence.encode ev) in
  Alcotest.(check string) "roundtrip accused" "bob" ev'.Evidence.accused;
  (* A third party confirms the fault... *)
  Alcotest.(check bool) "third party confirms" true
    (Audit.check_evidence ev'
       ~ctx:
         (Audit.ctx ~node_cert:(cert_of "bob")
            ~peer_certs:[ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]
            ())
       ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b ());
  (* ... and rejects the same accusation against an honest log. *)
  let honest_ev = { ev with Evidence.segment = entries_of a; accused = "alice" } in
  Alcotest.(check bool) "honest log clears" false
    (Audit.check_evidence honest_ev
       ~ctx:
         (Audit.ctx ~node_cert:(cert_of "alice")
            ~peer_certs:[ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]
            ())
       ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_a ())

let test_unanswered_challenge_evidence () =
  let _, b = run_pair ~slices:10 () in
  let log = Avmm.log b in
  let e = Log.entry log (Log.length log) in
  let auth = Auth.make bob ~entry:e ~prev_hash:(Log.prev_hash log e.Entry.seq) in
  let ev =
    {
      Evidence.accused = "bob";
      prev_hash = Log.genesis_hash;
      segment = [];
      auths = [];
      accusation = Evidence.Unanswered_challenge { auth };
    }
  in
  Alcotest.(check bool) "auth-backed challenge valid" true
    (Audit.check_evidence ev
       ~ctx:(Audit.ctx ~node_cert:(cert_of "bob") ())
       ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b ());
  let forged = { ev with Evidence.accusation = Evidence.Unanswered_challenge { auth = { auth with Auth.signature = "zz" } } } in
  Alcotest.(check bool) "forged auth invalid" false
    (Audit.check_evidence forged
       ~ctx:(Audit.ctx ~node_cert:(cert_of "bob") ())
       ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b ())

(* --- spot checks --------------------------------------------------------------------- *)

let test_spot_check_chunks () =
  let _, b = run_pair ~slices:60 () in
  let log = Avmm.log b in
  let bounds = Spot_check.boundaries log in
  Alcotest.(check bool) "several snapshots" true (List.length bounds >= 4);
  let report =
    Spot_check.check_chunk ~image:(guest_image ()) ~mem_words:4096
      ~snapshots:(Avmm.snapshots b) ~log ~peers:peers_b ~start_snapshot:1 ~k:2 ()
  in
  (match report.Spot_check.outcome with
  | Replay.Verified _ -> ()
  | o -> Alcotest.failf "chunk should verify: %s" (Format.asprintf "%a" Replay.pp_outcome o));
  Alcotest.(check bool) "transfers counted" true (report.Spot_check.state_bytes > 0);
  Alcotest.(check bool) "log counted" true (report.Spot_check.log_bytes_compressed > 0)

let test_spot_check_incompleteness () =
  (* A fault inside an unchecked segment is invisible to a spot check
     of later segments that re-start from an (also poked) snapshot —
     the paper's §3.5 caveat. *)
  let a, b, a_out, b_out = make_pair () in
  let addr = Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 guest_src) "g_quiet" in
  let t = ref 0.0 in
  for i = 1 to 60 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    (* Snapshots land at 100ms intervals: seq 0 at 100ms, seq 1 at
       200ms... The poke at 250ms sits inside segment (snap1, snap2). *)
    if i = 25 then Avmm.poke b ~addr ~value:42424242;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  let log = Avmm.log b in
  let bounds = Spot_check.boundaries log in
  Alcotest.(check bool) "enough segments" true (List.length bounds >= 5);
  let early =
    Spot_check.check_chunk ~image:(guest_image ()) ~mem_words:4096 ~snapshots:(Avmm.snapshots b)
      ~log ~peers:peers_b ~start_snapshot:1 ~k:1 ()
  in
  (match early.Spot_check.outcome with
  | Replay.Diverged _ -> ()
  | _ -> Alcotest.fail "fault in checked segment must be found");
  (* Checking only a later chunk misses it. *)
  let late =
    Spot_check.check_chunk ~image:(guest_image ()) ~mem_words:4096 ~snapshots:(Avmm.snapshots b)
      ~log ~peers:peers_b ~start_snapshot:3 ~k:1 ()
  in
  match late.Spot_check.outcome with
  | Replay.Verified _ -> ()
  | o -> Alcotest.failf "later segment should look clean: %s" (Format.asprintf "%a" Replay.pp_outcome o)

(* --- clock optimization ------------------------------------------------------------------ *)

let test_clock_opt_unit () =
  let c = Clock_opt.create ~threshold_us:5 ~base_delay_us:50 ~max_delay_us:5000 () in
  Alcotest.(check (float 0.001)) "first read free" 0.0 (Clock_opt.on_read c ~now_us:1000.0);
  (* consecutive reads within 5us: delays 50, 100, 200... capped *)
  Alcotest.(check (float 0.001)) "2nd" 50.0 (Clock_opt.on_read c ~now_us:1001.0);
  Alcotest.(check (float 0.001)) "3rd" 100.0 (Clock_opt.on_read c ~now_us:1052.0);
  Alcotest.(check (float 0.001)) "4th" 200.0 (Clock_opt.on_read c ~now_us:1153.0);
  (* a distant read resets the chain *)
  Alcotest.(check (float 0.001)) "reset" 0.0 (Clock_opt.on_read c ~now_us:99999.0);
  Alcotest.(check int) "reads counted" 5 (Clock_opt.reads_observed c);
  Alcotest.(check (float 0.001)) "total" 350.0 (Clock_opt.total_injected_us c)

let test_clock_opt_cap () =
  let c = Clock_opt.create ~threshold_us:10 ~base_delay_us:50 ~max_delay_us:200 () in
  ignore (Clock_opt.on_read c ~now_us:0.0);
  let last = ref 0.0 in
  for _ = 1 to 10 do
    last := Clock_opt.on_read c ~now_us:!last
  done;
  Alcotest.(check bool) "capped" true (!last <= 200.0)

(* --- wireformat ---------------------------------------------------------------------------- *)

let test_wireformat_words_roundtrip () =
  let words = [| 0; 1; 0xffffffff; 123456789 |] in
  Alcotest.(check (array int)) "roundtrip" words
    (Wireformat.words_of_payload (Wireformat.payload_of_words words));
  Alcotest.(check bool) "unaligned rejected" true
    (match Wireformat.words_of_payload "abc" with
    | _ -> false
    | exception Avm_util.Wire.Malformed _ -> true)

let test_wireformat_envelope () =
  let log = Log.create () in
  let entry = Log.append log (Entry.Send { dest = "bob"; nonce = 1; payload = "data" }) in
  let auth = Auth.make alice ~entry ~prev_hash:Log.genesis_hash in
  let signature =
    Identity.sign alice (Wireformat.message_body ~src:"alice" ~dest:"bob" ~nonce:1 ~payload:"data")
  in
  let env = { Wireformat.src = "alice"; dest = "bob"; nonce = 1; payload = "data"; signature; auth } in
  Alcotest.(check bool) "valid" true (Wireformat.verify_envelope (cert_of "alice") env);
  Alcotest.(check bool) "payload swap" false
    (Wireformat.verify_envelope (cert_of "alice") { env with Wireformat.payload = "evil" });
  let env' = Wireformat.decode_envelope (Wireformat.encode_envelope env) in
  Alcotest.(check bool) "roundtrip verifies" true (Wireformat.verify_envelope (cert_of "alice") env')

let test_wireformat_ack () =
  let log = Log.create () in
  let entry = Log.append log (Entry.Send { dest = "bob"; nonce = 5; payload = "ping" }) in
  let auth = Auth.make alice ~entry ~prev_hash:Log.genesis_hash in
  let signature =
    Identity.sign alice (Wireformat.message_body ~src:"alice" ~dest:"bob" ~nonce:5 ~payload:"ping")
  in
  let env = { Wireformat.src = "alice"; dest = "bob"; nonce = 5; payload = "ping"; signature; auth } in
  (* Bob logs the RECV and acks with his authenticator. *)
  let bob_log = Log.create () in
  let recv =
    Log.append bob_log (Entry.Recv { src = "alice"; nonce = 5; payload = "ping"; signature })
  in
  let recv_auth = Auth.make bob ~entry:recv ~prev_hash:Log.genesis_hash in
  let ack = { Wireformat.acker = "bob"; sender = "alice"; nonce = 5; recv_auth } in
  Alcotest.(check bool) "ack valid" true (Wireformat.verify_ack (cert_of "bob") ack ~sent:env);
  let bad = { ack with Wireformat.nonce = 6 } in
  Alcotest.(check bool) "wrong nonce" false (Wireformat.verify_ack (cert_of "bob") bad ~sent:env);
  let ack' = Wireformat.decode_ack (Wireformat.encode_ack ack) in
  Alcotest.(check bool) "roundtrip" true (Wireformat.verify_ack (cert_of "bob") ack' ~sent:env)

(* --- avmm protocol ---------------------------------------------------------------------------- *)

let test_avmm_duplicate_delivery () =
  let a, b, a_out, _ = make_pair () in
  let t = ref 0.0 in
  (* run until alice sends her hello *)
  while Queue.is_empty a_out do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t)
  done;
  let env = Queue.pop a_out in
  let first = Avmm.deliver b env ~sender_cert:(cert_of "alice") in
  let second = Avmm.deliver b env ~sender_cert:(cert_of "alice") in
  (match (first, second) with
  | `Ack ack1, `Duplicate ack2 -> Alcotest.(check bool) "same ack" true (ack1 = ack2)
  | _ -> Alcotest.fail "expected ack then duplicate");
  (* Only one RECV entry was logged. *)
  let recvs =
    List.filter
      (fun (e : Entry.t) -> match e.content with Entry.Recv _ -> true | _ -> false)
      (entries_of b)
  in
  Alcotest.(check int) "one recv" 1 (List.length recvs)

let test_avmm_rejects_bad_signature () =
  let a, b, a_out, _ = make_pair () in
  let t = ref 0.0 in
  while Queue.is_empty a_out do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t)
  done;
  let env = Queue.pop a_out in
  let forged = { env with Wireformat.payload = env.Wireformat.payload ^ "x" } in
  match Avmm.deliver b forged ~sender_cert:(cert_of "alice") with
  | `Rejected _ -> ()
  | _ -> Alcotest.fail "forged envelope accepted"

let test_avmm_corrupt_then_clean_retransmit () =
  (* A corrupted copy must be rejected WITHOUT logging anything, and
     must not poison the duplicate cache: the sender's clean
     retransmission of the very same nonce still has to go through
     (regression — rejections were once cached by (src, nonce), so one
     flipped byte on the wire blacklisted the message forever and
     retransmission could never converge). *)
  let a, b, a_out, _ = make_pair () in
  let t = ref 0.0 in
  while Queue.is_empty a_out do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t)
  done;
  let env = Queue.pop a_out in
  let corrupted =
    let p = Bytes.of_string env.Wireformat.payload in
    Bytes.set p 0 (Char.chr (Char.code (Bytes.get p 0) lxor 0x20));
    { env with Wireformat.payload = Bytes.to_string p }
  in
  let len_before = List.length (entries_of b) in
  (match Avmm.deliver b corrupted ~sender_cert:(cert_of "alice") with
  | `Rejected _ -> ()
  | _ -> Alcotest.fail "corrupted envelope accepted");
  Alcotest.(check int) "nothing appended to the log" len_before (List.length (entries_of b));
  match Avmm.deliver b env ~sender_cert:(cert_of "alice") with
  | `Ack _ -> ()
  | `Duplicate _ -> Alcotest.fail "clean retransmission treated as duplicate"
  | `Rejected r -> Alcotest.failf "clean retransmission rejected: %s" r

let test_avmm_unacked_tracking () =
  let a, _, a_out, _ = make_pair () in
  let t = ref 0.0 in
  while Queue.is_empty a_out do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t)
  done;
  Alcotest.(check int) "one unacked" 1 (List.length (Avmm.unacked a ~older_than_us:infinity));
  Alcotest.(check int) "not old enough" 0 (List.length (Avmm.unacked a ~older_than_us:0.0))

(* --- multiparty -------------------------------------------------------------------------------- *)

let test_multiparty_bookkeeping () =
  let mp = Multiparty.create ~self:"alice" in
  let log = Log.create () in
  let e1 = Log.append log (Entry.Note "x") in
  let a1 = Auth.make bob ~entry:e1 ~prev_hash:Log.genesis_hash in
  Multiparty.record_auth mp a1;
  Multiparty.record_auth mp a1;
  Alcotest.(check int) "dedup" 1 (List.length (Multiparty.auths_for mp "bob"));
  let mp2 = Multiparty.create ~self:"charlie" in
  Multiparty.merge_auths mp2 ~from:mp ~node:"bob";
  Alcotest.(check int) "merged" 1 (List.length (Multiparty.auths_for mp2 "bob"));
  let ch = Multiparty.open_challenge mp ~accused:"bob" ~description:"produce log" in
  Alcotest.(check bool) "open" true (Multiparty.has_open_challenge mp "bob");
  Multiparty.answer_challenge mp ch.Multiparty.id;
  Alcotest.(check bool) "answered" false (Multiparty.has_open_challenge mp "bob");
  Alcotest.(check (list string)) "nobody shunned" [] (Multiparty.shunned mp);
  Multiparty.add_evidence mp
    {
      Evidence.accused = "bob";
      prev_hash = Log.genesis_hash;
      segment = [];
      auths = [];
      accusation = Evidence.Tampered_log { reason = "broken chain" };
    };
  Alcotest.(check (list string)) "bob shunned" [ "bob" ] (Multiparty.shunned mp);
  Alcotest.(check int) "evidence filed" 1 (List.length (Multiparty.evidence_against mp "bob"))

(* --- witness layer ------------------------------------------------------------------------------- *)

let test_witness_assign () =
  let nodes = 50 and k = 4 in
  let a = Witness.assign ~seed:3L ~nodes ~k in
  let b = Witness.assign ~seed:3L ~nodes ~k in
  let c = Witness.assign ~seed:4L ~nodes ~k in
  for i = 0 to nodes - 1 do
    let w = Witness.witnesses a i in
    Alcotest.(check int) "k witnesses" k (Array.length w);
    Alcotest.(check (array int)) "seed-deterministic" w (Witness.witnesses b i);
    let seen = Hashtbl.create k in
    Array.iter
      (fun j ->
        Alcotest.(check bool) "not self" true (j <> i);
        Alcotest.(check bool) "in range" true (j >= 0 && j < nodes);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen j);
        Hashtbl.add seen j ())
      w
  done;
  Alcotest.(check bool) "different seed, different draw" true (a.Witness.sets <> c.Witness.sets);
  let clamped = Witness.assign ~seed:3L ~nodes:4 ~k:9 in
  Alcotest.(check int) "k clamped to nodes-1" 3 clamped.Witness.k;
  Alcotest.check_raises "one node rejected"
    (Invalid_argument "Witness.assign: need at least two nodes") (fun () ->
      ignore (Witness.assign ~seed:3L ~nodes:1 ~k:1))

let test_witness_epoch_jobs () =
  let nodes = 12 and k = 3 in
  let asg = Witness.assign ~seed:11L ~nodes ~k in
  let check_epoch epoch =
    let jobs = Witness.epoch_jobs asg ~epoch in
    Alcotest.(check int) "n*k jobs" (nodes * k) (List.length jobs);
    for t = 0 to nodes - 1 do
      let mine = List.filter (fun (j : Witness.job) -> j.Witness.target = t) jobs in
      let sem =
        List.filter (fun (j : Witness.job) -> j.Witness.mode = Witness.Semantic) mine
      in
      Alcotest.(check int) "one semantic replay per target" 1 (List.length sem);
      List.iter
        (fun (j : Witness.job) ->
          Alcotest.(check bool) "witness from the assignment" true
            (Array.exists (fun w -> w = j.Witness.witness) (Witness.witnesses asg t)))
        mine
    done;
    List.find (fun (j : Witness.job) -> j.Witness.target = 0 && j.Witness.mode = Witness.Semantic) jobs
  in
  let s1 = check_epoch 1 and s2 = check_epoch 2 in
  Alcotest.(check bool) "designated witness rotates" true
    (s1.Witness.witness <> s2.Witness.witness)

let test_witness_run_sharded_stable () =
  (* The verdict vector must preserve job order and be identical no
     matter how many workers execute the shards. *)
  let asg = Witness.assign ~seed:7L ~nodes:9 ~k:2 in
  let jobs = Witness.epoch_jobs asg ~epoch:1 @ Witness.epoch_jobs asg ~epoch:2 in
  let f (j : Witness.job) =
    {
      Witness.job = j;
      ok = (j.Witness.target + j.Witness.witness) mod 3 <> 0;
      detail = Printf.sprintf "t%dw%d" j.Witness.target j.Witness.witness;
    }
  in
  let seq = Witness.run_sharded ~par:Audit_ctx.sequential ~f jobs in
  let par = Witness.run_sharded ~par:(Audit_ctx.parallel 3) ~f jobs in
  let one = Witness.run_sharded ~par:Audit_ctx.sequential ~shards:1 ~f jobs in
  Alcotest.(check bool) "order preserved" true
    (List.map (fun (v : Witness.verdict) -> v.Witness.job) seq = jobs);
  Alcotest.(check bool) "jobs 1 = jobs 3" true (seq = par);
  Alcotest.(check bool) "shard count does not reorder" true (seq = one);
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (Witness.coverage seq ~nodes:9 ~epoch:2)

(* --- config model -------------------------------------------------------------------------------- *)

let test_config_ladder () =
  let upi l = Config.us_per_instr (Config.make l) in
  Alcotest.(check bool) "virtualization costs" true (upi Config.Vmware_norec > upi Config.Bare_hw);
  Alcotest.(check bool) "recording costs" true (upi Config.Vmware_rec > upi Config.Vmware_norec);
  Alcotest.(check bool) "accountability costs" true (upi Config.Avmm_rsa768 > upi Config.Vmware_rec);
  Alcotest.(check bool) "signing only at top" true
    (Config.sign_cost_us (Config.make Config.Avmm_nosig) = 0.0
    && Config.sign_cost_us (Config.make Config.Avmm_rsa768) > 0.0);
  Alcotest.(check bool) "bigger keys cost more" true
    (Config.sign_cost_us (Config.make ~rsa_bits:1024 Config.Avmm_rsa768)
    > Config.sign_cost_us (Config.make ~rsa_bits:768 Config.Avmm_rsa768));
  Alcotest.(check bool) "clock opt default" true
    ((Config.make Config.Avmm_rsa768).Config.clock_opt
    && not (Config.make Config.Vmware_rec).Config.clock_opt)

(* --- landmark precision ablation ------------------------------------------ *)

let test_landmark_strictness () =
  (* Tamper the (pc, branches) of a recorded IRQ landmark but keep its
     instruction count, resealing the chain. Strict replay pins the
     fault to the interrupt; the icount-only ablation misses it there
     (and, for this benign tamper, verifies — showing exactly what the
     extra landmark fields buy: immediate, precise attribution). *)
  let _, b = run_pair ~slices:40 () in
  let log = Avmm.log b in
  let target =
    List.find_map
      (fun (e : Entry.t) ->
        match e.content with
        | Entry.Exec (Avm_machine.Event.Irq { landmark; line }) -> Some (e.seq, landmark, line)
        | _ -> None)
      (entries_of b)
  in
  match target with
  | None -> Alcotest.fail "no IRQ in log"
  | Some (seq, lm, line) ->
    let forged = { lm with Avm_machine.Landmark.pc = lm.Avm_machine.Landmark.pc + 1 } in
    Log.tamper_reseal log seq (Entry.Exec (Avm_machine.Event.Irq { landmark = forged; line }));
    let entries = Log.segment log ~from:1 ~upto:(Log.length log) in
    (match
       Replay.replay ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b ~entries ()
     with
    | Replay.Diverged d when d.Replay.kind = Replay.Irq_landmark_mismatch -> ()
    | o ->
      Alcotest.failf "strict replay should pin the IRQ: %s"
        (Format.asprintf "%a" Replay.pp_outcome o));
    (match
       Replay.replay ~image:(guest_image ()) ~mem_words:4096 ~strict_landmarks:false
         ~peers:peers_b ~entries ()
     with
    | Replay.Verified _ -> ()
    | Replay.Diverged d when d.Replay.kind <> Replay.Irq_landmark_mismatch -> ()
    | o ->
      Alcotest.failf "icount-only replay should not flag the landmark: %s"
        (Format.asprintf "%a" Replay.pp_outcome o))

(* --- Logstats -------------------------------------------------------------- *)

let test_logstats_categories () =
  let log = Log.create () in
  let add c = ignore (Log.append log c) in
  add (Entry.Exec (Avm_machine.Event.Io_in { port = Avm_isa.Isa.port_clock; value = 1; msg = -1 }));
  add (Entry.Exec (Avm_machine.Event.Io_in { port = Avm_isa.Isa.port_net_rx; value = 2; msg = 1 }));
  add (Entry.Exec (Avm_machine.Event.Io_in { port = Avm_isa.Isa.port_input; value = 3; msg = -1 }));
  add (Entry.Exec (Avm_machine.Event.Irq
         { landmark = { Avm_machine.Landmark.icount = 1; pc = 2; branches = 3 }; line = 1 }));
  add (Entry.Send { dest = "x"; nonce = 1; payload = "abcd" });
  add (Entry.Recv { src = "y"; nonce = 2; payload = "efgh"; signature = "s" });
  add (Entry.Ack { src = "y"; acked_seq = 5; signature = "t" });
  let b = Logstats.of_log log in
  Alcotest.(check int) "entries" 7 b.Logstats.entries;
  Alcotest.(check bool) "timetracker" true (b.Logstats.timetracker_bytes > 0);
  Alcotest.(check bool) "mac includes rx + nic irq" true (b.Logstats.mac_bytes > 0);
  Alcotest.(check bool) "other includes input" true (b.Logstats.other_replay_bytes > 0);
  Alcotest.(check int) "payload bytes" 8 b.Logstats.payload_bytes;
  Alcotest.(check int) "packets" 2 b.Logstats.packets;
  Alcotest.(check int) "total is sum" b.Logstats.total_bytes
    (b.Logstats.timetracker_bytes + b.Logstats.mac_bytes + b.Logstats.other_replay_bytes
    + b.Logstats.tamper_evident_bytes);
  Alcotest.(check bool) "vmware equivalent smaller" true
    (Logstats.vmware_equivalent_bytes b < b.Logstats.total_bytes)

(* --- Avmm time model --------------------------------------------------------- *)

let test_avmm_time_advances_with_instructions () =
  let a, _, _, _ = make_pair () in
  let before = Avmm.now_us a in
  ignore (Avmm.run_slice a ~until_us:5_000.0);
  let after = Avmm.now_us a in
  Alcotest.(check bool) "time advanced" true (after > before);
  Alcotest.(check bool) "bounded by slice" true (after >= 5_000.0);
  Avmm.add_stall_us a 1234.0;
  Alcotest.(check (float 0.5)) "stall added" (after +. 1234.0) (Avmm.now_us a)

let test_avmm_snapshot_refs_logged () =
  let _, b = run_pair ~slices:40 () in
  let snaps = Avmm.snapshots b in
  let refs =
    List.filter
      (fun (e : Entry.t) ->
        match e.content with Entry.Snapshot_ref _ -> true | _ -> false)
      (entries_of b)
  in
  Alcotest.(check int) "one log entry per snapshot" (List.length snaps) (List.length refs);
  (* digests in the log match the snapshots taken *)
  List.iter2
    (fun (s : Avm_machine.Snapshot.t) (e : Entry.t) ->
      match e.content with
      | Entry.Snapshot_ref { digest; snapshot_seq; at_icount } ->
        Alcotest.(check string) "digest" (Avm_machine.Snapshot.state_digest s) digest;
        Alcotest.(check int) "seq" s.Avm_machine.Snapshot.seq snapshot_seq;
        Alcotest.(check int) "icount" s.Avm_machine.Snapshot.at_icount at_icount
      | _ -> assert false)
    snaps refs

(* --- paper-level properties -------------------------------------------------- *)

(* Accuracy (paper §4.7): an honest execution always passes audit,
   whatever the input/timing schedule. Randomized over input scripts,
   slice boundaries and delivery patterns. *)
let test_property_honest_always_verifies () =
  let trials = 6 in
  for trial = 1 to trials do
    let rng = Rng.create (Int64.of_int (1000 + trial)) in
    let a, b, a_out, b_out = make_pair () in
    let t = ref 0.0 in
    let slices = 15 + Rng.int rng 20 in
    for _ = 1 to slices do
      t := !t +. float_of_int (2_000 + Rng.int rng 20_000);
      ignore (Avmm.run_slice a ~until_us:!t);
      ignore (Avmm.run_slice b ~until_us:!t);
      (* random local input events *)
      for _ = 1 to Rng.int rng 3 do
        Avmm.queue_input b (Rng.bits32 rng)
      done;
      (* deliveries sometimes delayed a slice *)
      if Rng.bool rng then ignore (shuttle a b a_out);
      if Rng.bool rng then ignore (shuttle b a b_out)
    done;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out);
    (match replay_avmm a peers_a with
    | Replay.Verified _ -> ()
    | o ->
      Alcotest.failf "trial %d: honest alice diverged: %s" trial
        (Format.asprintf "%a" Replay.pp_outcome o));
    match replay_avmm b peers_b with
    | Replay.Verified _ -> ()
    | o ->
      Alcotest.failf "trial %d: honest bob diverged: %s" trial
        (Format.asprintf "%a" Replay.pp_outcome o)
  done

(* Completeness (paper §4.7): rewriting ANY already-committed log entry
   is detected by a full audit — by the hash chain, the collected
   authenticators, the RECV signatures, or replay. The attacker here is
   the strong one: he reseals the whole chain after editing. *)
let test_property_any_tamper_detected () =
  (* Record one honest session, collecting authenticators like the
     network does. *)
  let a, b, a_out, b_out = make_pair () in
  let auths = ref [] in
  let t = ref 0.0 in
  for _ = 1 to 30 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    Queue.iter (fun env -> auths := env.Wireformat.auth :: !auths) b_out;
    ignore (shuttle a b a_out);
    (* capture ack authenticators too, as alice would *)
    ignore (shuttle b a b_out)
  done;
  (* Bob's ack auths for alice's messages live in recv entries of
     alice; for auditing BOB we use the auths attached to his
     envelopes (collected above). Find the last send we hold an
     authenticator for: tampering anywhere before it must be caught. *)
  let max_auth_seq =
    List.fold_left (fun acc (x : Auth.t) -> max acc x.Auth.seq) 0 !auths
  in
  Alcotest.(check bool) "collected auths" true (max_auth_seq > 0);
  let rng = Rng.create 4242L in
  let audit_bob entries =
    Audit.full
      ~ctx:
        (Audit.ctx ~node_cert:(cert_of "bob")
           ~peer_certs:[ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]
           ~auths:!auths ())
      ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b
      ~prev_hash:Log.genesis_hash ~entries ()
  in
  (match (audit_bob (entries_of b)).Audit.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "untampered log must audit clean: %s" e);
  for trial = 1 to 10 do
    let forked = Log.fork (Avmm.log b) in
    let seq = 1 + Rng.int rng (max_auth_seq - 1) in
    let victim = Log.entry forked seq in
    let mutated =
      match victim.Entry.content with
      | Entry.Send s -> Entry.Send { s with payload = s.payload ^ "x" }
      | Entry.Recv r -> Entry.Recv { r with payload = r.payload ^ "x" }
      | Entry.Ack k -> Entry.Ack { k with acked_seq = k.acked_seq + 1 }
      | Entry.Exec (Avm_machine.Event.Io_in io) ->
        Entry.Exec (Avm_machine.Event.Io_in { io with value = (io.value + 1) land 0xffffffff })
      | Entry.Exec (Avm_machine.Event.Irq irq) ->
        Entry.Exec
          (Avm_machine.Event.Irq
             {
               irq with
               landmark =
                 {
                   irq.landmark with
                   Avm_machine.Landmark.icount = irq.landmark.Avm_machine.Landmark.icount + 1;
                 };
             })
      | Entry.Snapshot_ref sr ->
        Entry.Snapshot_ref { sr with digest = Avm_crypto.Sha256.digest sr.digest }
      | Entry.Note n -> Entry.Note (n ^ "!")
    in
    Log.tamper_reseal forked seq mutated;
    let entries = Log.segment forked ~from:1 ~upto:(Log.length forked) in
    match (audit_bob entries).Audit.verdict with
    | Error _ -> ()
    | Ok () ->
      Alcotest.failf "trial %d: tampering entry #%d (%s) went undetected" trial seq
        (Entry.describe victim.Entry.content)
  done

(* --- segmented audit (segment store vs materialized list) ------------------- *)

let peer_certs_ab = [ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]

let record_with_auths ?poke_at () =
  let a, b, a_out, b_out = make_pair () in
  let auths = ref [] in
  let t = ref 0.0 in
  for i = 1 to 30 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    (match poke_at with
    | Some slice when slice = i ->
      let addr =
        Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 guest_src) "g_seen"
      in
      Avmm.poke b ~addr ~value:31337
    | _ -> ());
    Queue.iter (fun env -> auths := env.Wireformat.auth :: !auths) b_out;
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  (b, !auths)

(* The acceptance bar for the segmented pipeline: auditing through the
   segment store — sealed segments, streamed one at a time — must be
   indistinguishable from auditing the materialized entry list. *)
let ctx_ab auths = Audit.ctx ~node_cert:(cert_of "bob") ~peer_certs:peer_certs_ab ~auths ()

let check_equivalent ~name entries auths =
  let whole =
    Audit.full ~ctx:(ctx_ab auths) ~image:(guest_image ()) ~mem_words:4096 ~peers:peers_b
      ~prev_hash:Log.genesis_hash ~entries ()
  in
  let seg_log = Log.of_entries ~seal_every:50 entries in
  Alcotest.(check bool) (name ^ ": several sealed segments") true
    (List.length (Log.segments seg_log) >= 2);
  let seg =
    Audit.full_of_log ~ctx:(ctx_ab auths) ~image:(guest_image ()) ~mem_words:4096
      ~peers:peers_b ~log:seg_log ()
  in
  Alcotest.(check (list string))
    (name ^ ": same syntactic failures")
    whole.Audit.syntactic.Audit.failures seg.Audit.syntactic.Audit.failures;
  Alcotest.(check bool) (name ^ ": same verdict") true
    (match (whole.Audit.verdict, seg.Audit.verdict) with
    | Ok (), Ok () -> true
    | Error _, Error _ -> true
    | _ -> false);
  match (whole.Audit.semantic, seg.Audit.semantic) with
  | Some (Replay.Diverged d1), Some (Replay.Diverged d2) ->
    Alcotest.(check bool) (name ^ ": same divergence kind") true (d1.Replay.kind = d2.Replay.kind)
  | Some (Replay.Verified _), Some (Replay.Verified _) | None, None -> ()
  | _ -> Alcotest.failf "%s: semantic outcomes disagree" name

let test_segmented_audit_honest () =
  let b, auths = record_with_auths () in
  check_equivalent ~name:"honest" (entries_of b) auths;
  (* and straight off the AVMM's own (compressed) segment store *)
  let direct =
    Audit.full_of_log ~ctx:(ctx_ab auths) ~image:(guest_image ()) ~mem_words:4096
      ~peers:peers_b ~log:(Avmm.log b) ()
  in
  match direct.Audit.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compressed-store audit of honest log failed: %s" e

let test_segmented_audit_cheats () =
  (* Memory poke: honest log of a cheating execution — semantic divergence. *)
  let b, auths = record_with_auths ~poke_at:15 () in
  check_equivalent ~name:"poke" (entries_of b) auths;
  (* Resealed SEND: consistent chain, exposed by collected authenticators. *)
  let b, auths = record_with_auths () in
  (match
     List.find_map
       (fun (e : Entry.t) -> match e.content with Entry.Send _ -> Some e.seq | _ -> None)
       (entries_of b)
   with
  | None -> Alcotest.fail "no send"
  | Some seq ->
    Log.tamper_reseal (Avmm.log b) seq
      (Entry.Send { dest = "alice"; nonce = 999; payload = "forged" }));
  check_equivalent ~name:"reseal" (entries_of b) auths;
  (* Naive in-place replace: broken hash chain. *)
  let b, auths = record_with_auths () in
  Log.tamper_replace (Avmm.log b) 5 (Entry.Note "swapped");
  check_equivalent ~name:"replace" (entries_of b) auths;
  (* Forged RECV: bob invents a message alice never signed. *)
  let b, auths = record_with_auths () in
  (match
     List.find_map
       (fun (e : Entry.t) -> match e.content with Entry.Recv _ -> Some e.seq | _ -> None)
       (entries_of b)
   with
  | None -> Alcotest.fail "no recv"
  | Some seq ->
    Log.tamper_reseal (Avmm.log b) seq
      (Entry.Recv { src = "alice"; nonce = 9; payload = "gift"; signature = "forged" }));
  check_equivalent ~name:"forged-recv" (entries_of b) auths

let test_syntactic_single_pass () =
  (* The streaming syntactic check must consume its feed exactly once,
     delivering each entry exactly once — the whole point of folding
     the five passes into one. *)
  let b, auths = record_with_auths () in
  let entries = entries_of b in
  let feed_calls = ref 0 in
  let delivered = Hashtbl.create 256 in
  let feed push =
    incr feed_calls;
    List.iter
      (fun (e : Entry.t) ->
        Hashtbl.replace delivered e.Entry.seq
          (1 + Option.value ~default:0 (Hashtbl.find_opt delivered e.Entry.seq));
        push e)
      entries
  in
  let syn =
    Audit.syntactic_feed ~ctx:(ctx_ab auths) ~prev_hash:Log.genesis_hash ~feed ()
  in
  Alcotest.(check int) "feed invoked once" 1 !feed_calls;
  Alcotest.(check int) "every entry checked" (List.length entries) syn.Audit.entries_checked;
  Hashtbl.iter
    (fun seq n -> if n <> 1 then Alcotest.failf "entry %d delivered %d times" seq n)
    delivered;
  Alcotest.(check (list string)) "clean" [] syn.Audit.failures;
  (* and it reports exactly what the list-based entry point reports *)
  let listed =
    Audit.syntactic ~ctx:(ctx_ab auths) ~prev_hash:Log.genesis_hash ~entries ()
  in
  Alcotest.(check bool) "same report" true (syn = listed)

(* --- parallel audit = sequential audit --------------------------------------- *)

(* The acceptance bar for the domain-parallel engine: at any job count,
   both syntactic entry points must produce reports *structurally
   identical* to the sequential pass — same counters, same failure
   strings in the same order — on honest logs and on every tamper op. *)
let check_parallel_syntactic ~name entries auths =
  let syn ?par ~entries () =
    Audit.syntactic ~ctx:(ctx_ab auths) ~prev_hash:Log.genesis_hash ~entries ?par ()
  in
  let seq = syn ~entries () in
  let seg_log = Log.of_entries ~seal_every:50 entries in
  List.iter
    (fun jobs ->
      let par = syn ~par:(Audit.parallel jobs) ~entries () in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: list failures (jobs=%d)" name jobs)
        seq.Audit.failures par.Audit.failures;
      Alcotest.(check bool) (Printf.sprintf "%s: list report (jobs=%d)" name jobs) true
        (seq = par);
      let par_log =
        Audit.syntactic_of_log ~ctx:(ctx_ab auths) ~log:seg_log
          ~par:(Audit.parallel jobs) ()
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: store failures (jobs=%d)" name jobs)
        seq.Audit.failures par_log.Audit.failures;
      Alcotest.(check bool) (Printf.sprintf "%s: store report (jobs=%d)" name jobs) true
        (seq = par_log))
    [ 1; 2; 4 ]

let test_parallel_syntactic_honest_and_tampered () =
  let b, auths = record_with_auths () in
  let honest = entries_of b in
  check_parallel_syntactic ~name:"honest" honest auths;
  (* naive in-place replace: hash chain breaks mid-log *)
  let b, auths = record_with_auths () in
  Log.tamper_replace (Avmm.log b) 5 (Entry.Note "swapped");
  check_parallel_syntactic ~name:"replace" (entries_of b) auths;
  (* a second break in a later chunk must still report only the first *)
  let broken_twice =
    List.map
      (fun (e : Entry.t) ->
        if e.Entry.seq = 5 || e.Entry.seq = List.length honest - 10 then
          { e with Entry.content = Entry.Note "evil" }
        else e)
      honest
  in
  check_parallel_syntactic ~name:"two breaks" broken_twice auths;
  (* reseal: consistent chain, caught by the collected authenticators *)
  let b, auths = record_with_auths () in
  (match
     List.find_map
       (fun (e : Entry.t) -> match e.content with Entry.Send _ -> Some e.seq | _ -> None)
       (entries_of b)
   with
  | None -> Alcotest.fail "no send"
  | Some seq ->
    Log.tamper_reseal (Avmm.log b) seq
      (Entry.Send { dest = "alice"; nonce = 999; payload = "forged" }));
  check_parallel_syntactic ~name:"reseal" (entries_of b) auths;
  (* truncate: valid prefix; reports must still agree *)
  let b, auths = record_with_auths () in
  Log.tamper_truncate (Avmm.log b) (Log.length (Avmm.log b) / 2);
  check_parallel_syntactic ~name:"truncate" (entries_of b) auths;
  (* forged RECV signature *)
  let b, auths = record_with_auths () in
  (match
     List.find_map
       (fun (e : Entry.t) -> match e.content with Entry.Recv _ -> Some e.seq | _ -> None)
       (entries_of b)
   with
  | None -> Alcotest.fail "no recv"
  | Some seq ->
    Log.tamper_reseal (Avmm.log b) seq
      (Entry.Recv { src = "alice"; nonce = 9; payload = "gift"; signature = "forged" }));
  check_parallel_syntactic ~name:"forged-recv" (entries_of b) auths

(* Full audits (syntactic + snapshot-partitioned semantic replay) at
   jobs in {1, 2, 4} against the sequential report. The semantic
   outcomes must be structurally identical: same Verified totals
   (piece boundaries telescope) or the same first divergence. *)
let check_parallel_full ~name b auths =
  let log = Avmm.log b in
  let snapshots = Avmm.snapshots b in
  let full ?par ?snapshots () =
    Audit.full_of_log ~ctx:(ctx_ab auths) ~image:(guest_image ()) ~mem_words:4096
      ~peers:peers_b ~log ?snapshots ?par ()
  in
  let seq = full () in
  List.iter
    (fun jobs ->
      let par = full ~par:(Audit.parallel jobs) ~snapshots () in
      Alcotest.(check bool) (Printf.sprintf "%s: syntactic (jobs=%d)" name jobs) true
        (seq.Audit.syntactic = par.Audit.syntactic);
      (match (seq.Audit.semantic, par.Audit.semantic) with
      | Some o1, Some o2 ->
        if o1 <> o2 then
          Alcotest.failf "%s: semantic outcomes differ at jobs=%d: %s vs %s" name jobs
            (Format.asprintf "%a" Replay.pp_outcome o1)
            (Format.asprintf "%a" Replay.pp_outcome o2)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: one audit skipped semantic, the other did not" name);
      Alcotest.(check bool) (Printf.sprintf "%s: verdict (jobs=%d)" name jobs) true
        (seq.Audit.verdict = par.Audit.verdict))
    [ 1; 2; 4 ]

let test_parallel_full_audit () =
  (* honest session: everything verifies, totals telescope *)
  let b, auths = record_with_auths () in
  check_parallel_full ~name:"honest" b auths;
  (* hidden state poke: the same first divergence from every job count *)
  let b, auths = record_with_auths ~poke_at:15 () in
  check_parallel_full ~name:"poke" b auths

let test_parallel_replay_forged_snapshot () =
  (* A forged *downloaded* snapshot is evidence only the parallel
     replay can see: the sequential replay never materializes state, so
     this is a documented (strict) extra detection, not a divergence
     between the two passes. *)
  let _, b = run_pair ~slices:60 () in
  let log = Avmm.log b in
  let snapshots = Avmm.snapshots b in
  Alcotest.(check bool) "several snapshots" true (List.length snapshots >= 3);
  let forged =
    List.map
      (fun (s : Avm_machine.Snapshot.t) ->
        if s.seq <> 0 then s
        else
          match s.pages with
          | (p, data) :: rest ->
            let bad = Bytes.of_string data in
            Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
            { s with Avm_machine.Snapshot.pages = (p, Bytes.to_string bad) :: rest }
          | [] -> Alcotest.fail "full snapshot has no pages")
      snapshots
  in
  Avm_util.Domain_pool.with_pool ~jobs:2 (fun pool ->
      let par = Audit.parallel ~pool 2 in
      expect_verified
        (Spot_check.parallel_replay ~par ~image:(guest_image ()) ~mem_words:4096 ~snapshots
           ~log ~peers:peers_b ());
      expect_diverged Replay.Snapshot_mismatch
        (Spot_check.parallel_replay ~par ~image:(guest_image ()) ~mem_words:4096
           ~snapshots:forged ~log ~peers:peers_b ()))

let test_spot_check_plan_and_pool () =
  let _, b = run_pair ~slices:60 () in
  let log = Avmm.log b in
  let snapshots = Avmm.snapshots b in
  let pl = Spot_check.plan ~log ~snapshots in
  Alcotest.(check bool) "plan indexes every boundary" true
    (Spot_check.plan_boundaries pl = Spot_check.boundaries log);
  let chunks = [ (1, 1); (2, 2); (1, 2) ] in
  let check ?par () =
    Spot_check.check_chunks ?par ~image:(guest_image ()) ~mem_words:4096 ~snapshots ~log
      ~peers:peers_b chunks
  in
  let seq = check () in
  Avm_util.Domain_pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check bool) "pooled spot checks identical" true
        (seq = check ~par:(Audit.parallel ~pool 3) ()))

(* --- online auditing (paper §6.11) ------------------------------------------ *)

let test_online_audit_honest_keeps_up () =
  let a, b, a_out, b_out = make_pair () in
  let oa =
    Online_audit.create ~image:(guest_image ()) ~mem_words:4096 ~replay_rate:1.0
      ~peers:peers_b ()
  in
  let t = ref 0.0 in
  for _ = 1 to 30 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out);
    Online_audit.observe_log oa (Avmm.log b);
    match Online_audit.advance oa ~budget_instructions:1_000_000 with
    | `Ok -> ()
    | `Fault d ->
      Alcotest.failf "honest online audit faulted: %s"
        (Format.asprintf "%a" Replay.pp_outcome (Replay.Diverged d))
  done;
  Alcotest.(check int) "no lag with full budget" 0 (Online_audit.lag_entries oa);
  Alcotest.(check bool) "made progress" true (Online_audit.replayed_instructions oa > 1000)

let test_online_audit_catches_cheat_mid_game () =
  let a, b, a_out, b_out = make_pair () in
  let oa =
    Online_audit.create ~image:(guest_image ()) ~mem_words:4096 ~replay_rate:1.0
      ~peers:peers_b ()
  in
  let addr = Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 guest_src) "g_quiet" in
  let t = ref 0.0 in
  let caught_at = ref None in
  (try
     for i = 1 to 40 do
       t := !t +. 10_000.0;
       ignore (Avmm.run_slice a ~until_us:!t);
       ignore (Avmm.run_slice b ~until_us:!t);
       if i = 10 then Avmm.poke b ~addr ~value:666;
       ignore (shuttle a b a_out);
       ignore (shuttle b a b_out);
       Online_audit.observe_log oa (Avmm.log b);
       match Online_audit.advance oa ~budget_instructions:1_000_000 with
       | `Ok -> ()
       | `Fault _ ->
         caught_at := Some i;
         raise Exit
     done
   with Exit -> ());
  match !caught_at with
  | None -> Alcotest.fail "cheat not caught online"
  | Some slice ->
    (* detected while the game was still in progress, soon after the
       poke's effect reached a snapshot or output *)
    Alcotest.(check bool) "caught mid-game" true (slice < 40);
    Alcotest.(check bool) "fault is terminal" true (Online_audit.fault oa <> None)

let test_online_audit_parallel_chain_check () =
  (* A jobs > 1 online auditor re-verifies the hash chain of each newly
     observed range on its pool; a naive in-place rewrite is flagged on
     the very observation that delivers it, before replay reaches it. *)
  let a, b, a_out, b_out = make_pair () in
  let oa =
    Online_audit.create ~image:(guest_image ()) ~mem_words:4096 ~replay_rate:1.0
      ~par:(Audit.parallel 2) ~peers:peers_b ()
  in
  let t = ref 0.0 in
  for _ = 1 to 10 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out);
    Online_audit.observe_log oa (Avmm.log b);
    (match Online_audit.advance oa ~budget_instructions:1_000_000 with
    | `Ok -> ()
    | `Fault _ -> Alcotest.fail "honest prefix faulted");
    Alcotest.(check bool) "honest chain clean" true (Online_audit.tamper_detected oa = None)
  done;
  (* two more slices land in the yet-unobserved range; rewrite one of
     those entries in place, then let the auditor pull the range *)
  for _ = 1 to 2 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    ignore (shuttle a b a_out);
    ignore (shuttle b a b_out)
  done;
  let log = Avmm.log b in
  Log.tamper_replace log (Log.length log) (Entry.Note "rewritten");
  Online_audit.observe_log oa log;
  (match Online_audit.tamper_detected oa with
  | Some reason -> Alcotest.(check bool) "reason given" true (String.length reason > 0)
  | None -> Alcotest.fail "in-place rewrite not caught on observation");
  Online_audit.close oa

(* --- old-name wrappers = Session API ------------------------------------------ *)

(* The pre-session [create]/[observe_log]/[advance] names survive as
   thin wrappers over [Online_audit.Session]; until they go, both
   surfaces must classify every log — honest and tampered — the same
   way. *)
module Session_equivalence = struct
  type classified = Clean | Tampered_log | Diverged of Replay.divergence_kind

  let pp_classified = function
    | Clean -> "clean"
    | Tampered_log -> "tampered"
    | Diverged k -> "diverged:" ^ Replay.kind_name k

  let drain_budget = 10_000_000
  let drain_rounds = 50

  let wrapper_classify log =
    let oa =
      Online_audit.create ~image:(guest_image ()) ~mem_words:4096 ~replay_rate:1.0
        ~peers:peers_b ()
    in
    Online_audit.observe_log oa log;
    let rec drain n =
      match Online_audit.advance oa ~budget_instructions:drain_budget with
      | `Fault _ -> ()
      | `Ok -> if n > 0 && Online_audit.lag_entries oa > 0 then drain (n - 1)
    in
    drain drain_rounds;
    let v =
      match (Online_audit.fault oa, Online_audit.tamper_detected oa) with
      | Some d, _ -> Diverged d.Replay.kind
      | None, Some _ -> Tampered_log
      | None, None -> Clean
    in
    Online_audit.close oa;
    v

  let session_classify log =
    let s =
      Online_audit.Session.open_session ~image:(guest_image ()) ~mem_words:4096
        ~replay_rate:1.0 ~peers:peers_b ()
    in
    ignore (Online_audit.Session.ingest s log);
    let rec drain n =
      match Online_audit.Session.step s ~budget_instructions:drain_budget with
      | Some _ -> ()
      | None -> if n > 0 && Online_audit.Session.lag_entries s > 0 then drain (n - 1)
    in
    drain drain_rounds;
    match Online_audit.Session.close s with
    | None -> Clean
    | Some (Online_audit.Tampered _) -> Tampered_log
    | Some (Online_audit.Diverged d) -> Diverged d.Replay.kind
    (* no ctx, no offered auths: this session can never equivocate *)
    | Some (Online_audit.Equivocated _) -> assert false

  let classify_equal ~name log =
    let w = wrapper_classify log and s = session_classify log in
    if w <> s then
      QCheck2.Test.fail_reportf "%s: wrapper says %s, Session says %s" name
        (pp_classified w) (pp_classified s)
    else true

  let session = lazy (record_with_auths ())

  let prop_tampered =
    let gen =
      QCheck2.Gen.(pair (oneofl [ `Replace; `Reseal; `Truncate ]) (int_range 2 200))
    in
    QCheck2.Test.make ~count:12 ~name:"wrapper = Session on random tampers" gen
      (fun (kind, pos) ->
        let b, _auths = Lazy.force session in
        let forked = Log.fork (Avmm.log b) in
        let pos = 1 + (pos mod Log.length forked) in
        (match kind with
        | `Replace -> Log.tamper_replace forked pos (Entry.Note "evil")
        | `Reseal -> Log.tamper_reseal forked pos (Entry.Note "evil")
        | `Truncate -> Log.tamper_truncate forked pos);
        classify_equal ~name:(Printf.sprintf "tamper@%d" pos) forked)

  let test_honest_and_poked () =
    let b, _auths = Lazy.force session in
    Alcotest.(check bool) "honest log classified clean" true
      (wrapper_classify (Avmm.log b) = Clean
      && session_classify (Avmm.log b) = Clean);
    let b, _auths = record_with_auths ~poke_at:15 () in
    let w = wrapper_classify (Avmm.log b) and s = session_classify (Avmm.log b) in
    Alcotest.(check string) "poked log classified identically" (pp_classified w)
      (pp_classified s);
    Alcotest.(check bool) "poked log caught" true (w <> Clean)

  let test_full_session_matches_batch_audit () =
    (* The ctx-carrying streaming session must reach the batch
       auditor's verdict on the same honest log. *)
    let b, auths = Lazy.force session in
    let batch =
      Audit.full_of_log ~ctx:(ctx_ab auths) ~image:(guest_image ()) ~mem_words:4096
        ~peers:peers_b ~log:(Avmm.log b) ()
    in
    Alcotest.(check bool) "batch verdict ok" true (batch.Audit.verdict = Ok ());
    let s =
      Online_audit.Session.open_session ~ctx:(ctx_ab auths) ~image:(guest_image ())
        ~mem_words:4096 ~replay_rate:1.0 ~peers:peers_b ()
    in
    ignore (Online_audit.Session.ingest s (Avmm.log b));
    let rec drain n =
      match Online_audit.Session.step s ~budget_instructions:drain_budget with
      | Some _ -> ()
      | None -> if n > 0 && Online_audit.Session.lag_entries s > 0 then drain (n - 1)
    in
    drain drain_rounds;
    Alcotest.(check bool) "streaming session clean too" true
      (Online_audit.Session.close s = None)
end

(* --- remaining divergence kinds ---------------------------------------------- *)

let test_guest_halted_early () =
  (* Log recorded from a long-running image, replayed against a
     reference that halts immediately: the machine dies with entries
     left over. *)
  let _, b = run_pair ~slices:10 () in
  let halting_image = [| Avm_isa.Isa.encode Avm_isa.Isa.Halt |] in
  expect_diverged Replay.Guest_halted_early
    (Replay.replay ~image:halting_image ~mem_words:4096 ~peers:peers_b
       ~entries:(entries_of b) ())

let test_guest_stalled_on_fuel () =
  let _, b = run_pair ~slices:10 () in
  expect_diverged Replay.Guest_stalled
    (Replay.replay ~image:(guest_image ()) ~mem_words:4096 ~fuel:50 ~peers:peers_b
       ~entries:(entries_of b) ())

let test_guest_fault_on_garbage_reference () =
  let _, b = run_pair ~slices:10 () in
  (* An undefined opcode as the reference image: replay reports the
     reference guest crashing rather than blaming the log. *)
  let garbage = [| 0xff000000 |] in
  expect_diverged Replay.Guest_fault
    (Replay.replay ~image:garbage ~mem_words:4096 ~peers:peers_b ~entries:(entries_of b) ())

let () =
  ignore collect_auths_from_envelopes;
  Alcotest.run "core"
    [
      ( "record-replay",
        [
          Alcotest.test_case "honest replay verifies" `Quick test_honest_replay_verifies;
          Alcotest.test_case "memory poke diverges" `Quick test_memory_poke_diverges;
          Alcotest.test_case "quiet poke caught by snapshot" `Quick
            test_quiet_poke_caught_by_snapshot;
          Alcotest.test_case "patched image diverges" `Quick test_image_patch_diverges;
          Alcotest.test_case "prefix replay verifies" `Quick test_log_truncation_fails_replay;
          Alcotest.test_case "crossref mismatch" `Quick test_crossref_mismatch;
          Alcotest.test_case "incremental engine" `Quick test_replay_engine_incremental;
        ] );
      ( "audit-evidence",
        [
          Alcotest.test_case "honest full audit" `Quick test_full_audit_honest;
          Alcotest.test_case "reseal detected by auths" `Quick test_audit_detects_reseal;
          Alcotest.test_case "forged recv detected" `Quick test_audit_detects_forged_recv;
          Alcotest.test_case "evidence roundtrip + third party" `Quick
            test_evidence_roundtrip_and_check;
          Alcotest.test_case "unanswered challenge" `Quick test_unanswered_challenge_evidence;
        ] );
      ( "divergence-kinds",
        [
          Alcotest.test_case "guest halted early" `Quick test_guest_halted_early;
          Alcotest.test_case "guest stalled (fuel)" `Quick test_guest_stalled_on_fuel;
          Alcotest.test_case "reference guest faults" `Quick test_guest_fault_on_garbage_reference;
        ] );
      ( "segmented-audit",
        [
          Alcotest.test_case "honest: store = list" `Quick test_segmented_audit_honest;
          Alcotest.test_case "cheats: store = list" `Quick test_segmented_audit_cheats;
          Alcotest.test_case "syntactic is single-pass" `Quick test_syntactic_single_pass;
        ] );
      ( "online-audit",
        [
          Alcotest.test_case "honest keeps up" `Quick test_online_audit_honest_keeps_up;
          Alcotest.test_case "cheat caught mid-game" `Quick
            test_online_audit_catches_cheat_mid_game;
          Alcotest.test_case "parallel chain pre-check" `Quick
            test_online_audit_parallel_chain_check;
        ] );
      ( "parallel-audit",
        [
          Alcotest.test_case "syntactic = sequential (honest + tampers)" `Slow
            test_parallel_syntactic_honest_and_tampered;
          Alcotest.test_case "full audit = sequential" `Slow test_parallel_full_audit;
          Alcotest.test_case "forged downloaded snapshot" `Quick
            test_parallel_replay_forged_snapshot;
          Alcotest.test_case "spot-check plan + pool" `Quick test_spot_check_plan_and_pool;
        ] );
      ( "session-wrappers",
        [
          Alcotest.test_case "honest + poked = Session API" `Slow
            Session_equivalence.test_honest_and_poked;
          Alcotest.test_case "ctx session = batch audit" `Slow
            Session_equivalence.test_full_session_matches_batch_audit;
          QCheck_alcotest.to_alcotest Session_equivalence.prop_tampered;
        ] );
      ( "properties",
        [
          Alcotest.test_case "accuracy: honest always verifies" `Slow
            test_property_honest_always_verifies;
          Alcotest.test_case "completeness: any tamper detected" `Slow
            test_property_any_tamper_detected;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "landmark precision" `Quick test_landmark_strictness;
          Alcotest.test_case "logstats categories" `Quick test_logstats_categories;
          Alcotest.test_case "avmm time model" `Quick test_avmm_time_advances_with_instructions;
          Alcotest.test_case "snapshot refs logged" `Quick test_avmm_snapshot_refs_logged;
        ] );
      ( "spot-check",
        [
          Alcotest.test_case "chunk audit" `Quick test_spot_check_chunks;
          Alcotest.test_case "incompleteness (paper §3.5)" `Quick test_spot_check_incompleteness;
        ] );
      ( "clock-opt",
        [
          Alcotest.test_case "delay schedule" `Quick test_clock_opt_unit;
          Alcotest.test_case "delay cap" `Quick test_clock_opt_cap;
        ] );
      ( "wireformat",
        [
          Alcotest.test_case "payload words" `Quick test_wireformat_words_roundtrip;
          Alcotest.test_case "envelope" `Quick test_wireformat_envelope;
          Alcotest.test_case "ack" `Quick test_wireformat_ack;
        ] );
      ( "avmm-protocol",
        [
          Alcotest.test_case "duplicate delivery" `Quick test_avmm_duplicate_delivery;
          Alcotest.test_case "bad signature rejected" `Quick test_avmm_rejects_bad_signature;
          Alcotest.test_case "corrupt copy, clean retransmit" `Quick
            test_avmm_corrupt_then_clean_retransmit;
          Alcotest.test_case "unacked tracking" `Quick test_avmm_unacked_tracking;
        ] );
      ( "multiparty",
        [ Alcotest.test_case "bookkeeping" `Quick test_multiparty_bookkeeping ] );
      ( "witness",
        [
          Alcotest.test_case "assignment" `Quick test_witness_assign;
          Alcotest.test_case "epoch jobs" `Quick test_witness_epoch_jobs;
          Alcotest.test_case "sharded pool is order/worker stable" `Quick
            test_witness_run_sharded_stable;
        ] );
      ( "config", [ Alcotest.test_case "cost ladder" `Quick test_config_ladder ] );
    ]
