open Avm_netsim
open Avm_core

(* --- Sim -------------------------------------------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule sim ~at:30.0 (fun () -> order := 3 :: !order);
  Sim.schedule sim ~at:10.0 (fun () -> order := 1 :: !order);
  Sim.schedule sim ~at:20.0 (fun () -> order := 2 :: !order);
  Sim.run_until sim 100.0;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check (float 0.001)) "clock" 100.0 (Sim.now sim)

let test_sim_fifo_at_same_time () =
  let sim = Sim.create () in
  let order = ref [] in
  for i = 1 to 20 do
    Sim.schedule sim ~at:5.0 (fun () -> order := i :: !order)
  done;
  Sim.run_until sim 5.0;
  Alcotest.(check (list int)) "stable" (List.init 20 (fun i -> i + 1)) (List.rev !order)

let test_sim_cascading_events () =
  let sim = Sim.create () in
  let hits = ref 0 in
  let rec chain n () =
    incr hits;
    if n > 0 then Sim.after sim 1.0 (chain (n - 1))
  in
  Sim.schedule sim ~at:1.0 (chain 9);
  Sim.run_until sim 100.0;
  Alcotest.(check int) "all fired" 10 !hits

let test_sim_horizon_respected () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~at:50.0 (fun () -> fired := true);
  Sim.run_until sim 49.9;
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int) "pending" 1 (Sim.pending sim);
  Sim.run_until sim 50.0;
  Alcotest.(check bool) "fired" true !fired

let test_sim_past_schedules_clamp () =
  let sim = Sim.create () in
  Sim.run_until sim 100.0;
  let fired = ref false in
  Sim.schedule sim ~at:5.0 (fun () -> fired := true);
  Sim.run_until sim 100.0;
  Alcotest.(check bool) "clamped to now" true !fired

(* --- Host -------------------------------------------------------------------- *)

let test_host_daemon_pinned () =
  let h = Host.create () in
  Host.charge_daemon h 1000.0;
  let u = Host.utilization h ~elapsed_us:10_000.0 in
  Alcotest.(check (float 0.001)) "ht0" 0.1 u.(0);
  Alcotest.(check (float 0.001)) "ht1 idle" 0.0 u.(1)

let test_host_game_round_robin () =
  let h = Host.create () in
  (* 60ms of single-threaded game spread over 6 allowed HTs. *)
  Host.charge_game h 60_000.0;
  let u = Host.utilization h ~elapsed_us:60_000.0 in
  Alcotest.(check (float 0.01)) "ht4 avoided" 0.0 u.(4);
  Alcotest.(check (float 0.05)) "spread evenly" (1.0 /. 6.0) u.(1);
  Alcotest.(check (float 0.01)) "average 1/8" (1.0 /. 8.0)
    (Host.total_utilization h ~elapsed_us:60_000.0)

let test_host_audit_soaks_idle () =
  let h = Host.create () in
  Host.charge_audit h 30_000.0;
  let u = Host.utilization h ~elapsed_us:30_000.0 in
  Alcotest.(check (float 0.001)) "daemon ht untouched" 0.0 u.(0)

(* --- Net --------------------------------------------------------------------------- *)

(* A trivial guest that sends one packet to the peer named by its
   first input event and then idles reading the clock. *)
let chatty_src =
  {|
fn main() {
  var dest = in(INPUT);
  out(NET_TX, dest);
  out(NET_TX, 42);
  out(NET_TX_SEND, 0);
  while (1) {
    var t = in(CLOCK);
    var avail = in(NET_RX_AVAIL);
    if (avail > 0) {
      var len = in(NET_RX_LEN);
      len = len;
      out(NET_RX_NEXT, 0);
    }
    t = t;
  }
}
|}

let chatty_image () = (Avm_mlang.Compile.compile ~stack_top:4096 chatty_src).Avm_isa.Asm.words

let make_net ?(loss = 0.0) ?(config = Config.make Config.Avmm_rsa768) () =
  let img = chatty_image () in
  let net =
    Net.create ~rsa_bits:512 ~loss ~config ~images:[ img; img ] ~mem_words:4096
      ~names:[ "n0"; "n1" ] ()
  in
  Net.queue_input net 0 1;
  Net.queue_input net 1 0;
  net

let recv_count net i =
  let log = Avm_core.Avmm.log (Net.node_avmm (Net.node net i)) in
  let n = ref 0 in
  Avm_tamperlog.Log.iter log (fun e ->
      match e.Avm_tamperlog.Entry.content with
      | Avm_tamperlog.Entry.Recv _ -> incr n
      | _ -> ());
  !n

let test_net_delivery_and_acks () =
  let net = make_net () in
  Net.run net ~until_us:500_000.0 ();
  Alcotest.(check int) "n1 got n0's packet" 1 (recv_count net 1);
  Alcotest.(check int) "n0 got n1's packet" 1 (recv_count net 0);
  (* acks drained the unacked queues *)
  Array.iter
    (fun n ->
      Alcotest.(check int) "acked"
        0
        (List.length (Avm_core.Avmm.unacked (Net.node_avmm n) ~older_than_us:infinity)))
    (Net.nodes net)

let test_net_loss_retransmission () =
  (* With heavy loss, retransmission still delivers eventually. *)
  let net = make_net ~loss:0.5 () in
  Net.run net ~until_us:5_000_000.0 ();
  Alcotest.(check int) "delivered despite loss" 1 (recv_count net 1)

let test_net_isolation () =
  let net = make_net () in
  Net.isolate net 1;
  Net.run net ~until_us:500_000.0 ();
  Alcotest.(check int) "nothing delivered" 0 (recv_count net 1);
  Net.heal net 1;
  Net.run net ~until_us:2_000_000.0 ();
  Alcotest.(check int) "retransmission heals" 1 (recv_count net 1)

let test_net_backoff_regression () =
  (* The retransmission-storm regression: a 10 s outage spans ~80
     sweep ticks (125 ms cadence under the default 250 ms base), but
     per-envelope exponential backoff must keep actual resends
     logarithmic — 250 ms, 750 ms, 1.75 s, 3.75 s, 7.75 s — not one
     per sweep. *)
  let net = make_net () in
  Net.isolate net 1;
  Net.run net ~until_us:10_000_000.0 ();
  let r = Avm_core.Avmm.retransmissions_sent (Net.node_avmm (Net.node net 0)) in
  if r < 3 || r > 8 then
    Alcotest.failf "expected O(log) retransmissions for one envelope over 10 s, got %d" r;
  (* the healed network still converges *)
  Net.heal net 1;
  Net.run net ~until_us:25_000_000.0 ();
  Alcotest.(check int) "delivered after heal" 1 (recv_count net 1)

let test_net_backoff_gives_up () =
  let config = Config.make ~retrans_max_attempts:3 Config.Avmm_rsa768 in
  let net = make_net ~config () in
  Net.isolate net 1;
  Net.run net ~until_us:10_000_000.0 ();
  let a = Net.node_avmm (Net.node net 0) in
  (* attempts 2 and 3 go out, then the envelope is abandoned *)
  Alcotest.(check int) "stopped at max attempts" 2 (Avm_core.Avmm.retransmissions_sent a);
  Alcotest.(check int) "gave up once" 1 (Avm_core.Avmm.retransmissions_gaveup a)

let test_net_duplicate_idempotent () =
  (* Every packet delivered twice: the duplicate cache must keep the
     logs identical to a clean run — one RECV per message, all sends
     acked. *)
  let img = chatty_image () in
  let net =
    Net.create ~rsa_bits:512 ~faults:(Faults.make ~duplicate:1.0 ())
      ~config:(Config.make Config.Avmm_rsa768) ~images:[ img; img ] ~mem_words:4096
      ~names:[ "n0"; "n1" ] ()
  in
  Net.queue_input net 0 1;
  Net.queue_input net 1 0;
  Net.run net ~until_us:500_000.0 ();
  Alcotest.(check int) "one recv despite duplicates" 1 (recv_count net 1);
  Alcotest.(check int) "one recv despite duplicates" 1 (recv_count net 0);
  Array.iter
    (fun n ->
      Alcotest.(check int) "acked"
        0
        (List.length (Avm_core.Avmm.unacked (Net.node_avmm n) ~older_than_us:infinity)))
    (Net.nodes net)

let test_net_fault_determinism () =
  (* A fixed seed must pin every packet fate: two identical runs under
     an aggressive fault policy end with bit-identical logs. *)
  let run () =
    let img = chatty_image () in
    let faults =
      Faults.make ~drop:0.2 ~duplicate:0.2 ~reorder:0.3 ~jitter_us:15_000.0 ~corrupt:0.1 ()
    in
    let net =
      Net.create ~seed:99L ~rsa_bits:512 ~faults ~config:(Config.make Config.Avmm_rsa768)
        ~images:[ img; img ] ~mem_words:4096 ~names:[ "n0"; "n1" ] ()
    in
    Net.queue_input net 0 1;
    Net.queue_input net 1 0;
    Net.run net ~until_us:2_000_000.0 ();
    ( Avm_tamperlog.Log.head_hash (Avm_core.Avmm.log (Net.node_avmm (Net.node net 0))),
      Avm_tamperlog.Log.head_hash (Avm_core.Avmm.log (Net.node_avmm (Net.node net 1))),
      Net.retransmissions net )
  in
  Alcotest.(check bool) "same logs and retransmission count" true (run () = run ())

let test_net_auth_collection () =
  let net = make_net () in
  Net.run net ~until_us:500_000.0 ();
  (* receiver collected sender's authenticator, sender collected the
     receiver's (from the ack) *)
  let l0 = Net.node_ledger (Net.node net 0) in
  let l1 = Net.node_ledger (Net.node net 1) in
  Alcotest.(check bool) "n1 has n0 auths" true (List.length (Multiparty.auths_for l1 "n0") >= 1);
  Alcotest.(check bool) "n0 has n1 auths" true (List.length (Multiparty.auths_for l0 "n1") >= 1)

let test_net_ping_ladder () =
  let img = chatty_image () in
  let medians =
    List.map
      (fun level ->
        let net =
          Net.create ~rsa_bits:512 ~config:(Config.make level) ~images:[ img; img ]
            ~mem_words:4096 ~names:[ "a"; "b" ] ()
        in
        Avm_util.Stats.median (Net.ping_rtts_us net ~samples:60))
      Config.all_levels
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "ladder monotone" true (monotone medians);
  Alcotest.(check bool) "bare close to 192us" true
    (List.hd medians > 150.0 && List.hd medians < 260.0);
  Alcotest.(check bool) "rsa768 in the ms range" true (List.nth medians 4 > 3000.0)

let test_net_wire_accounting () =
  let net = make_net () in
  Net.run net ~until_us:1_000_000.0 ();
  Alcotest.(check bool) "nonzero traffic" true (Net.wire_kbps net 0 ~elapsed_us:1.0e6 > 0.0)

let test_net_determinism () =
  let run () =
    let net = make_net () in
    Net.run net ~until_us:300_000.0 ();
    Avm_tamperlog.Log.head_hash (Avm_core.Avmm.log (Net.node_avmm (Net.node net 0)))
  in
  Alcotest.(check bool) "same head hash" true (String.equal (run ()) (run ()))

(* --- Sim properties ---------------------------------------------------------- *)

(* The heap invariant every self-scheduling node relies on: events pop
   in nondecreasing time order, and insertion order breaks ties. Random
   times drawn from a tiny range force plenty of collisions. *)
let qtest_sim_pop_order =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"pop times nondecreasing, ties FIFO"
       QCheck2.Gen.(list_size (int_range 0 400) (int_range 0 7))
       (fun times ->
         let sim = Sim.create () in
         let fired = ref [] in
         List.iteri
           (fun i t ->
             Sim.schedule sim ~at:(float_of_int t) (fun () -> fired := (t, i) :: !fired))
           times;
         Sim.run_until sim 10.0;
         let fired = List.rev !fired in
         List.length fired = List.length times
         && fst (List.fold_left
                   (fun (ok, prev) (t, i) ->
                     match prev with
                     | None -> (ok, Some (t, i))
                     | Some (pt, pi) ->
                       ((ok && pt <= t) && ((t <> pt) || pi < i), Some (t, i)))
                   (true, None) fired)))

let test_sim_heap_growth () =
  (* Push well past the 256-entry initial capacity, in reverse time
     order so every insert sifts, then check a late horizon drains them
     all in order. *)
  let sim = Sim.create () in
  let n = 2000 in
  let hits = ref 0 and last = ref neg_infinity in
  for i = n downto 1 do
    Sim.schedule sim ~at:(float_of_int i) (fun () ->
        incr hits;
        Alcotest.(check bool) "ordered" true (Sim.now sim >= !last);
        last := Sim.now sim)
  done;
  Alcotest.(check int) "all pending" n (Sim.pending sim);
  Sim.run_until sim (float_of_int (n + 1));
  Alcotest.(check int) "all fired" n !hits;
  Alcotest.(check int) "processed counter" n (Sim.processed sim)

(* --- Topology ----------------------------------------------------------------- *)

let test_topology_validation () =
  Alcotest.check_raises "self edge rejected"
    (Invalid_argument "Topology.of_adjacency: node adjacent to itself") (fun () ->
      ignore (Topology.of_adjacency [| [| 0 |] |]));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Topology.of_adjacency: negative node index") (fun () ->
      ignore (Topology.of_adjacency [| [| -1 |] |]))

let test_topology_witness_graph () =
  let nodes = 40 and k = 3 in
  let t1 = Topology.witness_graph ~seed:5L ~nodes ~k in
  let t2 = Topology.witness_graph ~seed:5L ~nodes ~k in
  for i = 0 to nodes - 1 do
    let w = Topology.witnesses_of t1 ~nodes i in
    Alcotest.(check int) "degree k" k (Array.length w);
    Array.iter (fun j -> Alcotest.(check bool) "not self" true (j <> i)) w;
    Alcotest.(check (array int)) "seed-deterministic" w (Topology.witnesses_of t2 ~nodes i)
  done;
  let names = Array.init nodes (fun i -> Printf.sprintf "n%d" i) in
  (match Topology.peer_list t1 ~names 0 with
  | None -> Alcotest.fail "graph topology must build per-node peer lists"
  | Some l ->
    Alcotest.(check int) "k peers" k (List.length l);
    List.iteri
      (fun slot (id, name) ->
        Alcotest.(check int) "dense dest ids" slot id;
        Alcotest.(check string) "name matches row" names.((Topology.witnesses_of t1 ~nodes 0).(slot)) name)
      l);
  Alcotest.(check bool) "full mesh shares one map" true
    (Topology.peer_list Topology.full_mesh ~names 0 = None)

let () =
  Alcotest.run "netsim"
    [
      ( "sim",
        [
          Alcotest.test_case "time ordering" `Quick test_sim_ordering;
          Alcotest.test_case "FIFO at equal times" `Quick test_sim_fifo_at_same_time;
          Alcotest.test_case "cascading events" `Quick test_sim_cascading_events;
          Alcotest.test_case "horizon respected" `Quick test_sim_horizon_respected;
          Alcotest.test_case "past schedules clamp" `Quick test_sim_past_schedules_clamp;
          Alcotest.test_case "heap growth past 256" `Quick test_sim_heap_growth;
          qtest_sim_pop_order;
        ] );
      ( "topology",
        [
          Alcotest.test_case "adjacency validation" `Quick test_topology_validation;
          Alcotest.test_case "witness graph" `Quick test_topology_witness_graph;
        ] );
      ( "host",
        [
          Alcotest.test_case "daemon pinned to HT0" `Quick test_host_daemon_pinned;
          Alcotest.test_case "game round robin" `Quick test_host_game_round_robin;
          Alcotest.test_case "audits soak idle HTs" `Quick test_host_audit_soaks_idle;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery and acks" `Quick test_net_delivery_and_acks;
          Alcotest.test_case "loss + retransmission" `Quick test_net_loss_retransmission;
          Alcotest.test_case "isolation and healing" `Quick test_net_isolation;
          Alcotest.test_case "backoff is O(log), not per-sweep" `Quick test_net_backoff_regression;
          Alcotest.test_case "backoff gives up at max attempts" `Quick test_net_backoff_gives_up;
          Alcotest.test_case "duplicates are idempotent" `Quick test_net_duplicate_idempotent;
          Alcotest.test_case "faults are seed-deterministic" `Quick test_net_fault_determinism;
          Alcotest.test_case "authenticator collection" `Quick test_net_auth_collection;
          Alcotest.test_case "ping ladder" `Quick test_net_ping_ladder;
          Alcotest.test_case "wire accounting" `Quick test_net_wire_accounting;
          Alcotest.test_case "bit determinism" `Quick test_net_determinism;
        ] );
    ]
