open Avm_scenario
open Avm_core

(* Scenario tests exercise whole-system behaviour; durations are kept
   short and keys small so the suite stays fast. *)

let quick_spec ?cheat ?(duration = 6.0e6) ?(level = Config.Avmm_rsa768) () =
  {
    Game_run.players = 3;
    duration_us = duration;
    config = Config.make ~snapshot_every_us:(Some 3_000_000) level;
    cheat;
    frame_cap = false;
    seed = 42L;
    rsa_bits = 512;
    faults = None;
  }

let test_guests_compile () =
  Alcotest.(check bool) "game" true (Array.length (Guests.game_image ()).Avm_isa.Asm.words > 100);
  Alcotest.(check bool) "kvstore" true
    (Array.length (Guests.kvstore_image ()).Avm_isa.Asm.words > 100)

let test_game_symbols_exist () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Guests.game_symbol s >= 0))
    [ "g_ammo"; "g_myx"; "g_myy"; "g_phealth"; "g_pscore"; "g_frame_no" ]

let test_patch_missing_anchor_fails () =
  Alcotest.(check bool) "missing anchor" true
    (match Guests.game_with_patch ~old:"no such code anywhere" ~new_:"x" with
    | _ -> false
    | exception Failure _ -> true)

let test_input_encoding () =
  Alcotest.(check int) "role" 0x0300 (Guests.input_role ~role:0 ~nplayers:3);
  let mv = Guests.input_move ~dx:(-128) ~dy:127 in
  Alcotest.(check int) "move tag" 1 (mv lsr 28);
  let aim = Guests.input_aim ~angle:0xffff in
  Alcotest.(check int) "aim tag" 2 (aim lsr 28);
  Alcotest.(check int) "fire tag" 3 (Guests.input_fire lsr 28)

let test_cheat_catalog_shape () =
  Alcotest.(check int) "26 cheats" 26 (List.length Cheats.catalog);
  let class2 = List.filter (fun c -> c.Cheats.class2) Cheats.catalog in
  Alcotest.(check int) "4 any-implementation" 4 (List.length class2);
  (* names unique *)
  let names = List.map (fun c -> c.Cheats.name) Cheats.catalog in
  Alcotest.(check int) "unique names" 26 (List.length (List.sort_uniq compare names));
  (* all patched images compile and differ from the reference *)
  List.iter
    (fun c ->
      match c.Cheats.mechanism with
      | Cheats.Image_patch _ ->
        let img = Cheats.image_for c in
        Alcotest.(check bool) (c.Cheats.name ^ " differs") true
          (img.Avm_isa.Asm.words <> (Guests.game_image ()).Avm_isa.Asm.words)
      | _ -> ())
    Cheats.catalog

let test_bots_deterministic () =
  let collect () =
    let bot = Bots.create ~seed:7L in
    let acc = ref [] in
    for i = 1 to 20 do
      Bots.tick bot
        ~now_us:(float_of_int i *. 100_000.0)
        ~last_us:(float_of_int (i - 1) *. 100_000.0)
        (fun v -> acc := v :: !acc)
    done;
    !acc
  in
  Alcotest.(check (list int)) "deterministic" (collect ()) (collect ())

let test_game_runs_and_audits () =
  let o = Game_run.play (quick_spec ()) in
  Array.iter
    (fun fps -> Alcotest.(check bool) "renders frames" true (fps > 50.0))
    o.Game_run.fps;
  for target = 0 to 2 do
    let report = Game_run.audit_player o ~auditor:((target + 1) mod 3) ~target in
    match report.Audit.verdict with
    | Ok () -> ()
    | Error e -> Alcotest.failf "honest player %d failed audit: %s" target e
  done

let test_partition_heal_verdicts_parallel () =
  (* ISSUE 4 acceptance: 20% loss plus a partition window that heals
     mid-session; every player's log still converges (all sends acked
     once the wire clears) and the audit verdict is identical whether
     the syntactic pass runs on 1 lane or 4. *)
  let d = 3.0e6 in
  let faults =
    Avm_netsim.Faults.make ~drop:0.2 ~until_us:(0.8 *. d)
      ~partitions:[ { Avm_netsim.Faults.from_us = 0.2 *. d; to_us = 0.4 *. d; node = 1 } ]
      ()
  in
  let spec =
    {
      (quick_spec ~duration:d ()) with
      Game_run.faults = Some faults;
      config =
        (* fast backoff so the post-heal tail converges within 3 s *)
        Config.make
          ~snapshot_every_us:(Some 1_500_000)
          ~retrans_base_us:60_000.0 ~retrans_cap_us:500_000.0 Config.Avmm_rsa768;
    }
  in
  let o = Game_run.play spec in
  Alcotest.(check bool) "loss caused retransmissions" true
    (Avm_netsim.Net.retransmissions o.Game_run.net > 0);
  for target = 0 to 2 do
    let auditor = (target + 1) mod 3 in
    let seq = Game_run.audit_player ~par:Audit.sequential o ~auditor ~target in
    let par = Game_run.audit_player ~par:(Audit.parallel 4) o ~auditor ~target in
    Alcotest.(check bool)
      (Printf.sprintf "player %d: same verdict at 1 and 4 lanes" target)
      true
      (seq.Audit.verdict = par.Audit.verdict);
    match seq.Audit.verdict with
    | Ok () -> ()
    | Error e -> Alcotest.failf "honest player %d failed under faults: %s" target e
  done

let test_fps_ladder () =
  let fps level =
    let o = Game_run.play (quick_spec ~level ()) in
    Array.fold_left ( +. ) 0.0 o.Game_run.fps /. 3.0
  in
  let bare = fps Config.Bare_hw in
  let avmm = fps Config.Avmm_rsa768 in
  Alcotest.(check bool) "bare faster" true (bare > avmm);
  let drop = 1.0 -. (avmm /. bare) in
  Alcotest.(check bool) "drop in 5-25% band (paper: 13%)" true (drop > 0.05 && drop < 0.25)

let test_representative_cheats_detected () =
  (* One representative per mechanism family; Table 1 in full runs all
     26 via bin/experiments. *)
  List.iter
    (fun name ->
      let c = Cheats.find name in
      Alcotest.(check bool) (name ^ " detected") true
        (Experiments.check_cheat ~scale:Experiments.Quick c))
    [ "aimbot-zeus"; "wallhack-driver"; "speedhack-4x"; "unlimited-ammo"; "scorehack" ]

let test_external_aimbot_not_detected () =
  Alcotest.(check bool) "external aimbot passes audits" false
    (Experiments.check_cheat ~scale:Experiments.Quick Cheats.external_aimbot)

let test_kv_run_and_spot_check () =
  let o = Kv_run.run ~duration_us:30.0e6 ~snapshot_every_us:5_000_000 ~rsa_bits:512 () in
  Alcotest.(check bool) "client made progress" true (o.Kv_run.client_ops > 10);
  Alcotest.(check bool) "snapshots taken" true (List.length o.Kv_run.server_snapshots >= 4);
  let rep = Kv_run.audit_server_chunk o ~start_snapshot:1 ~k:2 in
  (match rep.Spot_check.outcome with
  | Replay.Verified _ -> ()
  | out -> Alcotest.failf "chunk diverged: %s" (Format.asprintf "%a" Replay.pp_outcome out));
  Alcotest.(check bool) "replayed something" true (rep.Spot_check.replay_instructions > 1000)

let test_kv_full_audit_cost_positive () =
  let o = Kv_run.run ~duration_us:20.0e6 ~snapshot_every_us:5_000_000 ~rsa_bits:512 () in
  let instr, bytes = Kv_run.full_audit_cost o in
  Alcotest.(check bool) "instructions" true (instr > 100_000);
  Alcotest.(check bool) "compressed bytes" true (bytes > 1000)

let test_fig5_shape () =
  let rows = Experiments.fig5 ~scale:Experiments.Quick () in
  Alcotest.(check int) "five configs" 5 (List.length rows);
  let medians = List.map (fun r -> r.Experiments.median_us) rows in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone ladder" true (monotone medians)

let test_frame_cap_holds () =
  let spec = { (quick_spec ~duration:5.0e6 ()) with Game_run.frame_cap = true } in
  let o = Game_run.play spec in
  Array.iter
    (fun fps -> Alcotest.(check bool) "capped near 72" true (fps < 75.0))
    o.Game_run.fps

let test_recording_roundtrip () =
  let o = Game_run.play (quick_spec ~duration:3.0e6 ()) in
  let r = Recording.of_game_node o 1 in
  let r2 = Recording.decode (Recording.encode r) in
  Alcotest.(check string) "node" r.Recording.node r2.Recording.node;
  Alcotest.(check int) "entries" (List.length r.Recording.entries)
    (List.length r2.Recording.entries);
  Alcotest.(check int) "auths" (List.length r.Recording.auths) (List.length r2.Recording.auths);
  Alcotest.(check int) "certs" (List.length r.Recording.certificates)
    (List.length r2.Recording.certificates);
  (* file round trip *)
  let path = Filename.temp_file "avmrec" ".bin" in
  Recording.save ~path r;
  let r3 = Recording.load ~path in
  Sys.remove path;
  Alcotest.(check bool) "file identical" true (Recording.encode r3 = Recording.encode r);
  (* and the recording audits clean end-to-end, like bin/avm_audit *)
  let node_cert = List.assoc r.Recording.node r.Recording.certificates in
  let report =
    Avm_core.Audit.full
      ~ctx:
        (Avm_core.Audit.ctx ~node_cert ~peer_certs:r.Recording.certificates
           ~auths:r.Recording.auths ())
      ~image:(Recording.image_of_scenario r.Recording.scenario)
      ~mem_words:r.Recording.mem_words ~peers:r.Recording.peers
      ~prev_hash:Avm_tamperlog.Log.genesis_hash ~entries:r.Recording.entries ()
  in
  Alcotest.(check bool) "audits clean" true (report.Avm_core.Audit.verdict = Ok ())

let test_recording_garbage_rejected () =
  Alcotest.(check bool) "garbage" true
    (match Recording.decode "not a recording at all" with
    | _ -> false
    | exception Avm_util.Wire.Malformed _ -> true)

let test_auction_honest_and_rigged () =
  let honest = Auction_run.run ~duration_us:8.0e6 () in
  Alcotest.(check bool) "rounds happened" true (honest.Auction_run.rounds > 5);
  Alcotest.(check int) "honest auctioneer never wins" 0 honest.Auction_run.wins.(0);
  (match (Auction_run.audit honest ~target:0).Audit.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest auctioneer failed audit: %s" e);
  (* bidders audit clean too *)
  (match (Auction_run.audit honest ~target:1).Audit.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bidder failed audit: %s" e);
  let rigged = Auction_run.run ~duration_us:8.0e6 ~rigged:true () in
  Alcotest.(check bool) "rigging works" true (rigged.Auction_run.wins.(0) > 0);
  match (Auction_run.audit rigged ~target:0).Audit.verdict with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "rigged auctioneer passed audit"

let test_p2p_fair_and_freerider () =
  let fair = P2p_run.run ~duration_us:15.0e6 () in
  Alcotest.(check bool) "everyone uploads" true
    (Array.for_all (fun s -> s > 0) fair.P2p_run.served);
  (match (P2p_run.audit fair ~target:0).Audit.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fair peer failed audit: %s" e);
  let bad = P2p_run.run ~duration_us:15.0e6 ~freerider:(Some 1) () in
  Alcotest.(check int) "freerider uploads nothing" 0 bad.P2p_run.served.(1);
  match (P2p_run.audit bad ~target:1).Audit.verdict with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "freerider passed audit"

(* --- fleet -------------------------------------------------------------------------------------- *)

let test_fleet_run () =
  let spec =
    {
      Fleet_run.default_spec with
      Fleet_run.nodes = 30;
      witnesses = 2;
      epochs = 2;
      activity = 0.2;
      cheat_frac = 0.05;
    }
  in
  let o = Fleet_run.run ~par:Audit_ctx.sequential spec in
  let o2 = Fleet_run.run ~par:(Audit_ctx.parallel 2) spec in
  Alcotest.(check int) "all pairs audited" (30 * 2 * 2) (List.length o.Fleet_run.verdicts);
  List.iter
    (fun (r : Fleet_run.epoch_report) ->
      Alcotest.(check (float 1e-9)) "full coverage" 1.0 r.Fleet_run.coverage)
    o.Fleet_run.reports;
  Alcotest.(check bool) "cheats planted" true (o.Fleet_run.cheats <> []);
  Alcotest.(check (list int)) "no cheat missed" [] o.Fleet_run.missed;
  Alcotest.(check (list int)) "no honest node flagged" [] o.Fleet_run.false_flagged;
  Alcotest.(check string) "verdicts invariant under auditor jobs" (Fleet_run.signature o)
    (Fleet_run.signature o2);
  Alcotest.(check bool) "events flowed" true (o.Fleet_run.sim_events > 0)

let () =
  Alcotest.run "scenario"
    [
      ( "guests",
        [
          Alcotest.test_case "compile" `Quick test_guests_compile;
          Alcotest.test_case "symbols" `Quick test_game_symbols_exist;
          Alcotest.test_case "patch anchors checked" `Quick test_patch_missing_anchor_fails;
          Alcotest.test_case "input encoding" `Quick test_input_encoding;
        ] );
      ( "cheats",
        [
          Alcotest.test_case "catalog shape" `Quick test_cheat_catalog_shape;
          Alcotest.test_case "representative detection" `Slow test_representative_cheats_detected;
          Alcotest.test_case "external aimbot invisible" `Slow test_external_aimbot_not_detected;
        ] );
      ( "game",
        [
          Alcotest.test_case "bots deterministic" `Quick test_bots_deterministic;
          Alcotest.test_case "runs and audits" `Slow test_game_runs_and_audits;
          Alcotest.test_case "partition+loss heals, verdicts lane-invariant" `Slow
            test_partition_heal_verdicts_parallel;
          Alcotest.test_case "fps ladder" `Slow test_fps_ladder;
          Alcotest.test_case "frame cap holds" `Slow test_frame_cap_holds;
        ] );
      ( "kvstore",
        [
          Alcotest.test_case "run + spot check" `Slow test_kv_run_and_spot_check;
          Alcotest.test_case "full audit cost" `Slow test_kv_full_audit_cost_positive;
        ] );
      ( "p2p",
        [ Alcotest.test_case "fair swarm vs freerider" `Slow test_p2p_fair_and_freerider ] );
      ( "auction",
        [ Alcotest.test_case "honest vs rigged" `Slow test_auction_honest_and_rigged ] );
      ( "recording",
        [
          Alcotest.test_case "roundtrip + audit" `Slow test_recording_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_recording_garbage_rejected;
        ] );
      ( "experiments", [ Alcotest.test_case "fig5 shape" `Quick test_fig5_shape ] );
      ( "fleet",
        [ Alcotest.test_case "witness audits catch the cheating minority" `Slow test_fleet_run ] );
    ]
