open Avm_crypto
module Rng = Avm_util.Rng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- SHA-256 -------------------------------------------------------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
    (* exactly one block of padding boundary: 55, 56, 64 bytes *)
    ( String.make 55 'a',
      "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318" );
    ( String.make 56 'a',
      "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a" );
    ( String.make 64 'a',
      "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb" );
  ]

let test_sha_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "%d bytes" (String.length input))
        expected (Sha256.hex input))
    sha_vectors

let test_sha_streaming_chunks () =
  (* Feeding in odd-sized chunks must equal one-shot hashing. *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 7; 63; 64; 65; 100; 500; 200 ] in
  List.iter
    (fun n ->
      let take = min n (String.length data - !pos) in
      Sha256.feed ctx (String.sub data !pos take);
      pos := !pos + take)
    sizes;
  Alcotest.(check string) "streaming" (Sha256.hex data)
    (Avm_util.Hex.encode (Sha256.finalize ctx))

let test_sha_million_a () =
  (* FIPS 180-4 long-message vector: one million 'a's, fed in uneven
     chunks so the multi-block streaming path is exercised. *)
  let chunk = String.make 9973 'a' in
  let ctx = Sha256.init () in
  let left = ref 1_000_000 in
  while !left > 0 do
    let take = min !left (String.length chunk) in
    Sha256.feed_sub ctx chunk ~pos:0 ~len:take;
    left := !left - take
  done;
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Avm_util.Hex.encode (Sha256.finalize ctx))

let test_sha_feed_sub () =
  let data = "..prefix.." ^ String.make 200 'q' ^ "..suffix.." in
  let ctx = Sha256.init () in
  Sha256.feed_sub ctx data ~pos:10 ~len:200;
  Alcotest.(check string) "feed_sub window" (Sha256.hex (String.make 200 'q'))
    (Avm_util.Hex.encode (Sha256.finalize ctx));
  let b = Bytes.of_string data in
  Sha256.reset ctx;
  Sha256.feed_bytes ctx b ~pos:10 ~len:200;
  Alcotest.(check string) "feed_bytes window" (Sha256.hex (String.make 200 'q'))
    (Avm_util.Hex.encode (Sha256.finalize ctx))

let test_sha_feed_buffer () =
  let buf = Buffer.create 16 in
  for i = 0 to 999 do
    Buffer.add_char buf (Char.chr (i mod 251))
  done;
  Alcotest.(check string) "digest_buffer"
    (Sha256.digest (Buffer.contents buf))
    (Sha256.digest_buffer buf)

let test_sha_reset_reuse () =
  (* A context survives finalize + reset without bleeding state. *)
  let ctx = Sha256.init () in
  Sha256.feed ctx "abc";
  let first = Sha256.finalize ctx in
  Sha256.reset ctx;
  Sha256.feed ctx "abc";
  Alcotest.(check string) "same digest after reset" (Avm_util.Hex.encode first)
    (Avm_util.Hex.encode (Sha256.finalize ctx));
  Sha256.reset ctx;
  Alcotest.(check string) "empty after reset"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Avm_util.Hex.encode (Sha256.finalize ctx))

let prop_sha_digest_list =
  qtest "sha256: digest_list = digest of concat"
    QCheck2.Gen.(list_size (int_range 0 5) string)
    (fun parts ->
      String.equal (Sha256.digest_list parts) (Sha256.digest (String.concat "" parts)))

let test_sha_length () =
  Alcotest.(check int) "32 bytes" 32 (String.length (Sha256.digest "x"));
  Alcotest.(check int) "digest_length" 32 Sha256.digest_length

(* --- HMAC ------------------------------------------------------------------ *)

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 2. *)
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hex ~key:"Jefe" "what do ya want for nothing?");
  (* RFC 4231 test case 1: key = 20 x 0x0b. *)
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.hex ~key:(String.make 20 '\x0b') "Hi There")

let test_hmac_long_key () =
  (* Keys longer than one block are hashed first (RFC 4231 case 6). *)
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.hex
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

(* --- Bignum ------------------------------------------------------------------ *)

let small_pair = QCheck2.Gen.(pair (int_range 0 1_000_000_000) (int_range 0 1_000_000_000))

let prop_bignum_add =
  qtest "bignum: add matches int" small_pair (fun (a, b) ->
      Bignum.to_int (Bignum.add (Bignum.of_int a) (Bignum.of_int b)) = a + b)

let prop_bignum_sub =
  qtest "bignum: sub matches int" small_pair (fun (a, b) ->
      let hi = max a b and lo = min a b in
      Bignum.to_int (Bignum.sub (Bignum.of_int hi) (Bignum.of_int lo)) = hi - lo)

let prop_bignum_mul =
  qtest "bignum: mul matches int"
    QCheck2.Gen.(pair (int_range 0 2_000_000) (int_range 0 2_000_000))
    (fun (a, b) -> Bignum.to_int (Bignum.mul (Bignum.of_int a) (Bignum.of_int b)) = a * b)

let prop_bignum_divmod_small =
  qtest "bignum: divmod matches int"
    QCheck2.Gen.(pair (int_range 0 1_000_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let q, r = Bignum.divmod (Bignum.of_int a) (Bignum.of_int b) in
      Bignum.to_int q = a / b && Bignum.to_int r = a mod b)

let prop_bignum_divmod_big =
  qtest ~count:60 "bignum: big divmod identity a = q*b + r, r < b"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 500))
    (fun (abits, bbits) ->
      let rng = Rng.create (Int64.of_int ((abits * 1000) + bbits)) in
      let a = Bignum.random_bits rng abits in
      let b = Bignum.add Bignum.one (Bignum.random_bits rng bbits) in
      let q, r = Bignum.divmod a b in
      Bignum.compare r b < 0 && Bignum.equal a (Bignum.add (Bignum.mul q b) r))

let test_bignum_div_by_zero () =
  Alcotest.check_raises "zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod Bignum.one Bignum.zero))

let prop_bignum_shift =
  qtest "bignum: shifts are *2^k and /2^k"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 40))
    (fun (a, k) ->
      let big = Bignum.of_int a in
      Bignum.equal (Bignum.shift_left big k)
        (Bignum.mul big (Bignum.mod_pow Bignum.two (Bignum.of_int k) (Bignum.shift_left Bignum.one 80)))
      && Bignum.to_int (Bignum.shift_right (Bignum.shift_left big k) k) = a)

let test_bignum_bit_length () =
  Alcotest.(check int) "0" 0 (Bignum.bit_length Bignum.zero);
  Alcotest.(check int) "1" 1 (Bignum.bit_length Bignum.one);
  Alcotest.(check int) "255" 8 (Bignum.bit_length (Bignum.of_int 255));
  Alcotest.(check int) "256" 9 (Bignum.bit_length (Bignum.of_int 256));
  Alcotest.(check int) "2^100" 101 (Bignum.bit_length (Bignum.shift_left Bignum.one 100))

let test_bignum_fermat () =
  let p = Bignum.of_int 1_000_000_007 in
  let a = Bignum.of_int 123_456_789 in
  Alcotest.(check bool) "a^(p-1) = 1 mod p" true
    (Bignum.equal (Bignum.mod_pow a (Bignum.sub p Bignum.one) p) Bignum.one)

let prop_bignum_modpow_small =
  qtest ~count:100 "bignum: mod_pow matches naive"
    QCheck2.Gen.(triple (int_range 0 100) (int_range 0 12) (int_range 1 1000))
    (fun (b, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * b mod m
      done;
      Bignum.to_int (Bignum.mod_pow (Bignum.of_int b) (Bignum.of_int e) (Bignum.of_int m))
      = !naive)

let prop_bignum_mod_inv =
  qtest ~count:100 "bignum: mod_inv is an inverse"
    QCheck2.Gen.(pair (int_range 2 100000) (int_range 2 100000))
    (fun (a, m) ->
      match Bignum.mod_inv (Bignum.of_int a) (Bignum.of_int m) with
      | None -> Bignum.to_int (Bignum.gcd (Bignum.of_int a) (Bignum.of_int m)) <> 1
      | Some x -> a * Bignum.to_int x mod m = 1 mod m)

let test_bignum_gcd () =
  let g a b = Bignum.to_int (Bignum.gcd (Bignum.of_int a) (Bignum.of_int b)) in
  Alcotest.(check int) "gcd(12,18)" 6 (g 12 18);
  Alcotest.(check int) "gcd(17,5)" 1 (g 17 5);
  Alcotest.(check int) "gcd(0,5)" 5 (g 0 5)

let prop_bignum_bytes_roundtrip =
  qtest "bignum: big-endian bytes roundtrip" QCheck2.Gen.(int_range 0 max_int) (fun v ->
      let b = Bignum.of_int v in
      Bignum.equal (Bignum.of_bytes_be (Bignum.to_bytes_be b)) b)

let test_bignum_to_bytes_padding () =
  Alcotest.(check string) "padded" "\x00\x00\x01" (Bignum.to_bytes_be ~len:3 Bignum.one);
  Alcotest.check_raises "too big" (Invalid_argument "Bignum.to_bytes_be: value too large")
    (fun () -> ignore (Bignum.to_bytes_be ~len:1 (Bignum.of_int 70000)))

let test_miller_rabin_known () =
  let rng = Rng.create 17L in
  let prime v = Bignum.is_probable_prime rng (Bignum.of_int v) in
  List.iter
    (fun p -> Alcotest.(check bool) (Printf.sprintf "%d prime" p) true (prime p))
    [ 2; 3; 5; 7; 997; 1_000_003; 2_147_483_647 ];
  List.iter
    (fun c -> Alcotest.(check bool) (Printf.sprintf "%d composite" c) false (prime c))
    [ 1; 4; 561 (* Carmichael *); 1105 (* Carmichael *); 1_000_001; 25 ]

let test_random_prime_bits () =
  let rng = Rng.create 23L in
  List.iter
    (fun bits ->
      let p = Bignum.random_prime rng ~bits in
      Alcotest.(check int) (Printf.sprintf "%d bits" bits) bits (Bignum.bit_length p);
      Alcotest.(check bool) "prime" true (Bignum.is_probable_prime rng p))
    [ 16; 32; 64; 128 ]

let test_random_below () =
  let rng = Rng.create 31L in
  let n = Bignum.of_int 1000 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "below" true (Bignum.compare (Bignum.random_below rng n) n < 0)
  done

let test_bignum_int_helpers () =
  let n = Bignum.of_int 1000 in
  Alcotest.(check int) "add_int" 1007 (Bignum.to_int (Bignum.add_int n 7));
  Alcotest.(check int) "add_int neg" 993 (Bignum.to_int (Bignum.add_int n (-7)));
  Alcotest.(check int) "sub_int" 993 (Bignum.to_int (Bignum.sub_int n 7));
  Alcotest.(check int) "sub_int neg" 1007 (Bignum.to_int (Bignum.sub_int n (-7)));
  Alcotest.(check int) "mul_int" 3000 (Bignum.to_int (Bignum.mul_int n 3));
  Alcotest.(check int) "rem_int" 1 (Bignum.rem_int n 3)

let test_bignum_to_int_overflow () =
  let huge = Bignum.shift_left Bignum.one 100 in
  Alcotest.(check bool) "overflow raises" true
    (match Bignum.to_int huge with _ -> false | exception Failure _ -> true)

let test_bignum_mod_pow_modulus_one () =
  Alcotest.(check bool) "x^y mod 1 = 0" true
    (Bignum.is_zero (Bignum.mod_pow (Bignum.of_int 5) (Bignum.of_int 3) Bignum.one))

let test_bignum_hex_roundtrip () =
  let v = Bignum.of_hex "deadbeef0123456789" in
  Alcotest.(check string) "hex" "deadbeef0123456789" (Bignum.to_hex v);
  Alcotest.(check bool) "testbit" true (Bignum.testbit v 0);
  Alcotest.(check bool) "even check" false (Bignum.is_even v)

(* --- Montgomery ----------------------------------------------------------------- *)

let prop_mont_matches_classic =
  qtest ~count:80 "bignum: Montgomery mod_pow = classic"
    QCheck2.Gen.(triple (int_range 60 512) (int_range 1 512) (int_range 0 1_000_000))
    (fun (mbits, ebits, seed) ->
      let rng = Rng.create (Int64.of_int ((mbits * 1_000_003) + (ebits * 7) + seed)) in
      (* Force the modulus odd (and >= 2 limbs wide) so Mont.make accepts it. *)
      let m =
        let c = Bignum.random_bits rng mbits in
        if Bignum.is_even c then Bignum.add_int c 1 else c
      in
      let b = Bignum.random_below rng m in
      let e = Bignum.random_bits rng ebits in
      Bignum.equal (Bignum.mod_pow b e m) (Bignum.mod_pow_classic b e m))

let prop_mont_pow_e65537 =
  qtest ~count:60 "bignum: pow_e65537 = classic b^65537"
    QCheck2.Gen.(pair (int_range 60 512) (int_range 0 1_000_000))
    (fun (mbits, seed) ->
      let rng = Rng.create (Int64.of_int ((mbits * 999_983) + seed)) in
      let m =
        let c = Bignum.random_bits rng mbits in
        if Bignum.is_even c then Bignum.add_int c 1 else c
      in
      match Bignum.Mont.make m with
      | None -> QCheck2.assume_fail ()
      | Some ctx ->
        let s = Bignum.Mont.scratch ctx in
        let e = Bignum.of_int 65537 in
        (* Run twice through the same scratch: reuse must not leak
           state between exponentiations. *)
        List.for_all
          (fun b ->
            Bignum.equal (Bignum.Mont.pow_e65537 ctx s b) (Bignum.mod_pow_classic b e m))
          [ Bignum.random_below rng m; Bignum.random_below rng m; Bignum.zero; Bignum.one ])

let test_mont_make_guards () =
  let odd = Bignum.of_hex "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef" in
  let even = Bignum.of_hex "deadbeefdeadbeefdeadbeefdeadbeefdeadbee0" in
  Alcotest.(check bool) "even rejected" true (Bignum.Mont.make even = None);
  Alcotest.(check bool) "single limb rejected" true
    (Bignum.Mont.make (Bignum.of_int 1_000_003) = None);
  match Bignum.Mont.make odd with
  | None -> Alcotest.fail "odd wide modulus accepted"
  | Some c ->
    Alcotest.(check bool) "modulus kept" true (Bignum.equal (Bignum.Mont.modulus c) odd);
    let b = Bignum.of_int 123_456_789 and e = Bignum.of_int 65537 in
    Alcotest.(check bool) "pow matches classic" true
      (Bignum.equal (Bignum.Mont.pow c b e) (Bignum.mod_pow_classic b e odd))

(* --- RSA ----------------------------------------------------------------------- *)

let test_rsa_sign_verify () =
  let rng = Rng.create 41L in
  let kp = Rsa.generate rng ~bits:512 in
  let s = Rsa.sign kp.Rsa.private_ "attack at dawn" in
  Alcotest.(check int) "sig length" 64 (String.length s);
  Alcotest.(check bool) "verifies" true
    (Rsa.verify kp.Rsa.public ~msg:"attack at dawn" ~signature:s);
  Alcotest.(check bool) "different msg" false
    (Rsa.verify kp.Rsa.public ~msg:"attack at dusk" ~signature:s)

let test_rsa_tampered_signature () =
  let rng = Rng.create 43L in
  let kp = Rsa.generate rng ~bits:512 in
  let s = Bytes.of_string (Rsa.sign kp.Rsa.private_ "m") in
  Bytes.set s 10 (Char.chr (Char.code (Bytes.get s 10) lxor 1));
  Alcotest.(check bool) "tampered" false
    (Rsa.verify kp.Rsa.public ~msg:"m" ~signature:(Bytes.to_string s))

let test_rsa_wrong_key () =
  let rng = Rng.create 47L in
  let kp1 = Rsa.generate rng ~bits:512 in
  let kp2 = Rsa.generate rng ~bits:512 in
  let s = Rsa.sign kp1.Rsa.private_ "m" in
  Alcotest.(check bool) "wrong key" false (Rsa.verify kp2.Rsa.public ~msg:"m" ~signature:s)

let test_rsa_malformed_signature () =
  let rng = Rng.create 53L in
  let kp = Rsa.generate rng ~bits:512 in
  Alcotest.(check bool) "short" false (Rsa.verify kp.Rsa.public ~msg:"m" ~signature:"xx");
  Alcotest.(check bool) "oversize value" false
    (Rsa.verify kp.Rsa.public ~msg:"m" ~signature:(String.make 64 '\xff'))

let test_rsa_crt_consistency () =
  (* CRT signing must agree with plain m^d mod n. *)
  let rng = Rng.create 59L in
  let kp = Rsa.generate rng ~bits:512 in
  let priv = kp.Rsa.private_ in
  let msg = "crt check" in
  let s = Rsa.sign priv msg in
  let m = Bignum.mod_pow (Bignum.of_bytes_be s) kp.Rsa.public.Rsa.e kp.Rsa.public.Rsa.n in
  let em = Bignum.to_bytes_be ~len:64 m in
  Alcotest.(check bool) "padding prefix" true (String.sub em 0 2 = "\x00\x01");
  Alcotest.(check string) "digest tail" (Sha256.digest msg)
    (String.sub em (64 - 32) 32)

let test_rsa_public_key_roundtrip () =
  let rng = Rng.create 61L in
  let kp = Rsa.generate rng ~bits:256 in
  let pk = Rsa.public_of_string (Rsa.public_to_string kp.Rsa.public) in
  Alcotest.(check bool) "n" true (Bignum.equal pk.Rsa.n kp.Rsa.public.Rsa.n);
  Alcotest.(check bool) "e" true (Bignum.equal pk.Rsa.e kp.Rsa.public.Rsa.e)

let test_rsa_known_answer () =
  (* Pinned signature: keygen is deterministic in the seed, and PKCS#1
     v1.5 signing is deterministic in the key, so any drift in keygen,
     padding, CRT or the Montgomery exponentiation shows up here. *)
  let rng = Rng.create 4242L in
  let kp = Rsa.generate rng ~bits:512 in
  Alcotest.(check string) "modulus"
    "906fca9e25b26c71a37db91b24abc6bb7604245e84df51dc161d5500ef0ab285288698782163411551447e4cd170ba3e197ec47e210d07ddf36f487ad1ef8b27"
    (Bignum.to_hex kp.Rsa.public.Rsa.n);
  let msg = "accountable virtual machines" in
  let s = Rsa.sign kp.Rsa.private_ msg in
  Alcotest.(check string) "signature"
    "60ef4f8e1162fa2ae57f1978627d4fed6eae73a3a650c40886a3f790ee6d1d76bd4472ee1350e1305d0772549c026c388a0d34709177b249886744ee6cb4b707"
    (Avm_util.Hex.encode s);
  Alcotest.(check bool) "verifies" true (Rsa.verify kp.Rsa.public ~msg ~signature:s)

let test_rsa_deterministic_keygen () =
  let kp1 = Rsa.generate (Rng.create 7L) ~bits:256 in
  let kp2 = Rsa.generate (Rng.create 7L) ~bits:256 in
  Alcotest.(check bool) "same seed same key" true
    (Bignum.equal kp1.Rsa.public.Rsa.n kp2.Rsa.public.Rsa.n)

(* --- Signature cache --------------------------------------------------------------- *)

let test_sigcache_basic () =
  Sigcache.set_enabled true;
  Sigcache.clear ();
  let fp = String.make 32 'f' and s = String.make 64 's' and d = String.make 32 'd' in
  Alcotest.(check bool) "cold miss" false (Sigcache.check ~fingerprint:fp ~signature:s ~digest:d);
  Sigcache.remember ~fingerprint:fp ~signature:s ~digest:d;
  Alcotest.(check bool) "hit" true (Sigcache.check ~fingerprint:fp ~signature:s ~digest:d);
  Alcotest.(check bool) "digest guard" false
    (Sigcache.check ~fingerprint:fp ~signature:s ~digest:(String.make 32 'x'));
  Alcotest.(check bool) "other signature" false
    (Sigcache.check ~fingerprint:fp ~signature:(String.make 64 'z') ~digest:d);
  Sigcache.set_enabled false;
  Alcotest.(check bool) "disabled bypasses" false
    (Sigcache.check ~fingerprint:fp ~signature:s ~digest:d);
  Sigcache.set_enabled true;
  Alcotest.(check bool) "re-enabled keeps entries" true
    (Sigcache.check ~fingerprint:fp ~signature:s ~digest:d)

let test_sigcache_eviction () =
  Sigcache.set_enabled true;
  Sigcache.clear ();
  let old_cap = Sigcache.capacity () in
  Sigcache.set_capacity 4;
  let fp i = Printf.sprintf "fp-%d" i in
  for i = 1 to 7 do
    Sigcache.remember ~fingerprint:(fp i) ~signature:"sig" ~digest:"digest"
  done;
  Alcotest.(check int) "bounded" 4 (Sigcache.size ());
  Alcotest.(check bool) "oldest evicted" false
    (Sigcache.check ~fingerprint:(fp 1) ~signature:"sig" ~digest:"digest");
  Alcotest.(check bool) "newest kept" true
    (Sigcache.check ~fingerprint:(fp 7) ~signature:"sig" ~digest:"digest");
  Sigcache.set_capacity old_cap;
  Sigcache.clear ()

let test_sigcache_rsa_verdicts () =
  (* Caching must never change a verdict: repeated verifies stay true,
     and a cached signature does not leak validity onto other
     messages or keys. *)
  Sigcache.set_enabled true;
  Sigcache.clear ();
  let rng = Rng.create 83L in
  let kp = Rsa.generate rng ~bits:512 in
  let other = Rsa.generate rng ~bits:512 in
  let s = Rsa.sign kp.Rsa.private_ "m" in
  Alcotest.(check bool) "first (cold)" true (Rsa.verify kp.Rsa.public ~msg:"m" ~signature:s);
  Alcotest.(check bool) "second (cached)" true (Rsa.verify kp.Rsa.public ~msg:"m" ~signature:s);
  Alcotest.(check bool) "cached sig, other msg" false
    (Rsa.verify kp.Rsa.public ~msg:"m2" ~signature:s);
  Alcotest.(check bool) "cached sig, other key" false
    (Rsa.verify other.Rsa.public ~msg:"m" ~signature:s);
  Sigcache.set_enabled false;
  Alcotest.(check bool) "cache off, still true" true
    (Rsa.verify kp.Rsa.public ~msg:"m" ~signature:s);
  Sigcache.set_enabled true

(* --- Batch verification ------------------------------------------------------------ *)

(* Two fixed keypairs so batches can mix moduli; generated once, not
   per QCheck case (512-bit keygen dominates otherwise). *)
let batch_keys =
  lazy
    (let rng = Rng.create 89L in
     [| Rsa.generate rng ~bits:512; Rsa.generate rng ~bits:512 |])

let flip_byte s i mask =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
  Bytes.to_string b

let without_sigcache f =
  Sigcache.set_enabled false;
  Fun.protect ~finally:(fun () -> Sigcache.set_enabled true) f

let prop_verify_batch_matches_verify =
  (* The whole contract of the batched path: for any mix of keys and
     per-item corruption, [verify_batch] must agree index by index
     with the scalar [verify] — including which byte was flipped,
     since PKCS#1 padding bytes and digest bytes fail differently. *)
  qtest ~count:40 "rsa: verify_batch = pointwise verify"
    QCheck2.Gen.(list_size (int_range 0 10) (pair (int_range 0 1) (option (int_range 0 63))))
    (fun spec ->
      let keys = Lazy.force batch_keys in
      without_sigcache @@ fun () ->
      let items =
        Array.of_list
          (List.mapi
             (fun i (k, tampered) ->
               let kp = keys.(k) in
               let msg = Printf.sprintf "batch item %d" i in
               let s = Rsa.sign kp.Rsa.private_ msg in
               let s = match tampered with None -> s | Some byte -> flip_byte s byte 1 in
               (kp.Rsa.public, msg, s))
             spec)
      in
      let batch = Rsa.verify_batch items in
      let pointwise =
        Array.map (fun (pk, msg, signature) -> Rsa.verify pk ~msg ~signature) items
      in
      batch = pointwise)

let test_batch_tampered_each_position () =
  (* A failure anywhere in the batch must be pinpointed to exactly its
     own index — no neighbor may be dragged down or rescued. *)
  let keys = Lazy.force batch_keys in
  without_sigcache @@ fun () ->
  let n = 6 in
  let items =
    Array.init n (fun i ->
        let kp = keys.(i mod 2) in
        let msg = Printf.sprintf "pos %d" i in
        (kp.Rsa.public, msg, Rsa.sign kp.Rsa.private_ msg))
  in
  Alcotest.(check (array bool)) "all valid" (Array.make n true) (Rsa.verify_batch items);
  for bad = 0 to n - 1 do
    let tampered =
      Array.mapi
        (fun i (pk, msg, s) -> if i = bad then (pk, msg, flip_byte s 20 0x40) else (pk, msg, s))
        items
    in
    Alcotest.(check (array bool))
      (Printf.sprintf "tampered at %d" bad)
      (Array.init n (fun i -> i <> bad))
      (Rsa.verify_batch tampered)
  done

let test_batch_empty_and_malformed () =
  let keys = Lazy.force batch_keys in
  without_sigcache @@ fun () ->
  Alcotest.(check (array bool)) "empty batch" [||] (Rsa.verify_batch [||]);
  let kp = keys.(0) in
  let good = Rsa.sign kp.Rsa.private_ "ok" in
  let verdicts =
    Rsa.verify_batch
      [|
        (kp.Rsa.public, "ok", good);
        (kp.Rsa.public, "ok", "xx");
        (kp.Rsa.public, "ok", String.make 64 '\xff');
      |]
  in
  Alcotest.(check (array bool)) "malformed rejected in batch" [| true; false; false |] verdicts

let test_batch_sigcache_interaction () =
  Sigcache.set_enabled true;
  Sigcache.clear ();
  let rng = Rng.create 97L in
  let kp = Rsa.generate rng ~bits:512 in
  let msg i = Printf.sprintf "cached %d" i in
  let items = Array.init 5 (fun i -> (kp.Rsa.public, msg i, Rsa.sign kp.Rsa.private_ (msg i))) in
  let tampered =
    Array.mapi (fun i (pk, m, s) -> if i = 4 then (pk, m, flip_byte s 11 1) else (pk, m, s)) items
  in
  let expected = [| true; true; true; true; false |] in
  (* Pre-warm two entries through the scalar path; the batch must mix
     cache hits and real verifications without changing any verdict. *)
  List.iter
    (fun i ->
      let pk, m, s = items.(i) in
      Alcotest.(check bool) "warmup" true (Rsa.verify pk ~msg:m ~signature:s))
    [ 0; 2 ];
  Alcotest.(check (array bool)) "warm-cache batch" expected (Rsa.verify_batch tampered);
  (* Cold cache: same verdicts, and the batch itself must populate the
     cache for the signatures it proved valid. *)
  Sigcache.clear ();
  Alcotest.(check (array bool)) "cold-cache batch" expected (Rsa.verify_batch tampered);
  Alcotest.(check bool) "batch populated cache" true (Sigcache.size () >= 4);
  (* And with the cache disabled entirely, nothing changes. *)
  Alcotest.(check (array bool)) "no-cache batch" expected
    (without_sigcache (fun () -> Rsa.verify_batch tampered));
  Sigcache.clear ()

(* --- Backend seam ------------------------------------------------------------------ *)

let test_backend_selection () =
  Alcotest.(check bool) "default selected" true (Crypto_backend.is_default ());
  Alcotest.(check string) "default name" "default" (Crypto_backend.name ());
  Crypto_backend.with_backend Crypto_backend.reference (fun () ->
      Alcotest.(check bool) "reference not default" false (Crypto_backend.is_default ());
      Alcotest.(check string) "reference name" "reference" (Crypto_backend.name ()));
  Alcotest.(check bool) "restored" true (Crypto_backend.is_default ());
  (* with_backend must restore even when the thunk raises. *)
  (try
     Crypto_backend.with_backend Crypto_backend.reference (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true (Crypto_backend.is_default ())

let prop_backend_digest_agree =
  qtest ~count:80 "backend: reference digest = default digest"
    QCheck2.Gen.(string_size (int_range 0 300))
    (fun s ->
      let module D = (val Crypto_backend.default) in
      let module R = (val Crypto_backend.reference) in
      String.equal (D.digest s) (R.digest s) && String.equal (D.digest s) (Sha256.digest s))

let prop_backend_pow_agree =
  qtest ~count:40 "backend: reference rsa_pow = default rsa_pow"
    QCheck2.Gen.(triple (int_range 60 512) (int_range 1 64) (int_range 0 1_000_000))
    (fun (mbits, ebits, seed) ->
      let rng = Rng.create (Int64.of_int ((mbits * 1_000_033) + (ebits * 13) + seed)) in
      let m =
        let c = Bignum.random_bits rng mbits in
        if Bignum.is_even c then Bignum.add_int c 1 else c
      in
      let base = Bignum.random_below rng m in
      let exp = Bignum.random_bits rng ebits in
      let module D = (val Crypto_backend.default) in
      let module R = (val Crypto_backend.reference) in
      Bignum.equal (D.rsa_pow ~m ~base ~exp) (R.rsa_pow ~m ~base ~exp))

let prop_backend_verify_verdicts_agree =
  (* End-to-end seam check: the scalar verify verdict — valid, wrong
     message, or bit-flipped signature — must be identical under the
     optimized and the from-spec backend. The audit-level version of
     this property (whole tampered logs) lives in
     bin/avm_backend_check.ml. *)
  qtest ~count:25 "backend: verify verdicts agree on tampered input"
    QCheck2.Gen.(pair (option (int_range 0 63)) bool)
    (fun (tampered, wrong_msg) ->
      let keys = Lazy.force batch_keys in
      let kp = keys.(0) in
      let s = Rsa.sign kp.Rsa.private_ "msg" in
      let s = match tampered with None -> s | Some byte -> flip_byte s byte 1 in
      let msg = if wrong_msg then "other" else "msg" in
      let under b =
        Crypto_backend.with_backend b (fun () ->
            Sigcache.clear ();
            Rsa.verify kp.Rsa.public ~msg ~signature:s)
      in
      under Crypto_backend.default = under Crypto_backend.reference)

(* --- Identity --------------------------------------------------------------------- *)

let test_identity_chain () =
  let rng = Rng.create 71L in
  let ca = Identity.create_ca rng ~bits:512 "admin" in
  let alice = Identity.issue ca rng ~bits:512 "alice" in
  let cert = Identity.certificate alice in
  Alcotest.(check string) "name" "alice" (Identity.cert_name cert);
  Alcotest.(check bool) "cert checks" true (Identity.check_certificate (Identity.ca_public ca) cert);
  let s = Identity.sign alice "msg" in
  Alcotest.(check bool) "sig checks" true (Identity.verify cert ~msg:"msg" ~signature:s);
  Alcotest.(check bool) "wrong msg" false (Identity.verify cert ~msg:"other" ~signature:s)

let test_identity_forged_cert () =
  let rng = Rng.create 73L in
  let ca = Identity.create_ca rng ~bits:512 "admin" in
  let rogue_ca = Identity.create_ca rng ~bits:512 "rogue" in
  let mallory = Identity.issue rogue_ca rng ~bits:512 "mallory" in
  Alcotest.(check bool) "foreign CA rejected" false
    (Identity.check_certificate (Identity.ca_public ca) (Identity.certificate mallory))

(* --- Merkle ------------------------------------------------------------------------- *)

let test_merkle_proofs_all_sizes () =
  for n = 1 to 17 do
    let pages = List.init n (fun i -> Printf.sprintf "page-%d-%s" i (String.make i 'x')) in
    let t = Merkle.of_leaves pages in
    Alcotest.(check int) "count" n (Merkle.leaf_count t);
    List.iteri
      (fun i page ->
        let proof = Merkle.prove t i in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d i=%d" n i)
          true
          (Merkle.verify_proof ~root:(Merkle.root t) ~leaf_count:n ~leaf:page proof))
      pages
  done

let test_merkle_bad_proofs () =
  let pages = List.init 9 (fun i -> string_of_int i) in
  let t = Merkle.of_leaves pages in
  let proof = Merkle.prove t 3 in
  Alcotest.(check bool) "wrong leaf" false
    (Merkle.verify_proof ~root:(Merkle.root t) ~leaf_count:9 ~leaf:"nope" proof);
  Alcotest.(check bool) "wrong index" false
    (Merkle.verify_proof ~root:(Merkle.root t) ~leaf_count:9 ~leaf:"3"
       { proof with Merkle.index = 4 });
  Alcotest.(check bool) "out of range" false
    (Merkle.verify_proof ~root:(Merkle.root t) ~leaf_count:9 ~leaf:"3"
       { proof with Merkle.index = 40 })

let test_merkle_roots_differ () =
  let t1 = Merkle.of_leaves [ "a"; "b" ] in
  let t2 = Merkle.of_leaves [ "a"; "c" ] in
  let t3 = Merkle.of_leaves [ "a"; "b"; "" ] in
  Alcotest.(check bool) "content" false (String.equal (Merkle.root t1) (Merkle.root t2));
  Alcotest.(check bool) "shape" false (String.equal (Merkle.root t1) (Merkle.root t3))

let test_merkle_empty () =
  let t = Merkle.of_leaves [] in
  Alcotest.(check int) "count" 0 (Merkle.leaf_count t);
  Alcotest.(check int) "root is a digest" 32 (String.length (Merkle.root t))

let prop_merkle_root_deterministic =
  qtest ~count:50 "merkle: root deterministic in leaves"
    QCheck2.Gen.(list_size (int_range 1 20) (string_size (int_range 0 30)))
    (fun leaves ->
      String.equal
        (Merkle.root (Merkle.of_leaves leaves))
        (Merkle.root (Merkle.of_leaves leaves)))

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha_vectors;
          Alcotest.test_case "streaming chunks" `Quick test_sha_streaming_chunks;
          Alcotest.test_case "FIPS million-a" `Quick test_sha_million_a;
          Alcotest.test_case "feed_sub/feed_bytes windows" `Quick test_sha_feed_sub;
          Alcotest.test_case "digest_buffer" `Quick test_sha_feed_buffer;
          Alcotest.test_case "reset reuse" `Quick test_sha_reset_reuse;
          Alcotest.test_case "output length" `Quick test_sha_length;
          prop_sha_digest_list;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "long key" `Quick test_hmac_long_key;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "div by zero" `Quick test_bignum_div_by_zero;
          Alcotest.test_case "bit_length" `Quick test_bignum_bit_length;
          Alcotest.test_case "Fermat little theorem" `Quick test_bignum_fermat;
          Alcotest.test_case "gcd" `Quick test_bignum_gcd;
          Alcotest.test_case "to_bytes padding" `Quick test_bignum_to_bytes_padding;
          Alcotest.test_case "Miller-Rabin known values" `Quick test_miller_rabin_known;
          Alcotest.test_case "random_prime width" `Quick test_random_prime_bits;
          Alcotest.test_case "random_below bound" `Quick test_random_below;
          Alcotest.test_case "int helpers" `Quick test_bignum_int_helpers;
          Alcotest.test_case "to_int overflow" `Quick test_bignum_to_int_overflow;
          Alcotest.test_case "mod_pow modulus one" `Quick test_bignum_mod_pow_modulus_one;
          Alcotest.test_case "hex roundtrip" `Quick test_bignum_hex_roundtrip;
          prop_bignum_add;
          prop_bignum_sub;
          prop_bignum_mul;
          prop_bignum_divmod_small;
          prop_bignum_divmod_big;
          prop_bignum_shift;
          prop_bignum_modpow_small;
          prop_bignum_mod_inv;
          prop_bignum_bytes_roundtrip;
        ] );
      ( "montgomery",
        [
          Alcotest.test_case "make guards" `Quick test_mont_make_guards;
          prop_mont_matches_classic;
          prop_mont_pow_e65537;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "tampered signature" `Quick test_rsa_tampered_signature;
          Alcotest.test_case "wrong key" `Quick test_rsa_wrong_key;
          Alcotest.test_case "malformed signature" `Quick test_rsa_malformed_signature;
          Alcotest.test_case "CRT consistency" `Quick test_rsa_crt_consistency;
          Alcotest.test_case "public key roundtrip" `Quick test_rsa_public_key_roundtrip;
          Alcotest.test_case "known answer" `Quick test_rsa_known_answer;
          Alcotest.test_case "deterministic keygen" `Quick test_rsa_deterministic_keygen;
        ] );
      ( "sigcache",
        [
          Alcotest.test_case "hit/miss/guards" `Quick test_sigcache_basic;
          Alcotest.test_case "FIFO eviction" `Quick test_sigcache_eviction;
          Alcotest.test_case "verdicts unchanged" `Quick test_sigcache_rsa_verdicts;
        ] );
      ( "batch",
        [
          prop_verify_batch_matches_verify;
          Alcotest.test_case "tampered at each position" `Quick test_batch_tampered_each_position;
          Alcotest.test_case "empty and malformed" `Quick test_batch_empty_and_malformed;
          Alcotest.test_case "sigcache interaction" `Quick test_batch_sigcache_interaction;
        ] );
      ( "backend",
        [
          Alcotest.test_case "selection and restore" `Quick test_backend_selection;
          prop_backend_digest_agree;
          prop_backend_pow_agree;
          prop_backend_verify_verdicts_agree;
        ] );
      ( "identity",
        [
          Alcotest.test_case "certificate chain" `Quick test_identity_chain;
          Alcotest.test_case "forged certificate" `Quick test_identity_forged_cert;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "proofs for all sizes" `Quick test_merkle_proofs_all_sizes;
          Alcotest.test_case "bad proofs rejected" `Quick test_merkle_bad_proofs;
          Alcotest.test_case "roots differ" `Quick test_merkle_roots_differ;
          Alcotest.test_case "empty tree" `Quick test_merkle_empty;
          prop_merkle_root_deterministic;
        ] );
    ]
