open Avm_tamperlog
module Identity = Avm_crypto.Identity
module Rng = Avm_util.Rng

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let rng = Rng.create 2024L
let ca = Identity.create_ca rng ~bits:512 "ca"
let alice = Identity.issue ca rng ~bits:512 "alice"
let bob = Identity.issue ca rng ~bits:512 "bob"

let sample_contents =
  [
    Entry.Send { dest = "bob"; nonce = 1; payload = "hello" };
    Entry.Recv { src = "bob"; nonce = 4; payload = "re: hello"; signature = "sig" };
    Entry.Exec (Avm_machine.Event.Io_in { port = 0x20; value = 12345; msg = -1 });
    Entry.Exec
      (Avm_machine.Event.Irq
         { landmark = { Avm_machine.Landmark.icount = 99; pc = 7; branches = 3 }; line = 1 });
    Entry.Ack { src = "bob"; acked_seq = 1; signature = "acksig" };
    Entry.Snapshot_ref { digest = String.make 32 'd'; snapshot_seq = 0; at_icount = 500 };
    Entry.Note "game start";
  ]

let build_log contents =
  let log = Log.create () in
  List.iter (fun c -> ignore (Log.append log c)) contents;
  log

let full_segment log = Log.segment log ~from:1 ~upto:(Log.length log)

(* --- hash chain ---------------------------------------------------------- *)

let test_chain_verifies () =
  let log = build_log sample_contents in
  Alcotest.(check int) "length" (List.length sample_contents) (Log.length log);
  match Log.verify_segment ~prev:Log.genesis_hash (full_segment log) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_partial_segment_verifies () =
  let log = build_log sample_contents in
  let seg = Log.segment log ~from:3 ~upto:5 in
  Alcotest.(check int) "segment size" 3 (List.length seg);
  match Log.verify_segment ~prev:(Log.prev_hash log 3) seg with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_tamper_replace_detected () =
  let log = build_log sample_contents in
  Log.tamper_replace log 2 (Entry.Note "innocuous");
  match Log.verify_segment ~prev:Log.genesis_hash (full_segment log) with
  | Ok () -> Alcotest.fail "tampering not detected"
  | Error e -> Alcotest.(check bool) "mentions entry" true (String.length e > 0)

let test_tamper_reseal_passes_chain () =
  (* The stronger attacker: rewrite history and recompute all hashes.
     The chain itself verifies — only authenticators catch this. *)
  let log = build_log sample_contents in
  let a2 =
    let e = Log.entry log 2 in
    Auth.make alice ~entry:e ~prev_hash:(Log.prev_hash log 2)
  in
  Log.tamper_reseal log 2 (Entry.Note "rewritten");
  (match Log.verify_segment ~prev:Log.genesis_hash (full_segment log) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "resealed chain should verify: %s" e);
  (* ... but the previously issued authenticator no longer matches. *)
  Alcotest.(check bool) "auth mismatch" false (Auth.matches_entry a2 (Log.entry log 2))

let test_fork_detected_by_auths () =
  let log = build_log [ List.hd sample_contents ] in
  let fork = Log.fork log in
  ignore (Log.append log (Entry.Note "branch A"));
  ignore (Log.append fork (Entry.Note "branch B"));
  let auth_a = Auth.make alice ~entry:(Log.entry log 2) ~prev_hash:(Log.prev_hash log 2) in
  (* Branch B's entry 2 conflicts with the authenticator from branch A. *)
  Alcotest.(check bool) "conflict" false (Auth.matches_entry auth_a (Log.entry fork 2))

let test_truncate () =
  let log = build_log sample_contents in
  Log.tamper_truncate log 3;
  Alcotest.(check int) "shorter" 3 (Log.length log)

let test_sequence_gap_detected () =
  let log = build_log sample_contents in
  let seg = [ Log.entry log 1; Log.entry log 3 ] in
  match Log.verify_segment ~prev:Log.genesis_hash seg with
  | Ok () -> Alcotest.fail "gap not detected"
  | Error e -> Alcotest.(check bool) "mentions gap" true (String.length e > 0)

let test_byte_size_counts () =
  let log = build_log sample_contents in
  let manual =
    List.fold_left (fun acc e -> acc + Entry.wire_size e) 0 (full_segment log)
  in
  Alcotest.(check int) "byte_size" manual (Log.byte_size log)

(* --- entry serialization ---------------------------------------------------- *)

let test_segment_roundtrip () =
  let log = build_log sample_contents in
  let seg = full_segment log in
  let seg' = Log.decode_segment ~prev:Log.genesis_hash (Log.encode_segment seg) in
  Alcotest.(check bool) "entries equal incl. recomputed hashes" true (seg = seg');
  (* a mid-log segment round-trips given the correct prev *)
  let mid = Log.segment log ~from:3 ~upto:5 in
  let mid' = Log.decode_segment ~prev:(Log.prev_hash log 3) (Log.encode_segment mid) in
  Alcotest.(check bool) "mid segment" true (mid = mid');
  (* hashes are not on the wire: corrupting content changes the
     recomputed chain, so previously issued authenticators expose it *)
  let a5 = Auth.make alice ~entry:(Log.entry log 5) ~prev_hash:(Log.prev_hash log 5) in
  let blob = Log.encode_segment seg in
  let corrupted = Bytes.of_string blob in
  (* flip a content byte of entry 1, upstream of entry 5 *)
  Bytes.set corrupted 5 (Char.chr (Char.code (Bytes.get corrupted 5) lxor 1));
  (match Log.decode_segment ~prev:Log.genesis_hash (Bytes.to_string corrupted) with
  | decoded ->
    let e5 = List.nth decoded 4 in
    Alcotest.(check bool) "auth exposes corruption" false (Auth.matches_entry a5 e5)
  | exception Avm_util.Wire.Malformed _ -> () (* also acceptable: framing broke *))

let test_content_bytes_stable () =
  (* The hash preimage must not change across versions: pin one. *)
  let c = Entry.Send { dest = "bob"; nonce = 1; payload = "hello" } in
  Alcotest.(check string) "canonical bytes" "\x03bob\x01\x05hello" (Entry.content_bytes c)

let test_bad_tag_rejected () =
  Alcotest.(check bool) "tag 99" true
    (match Entry.content_of_bytes ~tag:99 "" with
    | _ -> false
    | exception Avm_util.Wire.Malformed _ -> true)

let prop_content_roundtrip =
  let open QCheck2.Gen in
  let gen =
    oneof
      [
        map3
          (fun dest nonce payload -> Entry.Send { dest; nonce; payload })
          string nat string;
        map3
          (fun src nonce payload -> Entry.Recv { src; nonce; payload; signature = "s" })
          string nat string;
        map2 (fun src acked_seq -> Entry.Ack { src; acked_seq; signature = "x" }) string nat;
        map (fun s -> Entry.Note s) string;
      ]
  in
  qtest ~count:200 "entry: content roundtrip" gen (fun c ->
      Entry.content_of_bytes ~tag:(Entry.type_tag c) (Entry.content_bytes c) = c)

let test_entry_wire_size_compact () =
  (* Guard: the wire encoding must stay hash-free — a clock event is a
     dozen-odd bytes, not 45+. Fig. 3/4 magnitudes depend on this. *)
  let log = build_log sample_contents in
  let clock_entry = Log.entry log 3 in
  Alcotest.(check bool) "compact exec entry" true (Entry.wire_size clock_entry < 20);
  (* and the in-memory hash is still present and correct *)
  Alcotest.(check int) "hash present" 32 (String.length clock_entry.Entry.hash)

(* --- segment store ------------------------------------------------------- *)

(* A workload long enough to seal several segments, with snapshot
   boundaries in the stream like a real AVMM produces. *)
let busy_contents n =
  List.init n (fun i ->
      if i mod 25 = 24 then
        Entry.Snapshot_ref
          { digest = String.make 32 (Char.chr (65 + (i mod 26))); snapshot_seq = i / 25; at_icount = i * 100 }
      else if i mod 7 = 3 then
        Entry.Send
          { dest = "bob"; nonce = i; payload = String.make 48 'p' ^ string_of_int i }
      else Entry.Exec (Avm_machine.Event.Io_in { port = 0x20; value = 1000 + i; msg = -1 }))

let build_backed backend contents =
  let log = Log.create ~backend ~seal_every:16 () in
  List.iter (fun c -> ignore (Log.append log c)) contents;
  log

let test_decode_truncated () =
  let log = build_log sample_contents in
  let blob = Log.encode_segment (full_segment log) in
  for cut = 1 to min 10 (String.length blob - 1) do
    let truncated = String.sub blob 0 (String.length blob - cut) in
    match Log.decode_segment ~prev:Log.genesis_hash truncated with
    | _ -> Alcotest.failf "truncated blob (cut %d) decoded" cut
    | exception (Avm_util.Wire.Truncated | Avm_util.Wire.Malformed _) -> ()
  done

let test_decode_garbage () =
  List.iter
    (fun garbage ->
      match Log.decode_segment ~prev:Log.genesis_hash garbage with
      | _ -> Alcotest.fail "garbage decoded"
      | exception (Avm_util.Wire.Truncated | Avm_util.Wire.Malformed _) -> ())
    [ "\xff\xff\xff\xff\xff"; "\x07\x63garbage!"; String.make 64 '\xee' ]

let test_verify_broken_chain () =
  let log = build_log sample_contents in
  let seg =
    List.map
      (fun (e : Entry.t) -> if e.seq = 4 then { e with Entry.hash = String.make 32 'z' } else e)
      (full_segment log)
  in
  match Log.verify_segment ~prev:Log.genesis_hash seg with
  | Ok () -> Alcotest.fail "broken chain not detected"
  | Error e -> Alcotest.(check bool) "mentions break" true (String.length e > 0)

let test_sealed_equivalence () =
  (* The same appends through Memory and Compressed backends must be
     observationally identical: same chain, same entries, same slices. *)
  let contents = busy_contents 100 in
  let mem = build_backed Segment_store.Memory contents in
  let zip = build_backed Segment_store.Compressed contents in
  Alcotest.(check int) "length" (Log.length mem) (Log.length zip);
  Alcotest.(check string) "head hash" (Log.head_hash mem) (Log.head_hash zip);
  Alcotest.(check bool) "sealed segments exist" true (List.length (Log.segments zip) >= 4);
  for seq = 1 to Log.length mem do
    if Log.entry mem seq <> Log.entry zip seq then
      Alcotest.failf "entry %d differs between backends" seq
  done;
  Alcotest.(check bool) "mid slice equal" true
    (Log.segment mem ~from:20 ~upto:70 = Log.segment zip ~from:20 ~upto:70);
  Alcotest.(check int) "byte size equal" (Log.byte_size mem) (Log.byte_size zip);
  (match Log.verify_segment ~prev:Log.genesis_hash (full_segment zip) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compressed chain broken: %s" e);
  Alcotest.(check bool) "snapshot index equal" true
    (Log.snapshot_index mem = Log.snapshot_index zip)

let test_snapshot_boundary_seals () =
  let zip = build_backed Segment_store.Compressed (busy_contents 100) in
  (* Every Snapshot_ref must close its segment: some sealed segment ends
     exactly at each snapshot entry and carries the boundary record. *)
  let infos = Log.segments zip in
  List.iter
    (fun (entry_seq, snapshot_seq, at_icount) ->
      match
        List.find_opt (fun (i : Segment_store.info) -> i.last_seq = entry_seq) infos
      with
      | None -> Alcotest.failf "no segment sealed at snapshot entry %d" entry_seq
      | Some i ->
        Alcotest.(check bool)
          (Printf.sprintf "boundary record at %d" entry_seq)
          true
          (i.snapshot_boundary = Some (entry_seq, snapshot_seq, at_icount)))
    (Log.snapshot_index zip);
  (* and the segment index tiles the log exactly *)
  let covered =
    List.fold_left
      (fun next (i : Segment_store.info) ->
        Alcotest.(check int) "contiguous segments" next i.first_seq;
        i.last_seq + 1)
      1 infos
  in
  Alcotest.(check bool) "tail after last seal" true (covered <= Log.length zip + 1)

let test_tamper_on_sealed () =
  let zip = build_backed Segment_store.Compressed (busy_contents 60) in
  Log.tamper_replace zip 10 (Entry.Note "rewritten under the seal");
  (match Log.verify_segment ~prev:Log.genesis_hash (full_segment zip) with
  | Ok () -> Alcotest.fail "tamper under a sealed segment not detected"
  | Error _ -> ());
  (* the broken chain must survive further appends verbatim *)
  ignore (Log.append zip (Entry.Note "post-tamper append"));
  (match Log.verify_segment ~prev:Log.genesis_hash (full_segment zip) with
  | Ok () -> Alcotest.fail "tamper evidence lost after append"
  | Error _ -> ());
  (* reseal produces a consistent chain even across former seal points *)
  let zip2 = build_backed Segment_store.Compressed (busy_contents 60) in
  let auth = Auth.make alice ~entry:(Log.entry zip2 10) ~prev_hash:(Log.prev_hash zip2 10) in
  Log.tamper_reseal zip2 10 (Entry.Note "quietly rewritten");
  (match Log.verify_segment ~prev:Log.genesis_hash (full_segment zip2) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "resealed chain should verify: %s" e);
  Alcotest.(check bool) "auth exposes reseal" false (Auth.matches_entry auth (Log.entry zip2 10));
  (* truncation below the seal line *)
  let zip3 = build_backed Segment_store.Compressed (busy_contents 60) in
  Log.tamper_truncate zip3 20;
  Alcotest.(check int) "truncated" 20 (Log.length zip3);
  match Log.verify_segment ~prev:Log.genesis_hash (full_segment zip3) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "truncated prefix should verify: %s" e

let test_fork_with_sealed_segments () =
  let log = build_backed Segment_store.Compressed (busy_contents 40) in
  let fork = Log.fork log in
  ignore (Log.append log (Entry.Note "branch A"));
  ignore (Log.append fork (Entry.Note "branch B"));
  Alcotest.(check bool) "prefix shared" true (Log.entry log 40 = Log.entry fork 40);
  Alcotest.(check bool) "heads diverge" true (Log.head_hash log <> Log.head_hash fork);
  let auth = Auth.make alice ~entry:(Log.entry log 41) ~prev_hash:(Log.prev_hash log 41) in
  Alcotest.(check bool) "fork detected" false (Auth.matches_entry auth (Log.entry fork 41))

let test_compression_accounting () =
  (* Compression only pays on realistically sized segments (an AVMM
     snapshot interval is hundreds of entries); tiny segments lose to
     the codec's fixed table overhead. *)
  let contents =
    List.init 600 (fun i ->
        if i mod 200 = 199 then
          Entry.Snapshot_ref
            { digest = String.make 32 'd'; snapshot_seq = i / 200; at_icount = i * 100 }
        else if i mod 3 = 0 then
          Entry.Send { dest = "bob"; nonce = i; payload = String.make 64 'p' }
        else Entry.Exec (Avm_machine.Event.Io_in { port = 0x20; value = 1000 + i; msg = -1 }))
  in
  let zip = Log.create ~backend:Segment_store.Compressed ~seal_every:256 () in
  List.iter (fun c -> ignore (Log.append zip c)) contents;
  Alcotest.(check bool) "stored < raw" true (Log.stored_bytes zip < Log.byte_size zip);
  Alcotest.(check bool) "ratio > 1" true (Log.compression_ratio zip > 1.0);
  (* encode_range must agree with encoding the materialized slice *)
  Alcotest.(check string) "encode_range = encode_segment"
    (Log.encode_segment (Log.segment zip ~from:10 ~upto:90))
    (Log.encode_range zip ~from:10 ~upto:90);
  (* transfer accounting covers the requested range *)
  Alcotest.(check bool) "transfer bytes positive" true
    (Log.transfer_bytes zip ~from:1 ~upto:(Log.length zip) > 0)

(* --- authenticators ------------------------------------------------------------- *)

let test_auth_verify () =
  let log = build_log sample_contents in
  let e = Log.entry log 1 in
  let a = Auth.make alice ~entry:e ~prev_hash:(Log.prev_hash log 1) in
  Alcotest.(check bool) "verifies" true (Auth.verify (Identity.certificate alice) a);
  Alcotest.(check bool) "wrong cert" false (Auth.verify (Identity.certificate bob) a);
  Alcotest.(check bool) "matches entry" true (Auth.matches_entry a e)

let test_auth_matches_send () =
  let log = build_log sample_contents in
  let a = Auth.make alice ~entry:(Log.entry log 1) ~prev_hash:Log.genesis_hash in
  Alcotest.(check bool) "send" true (Auth.matches_send a ~payload:"hello" ~dest:"bob" ~nonce:1);
  Alcotest.(check bool) "wrong payload" false
    (Auth.matches_send a ~payload:"evil" ~dest:"bob" ~nonce:1);
  Alcotest.(check bool) "wrong nonce" false
    (Auth.matches_send a ~payload:"hello" ~dest:"bob" ~nonce:2)

let test_auth_tampered_hash () =
  let log = build_log sample_contents in
  let a = Auth.make alice ~entry:(Log.entry log 1) ~prev_hash:Log.genesis_hash in
  let bad = { a with Auth.hash = String.make 32 'x' } in
  Alcotest.(check bool) "bad hash" false (Auth.verify (Identity.certificate alice) bad)

let test_auth_roundtrip () =
  let log = build_log sample_contents in
  let a = Auth.make alice ~entry:(Log.entry log 1) ~prev_hash:Log.genesis_hash in
  Alcotest.(check bool) "roundtrip" true (Auth.decode (Auth.encode a) = a)

(* --- chunk specs and sealed-segment conversion ------------------------------ *)

let many_notes n =
  List.init n (fun i -> Entry.Note (Printf.sprintf "note %d %s" i (String.make 80 'x')))

let test_chunk_specs_partition () =
  List.iter
    (fun backend ->
      let log = build_backed backend (many_notes 50) in
      let n = Log.length log in
      List.iter
        (fun (from, upto) ->
          let specs = Log.chunk_specs log ~from ~upto in
          (* the specs tile [from..upto] in order, each one loading its
             exact range with the index's chain hash at its door *)
          let expect = ref from in
          List.iter
            (fun (s : Log.chunk_spec) ->
              Alcotest.(check int) "contiguous" !expect s.Log.spec_from;
              Alcotest.(check string)
                "prev hash from index"
                (Log.prev_hash log s.Log.spec_from)
                s.Log.spec_prev_hash;
              let entries = s.Log.spec_load () in
              List.iteri
                (fun i (e : Entry.t) ->
                  Alcotest.(check int) "entry seq" (s.Log.spec_from + i) e.Entry.seq)
                entries;
              Alcotest.(check int)
                "load covers range"
                (s.Log.spec_upto - s.Log.spec_from + 1)
                (List.length entries);
              (match Log.verify_segment ~prev:s.Log.spec_prev_hash entries with
              | Ok () -> ()
              | Error e -> Alcotest.failf "chunk does not verify: %s" e);
              expect := s.Log.spec_upto + 1)
            specs;
          Alcotest.(check int) "tiles the whole range" (upto + 1) !expect;
          Alcotest.(check bool)
            "concatenation = flat segment" true
            (List.concat_map (fun (s : Log.chunk_spec) -> s.Log.spec_load ()) specs
            = Log.segment log ~from ~upto))
        [ (1, n); (7, n - 3); (1, 1); (n, n) ];
      Alcotest.(check (list int)) "empty range" []
        (List.map
           (fun (s : Log.chunk_spec) -> s.Log.spec_from)
           (Log.chunk_specs log ~from:5 ~upto:4)))
    [ Segment_store.Memory; Segment_store.Compressed ]

let test_compress_sealed_roundtrip () =
  let entries_of l = Log.segment l ~from:1 ~upto:(Log.length l) in
  let make () =
    let log = build_backed Segment_store.Memory (many_notes 60) in
    Log.seal_active log;
    log
  in
  let log = make () in
  let before = entries_of log in
  let resident = Log.stored_bytes log in
  let converted = Log.compress_sealed log in
  Alcotest.(check bool) "segments converted" true (converted > 0);
  Alcotest.(check bool) "smaller at rest" true (Log.stored_bytes log < resident);
  Alcotest.(check bool) "entries unchanged" true (entries_of log = before);
  Alcotest.(check int) "idempotent" 0 (Log.compress_sealed log);
  let compressed_at_rest = Log.stored_bytes log in
  Alcotest.(check int) "inflate reverses" converted (Log.inflate_sealed log);
  Alcotest.(check bool) "entries unchanged after round trip" true (entries_of log = before);
  (* the pooled variant converts the same segments to the same bytes *)
  Avm_util.Domain_pool.with_pool ~jobs:3 (fun pool ->
      let par = make () in
      Alcotest.(check int) "parallel converts equally" converted
        (Log.compress_sealed ~pool par);
      Alcotest.(check int) "parallel stored bytes" compressed_at_rest (Log.stored_bytes par);
      Alcotest.(check bool) "parallel entries equal" true (entries_of par = before);
      Alcotest.(check int) "parallel inflate" converted (Log.inflate_sealed ~pool par))

let test_compress_sealed_skips_tampered () =
  (* A broken chain must never be "repaired" by re-encoding: the
     Compressed form recomputes hashes on inflation, so a segment that
     does not verify stays verbatim. *)
  let honest = build_log (many_notes 40) in
  let tampered =
    List.map
      (fun (e : Entry.t) ->
        if e.Entry.seq = 20 then { e with Entry.content = Entry.Note "evil" } else e)
      (full_segment honest)
  in
  let log = Log.of_entries ~seal_every:8 tampered in
  Log.seal_active log;
  let nsegs = List.length (Log.segments log) in
  let converted = Log.compress_sealed log in
  Alcotest.(check int) "all but the broken segment" (nsegs - 1) converted;
  Alcotest.(check bool) "tamper evidence survives" true
    (Log.segment log ~from:1 ~upto:(Log.length log) = tampered);
  match Log.verify_segment ~prev:Log.genesis_hash (Log.segment log ~from:1 ~upto:(Log.length log)) with
  | Ok () -> Alcotest.fail "tampering was silently repaired"
  | Error _ -> ()

let () =
  Alcotest.run "tamperlog"
    [
      ( "chain",
        [
          Alcotest.test_case "honest chain verifies" `Quick test_chain_verifies;
          Alcotest.test_case "partial segment verifies" `Quick test_partial_segment_verifies;
          Alcotest.test_case "naive tamper detected" `Quick test_tamper_replace_detected;
          Alcotest.test_case "resealed tamper beats chain, not auths" `Quick
            test_tamper_reseal_passes_chain;
          Alcotest.test_case "fork detected by auths" `Quick test_fork_detected_by_auths;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "sequence gap" `Quick test_sequence_gap_detected;
          Alcotest.test_case "byte accounting" `Quick test_byte_size_counts;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
          Alcotest.test_case "canonical bytes pinned" `Quick test_content_bytes_stable;
          Alcotest.test_case "bad tag" `Quick test_bad_tag_rejected;
          Alcotest.test_case "wire size compact (no hashes)" `Quick test_entry_wire_size_compact;
          prop_content_roundtrip;
        ] );
      ( "segments",
        [
          Alcotest.test_case "truncated blob rejected" `Quick test_decode_truncated;
          Alcotest.test_case "garbage blob rejected" `Quick test_decode_garbage;
          Alcotest.test_case "broken chain detected" `Quick test_verify_broken_chain;
          Alcotest.test_case "backends observationally equal" `Quick test_sealed_equivalence;
          Alcotest.test_case "snapshot boundaries seal segments" `Quick
            test_snapshot_boundary_seals;
          Alcotest.test_case "chunk specs tile the log" `Quick test_chunk_specs_partition;
          Alcotest.test_case "compress/inflate sealed round trip" `Quick
            test_compress_sealed_roundtrip;
          Alcotest.test_case "broken segment never re-encoded" `Quick
            test_compress_sealed_skips_tampered;
          Alcotest.test_case "tamper ops on sealed logs" `Quick test_tamper_on_sealed;
          Alcotest.test_case "fork with sealed segments" `Quick test_fork_with_sealed_segments;
          Alcotest.test_case "compression accounting" `Quick test_compression_accounting;
        ] );
      ( "authenticators",
        [
          Alcotest.test_case "verify" `Quick test_auth_verify;
          Alcotest.test_case "matches_send" `Quick test_auth_matches_send;
          Alcotest.test_case "tampered hash" `Quick test_auth_tampered_hash;
          Alcotest.test_case "wire roundtrip" `Quick test_auth_roundtrip;
        ] );
    ]
