open Avm_core
open Avm_tamperlog
module Identity = Avm_crypto.Identity
module Rng = Avm_util.Rng
module Daemon = Avm_service.Daemon
module Service_run = Avm_scenario.Service_run
module Session = Online_audit.Session

(* Session-level fixtures: one accountable machine running a small
   guest, so the backpressure and mid-session-verdict paths can be
   driven by hand without the netsim fleet. *)

let guest_src =
  {|
global n;

fn main() {
  while (1) {
    var t = in(CLOCK);
    n = n + (t & 3);
  }
}
|}

let guest_image () = (Avm_mlang.Compile.compile ~stack_top:4096 guest_src).Avm_isa.Asm.words

let rng = Rng.create 991L
let ca = Identity.create_ca rng ~bits:512 "ca"
let carol = Identity.issue ca rng ~bits:512 "carol"
let peers = [ (0, "carol") ]

let recorded_log ~slices () =
  let config = Config.make ~snapshot_every_us:(Some 50_000) Config.Avmm_rsa768 in
  let m =
    Avmm.create ~identity:carol ~config ~image:(guest_image ()) ~mem_words:4096 ~peers
      ~on_send:(fun _ -> ()) ()
  in
  let t = ref 0.0 in
  for _ = 1 to slices do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice m ~until_us:!t)
  done;
  Avmm.log m

let counter name = Avm_obs.Metrics.counter (Avm_obs.Metrics.snapshot ()) name

(* --- backpressure --------------------------------------------------------- *)

(* Ingest refuses above the high watermark, keeps refusing until replay
   drains the lag under the low watermark (hysteresis), then accepts
   again — with the engaged/released counters ticking once each. *)
let test_backpressure_watermarks () =
  let log = recorded_log ~slices:40 () in
  let n = Log.length log in
  Alcotest.(check bool) "enough entries to overflow" true (n > 12);
  let s =
    Session.open_session ~image:(guest_image ()) ~mem_words:4096 ~high_watermark:8
      ~low_watermark:4 ~peers ()
  in
  let engaged0 = counter "online_audit.backpressure_engaged" in
  let released0 = counter "online_audit.backpressure_released" in
  (* The watermark is checked before pulling, so an offer of 9 entries
     is accepted wholesale and only the next one sees the oversized
     lag. *)
  (match Session.ingest ~upto:9 s log with
  | `Accepted -> ()
  | `Backpressure _ -> Alcotest.fail "first ingest must be accepted");
  Alcotest.(check int) "everything buffered" 9 (Session.lag_entries s);
  (match Session.ingest s log with
  | `Backpressure lag -> Alcotest.(check int) "refusal reports the lag" 9 lag
  | `Accepted -> Alcotest.fail "ingest above the high watermark must refuse");
  Alcotest.(check bool) "status shows throttled" true (Session.status s).Online_audit.throttled;
  Alcotest.(check int) "engaged counter ticked" (engaged0 + 1)
    (counter "online_audit.backpressure_engaged");
  (* Drain a handful of instructions at a time so the lag walks down
     through the hysteresis band entry by entry; while it sits between
     the watermarks the session must keep refusing, and once it drops
     under the low mark the next offer is accepted. *)
  let saw_hysteresis = ref false in
  let rounds = ref 0 in
  while Session.lag_entries s > 4 && !rounds < 100_000 do
    incr rounds;
    ignore (Session.step s ~budget_instructions:5 : Online_audit.verdict option);
    let lag = Session.lag_entries s in
    if lag <= 8 && lag > 4 then
      match Session.ingest s log with
      | `Backpressure _ -> saw_hysteresis := true
      | `Accepted -> Alcotest.fail "accepted between the watermarks while throttled"
  done;
  Alcotest.(check bool) "drained under the low watermark" true (Session.lag_entries s <= 4);
  Alcotest.(check bool) "lag passed through the hysteresis band" true !saw_hysteresis;
  (match Session.ingest s log with
  | `Accepted -> ()
  | `Backpressure _ -> Alcotest.fail "ingest under the low watermark must accept");
  Alcotest.(check bool) "throttle released" false (Session.status s).Online_audit.throttled;
  Alcotest.(check int) "released counter ticked" (released0 + 1)
    (counter "online_audit.backpressure_released");
  (* The session is still honest: drain fully and close clean. *)
  while Session.lag_entries s > 0 do
    ignore (Session.step s ~budget_instructions:10_000_000 : Online_audit.verdict option)
  done;
  Alcotest.(check bool) "honest log closes clean" true (Session.close s = None)

(* --- mid-session verdict -------------------------------------------------- *)

(* A tampered entry in the second half of the log is reported by the
   very ingest that observes it — before close — naming the entry. *)
let test_cheat_reported_before_close () =
  let log = recorded_log ~slices:40 () in
  let n = Log.length log in
  let s = Session.open_session ~image:(guest_image ()) ~mem_words:4096 ~peers () in
  let half = n / 2 in
  (match Session.ingest ~upto:half s log with
  | `Accepted -> ()
  | `Backpressure _ -> Alcotest.fail "first half refused");
  while Session.lag_entries s > 0 do
    ignore (Session.step s ~budget_instructions:10_000_000 : Online_audit.verdict option)
  done;
  Alcotest.(check bool) "clean so far" true
    ((Session.status s).Online_audit.verdict = None);
  let tampered_seq = half + ((n - half) / 2) + 1 in
  Log.tamper_replace log tampered_seq (Entry.Note "rewritten");
  (match Session.ingest s log with
  | `Accepted | `Backpressure _ -> ());
  (match (Session.status s).Online_audit.verdict with
  | Some (Online_audit.Tampered { entry_seq = Some seq; _ }) ->
    Alcotest.(check int) "verdict names the tampered entry" tampered_seq seq
  | v ->
    Alcotest.failf "expected a Tampered verdict before close, got %s"
      (match v with
      | None -> "no verdict"
      | Some v -> Format.asprintf "%a" Online_audit.pp_verdict v));
  match Session.close s with
  | Some (Online_audit.Tampered _) -> ()
  | _ -> Alcotest.fail "close must repeat the terminal verdict"

(* --- daemon: bounded lag at steady state ---------------------------------- *)

let small_spec =
  {
    Service_run.default_spec with
    Service_run.sessions = 8;
    epochs = 2;
    rsa_bits = 512;
    key_pool = 8;
    seed = 23L;
  }

let test_lag_bounded_steady_state () =
  let o = Service_run.run { small_spec with Service_run.cheat_frac = 0.0 } in
  Alcotest.(check (list int)) "no false flags" [] o.Service_run.false_flagged;
  Alcotest.(check (list int)) "nothing to miss" [] o.Service_run.missed;
  Alcotest.(check bool) "entries flowed" true (o.Service_run.entries_ingested > 0);
  Alcotest.(check bool) "p99 lag within the bound" true
    (o.Service_run.lag_p99 <= small_spec.Service_run.max_lag);
  Alcotest.(check bool) "worst sampled lag within the bound" true
    (o.Service_run.lag_max <= small_spec.Service_run.max_lag)

(* --- daemon: cheats detected with the right chunk/entry ------------------- *)

let cheat_spec = { small_spec with Service_run.sessions = 12; cheat_frac = 0.25 }

let test_cheats_located () =
  let o = Service_run.run cheat_spec in
  Alcotest.(check bool) "some cheats planted" true (o.Service_run.cheats <> []);
  Alcotest.(check (list int)) "all cheats detected" [] o.Service_run.missed;
  Alcotest.(check (list int)) "no honest session flagged" [] o.Service_run.false_flagged;
  List.iter
    (fun (c : Service_run.cheat) ->
      let id = Printf.sprintf "n%d" c.Service_run.node in
      match
        List.find_opt
          (fun (ev : Daemon.event) -> ev.Daemon.ev_session = id)
          o.Service_run.events
      with
      | None -> Alcotest.failf "no event delivered for cheater %s" id
      | Some ev -> (
        match c.Service_run.kind with
        | Service_run.Poke _ ->
          (* One chunk per epoch (the baseline snapshot is chunk 0), so
             a poke in epoch e diverges in chunk e — exactly e chunks
             retire first. *)
          Alcotest.(check int)
            (id ^ ": divergence lands in the cheat epoch's chunk")
            c.Service_run.epoch ev.Daemon.ev_chunk
        | Service_run.Rewrite -> (
          match (ev.Daemon.ev_verdict, ev.Daemon.ev_entry_seq) with
          | Online_audit.Tampered _, Some _ -> ()
          | _ ->
            Alcotest.failf "%s: rewrite must yield a Tampered verdict naming the entry" id)))
    o.Service_run.cheats

(* --- daemon: verdict vector invariants ------------------------------------ *)

(* The verdict vector (who is flagged, with what, at which entry) must
   not depend on pump parallelism or on the shared replay cache. *)
let test_verdicts_invariant_jobs_and_cache () =
  let base = Service_run.run ~par:Audit_ctx.sequential cheat_spec in
  let sig_base = Service_run.signature base in
  Alcotest.(check bool) "baseline detects the cheats" true (base.Service_run.detected <> []);
  let jobs4 = Service_run.run ~par:(Audit_ctx.parallel 4) cheat_spec in
  Alcotest.(check string) "jobs 1 = jobs 4" sig_base (Service_run.signature jobs4);
  let nocache = Service_run.run { cheat_spec with Service_run.dedup = false } in
  Alcotest.(check string) "cache on = cache off" sig_base (Service_run.signature nocache);
  Alcotest.(check bool) "cache-on run actually hit the cache" true
    (base.Service_run.cache_hits > 0)

let () =
  Alcotest.run "avm_service"
    [
      ( "backpressure",
        [ Alcotest.test_case "watermarks engage and release" `Quick test_backpressure_watermarks ] );
      ( "online-verdicts",
        [
          Alcotest.test_case "mid-session cheat reported before close" `Quick
            test_cheat_reported_before_close;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "lag bounded at steady state" `Slow test_lag_bounded_steady_state;
          Alcotest.test_case "cheats located by chunk and entry" `Slow test_cheats_located;
          Alcotest.test_case "verdicts invariant across jobs and cache" `Slow
            test_verdicts_invariant_jobs_and_cache;
        ] );
    ]
