(* Deduplicated re-execution (Replay_cache, DESIGN.md §14): the memo
   protocol's unit behavior, its adversarial edges — a planted cheat
   whose fingerprint collides with a cached honest chunk, and a
   poisoned table entry — and the QCheck equivalence property that
   audits draw identical verdicts with the cache enabled, disabled,
   or cleared mid-audit, at 1 and 4 auditor jobs, over randomly
   tampered logs. *)

open Avm_core
open Avm_tamperlog
module Identity = Avm_crypto.Identity
module Rng = Avm_util.Rng
module Machine = Avm_machine.Machine

(* --- fixtures (a small echo session, as in test_core) -------------------- *)

let guest_src =
  {|
fn main() {
  out(NET_TX, 1);
  out(NET_TX, 77);
  out(NET_TX, in(CLOCK));
  out(NET_TX_SEND, 0);
  while (1) {
    var avail = in(NET_RX_AVAIL);
    while (avail > 0) {
      var len = in(NET_RX_LEN);
      out(NET_TX, 1);
      while (len > 0) { out(NET_TX, in(NET_RX) + 1); len = len - 1; }
      out(NET_RX_NEXT, 0);
      out(NET_TX_SEND, 0);
      avail = in(NET_RX_AVAIL);
    }
  }
}
|}

let guest_image = lazy (Avm_mlang.Compile.compile ~stack_top:4096 guest_src).Avm_isa.Asm.words
let image () = Lazy.force guest_image
let idrng = Rng.create 909L
let ca = Identity.create_ca idrng ~bits:512 "ca"
let alice = Identity.issue ca idrng ~bits:512 "alice"
let bob = Identity.issue ca idrng ~bits:512 "bob"
let cert_of name = Identity.certificate (if name = "alice" then alice else bob)
let peers_a = [ (0, "alice"); (1, "bob") ]
let peers_b = [ (0, "bob"); (1, "alice") ]

(* One recorded session (bob is the node under audit), with the
   authenticators a witness would have collected. Recorded once; every
   test forks the log rather than re-running the session. *)
let session =
  lazy
    (let config = Config.make ~snapshot_every_us:(Some 100_000) Config.Avmm_rsa768 in
     let a_out = Queue.create () and b_out = Queue.create () in
     let a =
       Avmm.create ~identity:alice ~config ~image:(image ()) ~mem_words:4096
         ~peers:peers_a
         ~on_send:(fun e -> Queue.add e a_out)
         ()
     in
     let b =
       Avmm.create ~identity:bob ~config ~image:(image ()) ~mem_words:4096 ~peers:peers_b
         ~on_send:(fun e -> Queue.add e b_out)
         ()
     in
     let auths = ref [] in
     let shuttle src dst outq =
       while not (Queue.is_empty outq) do
         let env = Queue.pop outq in
         auths := env.Wireformat.auth :: !auths;
         match Avmm.deliver dst env ~sender_cert:(cert_of env.Wireformat.src) with
         | `Ack ack | `Duplicate ack ->
           ignore (Avmm.accept_ack src ack ~acker_cert:(cert_of ack.Wireformat.acker))
         | `Rejected r -> Alcotest.failf "rejected: %s" r
       done
     in
     let t = ref 0.0 in
     for _ = 1 to 30 do
       t := !t +. 10_000.0;
       ignore (Avmm.run_slice a ~until_us:!t);
       ignore (Avmm.run_slice b ~until_us:!t);
       shuttle a b a_out;
       shuttle b a b_out
     done;
     (b, !auths))

let bob_entries () =
  let b, _ = Lazy.force session in
  let log = Avmm.log b in
  Log.segment log ~from:1 ~upto:(Log.length log)

let bob_ctx () =
  let _, auths = Lazy.force session in
  Audit.ctx ~node_cert:(cert_of "bob")
    ~peer_certs:[ ("alice", cert_of "alice"); ("bob", cert_of "bob") ]
    ~auths ()

let fresh_pre_state () = Replay.state_digest (Machine.create ~mem_words:4096 (image ()))

let counts = function
  | Replay.Verified { instructions; entries_consumed } -> (instructions, entries_consumed)
  | o -> Alcotest.failf "expected verified, got %s" (Format.asprintf "%a" Replay.pp_outcome o)

(* --- unit: the memo protocol --------------------------------------------- *)

(* Second replay of the same chunk hits, and the hit reconstructs the
   first replay's exact Verified payload. *)
let test_hit_reconstructs_outcome () =
  let cache = Replay_cache.create ~spot_rate:0 () in
  let entries = bob_entries () in
  let replay () =
    Replay.replay ~image:(image ()) ~mem_words:4096 ~peers:peers_b ~cache ~entries ()
  in
  let first = replay () in
  let second = replay () in
  Alcotest.(check (pair int int)) "same payload" (counts first) (counts second);
  let s = Replay_cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Replay_cache.misses;
  Alcotest.(check int) "one hit" 1 s.Replay_cache.hits;
  Alcotest.(check bool) "bytes saved" true (s.Replay_cache.bytes_saved > 0)

(* A cheat that shares an honest chunk's inputs (hence its fingerprint
   key) cannot share its claims: the lookup must answer Miss, full
   replay must run, and the cheat must be caught — a poisoned-by-
   construction collision cannot launder a tampered log through a
   warm cache. *)
let test_planted_cheat_colliding_fingerprint_caught () =
  let cache = Replay_cache.create ~spot_rate:0 () in
  let entries = bob_entries () in
  (* Warm the cache with the honest chunk. *)
  (match
     Replay.replay ~image:(image ()) ~mem_words:4096 ~peers:peers_b ~cache ~entries ()
   with
  | Replay.Verified _ -> ()
  | o -> Alcotest.failf "honest replay diverged: %s" (Format.asprintf "%a" Replay.pp_outcome o));
  (* Tamper a SEND payload: the payload is a claim (outputs digest),
     not an input — the tampered chunk fingerprints to the SAME key. *)
  let b, _ = Lazy.force session in
  let forked = Log.fork (Avmm.log b) in
  let seq =
    let found = ref 0 in
    (try
       Log.iter_range forked ~from:1 ~upto:(Log.length forked) (fun e ->
           match e.Entry.content with
           | Entry.Send _ when !found = 0 ->
             found := e.Entry.seq;
             raise Exit
           | _ -> ())
     with Exit -> ());
    !found
  in
  Alcotest.(check bool) "session has a send" true (seq > 0);
  (match (Log.entry forked seq).Entry.content with
  | Entry.Send s -> Log.tamper_reseal forked seq (Entry.Send { s with payload = s.payload ^ "x" })
  | _ -> assert false);
  let tampered = Log.segment forked ~from:1 ~upto:(Log.length forked) in
  let honest_key =
    Replay_cache.key_hex
      (Replay_cache.fingerprint ~image:(image ()) ~mem_words:4096 ~peers:peers_b
         ~pre_state:(fresh_pre_state ()) (bob_entries ()))
  in
  let tampered_key =
    Replay_cache.key_hex
      (Replay_cache.fingerprint ~image:(image ()) ~mem_words:4096 ~peers:peers_b
         ~pre_state:(fresh_pre_state ()) tampered)
  in
  Alcotest.(check string) "fingerprints collide" honest_key tampered_key;
  (match
     Replay.replay ~image:(image ()) ~mem_words:4096 ~peers:peers_b ~cache
       ~entries:tampered ()
   with
  | Replay.Diverged _ -> ()
  | Replay.Verified _ -> Alcotest.fail "tampered chunk laundered through the cache");
  let s = Replay_cache.stats cache in
  Alcotest.(check bool) "claim mismatch counted" true (s.Replay_cache.claim_mismatches >= 1)

(* Cache poisoning: an adversary writes the cheater's own claims into
   the table as "verified", so the lookup hits. At spot rate 1 every
   hit is designated for full replay: the replay diverges from the
   forged entry, the verdict stands, and the entry is evicted under
   [poisoned]. *)
let test_poisoned_entry_caught_by_spot_check () =
  let cache = Replay_cache.create ~spot_rate:1 () in
  let b, _ = Lazy.force session in
  let forked = Log.fork (Avmm.log b) in
  let n = Log.length forked in
  Log.tamper_reseal forked (n / 2) (Entry.Note "poisoned");
  let tampered = Log.segment forked ~from:1 ~upto:n in
  let p =
    Replay_cache.fingerprint ~image:(image ()) ~mem_words:4096 ~peers:peers_b
      ~pre_state:(fresh_pre_state ()) tampered
  in
  (* The poison: claims of the tampered log, fabricated counts. *)
  Replay_cache.remember cache p ~instructions:1 ~entries_consumed:n ();
  (match
     Replay.replay ~image:(image ()) ~mem_words:4096 ~peers:peers_b ~cache
       ~entries:tampered ()
   with
  | Replay.Diverged _ -> ()
  | Replay.Verified _ -> Alcotest.fail "poisoned cache entry laundered a cheat");
  let s = Replay_cache.stats cache in
  Alcotest.(check int) "spot designated" 1 s.Replay_cache.spot_checks;
  Alcotest.(check int) "poison detected and evicted" 1 s.Replay_cache.poisoned;
  Alcotest.(check int) "entry gone" 0 (Replay_cache.size cache)

(* Honest spot-designated hits replay fully, agree, and keep the entry. *)
let test_spot_check_confirms_honest_entry () =
  let cache = Replay_cache.create ~spot_rate:1 () in
  let entries = bob_entries () in
  let replay () =
    Replay.replay ~image:(image ()) ~mem_words:4096 ~peers:peers_b ~cache ~entries ()
  in
  let first = replay () in
  let second = replay () in
  Alcotest.(check (pair int int)) "same payload" (counts first) (counts second);
  let s = Replay_cache.stats cache in
  Alcotest.(check int) "spot designated" 1 s.Replay_cache.spot_checks;
  Alcotest.(check int) "no poison" 0 s.Replay_cache.poisoned;
  Alcotest.(check int) "entry kept" 1 (Replay_cache.size cache)

let test_fifo_bound_and_kill_switch () =
  let cache = Replay_cache.create ~capacity:4 ~stripes:1 ~spot_rate:0 () in
  for i = 1 to 10 do
    let p =
      Replay_cache.fingerprint ~image:(image ()) ~peers:[]
        ~pre_state:(Printf.sprintf "state-%d" i)
        []
    in
    Replay_cache.remember cache p ~instructions:i ~entries_consumed:0 ()
  done;
  Alcotest.(check bool) "bounded" true (Replay_cache.size cache <= 4);
  Alcotest.(check int) "capacity" 4 (Replay_cache.capacity cache);
  (* Kill switch: a remembered chunk stops hitting, and stores are
     skipped, until re-enabled. *)
  let p =
    Replay_cache.fingerprint ~image:(image ()) ~peers:[] ~pre_state:"state-10" []
  in
  Replay_cache.set_enabled false;
  Fun.protect ~finally:(fun () -> Replay_cache.set_enabled true) @@ fun () ->
  (match Replay_cache.find cache ~fuel:max_int p with
  | `Miss -> ()
  | _ -> Alcotest.fail "disabled cache must miss");
  Replay_cache.remember cache p ~instructions:1 ~entries_consumed:0 ();
  Replay_cache.clear cache;
  Alcotest.(check int) "disabled remember is a no-op" 0 (Replay_cache.size cache)

(* --- QCheck: audit equivalence cache-on/off/cleared, jobs 1 and 4 -------- *)

(* One audit's verdict-relevant projection. *)
let project (o : Audit.outcome) =
  ( (match o.Audit.verdict with Ok () -> None | Error e -> Some e),
    o.Audit.syntactic.Audit.failures,
    match o.Audit.semantic with
    | Some (Replay.Verified { instructions; entries_consumed }) ->
      Some (instructions, entries_consumed)
    | Some (Replay.Diverged d) -> Some (Option.value d.Replay.entry_seq ~default:0, -1)
    | None -> None )

let equivalence_prop =
  QCheck2.Test.make ~count:8 ~name:"audit verdicts: cache on = off = cleared, jobs 1 and 4"
    QCheck2.Gen.(pair (int_bound 1000) bool)
    (fun (salt, tamper) ->
      let b, _ = Lazy.force session in
      let log = Log.fork (Avmm.log b) in
      let n = Log.length log in
      if tamper then begin
        (* Mutate a random committed entry, reseal the chain after it —
           the strong attacker from test_core's completeness property. *)
        let seq = 1 + (salt mod (n - 1)) in
        let mutated =
          match (Log.entry log seq).Entry.content with
          | Entry.Send s -> Entry.Send { s with payload = s.payload ^ "x" }
          | Entry.Recv r -> Entry.Recv { r with payload = r.payload ^ "x" }
          | Entry.Ack k -> Entry.Ack { k with acked_seq = k.acked_seq + 1 }
          | Entry.Exec (Avm_machine.Event.Io_in io) ->
            Entry.Exec
              (Avm_machine.Event.Io_in { io with value = (io.value + 1) land 0xffffffff })
          | Entry.Snapshot_ref sr ->
            Entry.Snapshot_ref { sr with digest = Avm_crypto.Sha256.digest sr.digest }
          | c -> Entry.Note (Entry.describe c ^ "!")
        in
        Log.tamper_reseal log seq mutated
      end;
      let snapshots = Avmm.snapshots b in
      let audit ?cache jobs =
        project
          (Audit.full_of_log ~ctx:(bob_ctx ()) ~image:(image ()) ~mem_words:4096
             ~peers:peers_b ?cache ~log ~snapshots
             ~par:(Audit.parallel jobs) ())
      in
      let baseline = audit 1 in
      List.for_all
        (fun jobs ->
          let cache = Replay_cache.create ~spot_rate:8 ~seed:(Int64.of_int salt) () in
          let cold = audit ~cache jobs in
          let warm = audit ~cache jobs in
          Replay_cache.clear cache;
          let cleared = audit ~cache jobs in
          Replay_cache.set_enabled false;
          let disabled =
            Fun.protect ~finally:(fun () -> Replay_cache.set_enabled true) (fun () ->
                audit ~cache jobs)
          in
          let plain = audit jobs in
          if
            not
              (baseline = cold && baseline = warm && baseline = cleared
             && baseline = disabled && baseline = plain)
          then
            QCheck2.Test.fail_reportf
              "verdict differs at jobs=%d (tamper=%b salt=%d): cold/warm/cleared/disabled \
               must equal the no-cache baseline"
              jobs tamper salt
          else true)
        [ 1; 4 ])

let () =
  Alcotest.run "dedup"
    [
      ( "replay_cache",
        [
          Alcotest.test_case "hit reconstructs outcome" `Quick test_hit_reconstructs_outcome;
          Alcotest.test_case "colliding-fingerprint cheat caught" `Quick
            test_planted_cheat_colliding_fingerprint_caught;
          Alcotest.test_case "poisoned entry caught by spot check" `Quick
            test_poisoned_entry_caught_by_spot_check;
          Alcotest.test_case "spot check confirms honest entry" `Quick
            test_spot_check_confirms_honest_entry;
          Alcotest.test_case "fifo bound and kill switch" `Quick
            test_fifo_bound_and_kill_switch;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest ~long:false equivalence_prop ] );
    ]
