open Avm_util

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Wire ---------------------------------------------------------------- *)

let test_wire_ints () =
  let w = Wire.writer () in
  Wire.u8 w 0xab;
  Wire.u16 w 0xbeef;
  Wire.u32 w 0xdeadbeef;
  Wire.u64 w 0x1122334455667788L;
  let r = Wire.reader (Wire.contents w) in
  Alcotest.(check int) "u8" 0xab (Wire.read_u8 r);
  Alcotest.(check int) "u16" 0xbeef (Wire.read_u16 r);
  Alcotest.(check int) "u32" 0xdeadbeef (Wire.read_u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Wire.read_u64 r);
  Wire.expect_end r

let test_wire_varint_edges () =
  List.iter
    (fun v ->
      let w = Wire.writer () in
      Wire.varint w v;
      let r = Wire.reader (Wire.contents w) in
      Alcotest.(check int) (string_of_int v) v (Wire.read_varint r);
      Wire.expect_end r)
    [ 0; 1; 127; 128; 129; 16383; 16384; 1 lsl 30; max_int / 2 ]

let test_wire_varint_negative () =
  let w = Wire.writer () in
  Alcotest.check_raises "negative" (Invalid_argument "Wire.varint: negative") (fun () ->
      Wire.varint w (-1))

let test_wire_truncated () =
  let r = Wire.reader "\x01" in
  ignore (Wire.read_u8 r);
  Alcotest.check_raises "past end" Wire.Truncated (fun () -> ignore (Wire.read_u8 r))

let test_wire_bytes_and_lists () =
  let w = Wire.writer () in
  Wire.bytes w "hello";
  Wire.list w (fun w v -> Wire.varint w v) [ 1; 2; 3 ];
  Wire.option w (fun w v -> Wire.bytes w v) (Some "x");
  Wire.option w (fun w v -> Wire.bytes w v) None;
  Wire.bool w true;
  let r = Wire.reader (Wire.contents w) in
  Alcotest.(check string) "bytes" "hello" (Wire.read_bytes r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Wire.read_list r Wire.read_varint);
  Alcotest.(check (option string)) "some" (Some "x") (Wire.read_option r Wire.read_bytes);
  Alcotest.(check (option string)) "none" None (Wire.read_option r Wire.read_bytes);
  Alcotest.(check bool) "bool" true (Wire.read_bool r);
  Wire.expect_end r

let test_wire_trailing () =
  let r = Wire.reader "ab" in
  ignore (Wire.read_u8 r);
  Alcotest.check_raises "trailing" (Wire.Malformed "1 trailing bytes") (fun () ->
      Wire.expect_end r)

let test_wire_bad_list_count () =
  (* A huge count with no payload must not allocate/loop. *)
  let w = Wire.writer () in
  Wire.varint w 1_000_000;
  let r = Wire.reader (Wire.contents w) in
  Alcotest.check_raises "list" (Wire.Malformed "list count exceeds input") (fun () ->
      ignore (Wire.read_list r Wire.read_u8))

let prop_wire_string_roundtrip =
  qtest "wire: bytes roundtrip" QCheck2.Gen.string (fun s ->
      let w = Wire.writer () in
      Wire.bytes w s;
      let r = Wire.reader (Wire.contents w) in
      String.equal (Wire.read_bytes r) s && Wire.at_end r)

let prop_wire_u32_roundtrip =
  qtest "wire: u32 roundtrip"
    QCheck2.Gen.(int_range 0 0xffffffff)
    (fun v ->
      let w = Wire.writer () in
      Wire.u32 w v;
      Wire.read_u32 (Wire.reader (Wire.contents w)) = v)

let prop_wire_varint_roundtrip =
  qtest "wire: varint roundtrip" QCheck2.Gen.nat (fun v ->
      let w = Wire.writer () in
      Wire.varint w v;
      Wire.read_varint (Wire.reader (Wire.contents w)) = v)

let test_wire_endianness_pinned () =
  (* The wire format feeds hash preimages; its byte order must never
     change silently. *)
  let w = Wire.writer () in
  Wire.u16 w 0x1234;
  Wire.u32 w 0x9abcdef0;
  Alcotest.(check string) "little-endian" "\x34\x12\xf0\xde\xbc\x9a" (Wire.contents w)

let test_wire_u64_roundtrip_extremes () =
  List.iter
    (fun v ->
      let w = Wire.writer () in
      Wire.u64 w v;
      Alcotest.(check int64) "u64" v (Wire.read_u64 (Wire.reader (Wire.contents w))))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x0123456789abcdefL ]

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 99L in
  let c = Rng.split a in
  Alcotest.(check bool) "diverges" true (Rng.next_int64 a <> Rng.next_int64 c)

let prop_rng_int_bounds =
  qtest "rng: int within bounds"
    QCheck2.Gen.(pair (int_range 1 1000000) (int_range 0 10000))
    (fun (bound, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_int_in =
  qtest "rng: int_in inclusive"
    QCheck2.Gen.(pair (int_range (-50) 50) (int_range 0 1000))
    (fun (lo, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let hi = lo + 10 in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_bytes_len () =
  let rng = Rng.create 1L in
  Alcotest.(check int) "len" 17 (String.length (Rng.bytes rng 17))

let test_rng_exponential_positive () =
  let rng = Rng.create 3L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 5.0 >= 0.0)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 11L in
  for _ = 1 to 500 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_known_splitmix_stream () =
  (* Pin the stream so recorded experiments stay reproducible across
     refactors. *)
  let rng = Rng.create 0L in
  Alcotest.(check int64) "first" (-2152535657050944081L) (Rng.next_int64 rng)

(* --- Hex ------------------------------------------------------------------ *)

let test_hex_known () =
  Alcotest.(check string) "encode" "00ff10" (Hex.encode "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hex.decode "00ff10");
  Alcotest.(check string) "upper" "\xab" (Hex.decode "AB")

let prop_hex_roundtrip =
  qtest "hex: roundtrip" QCheck2.Gen.string (fun s -> String.equal (Hex.decode (Hex.encode s)) s)

let test_hex_bad () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: not a hex digit") (fun () ->
      ignore (Hex.decode "zz"))

(* --- Stats ----------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Stats.total s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "median nan" true (Float.is_nan (Stats.median s))

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev s)

let test_rate () =
  let r = Stats.rate () in
  Stats.tick r 0.0;
  Stats.tick r 1.0;
  Stats.tick r 2.0;
  Alcotest.(check (float 1e-9)) "per second" 1.5 (Stats.per_second r);
  let weighted = Stats.rate () in
  Stats.tick weighted ~weight:10.0 0.0;
  Stats.tick weighted ~weight:10.0 5.0;
  Alcotest.(check (float 1e-9)) "weighted" 4.0 (Stats.per_second weighted)

(* --- Tablefmt --------------------------------------------------------------- *)

let test_tablefmt_align () =
  let s = Tablefmt.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ] ] in
  Alcotest.(check bool) "has rule" true (String.length s > 0 && String.contains s '-');
  (* every line has equal leading column width *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines)

let test_tablefmt_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Tablefmt.render: ragged row") (fun () ->
      ignore (Tablefmt.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

let test_tablefmt_fixed () =
  Alcotest.(check string) "fixed" "1.50" (Tablefmt.fixed 1.5);
  Alcotest.(check string) "nan" "-" (Tablefmt.fixed Float.nan);
  Alcotest.(check string) "decimals" "1.500" (Tablefmt.fixed ~decimals:3 1.5);
  Alcotest.(check string) "mb" "2.00" (Tablefmt.mb (2.0 *. 1024.0 *. 1024.0))

(* --- Domain_pool ------------------------------------------------------------ *)

exception Boom of int

let test_pool_ordering () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int))
        "map_list keeps input order"
        (List.map (fun i -> i * i) xs)
        (Domain_pool.map_list pool (fun i -> i * i) xs);
      let arr = Array.init 37 (fun i -> i) in
      Alcotest.(check (array int))
        "map_array keeps input order"
        (Array.map (fun i -> i + 1) arr)
        (Domain_pool.map_array pool (fun i -> i + 1) arr))

let test_pool_exception () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      (* await re-raises the task's own exception *)
      let t = Domain_pool.submit pool (fun () -> raise (Boom 7)) in
      (match Domain_pool.await t with
      | _ -> Alcotest.fail "await should re-raise"
      | exception Boom 7 -> ());
      (* batch combinators settle everything, then re-raise the failure
         of the smallest job index *)
      match
        Domain_pool.run pool
          [
            (fun () -> 1);
            (fun () -> raise (Boom 1));
            (fun () -> raise (Boom 2));
            (fun () -> 4);
          ]
      with
      | _ -> Alcotest.fail "run should re-raise"
      | exception Boom 1 -> ())

let test_pool_reuse () =
  (* One pool across many submission rounds, including after a failed
     round. *)
  Domain_pool.with_pool ~jobs:2 (fun pool ->
      (try ignore (Domain_pool.run pool [ (fun () -> raise (Boom 0)) ]) with Boom 0 -> ());
      for round = 1 to 10 do
        let got = Domain_pool.map_list pool (fun i -> i * round) [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "round result" [ round; 2 * round; 3 * round ] got
      done)

let test_pool_stress () =
  (* Far more tasks than workers: everything queues and completes. *)
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      let n = 500 in
      let total = Domain_pool.map_list pool (fun i -> i) (List.init n (fun i -> i)) in
      Alcotest.(check int) "all tasks ran" (n * (n - 1) / 2) (List.fold_left ( + ) 0 total))

let test_pool_single_lane () =
  (* jobs = 1 spawns no domains; everything runs in the caller. *)
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "clamped" 1 (Domain_pool.jobs pool);
      let d0 = Domain.self () in
      let ran_on = Domain_pool.await (Domain_pool.submit pool (fun () -> Domain.self ())) in
      Alcotest.(check bool) "inline" true (ran_on = d0))

let test_pool_invalid_jobs () =
  (match Domain_pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs:0 should raise"
  | exception Invalid_argument _ -> ());
  match Domain_pool.create ~jobs:(-3) () with
  | _ -> Alcotest.fail "negative jobs should raise"
  | exception Invalid_argument _ -> ()

let test_pool_default_jobs () =
  let pool = Domain_pool.create () in
  Alcotest.(check int) "create () = default_jobs" (Domain_pool.default_jobs ())
    (Domain_pool.jobs pool);
  Domain_pool.shutdown pool

let test_pool_work_stealing () =
  (* Skewed task sizes: one lane gets a task that dwarfs the rest, so
     completing 200 tasks in bounded time requires idle lanes to steal
     from the loaded one. Round-robin placement pins task i to lane
     (i mod jobs), which makes the skew deterministic. *)
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let n = 200 in
      let work i =
        (* every 4th task is ~1000x heavier than its neighbors *)
        let spins = if i mod 4 = 0 then 200_000 else 200 in
        let acc = ref 0 in
        for k = 1 to spins do
          acc := (!acc + k) land 0xFFFF
        done;
        ignore !acc;
        i
      in
      let got = Domain_pool.map_list pool work (List.init n (fun i -> i)) in
      Alcotest.(check (list int)) "skewed tasks all complete in order"
        (List.init n (fun i -> i))
        got)

let test_pool_shutdown () =
  let pool = Domain_pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "before" [ 1 ] (Domain_pool.map_list pool (fun i -> i) [ 1 ]);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* idempotent *)
  match Domain_pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "util"
    [
      ( "wire",
        [
          Alcotest.test_case "fixed-width ints" `Quick test_wire_ints;
          Alcotest.test_case "varint edges" `Quick test_wire_varint_edges;
          Alcotest.test_case "varint negative" `Quick test_wire_varint_negative;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
          Alcotest.test_case "bytes/list/option/bool" `Quick test_wire_bytes_and_lists;
          Alcotest.test_case "trailing bytes" `Quick test_wire_trailing;
          Alcotest.test_case "hostile list count" `Quick test_wire_bad_list_count;
          Alcotest.test_case "endianness pinned" `Quick test_wire_endianness_pinned;
          Alcotest.test_case "u64 extremes" `Quick test_wire_u64_roundtrip_extremes;
          prop_wire_string_roundtrip;
          prop_wire_u32_roundtrip;
          prop_wire_varint_roundtrip;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "reuse across rounds" `Quick test_pool_reuse;
          Alcotest.test_case "stress (tasks >> workers)" `Quick test_pool_stress;
          Alcotest.test_case "single lane runs inline" `Quick test_pool_single_lane;
          Alcotest.test_case "invalid jobs rejected" `Quick test_pool_invalid_jobs;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          Alcotest.test_case "work stealing under skew" `Quick test_pool_work_stealing;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_len;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "pinned stream" `Quick test_rng_known_splitmix_stream;
          prop_rng_int_bounds;
          prop_rng_int_in;
        ] );
      ( "hex",
        [
          Alcotest.test_case "known vectors" `Quick test_hex_known;
          Alcotest.test_case "bad input" `Quick test_hex_bad;
          prop_hex_roundtrip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "rate" `Quick test_rate;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "alignment" `Quick test_tablefmt_align;
          Alcotest.test_case "ragged rows" `Quick test_tablefmt_ragged;
          Alcotest.test_case "number formatting" `Quick test_tablefmt_fixed;
        ] );
    ]
