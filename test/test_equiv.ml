open Avm_core
open Avm_tamperlog
module Identity = Avm_crypto.Identity
module Rng = Avm_util.Rng
module Witness = Avm_core.Witness
module Daemon = Avm_service.Daemon
module Equiv = Avm_scenario.Equivocation_run

(* Fixtures: one identity whose log we commit to honestly, plus a
   second to play the wrong-certificate offerer. *)

let rng = Rng.create 417L
let ca = Identity.create_ca rng ~bits:512 "ca"
let alice = Identity.issue ca rng ~bits:512 "alice"
let bob = Identity.issue ca rng ~bits:512 "bob"
let alice_cert = Identity.certificate alice
let bob_cert = Identity.certificate bob

(* An honest log of [n] Note entries and alice's authenticator over
   each — the commitment stream a witness would collect. *)
let honest_auths n =
  let log = Log.create () in
  List.init n (fun i ->
      let prev = Log.head_hash log in
      let entry = Log.append log (Entry.Note (Printf.sprintf "note %d" i)) in
      Auth.make alice ~entry ~prev_hash:prev)

(* A conflicting head for the same seq: a different Note sealed onto
   the same prev, signed with alice's real key — genuine equivocation. *)
let conflicting_auth (a : Auth.t) =
  let entry =
    Entry.seal ~prev:a.Auth.prev_hash ~seq:a.Auth.seq (Entry.Note "the other history")
  in
  Auth.make alice ~entry ~prev_hash:a.Auth.prev_hash

(* --- Auth.conflicts and the Equivocation evidence ------------------------- *)

let test_conflicts_predicate () =
  let auths = honest_auths 3 in
  let a = List.nth auths 1 in
  let b = conflicting_auth a in
  Alcotest.(check bool) "forked pair conflicts" true (Auth.conflicts a b);
  Alcotest.(check bool) "symmetric" true (Auth.conflicts b a);
  Alcotest.(check bool) "self" false (Auth.conflicts a a);
  Alcotest.(check bool) "different seqs" false (Auth.conflicts a (List.nth auths 2));
  Alcotest.(check bool) "both verify" true (Auth.verify alice_cert a && Auth.verify alice_cert b)

let test_evidence_roundtrip_and_check () =
  let a = List.nth (honest_auths 2) 1 in
  let b = conflicting_auth a in
  let ev =
    {
      Evidence.accused = "alice";
      prev_hash = "";
      segment = [];
      auths = [];
      accusation = Evidence.Equivocation { a; b };
    }
  in
  let ev' = Evidence.decode (Evidence.encode ev) in
  (match ev'.Evidence.accusation with
  | Evidence.Equivocation { a = a'; b = b' } ->
    Alcotest.(check bool) "auths survive the wire" true (a = a' && b = b')
  | _ -> Alcotest.fail "accusation tag lost in roundtrip");
  (* A third party verifies with only the accused's certificate — no
     log, no image, no peers. *)
  let ctx = Audit_ctx.ctx ~node_cert:alice_cert () in
  Alcotest.(check bool) "checks standalone" true
    (Audit.check_evidence ev' ~ctx ~image:[||] ~peers:[] ());
  (* Under the wrong certificate it proves nothing. *)
  let bob_ctx = Audit_ctx.ctx ~node_cert:bob_cert () in
  Alcotest.(check bool) "wrong cert rejected" false
    (Audit.check_evidence ev ~ctx:bob_ctx ~image:[||] ~peers:[] ());
  (* A non-conflicting pair is an unsupported claim. *)
  let bogus = { ev with Evidence.accusation = Evidence.Equivocation { a; b = a } } in
  Alcotest.(check bool) "same-hash pair rejected" false
    (Audit.check_evidence bogus ~ctx ~image:[||] ~peers:[] ());
  (* A corrupt signature on either half invalidates the proof. *)
  let corrupt (x : Auth.t) =
    let s = Bytes.of_string x.Auth.signature in
    Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) lxor 1));
    { x with Auth.signature = Bytes.to_string s }
  in
  let forged = { ev with Evidence.accusation = Evidence.Equivocation { a; b = corrupt b } } in
  Alcotest.(check bool) "corrupt half rejected" false
    (Audit.check_evidence forged ~ctx ~image:[||] ~peers:[] ())

(* --- Witness.offer ------------------------------------------------------- *)

let test_offer_semantics () =
  let store = Witness.equiv_store () in
  let auths = honest_auths 3 in
  let a = List.nth auths 1 in
  List.iter
    (fun x ->
      match Witness.offer store ~cert:alice_cert x with
      | Witness.Fresh -> ()
      | _ -> Alcotest.fail "first offer of each seq should be Fresh")
    auths;
  (match Witness.offer store ~cert:alice_cert a with
  | Witness.Known -> ()
  | _ -> Alcotest.fail "honest retransmission should be Known");
  (match Witness.offer store ~cert:bob_cert a with
  | Witness.Rejected _ -> ()
  | _ -> Alcotest.fail "wrong certificate should be Rejected");
  Alcotest.(check int) "no proofs from honest offers" 0
    (List.length (Witness.equiv_proofs store));
  let b = conflicting_auth a in
  (match Witness.offer store ~cert:alice_cert b with
  | Witness.Conflict ev ->
    Alcotest.(check string) "accuses alice" "alice" ev.Evidence.accused;
    let ctx = Audit_ctx.ctx ~node_cert:alice_cert () in
    Alcotest.(check bool) "proof verifies" true
      (Audit.check_evidence ev ~ctx ~image:[||] ~peers:[] ())
  | _ -> Alcotest.fail "conflicting head should be Conflict");
  Alcotest.(check int) "one proof banked" 1 (List.length (Witness.equiv_proofs store))

let test_offer_conservative_on_corruption () =
  (* A corrupt copy of a would-be conflicting head must be dropped
     without accusing anyone — only a verified pair is a proof. *)
  let store = Witness.equiv_store () in
  let a = List.nth (honest_auths 2) 1 in
  (match Witness.offer store ~cert:alice_cert a with
  | Witness.Fresh -> ()
  | _ -> Alcotest.fail "expected Fresh");
  let b = conflicting_auth a in
  let corrupt_sig =
    let s = Bytes.of_string b.Auth.signature in
    Bytes.set s 1 (Char.chr (Char.code (Bytes.get s 1) lxor 0x40));
    { b with Auth.signature = Bytes.to_string s }
  in
  (match Witness.offer store ~cert:alice_cert corrupt_sig with
  | Witness.Rejected _ -> ()
  | _ -> Alcotest.fail "corrupt signature must be Rejected");
  let corrupt_hash = { b with Auth.hash = String.map (fun c -> Char.chr (Char.code c lxor 1)) b.Auth.hash } in
  (match Witness.offer store ~cert:alice_cert corrupt_hash with
  | Witness.Rejected _ -> ()
  | _ -> Alcotest.fail "inconsistent hash must be Rejected");
  Alcotest.(check int) "no proof from corruption" 0 (List.length (Witness.equiv_proofs store));
  (* The genuine second head still pairs with the stored first. *)
  match Witness.offer store ~cert:alice_cert b with
  | Witness.Conflict _ -> ()
  | _ -> Alcotest.fail "genuine conflicting head should still convict"

(* QCheck: no pile of forged, replayed or honestly-duplicated copies
   of honest authenticators ever yields an equivocation proof. Only a
   second history actually signed by the key can. *)
let prop_no_false_proof =
  let gen =
    QCheck2.Gen.(
      pair (int_range 2 8)
        (list_size (int_range 1 30) (pair (int_range 0 5) (int_range 0 7))))
  in
  QCheck2.Test.make ~count:40 ~name:"forgeries and replays never convict" gen
    (fun (n, script) ->
      let auths = Array.of_list (honest_auths n) in
      let store = Witness.equiv_store () in
      List.iter
        (fun (mutation, idx) ->
          let a = auths.(idx mod n) in
          let offered =
            match mutation with
            | 0 -> a (* honest duplicate *)
            | 1 ->
              let s = Bytes.of_string a.Auth.signature in
              Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) lxor 1));
              { a with Auth.signature = Bytes.to_string s }
            | 2 -> { a with Auth.hash = a.Auth.prev_hash } (* spliced hash *)
            | 3 -> { a with Auth.seq = a.Auth.seq + 1 } (* replayed at wrong seq *)
            | 4 -> { a with Auth.content_digest = String.make 32 '\000' }
            | _ -> { a with Auth.node = "bob" } (* stolen identity *)
          in
          match Witness.offer store ~cert:alice_cert offered with
          | Witness.Conflict _ ->
            QCheck2.Test.fail_report "a forged or replayed copy produced a proof"
          | Witness.Fresh | Witness.Known | Witness.Rejected _ -> ())
        script;
      Witness.equiv_proofs store = [])

(* --- the ingress dedup window (satellite) --------------------------------- *)

let make_target ~window =
  let config =
    Config.make ~snapshot_every_us:None ~rx_dedup_window:window Config.Avmm_rsa768
  in
  let image = [| 0 |] in
  (* HALT: the guest never runs; we only exercise ingress *)
  Avmm.create ~identity:bob ~config ~image ~mem_words:1024
    ~peers:[ (0, "bob"); (1, "alice") ]
    ~on_send:(fun _ -> ())
    ()

let envelope log ~nonce =
  let payload = Printf.sprintf "p%03d" nonce in
  let prev = Log.head_hash log in
  let entry = Log.append log (Entry.Send { dest = "bob"; nonce; payload }) in
  let auth = Auth.make alice ~entry ~prev_hash:prev in
  let signature =
    Identity.sign alice (Wireformat.message_body ~src:"alice" ~dest:"bob" ~nonce ~payload)
  in
  { Wireformat.src = "alice"; dest = "bob"; nonce; payload; signature; auth }

let test_seen_window_bounded () =
  let evicted0 = Avm_obs.Metrics.counter (Avm_obs.Metrics.snapshot ()) "net.seen_evicted" in
  let b = make_target ~window:4 in
  let log = Log.create () in
  let envs = List.init 6 (fun i -> envelope log ~nonce:(i + 1)) in
  let deliver e =
    Avmm.deliver b e ~sender_cert:alice_cert
  in
  let first4 = List.filteri (fun i _ -> i < 4) envs in
  List.iter
    (fun e ->
      match deliver e with
      | `Ack _ -> ()
      | _ -> Alcotest.fail "fresh envelope not acked")
    first4;
  Alcotest.(check int) "cache holds the window" 4 (Avmm.seen_size b);
  (* Within the window a retransmission is still recognized. *)
  (match deliver (List.nth envs 0) with
  | `Duplicate _ -> ()
  | _ -> Alcotest.fail "retransmission within window not deduplicated");
  (* Two more fresh envelopes evict the two oldest; the cache never
     grows past the configured window (the unbounded-memory bug). *)
  (match deliver (List.nth envs 4) with `Ack _ -> () | _ -> Alcotest.fail "nonce 5 refused");
  (match deliver (List.nth envs 5) with `Ack _ -> () | _ -> Alcotest.fail "nonce 6 refused");
  Alcotest.(check int) "still bounded" 4 (Avmm.seen_size b);
  let evicted = Avm_obs.Metrics.counter (Avm_obs.Metrics.snapshot ()) "net.seen_evicted" in
  Alcotest.(check bool) "evictions counted" true (evicted - evicted0 >= 2);
  (* An evicted nonce is re-accepted (and re-logged — replay stays
     faithful); it must not be mistaken for a duplicate. *)
  match deliver (List.nth envs 0) with
  | `Ack _ -> ()
  | `Duplicate _ -> Alcotest.fail "evicted nonce still reported as duplicate"
  | `Rejected r -> Alcotest.failf "evicted nonce rejected: %s" r

let test_window_config_validated () =
  Alcotest.check_raises "zero window rejected"
    (Invalid_argument "Config.make: rx_dedup_window must be >= 1") (fun () ->
      ignore (Config.make ~rx_dedup_window:0 Config.Avmm_rsa768))

(* --- daemon integration --------------------------------------------------- *)

let test_daemon_offer_auth () =
  let events = ref [] in
  let d = Daemon.create ~on_verdict:(fun ev -> events := ev :: !events) () in
  let ctx = Audit_ctx.ctx ~node_cert:alice_cert () in
  Daemon.attach d ~id:"alice" ~ctx ~image:[| 0 |] ~mem_words:1024 ~peers:[ (0, "alice") ] ();
  let a = List.nth (honest_auths 2) 1 in
  (match Daemon.offer_auth d ~id:"alice" a with
  | Witness.Fresh -> ()
  | _ -> Alcotest.fail "first commitment should be Fresh");
  Alcotest.(check int) "no verdict yet" 0 (List.length !events);
  let b = conflicting_auth a in
  (match Daemon.offer_auth d ~id:"alice" b with
  | Witness.Conflict _ -> ()
  | _ -> Alcotest.fail "conflicting commitment should convict");
  (* The verdict fired mid-session, without a pump cycle. *)
  (match !events with
  | [ ev ] -> (
    (match ev.Daemon.ev_verdict with
    | Online_audit.Equivocated _ -> ()
    | _ -> Alcotest.fail "expected an Equivocated verdict");
    Alcotest.(check (option int)) "entry seq named" (Some a.Auth.seq) ev.Daemon.ev_entry_seq;
    match ev.Daemon.ev_outcome with
    | None -> Alcotest.fail "no outcome attached"
    | Some o -> (
      match o.Audit.evidence with
      | None -> Alcotest.fail "outcome carries no evidence"
      | Some ev ->
        Alcotest.(check bool) "daemon evidence verifies standalone" true
          (Audit.check_evidence ev ~ctx ~image:[||] ~peers:[] ())))
  | l -> Alcotest.failf "expected exactly one event, got %d" (List.length l));
  Alcotest.(check int) "proof banked daemon-wide" 1 (List.length (Daemon.equiv_proofs d));
  (* Further offers for a session with a verdict change nothing. *)
  ignore (Daemon.offer_auth d ~id:"alice" b);
  Alcotest.(check int) "fired exactly once" 1 (List.length !events)

(* --- the scenario end-to-end ---------------------------------------------- *)

let test_equivocation_run_small () =
  let spec =
    {
      Equiv.default_spec with
      Equiv.nodes = 20;
      witnesses = 2;
      epochs = 2;
      epoch_us = 200_000.0;
      activity = 0.2;
      fork_frac = 0.05;
      seed = 23L;
    }
  in
  let o1 = Equiv.run ~par:Audit_ctx.sequential spec in
  let o2 = Equiv.run ~par:(Audit_ctx.parallel 2) spec in
  Alcotest.(check string) "jobs 1 = jobs 2" (Equiv.signature o1) (Equiv.signature o2);
  Alcotest.(check bool) "at least one forker planted" true (o1.Equiv.forkers <> []);
  List.iter
    (fun (f : Equiv.forker) ->
      match List.assoc_opt f.Equiv.node o1.Equiv.exchange_detected with
      | Some e -> Alcotest.(check int) "caught in its fork epoch" f.Equiv.epoch e
      | None -> Alcotest.failf "forker n%d escaped the exchange" f.Equiv.node)
    o1.Equiv.forkers;
  Alcotest.(check (list int)) "no false flags" [] o1.Equiv.false_flags;
  Alcotest.(check int) "every proof verifies standalone"
    (List.length o1.Equiv.proofs) o1.Equiv.proofs_verified

let () =
  Alcotest.run "avm_equiv"
    [
      ( "evidence",
        [
          Alcotest.test_case "conflicts predicate" `Quick test_conflicts_predicate;
          Alcotest.test_case "roundtrip and standalone check" `Quick
            test_evidence_roundtrip_and_check;
        ] );
      ( "offer",
        [
          Alcotest.test_case "fresh/known/rejected/conflict" `Quick test_offer_semantics;
          Alcotest.test_case "conservative under corruption" `Quick
            test_offer_conservative_on_corruption;
          QCheck_alcotest.to_alcotest prop_no_false_proof;
        ] );
      ( "ingress-dedup",
        [
          Alcotest.test_case "seen cache bounded by window" `Quick test_seen_window_bounded;
          Alcotest.test_case "window config validated" `Quick test_window_config_validated;
        ] );
      ( "daemon",
        [ Alcotest.test_case "offer_auth convicts mid-session" `Quick test_daemon_offer_auth ] );
      ( "scenario",
        [ Alcotest.test_case "forkers caught within one epoch" `Slow test_equivocation_run_small ] );
    ]
