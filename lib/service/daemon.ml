module OA = Avm_core.Online_audit
module Metrics = Avm_obs.Metrics
module Trace = Avm_obs.Trace

type event = {
  ev_session : string;
  ev_verdict : OA.verdict;
  ev_entry_seq : int option;
  ev_chunk : int;
  ev_lag_entries : int;
  ev_outcome : Avm_core.Audit.outcome option;
}

type session = {
  s_id : string;
  s_session : OA.Session.t;
  mutable s_fired : bool;  (* verdict already delivered via on_verdict *)
}

type t = {
  high : int;
  low : int;
  max_lag : int;
  d_cache : Avm_core.Replay_cache.t;
  d_equiv : Avm_core.Witness.equiv_store;
  on_verdict : event -> unit;
  sessions : (string, session) Hashtbl.t;
  mutable n_verdicts : int;
  mutable n_ingested : int;
}

let create ?high_watermark ?low_watermark ?(max_lag_entries = 4096) ?cache
    ?(on_verdict = fun _ -> ()) () =
  let high = match high_watermark with Some h -> h | None -> max_lag_entries in
  let low = match low_watermark with Some l -> l | None -> high / 2 in
  let d_cache = match cache with Some c -> c | None -> Avm_core.Replay_cache.create () in
  {
    high;
    low;
    max_lag = max_lag_entries;
    d_cache;
    d_equiv = Avm_core.Witness.equiv_store ();
    on_verdict;
    sessions = Hashtbl.create 64;
    n_verdicts = 0;
    n_ingested = 0;
  }

let cache t = t.d_cache

let attach t ~id ?ctx ~image ?mem_words ?replay_rate ?snapshot_of ~peers () =
  if Hashtbl.mem t.sessions id then
    invalid_arg (Printf.sprintf "Daemon.attach: duplicate session id %S" id);
  let s_session =
    OA.Session.open_session ?ctx ~image ?mem_words ?replay_rate ~high_watermark:t.high
      ~low_watermark:t.low ~cache:t.d_cache ?snapshot_of ~peers ()
  in
  Hashtbl.replace t.sessions id { s_id = id; s_session; s_fired = false };
  Metrics.incr "service.sessions_attached"

let find t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Daemon: unknown session id %S" id)

let event_of s v =
  let st = OA.Session.status s.s_session in
  let ev_entry_seq =
    match v with
    | OA.Tampered { entry_seq; _ } -> entry_seq
    | OA.Diverged d -> d.Avm_core.Replay.entry_seq
    | OA.Equivocated { a; _ } -> Some a.Avm_tamperlog.Auth.seq
  in
  {
    ev_session = s.s_id;
    ev_verdict = v;
    ev_entry_seq;
    ev_chunk = st.OA.chunks_retired;
    ev_lag_entries = st.OA.lag_entries;
    ev_outcome = OA.Session.outcome s.s_session;
  }

(* Deliver a session's verdict exactly once. *)
let fire t s v =
  if not s.s_fired then begin
    s.s_fired <- true;
    t.n_verdicts <- t.n_verdicts + 1;
    Metrics.incr "service.verdicts";
    let ev = event_of s v in
    t.on_verdict ev;
    Some ev
  end
  else None

let fire_pending t s =
  match (OA.Session.status s.s_session).OA.verdict with
  | Some v -> fire t s v
  | None -> None

let ingest t ~id log =
  let s = find t id in
  let before = (OA.Session.status s.s_session).OA.ingested_entries in
  let r = OA.Session.ingest s.s_session log in
  let st = OA.Session.status s.s_session in
  let pulled = st.OA.ingested_entries - before in
  t.n_ingested <- t.n_ingested + pulled;
  Metrics.incr ~by:pulled "service.entries_ingested";
  ignore (fire_pending t s : event option);
  r

let offer_auth t ~id auth =
  let s = find t id in
  match OA.Session.node_cert s.s_session with
  | None -> Avm_core.Witness.Rejected "session has no certificate context"
  | Some cert ->
    let r = Avm_core.Witness.offer t.d_equiv ~cert auth in
    (match r with
    | Avm_core.Witness.Conflict ev ->
      Metrics.incr "service.equivocations";
      (match ev.Avm_core.Evidence.accusation with
      | Avm_core.Evidence.Equivocation { a; b } ->
        OA.Session.equivocate s.s_session ~a ~b;
        ignore (fire_pending t s : event option)
      | _ -> ())
    | _ -> ());
    r

let equiv_proofs t = Avm_core.Witness.equiv_proofs t.d_equiv

let session_status t ~id = OA.Session.status (find t id).s_session

let session_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.sessions [] |> List.sort compare

let live_sessions t =
  Hashtbl.fold (fun _ s acc -> if s.s_fired then acc else s :: acc) t.sessions []

let refresh_gauges t =
  let lags =
    Hashtbl.fold
      (fun _ s acc -> OA.Session.lag_entries s.s_session :: acc)
      t.sessions []
    |> List.sort compare
  in
  let n = List.length lags in
  let nth_pct p = if n = 0 then 0 else List.nth lags (min (n - 1) (n * p / 100)) in
  Metrics.set "service.sessions" (float_of_int (Hashtbl.length t.sessions));
  Metrics.set "service.lag_entries_max" (float_of_int (nth_pct 100));
  Metrics.set "service.lag_entries_p99" (float_of_int (nth_pct 99));
  List.iter (fun l -> Metrics.observe "service.lag_entries" (float_of_int l)) lags

let pump t ~budget_instructions ?(par = Avm_core.Audit_ctx.sequential) () =
  Trace.with_span ~name:"service.pump"
    ~attrs:[ ("sessions", string_of_int (Hashtbl.length t.sessions)) ]
  @@ fun () ->
  (* Laggiest first: the budget bounds the worst session, not the mean. *)
  let order =
    live_sessions t
    |> List.map (fun s -> (OA.Session.lag_entries s.s_session, s))
    |> List.sort (fun (l1, s1) (l2, s2) ->
           if l1 <> l2 then compare l2 l1 else compare s1.s_id s2.s_id)
    |> List.map snd
  in
  let step s = ignore (OA.Session.step s.s_session ~budget_instructions : OA.verdict option) in
  (match par.Avm_core.Audit_ctx.pool with
  | Some pool when Avm_util.Domain_pool.jobs pool > 1 ->
    ignore (Avm_util.Domain_pool.map_list pool step order : unit list)
  | _ ->
    if par.Avm_core.Audit_ctx.jobs > 1 then
      Avm_util.Domain_pool.with_pool ~jobs:par.Avm_core.Audit_ctx.jobs (fun pool ->
          ignore (Avm_util.Domain_pool.map_list pool step order : unit list))
    else List.iter step order);
  (* Verdicts are delivered sequentially on the calling domain, in
     session-id order, whatever the stepping order was. *)
  let fired =
    List.sort (fun s1 s2 -> compare s1.s_id s2.s_id) order
    |> List.filter_map (fire_pending t)
  in
  refresh_gauges t;
  List.length fired

let detach t ~id =
  let s = find t id in
  let final =
    match OA.Session.close s.s_session with Some v -> fire t s v | None -> None
  in
  Hashtbl.remove t.sessions id;
  Metrics.incr "service.sessions_detached";
  final

type stats = {
  sessions : int;
  verdicts : int;
  entries_ingested : int;
  lag_max : int;
  lag_p50 : int;
  lag_p99 : int;
  backpressured : int;
}

let stats (t : t) =
  let statuses =
    Hashtbl.fold (fun _ s acc -> OA.Session.status s.s_session :: acc) t.sessions []
  in
  let lags = List.map (fun st -> st.OA.lag_entries) statuses |> List.sort compare in
  let n = List.length lags in
  let nth_pct p = if n = 0 then 0 else List.nth lags (min (n - 1) (n * p / 100)) in
  {
    sessions = n;
    verdicts = t.n_verdicts;
    entries_ingested = t.n_ingested;
    lag_max = nth_pct 100;
    lag_p50 = nth_pct 50;
    lag_p99 = nth_pct 99;
    backpressured =
      List.length (List.filter (fun st -> st.OA.throttled) statuses);
  }

let shutdown t = List.filter_map (fun id -> detach t ~id) (session_ids t)
