(** Auditor-as-a-service: a long-running daemon multiplexing hundreds
    of concurrent {!Avm_core.Online_audit.Session}s over one shared
    fleet-wide {!Avm_core.Replay_cache}.

    The daemon owns three invariants the single-session API leaves to
    the caller:

    - {b Backpressure.} Each session's ingest queue is bounded by
      high/low watermarks; {!ingest} relays the session's
      [`Backpressure] refusal to the producer, and the daemon counts
      engagements/releases fleet-wide so an operator sees when replay
      capacity is the bottleneck.
    - {b Bounded lag.} {!pump} spends a per-cycle instruction budget
      across sessions {e laggiest first}, so the worst-case audit lag
      (entries and estimated wall-clock, exported as [service.*]
      gauges) is what the budget bounds, not the average.
    - {b Incremental evidence.} The moment any session reaches a
      verdict — a chain break at ingest, a divergence mid-pump — the
      [on_verdict] callback fires with an {!event} carrying the
      {!Avm_core.Audit.outcome}-compatible evidence, without waiting
      for the session to close. *)

type event = {
  ev_session : string;  (** session id given to {!attach} *)
  ev_verdict : Avm_core.Online_audit.verdict;
  ev_entry_seq : int option;  (** offending log entry, if identified *)
  ev_chunk : int;  (** snapshot-delimited chunks retired before the verdict *)
  ev_lag_entries : int;  (** session lag when the verdict landed *)
  ev_outcome : Avm_core.Audit.outcome option;
      (** transferable evidence; [None] when the session has no ctx *)
}

type t

val create :
  ?high_watermark:int ->
  ?low_watermark:int ->
  ?max_lag_entries:int ->
  ?cache:Avm_core.Replay_cache.t ->
  ?on_verdict:(event -> unit) ->
  unit ->
  t
(** [max_lag_entries] (default 4096) is the advertised lag bound the
    daemon works toward: {!pump} orders sessions by lag and the
    [service.lag_entries_max] gauge tracks the worst session, so a
    sustained breach is visible (and assertable via [avm_obs_check
    --gauge-max]). The watermarks default to [max_lag_entries] and
    half of it; [cache] defaults to a fresh private cache shared by
    every attached session. *)

val cache : t -> Avm_core.Replay_cache.t

val attach :
  t ->
  id:string ->
  ?ctx:Avm_core.Audit_ctx.ctx ->
  image:int array ->
  ?mem_words:int ->
  ?replay_rate:float ->
  ?snapshot_of:(unit -> Avm_machine.Snapshot.t list) ->
  peers:(int * string) list ->
  unit ->
  unit
(** Open a session for one producer. @raise Invalid_argument on a
    duplicate [id]. *)

val ingest : t -> id:string -> Avm_tamperlog.Log.t -> [ `Accepted | `Backpressure of int ]
(** Offer a producer's grown log to its session. A syntactic failure
    fires [on_verdict] before the call returns. *)

val offer_auth :
  t -> id:string -> Avm_tamperlog.Auth.t -> Avm_core.Witness.offer_result
(** Offer a collected authenticator for session [id]'s producer into
    the daemon's shared {!Avm_core.Witness.equiv_store} (one store per
    daemon, persistent across sessions and epochs). The authenticator
    is verified against the session's producer certificate
    ({!Avm_core.Online_audit.Session.node_cert}); a session opened
    without [ctx] rejects everything. On [Conflict] — two verified
    commitments at the same seq with different hashes — the session's
    verdict becomes [Equivocated] and [on_verdict] fires before the
    call returns, mid-session, with the transferable proof attached
    ([service.equivocations] is bumped). All other results leave the
    session untouched: a corrupt or forged copy is dropped, never
    accused. @raise Invalid_argument on an unknown [id]. *)

val equiv_proofs : t -> Avm_core.Evidence.t list
(** Equivocation proofs the daemon's store has derived so far, at most
    one per accused node, sorted by accused name. *)

val session_status : t -> id:string -> Avm_core.Online_audit.status
val session_ids : t -> string list

val pump : t -> budget_instructions:int -> ?par:Avm_core.Audit_ctx.parallelism -> unit -> int
(** One service cycle: give every live (verdict-free) session
    [budget_instructions] of replay, laggiest sessions first, firing
    [on_verdict] for each new verdict, then refresh the [service.*]
    gauges. With [par] resolving to more than one lane the sessions
    are stepped concurrently on a {!Avm_util.Domain_pool} (sessions
    are independent; the shared cache is thread-safe) and the events
    are still fired sequentially on the calling domain, in session-id
    order. Returns the number of new verdicts. *)

val detach : t -> id:string -> event option
(** Close the session (settling the syntactic stream's cut-point
    obligations, which can itself surface a final verdict — fired via
    [on_verdict] and returned). *)

type stats = {
  sessions : int;  (** currently attached *)
  verdicts : int;  (** total fired since [create] *)
  entries_ingested : int;
  lag_max : int;
  lag_p50 : int;
  lag_p99 : int;
  backpressured : int;  (** sessions currently throttled *)
}

val stats : t -> stats

val shutdown : t -> event list
(** Detach every remaining session; the final events, in id order. *)
