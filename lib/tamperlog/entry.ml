type content =
  | Send of { dest : string; nonce : int; payload : string }
  | Recv of { src : string; nonce : int; payload : string; signature : string }
  | Ack of { src : string; acked_seq : int; signature : string }
  | Exec of Avm_machine.Event.t
  | Snapshot_ref of { digest : string; snapshot_seq : int; at_icount : int }
  | Note of string

type t = { seq : int; content : content; hash : string }

let type_tag = function
  | Send _ -> 1
  | Recv _ -> 2
  | Ack _ -> 3
  | Exec _ -> 4
  | Snapshot_ref _ -> 5
  | Note _ -> 6

let write_content w content =
  let open Avm_util in
  match content with
  | Send { dest; nonce; payload } ->
    Wire.bytes w dest;
    Wire.varint w nonce;
    Wire.bytes w payload
  | Recv { src; nonce; payload; signature } ->
    Wire.bytes w src;
    Wire.varint w nonce;
    Wire.bytes w payload;
    Wire.bytes w signature
  | Ack { src; acked_seq; signature } ->
    Wire.bytes w src;
    Wire.varint w acked_seq;
    Wire.bytes w signature
  | Exec ev -> Avm_machine.Event.write w ev
  | Snapshot_ref { digest; snapshot_seq; at_icount } ->
    Wire.bytes w digest;
    Wire.varint w snapshot_seq;
    Wire.varint w at_icount
  | Note s -> Wire.bytes w s

let content_bytes content =
  let w = Avm_util.Wire.writer () in
  write_content w content;
  Avm_util.Wire.contents w

(* Hashing the chain is the audit engine's innermost loop, so the
   serialized forms below are digested straight from per-domain
   scratch writers — no intermediate strings. *)
let content_scratch = Domain.DLS.new_key (fun () -> Avm_util.Wire.writer ())

let content_digest content =
  let w = Domain.DLS.get content_scratch in
  Avm_util.Wire.reset w;
  write_content w content;
  Avm_crypto.Sha256.digest_buffer (Avm_util.Wire.buffer w)

let content_of_bytes ~tag bytes =
  let open Avm_util in
  let r = Wire.reader bytes in
  let content =
    match tag with
    | 1 ->
      let dest = Wire.read_bytes r in
      let nonce = Wire.read_varint r in
      let payload = Wire.read_bytes r in
      Send { dest; nonce; payload }
    | 2 ->
      let src = Wire.read_bytes r in
      let nonce = Wire.read_varint r in
      let payload = Wire.read_bytes r in
      let signature = Wire.read_bytes r in
      Recv { src; nonce; payload; signature }
    | 3 ->
      let src = Wire.read_bytes r in
      let acked_seq = Wire.read_varint r in
      let signature = Wire.read_bytes r in
      Ack { src; acked_seq; signature }
    | 4 -> Exec (Avm_machine.Event.read r)
    | 5 ->
      let digest = Wire.read_bytes r in
      let snapshot_seq = Wire.read_varint r in
      let at_icount = Wire.read_varint r in
      Snapshot_ref { digest; snapshot_seq; at_icount }
    | 6 -> Note (Wire.read_bytes r)
    | n -> raise (Wire.Malformed (Printf.sprintf "bad entry tag %d" n))
  in
  Wire.expect_end r;
  content

let chain_scratch = Domain.DLS.new_key (fun () -> Avm_util.Wire.writer ())

let chain_hash_raw ~prev ~seq ~tag ~content_digest =
  let open Avm_util in
  let w = Domain.DLS.get chain_scratch in
  Wire.reset w;
  Wire.raw w prev;
  Wire.varint w seq;
  Wire.u8 w tag;
  Wire.raw w content_digest;
  Avm_crypto.Sha256.digest_buffer (Wire.buffer w)

let chain_hash ~prev ~seq content =
  chain_hash_raw ~prev ~seq ~tag:(type_tag content)
    ~content_digest:(content_digest content)

let chain_ok ~prev t = String.equal (chain_hash ~prev ~seq:t.seq t.content) t.hash
let seal ~prev ~seq content = { seq; content; hash = chain_hash ~prev ~seq content }

let write w t =
  let open Avm_util in
  Wire.varint w t.seq;
  Wire.u8 w (type_tag t.content);
  Wire.bytes w (content_bytes t.content);
  Wire.bytes w t.hash

let read r =
  let open Avm_util in
  let seq = Wire.read_varint r in
  let tag = Wire.read_u8 r in
  let content = content_of_bytes ~tag (Wire.read_bytes r) in
  let hash = Wire.read_bytes r in
  { seq; content; hash }

let write_body w t =
  let open Avm_util in
  Wire.varint w t.seq;
  Wire.u8 w (type_tag t.content);
  Wire.bytes w (content_bytes t.content)

let read_body ~prev r =
  let open Avm_util in
  let seq = Wire.read_varint r in
  let tag = Wire.read_u8 r in
  let bytes = Wire.read_bytes r in
  let content = content_of_bytes ~tag bytes in
  (* [bytes] is already the canonical encoding of [content], so its
     digest equals [content_digest content] without re-serializing. *)
  {
    seq;
    content;
    hash = chain_hash_raw ~prev ~seq ~tag ~content_digest:(Avm_crypto.Sha256.digest bytes);
  }

let wire_size t =
  let w = Avm_util.Wire.writer () in
  write_body w t;
  Avm_util.Wire.length w

let describe = function
  | Send _ -> "SEND"
  | Recv _ -> "RECV"
  | Ack _ -> "ACK"
  | Exec _ -> "EXEC"
  | Snapshot_ref _ -> "SNAP"
  | Note _ -> "NOTE"

let pp fmt t =
  let detail =
    match t.content with
    | Send { dest; nonce; payload } ->
      Printf.sprintf "to=%s n=%d %dB" dest nonce (String.length payload)
    | Recv { src; nonce; payload; _ } ->
      Printf.sprintf "from=%s n=%d %dB" src nonce (String.length payload)
    | Ack { src; acked_seq; _ } -> Printf.sprintf "from=%s acks=%d" src acked_seq
    | Exec ev -> Format.asprintf "%a" Avm_machine.Event.pp ev
    | Snapshot_ref { snapshot_seq; _ } -> Printf.sprintf "snapshot=%d" snapshot_seq
    | Note s -> s
  in
  Format.fprintf fmt "@[<h>#%d %s %s h=%s@]" t.seq (describe t.content) detail
    (Avm_util.Hex.short t.hash)
