(* Sealed log segments: the unit of storage and of audit transfer.

   A segment is an immutable run of consecutive entries together with an
   index record describing it (sequence range, the hash chained just
   before it, the hash it ends on, its uncompressed wire size, and the
   snapshot boundary it was sealed at, if any). The index record alone
   answers the auditor's planning queries — which segments cover a
   seq range, where the snapshot boundaries are, how many bytes a
   transfer costs — without inflating any entry data.

   Two backends:
   - [Memory]    entries kept as-is. Preserves stored hashes verbatim,
                 so even a tampered (chain-inconsistent) run survives a
                 round trip. Used for hot data and untrusted loads.
   - [Compressed] entries serialized body-only (seq, tag, content) and
                 LZSS+Huffman-packed via [Avm_compress.Codec]. Hashes
                 are recomputed from [info.prev_hash] on inflation, so
                 this backend is only sealed over honestly-chained runs
                 (which is what an AVMM produces; [Log] flattens to
                 memory before any tamper operation). *)

type backend = Memory | Compressed

let backend_name = function Memory -> "memory" | Compressed -> "compressed"

type info = {
  first_seq : int;
  last_seq : int;
  prev_hash : string; (* chain hash immediately before [first_seq] *)
  head_hash : string; (* hash of entry [last_seq] *)
  byte_size : int; (* uncompressed wire size of the entries *)
  snapshot_boundary : (int * int * int) option;
      (* (entry_seq, snapshot_seq, at_icount) when sealed at a Snapshot_ref *)
}

type repr = Entries of Entry.t array | Blob of string
type seg = { info : info; repr : repr }

(* Body-only wire form shared with [Log.encode_segment]: hashes are
   redundant given the chain base, so they never hit storage. *)
let encode_entries entries =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.list w Entry.write_body entries;
  Avm_util.Wire.contents w

let decode_entries ~prev s =
  let r = Avm_util.Wire.reader s in
  let n = Avm_util.Wire.read_varint r in
  let rec go prev i acc =
    if i = n then List.rev acc
    else begin
      let e = Entry.read_body ~prev r in
      go e.Entry.hash (i + 1) (e :: acc)
    end
  in
  let entries = go prev 0 [] in
  Avm_util.Wire.expect_end r;
  entries

let seal backend ~info entries =
  match backend with
  | Memory -> { info; repr = Entries entries }
  | Compressed ->
    let blob = Avm_compress.Codec.compress (encode_entries (Array.to_list entries)) in
    Avm_obs.Metrics.incr ~by:(String.length blob) "log.bytes_compressed";
    { info; repr = Blob blob }

let inflate seg =
  match seg.repr with
  | Entries a -> a
  | Blob blob ->
    Array.of_list (decode_entries ~prev:seg.info.prev_hash (Avm_compress.Codec.decompress blob))

(* Bytes this segment occupies at rest. *)
let stored_bytes seg =
  match seg.repr with
  | Entries _ -> seg.info.byte_size
  | Blob blob -> String.length blob

(* Bytes an auditor downloads for this segment: the resident blob if it
   is already compressed, a transient compression otherwise. *)
let transfer_bytes seg =
  match seg.repr with
  | Blob blob -> String.length blob
  | Entries a -> String.length (Avm_compress.Codec.compress (encode_entries (Array.to_list a)))
