(** Sealed log segments: the unit of storage and of audit transfer.

    A sealed segment is an immutable run of consecutive entries plus an
    index record ({!info}) that answers the auditor's planning queries —
    coverage, chain endpoints, transfer cost, snapshot boundaries —
    without touching entry data. Two backends: [Memory] keeps the
    entries verbatim (stored hashes preserved, so tampered chains
    survive a round trip); [Compressed] stores the body-only wire form
    packed with {!Avm_compress.Codec} and recomputes hashes from
    [info.prev_hash] on inflation. *)

type backend = Memory | Compressed

val backend_name : backend -> string

type info = {
  first_seq : int;
  last_seq : int;
  prev_hash : string;  (** chain hash immediately before [first_seq] *)
  head_hash : string;  (** hash of entry [last_seq] *)
  byte_size : int;  (** uncompressed wire size of the entries *)
  snapshot_boundary : (int * int * int) option;
      (** [(entry_seq, snapshot_seq, at_icount)] when the segment was
          sealed at a [Snapshot_ref] entry *)
}

type repr = Entries of Entry.t array | Blob of string
type seg = { info : info; repr : repr }

val seal : backend -> info:info -> Entry.t array -> seg
(** Seal a run of entries. With [Compressed], the run must be honestly
    chained from [info.prev_hash]: hashes are not stored and are
    recomputed on {!inflate}. *)

val inflate : seg -> Entry.t array
(** Materialize the entries (decompressing if needed).
    @raise Avm_compress.Codec.Corrupt or [Avm_util.Wire.Malformed] on a
    damaged blob. *)

val stored_bytes : seg -> int
(** Bytes the segment occupies at rest. *)

val transfer_bytes : seg -> int
(** Compressed bytes an auditor downloads for this segment (the
    resident blob, or a transient compression of a memory segment). *)

val encode_entries : Entry.t list -> string
(** Body-only wire form shared with [Log.encode_segment]. *)

val decode_entries : prev:string -> string -> Entry.t list
