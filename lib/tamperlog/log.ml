let genesis_hash = String.make 32 '\000'

(* The log is an active tail of recent entries plus a chronological run
   of sealed, immutable segments (see [Segment_store]). Appends go to
   the tail; the tail is sealed into a segment when it reaches
   [seal_every] entries or when a [Snapshot_ref] is appended (the
   paper's auditors fetch snapshot-bounded segments, so snapshots are
   natural seal points). With the [Compressed] backend, sealed segments
   live compressed at rest and are only inflated when a reader streams
   them; a per-domain one-slot cache keeps random access over a hot
   segment cheap, and lets parallel audit jobs inflate different
   segments concurrently without sharing mutable state.

   Tamper operations (the test adversary) first flatten the log back
   into a plain in-memory tail: a broken hash chain cannot survive the
   body-only sealed encoding, and segments are immutable by design. *)

type t = {
  mutable id : int; (* per-domain cache key; bumped when sealed data changes *)
  mutable sealed : Segment_store.seg array; (* chronological; [nsealed] live *)
  mutable nsealed : int;
  mutable tail : Entry.t array;
  mutable tail_count : int;
  mutable tail_bytes : int;
  mutable bytes : int; (* total uncompressed wire bytes *)
  mutable snap_index : (int * int * int) list;
      (* (entry_seq, snapshot_seq, at_icount), newest first *)
  backend : Segment_store.backend;
  seal_every : int;
  mutable sealable : bool; (* cleared by tamper_replace: broken chains must stay verbatim *)
}

let next_id = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add next_id 1

let dummy_entry = { Entry.seq = 0; content = Entry.Note ""; hash = "" }
let no_seg : Segment_store.seg array = [||]

let create ?(backend = Segment_store.Memory) ?(seal_every = 1024) () =
  if seal_every < 1 then invalid_arg "Log.create: seal_every < 1";
  {
    id = fresh_id ();
    sealed = no_seg;
    nsealed = 0;
    tail = Array.make 64 dummy_entry;
    tail_count = 0;
    tail_bytes = 0;
    bytes = 0;
    snap_index = [];
    backend;
    seal_every;
    sealable = true;
  }

let sealed_upto t =
  if t.nsealed = 0 then 0 else t.sealed.(t.nsealed - 1).Segment_store.info.last_seq

let length t = sealed_upto t + t.tail_count
let byte_size t = t.bytes
let backend t = t.backend

let head_hash t =
  if t.tail_count > 0 then t.tail.(t.tail_count - 1).Entry.hash
  else if t.nsealed > 0 then t.sealed.(t.nsealed - 1).Segment_store.info.head_hash
  else genesis_hash

let push_sealed t seg =
  if t.nsealed = Array.length t.sealed then begin
    let bigger = Array.make (max 8 (2 * t.nsealed)) seg in
    Array.blit t.sealed 0 bigger 0 t.nsealed;
    t.sealed <- bigger
  end;
  t.sealed.(t.nsealed) <- seg;
  t.nsealed <- t.nsealed + 1

let seal_active t =
  if t.tail_count > 0 && t.sealable then begin
    let last = t.tail.(t.tail_count - 1) in
    let prev_hash =
      if t.nsealed = 0 then genesis_hash
      else t.sealed.(t.nsealed - 1).Segment_store.info.head_hash
    in
    let snapshot_boundary =
      match last.Entry.content with
      | Entry.Snapshot_ref { snapshot_seq; at_icount; _ } ->
        Some (last.Entry.seq, snapshot_seq, at_icount)
      | _ -> None
    in
    let info =
      {
        Segment_store.first_seq = sealed_upto t + 1;
        last_seq = last.Entry.seq;
        prev_hash;
        head_hash = last.Entry.hash;
        byte_size = t.tail_bytes;
        snapshot_boundary;
      }
    in
    push_sealed t (Segment_store.seal t.backend ~info (Array.sub t.tail 0 t.tail_count));
    Avm_obs.Metrics.incr "log.segments_sealed";
    Avm_obs.Metrics.incr ~by:t.tail_bytes "log.bytes_sealed";
    t.tail_count <- 0;
    t.tail_bytes <- 0
  end

let ensure_tail_capacity t =
  if t.tail_count = Array.length t.tail then begin
    let bigger = Array.make (2 * Array.length t.tail) dummy_entry in
    Array.blit t.tail 0 bigger 0 t.tail_count;
    t.tail <- bigger
  end

(* Install an already-sealed entry (its stored hash is kept verbatim). *)
let push_raw t (e : Entry.t) =
  Avm_obs.Metrics.incr "log.entries_appended";
  ensure_tail_capacity t;
  t.tail.(t.tail_count) <- e;
  t.tail_count <- t.tail_count + 1;
  let size = Entry.wire_size e in
  t.tail_bytes <- t.tail_bytes + size;
  t.bytes <- t.bytes + size;
  match e.Entry.content with
  | Entry.Snapshot_ref { snapshot_seq; at_icount; _ } ->
    t.snap_index <- (e.Entry.seq, snapshot_seq, at_icount) :: t.snap_index;
    seal_active t
  | _ -> if t.tail_count >= t.seal_every then seal_active t

let append t content =
  let e = Entry.seal ~prev:(head_hash t) ~seq:(length t + 1) content in
  push_raw t e;
  e

(* Load an externally produced, already-hashed run (e.g. a recording)
   into a segmented store. Always sealed with the Memory backend:
   stored hashes are preserved verbatim, so if the producer tampered
   with the chain the inconsistency survives for the audit to find. *)
let of_entries ?(seal_every = 1024) entries =
  let t = create ~backend:Segment_store.Memory ~seal_every () in
  List.iter
    (fun (e : Entry.t) ->
      if e.Entry.seq <> length t + 1 then
        invalid_arg "Log.of_entries: sequence not contiguous from 1";
      push_raw t e)
    entries;
  t

(* --- segment index ------------------------------------------------------ *)

let segments t = Array.to_list (Array.map (fun s -> s.Segment_store.info) (Array.sub t.sealed 0 t.nsealed))
let snapshot_index t = List.rev t.snap_index

(* Binary search for the sealed segment holding [seq]. *)
let find_seg t seq =
  let lo = ref 0 and hi = ref (t.nsealed - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.sealed.(mid).Segment_store.info.last_seq < seq then lo := mid + 1 else hi := mid
  done;
  !lo

(* One inflated segment per domain: concurrent audit jobs each keep
   their own hot segment, with no cross-domain mutable state. Keyed by
   the log's [id], which is bumped whenever sealed data changes, so a
   slot can never serve stale entries. *)
let inflate_slot : (int * int * Entry.t array) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let inflate t i =
  let slot = Domain.DLS.get inflate_slot in
  match !slot with
  | Some (id, j, a) when id = t.id && j = i ->
    Avm_obs.Metrics.incr "log.inflate_cache_hits";
    a
  | _ ->
    Avm_obs.Metrics.incr "log.inflate_cache_misses";
    let a = Segment_store.inflate t.sealed.(i) in
    slot := Some (t.id, i, a);
    a

let entry t seq =
  if seq < 1 || seq > length t then invalid_arg "Log.entry: out of range";
  let su = sealed_upto t in
  if seq > su then t.tail.(seq - su - 1)
  else begin
    let i = find_seg t seq in
    (inflate t i).(seq - t.sealed.(i).Segment_store.info.first_seq)
  end

let prev_hash t seq =
  if seq <= 1 then genesis_hash
  else begin
    (* Segment boundaries answer from the index, without inflating. *)
    let target = seq - 1 in
    let su = sealed_upto t in
    if target > su then t.tail.(target - su - 1).Entry.hash
    else begin
      let i = find_seg t target in
      let info = t.sealed.(i).Segment_store.info in
      if target = info.last_seq then info.head_hash
      else (inflate t i).(target - info.first_seq).Entry.hash
    end
  end

(* --- streaming readers -------------------------------------------------- *)

let slice a ~first_seq ~len ~from ~upto =
  let lo = max from first_seq - first_seq in
  let hi = min upto (first_seq + len - 1) - first_seq in
  let rec go k acc = if k < lo then acc else go (k - 1) (a.(k) :: acc) in
  go hi []

(* One entry list per overlapping segment (tail last), produced lazily:
   a compressed segment is only inflated when the consumer reaches it. *)
let chunk_seq t ~from ~upto =
  let from = max 1 from and upto = min (length t) upto in
  if upto < from then Seq.empty
  else begin
    let su = sealed_upto t in
    let thunks = ref [] in
    if upto > su then begin
      let tail = t.tail and len = t.tail_count in
      thunks := (fun () -> slice tail ~first_seq:(su + 1) ~len ~from ~upto) :: !thunks
    end;
    for i = t.nsealed - 1 downto 0 do
      let info = t.sealed.(i).Segment_store.info in
      if info.last_seq >= from && info.first_seq <= upto then
        thunks :=
          (fun () ->
            slice (inflate t i) ~first_seq:info.first_seq
              ~len:(info.last_seq - info.first_seq + 1)
              ~from ~upto)
          :: !thunks
    done;
    Seq.map (fun f -> f ()) (List.to_seq !thunks)
  end

let fold_range t ~from ~upto ~init f =
  Seq.fold_left (List.fold_left f) init (chunk_seq t ~from ~upto)

let iter_range t ~from ~upto f = Seq.iter (List.iter f) (chunk_seq t ~from ~upto)
let iter t f = iter_range t ~from:1 ~upto:(length t) f

let segment t ~from ~upto =
  List.rev (fold_range t ~from ~upto ~init:[] (fun acc e -> e :: acc))

(* The same partition as [chunk_seq], but with the index metadata a
   parallel auditor needs to check each chunk independently: the chain
   hash just before the chunk and its seq range, plus a load thunk
   that is safe to force from a worker domain (inflation goes through
   the per-domain cache; the log must be quiescent meanwhile). *)

type chunk_spec = {
  spec_from : int;
  spec_upto : int;
  spec_prev_hash : string;
  spec_derived : bool;
  spec_load : unit -> Entry.t list;
}

let chunk_specs t ~from ~upto =
  let from = max 1 from and upto = min (length t) upto in
  if upto < from then []
  else begin
    let su = sealed_upto t in
    let specs = ref [] in
    if upto > su then begin
      (* materialized eagerly: the tail array may grow under appends *)
      let entries = slice t.tail ~first_seq:(su + 1) ~len:t.tail_count ~from ~upto in
      let c_from = max from (su + 1) in
      specs :=
        {
          spec_from = c_from;
          spec_upto = upto;
          spec_prev_hash = prev_hash t c_from;
          spec_derived = false;
          spec_load = (fun () -> entries);
        }
        :: !specs
    end;
    for i = t.nsealed - 1 downto 0 do
      let info = t.sealed.(i).Segment_store.info in
      if info.last_seq >= from && info.first_seq <= upto then begin
        let c_from = max from info.first_seq in
        let ph = if c_from = info.first_seq then info.prev_hash else prev_hash t c_from in
        (* A compressed segment's entry hashes are recomputed from
           [info.prev_hash] at inflation ([Entry.read_body]), so the
           chain inside the chunk — including the link from
           [spec_prev_hash], itself a hash from the same inflation —
           holds by construction; a Memory segment preserves stored
           hashes verbatim (that is where untrusted loads and tampered
           runs live) and must be checked in full. *)
        let derived =
          match t.sealed.(i).Segment_store.repr with
          | Segment_store.Blob _ -> true
          | Segment_store.Entries _ -> false
        in
        specs :=
          {
            spec_from = c_from;
            spec_upto = min upto info.last_seq;
            spec_prev_hash = ph;
            spec_derived = derived;
            spec_load =
              (fun () ->
                slice (inflate t i) ~first_seq:info.first_seq
                  ~len:(info.last_seq - info.first_seq + 1)
                  ~from ~upto);
          }
          :: !specs
      end
    done;
    !specs
  end

(* --- wire form ---------------------------------------------------------- *)

let encode_segment entries = Segment_store.encode_entries entries
let decode_segment ~prev s = Segment_store.decode_entries ~prev s

(* Body-only encoding of a range, streamed straight off the segments. *)
let encode_range t ~from ~upto =
  let from = max 1 from and upto = min (length t) upto in
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.varint w (max 0 (upto - from + 1));
  iter_range t ~from ~upto (fun e -> Entry.write_body w e);
  Avm_util.Wire.contents w

let verify_segment ~prev entries =
  let rec go prev expected_seq = function
    | [] -> Ok ()
    | (e : Entry.t) :: rest ->
      if expected_seq >= 0 && e.seq <> expected_seq then
        Error (Printf.sprintf "sequence gap: expected %d, found %d" expected_seq e.seq)
      else if not (Entry.chain_ok ~prev e) then
        Error (Printf.sprintf "hash chain broken at entry %d" e.seq)
      else go e.hash (e.seq + 1) rest
  in
  match entries with
  | [] -> Ok ()
  | first :: _ -> go prev first.Entry.seq entries

(* --- parallel at-rest conversion ---------------------------------------- *)

(* The codec work dominates conversion, so both directions fan the
   per-segment encode/decode out over a pool when one is given; the
   [t.sealed] writes happen on the calling domain only, after every
   job has settled. Entry identity is preserved, so cache slots keyed
   by [t.id] stay valid and the id is not bumped. *)

let map_jobs pool f xs =
  match pool with
  | Some p when Avm_util.Domain_pool.jobs p > 1 -> Avm_util.Domain_pool.map_list p f xs
  | _ -> List.map f xs

(* Compressing an inconsistent segment would silently repair tamper
   evidence (the Compressed form recomputes hashes from [prev_hash]),
   so a segment is converted only if its stored chain verifies end to
   end, including the index endpoints. *)
let seg_compressible (seg : Segment_store.seg) entries =
  let info = seg.Segment_store.info in
  match verify_segment ~prev:info.prev_hash entries with
  | Error _ -> false
  | Ok () -> (
    match (entries, List.rev entries) with
    | first :: _, last :: _ ->
      first.Entry.seq = info.first_seq
      && last.Entry.seq = info.last_seq
      && String.equal last.Entry.hash info.head_hash
    | _ -> false)

let compress_sealed ?pool t =
  let pending = ref [] in
  for i = t.nsealed - 1 downto 0 do
    match t.sealed.(i).Segment_store.repr with
    | Segment_store.Entries _ -> pending := i :: !pending
    | Segment_store.Blob _ -> ()
  done;
  let converted =
    map_jobs pool
      (fun i ->
        let seg = t.sealed.(i) in
        let entries = Array.to_list (Segment_store.inflate seg) in
        if not (seg_compressible seg entries) then None
        else
          Some
            ( i,
              Segment_store.seal Segment_store.Compressed ~info:seg.Segment_store.info
                (Segment_store.inflate seg) ))
      !pending
  in
  List.fold_left
    (fun n -> function
      | None -> n
      | Some (i, seg) ->
        t.sealed.(i) <- seg;
        n + 1)
    0 converted

let inflate_sealed ?pool t =
  let pending = ref [] in
  for i = t.nsealed - 1 downto 0 do
    match t.sealed.(i).Segment_store.repr with
    | Segment_store.Blob _ -> pending := i :: !pending
    | Segment_store.Entries _ -> ()
  done;
  let converted =
    map_jobs pool
      (fun i ->
        let seg = t.sealed.(i) in
        (i, { seg with Segment_store.repr = Segment_store.Entries (Segment_store.inflate seg) }))
      !pending
  in
  List.iter (fun (i, seg) -> t.sealed.(i) <- seg) converted;
  List.length converted

(* --- storage accounting ------------------------------------------------- *)

let stored_bytes t =
  let acc = ref t.tail_bytes in
  for i = 0 to t.nsealed - 1 do
    acc := !acc + Segment_store.stored_bytes t.sealed.(i)
  done;
  !acc

let compression_ratio t =
  let stored = stored_bytes t in
  if stored = 0 then 1.0 else float_of_int t.bytes /. float_of_int stored

(* Compressed bytes an auditor downloads to stream [from..upto]:
   resident blobs are shipped whole (segment granularity); memory
   segments and the tail are compressed transiently. *)
let transfer_bytes t ~from ~upto =
  let from = max 1 from and upto = min (length t) upto in
  if upto < from then 0
  else begin
    let su = sealed_upto t in
    let acc = ref 0 in
    for i = 0 to t.nsealed - 1 do
      let info = t.sealed.(i).Segment_store.info in
      if info.last_seq >= from && info.first_seq <= upto then
        acc := !acc + Segment_store.transfer_bytes t.sealed.(i)
    done;
    if upto > su then begin
      let entries = slice t.tail ~first_seq:(su + 1) ~len:t.tail_count ~from ~upto in
      acc := !acc + String.length (Avm_compress.Codec.compress (encode_segment entries))
    end;
    !acc
  end

(* --- tamper operations (the test adversary) ----------------------------- *)

let rebuild_snap_index t =
  let idx = ref [] in
  for i = 0 to t.tail_count - 1 do
    match t.tail.(i).Entry.content with
    | Entry.Snapshot_ref { snapshot_seq; at_icount; _ } ->
      idx := (t.tail.(i).Entry.seq, snapshot_seq, at_icount) :: !idx
    | _ -> ()
  done;
  t.snap_index <- !idx

let retally t =
  let bytes = ref 0 in
  for i = 0 to t.tail_count - 1 do
    bytes := !bytes + Entry.wire_size t.tail.(i)
  done;
  t.bytes <- !bytes;
  t.tail_bytes <- !bytes;
  rebuild_snap_index t

(* Materialize everything back into the tail. Mutation can then use
   plain array surgery, and hash-chain breakage stays representable. *)
let flatten t =
  if t.nsealed > 0 then begin
    let n = length t in
    let all = Array.make (max 64 n) dummy_entry in
    let k = ref 0 in
    iter t (fun e ->
        all.(!k) <- e;
        incr k);
    t.sealed <- no_seg;
    t.nsealed <- 0;
    (* fresh cache key: later re-seals must not hit a stale slot *)
    t.id <- fresh_id ();
    t.tail <- all;
    t.tail_count <- n;
    t.tail_bytes <- t.bytes
  end

let tamper_replace t seq content =
  if seq < 1 || seq > length t then invalid_arg "Log.tamper_replace: out of range";
  flatten t;
  let e = t.tail.(seq - 1) in
  t.tail.(seq - 1) <- { e with Entry.content };
  t.sealable <- false;
  retally t

let tamper_truncate t seq =
  if seq < 0 || seq > length t then invalid_arg "Log.tamper_truncate: out of range";
  flatten t;
  t.tail_count <- seq;
  retally t

let tamper_reseal t seq content =
  if seq < 1 || seq > length t then invalid_arg "Log.tamper_reseal: out of range";
  flatten t;
  let prev = ref (if seq <= 1 then genesis_hash else t.tail.(seq - 2).Entry.hash) in
  t.tail.(seq - 1) <- Entry.seal ~prev:!prev ~seq content;
  prev := t.tail.(seq - 1).Entry.hash;
  for i = seq to t.tail_count - 1 do
    let e = t.tail.(i) in
    t.tail.(i) <- Entry.seal ~prev:!prev ~seq:e.Entry.seq e.Entry.content;
    prev := t.tail.(i).Entry.hash
  done;
  retally t

let fork t =
  {
    t with
    id = fresh_id ();
    sealed = Array.copy t.sealed;
    tail = Array.copy t.tail;
  }
