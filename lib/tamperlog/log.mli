(** The append-only tamper-evident log (paper §4.3), stored as an
    active tail plus sealed segments.

    A hash chain of {!Entry.t}. Appending seals each entry against the
    current head; {!verify_segment} recomputes the chain and is the
    auditor's first line of defence against forged, reordered, omitted
    or modified entries.

    Storage is segment-oriented, matching the auditor workflow of paper
    §3.3–§3.5: the tail of recent entries is sealed into an immutable
    {!Segment_store.seg} when it reaches [seal_every] entries or when a
    [Snapshot_ref] is appended, so segments are bounded by snapshots
    exactly where spot-check auditors cut the log. With the
    [Compressed] backend, sealed segments live compressed at rest and
    are only inflated while a reader streams across them. *)

type t

val create : ?backend:Segment_store.backend -> ?seal_every:int -> unit -> t
(** An empty log; [h_0] is 32 zero bytes. [backend] (default [Memory])
    selects how sealed segments are stored; [seal_every] (default 1024)
    caps the tail length before a size-triggered seal. *)

val of_entries : ?seal_every:int -> Entry.t list -> t
(** Load an externally produced, already-hashed run (e.g. a recording)
    into a segmented store. Sequence numbers must be contiguous from 1.
    Always uses the [Memory] backend: stored hashes are preserved
    verbatim, so a tampered chain stays tampered for the audit to
    find. *)

val genesis_hash : string
(** [h_0]. *)

val append : t -> Entry.content -> Entry.t
(** [append log c] seals and stores the next entry. *)

val seal_active : t -> unit
(** Seal the current tail into a segment now (no-op on an empty tail). *)

val length : t -> int
(** Number of entries; also the head sequence number (seqs start
    at 1). *)

val head_hash : t -> string
(** [h_i] of the newest entry, or {!genesis_hash} when empty. *)

val entry : t -> int -> Entry.t
(** [entry log seq] fetches by sequence number, inflating (and caching)
    the covering segment if it is compressed.
    @raise Invalid_argument if out of range. *)

val prev_hash : t -> int -> string
(** [prev_hash log seq] is [h_{seq-1}] ({!genesis_hash} for [seq = 1]).
    Segment boundaries are answered from the index without inflating. *)

val segment : t -> from:int -> upto:int -> Entry.t list
(** Entries with [from <= seq <= upto] (inclusive; both clamped to
    valid range), materialized as a list. Prefer the streaming readers
    below for audit-sized ranges. *)

(** {1 Streaming readers}

    The audit pipeline consumes the log one sealed segment at a time:
    compressed segments are inflated only while the consumer is inside
    them, never all at once. *)

val chunk_seq : t -> from:int -> upto:int -> Entry.t list Seq.t
(** One entry list per overlapping sealed segment (tail last), produced
    lazily in log order. *)

val fold_range : t -> from:int -> upto:int -> init:'a -> ('a -> Entry.t -> 'a) -> 'a
val iter_range : t -> from:int -> upto:int -> (Entry.t -> unit) -> unit
val iter : t -> (Entry.t -> unit) -> unit

type chunk_spec = {
  spec_from : int;  (** first seq of the chunk *)
  spec_upto : int;  (** last seq (inclusive) *)
  spec_prev_hash : string;  (** stored chain hash just before [spec_from] *)
  spec_derived : bool;
      (** the chunk loads from a compressed segment, whose entry hashes
          are {e recomputed} from the segment's chain base at inflation
          — the chain from [spec_prev_hash] through the chunk holds by
          construction, so an auditor may soundly reduce its per-entry
          hash check to the boundary link plus seq contiguity. [false]
          for memory segments and the tail, whose stored hashes are
          preserved verbatim (untrusted loads, tampered runs). *)
  spec_load : unit -> Entry.t list;  (** materialize the chunk's entries *)
}

val chunk_specs : t -> from:int -> upto:int -> chunk_spec list
(** The {!chunk_seq} partition (one chunk per overlapping sealed
    segment, tail last) with the index metadata a {e parallel} auditor
    needs to verify each chunk independently. The load thunks are safe
    to force concurrently from worker domains — inflation goes through
    a per-domain cache — provided the log is not mutated meanwhile. *)

(** {1 Index and accounting} *)

val backend : t -> Segment_store.backend
val segments : t -> Segment_store.info list
(** Index records of the sealed segments, oldest first. *)

val snapshot_index : t -> (int * int * int) list
(** [(entry_seq, snapshot_seq, at_icount)] of every [Snapshot_ref]
    entry, oldest first — maintained on append, no scan needed. *)

val byte_size : t -> int
(** Total uncompressed serialized size of all entries — the "log size"
    of Figures 3/4. *)

val stored_bytes : t -> int
(** Bytes the log occupies at rest (compressed segments count their
    blob size). *)

val compression_ratio : t -> float
(** [byte_size / stored_bytes]; 1.0 for a fully in-memory log. *)

val transfer_bytes : t -> from:int -> upto:int -> int
(** Compressed bytes an auditor downloads to stream [from..upto]:
    resident blobs ship whole (segment granularity), memory segments
    and the tail are compressed transiently. *)

val compress_sealed : ?pool:Avm_util.Domain_pool.t -> t -> int
(** Re-seal resident [Memory] segments in the [Compressed] form,
    fanning the per-segment codec work out over [pool] when given.
    Only segments whose {e stored} chain verifies end to end are
    converted — the compressed encoding recomputes hashes on
    inflation, so converting an inconsistent segment would silently
    repair tamper evidence; such segments stay verbatim. Returns the
    number of segments converted. Not safe to run concurrently with
    readers of the same log. *)

val inflate_sealed : ?pool:Avm_util.Domain_pool.t -> t -> int
(** The reverse migration: decompress every [Compressed] segment back
    to resident entries (in parallel when [pool] is given), e.g. before
    a burst of random access. Returns the number converted. Not safe to
    run concurrently with readers of the same log. *)

(** {1 Wire form} *)

val encode_segment : Entry.t list -> string
(** Wire format for shipping a segment to an auditor: sequence, type
    and content per entry — no hashes (see {!Entry.write_body}). *)

val encode_range : t -> from:int -> upto:int -> string
(** {!encode_segment} of a range, streamed straight off the segments
    without materializing a list. *)

val decode_segment : prev:string -> string -> Entry.t list
(** [decode_segment ~prev blob] rebuilds the entries, recomputing the
    hash chain from [prev] (the hash preceding the segment;
    {!genesis_hash} for a full log). A transmitted segment's integrity
    is established by matching the rebuilt chain against collected
    authenticators, not by trusting shipped hashes.
    @raise Avm_util.Wire.Malformed on garbage. *)

val verify_segment : prev:string -> Entry.t list -> (unit, string) result
(** [verify_segment ~prev entries] recomputes the hash chain starting
    from [prev] (the hash of the entry preceding the segment) and
    checks sequence numbers are consecutive. Returns a human-readable
    reason on failure. *)

(** {1 Tampering (test / adversary API)}

    A faulty node does not call [append] honestly; these helpers let
    tests and the cheat catalog build bad logs. They first flatten the
    log back into a plain in-memory tail (segments are immutable, and a
    broken chain cannot survive the body-only sealed encoding). *)

val tamper_replace : t -> int -> Entry.content -> unit
(** Overwrite entry [seq] in place {e without} resealing later
    entries — exactly what a naive cheater would do. Disables further
    sealing: the inconsistent chain must stay verbatim. *)

val tamper_truncate : t -> int -> unit
(** Drop all entries after [seq]. *)

val tamper_reseal : t -> int -> Entry.content -> unit
(** Overwrite entry [seq] and recompute every later hash, producing an
    internally consistent — but different — chain. The hash chain
    verifies; only previously issued authenticators expose the fork.
    This is the stronger attacker the paper's authenticators exist
    for. *)

val fork : t -> t
(** An independent copy sharing the prefix — for fork attacks. *)
