(** Authenticators: signed log commitments (paper §4.3).

    For entry [e_i], the authenticator is
    [a_i = (s_i, h_i, sigma(s_i || h_i))], extended with [h_{i-1}] and
    [H(c_i)] so a message recipient can recompute
    [h_i = H(h_{i-1} || s_i || SEND || H(m))] and confirm the entry is
    really [SEND(m)] — this is what makes the log non-repudiable and
    fork-evident. *)

type t = {
  node : string;  (** name of the machine that issued it *)
  seq : int;  (** [s_i] *)
  hash : string;  (** [h_i] *)
  prev_hash : string;  (** [h_{i-1}] *)
  tag : int;  (** [t_i] *)
  content_digest : string;  (** [H(c_i)] *)
  signature : string;  (** [sigma(node || s_i || h_i)] *)
}

val make : Avm_crypto.Identity.t -> entry:Entry.t -> prev_hash:string -> t
(** Issue an authenticator for a freshly appended entry. *)

val signed_payload : node:string -> seq:int -> hash:string -> string
(** The exact bytes covered by the signature. *)

val verify : Avm_crypto.Identity.certificate -> t -> bool
(** Checks the signature and that [hash] is consistent with
    [(prev_hash, seq, tag, content_digest)]. *)

val verify_batch : (Avm_crypto.Identity.certificate * t) array -> bool array
(** Elementwise {!verify} with the signature checks routed through
    {!Avm_crypto.Rsa.verify_batch} — the auditor verifies a chunk's
    collected authenticators in one amortized pass. *)

val matches_content : t -> Entry.content -> bool
(** [matches_content a c]: does [a] commit to an entry with exactly
    content [c]? (Checks type tag, content digest and hash-chain
    consistency.) *)

val matches_send : t -> payload:string -> dest:string -> nonce:int -> bool
(** [matches_send a ~payload ~dest ~nonce]: is [a] an authenticator
    for exactly [SEND {dest; nonce; payload}]? The recipient calls
    this on every message it accepts. *)

val matches_entry : t -> Entry.t -> bool
(** Does [a] commit to exactly this entry (same seq, same hash)? The
    auditor calls this for each collected authenticator against the
    downloaded log segment; any mismatch is evidence of tampering or a
    forked log. *)

val conflicts : t -> t -> bool
(** [conflicts a b]: same node, same [seq], different [hash] — the
    shape of an equivocation. Two such authenticators that {e both}
    pass {!verify} under the node's certificate are a transferable
    proof that the node maintains forked logs (PeerReview's
    fork-evidence; see {!Avm_core.Evidence}). This predicate alone
    proves nothing — callers must verify both signatures first. *)

val write : Avm_util.Wire.writer -> t -> unit
val read : Avm_util.Wire.reader -> t
val encode : t -> string
val decode : string -> t
val wire_size : t -> int
val pp : Format.formatter -> t -> unit
