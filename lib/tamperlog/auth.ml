type t = {
  node : string;
  seq : int;
  hash : string;
  prev_hash : string;
  tag : int;
  content_digest : string;
  signature : string;
}

let signed_payload ~node ~seq ~hash =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w "avm-authenticator";
  Avm_util.Wire.bytes w node;
  Avm_util.Wire.varint w seq;
  Avm_util.Wire.bytes w hash;
  Avm_util.Wire.contents w

let make identity ~entry ~prev_hash =
  let { Entry.seq; content; hash } = entry in
  let node = Avm_crypto.Identity.name identity in
  {
    node;
    seq;
    hash;
    prev_hash;
    tag = Entry.type_tag content;
    content_digest = Entry.content_digest content;
    signature = Avm_crypto.Identity.sign identity (signed_payload ~node ~seq ~hash);
  }

let hash_consistent a =
  String.equal a.hash
    (Entry.chain_hash_raw ~prev:a.prev_hash ~seq:a.seq ~tag:a.tag
       ~content_digest:a.content_digest)

let verify cert a =
  String.equal (Avm_crypto.Identity.cert_name cert) a.node
  && hash_consistent a
  && Avm_crypto.Identity.verify cert
       ~msg:(signed_payload ~node:a.node ~seq:a.seq ~hash:a.hash)
       ~signature:a.signature

let verify_batch items =
  (* The cheap structural checks run up front; only authenticators
     that pass them contribute a signature to the RSA batch. *)
  let n = Array.length items in
  let results = Array.make n false in
  let sigs = ref [] in
  Array.iteri
    (fun i (cert, a) ->
      if String.equal (Avm_crypto.Identity.cert_name cert) a.node && hash_consistent a then
        sigs :=
          (i, (cert, signed_payload ~node:a.node ~seq:a.seq ~hash:a.hash, a.signature))
          :: !sigs)
    items;
  let pending = Array.of_list (List.rev !sigs) in
  let verdicts = Avm_crypto.Identity.verify_batch (Array.map snd pending) in
  Array.iteri (fun j (i, _) -> results.(i) <- verdicts.(j)) pending;
  results

let matches_content a content =
  a.tag = Entry.type_tag content
  && String.equal a.content_digest (Entry.content_digest content)
  && hash_consistent a

let matches_send a ~payload ~dest ~nonce =
  matches_content a (Entry.Send { dest; nonce; payload })

let matches_entry a (e : Entry.t) = a.seq = e.seq && String.equal a.hash e.hash

let conflicts a b =
  String.equal a.node b.node && a.seq = b.seq && not (String.equal a.hash b.hash)

let write w a =
  let open Avm_util in
  Wire.bytes w a.node;
  Wire.varint w a.seq;
  Wire.bytes w a.hash;
  Wire.bytes w a.prev_hash;
  Wire.u8 w a.tag;
  Wire.bytes w a.content_digest;
  Wire.bytes w a.signature

let read r =
  let open Avm_util in
  let node = Wire.read_bytes r in
  let seq = Wire.read_varint r in
  let hash = Wire.read_bytes r in
  let prev_hash = Wire.read_bytes r in
  let tag = Wire.read_u8 r in
  let content_digest = Wire.read_bytes r in
  let signature = Wire.read_bytes r in
  { node; seq; hash; prev_hash; tag; content_digest; signature }

let encode a =
  let w = Avm_util.Wire.writer () in
  write w a;
  Avm_util.Wire.contents w

let decode s =
  let r = Avm_util.Wire.reader s in
  let a = read r in
  Avm_util.Wire.expect_end r;
  a

let wire_size a = String.length (encode a)

let pp fmt a =
  Format.fprintf fmt "@[<h>auth{%s #%d h=%s}@]" a.node a.seq (Avm_util.Hex.short a.hash)
