(** Tamper-evident log entries (paper §4.3).

    Each entry is [e_i = (s_i, t_i, c_i, h_i)] with
    [h_i = H(h_{i-1} || s_i || t_i || H(c_i))] and [h_0 = 0]. The log
    holds two parallel streams: the message stream (SEND/RECV/ACK,
    which authenticators commit to) and the execution stream
    (nondeterministic events and snapshot digests, which replay
    consumes). *)

(** Entry content [c_i]; the constructor is the type [t_i]. *)
type content =
  | Send of { dest : string; nonce : int; payload : string }
      (** Message we sent. The attached authenticator commits us to it. *)
  | Recv of { src : string; nonce : int; payload : string; signature : string }
      (** Message received, with the sender's signature so an auditor
          can verify we did not forge it (the AVMM strips the signature
          before the payload enters the AVM). *)
  | Ack of { src : string; acked_seq : int; signature : string }
      (** Acknowledgment received for our entry [acked_seq]. *)
  | Exec of Avm_machine.Event.t
      (** One nondeterministic event of the AVM's execution. *)
  | Snapshot_ref of { digest : string; snapshot_seq : int; at_icount : int }
      (** Digest of an incremental snapshot (Merkle root + meta). *)
  | Note of string
      (** Operator annotation (e.g. "game start"); replay-neutral. *)

type t = { seq : int; content : content; hash : string }
(** A sealed entry. [seq] starts at 1. *)

val type_tag : content -> int
(** The [t_i] byte. *)

val content_bytes : content -> string
(** Canonical serialization of [c_i] (what gets hashed). *)

val content_digest : content -> string
(** [H(c_i)]: SHA-256 of {!content_bytes}, streamed from a per-domain
    scratch writer without materializing the serialization. *)

val content_of_bytes : tag:int -> string -> content
(** Inverse of {!content_bytes}.
    @raise Avm_util.Wire.Malformed on garbage. *)

val chain_hash : prev:string -> seq:int -> content -> string
(** [h_i] as defined above. *)

val chain_ok : prev:string -> t -> bool
(** [chain_ok ~prev e] recomputes [e]'s chain hash from [prev] and
    compares it to the stored one — the audit engine's innermost
    check. *)

val chain_hash_raw : prev:string -> seq:int -> tag:int -> content_digest:string -> string
(** Same, for verifiers that only hold [t_i] and [H(c_i)] — this is
    what lets a message recipient check an authenticator without the
    rest of the log. *)

val seal : prev:string -> seq:int -> content -> t
(** Build the sealed entry. *)

val write : Avm_util.Wire.writer -> t -> unit
(** Full serialization including [h_i] (used inside evidence bundles,
    where self-contained entries are convenient). *)

val read : Avm_util.Wire.reader -> t

val write_body : Avm_util.Wire.writer -> t -> unit
(** Serialization {e without} the chain hash: [(s_i, t_i, c_i)]. This
    is what a stored or transmitted log contains — hashes are
    recomputable from content, and the commitments that matter are the
    signed authenticators, so shipping hashes would only bloat the log
    with incompressible bytes. *)

val read_body : prev:string -> Avm_util.Wire.reader -> t
(** Inverse of {!write_body}; recomputes [h_i] from [prev]. Integrity
    of a decoded segment therefore rests on checking it against
    authenticators, exactly as in PeerReview. *)

val wire_size : t -> int
(** {!write_body} size in bytes — the unit of all log-growth figures. *)

val pp : Format.formatter -> t -> unit

val describe : content -> string
(** One-word category: "SEND", "RECV", "ACK", "EXEC", "SNAP", "NOTE". *)
