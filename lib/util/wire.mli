(** Binary wire format used by log entries, packets and snapshots.

    All multi-byte integers are little-endian. Variable-length integers
    use LEB128. The format is self-contained and has no external
    dependencies so that hashes computed over serialized values are
    stable across runs. *)

(** {1 Writer} *)

type writer
(** Mutable output buffer. *)

val writer : unit -> writer
(** [writer ()] is a fresh empty writer. *)

val contents : writer -> string
(** [contents w] is everything written to [w] so far. *)

val length : writer -> int
(** [length w] is the number of bytes written so far. *)

val buffer : writer -> Buffer.t
(** [buffer w] is the writer's accumulator, exposed so hashing can
    stream straight from it (e.g. {!Avm_crypto.Sha256.digest_buffer})
    without materializing {!contents}. Treat it as read-only. *)

val reset : writer -> unit
(** [reset w] empties the writer for reuse. *)

val u8 : writer -> int -> unit
(** [u8 w v] writes the low 8 bits of [v]. *)

val u16 : writer -> int -> unit
(** [u16 w v] writes the low 16 bits of [v], little-endian. *)

val u32 : writer -> int -> unit
(** [u32 w v] writes the low 32 bits of [v], little-endian. *)

val u64 : writer -> int64 -> unit
(** [u64 w v] writes all 64 bits of [v], little-endian. *)

val varint : writer -> int -> unit
(** [varint w v] writes non-negative [v] as LEB128.
    @raise Invalid_argument if [v < 0]. *)

val bool : writer -> bool -> unit
(** [bool w b] writes one byte, [0] or [1]. *)

val bytes : writer -> string -> unit
(** [bytes w s] writes a varint length prefix followed by the raw bytes
    of [s]. *)

val raw : writer -> string -> unit
(** [raw w s] writes the bytes of [s] with no length prefix. *)

val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
(** [list w f xs] writes a varint count followed by each element. *)

val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
(** [option w f x] writes a presence byte, then the payload if any. *)

(** {1 Reader} *)

type reader
(** Cursor over an input string. *)

exception Truncated
(** Raised when a read runs past the end of the input. *)

exception Malformed of string
(** Raised when the input violates the format (e.g. oversized varint). *)

val reader : string -> reader
(** [reader s] is a cursor positioned at the start of [s]. *)

val pos : reader -> int
(** [pos r] is the current cursor offset. *)

val remaining : reader -> int
(** [remaining r] is the number of unread bytes. *)

val at_end : reader -> bool
(** [at_end r] is [true] iff all input has been consumed. *)

val read_u8 : reader -> int
val read_u16 : reader -> int
val read_u32 : reader -> int
val read_u64 : reader -> int64
val read_varint : reader -> int
val read_bool : reader -> bool
val read_bytes : reader -> string
val read_raw : reader -> int -> string
val read_list : reader -> (reader -> 'a) -> 'a list
val read_option : reader -> (reader -> 'a) -> 'a option

val expect_end : reader -> unit
(** [expect_end r] raises {!Malformed} unless all input was consumed. *)
