(** A reusable fixed-size worker pool on OCaml 5 domains, organized
    for work stealing.

    [create ~jobs ()] provides [jobs]-way parallelism using [jobs - 1]
    spawned domains plus the calling domain. Each lane owns a queue;
    submissions are dealt round-robin, and a lane that runs dry steals
    from the others, so uneven task sizes rebalance instead of
    serializing on the slowest lane. The calling domain steals queued
    work whenever it blocks in {!await} — so submit-all / await-all
    never deadlocks, and a [jobs = 1] pool spawns no domains and runs
    everything inline.

    Tasks are plain thunks; results come back per task in whatever
    order the caller awaits them, so the batch combinators recover
    deterministic ordering by awaiting in submission order. A task
    that raises has its exception (and backtrace) captured and
    re-raised in the awaiter; batch combinators settle {e every} task
    first and then re-raise the failure of the smallest job index. *)

type t

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** What a [--jobs] flag should default to: the recommended domain
    count for this host, so a single-core machine defaults to [1] —
    which every audit entry point treats as fully sequential (no pool,
    no spawned domains, zero scheduling overhead) — instead of paying
    for worker domains the hardware cannot run. An explicit
    [--jobs N] always overrides; benches that want to exercise the
    pool on any host should say so rather than silently forcing
    [N >= 2]. *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs} — the same default every
    [--jobs] flag uses. Spawns [jobs - 1] worker domains immediately;
    the pool is reusable across any number of submissions until
    {!shutdown}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism this pool was created with (including the caller's
    lane). *)

type 'a task

val submit : t -> (unit -> 'a) -> 'a task
(** Queue a task. @raise Invalid_argument after {!shutdown}. *)

val await : 'a task -> 'a
(** Block until the task settles, executing other queued tasks while
    waiting. Re-raises the task's exception with its backtrace. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Submit all thunks, await all, results in submission order. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map with results in input order. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val shutdown : t -> unit
(** Close the queue and join the workers; queued tasks still complete
    first. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and {!shutdown} (also on exception). *)
