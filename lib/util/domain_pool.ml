(* A reusable fixed-size worker pool on OCaml 5 domains, organized for
   work stealing.

   [create ~jobs ()] spawns [jobs - 1] worker domains; the [jobs]-th
   lane is the caller itself, which steals queued work whenever it
   blocks in [await]. A pool with [jobs = 1] therefore spawns no
   domains at all and runs every task inline on first await — the
   degenerate case costs nothing beyond a queue push.

   Each lane owns a queue under its own small mutex; submissions are
   dealt round-robin across lanes, and a lane that runs dry steals
   from the others (scan starting at its own index) instead of
   parking at a central queue. That keeps the common case — every
   lane busy on its own chunk stream — free of cross-domain lock
   contention, and lets uneven chunks rebalance: a worker that
   finishes early drains its neighbours' backlogs. [pending] counts
   queued-but-unclaimed tasks so an idle worker knows whether a full
   scan can still find work or it should sleep on [work].

   Task cells are guarded by the pool mutex [mu]; task bodies never
   run under any lock. Awaiters sleep on [done_] (broadcast per
   completion, and per submission so a sleeping awaiter wakes to
   steal fresh work) but only after a steal scan came up empty.

   Results are delivered per task, so batch combinators ([map_list],
   [run]) recover deterministic ordering simply by awaiting in
   submission order. Exceptions raised by a task are captured with
   their backtrace and re-raised in the awaiter; a batch awaits every
   task before re-raising the failure of the smallest job index, so a
   crash in one task cannot leave siblings running against torn
   state. *)

type lane = { l_mu : Mutex.t; l_q : (unit -> unit) Queue.t }

type t = {
  mu : Mutex.t; (* task cells, closed flag, sleep/wake *)
  work : Condition.t; (* workers: work was queued, or the pool is closing *)
  done_ : Condition.t; (* awaiters: a task settled, or fresh work to steal *)
  lanes : lane array;
  next_lane : int Atomic.t; (* round-robin submission cursor *)
  pending : int Atomic.t; (* queued tasks not yet claimed by any lane *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

type 'a cell = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace
type 'a task = { pool : t; mutable cell : 'a cell }

let recommended_jobs () = Domain.recommended_domain_count ()

let default_jobs () = max 1 (recommended_jobs ())
let jobs t = t.jobs

let lane_take (l : lane) =
  Mutex.lock l.l_mu;
  let j = Queue.take_opt l.l_q in
  Mutex.unlock l.l_mu;
  j

(* Claim one queued task, preferring lane [start] (a worker passes its
   own lane; stealing is just the same scan continuing past it). *)
let steal t start =
  let n = Array.length t.lanes in
  let rec go k =
    if k = n then None
    else
      match lane_take t.lanes.((start + k) mod n) with
      | Some _ as j ->
        Atomic.decr t.pending;
        j
      | None -> go (k + 1)
  in
  go 0

let worker_loop t i =
  let continue = ref true in
  while !continue do
    match steal t i with
    | Some job -> job ()
    | None ->
      Mutex.lock t.mu;
      while Atomic.get t.pending = 0 && not t.closed do
        Condition.wait t.work t.mu
      done;
      if t.closed && Atomic.get t.pending = 0 then continue := false;
      Mutex.unlock t.mu
  done

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      mu = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      lanes = Array.init jobs (fun _ -> { l_mu = Mutex.create (); l_q = Queue.create () });
      next_lane = Atomic.make 0;
      pending = Atomic.make 0;
      closed = false;
      workers = [];
      jobs;
    }
  in
  (* Lane 0 belongs to the caller; worker [i] owns lane [i]. *)
  t.workers <- List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let submit t f =
  let task = { pool = t; cell = Pending } in
  let job () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mu;
    task.cell <- r;
    Condition.broadcast t.done_;
    Mutex.unlock t.mu
  in
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    invalid_arg "Domain_pool.submit: pool is closed"
  end;
  let l = t.lanes.(Atomic.fetch_and_add t.next_lane 1 land max_int mod t.jobs) in
  Mutex.lock l.l_mu;
  Queue.add job l.l_q;
  Mutex.unlock l.l_mu;
  Atomic.incr t.pending;
  Condition.signal t.work;
  (* Also wake a sleeping awaiter — it steals instead of idling. *)
  Condition.broadcast t.done_;
  Mutex.unlock t.mu;
  task

let rec await task =
  let t = task.pool in
  Mutex.lock t.mu;
  match task.cell with
  | Done v ->
    Mutex.unlock t.mu;
    v
  | Failed (e, bt) ->
    Mutex.unlock t.mu;
    Printexc.raise_with_backtrace e bt
  | Pending -> (
    Mutex.unlock t.mu;
    (* Help: steal queued work instead of going idle. *)
    match steal t 0 with
    | Some job ->
      job ();
      await task
    | None ->
      Mutex.lock t.mu;
      (match task.cell with
      | Pending when Atomic.get t.pending = 0 -> Condition.wait t.done_ t.mu
      | _ -> ());
      Mutex.unlock t.mu;
      await task)

let try_await task = match await task with v -> Ok v | exception e -> Error e

let await_all tasks =
  (* Settle every task before raising, then re-raise the failure with
     the smallest job index (deterministic regardless of scheduling). *)
  let settled = List.map try_await tasks in
  List.map (function Ok v -> v | Error e -> raise e) settled

let run t thunks = await_all (List.map (submit t) thunks)
let map_list t f xs = run t (List.map (fun x () -> f x) xs)

let map_array t f xs =
  let tasks = Array.map (fun x -> submit t (fun () -> f x)) xs in
  let settled = Array.map try_await tasks in
  Array.map (function Ok v -> v | Error e -> raise e) settled

let shutdown t =
  Mutex.lock t.mu;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
