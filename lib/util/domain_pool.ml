(* A reusable fixed-size worker pool on OCaml 5 domains.

   [create ~jobs ()] spawns [jobs - 1] worker domains; the [jobs]-th
   lane is the caller itself, which helps drain the queue whenever it
   blocks in [await]. A pool with [jobs = 1] therefore spawns no
   domains at all and runs every task inline on first await — the
   degenerate case costs nothing beyond a queue push.

   One mutex guards the queue and every task cell. Workers sleep on
   [work] (signalled per submission); awaiters sleep on [finished]
   (broadcast per completion) but only after the queue is empty — an
   awaiter with runnable tasks executes them itself, so submit-all /
   await-all never deadlocks even with zero workers. Task bodies never
   run under the lock.

   Results are delivered per task, so batch combinators ([map_list],
   [run]) recover deterministic ordering simply by awaiting in
   submission order. Exceptions raised by a task are captured with
   their backtrace and re-raised in the awaiter; a batch awaits every
   task before re-raising the failure of the smallest job index, so a
   crash in one task cannot leave siblings running against torn
   state. *)

type t = {
  lock : Mutex.t;
  work : Condition.t; (* a job was queued, or the pool is closing *)
  finished : Condition.t; (* some task completed *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

type 'a cell = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace
type 'a task = { pool : t; mutable cell : 'a cell }

let recommended_jobs () = Domain.recommended_domain_count ()

let default_jobs () = max 1 (recommended_jobs ())
let jobs t = t.jobs

let worker_loop t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work t.lock
    done;
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.lock;
      job ()
    | None ->
      (* closed and drained *)
      Mutex.unlock t.lock;
      continue := false
  done

let create ?(jobs = recommended_jobs ()) () =
  let jobs = max 1 jobs in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      jobs;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  let task = { pool = t; cell = Pending } in
  let job () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.lock;
    task.cell <- r;
    Condition.broadcast t.finished;
    Mutex.unlock t.lock
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Domain_pool.submit: pool is closed"
  end;
  Queue.add job t.queue;
  Condition.signal t.work;
  Mutex.unlock t.lock;
  task

let rec await task =
  let t = task.pool in
  Mutex.lock t.lock;
  match task.cell with
  | Done v ->
    Mutex.unlock t.lock;
    v
  | Failed (e, bt) ->
    Mutex.unlock t.lock;
    Printexc.raise_with_backtrace e bt
  | Pending -> (
    (* Help: run queued work instead of going idle. *)
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.lock;
      job ();
      await task
    | None ->
      Condition.wait t.finished t.lock;
      Mutex.unlock t.lock;
      await task)

let try_await task = match await task with v -> Ok v | exception e -> Error e

let await_all tasks =
  (* Settle every task before raising, then re-raise the failure with
     the smallest job index (deterministic regardless of scheduling). *)
  let settled = List.map try_await tasks in
  List.map (function Ok v -> v | Error e -> raise e) settled

let run t thunks = await_all (List.map (submit t) thunks)
let map_list t f xs = run t (List.map (fun x () -> f x) xs)

let map_array t f xs =
  let tasks = Array.map (fun x -> submit t (fun () -> f x)) xs in
  let settled = Array.map try_await tasks in
  Array.map (function Ok v -> v | Error e -> raise e) settled

let shutdown t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
