(** Sample accumulators used by the experiment harness.

    A {!t} accumulates raw observations so the harness can report the
    medians and percentiles that the paper's figures use (e.g. the 5th
    and 95th percentile error bars of Figure 5). *)

type t
(** A mutable bag of float samples. *)

val create : unit -> t
(** [create ()] is an empty accumulator. *)

val add : t -> float -> unit
(** [add t x] records one observation. *)

val count : t -> int
(** Number of recorded observations. *)

val mean : t -> float
(** Arithmetic mean; [nan] if empty. *)

val total : t -> float
(** Sum of all observations. *)

val min_value : t -> float
(** Smallest observation; [nan] if empty. *)

val max_value : t -> float
(** Largest observation; [nan] if empty. *)

val stddev : t -> float
(** Population standard deviation; [nan] if empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by nearest-rank on the
    sorted samples; [nan] if empty. *)

val median : t -> float
(** [median t] is [percentile t 50.0]. *)

val samples : t -> float list
(** The raw observations, most recent first. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds every observation of [src] to [dst]
    (e.g. combining per-domain accumulators on read). [src] is not
    modified. *)

(** {1 Rates} *)

type rate
(** Counts events against elapsed (virtual) time. *)

val rate : unit -> rate
val tick : rate -> ?weight:float -> float -> unit
(** [tick r ~weight now] records an event of size [weight] (default 1)
    at time [now] (seconds). *)

val per_second : rate -> float
(** Average weight per second over the observed span; 0 if fewer than
    two distinct timestamps were seen. *)
