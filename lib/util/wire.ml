type writer = Buffer.t

let writer () = Buffer.create 256
let contents w = Buffer.contents w
let length w = Buffer.length w
let buffer w = w
let reset w = Buffer.clear w
let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let u16 w v =
  u8 w v;
  u8 w (v lsr 8)

let u32 w v =
  u16 w v;
  u16 w (v lsr 16)

let u64 w v =
  for i = 0 to 7 do
    u8 w (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let varint w v =
  if v < 0 then invalid_arg "Wire.varint: negative";
  let rec go v =
    if v < 0x80 then u8 w v
    else begin
      u8 w (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

let bool w b = u8 w (if b then 1 else 0)

let bytes w s =
  varint w (String.length s);
  Buffer.add_string w s

let raw w s = Buffer.add_string w s

let list w f xs =
  varint w (List.length xs);
  List.iter (f w) xs

let option w f = function
  | None -> u8 w 0
  | Some x ->
    u8 w 1;
    f w x

type reader = { input : string; mutable pos : int }

exception Truncated
exception Malformed of string

let reader input = { input; pos = 0 }
let pos r = r.pos
let remaining r = String.length r.input - r.pos
let at_end r = remaining r = 0

let read_u8 r =
  if r.pos >= String.length r.input then raise Truncated;
  let v = Char.code r.input.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_u16 r =
  let a = read_u8 r in
  let b = read_u8 r in
  a lor (b lsl 8)

let read_u32 r =
  let a = read_u16 r in
  let b = read_u16 r in
  a lor (b lsl 16)

let read_u64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    let b = Int64.of_int (read_u8 r) in
    v := Int64.logor !v (Int64.shift_left b (8 * i))
  done;
  !v

let read_varint r =
  let rec go shift acc =
    if shift > 56 then raise (Malformed "varint too long");
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Malformed (Printf.sprintf "bad bool byte %d" n))

let read_raw r n =
  if n < 0 || remaining r < n then raise Truncated;
  let s = String.sub r.input r.pos n in
  r.pos <- r.pos + n;
  s

let read_bytes r =
  let n = read_varint r in
  read_raw r n

let read_list r f =
  let n = read_varint r in
  if n > remaining r then raise (Malformed "list count exceeds input");
  List.init n (fun _ -> f r)

let read_option r f =
  match read_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> raise (Malformed (Printf.sprintf "bad option byte %d" n))

let expect_end r =
  if not (at_end r) then
    raise (Malformed (Printf.sprintf "%d trailing bytes" (remaining r)))
