type t = { mutable samples : float list; mutable n : int; mutable sum : float }

let create () = { samples = []; n = 0; sum = 0.0 }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let min_value t =
  match t.samples with [] -> nan | x :: xs -> List.fold_left min x xs

let max_value t =
  match t.samples with [] -> nan | x :: xs -> List.fold_left max x xs

let stddev t =
  if t.n = 0 then nan
  else begin
    let m = mean t in
    let acc = List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 t.samples in
    sqrt (acc /. float_of_int t.n)
  end

let percentile t p =
  if t.n = 0 then nan
  else begin
    let a = Array.of_list t.samples in
    Array.sort compare a;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let idx = max 0 (min (t.n - 1) (rank - 1)) in
    a.(idx)
  end

let median t = percentile t 50.0
let samples t = t.samples

let merge_into ~dst src =
  dst.samples <- List.rev_append src.samples dst.samples;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum

type rate = {
  mutable first : float option;
  mutable last : float;
  mutable weight : float;
}

let rate () = { first = None; last = 0.0; weight = 0.0 }

let tick r ?(weight = 1.0) now =
  (match r.first with None -> r.first <- Some now | Some _ -> ());
  r.last <- max r.last now;
  r.weight <- r.weight +. weight

let per_second r =
  match r.first with
  | None -> 0.0
  | Some t0 ->
    let span = r.last -. t0 in
    if span <= 0.0 then 0.0 else r.weight /. span
