type reg = int

type instr =
  | Halt
  | Nop
  | Ei
  | Di
  | Iret
  | Mov of reg * reg
  | Movi of reg * int
  | Lui of reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Sar of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Seq of reg * reg * reg
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Shli of reg * reg * int
  | Shri of reg * reg * int
  | Sari of reg * reg * int
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Jmp of int
  | Jal of reg * int
  | Jr of reg
  | Jalr of reg * reg
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | In of reg * int
  | Out of reg * int

exception Decode_error of int

(* Encoding: [op:8][rd:4][rs:4][imm:16]. Three-register forms put the
   third register in the low 4 bits of the imm field. Immediates are
   stored as unsigned 16-bit values; signedness is an interpretation
   applied by the CPU (and by [decode], which returns signed values for
   the sign-extended forms so that encode/decode round-trips). *)

let mask16 = 0xffff

let pack ~op ~rd ~rs ~imm =
  assert (rd >= 0 && rd < 16 && rs >= 0 && rs < 16);
  (op lsl 24) lor (rd lsl 20) lor (rs lsl 16) lor (imm land mask16)

let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

(* Opcode assignments. *)
let op_halt = 0x00
and op_nop = 0x01
and op_ei = 0x02
and op_di = 0x03
and op_iret = 0x04
and op_mov = 0x05
and op_movi = 0x06
and op_lui = 0x07
and op_add = 0x10
and op_sub = 0x11
and op_mul = 0x12
and op_div = 0x13
and op_rem = 0x14
and op_and = 0x15
and op_or = 0x16
and op_xor = 0x17
and op_shl = 0x18
and op_shr = 0x19
and op_sar = 0x1a
and op_slt = 0x1b
and op_sltu = 0x1c
and op_seq = 0x1d
and op_addi = 0x20
and op_andi = 0x21
and op_ori = 0x22
and op_xori = 0x23
and op_shli = 0x24
and op_shri = 0x25
and op_sari = 0x26
and op_load = 0x30
and op_store = 0x31
and op_jmp = 0x40
and op_jal = 0x41
and op_jr = 0x42
and op_jalr = 0x43
and op_beq = 0x44
and op_bne = 0x45
and op_blt = 0x46
and op_bge = 0x47
and op_bltu = 0x48
and op_bgeu = 0x49
and op_in = 0x50
and op_out = 0x51

let encode = function
  | Halt -> pack ~op:op_halt ~rd:0 ~rs:0 ~imm:0
  | Nop -> pack ~op:op_nop ~rd:0 ~rs:0 ~imm:0
  | Ei -> pack ~op:op_ei ~rd:0 ~rs:0 ~imm:0
  | Di -> pack ~op:op_di ~rd:0 ~rs:0 ~imm:0
  | Iret -> pack ~op:op_iret ~rd:0 ~rs:0 ~imm:0
  | Mov (rd, rs) -> pack ~op:op_mov ~rd ~rs ~imm:0
  | Movi (rd, imm) -> pack ~op:op_movi ~rd ~rs:0 ~imm
  | Lui (rd, imm) -> pack ~op:op_lui ~rd ~rs:0 ~imm
  | Add (d, s, t) -> pack ~op:op_add ~rd:d ~rs:s ~imm:t
  | Sub (d, s, t) -> pack ~op:op_sub ~rd:d ~rs:s ~imm:t
  | Mul (d, s, t) -> pack ~op:op_mul ~rd:d ~rs:s ~imm:t
  | Div (d, s, t) -> pack ~op:op_div ~rd:d ~rs:s ~imm:t
  | Rem (d, s, t) -> pack ~op:op_rem ~rd:d ~rs:s ~imm:t
  | And (d, s, t) -> pack ~op:op_and ~rd:d ~rs:s ~imm:t
  | Or (d, s, t) -> pack ~op:op_or ~rd:d ~rs:s ~imm:t
  | Xor (d, s, t) -> pack ~op:op_xor ~rd:d ~rs:s ~imm:t
  | Shl (d, s, t) -> pack ~op:op_shl ~rd:d ~rs:s ~imm:t
  | Shr (d, s, t) -> pack ~op:op_shr ~rd:d ~rs:s ~imm:t
  | Sar (d, s, t) -> pack ~op:op_sar ~rd:d ~rs:s ~imm:t
  | Slt (d, s, t) -> pack ~op:op_slt ~rd:d ~rs:s ~imm:t
  | Sltu (d, s, t) -> pack ~op:op_sltu ~rd:d ~rs:s ~imm:t
  | Seq (d, s, t) -> pack ~op:op_seq ~rd:d ~rs:s ~imm:t
  | Addi (d, s, imm) -> pack ~op:op_addi ~rd:d ~rs:s ~imm
  | Andi (d, s, imm) -> pack ~op:op_andi ~rd:d ~rs:s ~imm
  | Ori (d, s, imm) -> pack ~op:op_ori ~rd:d ~rs:s ~imm
  | Xori (d, s, imm) -> pack ~op:op_xori ~rd:d ~rs:s ~imm
  | Shli (d, s, imm) -> pack ~op:op_shli ~rd:d ~rs:s ~imm
  | Shri (d, s, imm) -> pack ~op:op_shri ~rd:d ~rs:s ~imm
  | Sari (d, s, imm) -> pack ~op:op_sari ~rd:d ~rs:s ~imm
  | Load (d, s, imm) -> pack ~op:op_load ~rd:d ~rs:s ~imm
  | Store (d, s, imm) -> pack ~op:op_store ~rd:d ~rs:s ~imm
  | Jmp off -> pack ~op:op_jmp ~rd:0 ~rs:0 ~imm:off
  | Jal (rd, off) -> pack ~op:op_jal ~rd ~rs:0 ~imm:off
  | Jr rs -> pack ~op:op_jr ~rd:0 ~rs ~imm:0
  | Jalr (rd, rs) -> pack ~op:op_jalr ~rd ~rs ~imm:0
  | Beq (s, t, off) -> pack ~op:op_beq ~rd:s ~rs:t ~imm:off
  | Bne (s, t, off) -> pack ~op:op_bne ~rd:s ~rs:t ~imm:off
  | Blt (s, t, off) -> pack ~op:op_blt ~rd:s ~rs:t ~imm:off
  | Bge (s, t, off) -> pack ~op:op_bge ~rd:s ~rs:t ~imm:off
  | Bltu (s, t, off) -> pack ~op:op_bltu ~rd:s ~rs:t ~imm:off
  | Bgeu (s, t, off) -> pack ~op:op_bgeu ~rd:s ~rs:t ~imm:off
  | In (rd, port) -> pack ~op:op_in ~rd ~rs:0 ~imm:port
  | Out (rs, port) -> pack ~op:op_out ~rd:0 ~rs ~imm:port

let decode w =
  let op = (w lsr 24) land 0xff in
  let rd = (w lsr 20) land 0xf in
  let rs = (w lsr 16) land 0xf in
  let imm = w land mask16 in
  let rt = imm land 0xf in
  if op = op_halt then Halt
  else if op = op_nop then Nop
  else if op = op_ei then Ei
  else if op = op_di then Di
  else if op = op_iret then Iret
  else if op = op_mov then Mov (rd, rs)
  else if op = op_movi then Movi (rd, sext16 imm)
  else if op = op_lui then Lui (rd, imm)
  else if op = op_add then Add (rd, rs, rt)
  else if op = op_sub then Sub (rd, rs, rt)
  else if op = op_mul then Mul (rd, rs, rt)
  else if op = op_div then Div (rd, rs, rt)
  else if op = op_rem then Rem (rd, rs, rt)
  else if op = op_and then And (rd, rs, rt)
  else if op = op_or then Or (rd, rs, rt)
  else if op = op_xor then Xor (rd, rs, rt)
  else if op = op_shl then Shl (rd, rs, rt)
  else if op = op_shr then Shr (rd, rs, rt)
  else if op = op_sar then Sar (rd, rs, rt)
  else if op = op_slt then Slt (rd, rs, rt)
  else if op = op_sltu then Sltu (rd, rs, rt)
  else if op = op_seq then Seq (rd, rs, rt)
  else if op = op_addi then Addi (rd, rs, sext16 imm)
  else if op = op_andi then Andi (rd, rs, imm)
  else if op = op_ori then Ori (rd, rs, imm)
  else if op = op_xori then Xori (rd, rs, imm)
  else if op = op_shli then Shli (rd, rs, imm land 31)
  else if op = op_shri then Shri (rd, rs, imm land 31)
  else if op = op_sari then Sari (rd, rs, imm land 31)
  else if op = op_load then Load (rd, rs, sext16 imm)
  else if op = op_store then Store (rd, rs, sext16 imm)
  else if op = op_jmp then Jmp (sext16 imm)
  else if op = op_jal then Jal (rd, sext16 imm)
  else if op = op_jr then Jr rs
  else if op = op_jalr then Jalr (rd, rs)
  else if op = op_beq then Beq (rd, rs, sext16 imm)
  else if op = op_bne then Bne (rd, rs, sext16 imm)
  else if op = op_blt then Blt (rd, rs, sext16 imm)
  else if op = op_bge then Bge (rd, rs, sext16 imm)
  else if op = op_bltu then Bltu (rd, rs, sext16 imm)
  else if op = op_bgeu then Bgeu (rd, rs, sext16 imm)
  else if op = op_in then In (rd, imm)
  else if op = op_out then Out (rs, imm)
  else raise (Decode_error w)

let is_branch = function
  | Jmp _ | Jal _ | Jr _ | Jalr _ | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _ ->
    true
  | Halt | Nop | Ei | Di | Iret | Mov _ | Movi _ | Lui _ | Add _ | Sub _ | Mul _
  | Div _ | Rem _ | And _ | Or _ | Xor _ | Shl _ | Shr _ | Sar _ | Slt _ | Sltu _
  | Seq _ | Addi _ | Andi _ | Ori _ | Xori _ | Shli _ | Shri _ | Sari _ | Load _
  | Store _ | In _ | Out _ ->
    false

let reg_name r =
  match r with
  | 12 -> "fp"
  | 13 -> "sp"
  | 14 -> "lr"
  | 15 -> "at"
  | _ -> Printf.sprintf "r%d" r

let port_console = 0x10
let port_clock = 0x20
let port_rng = 0x21
let port_input = 0x30
let port_input_avail = 0x31
let port_net_rx_avail = 0x40
let port_net_rx = 0x41
let port_net_tx = 0x42
let port_net_tx_send = 0x43
let port_net_rx_next = 0x44
let port_net_rx_len = 0x45
let port_disk_sector = 0x50
let port_disk_word = 0x51
let port_disk_read = 0x52
let port_disk_write = 0x53
let port_timer_ctl = 0x60
let port_sleep = 0x61
let port_frame = 0x70
let port_ivt = 0xf0
let port_irq_cause = 0xf1

let named_ports =
  [
    ("CONSOLE", port_console);
    ("CLOCK", port_clock);
    ("RNG", port_rng);
    ("INPUT", port_input);
    ("INPUT_AVAIL", port_input_avail);
    ("NET_RX_AVAIL", port_net_rx_avail);
    ("NET_RX", port_net_rx);
    ("NET_TX", port_net_tx);
    ("NET_TX_SEND", port_net_tx_send);
    ("NET_RX_NEXT", port_net_rx_next);
    ("NET_RX_LEN", port_net_rx_len);
    ("DISK_SECTOR", port_disk_sector);
    ("DISK_WORD", port_disk_word);
    ("DISK_READ", port_disk_read);
    ("DISK_WRITE", port_disk_write);
    ("TIMER_CTL", port_timer_ctl);
    ("SLEEP", port_sleep);
    ("FRAME", port_frame);
    ("IVT", port_ivt);
    ("IRQ_CAUSE", port_irq_cause);
  ]

let port_name p =
  match List.find_opt (fun (_, v) -> v = p) named_ports with
  | Some (n, _) -> n
  | None -> Printf.sprintf "0x%x" p

let to_string i =
  let r = reg_name in
  match i with
  | Halt -> "halt"
  | Nop -> "nop"
  | Ei -> "ei"
  | Di -> "di"
  | Iret -> "iret"
  | Mov (d, s) -> Printf.sprintf "mov %s, %s" (r d) (r s)
  | Movi (d, v) -> Printf.sprintf "movi %s, %d" (r d) v
  | Lui (d, v) -> Printf.sprintf "lui %s, %d" (r d) v
  | Add (d, s, t) -> Printf.sprintf "add %s, %s, %s" (r d) (r s) (r t)
  | Sub (d, s, t) -> Printf.sprintf "sub %s, %s, %s" (r d) (r s) (r t)
  | Mul (d, s, t) -> Printf.sprintf "mul %s, %s, %s" (r d) (r s) (r t)
  | Div (d, s, t) -> Printf.sprintf "div %s, %s, %s" (r d) (r s) (r t)
  | Rem (d, s, t) -> Printf.sprintf "rem %s, %s, %s" (r d) (r s) (r t)
  | And (d, s, t) -> Printf.sprintf "and %s, %s, %s" (r d) (r s) (r t)
  | Or (d, s, t) -> Printf.sprintf "or %s, %s, %s" (r d) (r s) (r t)
  | Xor (d, s, t) -> Printf.sprintf "xor %s, %s, %s" (r d) (r s) (r t)
  | Shl (d, s, t) -> Printf.sprintf "shl %s, %s, %s" (r d) (r s) (r t)
  | Shr (d, s, t) -> Printf.sprintf "shr %s, %s, %s" (r d) (r s) (r t)
  | Sar (d, s, t) -> Printf.sprintf "sar %s, %s, %s" (r d) (r s) (r t)
  | Slt (d, s, t) -> Printf.sprintf "slt %s, %s, %s" (r d) (r s) (r t)
  | Sltu (d, s, t) -> Printf.sprintf "sltu %s, %s, %s" (r d) (r s) (r t)
  | Seq (d, s, t) -> Printf.sprintf "seq %s, %s, %s" (r d) (r s) (r t)
  | Addi (d, s, v) -> Printf.sprintf "addi %s, %s, %d" (r d) (r s) v
  | Andi (d, s, v) -> Printf.sprintf "andi %s, %s, %d" (r d) (r s) v
  | Ori (d, s, v) -> Printf.sprintf "ori %s, %s, %d" (r d) (r s) v
  | Xori (d, s, v) -> Printf.sprintf "xori %s, %s, %d" (r d) (r s) v
  | Shli (d, s, v) -> Printf.sprintf "shli %s, %s, %d" (r d) (r s) v
  | Shri (d, s, v) -> Printf.sprintf "shri %s, %s, %d" (r d) (r s) v
  | Sari (d, s, v) -> Printf.sprintf "sari %s, %s, %d" (r d) (r s) v
  | Load (d, s, v) -> Printf.sprintf "load %s, %s, %d" (r d) (r s) v
  | Store (d, s, v) -> Printf.sprintf "store %s, %s, %d" (r d) (r s) v
  | Jmp off -> Printf.sprintf "jmp %d" off
  | Jal (d, off) -> Printf.sprintf "jal %s, %d" (r d) off
  | Jr s -> Printf.sprintf "jr %s" (r s)
  | Jalr (d, s) -> Printf.sprintf "jalr %s, %s" (r d) (r s)
  | Beq (s, t, off) -> Printf.sprintf "beq %s, %s, %d" (r s) (r t) off
  | Bne (s, t, off) -> Printf.sprintf "bne %s, %s, %d" (r s) (r t) off
  | Blt (s, t, off) -> Printf.sprintf "blt %s, %s, %d" (r s) (r t) off
  | Bge (s, t, off) -> Printf.sprintf "bge %s, %s, %d" (r s) (r t) off
  | Bltu (s, t, off) -> Printf.sprintf "bltu %s, %s, %d" (r s) (r t) off
  | Bgeu (s, t, off) -> Printf.sprintf "bgeu %s, %s, %d" (r s) (r t) off
  | In (d, p) -> Printf.sprintf "in %s, %s" (r d) (port_name p)
  | Out (s, p) -> Printf.sprintf "out %s, %s" (r s) (port_name p)
