(** The AVM-32 instruction set.

    A small 32-bit RISC-style ISA executed by {!Avm_machine}. It plays
    the role x86 plays in the paper: the binary format guest images are
    shipped in, executed, and deterministically replayed. Design points
    that matter for accountability:

    - fixed 32-bit encoding, one word per instruction, word-addressed
      memory — keeps images and snapshots simple;
    - every taken control transfer increments the CPU's branch counter,
      giving the (pc, branch count, instruction count) landmarks used to
      time asynchronous event injection during replay (paper §4.4);
    - all nondeterminism enters through [In] instructions and interrupt
      delivery — there are no other nondeterministic instructions.

    Registers are [r0]–[r15]; conventions (used by the compiler, not
    enforced by hardware): [r12] frame pointer, [r13] stack pointer,
    [r14] link register, [r15] assembler temporary. *)

type reg = int
(** Register index in [\[0, 15\]]. *)

type instr =
  (* system *)
  | Halt  (** stop the CPU; the machine reports a halt *)
  | Nop
  | Ei  (** enable interrupts *)
  | Di  (** disable interrupts *)
  | Iret  (** return from interrupt: restore pc, re-enable interrupts *)
  (* moves and immediates *)
  | Mov of reg * reg  (** [rd := rs] *)
  | Movi of reg * int  (** [rd := sext(imm16)] *)
  | Lui of reg * int  (** [rd := imm16 << 16] *)
  (* ALU, register *)
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg  (** signed; division by zero yields 0 *)
  | Rem of reg * reg * reg  (** signed; remainder by zero yields 0 *)
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * reg  (** shift count taken mod 32 *)
  | Shr of reg * reg * reg  (** logical *)
  | Sar of reg * reg * reg  (** arithmetic *)
  | Slt of reg * reg * reg  (** signed less-than, 0/1 *)
  | Sltu of reg * reg * reg  (** unsigned less-than, 0/1 *)
  | Seq of reg * reg * reg  (** equality, 0/1 *)
  (* ALU, immediate *)
  | Addi of reg * reg * int  (** [imm16] sign-extended *)
  | Andi of reg * reg * int  (** [imm16] zero-extended *)
  | Ori of reg * reg * int  (** [imm16] zero-extended *)
  | Xori of reg * reg * int  (** [imm16] zero-extended *)
  | Shli of reg * reg * int
  | Shri of reg * reg * int
  | Sari of reg * reg * int
  (* memory *)
  | Load of reg * reg * int  (** [rd := mem\[rs + sext(imm16)\]] *)
  | Store of reg * reg * int  (** [mem\[rs + sext(imm16)\] := rd] *)
  (* control; offsets are relative to the next instruction *)
  | Jmp of int
  | Jal of reg * int  (** [rd := pc + 1], jump *)
  | Jr of reg
  | Jalr of reg * reg  (** [rd := pc + 1], jump to [rs] *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int  (** signed *)
  | Bge of reg * reg * int  (** signed *)
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  (* I/O *)
  | In of reg * int  (** [rd := port\[imm16\]] — may be nondeterministic *)
  | Out of reg * int  (** [port\[imm16\] := rd] *)

exception Decode_error of int
(** Raised on an undefined opcode; carries the offending word. *)

val encode : instr -> int
(** [encode i] is the 32-bit instruction word (as a non-negative
    int). *)

val decode : int -> instr
(** [decode w] inverts {!encode}.
    @raise Decode_error on undefined encodings. *)

val to_string : instr -> string
(** Assembler-syntax rendering, e.g. ["add r1, r2, r3"]. *)

val is_branch : instr -> bool
(** True for every control-transfer instruction (the ones that bump the
    branch counter when taken). *)

val reg_name : reg -> string
(** ["r0"].."r11", then ["fp"], ["sp"], ["lr"], ["at"]. *)

(** {1 Well-known I/O ports}

    The device model behind these lives in {!Avm_machine.Devices}. *)

val port_console : int (* 0x10: Out byte — console output (an observable) *)
val port_clock : int (* 0x20: In — virtual microseconds (nondeterministic) *)
val port_rng : int (* 0x21: In — random word (nondeterministic) *)
val port_input : int (* 0x30: In — next local input event, 0 if none *)
val port_input_avail : int (* 0x31: In — queued local input events *)
val port_net_rx_avail : int (* 0x40: In — queued incoming packets *)
val port_net_rx : int (* 0x41: In — next word of current rx packet *)
val port_net_rx_len : int (* 0x45: In — word length of current rx packet *)
val port_net_rx_next : int (* 0x44: Out — drop current rx packet, advance *)
val port_net_tx : int (* 0x42: Out — append word to tx buffer *)
val port_net_tx_send : int (* 0x43: Out — flush tx buffer as one packet *)
val port_disk_sector : int (* 0x50: Out — select sector *)
val port_disk_word : int (* 0x51: Out — select word within sector *)
val port_disk_read : int (* 0x52: In — read selected word (deterministic) *)
val port_disk_write : int (* 0x53: Out — write selected word *)
val port_timer_ctl : int (* 0x60: Out — interval in instructions; 0 stops *)
val port_sleep : int (* 0x61: Out — park the guest: 0 = until woken, n>0 = at most n us *)
val port_frame : int (* 0x70: Out — frame-rendered marker *)
val port_ivt : int (* 0xf0: Out — set interrupt vector address *)
val port_irq_cause : int (* 0xf1: In — line of the last delivered IRQ (deterministic) *)

val port_name : int -> string
(** Symbolic name for a well-known port, or hex otherwise. *)

val named_ports : (string * int) list
(** Assembler-visible names, e.g. [("CLOCK", 0x20)]. *)
