(** Pluggable crypto primitives (DESIGN.md §17).

    An audit verdict depends on exactly two primitives — a hash and a
    modular exponentiation — and this seam pins them down as a module
    type so optimized implementations can be swapped in against a
    standing oracle. {!Default} is the production instance (the
    unrolled {!Sha256} core, Montgomery exponentiation with a
    per-domain context cache); {!Reference} is a deliberately naive
    from-spec instance (textbook FIPS 180-4 over a padded copy,
    {!Bignum.mod_pow_classic}). The [backend-crosscheck] tool and the
    QCheck properties in [test_crypto] require byte-identical audit
    reports under both.

    {!Rsa.verify} routes through the selected backend; batch shortcuts
    ({!Rsa.verify_batch}) only engage when {!is_default} holds, so a
    non-default backend always sees one primitive call per
    signature. *)

module type S = sig
  val name : string

  val digest : string -> string
  (** 32-byte SHA-256. *)

  val rsa_pow : m:Bignum.t -> base:Bignum.t -> exp:Bignum.t -> Bignum.t
  (** [base^exp mod m] — the raw RSA verification power. *)
end

module Default : S
module Reference : S

val default : (module S)
val reference : (module S)

val current : unit -> (module S)
(** The selected backend (process-global, atomic). *)

val set : (module S) -> unit
(** Select a backend for the whole process. *)

val is_default : unit -> bool
(** Whether the selected backend is {!default} (by physical identity);
    gates the batched fast paths. *)

val name : unit -> string
(** [name ()] is the selected backend's name. *)

val with_backend : (module S) -> (unit -> 'a) -> 'a
(** [with_backend b f] runs [f] with [b] selected, restoring the
    previous selection afterwards (even on exceptions). Intended for
    tests; the selection is process-global, so don't race it against
    concurrent verification. *)

(** {1 Shared precomputation}

    The per-domain Montgomery context cache, keyed by the physical
    identity of the modulus. Used by the {!Default} backend, by CRT
    signing, and by {!Rsa.verify_batch} to hoist the context lookup
    out of its inner loop. *)

val mont_of : Bignum.t -> Bignum.Mont.ctx option
(** Cached [Bignum.Mont.make] ([None] for even or single-limb moduli). *)

val pow_mod : m:Bignum.t -> Bignum.t -> Bignum.t -> Bignum.t
(** [pow_mod ~m b e] is [b^e mod m] through the cached context. *)
