(* Bounded, domain-safe cache of successful RSA signature
   verifications (DESIGN.md §12).

   Each domain owns a private shard (no locks on the audit hot path);
   entries map (key fingerprint, signature) to the digest the
   signature was proven valid for. Only *successful* verifications are
   remembered: RSA verification is a pure function of (key, digest,
   signature), so replaying a remembered triple is sound — the cache
   can never turn an invalid signature valid, and a mismatching digest
   simply falls through to the real verification. Eviction is FIFO via
   a per-shard queue, bounded by [set_capacity]. *)

module Metrics = Avm_obs.Metrics

let enabled = Atomic.make true
let cap = Atomic.make 8192

type shard = {
  tbl : (string, string) Hashtbl.t; (* fingerprint ^ signature -> digest *)
  order : string Queue.t; (* insertion order, for FIFO eviction *)
}

let shard =
  Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 1024; order = Queue.create () })

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled
let set_capacity n = Atomic.set cap (max 1 n)
let capacity () = Atomic.get cap

let clear () =
  let s = Domain.DLS.get shard in
  Hashtbl.reset s.tbl;
  Queue.clear s.order

let size () = Hashtbl.length (Domain.DLS.get shard).tbl

let check ~fingerprint ~signature ~digest =
  if not (Atomic.get enabled) then false
  else begin
    let s = Domain.DLS.get shard in
    match Hashtbl.find_opt s.tbl (fingerprint ^ signature) with
    | Some d when String.equal d digest ->
      Metrics.incr "crypto.sig_cache_hits";
      true
    | _ ->
      Metrics.incr "crypto.sig_cache_misses";
      false
  end

let remember ~fingerprint ~signature ~digest =
  if Atomic.get enabled then begin
    let s = Domain.DLS.get shard in
    let key = fingerprint ^ signature in
    if not (Hashtbl.mem s.tbl key) then begin
      let cap = Atomic.get cap in
      while Hashtbl.length s.tbl >= cap && not (Queue.is_empty s.order) do
        Hashtbl.remove s.tbl (Queue.pop s.order)
      done;
      Hashtbl.replace s.tbl key digest;
      Queue.add key s.order
    end
  end
