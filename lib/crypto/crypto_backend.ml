(* Pluggable crypto primitives (DESIGN.md §17).

   The audit verdict depends on exactly two primitives: a hash and a
   modular exponentiation. This module pins that seam down as a module
   type, provides the optimized production instance ([Default]: the
   unrolled {!Sha256} core and Montgomery exponentiation with a
   per-domain context cache) and a deliberately naive from-spec
   instance ([Reference]: textbook FIPS 180-4 rounds over a padded
   copy, classic square-and-multiply with a division per step). The
   two must be observationally identical; the [backend-crosscheck]
   tool and the QCheck properties in [test_crypto] audit random
   tampered logs under both and require byte-identical reports, so a
   future optimized primitive slots in behind the same seam with an
   oracle already standing. *)

(* --- per-domain Montgomery context cache --------------------------------- *)

(* Keyed by the physical identity of the modulus: a key's Bignum
   fields are stable for the key's lifetime, and audits verify
   thousands of signatures under a handful of keys, so a short
   association list probed by [==] makes the precomputed n', R^2 pair
   effectively "cached on the key" without widening the key types.
   Each domain keeps its own list (no locks); a structural miss just
   recomputes. Shared by the [Default] backend and by CRT signing. *)
let mont_cache : (Bignum.t * Bignum.Mont.ctx option) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let mont_of (n : Bignum.t) =
  let cache = Domain.DLS.get mont_cache in
  let rec find = function
    | [] -> None
    | (m, c) :: _ when m == n -> Some c
    | _ :: rest -> find rest
  in
  match find !cache with
  | Some c -> c
  | None ->
    let c = Bignum.Mont.make n in
    cache := (n, c) :: (if List.length !cache >= 32 then [] else !cache);
    c

(* base^exp mod m through the cached Montgomery context. *)
let pow_mod ~m b e =
  match mont_of m with
  | Some c -> Bignum.Mont.pow c b e
  | None -> Bignum.mod_pow b e m

(* --- the seam ------------------------------------------------------------ *)

module type S = sig
  val name : string

  val digest : string -> string
  (** 32-byte SHA-256. *)

  val rsa_pow : m:Bignum.t -> base:Bignum.t -> exp:Bignum.t -> Bignum.t
  (** [base^exp mod m] — the raw RSA verification power. *)
end

module Default : S = struct
  let name = "default"
  let digest = Sha256.digest
  let rsa_pow ~m ~base ~exp = pow_mod ~m base exp
end

(* Straight off the FIPS 180-4 page: materialize the padded message,
   schedule one block at a time, shuffle all eight working variables
   every round. Slow on purpose — its only job is to be obviously
   correct. *)
module Reference : S = struct
  let name = "reference"
  let mask32 = 0xffffffff
  let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

  let k =
    [|
      0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
      0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
      0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
      0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
      0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
      0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
      0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
      0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
      0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
      0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
      0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
    |]

  let digest msg =
    let len = String.length msg in
    let padded_len = (((len + 8) / 64) + 1) * 64 in
    let m = Bytes.make padded_len '\000' in
    Bytes.blit_string msg 0 m 0 len;
    Bytes.set m len '\x80';
    let bitlen = len * 8 in
    for i = 0 to 7 do
      Bytes.set m (padded_len - 1 - i) (Char.chr ((bitlen lsr (8 * i)) land 0xff))
    done;
    let h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
        0x1f83d9ab; 0x5be0cd19;
      |]
    in
    let w = Array.make 64 0 in
    for blk = 0 to (padded_len / 64) - 1 do
      for t = 0 to 15 do
        let p = (blk * 64) + (4 * t) in
        w.(t) <-
          (Char.code (Bytes.get m p) lsl 24)
          lor (Char.code (Bytes.get m (p + 1)) lsl 16)
          lor (Char.code (Bytes.get m (p + 2)) lsl 8)
          lor Char.code (Bytes.get m (p + 3))
      done;
      for t = 16 to 63 do
        let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
        let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
        w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
      done;
      let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
      let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
      for t = 0 to 63 do
        let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
        let ch = !e land !f lxor (lnot !e land !g) in
        let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask32 in
        let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
        let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
        let t2 = (s0 + maj) land mask32 in
        hh := !g;
        g := !f;
        f := !e;
        e := (!d + t1) land mask32;
        d := !c;
        c := !b;
        b := !a;
        a := (t1 + t2) land mask32
      done;
      h.(0) <- (h.(0) + !a) land mask32;
      h.(1) <- (h.(1) + !b) land mask32;
      h.(2) <- (h.(2) + !c) land mask32;
      h.(3) <- (h.(3) + !d) land mask32;
      h.(4) <- (h.(4) + !e) land mask32;
      h.(5) <- (h.(5) + !f) land mask32;
      h.(6) <- (h.(6) + !g) land mask32;
      h.(7) <- (h.(7) + !hh) land mask32
    done;
    String.init 32 (fun i -> Char.chr ((h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xff))

  let rsa_pow ~m ~base ~exp = Bignum.mod_pow_classic base exp m
end

(* --- selection ----------------------------------------------------------- *)

let default : (module S) = (module Default)
let reference : (module S) = (module Reference)

(* One process-global choice (an [Atomic] so audit workers on other
   domains observe a switch); the fast paths test [is_default] by
   physical identity and only then take their batched shortcuts. *)
let selected : (module S) Atomic.t = Atomic.make default

let current () = Atomic.get selected
let set b = Atomic.set selected b
let is_default () = current () == default

let name () =
  let module B = (val current ()) in
  B.name

let with_backend b f =
  let prev = Atomic.get selected in
  Atomic.set selected b;
  Fun.protect ~finally:(fun () -> Atomic.set selected prev) f
