type certificate = { cname : string; ckey : Rsa.public_key; csig : string }
type ca = { ca_name : string; ca_keys : Rsa.keypair }
type t = { iname : string; keys : Rsa.keypair; cert : certificate }

let cert_payload name key =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w name;
  Avm_util.Wire.bytes w (Rsa.public_to_string key);
  Avm_util.Wire.contents w

let create_ca rng ?(bits = 768) ca_name = { ca_name; ca_keys = Rsa.generate rng ~bits }
let ca_public ca = ca.ca_keys.Rsa.public

let issue ca rng ?(bits = 768) iname =
  let keys = Rsa.generate rng ~bits in
  let csig = Rsa.sign ca.ca_keys.Rsa.private_ (cert_payload iname keys.Rsa.public) in
  { iname; keys; cert = { cname = iname; ckey = keys.Rsa.public; csig } }

let issue_like ca donor iname =
  let keys = donor.keys in
  let csig = Rsa.sign ca.ca_keys.Rsa.private_ (cert_payload iname keys.Rsa.public) in
  { iname; keys; cert = { cname = iname; ckey = keys.Rsa.public; csig } }

let name id = id.iname
let public_key id = id.keys.Rsa.public
let certificate id = id.cert
let sign id msg = Rsa.sign id.keys.Rsa.private_ msg
let cert_name c = c.cname
let cert_public_key c = c.ckey

let check_certificate ca_key cert =
  Rsa.verify ca_key ~msg:(cert_payload cert.cname cert.ckey) ~signature:cert.csig

let verify cert ~msg ~signature = Rsa.verify cert.ckey ~msg ~signature

let verify_batch items =
  Rsa.verify_batch
    (Array.map (fun (cert, msg, signature) -> (cert.ckey, msg, signature)) items)

let cert_to_string c =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w c.cname;
  Avm_util.Wire.bytes w (Rsa.public_to_string c.ckey);
  Avm_util.Wire.bytes w c.csig;
  Avm_util.Wire.contents w

let cert_of_string s =
  let r = Avm_util.Wire.reader s in
  let cname = Avm_util.Wire.read_bytes r in
  let ckey = Rsa.public_of_string (Avm_util.Wire.read_bytes r) in
  let csig = Avm_util.Wire.read_bytes r in
  Avm_util.Wire.expect_end r;
  { cname; ckey; csig }
