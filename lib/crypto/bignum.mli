(** Arbitrary-precision natural numbers.

    Little-endian arrays of 26-bit limbs; all products of two limbs fit
    comfortably in OCaml's 63-bit native ints. This is the arithmetic
    substrate for {!Rsa}; no external bignum library is available in
    this environment (see DESIGN.md §6).

    Values are non-negative. [sub a b] requires [a >= b]. *)

type t
(** A natural number. Structurally comparable with {!compare}. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Failure if the value exceeds [max_int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val sub_int : t -> int -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b]
    (Knuth Algorithm D).
    @raise Division_by_zero if [b] is zero. *)

val rem : t -> t -> t
val rem_int : t -> int -> int

val shift_left : t -> int -> t
(** [shift_left a bits] multiplies by [2^bits]. *)

val shift_right : t -> int -> t
(** [shift_right a bits] divides by [2^bits], truncating. *)

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val testbit : t -> int -> bool
(** [testbit a i] is bit [i] (little-endian). *)

val is_even : t -> bool

val mod_pow : t -> t -> t -> t
(** [mod_pow base exp m] is [base^exp mod m]. Odd moduli of at least
    two limbs go through {!Mont} (REDC with a 4-bit window); everything
    else falls back to {!mod_pow_classic}.
    @raise Division_by_zero if [m] is zero. *)

val mod_pow_classic : t -> t -> t -> t
(** Reference square-and-multiply with a full division after every
    step. Kept as the oracle the Montgomery path is tested against.
    @raise Division_by_zero if [m] is zero. *)

(** Montgomery-form modular exponentiation. A context precomputes
    [-m^-1 mod 2^26] and [R^2 mod m] for one odd modulus; callers that
    verify or sign repeatedly under the same key cache the context
    (see {!Rsa}) so each exponentiation pays no division at all. *)
module Mont : sig
  type ctx
  (** Precomputed state for one odd modulus of >= 2 limbs. *)

  val make : t -> ctx option
  (** [make m] is [None] when [m] is even or fits in a single limb
      (callers should use {!mod_pow_classic} there). *)

  val modulus : ctx -> t
  (** The modulus the context was built for. *)

  val pow : ctx -> t -> t -> t
  (** [pow ctx base exp] is [base^exp mod (modulus ctx)]. *)

  type scratch
  (** Reusable working storage for a run of exponentiations under one
      context: the REDC temporary and the Montgomery-form operands,
      allocated once per batch instead of once per call. *)

  val scratch : ctx -> scratch

  val pow_e65537 : ctx -> scratch -> t -> t
  (** [pow_e65537 ctx s b] is [b^65537 mod (modulus ctx)] for
      [b < modulus ctx], via the fixed 2{^16}+1 addition chain
      (sixteen squarings and one multiply) with all intermediates in
      caller-owned scratch — the amortized inner loop of
      {!Rsa.verify_batch}. *)
end

val mod_inv : t -> t -> t option
(** [mod_inv a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], else [None]. *)

val gcd : t -> t -> t

val of_bytes_be : string -> t
(** Big-endian byte decoding (leading zero bytes allowed). *)

val to_bytes_be : ?len:int -> t -> string
(** Big-endian byte encoding, zero-padded on the left to [len] when
    given.
    @raise Invalid_argument if the value does not fit in [len] bytes. *)

val blit_bytes_be : t -> Bytes.t -> int -> unit
(** [blit_bytes_be a b len] writes the [len]-byte big-endian encoding
    of [a] into [b.[0 .. len-1]], zero-padding on the left — the
    allocation-free form of {!to_bytes_be} for callers that reuse one
    output buffer across many encodings ({!Rsa.verify_batch}).
    @raise Invalid_argument if [a] does not fit in [len] bytes. *)

val to_hex : t -> string
val of_hex : string -> t

val random_bits : Avm_util.Rng.t -> int -> t
(** [random_bits rng n] is uniform in [\[0, 2^n)]. *)

val random_below : Avm_util.Rng.t -> t -> t
(** [random_below rng n] is uniform in [\[0, n)] by rejection.
    @raise Invalid_argument if [n] is zero. *)

val is_probable_prime : Avm_util.Rng.t -> ?rounds:int -> t -> bool
(** Trial division by small primes followed by Miller–Rabin with
    [rounds] (default 20) random bases. *)

val random_prime : Avm_util.Rng.t -> bits:int -> t
(** [random_prime rng ~bits] is a probable prime with exactly [bits]
    bits (top bit set).
    @raise Invalid_argument if [bits < 2]. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering. *)
