let block_size = 64

(* HMAC needs its own streaming context: the one-shot [Sha256.digest]
   helpers share a per-domain scratch, which must stay free for the
   key-shortening digest below. *)
let hmac_ctx = Domain.DLS.new_key (fun () -> Sha256.init ())

let mac ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let kl = String.length key in
  let ctx = Domain.DLS.get hmac_ctx in
  let pad = Bytes.create block_size in
  let fill_pad x =
    for i = 0 to block_size - 1 do
      let k = if i < kl then Char.code (String.unsafe_get key i) else 0 in
      Bytes.unsafe_set pad i (Char.unsafe_chr (k lxor x))
    done
  in
  fill_pad 0x36;
  Sha256.reset ctx;
  Sha256.feed_bytes ctx pad ~pos:0 ~len:block_size;
  Sha256.feed ctx msg;
  let inner = Sha256.finalize ctx in
  fill_pad 0x5c;
  Sha256.reset ctx;
  Sha256.feed_bytes ctx pad ~pos:0 ~len:block_size;
  Sha256.feed ctx inner;
  Sha256.finalize ctx

let hex ~key msg = Avm_util.Hex.encode (mac ~key msg)
