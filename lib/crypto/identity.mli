(** Certified identities (paper §4.1, assumption 3).

    Each party owns a keypair certified by a {!ca}; faulty machines
    cannot mint fresh identities. The CA here is the experiment's
    administrator key, standing in for whatever PKI deployment the
    paper assumes. *)

type ca
(** A certificate authority (the game administrator / platform owner). *)

type t
(** A certified identity: a name, a keypair, and the CA's certificate
    over (name, public key). *)

type certificate
(** The transferable part of an identity: name, public key, CA
    signature. *)

val create_ca : Avm_util.Rng.t -> ?bits:int -> string -> ca
(** [create_ca rng name] makes a CA (default 768-bit key). *)

val ca_public : ca -> Rsa.public_key

val issue : ca -> Avm_util.Rng.t -> ?bits:int -> string -> t
(** [issue ca rng name] creates an identity named [name] with a fresh
    keypair (default 768-bit) and a certificate from [ca]. *)

val issue_like : ca -> t -> string -> t
(** [issue_like ca donor name] certifies [name] over the {e donor's}
    keypair — no key generation, just one CA signature. Fleet-scale
    harnesses use a small pool of real keypairs shared across
    thousands of simulated identities: signatures stay real and
    per-identity certificates stay distinct, only the RSA keygen cost
    is amortized. Never share keys between mutually auditing parties
    in an adversarial experiment. *)

val name : t -> string
val public_key : t -> Rsa.public_key
val certificate : t -> certificate

val sign : t -> string -> string
(** [sign id msg] signs with the identity's private key. *)

val cert_name : certificate -> string
val cert_public_key : certificate -> Rsa.public_key

val check_certificate : Rsa.public_key -> certificate -> bool
(** [check_certificate ca_key cert] verifies the CA's signature over
    (name, public key). *)

val verify : certificate -> msg:string -> signature:string -> bool
(** [verify cert ~msg ~signature] checks a signature against the
    certified public key (the certificate itself should be checked
    once with {!check_certificate}). *)

val verify_batch : (certificate * string * string) array -> bool array
(** [verify_batch [| (cert, msg, signature); ... |]] is elementwise
    {!verify} through {!Rsa.verify_batch}, amortizing per-key setup
    across signatures under the same certificate. *)

val cert_to_string : certificate -> string
(** Wire encoding (name, public key, CA signature). *)

val cert_of_string : string -> certificate
(** Inverse of {!cert_to_string}.
    @raise Avm_util.Wire.Malformed on garbage. *)
