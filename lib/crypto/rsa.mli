(** RSA signatures over {!Bignum}.

    The paper's prototype uses 768-bit RSA keys (§6.2): the signatures
    only need to outlive the game by days, not years. Signing uses a
    PKCS#1 v1.5-style padding of the SHA-256 digest and the CRT
    optimization (exponentiation modulo p and q separately). Key
    generation is deterministic in the supplied {!Avm_util.Rng.t},
    which keeps every experiment reproducible; this is a simulation
    trade-off, not a security recommendation. *)

type public_key = { n : Bignum.t; e : Bignum.t }
(** Modulus and public exponent. *)

type private_key = {
  n : Bignum.t;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t;  (** d mod (p-1) *)
  dq : Bignum.t;  (** d mod (q-1) *)
  qinv : Bignum.t;  (** q^-1 mod p *)
}
(** Private key with CRT components. *)

type keypair = { public : public_key; private_ : private_key; bits : int }

val generate : Avm_util.Rng.t -> bits:int -> keypair
(** [generate rng ~bits] makes a fresh keypair with a [bits]-bit
    modulus ([e] = 65537).
    @raise Invalid_argument if [bits < 32]. *)

val signature_length : public_key -> int
(** Byte length of signatures under this key (= modulus length). *)

val sign : private_key -> string -> string
(** [sign key msg] is the signature of SHA-256([msg]), as
    [signature_length] bytes. *)

val verify : public_key -> msg:string -> signature:string -> bool
(** [verify key ~msg ~signature] checks a signature produced by
    {!sign}, through the selected {!Crypto_backend}. Malformed input
    verifies as [false], never raises. *)

val verify_batch : (public_key * string * string) array -> bool array
(** [verify_batch [| (key, msg, signature); ... |]] is exactly
    [Array.map (fun (k, m, s) -> verify k ~msg:m ~signature:s)] — each
    signature is verified individually (a combined product check is
    unsound without random blinding) — but amortizes the per-call
    setup across triples sharing a modulus: one Montgomery context and
    fingerprint lookup, one REDC scratch allocation, one output buffer
    per group, and the fixed e = 65537 addition chain
    ({!Bignum.Mont.pow_e65537}). {!Sigcache} hits are honored before
    any exponentiation, and successes are remembered, as in {!verify}.
    Under a non-default {!Crypto_backend} every element falls back to
    plain {!verify}. *)

val public_to_string : public_key -> string
(** Wire encoding of a public key (for certificates and tests). *)

val public_of_string : string -> public_key
(** Inverse of {!public_to_string}.
    @raise Avm_util.Wire.Malformed on garbage. *)
