module Metrics = Avm_obs.Metrics

type public_key = { n : Bignum.t; e : Bignum.t }

type private_key = {
  n : Bignum.t;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t;
  dq : Bignum.t;
  qinv : Bignum.t;
}

type keypair = { public : public_key; private_ : private_key; bits : int }

let e_value = Bignum.of_int 65537

let generate rng ~bits =
  if bits < 32 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Bignum.random_prime rng ~bits:half in
    let q = Bignum.random_prime rng ~bits:(bits - half) in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      let p1 = Bignum.sub p Bignum.one and q1 = Bignum.sub q Bignum.one in
      let phi = Bignum.mul p1 q1 in
      match (Bignum.mod_inv e_value phi, Bignum.mod_inv q p) with
      | Some d, Some qinv when Bignum.bit_length n = bits ->
        let dp = Bignum.rem d p1 and dq = Bignum.rem d q1 in
        { public = { n; e = e_value }; private_ = { n; d; p; q; dp; dq; qinv }; bits }
      | _ -> go ()
    end
  in
  go ()

let signature_length (key : public_key) = (Bignum.bit_length key.n + 7) / 8

(* EMSA-PKCS1-v1_5-style: 0x00 0x01 0xFF... 0x00 || digest. *)
let pad_digest ~len digest =
  if len < String.length digest + 11 then invalid_arg "Rsa: modulus too small for digest";
  let ff_len = len - String.length digest - 3 in
  String.concat "" [ "\x00\x01"; String.make ff_len '\xff'; "\x00"; digest ]

(* --- per-domain precomputation caches ------------------------------------ *)

(* Montgomery contexts, keyed by the physical identity of the modulus:
   a key's Bignum fields are stable for the key's lifetime, and audits
   verify thousands of signatures under a handful of keys, so a short
   association list probed by [==] makes the precomputed n', R^2 pair
   effectively "cached on the key" without widening the key types.
   Each domain keeps its own list (no locks); a structural miss just
   recomputes. *)
let mont_cache : (Bignum.t * Bignum.Mont.ctx option) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let mont_of (n : Bignum.t) =
  let cache = Domain.DLS.get mont_cache in
  let rec find = function
    | [] -> None
    | (m, c) :: _ when m == n -> Some c
    | _ :: rest -> find rest
  in
  match find !cache with
  | Some c -> c
  | None ->
    let c = Bignum.Mont.make n in
    cache := (n, c) :: (if List.length !cache >= 32 then [] else !cache);
    c

(* base^exp mod m through the cached Montgomery context. *)
let pow_mod ~m b e =
  match mont_of m with
  | Some c -> Bignum.Mont.pow c b e
  | None -> Bignum.mod_pow b e m

let public_to_string (key : public_key) =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w (Bignum.to_bytes_be key.n);
  Avm_util.Wire.bytes w (Bignum.to_bytes_be key.e);
  Avm_util.Wire.contents w

let public_of_string s =
  let r = Avm_util.Wire.reader s in
  let n = Bignum.of_bytes_be (Avm_util.Wire.read_bytes r) in
  let e = Bignum.of_bytes_be (Avm_util.Wire.read_bytes r) in
  Avm_util.Wire.expect_end r;
  { n; e }

(* Key fingerprints for the verified-signature cache, memoized per
   domain by physical identity like the Montgomery contexts. *)
let fp_cache : (public_key * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fingerprint (key : public_key) =
  let cache = Domain.DLS.get fp_cache in
  let rec find = function
    | [] -> None
    | (k, fp) :: _ when k == key -> Some fp
    | _ :: rest -> find rest
  in
  match find !cache with
  | Some fp -> fp
  | None ->
    let fp = Sha256.digest (public_to_string key) in
    cache := (key, fp) :: (if List.length !cache >= 32 then [] else !cache);
    fp

(* m^d mod n via the Chinese Remainder Theorem: two half-size
   exponentiations instead of one full-size one (~4x faster). *)
let private_power key m =
  let mp = pow_mod ~m:key.p (Bignum.rem m key.p) key.dp in
  let mq = pow_mod ~m:key.q (Bignum.rem m key.q) key.dq in
  (* h = qinv * (mp - mq) mod p; result = mq + h * q *)
  let diff =
    if Bignum.compare mp mq >= 0 then Bignum.sub mp mq
    else Bignum.sub key.p (Bignum.rem (Bignum.sub mq mp) key.p)
  in
  let h = Bignum.rem (Bignum.mul key.qinv diff) key.p in
  Bignum.add mq (Bignum.mul h key.q)

let sign (key : private_key) msg =
  Metrics.incr "crypto.rsa_signs";
  let len = (Bignum.bit_length key.n + 7) / 8 in
  let em = pad_digest ~len (Sha256.digest msg) in
  let m = Bignum.of_bytes_be em in
  Bignum.to_bytes_be ~len (private_power key m)

let verify (key : public_key) ~msg ~signature =
  let len = signature_length key in
  if String.length signature <> len then false
  else begin
    let digest = Sha256.digest msg in
    let fp = fingerprint key in
    if Sigcache.check ~fingerprint:fp ~signature ~digest then true
    else begin
      let s = Bignum.of_bytes_be signature in
      if Bignum.compare s key.n >= 0 then false
      else begin
        Metrics.incr "crypto.rsa_verifies";
        let m = pow_mod ~m:key.n s key.e in
        let ok = String.equal (Bignum.to_bytes_be ~len m) (pad_digest ~len digest) in
        if ok then Sigcache.remember ~fingerprint:fp ~signature ~digest;
        ok
      end
    end
  end
