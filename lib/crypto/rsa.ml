module Metrics = Avm_obs.Metrics

type public_key = { n : Bignum.t; e : Bignum.t }

type private_key = {
  n : Bignum.t;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t;
  dq : Bignum.t;
  qinv : Bignum.t;
}

type keypair = { public : public_key; private_ : private_key; bits : int }

let e_value = Bignum.of_int 65537

let generate rng ~bits =
  if bits < 32 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Bignum.random_prime rng ~bits:half in
    let q = Bignum.random_prime rng ~bits:(bits - half) in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      let p1 = Bignum.sub p Bignum.one and q1 = Bignum.sub q Bignum.one in
      let phi = Bignum.mul p1 q1 in
      match (Bignum.mod_inv e_value phi, Bignum.mod_inv q p) with
      | Some d, Some qinv when Bignum.bit_length n = bits ->
        let dp = Bignum.rem d p1 and dq = Bignum.rem d q1 in
        { public = { n; e = e_value }; private_ = { n; d; p; q; dp; dq; qinv }; bits }
      | _ -> go ()
    end
  in
  go ()

let signature_length (key : public_key) = (Bignum.bit_length key.n + 7) / 8

(* EMSA-PKCS1-v1_5-style: 0x00 0x01 0xFF... 0x00 || digest. *)
let pad_digest ~len digest =
  if len < String.length digest + 11 then invalid_arg "Rsa: modulus too small for digest";
  let ff_len = len - String.length digest - 3 in
  String.concat "" [ "\x00\x01"; String.make ff_len '\xff'; "\x00"; digest ]

(* The Montgomery context cache lives in {!Crypto_backend} (it is
   shared by the default backend, CRT signing and the batch path). *)
let pow_mod = Crypto_backend.pow_mod

let public_to_string (key : public_key) =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w (Bignum.to_bytes_be key.n);
  Avm_util.Wire.bytes w (Bignum.to_bytes_be key.e);
  Avm_util.Wire.contents w

let public_of_string s =
  let r = Avm_util.Wire.reader s in
  let n = Bignum.of_bytes_be (Avm_util.Wire.read_bytes r) in
  let e = Bignum.of_bytes_be (Avm_util.Wire.read_bytes r) in
  Avm_util.Wire.expect_end r;
  { n; e }

(* Key fingerprints for the verified-signature cache, memoized per
   domain by physical identity like the Montgomery contexts. *)
let fp_cache : (public_key * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fingerprint (key : public_key) =
  let cache = Domain.DLS.get fp_cache in
  let rec find = function
    | [] -> None
    | (k, fp) :: _ when k == key -> Some fp
    | _ :: rest -> find rest
  in
  match find !cache with
  | Some fp -> fp
  | None ->
    let fp = Sha256.digest (public_to_string key) in
    cache := (key, fp) :: (if List.length !cache >= 32 then [] else !cache);
    fp

(* m^d mod n via the Chinese Remainder Theorem: two half-size
   exponentiations instead of one full-size one (~4x faster). *)
let private_power key m =
  let mp = pow_mod ~m:key.p (Bignum.rem m key.p) key.dp in
  let mq = pow_mod ~m:key.q (Bignum.rem m key.q) key.dq in
  (* h = qinv * (mp - mq) mod p; result = mq + h * q *)
  let diff =
    if Bignum.compare mp mq >= 0 then Bignum.sub mp mq
    else Bignum.sub key.p (Bignum.rem (Bignum.sub mq mp) key.p)
  in
  let h = Bignum.rem (Bignum.mul key.qinv diff) key.p in
  Bignum.add mq (Bignum.mul h key.q)

let sign (key : private_key) msg =
  Metrics.incr "crypto.rsa_signs";
  let len = (Bignum.bit_length key.n + 7) / 8 in
  let em = pad_digest ~len (Sha256.digest msg) in
  let m = Bignum.of_bytes_be em in
  Bignum.to_bytes_be ~len (private_power key m)

(* Check that [m] encodes 0x00 0x01 0xFF.. 0x00 || digest without
   materializing either side: [m] is written into the caller's [buf]
   (sized to [len]) and compared field by field. *)
let em_matches buf ~len ~digest m =
  match Bignum.blit_bytes_be m buf len with
  | exception Invalid_argument _ -> false
  | () ->
    let dl = String.length digest in
    len >= dl + 11
    && Bytes.unsafe_get buf 0 = '\x00'
    && Bytes.unsafe_get buf 1 = '\x01'
    && Bytes.unsafe_get buf (len - dl - 1) = '\x00'
    && begin
         let ok = ref true in
         for i = 2 to len - dl - 2 do
           if Bytes.unsafe_get buf i <> '\xff' then ok := false
         done;
         let base = len - dl in
         for i = 0 to dl - 1 do
           if Bytes.unsafe_get buf (base + i) <> String.unsafe_get digest i then ok := false
         done;
         !ok
       end

(* Scratch output buffer for [em_matches], grown on demand; one per
   domain like the other verification scratch state. *)
let em_buf : Bytes.t ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref (Bytes.create 128))

let em_buf_for len =
  let b = Domain.DLS.get em_buf in
  if Bytes.length !b < len then b := Bytes.create len;
  !b

let verify (key : public_key) ~msg ~signature =
  let len = signature_length key in
  if String.length signature <> len then false
  else begin
    let module B = (val Crypto_backend.current ()) in
    let digest = B.digest msg in
    let fp = fingerprint key in
    if Sigcache.check ~fingerprint:fp ~signature ~digest then true
    else begin
      let s = Bignum.of_bytes_be signature in
      if Bignum.compare s key.n >= 0 then false
      else begin
        Metrics.incr "crypto.rsa_verifies";
        let m = B.rsa_pow ~m:key.n ~base:s ~exp:key.e in
        let ok = em_matches (em_buf_for len) ~len ~digest m in
        if ok then Sigcache.remember ~fingerprint:fp ~signature ~digest;
        ok
      end
    end
  end

(* --- batch verification -------------------------------------------------- *)

(* Verifying a chunk's signatures together amortizes everything that
   [verify] pays per call: the Montgomery context and fingerprint
   lookups are hoisted per group of triples sharing a modulus (probed
   by physical identity, as in {!Crypto_backend.mont_of}), one
   [Bignum.Mont.scratch] allocation serves the whole group, and keys
   with e = 65537 — every key this codebase generates — take the fixed
   addition-chain exponentiation [Bignum.Mont.pow_e65537] instead of
   the windowed general path. Each signature is still verified
   individually (a combined product check would be unsound without
   random blinding: two wrong signatures can cancel), so the result
   vector is byte-for-byte what per-signature [verify] returns and a
   failing index is pinpointed exactly. *)
let verify_batch (items : (public_key * string * string) array) =
  let n = Array.length items in
  let results = Array.make n false in
  if not (Crypto_backend.is_default ()) then begin
    (* A non-default backend must see one primitive call per
       signature; there is nothing sound to amortize on its behalf. *)
    Array.iteri
      (fun i (key, msg, signature) -> results.(i) <- verify key ~msg ~signature)
      items;
    results
  end
  else begin
    (* Pass 1: digests and cache probes; collect the misses. *)
    let misses = ref [] in
    for i = n - 1 downto 0 do
      let key, msg, signature = Array.unsafe_get items i in
      let len = signature_length key in
      if String.length signature = len then begin
        let digest = Sha256.digest msg in
        let fp = fingerprint key in
        if Sigcache.check ~fingerprint:fp ~signature ~digest then results.(i) <- true
        else misses := (i, key, digest, fp) :: !misses
      end
    done;
    (* Pass 2: group misses by modulus (physical identity) and verify
       each group under one hoisted context + scratch. *)
    let groups : (Bignum.t * (int * public_key * string * string) list ref) list ref = ref [] in
    List.iter
      (fun ((_, (key : public_key), _, _) as miss) ->
        let rec find = function
          | [] -> None
          | (m, cell) :: _ when m == key.n -> Some cell
          | _ :: rest -> find rest
        in
        match find !groups with
        | Some cell -> cell := miss :: !cell
        | None -> groups := (key.n, ref [ miss ]) :: !groups)
      (List.rev !misses);
    List.iter
      (fun ((modulus : Bignum.t), cell) ->
        let group = List.rev !cell in
        let len = (Bignum.bit_length modulus + 7) / 8 in
        let buf = em_buf_for len in
        let ctx = Crypto_backend.mont_of modulus in
        let scratch =
          match ctx with Some c -> Some (Bignum.Mont.scratch c) | None -> None
        in
        List.iter
          (fun (i, (key : public_key), digest, fp) ->
            let _, _, signature = Array.unsafe_get items i in
            let s = Bignum.of_bytes_be signature in
            if Bignum.compare s modulus < 0 then begin
              Metrics.incr "crypto.rsa_verifies";
              let m =
                match (ctx, scratch) with
                | Some c, Some sc when Bignum.equal key.e e_value ->
                  Bignum.Mont.pow_e65537 c sc s
                | Some c, _ -> Bignum.Mont.pow c s key.e
                | _ -> Bignum.mod_pow s key.e modulus
              in
              if em_matches buf ~len ~digest m then begin
                results.(i) <- true;
                Sigcache.remember ~fingerprint:fp ~signature ~digest
              end
            end)
          group)
      (List.rev !groups);
    Metrics.incr ~by:n "crypto.rsa_batched";
    results
  end
