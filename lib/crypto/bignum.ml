(* Little-endian arrays of [bits_per_limb]-bit limbs, normalized so the
   top limb is nonzero; zero is the empty array. Limb products fit in a
   native int: 2 * bits_per_limb + headroom < 63. *)

let bits_per_limb = 26
let base = 1 lsl bits_per_limb
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr bits_per_limb) in
  Array.of_list (limbs v)

let one = of_int 1
let two = of_int 2

let to_int a =
  let n = Array.length a in
  if n * bits_per_limb > 62 && n > 0 then begin
    (* May still fit; accumulate with overflow check. *)
    let v = ref 0 in
    for i = n - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr bits_per_limb then failwith "Bignum.to_int: overflow";
      v := (!v lsl bits_per_limb) lor a.(i)
    done;
    !v
  end
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl bits_per_limb) lor a.(i)
    done;
    !v
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x = if i < la then a.(i) else 0 in
    let y = if i < lb then b.(i) else 0 in
    let s = x + y + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr bits_per_limb
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let y = if i < lb then b.(i) else 0 in
    let d = a.(i) - y - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let add_int a v = if v >= 0 then add a (of_int v) else sub a (of_int (-v))
let sub_int a v = if v >= 0 then sub a (of_int v) else add a (of_int (-v))

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr bits_per_limb
      done;
      (* Propagate the final carry (may itself carry further). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr bits_per_limb;
        incr k
      done
    done;
    normalize r
  end

let mul_int a v = mul a (of_int v)

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * bits_per_limb) + width top 0
  end

let testbit a i =
  let limb = i / bits_per_limb and off = i mod bits_per_limb in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_even a = not (testbit a 0)

let shift_left a bits =
  if bits < 0 then invalid_arg "Bignum.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / bits_per_limb and bit_shift = bits mod bits_per_limb in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr bits_per_limb
    done;
    normalize r
  end

let shift_right a bits =
  if bits < 0 then invalid_arg "Bignum.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / bits_per_limb and bit_shift = bits mod bits_per_limb in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (bits_per_limb - bit_shift)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_limb a v =
  assert (v > 0 && v < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl bits_per_limb) lor a.(i) in
    q.(i) <- cur / v;
    rem := cur mod v
  done;
  (normalize q, !rem)

(* Knuth TAOCP vol. 2 Algorithm D (after Hacker's Delight divmnu). *)
let divmod_long u v =
  let n = Array.length v in
  let m = Array.length u - n in
  assert (n >= 2 && m >= 0);
  (* Normalize so the top limb of v has its high bit set. *)
  let rec leading_zeros x acc = if x land (base lsr 1) <> 0 then acc else leading_zeros (x lsl 1) (acc + 1) in
  let s = leading_zeros v.(n - 1) 0 in
  let vn = Array.make n 0 in
  for i = n - 1 downto 1 do
    let lo = if s = 0 then 0 else v.(i - 1) lsr (bits_per_limb - s) in
    vn.(i) <- ((v.(i) lsl s) lor lo) land limb_mask
  done;
  vn.(0) <- (v.(0) lsl s) land limb_mask;
  let un = Array.make (m + n + 1) 0 in
  un.(m + n) <- (if s = 0 then 0 else u.(m + n - 1) lsr (bits_per_limb - s));
  for i = m + n - 1 downto 1 do
    let lo = if s = 0 then 0 else u.(i - 1) lsr (bits_per_limb - s) in
    un.(i) <- ((u.(i) lsl s) lor lo) land limb_mask
  done;
  un.(0) <- (u.(0) lsl s) land limb_mask;
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl bits_per_limb) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base || !qhat * vn.(n - 2) > (!rhat lsl bits_per_limb) lor un.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Multiply and subtract. *)
    let k = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) in
      let t = un.(i + j) - !k - (p land limb_mask) in
      un.(i + j) <- t land limb_mask;
      k := (p lsr bits_per_limb) - (t asr bits_per_limb)
    done;
    let t = un.(j + n) - !k in
    un.(j + n) <- t land limb_mask;
    q.(j) <- !qhat;
    if t < 0 then begin
      (* qhat was one too large; add v back. *)
      q.(j) <- q.(j) - 1;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let t = un.(i + j) + vn.(i) + !carry in
        un.(i + j) <- t land limb_mask;
        carry := t lsr bits_per_limb
      done;
      un.(j + n) <- (un.(j + n) + !carry) land limb_mask
    end
  done;
  (* Denormalize the remainder. *)
  let r = Array.make n 0 in
  for i = 0 to n - 1 do
    let hi = if s = 0 then 0 else (un.(i + 1) lsl (bits_per_limb - s)) land limb_mask in
    r.(i) <- (un.(i) lsr s) lor hi
  done;
  (normalize q, normalize r)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else divmod_long a b

let rem a b = snd (divmod a b)

let rem_int a v =
  if v <= 0 then invalid_arg "Bignum.rem_int";
  if v < base then snd (divmod_limb a v) else to_int (rem a (of_int v))

let mod_pow_classic b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let result = ref one in
    let b = ref (rem b m) in
    let nbits = bit_length e in
    for i = 0 to nbits - 1 do
      if testbit e i then result := rem (mul !result !b) m;
      if i < nbits - 1 then b := rem (mul !b !b) m
    done;
    !result
  end

(* Montgomery-form modular arithmetic (REDC), the audit-side hot path
   behind RSA (DESIGN.md §12). A context precomputes, per odd modulus
   m of k limbs: n0' = -m^{-1} mod 2^26 and R^2 mod m where R = 2^(26k).
   [mul_into] computes REDC(a*b) = a*b*R^{-1} mod m with one schoolbook
   product and one reduction sweep — no Knuth long division — into
   caller-provided scratch, so a whole exponentiation allocates only a
   handful of k-limb arrays up front. *)
module Mont = struct
  type nonrec ctx = {
    m : t; (* modulus, normalized, length k *)
    k : int;
    n0' : int; (* -m^{-1} mod base *)
    r2 : int array; (* R^2 mod m, padded to k limbs *)
  }

  let modulus c = c.m

  (* Inverse of the odd low limb mod 2^26 by Newton iteration
     (x := x * (2 - m0*x) doubles the number of correct low bits;
     x = m0 is correct mod 8), then negated. *)
  let neg_inv_limb m0 =
    let x = ref m0 in
    for _ = 1 to 5 do
      let d = (2 - (m0 * !x)) land limb_mask in
      x := !x * d land limb_mask
    done;
    (base - !x) land limb_mask

  let pad k a =
    let r = Array.make k 0 in
    Array.blit a 0 r 0 (Array.length a);
    r

  let make m =
    if Array.length m < 2 || is_even m then None
    else begin
      let k = Array.length m in
      let r2 = rem (shift_left one (2 * k * bits_per_limb)) m in
      Some { m; k; n0' = neg_inv_limb m.(0); r2 = pad k r2 }
    end

  (* REDC of the double-width product sitting in [t] (2k+1 limbs):
     k sweeps each cancelling the lowest live limb, then
     dest <- t[k..2k-1] (- m if the result reached it). Shared tail of
     [mul_into] and [sqr_into]. *)
  let reduce_into ctx ~t ~dest =
    let k = ctx.k and n = ctx.m and n0' = ctx.n0' in
    for i = 0 to k - 1 do
      let mi = Array.unsafe_get t i * n0' land limb_mask in
      if mi <> 0 then begin
        let carry = ref 0 in
        for j = 0 to k - 1 do
          let x = Array.unsafe_get t (i + j) + (mi * Array.unsafe_get n j) + !carry in
          Array.unsafe_set t (i + j) (x land limb_mask);
          carry := x lsr bits_per_limb
        done;
        let idx = ref (i + k) in
        while !carry <> 0 do
          let x = Array.unsafe_get t !idx + !carry in
          Array.unsafe_set t !idx (x land limb_mask);
          carry := x lsr bits_per_limb;
          incr idx
        done
      end
    done;
    let ge =
      if t.((2 * k)) <> 0 then true
      else begin
        let rec cmp i =
          if i < 0 then true
          else begin
            let ti = Array.unsafe_get t (k + i) and ni = Array.unsafe_get n i in
            if ti <> ni then ti > ni else cmp (i - 1)
          end
        in
        cmp (k - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let d = Array.unsafe_get t (k + i) - Array.unsafe_get n i - !borrow in
        if d < 0 then begin
          Array.unsafe_set dest i (d + base);
          borrow := 1
        end
        else begin
          Array.unsafe_set dest i d;
          borrow := 0
        end
      done
    end
    else Array.blit t k dest 0 k

  (* dest <- REDC(a * b). [a], [b], [dest] have k limbs with values
     < m; [t] is scratch of 2k+1 limbs. [dest] may alias [a] and/or
     [b]: both operands are fully consumed (into [t]) before [dest] is
     written. *)
  let mul_into ctx ~t ~dest a b =
    let k = ctx.k in
    Array.fill t 0 ((2 * k) + 1) 0;
    (* t = a * b *)
    for i = 0 to k - 1 do
      let ai = Array.unsafe_get a i in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to k - 1 do
          let x = Array.unsafe_get t (i + j) + (ai * Array.unsafe_get b j) + !carry in
          Array.unsafe_set t (i + j) (x land limb_mask);
          carry := x lsr bits_per_limb
        done;
        Array.unsafe_set t (i + k) !carry
      end
    done;
    reduce_into ctx ~t ~dest

  (* Final step shared by the product-scanning routines below: [dest]
     holds (x + q*m)/R < 2m split across k limbs plus an overflow bit
     [hi]; bring it under m with at most one subtraction. *)
  let final_sub ctx ~dest hi =
    let k = ctx.k and n = ctx.m in
    let ge =
      hi <> 0
      ||
      let rec cmp i =
        if i < 0 then true
        else begin
          let di = Array.unsafe_get dest i and ni = Array.unsafe_get n i in
          if di <> ni then di > ni else cmp (i - 1)
        end
      in
      cmp (k - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let d = Array.unsafe_get dest i - Array.unsafe_get n i - !borrow in
        if d < 0 then begin
          Array.unsafe_set dest i (d + base);
          borrow := 1
        end
        else begin
          Array.unsafe_set dest i d;
          borrow := 0
        end
      done
    end

  (* base^exp mod m: plain left-to-right binary for short exponents,
     4-bit windows (15 precomputed odd-and-even powers) when the table
     cost amortizes — a 768-bit private exponent does ~206 multiplies
     instead of ~384. *)
  let pow ctx b e =
    let k = ctx.k in
    if is_zero e then rem one ctx.m
    else begin
      let b = rem b ctx.m in
      let t = Array.make ((2 * k) + 1) 0 in
      let bm = Array.make k 0 in
      mul_into ctx ~t ~dest:bm (pad k b) ctx.r2;
      let acc = Array.make k 0 in
      let nbits = bit_length e in
      if nbits <= 64 then begin
        Array.blit bm 0 acc 0 k;
        for i = nbits - 2 downto 0 do
          mul_into ctx ~t ~dest:acc acc acc;
          if testbit e i then mul_into ctx ~t ~dest:acc acc bm
        done
      end
      else begin
        let tbl = Array.init 16 (fun _ -> Array.make k 0) in
        Array.blit bm 0 tbl.(1) 0 k;
        for i = 2 to 15 do
          mul_into ctx ~t ~dest:tbl.(i) tbl.(i - 1) bm
        done;
        let nwin = (nbits + 3) / 4 in
        let started = ref false in
        for wdx = nwin - 1 downto 0 do
          if !started then
            for _ = 1 to 4 do
              mul_into ctx ~t ~dest:acc acc acc
            done;
          let lo = 4 * wdx in
          let nib =
            (if testbit e (lo + 3) then 8 else 0)
            lor (if testbit e (lo + 2) then 4 else 0)
            lor (if testbit e (lo + 1) then 2 else 0)
            lor if testbit e lo then 1 else 0
          in
          if nib <> 0 then begin
            if !started then mul_into ctx ~t ~dest:acc acc tbl.(nib)
            else begin
              Array.blit tbl.(nib) 0 acc 0 k;
              started := true
            end
          end
        done
      end;
      (* Leave Montgomery form: REDC(acc * 1). *)
      let one_limbs = Array.make k 0 in
      one_limbs.(0) <- 1;
      mul_into ctx ~t ~dest:acc acc one_limbs;
      normalize acc
    end

  (* Scratch for a run of exponentiations under one context: the REDC
     temporary, the Montgomery-form base, the accumulator and a
     one-in-limbs constant, allocated once and reused across a whole
     batch of signatures (DESIGN.md §17). *)
  type scratch = {
    s_q : int array; (* per-column reduction quotients, k limbs *)
    s_acc : int array;
    s_base : int array; (* base, padded to k limbs *)
  }

  let scratch ctx =
    let k = ctx.k in
    { s_q = Array.make k 0; s_acc = Array.make k 0; s_base = Array.make k 0 }

  (* Product-scanning (Comba) Montgomery multiply: one pass over the
     2k-1 columns of a*b, interleaving the reduction — each low column
     fixes its quotient limb q_col and is cancelled on the spot, each
     high column emits a result limb. The running column sum lives in
     one machine word (26-bit limbs leave ~2^10 headroom over the
     worst-case 2k products of 2^52 per column), so unlike [mul_into]
     there is no double-width temporary to fill, re-read and re-write.
     [dest] may alias [a] or [b]: limb [col-k] is dead in every later
     column by the time it is overwritten. *)
  let mul_mont ctx s ~dest a b =
    let k = ctx.k and n = ctx.m and n0' = ctx.n0' in
    let q = s.s_q in
    let acc = ref 0 in
    for col = 0 to k - 1 do
      let sum = ref !acc in
      for i = 0 to col do
        sum := !sum + (Array.unsafe_get a i * Array.unsafe_get b (col - i))
      done;
      for j = 0 to col - 1 do
        sum := !sum + (Array.unsafe_get q j * Array.unsafe_get n (col - j))
      done;
      let qc = !sum * n0' land limb_mask in
      Array.unsafe_set q col qc;
      acc := (!sum + (qc * Array.unsafe_get n 0)) lsr bits_per_limb
    done;
    for col = k to (2 * k) - 2 do
      let sum = ref !acc in
      for i = col - k + 1 to k - 1 do
        sum := !sum + (Array.unsafe_get a i * Array.unsafe_get b (col - i))
      done;
      for j = col - k + 1 to k - 1 do
        sum := !sum + (Array.unsafe_get q j * Array.unsafe_get n (col - j))
      done;
      Array.unsafe_set dest (col - k) (!sum land limb_mask);
      acc := !sum lsr bits_per_limb
    done;
    Array.unsafe_set dest (k - 1) (!acc land limb_mask);
    final_sub ctx ~dest (!acc lsr bits_per_limb)

  (* Product-scanning Montgomery squaring: as [mul_mont], but each
     column sums only the distinct cross products a_i*a_j (i < j),
     doubled in-register, plus the diagonal term — about half the
     multiply work. The 16 squarings of an e=65537 exponentiation all
     land here. *)
  let sqr_mont ctx s ~dest a =
    let k = ctx.k and n = ctx.m and n0' = ctx.n0' in
    let q = s.s_q in
    let acc = ref 0 in
    for col = 0 to k - 1 do
      let sum = ref 0 in
      (* pairs i < col-i; [asr] so col = 0 gives an empty range, not 0/2 *)
      for i = 0 to (col - 1) asr 1 do
        sum := !sum + (Array.unsafe_get a i * Array.unsafe_get a (col - i))
      done;
      let sum = ref ((!sum lsl 1) + !acc) in
      if col land 1 = 0 then begin
        let d = Array.unsafe_get a (col / 2) in
        sum := !sum + (d * d)
      end;
      for j = 0 to col - 1 do
        sum := !sum + (Array.unsafe_get q j * Array.unsafe_get n (col - j))
      done;
      let qc = !sum * n0' land limb_mask in
      Array.unsafe_set q col qc;
      acc := (!sum + (qc * Array.unsafe_get n 0)) lsr bits_per_limb
    done;
    for col = k to (2 * k) - 2 do
      let sum = ref 0 in
      for i = col - k + 1 to (col - 1) / 2 do
        sum := !sum + (Array.unsafe_get a i * Array.unsafe_get a (col - i))
      done;
      let sum = ref ((!sum lsl 1) + !acc) in
      if col land 1 = 0 then begin
        let d = Array.unsafe_get a (col / 2) in
        sum := !sum + (d * d)
      end;
      for j = col - k + 1 to k - 1 do
        sum := !sum + (Array.unsafe_get q j * Array.unsafe_get n (col - j))
      done;
      Array.unsafe_set dest (col - k) (!sum land limb_mask);
      acc := !sum lsr bits_per_limb
    done;
    Array.unsafe_set dest (k - 1) (!acc land limb_mask);
    final_sub ctx ~dest (!acc lsr bits_per_limb)

  (* [b]^65537 mod m for [b < m], through caller-owned scratch: the
     fixed 2^16 + 1 exponent is one to-Montgomery conversion, sixteen
     dedicated squarings ([sqr_mont]), and one closing multiply by the
     *plain* base — REDC(b^(2^16)*R * b) = b^(2^16+1) mod m, so the
     final multiply and the conversion out of Montgomery form collapse
     into a single step. No window table, no testbit walk, and no
     allocation beyond the normalized result. This is the whole
     per-signature cost of an RSA verification once the context and
     scratch are amortized across a batch. *)
  let pow_e65537 ctx s b =
    let k = ctx.k in
    Array.fill s.s_base 0 k 0;
    Array.blit b 0 s.s_base 0 (Array.length b);
    mul_mont ctx s ~dest:s.s_acc s.s_base ctx.r2;
    for _ = 1 to 16 do
      sqr_mont ctx s ~dest:s.s_acc s.s_acc
    done;
    mul_mont ctx s ~dest:s.s_acc s.s_acc s.s_base;
    let n = ref k in
    while !n > 0 && s.s_acc.(!n - 1) = 0 do
      decr n
    done;
    Array.sub s.s_acc 0 !n
end

let mod_pow b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    match Mont.make m with
    | Some c -> Mont.pow c b e
    | None -> mod_pow_classic b e m
  end

(* Extended Euclid on signed magnitudes, for modular inverses. *)
type signed = { neg : bool; mag : t }

let s_of t = { neg = false; mag = t }

let s_sub a b =
  (* a - b over signed values. *)
  match (a.neg, b.neg) with
  | false, false ->
    if compare a.mag b.mag >= 0 then { neg = false; mag = sub a.mag b.mag }
    else { neg = true; mag = sub b.mag a.mag }
  | true, true ->
    if compare b.mag a.mag >= 0 then { neg = false; mag = sub b.mag a.mag }
    else { neg = true; mag = sub a.mag b.mag }
  | false, true -> { neg = false; mag = add a.mag b.mag }
  | true, false -> { neg = not (is_zero (add a.mag b.mag)); mag = add a.mag b.mag }

let s_mul_nat a n = { a with mag = mul a.mag n }

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

let mod_inv a m =
  if is_zero m then invalid_arg "Bignum.mod_inv: zero modulus";
  let a = rem a m in
  (* Invariants: old_r = old_s*a (mod m), r = s*a (mod m). *)
  let rec go old_r r old_s s =
    if is_zero r then (old_r, old_s)
    else begin
      let q, rr = divmod old_r r in
      go r rr s (s_sub old_s (s_mul_nat s q))
    end
  in
  let g, x = go m a (s_of zero) (s_of one) in
  (* Here g = gcd(m, a) and x satisfies x*a = g (mod m) — note the
     argument order: we seeded old_r with m. *)
  if not (equal g one) then None
  else begin
    let v = rem x.mag m in
    Some (if x.neg && not (is_zero v) then sub m v else v)
  end

(* Byte conversions are single-pass bit accumulators (no per-byte
   shift/add over freshly allocated arrays): decoding packs 8 bits at a
   time into the limb being built, encoding drains limbs 8 bits at a
   time into the output buffer. Both are linear in the input size,
   which matters because every RSA verification decodes a signature
   and encodes a result. *)
let of_bytes_be s =
  let len = String.length s in
  if len = 0 then zero
  else begin
    let r = Array.make (((len * 8) + bits_per_limb - 1) / bits_per_limb) 0 in
    let acc = ref 0 and accbits = ref 0 and li = ref 0 in
    for i = len - 1 downto 0 do
      acc := !acc lor (Char.code (String.unsafe_get s i) lsl !accbits);
      accbits := !accbits + 8;
      if !accbits >= bits_per_limb then begin
        r.(!li) <- !acc land limb_mask;
        incr li;
        acc := !acc lsr bits_per_limb;
        accbits := !accbits - bits_per_limb
      end
    done;
    if !accbits > 0 then r.(!li) <- !acc;
    normalize r
  end

(* Drain [a]'s limbs big-endian into [b.[0 .. out_len-1]], zero-padded
   on the left. Shared by [to_bytes_be] and the batch-verify path that
   reuses one output buffer across a whole segment's signatures. *)
let blit_bytes_be a b out_len =
  let nbytes = (bit_length a + 7) / 8 in
  if nbytes > out_len then invalid_arg "Bignum.to_bytes_be: value too large";
  Bytes.fill b 0 (out_len - nbytes) '\000';
  let acc = ref 0 and accbits = ref 0 and li = ref 0 in
  let la = Array.length a in
  for i = out_len - 1 downto out_len - nbytes do
    if !accbits < 8 && !li < la then begin
      acc := !acc lor (Array.unsafe_get a !li lsl !accbits);
      accbits := !accbits + bits_per_limb;
      incr li
    end;
    Bytes.unsafe_set b i (Char.unsafe_chr (!acc land 0xff));
    acc := !acc lsr 8;
    accbits := max 0 (!accbits - 8)
  done

let to_bytes_be ?len a =
  let nbytes = (bit_length a + 7) / 8 in
  let out_len = match len with None -> max nbytes 1 | Some l -> l in
  let b = Bytes.create out_len in
  blit_bytes_be a b out_len;
  Bytes.unsafe_to_string b

let to_hex a = Avm_util.Hex.encode (to_bytes_be a)
let of_hex h = of_bytes_be (Avm_util.Hex.decode h)
let pp fmt a = Format.pp_print_string fmt (to_hex a)

let random_bits rng n =
  if n <= 0 then zero
  else begin
    let limbs = (n + bits_per_limb - 1) / bits_per_limb in
    let a = Array.init limbs (fun _ -> Avm_util.Rng.bits32 rng land limb_mask) in
    let extra = (limbs * bits_per_limb) - n in
    a.(limbs - 1) <- a.(limbs - 1) land (limb_mask lsr extra);
    normalize a
  end

let random_below rng n =
  if is_zero n then invalid_arg "Bignum.random_below: zero bound";
  let bits = bit_length n in
  let rec go () =
    let c = random_bits rng bits in
    if compare c n < 0 then c else go ()
  in
  go ()

let small_primes =
  (* Primes below 1000, for cheap trial division before Miller–Rabin. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let acc = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then acc := i :: !acc
  done;
  !acc

let is_probable_prime rng ?(rounds = 20) n =
  if compare n two < 0 then false
  else if equal n two then true
  else if is_even n then false
  else begin
    let small =
      List.exists
        (fun p ->
          match compare n (of_int p) with
          | 0 -> false (* n = p: prime, handled below *)
          | c when c < 0 -> false
          | _ -> rem_int n p = 0)
        small_primes
    in
    if List.exists (fun p -> equal n (of_int p)) small_primes then true
    else if small then false
    else begin
      (* n - 1 = d * 2^s with d odd. *)
      let n1 = sub n one in
      let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n1 0 in
      let witness () =
        let a = add two (random_below rng (sub n (of_int 4))) in
        let x = ref (mod_pow a d n) in
        if equal !x one || equal !x n1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to s - 1 do
               x := rem (mul !x !x) n;
               if equal !x n1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      in
      let rec rounds_left k = if k = 0 then true else if witness () then false else rounds_left (k - 1) in
      rounds_left rounds
    end
  end

let random_prime rng ~bits =
  if bits < 2 then invalid_arg "Bignum.random_prime: need >= 2 bits";
  let rec go () =
    (* Force the top bit (exact width) and the low bit (odd). *)
    let c = add (shift_left one (bits - 1)) (random_bits rng (bits - 1)) in
    let c = if is_even c then add c one else c in
    if is_probable_prime rng c then c else go ()
  in
  go ()
