(* SHA-256 over native ints; every 32-bit word is kept masked to
   [mask32] so the implementation is correct on 63-bit OCaml ints.

   The common path is allocation-free: contexts are resettable (the
   one-shot [digest]/[digest_list]/[digest_buffer] entry points reuse a
   per-domain scratch context), whole input blocks are scheduled
   straight from the caller's string/bytes without an intermediate
   copy, and finalization pads with a single fill instead of repeated
   feeds.

   The compression core is text-unrolled eight rounds at a time with
   the working variables rotating through fixed roles, so each round
   performs exactly two stores instead of the eight-way shuffle of the
   textbook loop. Rotations are expanded inline and left unmasked: the
   garbage above bit 31 that [lsl] introduces only ever feeds
   *additions*, whose carries propagate upward, so a single [land
   mask32] on each round's two results is sufficient. Whole blocks are
   consumed two per loop iteration in the feed drivers, which keeps
   the per-block overhead to one schedule fill and one direct call. *)

module Metrics = Avm_obs.Metrics

let mask32 = 0xffffffff

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  block : Bytes.t; (* 64-byte input block being filled *)
  mutable fill : int; (* bytes currently in [block] *)
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* 64-entry message schedule, reused *)
}

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

let init () =
  { h = Array.copy iv; block = Bytes.create 64; fill = 0; total = 0; w = Array.make 64 0 }

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.fill <- 0;
  ctx.total <- 0

(* Fill the first 16 schedule words from 64 source bytes starting at
   [off]; the variants differ only in the source container. *)
let fill_w_bytes w (b : Bytes.t) off =
  for i = 0 to 15 do
    let p = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get b p) lsl 24)
      lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get b (p + 3)))
  done

let fill_w_string w (s : string) off =
  for i = 0 to 15 do
    let p = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (String.unsafe_get s p) lsl 24)
      lor (Char.code (String.unsafe_get s (p + 1)) lsl 16)
      lor (Char.code (String.unsafe_get s (p + 2)) lsl 8)
      lor Char.code (String.unsafe_get s (p + 3)))
  done

(* One compression over the already-filled schedule [ctx.w].

   Round [r] of each unrolled group of eight assigns the textbook roles
   A..H to the working variables rotated by [r]; only D (+= t1) and H
   (:= t1 + t2) are written, so the group leaves the variables back in
   their round-0 roles. *)
let compress_core ctx =
  let w = ctx.w in
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) and w2 = Array.unsafe_get w (i - 2) in
    let s0 = ((w15 lsr 7) lor (w15 lsl 25)) lxor ((w15 lsr 18) lor (w15 lsl 14)) lxor (w15 lsr 3)
    and s1 = ((w2 lsr 17) lor (w2 lsl 15)) lxor ((w2 lsr 19) lor (w2 lsl 13)) lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1) land mask32)
  done;
  let h = ctx.h in
  let a = ref (Array.unsafe_get h 0)
  and b = ref (Array.unsafe_get h 1)
  and c = ref (Array.unsafe_get h 2)
  and d = ref (Array.unsafe_get h 3)
  and e = ref (Array.unsafe_get h 4)
  and f = ref (Array.unsafe_get h 5)
  and g = ref (Array.unsafe_get h 6)
  and hh = ref (Array.unsafe_get h 7) in
  for t = 0 to 7 do
    let i = t lsl 3 in
    (* r=0: A..H = a b c d e f g hh *)
    let x = !e in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!hh + s1 + (x land !f lxor (lnot x land !g)) + Array.unsafe_get k i + Array.unsafe_get w i)
      land mask32
    in
    let y = !a in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    d := (!d + t1) land mask32;
    hh := (t1 + s0 + (y land !b lxor (y land !c) lxor (!b land !c))) land mask32;
    (* r=1: A..H = hh a b c d e f g *)
    let x = !d in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!g + s1 + (x land !e lxor (lnot x land !f)) + Array.unsafe_get k (i + 1)
      + Array.unsafe_get w (i + 1))
      land mask32
    in
    let y = !hh in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    c := (!c + t1) land mask32;
    g := (t1 + s0 + (y land !a lxor (y land !b) lxor (!a land !b))) land mask32;
    (* r=2: A..H = g hh a b c d e f *)
    let x = !c in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!f + s1 + (x land !d lxor (lnot x land !e)) + Array.unsafe_get k (i + 2)
      + Array.unsafe_get w (i + 2))
      land mask32
    in
    let y = !g in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    b := (!b + t1) land mask32;
    f := (t1 + s0 + (y land !hh lxor (y land !a) lxor (!hh land !a))) land mask32;
    (* r=3: A..H = f g hh a b c d e *)
    let x = !b in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!e + s1 + (x land !c lxor (lnot x land !d)) + Array.unsafe_get k (i + 3)
      + Array.unsafe_get w (i + 3))
      land mask32
    in
    let y = !f in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    a := (!a + t1) land mask32;
    e := (t1 + s0 + (y land !g lxor (y land !hh) lxor (!g land !hh))) land mask32;
    (* r=4: A..H = e f g hh a b c d *)
    let x = !a in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!d + s1 + (x land !b lxor (lnot x land !c)) + Array.unsafe_get k (i + 4)
      + Array.unsafe_get w (i + 4))
      land mask32
    in
    let y = !e in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    hh := (!hh + t1) land mask32;
    d := (t1 + s0 + (y land !f lxor (y land !g) lxor (!f land !g))) land mask32;
    (* r=5: A..H = d e f g hh a b c *)
    let x = !hh in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!c + s1 + (x land !a lxor (lnot x land !b)) + Array.unsafe_get k (i + 5)
      + Array.unsafe_get w (i + 5))
      land mask32
    in
    let y = !d in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    g := (!g + t1) land mask32;
    c := (t1 + s0 + (y land !e lxor (y land !f) lxor (!e land !f))) land mask32;
    (* r=6: A..H = c d e f g hh a b *)
    let x = !g in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!b + s1 + (x land !hh lxor (lnot x land !a)) + Array.unsafe_get k (i + 6)
      + Array.unsafe_get w (i + 6))
      land mask32
    in
    let y = !c in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    f := (!f + t1) land mask32;
    b := (t1 + s0 + (y land !d lxor (y land !e) lxor (!d land !e))) land mask32;
    (* r=7: A..H = b c d e f g hh a *)
    let x = !f in
    let s1 = ((x lsr 6) lor (x lsl 26)) lxor ((x lsr 11) lor (x lsl 21)) lxor ((x lsr 25) lor (x lsl 7)) in
    let t1 =
      (!a + s1 + (x land !g lxor (lnot x land !hh)) + Array.unsafe_get k (i + 7)
      + Array.unsafe_get w (i + 7))
      land mask32
    in
    let y = !b in
    let s0 = ((y lsr 2) lor (y lsl 30)) lxor ((y lsr 13) lor (y lsl 19)) lxor ((y lsr 22) lor (y lsl 10)) in
    e := (!e + t1) land mask32;
    a := (t1 + s0 + (y land !c lxor (y land !d) lxor (!c land !d))) land mask32
  done;
  Array.unsafe_set h 0 ((Array.unsafe_get h 0 + !a) land mask32);
  Array.unsafe_set h 1 ((Array.unsafe_get h 1 + !b) land mask32);
  Array.unsafe_set h 2 ((Array.unsafe_get h 2 + !c) land mask32);
  Array.unsafe_set h 3 ((Array.unsafe_get h 3 + !d) land mask32);
  Array.unsafe_set h 4 ((Array.unsafe_get h 4 + !e) land mask32);
  Array.unsafe_set h 5 ((Array.unsafe_get h 5 + !f) land mask32);
  Array.unsafe_set h 6 ((Array.unsafe_get h 6 + !g) land mask32);
  Array.unsafe_set h 7 ((Array.unsafe_get h 7 + !hh) land mask32)

let compress ctx =
  fill_w_bytes ctx.w ctx.block 0;
  compress_core ctx

let feed_sub ctx s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Sha256.feed_sub";
  ctx.total <- ctx.total + len;
  let p = ref pos in
  let stop = pos + len in
  (* Top up a partial block first. *)
  if ctx.fill > 0 then begin
    let take = min (64 - ctx.fill) (stop - !p) in
    Bytes.blit_string s !p ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    p := !p + take;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  end;
  (* Whole blocks are scheduled straight from the source string, two
     per iteration on long inputs. *)
  let w = ctx.w in
  while stop - !p >= 128 do
    fill_w_string w s !p;
    compress_core ctx;
    fill_w_string w s (!p + 64);
    compress_core ctx;
    p := !p + 128
  done;
  if stop - !p >= 64 then begin
    fill_w_string w s !p;
    compress_core ctx;
    p := !p + 64
  end;
  if stop - !p > 0 then begin
    Bytes.blit_string s !p ctx.block 0 (stop - !p);
    ctx.fill <- stop - !p
  end

let feed ctx s = feed_sub ctx s ~pos:0 ~len:(String.length s)

let feed_bytes ctx b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg "Sha256.feed_bytes";
  ctx.total <- ctx.total + len;
  let p = ref pos in
  let stop = pos + len in
  if ctx.fill > 0 then begin
    let take = min (64 - ctx.fill) (stop - !p) in
    Bytes.blit b !p ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    p := !p + take;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  end;
  let w = ctx.w in
  while stop - !p >= 128 do
    fill_w_bytes w b !p;
    compress_core ctx;
    fill_w_bytes w b (!p + 64);
    compress_core ctx;
    p := !p + 128
  done;
  if stop - !p >= 64 then begin
    fill_w_bytes w b !p;
    compress_core ctx;
    p := !p + 64
  end;
  if stop - !p > 0 then begin
    Bytes.blit b !p ctx.block 0 (stop - !p);
    ctx.fill <- stop - !p
  end

(* Absorb a [Buffer.t] (e.g. a wire writer's accumulator) without
   materializing its contents: blocks are blitted straight from the
   buffer into the context. *)
let feed_buffer ctx b =
  let n = Buffer.length b in
  ctx.total <- ctx.total + n;
  let p = ref 0 in
  while !p < n do
    let take = min (64 - ctx.fill) (n - !p) in
    Buffer.blit b !p ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    p := !p + take;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done

(* The digest counters are bumped once per finalize; going through
   [Metrics.incr]'s name lookup twice per 68-byte chain hash is
   measurable, so each domain caches direct refs to its shard cells. *)
let meters =
  Domain.DLS.new_key (fun () ->
      (Metrics.counter_ref "crypto.digest_bytes", Metrics.counter_ref "crypto.digests"))

let finalize ctx =
  let bit_len = ctx.total * 8 in
  let fill = ctx.fill in
  (* Padding: 0x80, zeros, 64-bit big-endian bit length — written with
     single fills, not byte-at-a-time feeds. *)
  Bytes.unsafe_set ctx.block fill '\x80';
  if fill >= 56 then begin
    if fill < 63 then Bytes.fill ctx.block (fill + 1) (63 - fill) '\000';
    compress ctx;
    Bytes.fill ctx.block 0 56 '\000'
  end
  else if fill < 55 then Bytes.fill ctx.block (fill + 1) (55 - fill) '\000';
  for i = 0 to 7 do
    Bytes.unsafe_set ctx.block (56 + i)
      (Char.unsafe_chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx;
  ctx.fill <- 0;
  let byte_meter, digest_meter = Domain.DLS.get meters in
  byte_meter := !byte_meter + ctx.total;
  incr digest_meter;
  let out = Bytes.create 32 in
  let h = ctx.h in
  for i = 0 to 7 do
    let v = Array.unsafe_get h i in
    Bytes.unsafe_set out (4 * i) (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 3) (Char.unsafe_chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

(* One scratch context per domain: the one-shot helpers below never
   run user code between [reset] and [finalize], so reuse is safe even
   though the helpers are called from every audit worker. *)
let scratch = Domain.DLS.new_key (fun () -> init ())

let digest s =
  let ctx = Domain.DLS.get scratch in
  reset ctx;
  feed ctx s;
  finalize ctx

let digest_list parts =
  let ctx = Domain.DLS.get scratch in
  reset ctx;
  List.iter (feed ctx) parts;
  finalize ctx

let digest_buffer b =
  let ctx = Domain.DLS.get scratch in
  reset ctx;
  feed_buffer ctx b;
  finalize ctx

let hex s = Avm_util.Hex.encode (digest s)
let digest_length = 32
