(** SHA-256 (FIPS 180-4), implemented from scratch.

    The AVMM design assumes a hash function that is pre-image,
    second-pre-image and collision resistant (paper §4.1, assumption 2).
    Hash chains, authenticators, Merkle snapshot trees and message
    digests all use this module.

    The module is engineered as an audit-side hot path (DESIGN.md §12):
    contexts are resettable and reusable, whole blocks are compressed
    straight from caller buffers, and the one-shot helpers run on a
    per-domain scratch context so the common case allocates nothing but
    the 32-byte result. Total input volume is recorded under the
    [crypto.digest_bytes] / [crypto.digests] metrics. *)

type ctx
(** Streaming hash state. *)

val init : unit -> ctx
(** Fresh state. *)

val reset : ctx -> unit
(** [reset ctx] returns the context to the freshly-initialized state so
    it can be reused without allocating a new one. *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs the bytes of [s]. *)

val feed_sub : ctx -> string -> pos:int -> len:int -> unit
(** [feed_sub ctx s ~pos ~len] absorbs [s.[pos .. pos+len-1]] without
    copying the slice out first.
    @raise Invalid_argument if the range is out of bounds. *)

val feed_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit
(** Like {!feed_sub} for a [Bytes.t] source. The bytes are read before
    the call returns, so the caller may mutate the buffer afterwards. *)

val feed_buffer : ctx -> Buffer.t -> unit
(** [feed_buffer ctx b] absorbs the current contents of [b] (e.g. a
    wire writer's accumulator) without materializing them as a
    string. *)

val finalize : ctx -> string
(** [finalize ctx] is the 32-byte digest. The context must be {!reset}
    before any further use. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 of [s]. *)

val digest_list : string list -> string
(** [digest_list parts] hashes the concatenation of [parts] without
    building it. *)

val digest_buffer : Buffer.t -> string
(** [digest_buffer b] hashes the current contents of [b] without
    materializing them as a string. *)

val hex : string -> string
(** [hex s] is the digest of [s] in lowercase hex (convenience for
    tests and display). *)

val digest_length : int
(** 32. *)
