(** Bounded, domain-safe cache of successful signature verifications.

    Spot checks, online audit, multi-auditor runs and repeated audit
    passes all re-verify the same authenticators under the same public
    keys; this cache lets {!Rsa.verify} answer those repeats with one
    hash lookup instead of a modular exponentiation.

    {b Soundness} (why a cache is acceptable for transferable
    evidence): verification is a pure function of the triple
    (public key, message digest, signature). Only triples that
    {e passed} full verification in this process are stored, keyed by
    (key fingerprint, signature bytes) and guarded by an exact digest
    comparison on lookup — so a hit replays a computation that already
    succeeded, and anything else (different digest, different
    signature, unknown key) falls through to the real check. The cache
    can therefore change only the cost, never the verdict, of an
    audit; [make crypto-smoke] asserts exactly that on a tampered log.

    Each domain owns a private shard: workers in a
    {!Avm_util.Domain_pool} populate their own shard with the
    authenticators of the chunks they audit, without locks. Entries
    are evicted FIFO once the shard exceeds the configured capacity.

    Hits and misses are counted under [crypto.sig_cache_hits] /
    [crypto.sig_cache_misses]. *)

val set_enabled : bool -> unit
(** Globally enable or disable the cache (default: enabled). Takes
    effect on every domain; disabling does not drop existing entries,
    it just bypasses them. *)

val is_enabled : unit -> bool

val set_capacity : int -> unit
(** Per-domain shard bound (default 8192 entries; clamped to >= 1). *)

val capacity : unit -> int

val clear : unit -> unit
(** Drop every entry of the {e calling} domain's shard. *)

val size : unit -> int
(** Number of entries in the calling domain's shard. *)

val check : fingerprint:string -> signature:string -> digest:string -> bool
(** [check] is [true] iff this exact (fingerprint, signature, digest)
    triple was previously {!remember}ed on this domain. *)

val remember : fingerprint:string -> signature:string -> digest:string -> unit
(** Record a verification that succeeded. Call only after a full
    verification has returned [true]. *)
