let page_size = 256
let mask32 = 0xffffffff

type t = {
  words : int array;
  dirty : bool array;
  mutable watch : (int -> old:int -> value:int -> unit) option;
}

exception Fault of int

let create ~words =
  let pages = (words + page_size - 1) / page_size in
  let pages = max pages 1 in
  { words = Array.make (pages * page_size) 0; dirty = Array.make pages false; watch = None }

let size m = Array.length m.words
let page_count m = Array.length m.dirty

let read m addr =
  if addr < 0 || addr >= Array.length m.words then raise (Fault addr);
  m.words.(addr)

let write m addr v =
  if addr < 0 || addr >= Array.length m.words then raise (Fault addr);
  (match m.watch with
  | None -> ()
  | Some hook -> hook addr ~old:m.words.(addr) ~value:(v land mask32));
  m.words.(addr) <- v land mask32;
  m.dirty.(addr / page_size) <- true

(* Bulk path: images are loaded before any watchpoint is attached, so
   skip the per-word hook/bounds machinery of [write]. *)
let load_image m image =
  let n = Array.length image in
  if n > Array.length m.words then raise (Fault n);
  Array.blit image 0 m.words 0 n;
  for i = 0 to n - 1 do
    let w = Array.unsafe_get m.words i in
    if w land mask32 <> w then Array.unsafe_set m.words i (w land mask32)
  done;
  if n > 0 then Array.fill m.dirty 0 (((n - 1) / page_size) + 1) true

let page_data m p =
  let base = p * page_size in
  String.init (page_size * 4) (fun i ->
      let w = m.words.(base + (i / 4)) in
      Char.chr ((w lsr (8 * (i mod 4))) land 0xff))

let set_page_data m p data =
  if String.length data <> page_size * 4 then invalid_arg "Memory.set_page_data: bad length";
  let base = p * page_size in
  for i = 0 to page_size - 1 do
    let b j = Char.code data.[(4 * i) + j] in
    m.words.(base + i) <- b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  done;
  m.dirty.(p) <- true

let dirty_pages m =
  let acc = ref [] in
  for p = Array.length m.dirty - 1 downto 0 do
    if m.dirty.(p) then acc := p :: !acc
  done;
  !acc

let clear_dirty m = Array.fill m.dirty 0 (Array.length m.dirty) false
let copy m = { words = Array.copy m.words; dirty = Array.copy m.dirty; watch = None }
let set_watch m hook = m.watch <- hook
