type t = {
  seq : int;
  at_icount : int;
  meta : string;
  pages : (int * string) list;
  full : bool;
  root : string;
  page_count : int;
}

type tracker = { mutable page_hashes : string array; mutable next_seq : int }

let tracker () = { page_hashes = [||]; next_seq = 0 }

let take tr machine =
  let mem = Machine.mem machine in
  let n = Memory.page_count mem in
  let full = tr.next_seq = 0 in
  if full then tr.page_hashes <- Array.make n "";
  if Array.length tr.page_hashes <> n then invalid_arg "Snapshot.take: machine changed";
  let changed = if full then List.init n (fun p -> p) else Memory.dirty_pages mem in
  let pages =
    List.map
      (fun p ->
        let data = Memory.page_data mem p in
        tr.page_hashes.(p) <- Avm_crypto.Merkle.leaf_hash data;
        (p, data))
      changed
  in
  Memory.clear_dirty mem;
  let tree = Avm_crypto.Merkle.of_leaf_hashes (Array.to_list tr.page_hashes) in
  let seq = tr.next_seq in
  tr.next_seq <- seq + 1;
  {
    seq;
    at_icount = Machine.icount machine;
    meta = Machine.serialize_meta machine;
    pages;
    full;
    root = Avm_crypto.Merkle.root tree;
    page_count = n;
  }

let state_digest t =
  Avm_crypto.Sha256.digest_list [ t.meta; t.root; string_of_int t.at_icount ]

let encode t =
  let open Avm_util in
  let w = Wire.writer () in
  Wire.varint w t.seq;
  Wire.varint w t.at_icount;
  Wire.bytes w t.meta;
  Wire.bool w t.full;
  Wire.bytes w t.root;
  Wire.varint w t.page_count;
  Wire.list w
    (fun w (p, data) ->
      Wire.varint w p;
      Wire.bytes w data)
    t.pages;
  Wire.contents w

let decode s =
  let open Avm_util in
  let r = Wire.reader s in
  let seq = Wire.read_varint r in
  let at_icount = Wire.read_varint r in
  let meta = Wire.read_bytes r in
  let full = Wire.read_bool r in
  let root = Wire.read_bytes r in
  let page_count = Wire.read_varint r in
  let pages =
    Wire.read_list r (fun r ->
        let p = Wire.read_varint r in
        let data = Wire.read_bytes r in
        (p, data))
  in
  Wire.expect_end r;
  { seq; at_icount; meta; pages; full; root; page_count }

let size_bytes t = String.length (encode t)

(* Snapshots with seq <= upto, in the ascending-seq order [materialize]
   applies them. Callers replaying many chunks should sort/filter once
   and slice prefixes rather than calling this per chunk. *)
let chain_upto snapshots upto =
  List.sort
    (fun a b -> compare a.seq b.seq)
    (List.filter (fun s -> s.seq <= upto) snapshots)

let materialize ?mem_words ~image chain =
  match chain with
  | [] -> invalid_arg "Snapshot.materialize: empty chain"
  | first :: _ ->
    let machine =
      match mem_words with
      | Some w -> Machine.create ~mem_words:w image
      | None -> Machine.create image
    in
    ignore first;
    let mem = Machine.mem machine in
    let last = List.fold_left (fun _ snap -> Some snap) None chain in
    List.iter
      (fun snap -> List.iter (fun (p, data) -> Memory.set_page_data mem p data) snap.pages)
      chain;
    (match last with
    | Some snap -> Machine.restore_meta machine snap.meta
    | None -> assert false);
    Memory.clear_dirty mem;
    machine

let merkle_of_machine machine =
  let mem = Machine.mem machine in
  let n = Memory.page_count mem in
  Avm_crypto.Merkle.of_leaves (List.init n (fun p -> Memory.page_data mem p))

let verify machine ~expected_root =
  String.equal (Avm_crypto.Merkle.root (merkle_of_machine machine)) expected_root
