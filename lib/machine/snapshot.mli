(** Incremental snapshots of AVM state with a Merkle hash tree
    (paper §4.4, "Snapshots").

    A {!tracker} caches per-page hashes so that taking a snapshot only
    re-hashes pages dirtied since the previous one. Each snapshot
    carries the pages that changed, the machine meta-state, and the
    Merkle root over {e all} pages at that instant; the AVMM records
    {!state_digest} in the tamper-evident log, and audits verify both
    downloaded snapshots and replayed executions against it. *)

type t = {
  seq : int;  (** 0-based snapshot number *)
  at_icount : int;  (** instruction count when taken *)
  meta : string;  (** {!Machine.serialize_meta} at that instant *)
  pages : (int * string) list;  (** pages changed since snapshot [seq-1] *)
  full : bool;  (** [true] for the first snapshot (all pages present) *)
  root : string;  (** Merkle root over all page hashes *)
  page_count : int;
}

type tracker

val tracker : unit -> tracker
(** A fresh tracker; its first {!take} produces a full snapshot. *)

val take : tracker -> Machine.t -> t
(** [take tr m] snapshots [m]'s current state and clears the memory
    dirty bits. Must be called with the same machine each time. *)

val state_digest : t -> string
(** [H(meta || root || at_icount)]: the value the AVMM logs. *)

val size_bytes : t -> int
(** Serialized size, the unit of Figure 9's transfer costs. *)

val encode : t -> string
val decode : string -> t
(** @raise Avm_util.Wire.Malformed on garbage. *)

val chain_upto : t list -> int -> t list
(** [chain_upto snapshots upto] is the snapshots with [seq <= upto] in
    ascending-seq order — the pre-filtered chain {!materialize}
    expects. Callers replaying many chunks should build the sorted
    chain once and slice prefixes instead of calling this per chunk. *)

val materialize : ?mem_words:int -> image:int array -> t list -> Machine.t
(** [materialize ~mem_words ~image chain] reconstructs the machine at
    the last snapshot of [chain] by starting from [image] and applying
    each snapshot's page deltas in order (the chain must be ascending
    and start with a full snapshot or cover every changed page since
    boot — see {!chain_upto}).
    @raise Invalid_argument on an empty chain. *)

val verify : Machine.t -> expected_root:string -> bool
(** [verify m ~expected_root] recomputes the Merkle root of [m]'s
    current memory and compares. Used by audits to authenticate
    downloaded state and replayed state against logged roots. *)

val merkle_of_machine : Machine.t -> Avm_crypto.Merkle.t
(** Full Merkle tree over the machine's pages — lets an auditor serve
    or check per-page inclusion proofs (partial-state audits,
    paper §7.3). *)
