(** A minimal JSON tree, printer and parser.

    The observability exports ({!Metrics.to_json}, {!Trace.to_json})
    build this tree and print it, so emitted files are valid by
    construction; the parser lets tests and the [avm_obs_check] smoke
    tool read them back without external dependencies. Numbers that
    JSON cannot represent ([nan], [infinity]) print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render; [indent] (default 2) pretty-prints, [indent = 0] is
    compact. *)

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on anything that is not a single JSON value. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; everything else is [None]. *)

val to_int_opt : t -> int option
val to_list_opt : t -> t list option
val to_string_opt : t -> string option
