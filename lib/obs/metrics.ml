module Stats = Avm_util.Stats

(* One shard per domain. A domain only ever touches its own shard (no
   locks on the write path); the registry mutex guards the shard list
   itself, which changes only when a new domain records its first
   metric, and serializes readers. *)
type shard = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, (int * float) ref) Hashtbl.t; (* (write seq, value) *)
  histograms : (string, Stats.t) Hashtbl.t;
}

let registry_mu = Mutex.create ()
let registry : shard list ref = ref []

(* Orders gauge writes across domains so a merged read can report the
   most recent one. *)
let gauge_seq = Atomic.make 0

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          counters = Hashtbl.create 32;
          gauges = Hashtbl.create 16;
          histograms = Hashtbl.create 16;
        }
      in
      Mutex.protect registry_mu (fun () -> registry := s :: !registry);
      s)

let shard () = Domain.DLS.get shard_key

let incr ?(by = 1) name =
  let s = shard () in
  match Hashtbl.find_opt s.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add s.counters name (ref by)

let counter_ref name =
  let s = shard () in
  match Hashtbl.find_opt s.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add s.counters name r;
    r

let set name value =
  let s = shard () in
  let stamped = (Atomic.fetch_and_add gauge_seq 1, value) in
  match Hashtbl.find_opt s.gauges name with
  | Some r -> r := stamped
  | None -> Hashtbl.add s.gauges name (ref stamped)

let observe name x =
  let s = shard () in
  match Hashtbl.find_opt s.histograms name with
  | Some st -> Stats.add st x
  | None ->
    let st = Stats.create () in
    Stats.add st x;
    Hashtbl.add s.histograms name st

let time name f =
  let t0 = Clock.now_s () in
  Fun.protect ~finally:(fun () -> observe name (Clock.now_s () -. t0)) f

(* --- reading ------------------------------------------------------------ *)

type histogram = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

let sorted_bindings merge tbls =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name v ->
          match Hashtbl.find_opt acc name with
          | Some prev -> Hashtbl.replace acc name (merge prev v)
          | None -> Hashtbl.replace acc name v)
        tbl)
    tbls;
  List.sort (fun (a, _) (b, _) -> compare a b) (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])

(* Histogram statistics are computed off the *sorted* merged samples,
   so two snapshots of the same data are identical no matter how the
   samples were scattered across shards (float addition is not
   associative; a fixed order makes it deterministic). *)
let summarize samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let st = Stats.create () in
  Array.iter (Stats.add st) a;
  {
    count = Stats.count st;
    total = Stats.total st;
    mean = Stats.mean st;
    min = Stats.min_value st;
    max = Stats.max_value st;
    p50 = Stats.percentile st 50.0;
    p90 = Stats.percentile st 90.0;
    p99 = Stats.percentile st 99.0;
  }

let snapshot () =
  let shards = Mutex.protect registry_mu (fun () -> !registry) in
  let counters =
    sorted_bindings (fun a b -> ref (!a + !b)) (List.map (fun (s : shard) -> s.counters) shards)
    |> List.filter_map (fun (k, r) ->
           (* [reset] zeroes counter cells in place (hot paths cache the
              refs); a counter still at zero has recorded nothing. *)
           if !r = 0 then None else Some (k, !r))
  in
  let gauges =
    sorted_bindings
      (fun a b -> if fst !a >= fst !b then a else b)
      (List.map (fun (s : shard) -> s.gauges) shards)
    |> List.map (fun (k, r) -> (k, snd !r))
  in
  let histograms =
    sorted_bindings
      (fun a b ->
        let m = Stats.create () in
        Stats.merge_into ~dst:m a;
        Stats.merge_into ~dst:m b;
        m)
      (List.map (fun (s : shard) -> s.histograms) shards)
    |> List.map (fun (k, st) -> (k, summarize (Stats.samples st)))
  in
  { counters; gauges; histograms }

let counter snap name =
  match List.assoc_opt name snap.counters with Some n -> n | None -> 0

let gauge snap name =
  match List.assoc_opt name snap.gauges with Some v -> v | None -> 0.0

let reset () =
  Mutex.protect registry_mu (fun () ->
      List.iter
        (fun (s : shard) ->
          (* Counter cells are zeroed in place, not dropped: hot paths
             hold direct refs obtained via [counter_ref]. *)
          Hashtbl.iter (fun _ r -> r := 0) s.counters;
          Hashtbl.reset s.gauges;
          Hashtbl.reset s.histograms)
        !registry)

(* --- export ------------------------------------------------------------- *)

let to_json snap =
  let histo h =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("total", Json.Float h.total);
        ("mean", Json.Float h.mean);
        ("min", Json.Float h.min);
        ("max", Json.Float h.max);
        ("p50", Json.Float h.p50);
        ("p90", Json.Float h.p90);
        ("p99", Json.Float h.p99);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.gauges));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, histo h)) snap.histograms));
    ]

let render_table snap =
  let g x = Printf.sprintf "%g" x in
  let counter_rows = List.map (fun (k, v) -> [ k; "counter"; string_of_int v; "" ]) snap.counters in
  let gauge_rows = List.map (fun (k, v) -> [ k; "gauge"; g v; "" ]) snap.gauges in
  let histo_rows =
    List.map
      (fun (k, h) ->
        [
          k;
          "histogram";
          string_of_int h.count;
          Printf.sprintf "mean=%s p50=%s p90=%s p99=%s max=%s" (g h.mean) (g h.p50) (g h.p90)
            (g h.p99) (g h.max);
        ])
      snap.histograms
  in
  Avm_util.Tablefmt.render
    ~header:[ "metric"; "kind"; "value"; "distribution" ]
    (counter_rows @ gauge_rows @ histo_rows)
