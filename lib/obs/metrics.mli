(** Process-global named metrics: counters, gauges and histograms.

    Writes go to a {e per-domain shard} (a [Domain.DLS] slot registered
    with the global registry on first use), so {!Avm_util.Domain_pool}
    workers record without taking any lock — the hot paths of the AVMM,
    the log and the parallel auditor all instrument themselves through
    this module. Reads ({!snapshot}) merge every shard:

    - counters sum across shards;
    - a gauge reports its most recently {!set} value (a global write
      sequence orders sets across domains);
    - histograms (built on {!Avm_util.Stats}) pool their samples, and
      the merged samples are sorted before any statistic is computed,
      so a snapshot is deterministic regardless of which domain
      recorded which sample.

    Metric names are dotted paths by convention ([audit.entries_checked],
    [log.segments_sealed]); the registry is flat. *)

val incr : ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use). *)

val counter_ref : string -> int ref
(** The calling domain's shard cell for counter [name] (created at 0 on
    first use). Innermost loops that bump the same counter millions of
    times a second ({!Avm_crypto.Sha256}, the signature cache) hold on
    to the ref and increment it directly, skipping the per-call shard
    lookup and name hash of {!incr}. The ref is only valid on the
    domain that obtained it — cache it in [Domain.DLS], never share it
    across domains. *)

val set : string -> float -> unit
(** Set a gauge. *)

val observe : string -> float -> unit
(** Record one histogram sample. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and {!observe}s its wall-clock duration in
    seconds under [name]. *)

(** {1 Reading} *)

type histogram = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * histogram) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Merge all shards. Safe to call while other domains are recording;
    concurrent updates may or may not be included. *)

val counter : snapshot -> string -> int
(** Value of a counter in a snapshot; 0 if absent. *)

val gauge : snapshot -> string -> float
(** Value of a gauge in a snapshot; 0.0 if absent. *)

val reset : unit -> unit
(** Zero every metric in every shard (test isolation, or the start of
    a measured phase). Concurrent writers should be quiescent. *)

val to_json : snapshot -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {..}}]. *)

val render_table : snapshot -> string
(** The {!Avm_core.Logstats}-style aligned text table. *)
