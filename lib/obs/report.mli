(** Combined observability export: one snapshot of {!Metrics} plus the
    retained {!Trace} spans, as the JSON document that
    [avm_audit --metrics FILE] / [avm_run --metrics FILE] write and
    that [BENCH_audit.json] embeds. *)

val to_json : unit -> Json.t
(** [{"counters": .., "gauges": .., "histograms": .., "spans": ..}] —
    the {!Metrics.to_json} fields plus {!Trace.to_json} under
    ["spans"]. *)

val write_file : string -> unit
(** Serialize {!to_json} (pretty-printed, trailing newline) to a file.
    @raise Sys_error on I/O failure. *)

val table : unit -> string
(** Human-readable summary: the {!Metrics.render_table} of the current
    snapshot, followed by a one-line span count. *)
