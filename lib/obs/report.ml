let to_json () =
  match Metrics.to_json (Metrics.snapshot ()) with
  | Json.Obj fields -> Json.Obj (fields @ [ ("spans", Trace.to_json ()) ])
  | other -> other

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n')

let table () =
  let snap = Metrics.snapshot () in
  let nspans = List.length (Trace.spans ()) in
  Printf.sprintf "%s\n%d trace span%s retained\n" (Metrics.render_table snap) nspans
    (if nspans = 1 then "" else "s")
