type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;
  dur_us : float;
  domain : int;
  depth : int;
  seq : int;
}

(* The ring holds the [capacity] most recent spans. Pushes are rare
   relative to metric increments (one per audit chunk, not one per log
   entry), so a single mutex is fine here where it would not be in
   Metrics. *)
let mu = Mutex.create ()
let capacity = ref 4096
let ring : span option array ref = ref (Array.make !capacity None)
let next = ref 0
let seq = Atomic.make 0

(* Nesting depth is tracked per domain: a worker's chunk span should
   not appear nested under whatever the coordinating domain happens to
   be doing. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let push s =
  Mutex.protect mu (fun () ->
      !ring.(!next mod Array.length !ring) <- Some s;
      incr next)

let with_span ~name ?(attrs = []) f =
  let depth = Domain.DLS.get depth_key in
  let d = !depth in
  depth := d + 1;
  let start_us = Clock.now_us () in
  let record () =
    depth := d;
    push
      {
        name;
        attrs;
        start_us;
        dur_us = Clock.now_us () -. start_us;
        domain = (Domain.self () :> int);
        depth = d;
        seq = Atomic.fetch_and_add seq 1;
      }
  in
  Fun.protect ~finally:record f

let spans () =
  let retained =
    Mutex.protect mu (fun () -> Array.to_list (Array.map Fun.id !ring))
    |> List.filter_map Fun.id
  in
  List.sort (fun a b -> compare a.seq b.seq) retained

let set_capacity n =
  let n = max 1 n in
  Mutex.protect mu (fun () ->
      capacity := n;
      ring := Array.make n None;
      next := 0)

let clear () =
  Mutex.protect mu (fun () ->
      ring := Array.make (Array.length !ring) None;
      next := 0)

let attrs_json attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)

let to_json () =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.String s.name);
             ("start_us", Json.Float s.start_us);
             ("dur_us", Json.Float s.dur_us);
             ("domain", Json.Int s.domain);
             ("depth", Json.Int s.depth);
             ("seq", Json.Int s.seq);
             ("attrs", attrs_json s.attrs);
           ])
       (spans ()))

let to_chrome_json () =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.String s.name);
             ("ph", Json.String "X");
             ("ts", Json.Float s.start_us);
             ("dur", Json.Float s.dur_us);
             ("pid", Json.Int 0);
             ("tid", Json.Int s.domain);
             ("args", attrs_json s.attrs);
           ])
       (spans ()))
