type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_nan x || Float.abs x = Float.infinity then "null"
  else begin
    (* Shortest representation that survives a round trip and stays
       valid JSON ("1." is not; force a digit after the point). *)
    let s = Printf.sprintf "%.12g" x in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  end

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad n = if indent > 0 then Buffer.add_string buf (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> error c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c ("expected " ^ word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then error c "truncated \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> error c ("bad \\u escape " ^ hex)
        in
        (* Code points outside latin-1 degrade to '?'; the observability
           exports only ever emit ASCII. *)
        Buffer.add_char buf (if code < 256 then Char.chr code else '?');
        c.pos <- c.pos + 4
      | _ -> error c "bad escape");
      c.pos <- c.pos + 1;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some x -> Float x
    | None -> error c ("bad number " ^ s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec go acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          go (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List (List.rev (v :: acc))
        | _ -> error c "expected , or ] in array"
      in
      go []
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let rec go acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          go (kv :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          Obj (List.rev (kv :: acc))
        | _ -> error c "expected , or } in object"
      in
      go []
    end
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage after value";
  v

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
