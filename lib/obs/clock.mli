(** The observability clock: host wall-clock time.

    Every timing field and span in {!Metrics} / {!Trace} uses this
    clock, never [Sys.time] — process CPU time over-counts wall-clock
    by roughly the worker count once a {!Avm_util.Domain_pool} is
    involved, which is exactly when measurements matter most. *)

val now_s : unit -> float
(** Seconds since the epoch, sub-microsecond resolution. *)

val now_us : unit -> float
(** Microseconds since the epoch. *)
