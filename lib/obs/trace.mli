(** Lightweight in-process tracing: timed, named spans in a bounded
    ring buffer.

    {!with_span} wraps a computation, records its wall-clock start and
    duration ({!Clock}), and files the finished span into a
    process-global ring. The ring is bounded ({!set_capacity}, default
    4096 spans): when it fills, the oldest spans are overwritten, so
    tracing a long audit costs O(capacity) memory no matter how many
    chunks it touches.

    Spans nest — each records the {!span.depth} of enclosing
    [with_span]s on the same domain — and carry the recording domain's
    id, so a parallel audit's per-chunk spans can be laid out one lane
    per worker in a trace viewer ({!to_chrome_json}). *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** wall-clock start, µs since the epoch *)
  dur_us : float;  (** wall-clock duration, µs *)
  domain : int;  (** id of the domain that ran the span *)
  depth : int;  (** nesting level within that domain, outermost = 0 *)
  seq : int;  (** global completion order *)
}

val with_span : name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** [with_span ~name f] runs [f], recording a span even if [f]
    raises. [attrs] are free-form key/value annotations (chunk index,
    entry counts, …). *)

val spans : unit -> span list
(** Retained spans, oldest first (completion order). *)

val set_capacity : int -> unit
(** Resize the ring, discarding retained spans. Capacity is clamped to
    at least 1. *)

val clear : unit -> unit
(** Drop all retained spans (capacity unchanged). *)

val to_json : unit -> Json.t
(** The retained spans as a JSON array of objects
    [{"name","start_us","dur_us","domain","depth","seq","attrs"}]. *)

val to_chrome_json : unit -> Json.t
(** The retained spans as a Chrome [trace_event] array (load in
    [chrome://tracing] or Perfetto): complete events ([ph = "X"]) with
    one [tid] per domain. *)
