(** Network topology: which peers each node addresses, and how guest
    dest ids map to node names.

    The legacy three-workstation experiments assume a full mesh in
    which guest dest id = global node index. A 10k-node fleet cannot:
    per-node peer lists must stay O(degree), both for [Net.create]
    cost and because {!Avm_core.Avmm} resolves dest ids with a list
    lookup on every send. A {!witness_graph} gives each node exactly
    the peers that audit it (PeerReview-style witness sets), so the
    whole communication structure is the accountability structure. *)

type t

val full_mesh : t
(** Everyone reaches everyone; guest dest id = node index. *)

val of_adjacency : int array array -> t
(** [of_adjacency adj]: node [i] addresses [adj.(i)] — guest dest id
    [s] on node [i] means global node [adj.(i).(s)]. Rows need not be
    symmetric.
    @raise Invalid_argument on self-edges or negative indices. *)

val witness_graph : seed:int64 -> nodes:int -> k:int -> t
(** Seeded witness assignment: node [i]'s row is [k] distinct peers
    drawn uniformly (never [i] itself), [k] clamped to [nodes - 1].
    Deterministic in [seed] — any party can re-derive who audits whom.
    @raise Invalid_argument if [nodes < 2] or [k < 1]. *)

val degree : t -> nodes:int -> int -> int
val neighbours : t -> nodes:int -> int -> int array

val witnesses_of : t -> nodes:int -> int -> int array
(** The audit set of node [i]: its adjacency row under a graph, all
    other nodes under a full mesh. *)

val peer_list : t -> names:string array -> int -> (int * string) list option
(** The (dest id, name) list for node [i]'s AVMM — [None] under a full
    mesh, where the caller shares one identity map across nodes
    instead of materializing N copies. *)
