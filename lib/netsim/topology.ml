(* Who can talk to whom, and under which guest-visible ids. *)

type t =
  | Full_mesh
  | Graph of int array array

let full_mesh = Full_mesh

let of_adjacency adj =
  Array.iteri
    (fun i neighbours ->
      Array.iter
        (fun j ->
          if j < 0 then invalid_arg "Topology.of_adjacency: negative node index";
          if j = i then invalid_arg "Topology.of_adjacency: node adjacent to itself")
        neighbours)
    adj;
  Graph (Array.map Array.copy adj)

(* Delegates to the accountability layer's assignment so that the
   communication graph and the audit graph are the same seeded draw. *)
let witness_graph ~seed ~nodes ~k =
  Graph (Avm_core.Witness.assign ~seed ~nodes ~k).Avm_core.Witness.sets

let degree t ~nodes i =
  match t with
  | Full_mesh -> nodes
  | Graph adj -> Array.length adj.(i)

let neighbours t ~nodes i =
  match t with
  | Full_mesh -> Array.init nodes (fun j -> j)
  | Graph adj -> Array.copy adj.(i)

let witnesses_of t ~nodes i =
  match t with
  | Full_mesh -> Array.init (nodes - 1) (fun j -> if j >= i then j + 1 else j)
  | Graph adj -> Array.copy adj.(i)

(* The (guest dest id -> node name) map a node's AVMM is created with.
   Under a full mesh every node shares one identity map, so the list is
   built once by the caller; under a graph each node gets its own small
   list whose ids are positions in its adjacency row. *)
let peer_list t ~names i =
  match t with
  | Full_mesh -> None
  | Graph adj -> Some (Array.to_list (Array.mapi (fun slot j -> (slot, names.(j))) adj.(i)))
