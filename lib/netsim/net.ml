open Avm_core
module Identity = Avm_crypto.Identity

type node = {
  name : string;
  index : int;
  avmm : Avmm.t;
  host : Host.t;
  ledger : Multiparty.t;
  mutable same_ht : bool;
  mutable isolated : bool;
  mutable crashed : bool;
}

let node_name n = n.name
let node_avmm n = n.avmm
let node_host n = n.host
let node_ledger n = n.ledger
let set_same_ht n b = n.same_ht <- b

type t = {
  sim : Sim.t;
  config : Config.t;
  mutable node_array : node array;
  certs : (string * Identity.certificate) list;
  idents : (string * Identity.t) list;
  ca_ : Identity.ca;
  latency_us : float;
  loss : float;
  faults : Faults.t;
  rng : Avm_util.Rng.t;
  retrans_every_us : float;
  peer_map : (int * string) list;
  mutable next_retrans_us : float;
  (* per-packet lookups were Array.to_list |> List.find / List.assoc —
     O(nodes) on every delivery; precomputed tables make them O(1) *)
  node_tbl : (string, node) Hashtbl.t;
  cert_tbl : (string, Identity.certificate) Hashtbl.t;
}

let nodes t = t.node_array
let node t i = t.node_array.(i)
let sim t = t.sim
let certificates t = t.certs
let identities t = t.idents
let ca t = t.ca_
let peers t = t.peer_map
let config t = t.config
let faults t = t.faults

let cert_of t name =
  match Hashtbl.find_opt t.cert_tbl name with Some c -> c | None -> raise Not_found

let node_of t name = Hashtbl.find t.node_tbl name

(* One fate per transmission: the legacy i.i.d. [loss] first (so
   existing callers keep their semantics), then the fault policy. *)
let packet_fate t =
  if t.loss > 0.0 && Avm_util.Rng.float t.rng 1.0 < t.loss then Faults.Dropped
  else Faults.decide t.faults t.rng ~now_us:(Sim.now t.sim)

(* Deliver an envelope to its destination and route the ack back, each
   leg subject to the fault policy. *)
let rec transmit t src_node env =
  if src_node.isolated || src_node.crashed then ()
  else begin
    let send_at = Float.max (Sim.now t.sim) (Avmm.now_us src_node.avmm) in
    Avm_obs.Metrics.incr "net.packets_sent";
    Avm_obs.Metrics.incr ~by:(Wireformat.envelope_wire_size env) "net.bytes_sent";
    match packet_fate t with
    | Faults.Dropped -> Avm_obs.Metrics.incr "net.packets_dropped"
    | Faults.Deliver legs ->
      List.iter
        (fun (leg : Faults.delivery) ->
          let env =
            if leg.Faults.corrupt then begin
              Avm_obs.Metrics.incr "net.faults.corrupted";
              Faults.corrupt_envelope t.rng env
            end
            else env
          in
          Sim.schedule t.sim
            ~at:(send_at +. t.latency_us +. leg.Faults.extra_delay_us)
            (fun () -> deliver_envelope t src_node env))
        legs
  end

and deliver_envelope t src_node env =
  let dst = node_of t env.Wireformat.dest in
  if not (dst.isolated || dst.crashed) then begin
    match Avmm.deliver dst.avmm env ~sender_cert:(cert_of t env.Wireformat.src) with
    | `Rejected _ -> Avm_obs.Metrics.incr "net.packets_rejected"
    | (`Ack ack | `Duplicate ack) as r ->
      Avm_obs.Metrics.incr "net.packets_delivered";
      (match r with
      | `Duplicate _ -> Avm_obs.Metrics.incr "net.packets_duplicate"
      | _ -> ());
      (* The receiver keeps the sender's authenticator. *)
      if Config.accountable t.config then
        Multiparty.record_auth dst.ledger env.Wireformat.auth;
      route_ack t src_node ack
  end

and route_ack t src_node ack =
  match packet_fate t with
  | Faults.Dropped -> Avm_obs.Metrics.incr "net.packets_dropped"
  | Faults.Deliver legs ->
    List.iter
      (fun (leg : Faults.delivery) ->
        let ack =
          if leg.Faults.corrupt then begin
            Avm_obs.Metrics.incr "net.faults.corrupted";
            Faults.corrupt_ack t.rng ack
          end
          else ack
        in
        Sim.after t.sim
          (t.latency_us +. leg.Faults.extra_delay_us)
          (fun () ->
            if not (src_node.isolated || src_node.crashed) then begin
              match
                Avmm.accept_ack src_node.avmm ack ~acker_cert:(cert_of t ack.Wireformat.acker)
              with
              | Ok () ->
                if Config.accountable t.config then
                  Multiparty.record_auth src_node.ledger ack.Wireformat.recv_auth
              | Error _ -> Avm_obs.Metrics.incr "net.acks_rejected"
            end))
      legs

(* Resend only what the per-envelope backoff schedule says is due; a
   crashed monitor does not sweep at all. *)
let retransmit_sweep t =
  Array.iter
    (fun n ->
      if not n.crashed then
        let due = Avmm.retransmit_due n.avmm ~now_us:(Sim.now t.sim) in
        List.iter (fun env -> transmit t n env) due)
    t.node_array

let schedule_faults t =
  let check_node w =
    if w.Faults.node < 0 || w.Faults.node >= Array.length t.node_array then
      invalid_arg "Net.create: fault window names an unknown node"
  in
  List.iter
    (fun (w : Faults.window) ->
      check_node w;
      let n = t.node_array.(w.Faults.node) in
      Sim.schedule t.sim ~at:w.Faults.from_us (fun () -> n.isolated <- true);
      Sim.schedule t.sim ~at:w.Faults.to_us (fun () -> n.isolated <- false))
    t.faults.Faults.partitions;
  List.iter
    (fun (w : Faults.window) ->
      check_node w;
      let n = t.node_array.(w.Faults.node) in
      Sim.schedule t.sim ~at:w.Faults.from_us (fun () ->
          n.crashed <- true;
          n.isolated <- true);
      Sim.schedule t.sim ~at:w.Faults.to_us (fun () ->
          n.crashed <- false;
          n.isolated <- false;
          (* Fail-stop restart: the guest did not execute during the
             outage; advance its virtual clock past it. *)
          Avmm.add_stall_us n.avmm (w.Faults.to_us -. w.Faults.from_us)))
    t.faults.Faults.crashes

let create ?(seed = 0xA1CEL) ?(latency_us = 30.0) ?(loss = 0.0) ?(faults = Faults.none)
    ?(rsa_bits = 768) ?retrans_every_us ?mem_words ~config ~images ~names () =
  if List.length images <> List.length names then
    invalid_arg "Net.create: images and names must have equal length";
  let retrans_every_us =
    (* The sweep only has to notice due envelopes promptly: sample the
       backoff schedule at twice its base rate unless overridden. *)
    match retrans_every_us with
    | Some p -> p
    | None -> Float.max 10_000.0 (config.Config.retrans_base_us /. 2.0)
  in
  let rng = Avm_util.Rng.create seed in
  let ca_ = Identity.create_ca rng ~bits:rsa_bits "avm-ca" in
  let idents = List.map (fun name -> (name, Identity.issue ca_ rng ~bits:rsa_bits name)) names in
  let certs = List.map (fun (name, id) -> (name, Identity.certificate id)) idents in
  let peer_map = List.mapi (fun i name -> (i, name)) names in
  let t =
    {
      sim = Sim.create ();
      config;
      node_array = [||];
      certs;
      idents;
      ca_;
      latency_us;
      loss;
      faults;
      rng;
      retrans_every_us;
      peer_map;
      next_retrans_us = retrans_every_us;
      node_tbl = Hashtbl.create 16;
      cert_tbl = Hashtbl.create 16;
    }
  in
  List.iter (fun (name, cert) -> Hashtbl.replace t.cert_tbl name cert) certs;
  let make_node index (name, image) =
    (* Recursive knot: the avmm's on_send needs the node record. *)
    let node_ref = ref None in
    let on_send env =
      match !node_ref with
      | Some n -> transmit t n env
      | None -> ()
    in
    let avmm =
      Avmm.create
        ~identity:(List.assoc name idents)
        ~config ~image ?mem_words ~peers:peer_map ~on_send ()
    in
    let n =
      {
        name;
        index;
        avmm;
        host = Host.create ();
        ledger = Multiparty.create ~self:name;
        same_ht = false;
        isolated = false;
        crashed = false;
      }
    in
    node_ref := Some n;
    Hashtbl.replace t.node_tbl name n;
    n
  in
  t.node_array <- Array.of_list (List.mapi make_node (List.combine names images));
  schedule_faults t;
  t

let run t ~until_us ?(slice_us = 10_000.0) () =
  let upi = Config.us_per_instr t.config in
  while Sim.now t.sim < until_us do
    let next = Float.min until_us (Sim.now t.sim +. slice_us) in
    Array.iter
      (fun n ->
        if not n.crashed then begin
          let stats = Avmm.run_slice n.avmm ~until_us:next in
          Host.charge_game n.host (float_of_int stats.Avmm.instructions *. upi);
          Host.charge_daemon n.host stats.Avmm.daemon_us;
          if n.same_ht then Avmm.add_stall_us n.avmm stats.Avmm.daemon_us
        end)
      t.node_array;
    Sim.run_until t.sim next;
    if Sim.now t.sim >= t.next_retrans_us then begin
      retransmit_sweep t;
      t.next_retrans_us <- t.next_retrans_us +. t.retrans_every_us
    end
  done

let queue_input t i event = Avmm.queue_input t.node_array.(i).avmm event
let isolate t i = t.node_array.(i).isolated <- true
let heal t i = t.node_array.(i).isolated <- false

let retransmissions t =
  Array.fold_left (fun acc n -> acc + Avmm.retransmissions_sent n.avmm) 0 t.node_array

let ping_rtts_us t ~samples =
  let cfg = t.config in
  let stats = Avm_util.Stats.create () in
  let base =
    (* Two wire crossings plus per-endpoint processing of the echo
       request and the echo reply. *)
    (2.0 *. t.latency_us) +. (4.0 *. Config.packet_process_us cfg)
  in
  let sig_path =
    (* Ping and pong are both signed and acked: 4 signatures generated
       and 4 verified on the critical path (paper §6.8). *)
    4.0 *. (Config.sign_cost_us cfg +. Config.verify_cost_us cfg)
  in
  for _ = 1 to samples do
    (* Scheduling jitter: small multiplicative noise plus a rare
       preemption tail for the 95th percentile. *)
    let jitter = 1.0 +. Avm_util.Rng.float t.rng 0.06 in
    let tail = if Avm_util.Rng.float t.rng 1.0 < 0.08 then Avm_util.Rng.float t.rng 0.35 else 0.0 in
    Avm_util.Stats.add stats ((base +. sig_path) *. (jitter +. tail))
  done;
  stats

let wire_kbps t i ~elapsed_us =
  let bytes = float_of_int (Avmm.bytes_sent_on_wire t.node_array.(i).avmm) in
  if elapsed_us <= 0.0 then 0.0 else bytes *. 8.0 /. (elapsed_us /. 1.0e6) /. 1000.0
