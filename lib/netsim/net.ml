open Avm_core
module Identity = Avm_crypto.Identity

type node = {
  name : string;
  index : int;
  avmm : Avmm.t;
  host : Host.t;
  ledger : Multiparty.t;
  mutable same_ht : bool;
  mutable isolated : bool;
}

let node_name n = n.name
let node_avmm n = n.avmm
let node_host n = n.host
let node_ledger n = n.ledger
let set_same_ht n b = n.same_ht <- b

type t = {
  sim : Sim.t;
  config : Config.t;
  mutable node_array : node array;
  certs : (string * Identity.certificate) list;
  idents : (string * Identity.t) list;
  ca_ : Identity.ca;
  latency_us : float;
  loss : float;
  rng : Avm_util.Rng.t;
  retrans_every_us : float;
  peer_map : (int * string) list;
  mutable next_retrans_us : float;
}

let nodes t = t.node_array
let node t i = t.node_array.(i)
let sim t = t.sim
let certificates t = t.certs
let identities t = t.idents
let ca t = t.ca_
let peers t = t.peer_map
let config t = t.config

let cert_of t name = List.assoc name t.certs
let node_of t name = Array.to_list t.node_array |> List.find (fun n -> n.name = name)

(* Deliver an envelope to its destination and route the ack back. *)
let rec transmit t src_node env =
  if src_node.isolated then ()
  else begin
    let send_at = Float.max (Sim.now t.sim) (Avmm.now_us src_node.avmm) in
    Avm_obs.Metrics.incr "net.packets_sent";
    Avm_obs.Metrics.incr ~by:(Wireformat.envelope_wire_size env) "net.bytes_sent";
    if t.loss = 0.0 || Avm_util.Rng.float t.rng 1.0 >= t.loss then
      Sim.schedule t.sim ~at:(send_at +. t.latency_us) (fun () ->
          let dst = node_of t env.Wireformat.dest in
          if not dst.isolated then begin
            match Avmm.deliver dst.avmm env ~sender_cert:(cert_of t env.Wireformat.src) with
            | `Rejected _ -> ()
            | `Ack ack | `Duplicate ack ->
              Avm_obs.Metrics.incr "net.packets_delivered";
              (* The receiver keeps the sender's authenticator. *)
              if Config.accountable t.config then
                Multiparty.record_auth dst.ledger env.Wireformat.auth;
              if t.loss = 0.0 || Avm_util.Rng.float t.rng 1.0 >= t.loss then
                Sim.after t.sim t.latency_us (fun () ->
                    if not src_node.isolated then begin
                      match
                        Avmm.accept_ack src_node.avmm ack ~acker_cert:(cert_of t ack.Wireformat.acker)
                      with
                      | Ok () ->
                        if Config.accountable t.config then
                          Multiparty.record_auth src_node.ledger ack.Wireformat.recv_auth
                      | Error _ -> ()
                    end)
              else Avm_obs.Metrics.incr "net.packets_dropped"
          end)
    else Avm_obs.Metrics.incr "net.packets_dropped"
  end

and retransmit_sweep t =
  Array.iter
    (fun n ->
      let stale = Avmm.unacked n.avmm ~older_than_us:(Sim.now t.sim -. t.retrans_every_us) in
      List.iter (fun env -> transmit t n env) stale)
    t.node_array

let create ?(seed = 0xA1CEL) ?(latency_us = 30.0) ?(loss = 0.0) ?(rsa_bits = 768)
    ?(retrans_every_us = 250_000.0) ?mem_words ~config ~images ~names () =
  if List.length images <> List.length names then
    invalid_arg "Net.create: images and names must have equal length";
  let rng = Avm_util.Rng.create seed in
  let ca_ = Identity.create_ca rng ~bits:rsa_bits "avm-ca" in
  let idents = List.map (fun name -> (name, Identity.issue ca_ rng ~bits:rsa_bits name)) names in
  let certs = List.map (fun (name, id) -> (name, Identity.certificate id)) idents in
  let peer_map = List.mapi (fun i name -> (i, name)) names in
  let t =
    {
      sim = Sim.create ();
      config;
      node_array = [||];
      certs;
      idents;
      ca_;
      latency_us;
      loss;
      rng;
      retrans_every_us;
      peer_map;
      next_retrans_us = retrans_every_us;
    }
  in
  let make_node index (name, image) =
    (* Recursive knot: the avmm's on_send needs the node record. *)
    let node_ref = ref None in
    let on_send env =
      match !node_ref with
      | Some n -> transmit t n env
      | None -> ()
    in
    let avmm =
      Avmm.create
        ~identity:(List.assoc name idents)
        ~config ~image ?mem_words ~peers:peer_map ~on_send ()
    in
    let n =
      {
        name;
        index;
        avmm;
        host = Host.create ();
        ledger = Multiparty.create ~self:name;
        same_ht = false;
        isolated = false;
      }
    in
    node_ref := Some n;
    n
  in
  t.node_array <- Array.of_list (List.mapi make_node (List.combine names images));
  t

let run t ~until_us ?(slice_us = 10_000.0) () =
  let upi = Config.us_per_instr t.config in
  while Sim.now t.sim < until_us do
    let next = Float.min until_us (Sim.now t.sim +. slice_us) in
    Array.iter
      (fun n ->
        let stats = Avmm.run_slice n.avmm ~until_us:next in
        Host.charge_game n.host (float_of_int stats.Avmm.instructions *. upi);
        Host.charge_daemon n.host stats.Avmm.daemon_us;
        if n.same_ht then Avmm.add_stall_us n.avmm stats.Avmm.daemon_us)
      t.node_array;
    Sim.run_until t.sim next;
    if Sim.now t.sim >= t.next_retrans_us then begin
      retransmit_sweep t;
      t.next_retrans_us <- t.next_retrans_us +. t.retrans_every_us
    end
  done

let queue_input t i event = Avmm.queue_input t.node_array.(i).avmm event
let isolate t i = t.node_array.(i).isolated <- true
let heal t i = t.node_array.(i).isolated <- false

let ping_rtts_us t ~src ~dst ~samples =
  ignore src;
  ignore dst;
  let cfg = t.config in
  let stats = Avm_util.Stats.create () in
  let base =
    (* Two wire crossings plus per-endpoint processing of the echo
       request and the echo reply. *)
    (2.0 *. t.latency_us) +. (4.0 *. Config.packet_process_us cfg)
  in
  let sig_path =
    (* Ping and pong are both signed and acked: 4 signatures generated
       and 4 verified on the critical path (paper §6.8). *)
    4.0 *. (Config.sign_cost_us cfg +. Config.verify_cost_us cfg)
  in
  for _ = 1 to samples do
    (* Scheduling jitter: small multiplicative noise plus a rare
       preemption tail for the 95th percentile. *)
    let jitter = 1.0 +. Avm_util.Rng.float t.rng 0.06 in
    let tail = if Avm_util.Rng.float t.rng 1.0 < 0.08 then Avm_util.Rng.float t.rng 0.35 else 0.0 in
    Avm_util.Stats.add stats ((base +. sig_path) *. (jitter +. tail))
  done;
  stats

let wire_kbps t i ~elapsed_us =
  let bytes = float_of_int (Avmm.bytes_sent_on_wire t.node_array.(i).avmm) in
  if elapsed_us <= 0.0 then 0.0 else bytes *. 8.0 /. (elapsed_us /. 1.0e6) /. 1000.0
