open Avm_core
module Identity = Avm_crypto.Identity

type node = {
  name : string;
  index : int;
  avmm : Avmm.t;
  host : Host.t;
  ledger : Multiparty.t;
  peer_list : (int * string) list; (* this node's guest dest-id map *)
  mutable same_ht : bool;
  mutable isolated : bool;
  mutable crashed : bool;
  mutable two_faced : bool; (* inside a Faults fork window: equivocating *)
  (* Self-scheduling state. Each node owns at most one live slice
     event, one live retransmit event and one live wake event in the
     heap; generation counters invalidate superseded closures (the
     heap has no delete). [infinity] = nothing scheduled. *)
  mutable slice_gen : int;
  mutable next_slice_at : float;
  mutable retrans_gen : int;
  mutable retrans_at : float;
  mutable wake_at : float;
}

let node_name n = n.name
let node_index n = n.index
let node_avmm n = n.avmm
let node_host n = n.host
let node_ledger n = n.ledger
let set_same_ht n b = n.same_ht <- b

type t = {
  sim : Sim.t;
  config : Config.t;
  mutable node_array : node array;
  certs : (string * Identity.certificate) list;
  idents : (string * Identity.t) list;
  ca_ : Identity.ca;
  topology : Topology.t;
  latency_us : float;
  loss : float;
  faults : Faults.t;
  rng : Avm_util.Rng.t;
  mutable slice_us : float;
  peer_map : (int * string) list; (* global index -> name *)
  node_tbl : (string, node) Hashtbl.t;
  cert_tbl : (string, Identity.certificate) Hashtbl.t;
}

let nodes t = t.node_array
let node t i = t.node_array.(i)
let sim t = t.sim
let certificates t = t.certs
let identities t = t.idents
let ca t = t.ca_
let peers t = t.peer_map
let peers_of t i = t.node_array.(i).peer_list
let topology t = t.topology
let config t = t.config
let faults t = t.faults

let cert_of t name =
  match Hashtbl.find_opt t.cert_tbl name with Some c -> c | None -> raise Not_found

let node_of t name = Hashtbl.find t.node_tbl name
let runnable n = (not n.crashed) && not (Avmm.halted n.avmm)

(* One fate per transmission: the legacy i.i.d. [loss] first (so
   existing callers keep their semantics), then the fault policy. *)
let packet_fate t =
  if t.loss > 0.0 && Avm_util.Rng.float t.rng 1.0 < t.loss then Faults.Dropped
  else Faults.decide t.faults t.rng ~now_us:(Sim.now t.sim)

(* --- Self-scheduling ---------------------------------------------------
   A node posts its own next run_slice into the heap; a parked (SLEEP),
   halted or crashed node posts nothing, so an idle node costs zero
   events and an active one O(log n) per event. Ties in the heap break
   on insertion order, which keeps same-seed runs bit-identical. *)

let rec schedule_slice t n ~at =
  if at < n.next_slice_at then begin
    n.slice_gen <- n.slice_gen + 1;
    n.next_slice_at <- at;
    let gen = n.slice_gen in
    Sim.schedule t.sim ~at (fun () ->
        if gen = n.slice_gen then begin
          n.next_slice_at <- infinity;
          if not n.crashed then begin
            advance_node t n ~until_us:(Sim.now t.sim);
            chain t n
          end
        end)
  end

and chain t n =
  if runnable n then
    match Avmm.sleeping_until n.avmm with
    | None -> schedule_slice t n ~at:(Sim.now t.sim +. t.slice_us)
    | Some deadline when deadline < infinity -> schedule_wake t n ~at:deadline
    | Some _ -> () (* parked until a packet or input arrives *)

and schedule_wake t n ~at =
  if n.wake_at = infinity then begin
    n.wake_at <- at;
    Sim.schedule t.sim ~at (fun () ->
        n.wake_at <- infinity;
        if not n.crashed then
          match Avmm.sleeping_until n.avmm with
          | Some d when d <= Sim.now t.sim ->
            Avmm.wake n.avmm ~now_us:(Sim.now t.sim);
            schedule_slice t n ~at:(Sim.now t.sim)
          | Some d when d < infinity -> schedule_wake t n ~at:d
          | _ -> ())
  end

and advance_node t n ~until_us =
  let stats = Avmm.run_slice n.avmm ~until_us in
  Host.charge_game n.host (float_of_int stats.Avmm.instructions *. Config.us_per_instr t.config);
  Host.charge_daemon n.host stats.Avmm.daemon_us;
  if n.same_ht then Avmm.add_stall_us n.avmm stats.Avmm.daemon_us;
  (* Only fresh sends can move the node's earliest backoff deadline
     earlier; everything else is picked up when the pending retransmit
     event fires and re-arms itself. *)
  if stats.Avmm.sends > 0 then update_retrans t n

(* Per-node retransmit events, at the cadence of the node's own
   backoff state: the global periodic sweep (and its drift-prone
   next_retrans_us clock) is gone. *)
and update_retrans t n =
  let due = Avmm.next_retrans_at n.avmm in
  if due < n.retrans_at then begin
    n.retrans_gen <- n.retrans_gen + 1;
    n.retrans_at <- due;
    let gen = n.retrans_gen in
    Sim.schedule t.sim ~at:due (fun () ->
        if gen = n.retrans_gen then begin
          n.retrans_at <- infinity;
          if not n.crashed then begin
            let due = Avmm.retransmit_due n.avmm ~now_us:(Sim.now t.sim) in
            List.iter (fun env -> transmit t n env) due;
            update_retrans t n
          end
        end)
  end

(* Deliver an envelope to its destination and route the ack back, each
   leg subject to the fault policy. *)
and transmit t src_node env =
  if src_node.isolated || src_node.crashed then ()
  else begin
    let send_at = Float.max (Sim.now t.sim) (Avmm.now_us src_node.avmm) in
    Avm_obs.Metrics.incr "net.packets_sent";
    Avm_obs.Metrics.incr ~by:(Wireformat.envelope_wire_size env) "net.bytes_sent";
    match packet_fate t with
    | Faults.Dropped -> Avm_obs.Metrics.incr "net.packets_dropped"
    | Faults.Deliver legs ->
      List.iter
        (fun (leg : Faults.delivery) ->
          let env =
            if leg.Faults.corrupt then begin
              Avm_obs.Metrics.incr "net.faults.corrupted";
              Faults.corrupt_envelope t.rng env
            end
            else env
          in
          Sim.schedule t.sim
            ~at:(send_at +. t.latency_us +. leg.Faults.extra_delay_us)
            (fun () -> deliver_envelope t src_node env))
        legs
  end

and deliver_envelope t src_node env =
  let dst = node_of t env.Wireformat.dest in
  if not (dst.isolated || dst.crashed) then begin
    match Avmm.deliver dst.avmm env ~sender_cert:(cert_of t env.Wireformat.src) with
    | `Rejected _ -> Avm_obs.Metrics.incr "net.packets_rejected"
    | (`Ack ack | `Duplicate ack) as r ->
      Avm_obs.Metrics.incr "net.packets_delivered";
      (match r with
      | `Duplicate _ -> Avm_obs.Metrics.incr "net.packets_duplicate"
      | `Ack _ ->
        (* A fresh packet raises the NIC interrupt: unpark a sleeping
           guest so it handles the data now, not at some sweep. *)
        if Avmm.sleeping_until dst.avmm <> None then begin
          Avmm.wake dst.avmm ~now_us:(Sim.now t.sim);
          schedule_slice t dst ~at:(Sim.now t.sim)
        end);
      (* The receiver keeps the sender's authenticator. *)
      if Config.accountable t.config then
        Multiparty.record_auth dst.ledger env.Wireformat.auth;
      route_ack t src_node ack
  end

and route_ack t src_node ack =
  match packet_fate t with
  | Faults.Dropped -> Avm_obs.Metrics.incr "net.packets_dropped"
  | Faults.Deliver legs ->
    List.iter
      (fun (leg : Faults.delivery) ->
        let ack =
          if leg.Faults.corrupt then begin
            Avm_obs.Metrics.incr "net.faults.corrupted";
            Faults.corrupt_ack t.rng ack
          end
          else ack
        in
        Sim.after t.sim
          (t.latency_us +. leg.Faults.extra_delay_us)
          (fun () ->
            if not (src_node.isolated || src_node.crashed) then begin
              match
                Avmm.accept_ack src_node.avmm ack ~acker_cert:(cert_of t ack.Wireformat.acker)
              with
              | Ok () ->
                if Config.accountable t.config then
                  Multiparty.record_auth src_node.ledger ack.Wireformat.recv_auth
              | Error _ -> Avm_obs.Metrics.incr "net.acks_rejected"
            end))
      legs

(* Re-arm a node that may have been parked: external input, packet, or
   crash-heal. *)
let nudge t n =
  if runnable n then begin
    if Avmm.sleeping_until n.avmm <> None then Avmm.wake n.avmm ~now_us:(Sim.now t.sim);
    if n.next_slice_at = infinity then schedule_slice t n ~at:(Sim.now t.sim)
  end

let schedule_faults t =
  let check_node w =
    if w.Faults.node < 0 || w.Faults.node >= Array.length t.node_array then
      invalid_arg "Net.create: fault window names an unknown node"
  in
  List.iter
    (fun (w : Faults.window) ->
      check_node w;
      let n = t.node_array.(w.Faults.node) in
      Sim.schedule t.sim ~at:w.Faults.from_us (fun () -> n.isolated <- true);
      Sim.schedule t.sim ~at:w.Faults.to_us (fun () -> n.isolated <- false))
    t.faults.Faults.partitions;
  List.iter
    (fun (w : Faults.window) ->
      check_node w;
      let n = t.node_array.(w.Faults.node) in
      Sim.schedule t.sim ~at:w.Faults.from_us (fun () ->
          n.crashed <- true;
          n.isolated <- true);
      Sim.schedule t.sim ~at:w.Faults.to_us (fun () ->
          n.crashed <- false;
          n.isolated <- false;
          (* Fail-stop restart: the guest did not execute during the
             outage; advance its virtual clock past it, then re-arm its
             slice chain and retransmit schedule. *)
          Avmm.add_stall_us n.avmm (w.Faults.to_us -. w.Faults.from_us);
          nudge t n;
          update_retrans t n))
    t.faults.Faults.crashes;
  (* Fork windows flip the node's two-faced flag; what the node does
     with it (committing different log heads to different witnesses)
     is the harness's business at epoch boundaries. *)
  List.iter
    (fun (w : Faults.window) ->
      check_node w;
      let n = t.node_array.(w.Faults.node) in
      Sim.schedule t.sim ~at:w.Faults.from_us (fun () -> n.two_faced <- true);
      Sim.schedule t.sim ~at:w.Faults.to_us (fun () -> n.two_faced <- false))
    t.faults.Faults.forks

let create ?(seed = 0xA1CEL) ?(latency_us = 30.0) ?(loss = 0.0) ?(faults = Faults.none)
    ?(rsa_bits = 768) ?key_pool ?mem_words ?log_backend ?(topology = Topology.full_mesh)
    ~config ~images ~names () =
  if List.length images <> List.length names then
    invalid_arg "Net.create: images and names must have equal length";
  let rng = Avm_util.Rng.create seed in
  let ca_ = Identity.create_ca rng ~bits:rsa_bits "avm-ca" in
  let names_arr = Array.of_list names in
  let n_nodes = Array.length names_arr in
  (* Identity issue is the fleet's creation bottleneck (one RSA keygen
     per node): with [key_pool] only that many keypairs are generated
     and certificates fan out over them. *)
  let idents_arr =
    match key_pool with
    | None -> Array.map (fun name -> Identity.issue ca_ rng ~bits:rsa_bits name) names_arr
    | Some pool ->
      let pool = max 1 (min pool n_nodes) in
      let donors =
        Array.init pool (fun j -> Identity.issue ca_ rng ~bits:rsa_bits (Printf.sprintf "keypool%d" j))
      in
      Array.mapi (fun i name -> Identity.issue_like ca_ donors.(i mod pool) name) names_arr
  in
  let idents = Array.to_list (Array.mapi (fun i name -> (name, idents_arr.(i))) names_arr) in
  let certs = List.map (fun (name, id) -> (name, Identity.certificate id)) idents in
  let peer_map = List.mapi (fun i name -> (i, name)) names in
  let t =
    {
      sim = Sim.create ();
      config;
      node_array = [||];
      certs;
      idents;
      ca_;
      topology;
      latency_us;
      loss;
      faults;
      rng;
      slice_us = 10_000.0;
      peer_map;
      node_tbl = Hashtbl.create (2 * n_nodes);
      cert_tbl = Hashtbl.create (2 * n_nodes);
    }
  in
  List.iter (fun (name, cert) -> Hashtbl.replace t.cert_tbl name cert) certs;
  let make_node index image =
    let name = names_arr.(index) in
    let peer_list =
      match Topology.peer_list topology ~names:names_arr index with
      | Some l -> l (* per-node O(degree) list *)
      | None -> peer_map (* full mesh: one shared identity map *)
    in
    (* Recursive knot: the avmm's on_send needs the node record. *)
    let node_ref = ref None in
    let on_send env =
      match !node_ref with
      | Some n -> transmit t n env
      | None -> ()
    in
    let avmm =
      Avmm.create ~identity:idents_arr.(index) ~config ~image ?mem_words ?log_backend
        ~peers:peer_list ~on_send ()
    in
    let n =
      {
        name;
        index;
        avmm;
        host = Host.create ();
        ledger = Multiparty.create ~self:name;
        peer_list;
        same_ht = false;
        isolated = false;
        crashed = false;
        two_faced = false;
        slice_gen = 0;
        next_slice_at = infinity;
        retrans_gen = 0;
        retrans_at = infinity;
        wake_at = infinity;
      }
    in
    node_ref := Some n;
    Hashtbl.replace t.node_tbl name n;
    n
  in
  t.node_array <- Array.of_list (List.mapi make_node images);
  schedule_faults t;
  t

let run t ~until_us ?(slice_us = 10_000.0) () =
  t.slice_us <- slice_us;
  (* Arm every runnable node that has no pending slice or wake — first
     call, after a slice_us change, or after a guest slept during a
     previous horizon's catch-up pass. *)
  Array.iter
    (fun n ->
      if runnable n && n.next_slice_at = infinity then
        match Avmm.sleeping_until n.avmm with
        | None -> schedule_slice t n ~at:(Sim.now t.sim)
        | Some d when d < infinity -> schedule_wake t n ~at:d
        | Some _ -> ())
    t.node_array;
  Sim.run_until t.sim until_us;
  (* Land every runnable guest exactly on the horizon so callers can
     poke, peek and queue inputs at a well-defined instant (a parked
     guest is already, trivially, at every instant). *)
  Array.iter (fun n -> if runnable n then advance_node t n ~until_us) t.node_array

let queue_input t i event =
  let n = t.node_array.(i) in
  Avmm.queue_input n.avmm event;
  nudge t n

let isolate t i = t.node_array.(i).isolated <- true
let heal t i = t.node_array.(i).isolated <- false
let two_faced t i = t.node_array.(i).two_faced

let retransmissions t =
  Array.fold_left (fun acc n -> acc + Avmm.retransmissions_sent n.avmm) 0 t.node_array

let ping_rtts_us t ~samples =
  let cfg = t.config in
  let stats = Avm_util.Stats.create () in
  let base =
    (* Two wire crossings plus per-endpoint processing of the echo
       request and the echo reply. *)
    (2.0 *. t.latency_us) +. (4.0 *. Config.packet_process_us cfg)
  in
  let sig_path =
    (* Ping and pong are both signed and acked: 4 signatures generated
       and 4 verified on the critical path (paper §6.8). *)
    4.0 *. (Config.sign_cost_us cfg +. Config.verify_cost_us cfg)
  in
  for _ = 1 to samples do
    (* Scheduling jitter: small multiplicative noise plus a rare
       preemption tail for the 95th percentile. *)
    let jitter = 1.0 +. Avm_util.Rng.float t.rng 0.06 in
    let tail = if Avm_util.Rng.float t.rng 1.0 < 0.08 then Avm_util.Rng.float t.rng 0.35 else 0.0 in
    Avm_util.Stats.add stats ((base +. sig_path) *. (jitter +. tail))
  done;
  stats

let wire_kbps t i ~elapsed_us =
  let bytes = float_of_int (Avmm.bytes_sent_on_wire t.node_array.(i).avmm) in
  if elapsed_us <= 0.0 then 0.0 else bytes *. 8.0 /. (elapsed_us /. 1.0e6) /. 1000.0
