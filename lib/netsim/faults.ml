module Rng = Avm_util.Rng
module Auth = Avm_tamperlog.Auth
open Avm_core

type window = { from_us : float; to_us : float; node : int }

type t = {
  drop : float;
  duplicate : float;
  reorder : float;
  jitter_us : float;
  corrupt : float;
  from_us : float;
  until_us : float;
  partitions : window list;
  crashes : window list;
  forks : window list;
}

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    jitter_us = 0.0;
    corrupt = 0.0;
    from_us = 0.0;
    until_us = infinity;
    partitions = [];
    crashes = [];
    forks = [];
  }

let make ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(jitter_us = 20_000.0)
    ?(corrupt = 0.0) ?(from_us = 0.0) ?(until_us = infinity) ?(partitions = [])
    ?(crashes = []) ?(forks = []) () =
  let check name p =
    if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Faults.make: %s not in [0,1]" name)
  in
  check "drop" drop;
  check "duplicate" duplicate;
  check "reorder" reorder;
  check "corrupt" corrupt;
  if until_us < from_us then invalid_arg "Faults.make: active window ends before it starts";
  List.iter
    (fun w -> if w.to_us < w.from_us then invalid_arg "Faults.make: window ends before it starts")
    (partitions @ crashes @ forks);
  { drop; duplicate; reorder; jitter_us; corrupt; from_us; until_us; partitions; crashes; forks }

type delivery = { extra_delay_us : float; corrupt : bool }
type decision = Dropped | Deliver of delivery list

(* Probability-zero faults draw nothing, so a [none] policy leaves the
   harness's RNG stream exactly as it was without a fault layer. *)
let hit rng p = p > 0.0 && Rng.float rng 1.0 < p

let clean = Deliver [ { extra_delay_us = 0.0; corrupt = false } ]

let decide t rng ~now_us =
  (* Outside the active window the wire is clean and no RNG is drawn:
     a healed network converges deterministically, and the draw stream
     up to the heal point is unchanged by the tail's traffic volume. *)
  if now_us < t.from_us || now_us > t.until_us then clean
  else if hit rng t.drop then Dropped
  else begin
    let leg () =
      let extra_delay_us = if hit rng t.reorder then Rng.float rng t.jitter_us else 0.0 in
      { extra_delay_us; corrupt = hit rng t.corrupt }
    in
    let first = leg () in
    if hit rng t.duplicate then Deliver [ first; leg () ] else Deliver [ first ]
  end

(* Flip one byte: xor with a nonzero mask guarantees the value really
   changes, and the length (hence payload word alignment) is kept. *)
let flip_byte rng s =
  let i = Rng.int rng (String.length s) in
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Rng.int rng 255)));
  Bytes.to_string b

let corrupt_envelope rng (env : Wireformat.envelope) =
  if String.length env.Wireformat.payload > 0 then
    { env with Wireformat.payload = flip_byte rng env.Wireformat.payload }
  else if String.length env.Wireformat.signature > 0 then
    { env with Wireformat.signature = flip_byte rng env.Wireformat.signature }
  else { env with Wireformat.nonce = env.Wireformat.nonce lxor 0x40000000 }

let corrupt_ack rng (ack : Wireformat.ack) =
  let auth = ack.Wireformat.recv_auth in
  if String.length auth.Auth.signature > 0 then
    {
      ack with
      Wireformat.recv_auth = { auth with Auth.signature = flip_byte rng auth.Auth.signature };
    }
  else if String.length auth.Auth.hash > 0 then
    { ack with Wireformat.recv_auth = { auth with Auth.hash = flip_byte rng auth.Auth.hash } }
  else { ack with Wireformat.nonce = ack.Wireformat.nonce lxor 0x40000000 }

let pp ppf t =
  Format.fprintf ppf
    "drop=%.2f dup=%.2f reorder=%.2f(jitter %.0fus) corrupt=%.2f partitions=%d crashes=%d forks=%d"
    t.drop t.duplicate t.reorder t.jitter_us t.corrupt (List.length t.partitions)
    (List.length t.crashes) (List.length t.forks);
  if t.from_us > 0.0 || t.until_us < infinity then
    Format.fprintf ppf " active=[%.0fus,%.0fus]" t.from_us t.until_us
