(** Deterministic fault-injection policies for the network harness.

    PeerReview-style accountability is only convincing if an
    adversarial network can neither mask a cheat nor frame an honest
    node, so the simulator consults one of these policies on every
    transmission (message and ack legs alike). All randomness is drawn
    from the harness's seeded {!Avm_util.Rng}, so a fault schedule is
    bit-reproducible under a fixed seed: replays, parallel audits and
    regression tests all see the same packet fates.

    Four per-packet faults (each an independent probability):

    - {b drop} — the transmission vanishes;
    - {b duplicate} — a second, independently jittered/corrupted copy
      is delivered;
    - {b reorder} — extra latency jitter in [\[0, jitter_us)], enough
      to overtake packets sent later;
    - {b corrupt} — one byte of the payload (or signature) is flipped;
      the receiving AVMM rejects the envelope at {!Avm_core.Avmm.deliver}
      without logging it, and a clean retransmission still goes through.

    Two scheduled, per-node faults (absolute virtual-time windows):

    - {b partitions} — the node is unreachable (traffic in and out is
      dropped) between [from_us] and [to_us];
    - {b crashes} — fail-stop: the node additionally freezes (no guest
      execution, no retransmission sweeps) and resumes at [to_us] with
      its virtual clock advanced past the outage;
    - {b forks} — Byzantine equivocation: while the window is open the
      node is {e two-faced} — at epoch boundaries it commits one log
      head to part of its witness set and a forged alternative to the
      rest (the harness consults {!Net.two_faced} when distributing
      commitments). Unlike the other faults this models a cheating
      {e host}, not a lossy wire; detection is the cross-witness
      authenticator exchange (DESIGN.md §16). *)

type window = { from_us : float; to_us : float; node : int }

type t = {
  drop : float;
  duplicate : float;
  reorder : float;
  jitter_us : float;
  corrupt : float;
  from_us : float;  (** probabilistic faults active from this time … *)
  until_us : float;  (** … until this time (default: always) *)
  partitions : window list;
  crashes : window list;
  forks : window list;
}

val none : t
(** The fault-free policy. Draws nothing from the RNG, so adding the
    fault layer with [none] leaves fault-free runs bit-identical. *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?jitter_us:float ->
  ?corrupt:float ->
  ?from_us:float ->
  ?until_us:float ->
  ?partitions:window list ->
  ?crashes:window list ->
  ?forks:window list ->
  unit ->
  t
(** Probabilities default to 0, [jitter_us] to 20 ms, windows to none.
    [from_us]/[until_us] bound the per-packet faults in virtual time
    (default: the whole run); outside the window the wire is clean and
    no RNG draws are consumed, which models a lossy episode that heals
    — the accountability invariant demands verdicts converge once
    retransmissions get through.
    @raise Invalid_argument on probabilities outside [0,1] or windows
    that end before they start. *)

type delivery = { extra_delay_us : float; corrupt : bool }

type decision = Dropped | Deliver of delivery list
(** [Deliver] carries one leg per copy to put on the wire (two when
    duplicated), each with its own jitter and corruption flag. *)

val decide : t -> Avm_util.Rng.t -> now_us:float -> decision
(** Draw the fate of one transmission at virtual time [now_us].
    Consumes RNG draws only for faults with nonzero probability, and
    none at all outside the active window. *)

val corrupt_envelope : Avm_util.Rng.t -> Avm_core.Wireformat.envelope -> Avm_core.Wireformat.envelope
(** Flip one payload byte (falling back to the signature, then the
    nonce, when empty) — length and word alignment are preserved. *)

val corrupt_ack : Avm_util.Rng.t -> Avm_core.Wireformat.ack -> Avm_core.Wireformat.ack
(** Flip one byte of the ack's authenticator. *)

val pp : Format.formatter -> t -> unit
