(* Binary min-heap keyed by (time, insertion sequence). *)

type event = { at : float; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
}

let dummy = { at = 0.0; seq = 0; action = ignore }

let create () =
  { heap = Array.make 256 dummy; size = 0; clock = 0.0; next_seq = 0; fired = 0 }

let now t = t.clock
let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while !i > 0 && before t.heap.(!i) t.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  top

let schedule t ~at action =
  let at = Float.max at t.clock in
  push t { at; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let after t dt action = schedule t ~at:(t.clock +. dt) action

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if t.size > 0 && t.heap.(0).at <= horizon then begin
      let ev = pop t in
      t.clock <- Float.max t.clock ev.at;
      t.fired <- t.fired + 1;
      ev.action ()
    end
    else continue := false
  done;
  t.clock <- Float.max t.clock horizon

let pending t = t.size
let processed t = t.fired
