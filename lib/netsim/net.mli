(** The experiment harness: N accountable machines on one switched
    LAN, standing in for the paper's three-workstation testbed (§6.2)
    — and, with a {!Topology.witness_graph}, for a fleet of thousands.

    Each node couples an {!Avm_core.Avmm} (guest + monitor) with a
    {!Host} CPU model and a {!Avm_core.Multiparty} ledger. The harness
    is fully event-driven: every node posts its own next [run_slice]
    and its own retransmit deadline into the {!Sim} heap, so a parked
    (SLEEP), halted or crashed node schedules nothing — an idle fleet
    node costs zero events, an active one O(log n) per event — while
    message delivery, acks, faults and wakes interleave on the same
    queue. Events at equal timestamps fire in insertion order, so
    same-seed runs stay bit-deterministic. Authenticators are
    collected exactly the way players do in the paper: the receiver
    keeps the authenticator attached to each message, the sender keeps
    the one inside each acknowledgment. *)

type node

val node_name : node -> string
val node_index : node -> int
val node_avmm : node -> Avm_core.Avmm.t
val node_host : node -> Host.t
val node_ledger : node -> Avm_core.Multiparty.t

val set_same_ht : node -> bool -> unit
(** Pin the node's daemon onto the game's hyperthread (§6.10's −11 fps
    ablation): daemon time then also stalls the guest. *)

type t

val create :
  ?seed:int64 ->
  ?latency_us:float ->
  ?loss:float ->
  ?faults:Faults.t ->
  ?rsa_bits:int ->
  ?key_pool:int ->
  ?mem_words:int ->
  ?log_backend:Avm_tamperlog.Segment_store.backend ->
  ?topology:Topology.t ->
  config:Avm_core.Config.t ->
  images:int array list ->
  names:string list ->
  unit ->
  t
(** One image per node (pass the same image N times for a symmetric
    game). Guest packets address peers by dest id: under the default
    full mesh the first word of an outgoing packet is the destination
    node's index in [names]; under a graph topology it is a position
    in that node's adjacency row ({!Topology.peer_list}). Defaults:
    30 us switch latency, no loss, no faults, 768-bit keys.

    [key_pool] caps how many real RSA keypairs are generated; node
    certificates fan out over the pool ({!Avm_crypto.Identity.issue_like}),
    which turns fleet creation from one keygen per node into one CA
    signature per node. [log_backend] is forwarded to every node's
    AVMM ([Memory] keeps a 10k-node fleet's logs cheap).

    [faults] is consulted on every transmission (message and ack legs)
    and its partition/crash windows are scheduled at creation.
    Retransmissions follow the per-envelope exponential backoff in
    [config] ({!Avm_core.Config.retrans_delay_us}), driven by per-node
    heap events at each node's own earliest backoff deadline — there
    is no global sweep period anymore. *)

val nodes : t -> node array
val node : t -> int -> node
val sim : t -> Sim.t
val certificates : t -> (string * Avm_crypto.Identity.certificate) list
val identities : t -> (string * Avm_crypto.Identity.t) list
val ca : t -> Avm_crypto.Identity.ca

val peers : t -> (int * string) list
(** The global (index, name) map. Under the default full mesh this is
    exactly every node's guest-visible peer map; under a graph
    topology use {!peers_of} for the map a given node's AVMM (and any
    replay of its log) actually resolves dest ids against. *)

val peers_of : t -> int -> (int * string) list
(** Node [i]'s own (dest id, name) map — what auditors must pass to
    {!Avm_core.Replay} / {!Avm_core.Audit} when checking node [i]. *)

val topology : t -> Topology.t
val config : t -> Avm_core.Config.t
val faults : t -> Faults.t

val run : t -> until_us:float -> ?slice_us:float -> unit -> unit
(** Advance the whole world to the given virtual time (default slice
    10 ms). Can be called repeatedly. Runnable nodes self-schedule
    slices at [slice_us] cadence; parked nodes wake early on packet
    arrival, local input, or their SLEEP deadline. On return every
    runnable guest has been landed exactly on the horizon. *)

val queue_input : t -> int -> int -> unit
(** [queue_input t node_idx event] feeds a local input event to a
    node's guest, waking it if parked. *)

val isolate : t -> int -> unit
(** Partition a node from the network: all its future traffic (in and
    out) is dropped until {!heal}. Models the §4.6 scenario where a
    machine appears unresponsive to some participants. *)

val heal : t -> int -> unit

val two_faced : t -> int -> bool
(** Is the node currently inside one of the fault policy's [forks]
    windows? A two-faced node equivocates at epoch boundaries: the
    harness hands half its witness set one signed commitment and the
    other half a conflicting one ({!Avm_scenario.Equivocation_run}).
    The wire itself stays honest — equivocation is a host fault, not a
    network fault. *)

(** {1 Measurement helpers} *)

val retransmissions : t -> int
(** Total backoff-scheduled retransmissions across all nodes. *)

val ping_rtts_us : t -> samples:int -> Avm_util.Stats.t
(** Host-level ICMP echo round-trip times between two nodes under the
    current configuration (Figure 5). Modeled from the configuration's
    cost ladder: per-endpoint packet processing, signature generate /
    verify on the critical path (four of each under avmm-rsa768, as in
    §6.8), switch latency, plus scheduling jitter. Guest instruction
    costs are excluded, as in the paper's ICMP measurement. (The model
    is endpoint-symmetric, which is why — unlike a real echo — it
    takes no src/dst pair; earlier versions accepted and silently
    ignored one.) *)

val wire_kbps : t -> int -> elapsed_us:float -> float
(** Average outbound wire traffic of a node (§6.7). *)
