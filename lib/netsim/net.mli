(** The experiment harness: N accountable machines on one switched
    LAN, standing in for the paper's three-workstation testbed (§6.2).

    Each node couples an {!Avm_core.Avmm} (guest + monitor) with a
    {!Host} CPU model and a {!Avm_core.Multiparty} ledger. The harness
    advances all machines in lock-step slices of virtual time,
    delivers messages through a {!Sim} event queue with configurable
    switch latency and loss, retransmits unacknowledged messages, and
    collects authenticators exactly the way players do in the paper:
    the receiver keeps the authenticator attached to each message, the
    sender keeps the one inside each acknowledgment. *)

type node

val node_name : node -> string
val node_avmm : node -> Avm_core.Avmm.t
val node_host : node -> Host.t
val node_ledger : node -> Avm_core.Multiparty.t

val set_same_ht : node -> bool -> unit
(** Pin the node's daemon onto the game's hyperthread (§6.10's −11 fps
    ablation): daemon time then also stalls the guest. *)

type t

val create :
  ?seed:int64 ->
  ?latency_us:float ->
  ?loss:float ->
  ?faults:Faults.t ->
  ?rsa_bits:int ->
  ?retrans_every_us:float ->
  ?mem_words:int ->
  config:Avm_core.Config.t ->
  images:int array list ->
  names:string list ->
  unit ->
  t
(** One image per node (pass the same image N times for a symmetric
    game). Guest packets address peers by node index: the first word
    of an outgoing packet is the destination node's index in [names].
    Defaults: 30 us switch latency, no loss, no faults, 768-bit keys,
    retransmission sweep at half the configured backoff base
    (125 ms under the default config, floored at 10 ms).

    [faults] is consulted on every transmission (message and ack legs)
    and its partition/crash windows are scheduled at creation; the
    legacy [loss] is applied first, as before, so old callers see
    unchanged behaviour. Retransmissions follow the per-envelope
    exponential backoff in [config] ({!Avm_core.Config.retrans_delay_us});
    the sweep period only sets the granularity at which due envelopes
    are noticed. *)

val nodes : t -> node array
val node : t -> int -> node
val sim : t -> Sim.t
val certificates : t -> (string * Avm_crypto.Identity.certificate) list
val identities : t -> (string * Avm_crypto.Identity.t) list
val ca : t -> Avm_crypto.Identity.ca
val peers : t -> (int * string) list
val config : t -> Avm_core.Config.t
val faults : t -> Faults.t

val run : t -> until_us:float -> ?slice_us:float -> unit -> unit
(** Advance the whole world to the given virtual time (default slice
    10 ms). Can be called repeatedly. *)

val queue_input : t -> int -> int -> unit
(** [queue_input t node_idx event] feeds a local input event to a
    node's guest. *)

val isolate : t -> int -> unit
(** Partition a node from the network: all its future traffic (in and
    out) is dropped until {!heal}. Models the §4.6 scenario where a
    machine appears unresponsive to some participants. *)

val heal : t -> int -> unit

(** {1 Measurement helpers} *)

val retransmissions : t -> int
(** Total backoff-scheduled retransmissions across all nodes. *)

val ping_rtts_us : t -> samples:int -> Avm_util.Stats.t
(** Host-level ICMP echo round-trip times between two nodes under the
    current configuration (Figure 5). Modeled from the configuration's
    cost ladder: per-endpoint packet processing, signature generate /
    verify on the critical path (four of each under avmm-rsa768, as in
    §6.8), switch latency, plus scheduling jitter. Guest instruction
    costs are excluded, as in the paper's ICMP measurement. (The model
    is endpoint-symmetric, which is why — unlike a real echo — it
    takes no src/dst pair; earlier versions accepted and silently
    ignored one.) *)

val wire_kbps : t -> int -> elapsed_us:float -> float
(** Average outbound wire traffic of a node (§6.7). *)
