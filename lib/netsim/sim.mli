(** Discrete-event scheduler over virtual microseconds.

    Replaces the paper's wall-clock testbed: all latency, processing
    and retransmission timing in the network harness is expressed as
    events on this queue. Events at equal timestamps fire in insertion
    order (stable), which keeps runs bit-deterministic. *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule sim ~at f] runs [f] when virtual time reaches [at].
    Scheduling in the past fires at the current time. *)

val after : t -> float -> (unit -> unit) -> unit
(** [after sim dt f] = [schedule sim ~at:(now sim +. dt) f]. *)

val run_until : t -> float -> unit
(** Fire every event with timestamp <= the given time, then set the
    clock to it. Events may schedule further events. *)

val pending : t -> int

val processed : t -> int
(** Total events fired so far — the numerator of the fleet bench's
    sim-events/s figure. *)
