open Avm_core
open Avm_netsim

let auction_source =
  {|
const ROUND_US = 200000;
const MAXP = 8;

global role;
global nplayers;
global tick_flag;
global round_no;
global high_bid;
global high_bidder;
global wins[8];

interrupt fn on_irq() {
  var cause = in(IRQ_CAUSE);
  if (cause == 0) { tick_flag = 1; }
}

fn announce(d) {
  out(NET_TX, d);
  out(NET_TX, 2);
  out(NET_TX, round_no);
  out(NET_TX, high_bidder);
  out(NET_TX, high_bid);
  out(NET_TX_SEND, 0);
}

fn auctioneer_round() {
  var avail = in(NET_RX_AVAIL);
  while (avail > 0) {
    var typ = in(NET_RX);
    if (typ == 1) {
      var bidder = in(NET_RX);
      var amount = in(NET_RX);
      if (bidder > 0 && bidder < nplayers && amount > high_bid) {
        high_bid = amount;
        high_bidder = bidder;
      }
    }
    out(NET_RX_NEXT, 0);
    avail = in(NET_RX_AVAIL);
  }
  if (high_bid > 0) {
    wins[high_bidder] = wins[high_bidder] + 1;
    var d = 1;
    while (d < nplayers) {
      announce(d);
      d = d + 1;
    }
    round_no = round_no + 1;
  }
  high_bid = 0;
  high_bidder = 0;
}

fn bidder_step() {
  var n = in(INPUT_AVAIL);
  while (n > 0) {
    var amount = in(INPUT);
    if (amount > 0) {
      out(NET_TX, 0);
      out(NET_TX, 1);
      out(NET_TX, role);
      out(NET_TX, amount);
      out(NET_TX_SEND, 0);
    }
    n = n - 1;
  }
  var avail = in(NET_RX_AVAIL);
  while (avail > 0) {
    var typ = in(NET_RX);
    if (typ == 2) {
      var rn = in(NET_RX);
      var wb = in(NET_RX);
      var wa = in(NET_RX);
      wins[wb] = wins[wb] + 1;
      rn = rn + wa;
    }
    out(NET_RX_NEXT, 0);
    avail = in(NET_RX_AVAIL);
  }
}

fn main() {
  var r = in(INPUT);
  role = r & 255;
  nplayers = (r >> 8) & 255;
  ivt(on_irq);
  if (role == 0) { out(TIMER_CTL, ROUND_US); }
  ei();
  while (1) {
    var t = in(CLOCK);
    t = t;
    if (role == 0) {
      if (tick_flag) { tick_flag = 0; auctioneer_round(); }
    } else {
      bidder_step();
    }
  }
}
|}

let image_memo = ref None

let auction_image () =
  match !image_memo with
  | Some img -> img
  | None ->
    let img = Avm_mlang.Compile.compile ~stack_top:Guests.stack_top auction_source in
    image_memo := Some img;
    img

type outcome = {
  net : Net.t;
  bidders : int;
  duration_us : float;
  rounds : int;
  wins : int array;
}

let run ?(bidders = 3) ?(duration_us = 12.0e6) ?(rigged = false) ?(rsa_bits = 512)
    ?(seed = 21L) () =
  let players = bidders + 1 in
  let image = (auction_image ()).Avm_isa.Asm.words in
  let names = List.init players (fun i -> if i = 0 then "auctioneer" else Printf.sprintf "bidder%d" i) in
  let config = Config.make ~snapshot_every_us:(Some 4_000_000) Config.Avmm_rsa768 in
  let net =
    Net.create ~seed ~rsa_bits ~config
      ~images:(List.init players (fun _ -> image))
      ~mem_words:Guests.mem_words ~names ()
  in
  for i = 0 to players - 1 do
    Net.queue_input net i ((i land 0xff) lor (players lsl 8))
  done;
  let rng = Avm_util.Rng.create seed in
  let high_bid_addr = Avm_isa.Asm.symbol (auction_image ()) "g_high_bid" in
  let high_bidder_addr = Avm_isa.Asm.symbol (auction_image ()) "g_high_bidder" in
  let t = ref 0.0 in
  let step = 50_000.0 in
  while !t < duration_us do
    t := !t +. step;
    Net.run net ~until_us:!t ();
    (* each bidder bids roughly every 300 ms *)
    for i = 1 to bidders do
      if Avm_util.Rng.float rng 1.0 < step /. 300_000.0 then
        Net.queue_input net i (1 + Avm_util.Rng.int rng 1000)
    done;
    (* the crooked auctioneer rewrites the round state shortly before
       each close so that he "won" with a fantasy bid *)
    if rigged && Avm_util.Rng.float rng 1.0 < step /. 150_000.0 then begin
      let avmm = Net.node_avmm (Net.node net 0) in
      Avmm.poke avmm ~addr:high_bid_addr ~value:999_999;
      Avmm.poke avmm ~addr:high_bidder_addr ~value:0
    end
  done;
  let auctioneer = Net.node_avmm (Net.node net 0) in
  let wins_addr = Avm_isa.Asm.symbol (auction_image ()) "g_wins" in
  let wins = Array.init players (fun i -> Avmm.peek auctioneer ~addr:(wins_addr + i)) in
  let rounds =
    Avmm.peek auctioneer ~addr:(Avm_isa.Asm.symbol (auction_image ()) "g_round_no")
  in
  { net; bidders; duration_us; rounds; wins }

let audit outcome ~target =
  let net = outcome.net in
  let node = Net.node net target in
  let name = Net.node_name node in
  let log = Avmm.log (Net.node_avmm node) in
  let entries = Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log) in
  let pool = Multiparty.create ~self:"pool" in
  Array.iter (fun n -> Multiparty.merge_auths pool ~from:(Net.node_ledger n) ~node:name)
    (Net.nodes net);
  let fuel =
    (2 * Avm_machine.Machine.icount (Avmm.machine (Net.node_avmm node))) + 5_000_000
  in
  Audit.full
    ~ctx:
      (Audit.ctx
         ~node_cert:(List.assoc name (Net.certificates net))
         ~peer_certs:(Net.certificates net)
         ~auths:(Multiparty.auths_for pool name) ())
    ~image:(auction_image ()).Avm_isa.Asm.words ~mem_words:Guests.mem_words ~fuel
    ~peers:(Net.peers net) ~prev_hash:Avm_tamperlog.Log.genesis_hash ~entries ()
