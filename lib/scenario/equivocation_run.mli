(** The forking adversary and the exchange that catches it (paper §4.3
    via PeerReview; DESIGN.md §16).

    A two-faced node keeps one real log but {e signs two histories}:
    at its fork epoch's boundary commitment it hands half its witness
    set a genuine authenticator and the other half a conflicting one —
    same seq, same prev, different content, both signed with its real
    key. Every per-witness audit of the fork epoch passes (each
    witness's view is internally consistent; the commitment lands
    after the boundary snapshot, outside the audited range), so the
    baseline can flag the forker at the {e next} epoch at the earliest
    — and never, if the fork is in the last epoch. The cross-witness
    exchange ({!Avm_core.Witness.exchange}) pairs the two heads the
    moment they are gossiped and yields a transferable
    {!Avm_core.Evidence.Equivocation} proof in the {e same} epoch. *)

type spec = {
  nodes : int;
  witnesses : int;  (** k; at least 2 — equivocation needs two views *)
  epochs : int;
  epoch_us : float;
  activity : float;  (** per-node chance of input each epoch *)
  fork_frac : float;  (** fraction of nodes that fork once *)
  seed : int64;
  rsa_bits : int;
  key_pool : int;
  shards : int;
}

val default_spec : spec

type forker = { node : int; epoch : int  (** the epoch it forks at *) }

type outcome = {
  spec : spec;
  net : Avm_netsim.Net.t;
  assignment : Avm_core.Witness.assignment;
  verdicts : Avm_core.Witness.verdict list;  (** ordinary audit jobs *)
  forkers : forker list;
  exchange_detected : (int * int) list;
      (** (node, epoch first caught by the exchange), sorted *)
  baseline_detected : (int * int) list;
      (** (node, epoch first flagged by an ordinary audit job) *)
  false_flags : int list;  (** accused non-forkers, either route — must be [] *)
  proofs : Avm_core.Evidence.t list;  (** one per caught forker *)
  proofs_verified : int;
      (** proofs accepted by {!Avm_core.Audit.check_evidence} given
          {e only} the accused's certificate — no log, image or peers *)
  commit_auths : int;  (** commitment authenticators distributed *)
  ex_messages : int;  (** gossip messages across all epochs *)
  ex_auths : int;
  ex_bytes : int;
  sim_events : int;
  run_seconds : float;
  audit_seconds : float;
  exchange_seconds : float;
}

val run : ?par:Avm_core.Audit_ctx.parallelism -> spec -> outcome
(** Drive the fleet for [epochs] epochs; after each epoch's seal,
    every node appends a commitment Note and sends an authenticator
    over it to its k witnesses (a forker inside its fault-layer fork
    window — {!Avm_netsim.Net.two_faced} — splits its witness set
    between two conflicting heads), then the ordinary sharded audit
    and one round of cross-witness exchange run. Stores persist
    across epochs. @raise Invalid_argument if [witnesses < 2] or
    [epochs < 1]. *)

val signature : outcome -> string
(** Digest of the full verdict vector, the proof set and the
    detection schedule — byte-identical across auditor job counts. *)
