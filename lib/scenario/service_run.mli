(** The auditor-as-a-service scenario: hundreds of concurrent live
    sessions streaming into one {!Avm_service.Daemon}.

    [sessions] producers run the fleet kv guest, paired i <-> i xor 1
    (each node's epoch report and acks go to its partner, so one peer
    certificate per session covers the RECV/ACK surface). Every epoch
    the driver queues seeded activity, runs the network, injects the
    epoch's cheats at mid-epoch — a {e poke} (silent state mutation
    only replay can surface) or a {e rewrite} (in-place log tamper the
    syntactic stream must flag at the next ingest) — seals a snapshot
    on every node, then streams the grown logs into the daemon and
    pumps. After the last epoch the daemon drains to zero lag and
    every session is detached.

    The outcome carries what the acceptance gates need: detection
    (all planted cheats, zero false flags), the sampled lag
    distribution against [max_lag], detection latency in virtual time,
    backpressure counts and the shared-cache stats. {!signature}
    digests the verdict vector (delivery-order-independent), so jobs
    and cache on/off can be asserted equivalent. *)

type spec = {
  sessions : int;  (** concurrent producers; even *)
  epochs : int;
  epoch_us : float;
  activity : float;  (** fraction of nodes woken with ops per epoch *)
  cheat_frac : float;  (** fraction of nodes that cheat once *)
  tamper_frac : float;  (** fraction of cheats that rewrite the log in place *)
  seed : int64;
  rsa_bits : int;
  key_pool : int;
  max_lag : int;  (** daemon lag bound = ingest high watermark *)
  budget : int;  (** instructions per session per pump *)
  replay_rate : float;
  dedup : bool;  (** share the fleet-wide replay cache *)
  spot_rate : int;
}

val default_spec : spec
(** 200 sessions, 3 epochs of 1 virtual second, 10% activity, 5%
    cheaters (40% of them log rewrites), lag bound 4096. *)

type cheat_kind = Poke of { slot : int; value : int } | Rewrite

type cheat = { node : int; epoch : int; kind : cheat_kind }

type outcome = {
  spec : spec;
  events : Avm_service.Daemon.event list;  (** in delivery order *)
  cheats : cheat list;
  detected : int list;
  missed : int list;
  false_flagged : int list;
  entries_ingested : int;
  lag_samples : int list;
  lag_p50 : int;
  lag_p99 : int;
  lag_max : int;
  detection_latency_us : (string * float) list;
      (** per detected cheater: virtual microseconds from mid-epoch
          injection to verdict delivery *)
  backpressure_engaged : int;
  backpressure_refusals : int;
  cache : Avm_core.Replay_cache.stats;
  cache_hits : int;
  sim_events : int;
  run_seconds : float;  (** wall clock simulating the fleet *)
  service_seconds : float;  (** wall clock in ingest + pump *)
  drain_rounds : int;
}

val run : ?par:Avm_core.Audit_ctx.parallelism -> spec -> outcome

val signature : outcome -> string
(** MD5 over the sorted per-session verdict lines — identical across
    [par] settings and cache on/off. *)
