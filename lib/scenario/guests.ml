let stack_top = 32768
let mem_words = 32768

(* The Counterstrike stand-in. Cheat patches anchor on exact source
   fragments (see Cheats); keep those lines stable. *)
let game_source =
  {|
const MAXP = 8;
const TICK_US = 100000;
const CAP_FRAME_US = 13889;
const RENDER_SPIN = 5;

global role;
global nplayers;
global myx;
global myy;
global angle;
global ammo = 30;
global fired_since;
global tick_flag;
global frame_no;
global frame_start;
global cap_enabled;
global px[8];
global py[8];
global phealth[8];
global pscore[8];

interrupt fn on_irq() {
  var cause = in(IRQ_CAUSE);
  if (cause == 0) { tick_flag = 1; }
  // cause 1 = NIC; the main loop polls the rx queue
}

fn nearest_other(cid) {
  var best = -1;
  var bestd = 0x7FFFFFFF;
  var i = 0;
  while (i < nplayers) {
    if (i != cid) {
      var dx = px[i] - px[cid];
      var dy = py[i] - py[cid];
      var d = dx * dx + dy * dy;
      if (d < bestd) { bestd = d; best = i; }
    }
    i = i + 1;
  }
  return best;
}

fn apply_hits(shooter, shots) {
  while (shots > 0) {
    var v = nearest_other(shooter);
    if (v >= 0) {
      phealth[v] = phealth[v] - 25;
      if (phealth[v] <= 0) {
        phealth[v] = 100;
        pscore[shooter] = pscore[shooter] + 1;
      }
    }
    shots = shots - 1;
  }
}

fn send_world(dst) {
  out(NET_TX, dst);
  out(NET_TX, 2);
  out(NET_TX, nplayers);
  var i = 0;
  while (i < nplayers) {
    out(NET_TX, px[i]);
    out(NET_TX, py[i]);
    out(NET_TX, phealth[i]);
    out(NET_TX, pscore[i]);
    i = i + 1;
  }
  out(NET_TX_SEND, 0);
}

fn server_tick() {
  var avail = in(NET_RX_AVAIL);
  while (avail > 0) {
    var typ = in(NET_RX);
    if (typ == 1) {
      var cid = in(NET_RX);
      var cx = in(NET_RX);
      var cy = in(NET_RX);
      var ca = in(NET_RX);
      var cf = in(NET_RX);
      if (cid > 0 && cid < nplayers) {
        px[cid] = cx;
        py[cid] = cy;
        apply_hits(cid, cf);
      }
      ca = ca;
    }
    out(NET_RX_NEXT, 0);
    avail = in(NET_RX_AVAIL);
  }
  px[0] = myx;
  py[0] = myy;
  apply_hits(0, fired_since);
  fired_since = 0;
  var d = 1;
  while (d < nplayers) {
    send_world(d);
    d = d + 1;
  }
}

fn client_drain() {
  var avail = in(NET_RX_AVAIL);
  while (avail > 0) {
    var typ = in(NET_RX);
    if (typ == 2) {
      var n = in(NET_RX);
      var i = 0;
      while (i < n && i < MAXP) {
        px[i] = in(NET_RX);
        py[i] = in(NET_RX);
        phealth[i] = in(NET_RX);
        pscore[i] = in(NET_RX);
        i = i + 1;
      }
    }
    out(NET_RX_NEXT, 0);
    avail = in(NET_RX_AVAIL);
  }
}

fn client_update() {
  out(NET_TX, 0);
  out(NET_TX, 1);
  out(NET_TX, role);
  out(NET_TX, myx);
  out(NET_TX, myy);
  out(NET_TX, angle);
  out(NET_TX, fired_since);
  fired_since = 0;
  out(NET_TX_SEND, 0);
}

fn read_inputs() {
  var n = in(INPUT_AVAIL);
  while (n > 0) {
    var ev = in(INPUT);
    var tag = ev >> 28;
    var val = ev & 0x0FFFFFFF;
    if (tag == 1) {
      var dx = ((val >> 8) & 255) - 128;
      var dy = (val & 255) - 128;
      myx = myx + dx;
      myy = myy + dy;
    } else if (tag == 2) {
      angle = val & 0xFFFF;
    } else if (tag == 3) {
      if (ammo > 0) { ammo = ammo - 1; fired_since = fired_since + 1; }
    } else if (tag == 4) {
      ammo = 30;
    } else if (tag == 5) {
      cap_enabled = val & 1;
    }
    n = n - 1;
  }
}

fn render() {
  var t0 = in(CLOCK);
  var i = 0;
  var vis = 0;
  while (i < nplayers) {
    var dx = px[i] - myx;
    var dy = py[i] - myy;
    var d = dx * dx + dy * dy;
    if (d < 250000) { vis = vis + 1; }
    i = i + 1;
  }
  var mid = in(CLOCK);
  var s = 0;
  while (s < RENDER_SPIN) { s = s + 1; }
  var p1 = in(CLOCK);
  var s2 = 0;
  while (s2 < RENDER_SPIN) { s2 = s2 + 1; }
  var p2 = in(CLOCK);
  var s3 = 0;
  while (s3 < RENDER_SPIN) { s3 = s3 + 1; }
  var p3 = in(CLOCK);
  var s4 = 0;
  while (s4 < RENDER_SPIN) { s4 = s4 + 1; }
  var done = in(CLOCK);
  p1 = p2 + p3 + done - mid - t0;
  out(FRAME, vis);
  frame_no = frame_no + 1;
}

fn frame_cap() {
  if (cap_enabled) {
    var lim = frame_start + CAP_FRAME_US;
    var t = in(CLOCK);
    while (t < lim) {
      t = in(CLOCK);
    }
  }
}

fn main() {
  var r = in(INPUT);
  role = r & 255;
  nplayers = (r >> 8) & 255;
  cap_enabled = (r >> 16) & 1;
  myx = 1000 + role * 400;
  myy = 1000 + role * 250;
  var i = 0;
  while (i < MAXP) { phealth[i] = 100; i = i + 1; }
  ivt(on_irq);
  if (role == 0) { out(TIMER_CTL, TICK_US); }
  ei();
  while (1) {
    frame_start = in(CLOCK);
    read_inputs();
    if (role == 0) {
      if (tick_flag) { tick_flag = 0; server_tick(); }
    } else {
      client_drain();
      if (frame_no % 6 == 0) { client_update(); }
    }
    var pending = in(INPUT_AVAIL);
    pending = pending;
    render();
    frame_cap();
  }
}
|}

let compile_memo = Hashtbl.create 4

let compile_cached source =
  match Hashtbl.find_opt compile_memo source with
  | Some img -> img
  | None ->
    let img = Avm_mlang.Compile.compile ~stack_top source in
    Hashtbl.replace compile_memo source img;
    img

let game_image () = compile_cached game_source

(* Single-occurrence substring replacement; fails loudly if the anchor
   is missing so a cheat can never silently patch nothing. *)
let game_with_patch ~old ~new_ =
  let len_old = String.length old in
  let idx =
    let rec find i =
      if i + len_old > String.length game_source then
        failwith (Printf.sprintf "cheat patch anchor not found: %s" old)
      else if String.equal (String.sub game_source i len_old) old then i
      else find (i + 1)
    in
    find 0
  in
  let patched =
    String.sub game_source 0 idx
    ^ new_
    ^ String.sub game_source (idx + len_old) (String.length game_source - idx - len_old)
  in
  compile_cached patched

let game_symbol name =
  let img = game_image () in
  Avm_isa.Asm.symbol img name

let input_role ~role ~nplayers = (role land 0xff) lor ((nplayers land 0xff) lsl 8)
let input_move ~dx ~dy = (1 lsl 28) lor (((dx + 128) land 0xff) lsl 8) lor ((dy + 128) land 0xff)
let input_aim ~angle = (2 lsl 28) lor (angle land 0xffff)
let input_fire = 3 lsl 28
let input_reload = 4 lsl 28
let input_set_cap on = (5 lsl 28) lor (if on then 1 else 0)

let kvstore_source =
  {|
global role;
global keys[1024];
global vals[1024];
global ops;
global seqno;

fn persist(slot, v) {
  out(DISK_SECTOR, slot >> 8);
  out(DISK_WORD, slot & 255);
  out(DISK_WRITE, v);
}

fn handle_requests() {
  var avail = in(NET_RX_AVAIL);
  while (avail > 0) {
    var typ = in(NET_RX);
    if (typ == 1) {
      var k = in(NET_RX);
      var v = in(NET_RX);
      var sq = in(NET_RX);
      var slot = k & 1023;
      keys[slot] = k;
      vals[slot] = v;
      persist(slot, v);
      out(NET_TX, 1);
      out(NET_TX, 3);
      out(NET_TX, sq);
      out(NET_TX, v);
      out(NET_TX_SEND, 0);
    } else if (typ == 2) {
      var k2 = in(NET_RX);
      var sq2 = in(NET_RX);
      var slot2 = k2 & 1023;
      out(NET_TX, 1);
      out(NET_TX, 3);
      out(NET_TX, sq2);
      out(NET_TX, vals[slot2]);
      out(NET_TX_SEND, 0);
    }
    out(NET_RX_NEXT, 0);
    avail = in(NET_RX_AVAIL);
  }
}

fn server_loop() {
  while (1) {
    handle_requests();
    // background maintenance sweep: clock-timed cache scrub
    var t = in(CLOCK);
    var i = 0;
    var sum = 0;
    while (i < 64) {
      sum = sum + vals[(t + i) & 1023];
      i = i + 1;
    }
    keys[t & 1023] = keys[t & 1023] + (sum & 1);
  }
}

fn client_loop() {
  while (1) {
    var r = in(RNG);
    seqno = seqno + 1;
    if (r & 1) {
      out(NET_TX, 0);
      out(NET_TX, 1);
      out(NET_TX, r & 1023);
      out(NET_TX, r >> 10);
      out(NET_TX, seqno);
      out(NET_TX_SEND, 0);
    } else {
      out(NET_TX, 0);
      out(NET_TX, 2);
      out(NET_TX, r & 1023);
      out(NET_TX, seqno);
      out(NET_TX_SEND, 0);
    }
    var awaiting = 1;
    while (awaiting) {
      var avail = in(NET_RX_AVAIL);
      if (avail > 0) {
        var typ = in(NET_RX);
        var sq = in(NET_RX);
        var v = in(NET_RX);
        out(NET_RX_NEXT, 0);
        if (typ == 3 && sq == seqno) {
          awaiting = 0;
          ops = ops + v - v + 1;
        }
      } else {
        // back off without hammering the rx port
        var spin = 0;
        while (spin < 200) { spin = spin + 1; }
      }
    }
  }
}

fn main() {
  var r = in(INPUT);
  role = r & 255;
  if (role == 0) { server_loop(); } else { client_loop(); }
}
|}

let kvstore_image () = compile_cached kvstore_source
let kv_input_role ~role = role land 0xff

(* The fleet node: a tiny kv store that applies locally queued
   operations, reports a running digest to its primary witness, and
   then parks itself on the SLEEP port. Receiving a report only folds
   it into the digest — it never triggers a send of its own, so
   traffic through the (cyclic) witness graph cannot cascade and a
   quiet node costs the simulator nothing. *)
let fleet_stack_top = 2048
let fleet_mem_words = 2048

let fleet_source =
  {|
global keys[256];
global vals[256];
global ops;
global seqno;
global digest;

fn apply_op(w) {
  var slot = (w >> 16) & 255;
  var v = w & 65535;
  keys[slot] = keys[slot] + 1;
  vals[slot] = v;
  digest = digest ^ (v + slot);
  ops = ops + 1;
}

fn main() {
  while (1) {
    var worked = 0;
    var n = in(INPUT_AVAIL);
    while (n > 0) {
      apply_op(in(INPUT));
      worked = 1;
      n = n - 1;
    }
    var avail = in(NET_RX_AVAIL);
    while (avail > 0) {
      var len = in(NET_RX_LEN);
      while (len > 0) { digest = digest ^ in(NET_RX); len = len - 1; }
      out(NET_RX_NEXT, 0);
      avail = in(NET_RX_AVAIL);
    }
    if (worked) {
      seqno = seqno + 1;
      out(NET_TX, 0);
      out(NET_TX, seqno);
      out(NET_TX, digest);
      out(NET_TX_SEND, 0);
    }
    out(SLEEP, 0);
  }
}
|}

let fleet_memo = ref None

let fleet_image () =
  match !fleet_memo with
  | Some img -> img
  | None ->
    let img = Avm_mlang.Compile.compile ~stack_top:fleet_stack_top fleet_source in
    fleet_memo := Some img;
    img

let fleet_input_op ~slot ~value = ((slot land 0xff) lsl 16) lor (value land 0xffff)
let fleet_symbol name = Avm_isa.Asm.symbol (fleet_image ()) name
