(** Fleet-scale witness auditing: the 1k–10k node experiment the
    ROADMAP's north star asks for.

    The run wires [nodes] accountable kv-store guests
    ({!Guests.fleet_source}) over a {!Avm_netsim.Topology} built from
    the seeded witness assignment ({!Avm_core.Witness.assign}) — each
    node's guest-visible peers are exactly its witnesses, so the
    communication graph and the audit graph coincide. Virtual time is
    cut into [epochs] epochs of [epoch_us] each:

    - at every epoch start a seeded [activity] fraction of nodes
      receives kv write ops; each active node applies them and reports
      a digest to its primary witness, then parks on SLEEP — so the
      event-driven harness pays nothing for the idle majority;
    - a seeded [cheat_frac] minority gets its guest memory poked
      mid-epoch (one poke each, in a random epoch) — the §2.2 attack a
      hacked hypervisor would hide, aimed at a kv slot the workload
      never writes so only the audit can notice;
    - at every epoch end each node seals its segment with a snapshot,
      and the per-epoch jobs from {!Avm_core.Witness.epoch_jobs} run
      on the sharded auditor pool.

    Verdicts are bit-deterministic in [seed] and independent of the
    auditor worker count ({!signature} compares runs). *)

module Faults = Avm_netsim.Faults

type spec = {
  nodes : int;
  witnesses : int;  (** k — auditors per node *)
  epochs : int;
  epoch_us : float;
  activity : float;  (** fraction of nodes given ops per epoch *)
  cheat_frac : float;  (** fraction of nodes that tamper, once each *)
  seed : int64;
  rsa_bits : int;
  key_pool : int;  (** real keypairs generated; certs fan out over them *)
  faults : Faults.t option;
  shards : int;  (** auditor pool shards (verdict order is shard-stable) *)
  dedup : bool;  (** share one {!Avm_core.Replay_cache} across all jobs *)
  spot_rate : int;  (** 1-in-N fingerprints fully replay even on hit *)
}

val default_spec : spec
(** 200 nodes, k = 3, 3 × 1 s epochs, 10% activity, 2% cheaters,
    512-bit keys over a 32-key pool, 2% drop + reorder jitter; dedup
    on at spot rate 8. *)

type cheat = { node : int; epoch : int; slot : int; value : int }

type epoch_report = {
  epoch : int;
  coverage : float;  (** fraction of nodes with ≥ 1 verdict this epoch *)
  jobs : int;
  failures : int;
}

type outcome = {
  spec : spec;
  net : Avm_netsim.Net.t;
  assignment : Avm_core.Witness.assignment;
  verdicts : Avm_core.Witness.verdict list;  (** all epochs, in job order *)
  reports : epoch_report list;
  cheats : cheat list;  (** ground truth *)
  detected : int list;  (** cheating nodes with a failing verdict *)
  missed : int list;  (** cheating nodes no verdict flagged *)
  false_flagged : int list;  (** honest nodes flagged (should be empty) *)
  sim_events : int;  (** heap events processed ({!Avm_netsim.Sim.processed}) *)
  run_seconds : float;  (** wall time of the simulation phase *)
  audit_jobs : int;
  audit_seconds : float;  (** wall time inside the auditor pool *)
  semantic_entries : int;  (** log entries audited semantically (all epochs) *)
  semantic_us : int;  (** wall µs spent in semantic jobs, incl. cache hits *)
  cache : Avm_core.Replay_cache.stats option;  (** [None] when [dedup = false] *)
}

val run : ?par:Avm_core.Audit_ctx.parallelism -> spec -> outcome

val signature : outcome -> string
(** Hex digest of the full verdict vector (epoch, target, witness,
    mode, ok, detail — in order). Two runs agree iff this does;
    it must be identical at auditor jobs 1 and jobs 4. *)
