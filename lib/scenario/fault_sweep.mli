(** The fault-vs-verdict invariant, end to end.

    The accountability guarantee (paper §3, §4) must be independent of
    network behaviour: lost, delayed, reordered, duplicated and
    corrupted messages — even partitions and crash-restarts — must
    neither mask a cheat nor cause an honest node to be accused. This
    module sweeps seeded fault schedules over a short game session run
    twice, all-honest and with one cheater, audits every player in
    both, and checks that each schedule's verdict vector is identical
    to the fault-free baseline's (which itself must pass every honest
    node and detect the cheat). *)

type schedule = { label : string; faults : Avm_netsim.Faults.t option }

val schedules : duration_us:float -> victim:int -> schedule list
(** The standard six: fault-free baseline, 20% loss, 30% duplication,
    50% reordering (20 ms jitter), 15% corruption, and a
    partition-then-crash-restart of node [victim]. Windows are placed
    inside [duration_us] with enough slack after healing for the
    retransmission backoff to converge before the log is cut. *)

type verdicts = {
  honest_ok : bool array;  (** audit verdict per player, all-honest session *)
  cheat_ok : bool array;  (** audit verdict per player, one player cheating *)
}

type row = {
  label : string;
  verdicts : verdicts;
  retransmissions : int;  (** backoff-scheduled resends, both sessions pooled *)
  gaveup : int;  (** envelopes abandoned after max attempts *)
}

type outcome = { rows : row list; invariant_holds : bool }

val sweep :
  ?players:int ->
  ?duration_us:float ->
  ?seed:int64 ->
  ?rsa_bits:int ->
  ?cheat:Cheats.t ->
  ?cheater:int ->
  ?schedules:schedule list ->
  unit ->
  outcome
(** Run every schedule (default {!schedules}). Defaults: 2 players,
    4 virtual seconds, seed 21, 512-bit keys, the class-1
    ["aimbot-zeus"] cheat on player 1. [invariant_holds] is true iff
    the baseline is sane (honest pass, cheat caught, bystanders clear)
    and every fault schedule reproduces the baseline verdict vector. *)
