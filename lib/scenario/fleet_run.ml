open Avm_core
module Net = Avm_netsim.Net
module Topology = Avm_netsim.Topology
module Faults = Avm_netsim.Faults
module Sim = Avm_netsim.Sim
module Rng = Avm_util.Rng
module Identity = Avm_crypto.Identity

type spec = {
  nodes : int;
  witnesses : int;
  epochs : int;
  epoch_us : float;
  activity : float;
  cheat_frac : float;
  seed : int64;
  rsa_bits : int;
  key_pool : int;
  faults : Faults.t option;
  shards : int;
  dedup : bool;
  spot_rate : int;
}

let default_spec =
  {
    nodes = 200;
    witnesses = 3;
    epochs = 3;
    epoch_us = 1_000_000.0;
    activity = 0.10;
    cheat_frac = 0.02;
    seed = 7L;
    rsa_bits = 512;
    key_pool = 32;
    faults = Some (Faults.make ~drop:0.02 ~reorder:0.05 ~jitter_us:2_000.0 ());
    shards = 8;
    dedup = true;
    spot_rate = 8;
  }

type cheat = { node : int; epoch : int; slot : int; value : int }

type epoch_report = { epoch : int; coverage : float; jobs : int; failures : int }

type outcome = {
  spec : spec;
  net : Net.t;
  assignment : Witness.assignment;
  verdicts : Witness.verdict list;
  reports : epoch_report list;
  cheats : cheat list;
  detected : int list;
  missed : int list;
  false_flagged : int list;
  sim_events : int;
  run_seconds : float;
  audit_jobs : int;
  audit_seconds : float;
  semantic_entries : int;
  semantic_us : int;
  cache : Replay_cache.stats option;
}

(* The driver's own random stream — distinct from both the witness
   assignment's and the network's, so adding a cheater or changing
   activity never reshuffles who audits whom. *)
let driver_rng seed = Rng.create (Int64.logxor seed 0x666C6565745FL)

let pick_cheats rng ~nodes ~epochs ~cheat_frac =
  let count =
    if cheat_frac <= 0.0 then 0
    else max 1 (int_of_float ((cheat_frac *. float_of_int nodes) +. 0.5))
  in
  let chosen = Hashtbl.create (max 16 count) in
  let out = ref [] in
  while Hashtbl.length chosen < min count nodes do
    let node = Rng.int_in rng 0 (nodes - 1) in
    if not (Hashtbl.mem chosen node) then begin
      Hashtbl.add chosen node ();
      (* Poke a kv slot the workload never writes (ops use 0..250),
         with a nonzero value: the tamper is invisible to the guest's
         own outputs and only a witness replay can surface it. *)
      let epoch = Rng.int_in rng 1 epochs in
      let slot = Rng.int_in rng 251 255 in
      let value = 1 + Rng.int_in rng 0 65534 in
      out := { node; epoch; slot; value } :: !out
    end
  done;
  List.sort (fun a b -> compare a.node b.node) !out

(* Who sends envelopes into each node's log: reporters whose primary
   witness it is, plus its own witnesses (their acks carry signatures
   the syntactic pass verifies). Keeping peer_certs this small is what
   lets a 10k-node audit avoid a 10k-entry cert list per job. *)
let cert_slices net (asg : Witness.assignment) =
  let senders = Array.make asg.nodes [] in
  Array.iteri (fun j set -> senders.(set.(0)) <- j :: senders.(set.(0))) asg.sets;
  let cert_of i = Identity.certificate (Avmm.identity (Net.node_avmm (Net.node net i))) in
  let name_of i = Net.node_name (Net.node net i) in
  Array.init asg.nodes (fun t ->
      let seen = Hashtbl.create 8 in
      let add acc i =
        if Hashtbl.mem seen i then acc
        else begin
          Hashtbl.add seen i ();
          (name_of i, cert_of i) :: acc
        end
      in
      let acc = List.fold_left add [] senders.(t) in
      Array.fold_left add acc asg.sets.(t))

let run ?par spec =
  if spec.epochs < 1 then invalid_arg "Fleet_run.run: need at least one epoch";
  let asg = Witness.assign ~seed:spec.seed ~nodes:spec.nodes ~k:spec.witnesses in
  let topology = Topology.of_adjacency asg.Witness.sets in
  let config = Config.make ~snapshot_every_us:None Config.Avmm_rsa768 in
  let image = Guests.fleet_image () in
  let names = List.init spec.nodes (fun i -> Printf.sprintf "n%d" i) in
  let images = List.init spec.nodes (fun _ -> image.Avm_isa.Asm.words) in
  let net =
    Net.create ~seed:spec.seed ?faults:spec.faults ~rsa_bits:spec.rsa_bits
      ~key_pool:spec.key_pool ~mem_words:Guests.fleet_mem_words
      ~log_backend:Avm_tamperlog.Segment_store.Memory ~topology ~config ~images
      ~names ()
  in
  let rng = driver_rng spec.seed in
  let cheats = pick_cheats rng ~nodes:spec.nodes ~epochs:spec.epochs ~cheat_frac:spec.cheat_frac in
  let vals_addr = Guests.fleet_symbol "g_vals" in
  let certs = cert_slices net asg in
  (* Baseline: snapshot seq 1 for every node, before epoch 1 — the
     authenticated state every epoch-1 replay starts from. *)
  Array.iter (fun n -> ignore (Avmm.take_snapshot (Net.node_avmm n))) (Net.nodes net);
  let view_of t =
    let avmm = Net.node_avmm (Net.node net t) in
    {
      Witness.log = Avmm.log avmm;
      snapshots = Avmm.snapshots avmm;
      image = image.Avm_isa.Asm.words;
      mem_words = Guests.fleet_mem_words;
      peers = Net.peers_of net t;
      node_cert = Identity.certificate (Avmm.identity avmm);
      peer_certs = certs.(t);
    }
  in
  (* One replay cache for the whole run, shared by every (target,
     witness) job across all epochs and worker domains: the idle
     majority's epoch chunks are fingerprint-identical fleet-wide, so
     each distinct chunk replays once and the rest are three-digest
     compares (DESIGN.md §14). Seeded from the spec so the spot-check
     designation — and with it the verdict vector — is reproducible. *)
  let cache =
    if spec.dedup then
      Some (Replay_cache.create ~spot_rate:spec.spot_rate ~seed:spec.seed ())
    else None
  in
  let sem_counter name =
    Avm_obs.Metrics.counter (Avm_obs.Metrics.snapshot ()) name
  in
  let sem_entries0 = sem_counter "witness.semantic_entries" in
  let sem_us0 = sem_counter "witness.semantic_us" in
  let verdicts = ref [] in
  let reports = ref [] in
  let run_seconds = ref 0.0 in
  let audit_seconds = ref 0.0 in
  let audit_jobs = ref 0 in
  for epoch = 1 to spec.epochs do
    let epoch_start = float_of_int (epoch - 1) *. spec.epoch_us in
    let epoch_end = float_of_int epoch *. spec.epoch_us in
    (* Seeded activity: ops land at epoch start, waking the chosen
       nodes; everyone else stays parked and costs no events. *)
    let t0 = Unix.gettimeofday () in
    for i = 0 to spec.nodes - 1 do
      if Rng.float rng 1.0 < spec.activity then
        for _ = 1 to 1 + Rng.int_in rng 0 2 do
          let slot = Rng.int_in rng 0 250 in
          let value = Rng.int_in rng 0 65535 in
          Net.queue_input net i (Guests.fleet_input_op ~slot ~value)
        done
    done;
    Net.run net ~until_us:(epoch_start +. (spec.epoch_us /. 2.0)) ();
    List.iter
      (fun (c : cheat) ->
        if c.epoch = epoch then
          Avmm.poke (Net.node_avmm (Net.node net c.node)) ~addr:(vals_addr + c.slot)
            ~value:c.value)
      cheats;
    Net.run net ~until_us:epoch_end ();
    (* Seal every node's segment for this epoch. *)
    Array.iter (fun n -> ignore (Avmm.take_snapshot (Net.node_avmm n))) (Net.nodes net);
    run_seconds := !run_seconds +. (Unix.gettimeofday () -. t0);
    (* Audit: every (target, witness) pair, each witness armed with the
       authenticators its own ledger collected for the target. Views
       and auth lists are materialized before the pool starts so the
       worker domains share nothing mutable. *)
    let views = Array.init spec.nodes view_of in
    let auth_tbl = Hashtbl.create (spec.nodes * asg.Witness.k) in
    Array.iteri
      (fun t set ->
        let tname = Net.node_name (Net.node net t) in
        Array.iter
          (fun w ->
            Hashtbl.replace auth_tbl (t, w)
              (Multiparty.auths_for (Net.node_ledger (Net.node net w)) tname))
          set)
      asg.Witness.sets;
    let f (job : Witness.job) =
      let auths =
        match Hashtbl.find_opt auth_tbl (job.Witness.target, job.Witness.witness) with
        | Some l -> l
        | None -> []
      in
      Witness.audit_job ?cache ~view:views.(job.Witness.target) ~auths job
    in
    let jobs = Witness.epoch_jobs asg ~epoch in
    let t1 = Unix.gettimeofday () in
    let vs = Witness.run_sharded ?par ~shards:spec.shards ~f jobs in
    audit_seconds := !audit_seconds +. (Unix.gettimeofday () -. t1);
    audit_jobs := !audit_jobs + List.length jobs;
    let failures = List.length (List.filter (fun v -> not v.Witness.ok) vs) in
    reports :=
      {
        epoch;
        coverage = Witness.coverage vs ~nodes:spec.nodes ~epoch;
        jobs = List.length jobs;
        failures;
      }
      :: !reports;
    verdicts := vs :: !verdicts
  done;
  let verdicts = List.concat (List.rev !verdicts) in
  let flagged = Hashtbl.create 16 in
  List.iter
    (fun (v : Witness.verdict) ->
      if not v.Witness.ok then Hashtbl.replace flagged v.Witness.job.Witness.target ())
    verdicts;
  let cheater_set = Hashtbl.create 16 in
  List.iter (fun (c : cheat) -> Hashtbl.replace cheater_set c.node ()) cheats;
  let detected =
    List.filter_map
      (fun (c : cheat) -> if Hashtbl.mem flagged c.node then Some c.node else None)
      cheats
  in
  let missed =
    List.filter_map
      (fun (c : cheat) -> if Hashtbl.mem flagged c.node then None else Some c.node)
      cheats
  in
  let false_flagged =
    Hashtbl.fold (fun t () acc -> if Hashtbl.mem cheater_set t then acc else t :: acc) flagged []
    |> List.sort compare
  in
  {
    spec;
    net;
    assignment = asg;
    verdicts;
    reports = List.rev !reports;
    cheats;
    detected;
    missed;
    false_flagged;
    sim_events = Sim.processed (Net.sim net);
    run_seconds = !run_seconds;
    audit_jobs = !audit_jobs;
    audit_seconds = !audit_seconds;
    semantic_entries = sem_counter "witness.semantic_entries" - sem_entries0;
    semantic_us = sem_counter "witness.semantic_us" - sem_us0;
    cache = Option.map Replay_cache.stats cache;
  }

let signature outcome =
  let b = Buffer.create 4096 in
  List.iter
    (fun (v : Witness.verdict) ->
      let j = v.Witness.job in
      Buffer.add_string b
        (Printf.sprintf "%d:%d:%d:%s:%b:%s\n" j.Witness.epoch j.Witness.target
           j.Witness.witness
           (match j.Witness.mode with Witness.Syntactic -> "syn" | Witness.Semantic -> "sem")
           v.Witness.ok v.Witness.detail))
    outcome.verdicts;
  Digest.to_hex (Digest.string (Buffer.contents b))
