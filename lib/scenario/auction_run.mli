(** The auction scenario from the paper's introduction: "in a
    competitive system, such as an online game or an auction, users may
    wish to verify that other players do not cheat, and that the
    provider of the service implements the stated rules faithfully."

    Node 0 runs the auctioneer inside an AVM: it collects bids each
    round and announces the highest bidder. Bidders submit bids from
    local input. A crooked auctioneer rigs rounds by rewriting the
    stored high bid / high bidder in guest memory before the round
    closes — announcements then contradict the bids the log shows he
    received, and any bidder's audit proves it. *)

val auction_source : string
(** The auctioneer/bidder guest (role from the first input event). *)

val auction_image : unit -> Avm_isa.Asm.image

type outcome = {
  net : Avm_netsim.Net.t;
  bidders : int;
  duration_us : float;
  rounds : int;  (** auction rounds completed *)
  wins : int array;  (** per-node rounds won, per the auctioneer's state *)
}

val run :
  ?bidders:int ->
  ?duration_us:float ->
  ?rigged:bool ->
  ?rsa_bits:int ->
  ?seed:int64 ->
  unit ->
  outcome
(** Defaults: 3 bidders, 12 virtual seconds, honest, 512-bit keys.
    [rigged] makes the auctioneer poke himself in as winner of every
    round. *)

val audit : outcome -> target:int -> Avm_core.Audit.outcome
(** Audit any participant (bidders pool their authenticators, as in
    §4.6). *)
