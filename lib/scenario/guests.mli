(** Guest images for the evaluation scenarios.

    The {!game} guest is this repository's Counterstrike stand-in: a
    symmetric multiplayer shooter where node 0 hosts the server (and
    plays), other nodes are clients. Mechanics relevant to the paper's
    cheats are all present: finite ammunition, server-tracked health
    and score, position updates, an aim angle fed from local input,
    a render loop timed by clock reads, and an optional 72 fps frame
    cap implemented — as Counterstrike does (§6.5) — by busy-waiting
    on the clock.

    The {!kvstore} guest is the MySQL + sql-bench stand-in for the
    spot-checking experiment (§6.12): a key-value server with disk
    persistence and a closed-loop benchmark client.

    All guests are mlang programs compiled with {!Avm_mlang.Compile};
    cheats are built by patching the game source ({!game_with_patch})
    — the moral equivalent of installing a hacked DLL in the VM
    image. *)

val stack_top : int
(** Stack top used by all guests (matches {!mem_words}). *)

val mem_words : int
(** Guest memory size in words. *)

val game_source : string
(** The reference game source. *)

val game_image : unit -> Avm_isa.Asm.image
(** Compiled reference image (memoized). *)

val game_with_patch : old:string -> new_:string -> Avm_isa.Asm.image
(** [game_with_patch ~old ~new_] compiles the game with one source
    fragment substituted — used by the cheat catalog.
    @raise Failure if [old] does not occur in the source (a cheat
    that patches nothing would silently test nothing). *)

val game_symbol : string -> int
(** Address of a global in the reference image (e.g. ["g_ammo"]) —
    what a memory-poking cheat needs to know.
    @raise Not_found if absent. *)

(** {1 Input encoding}

    One word per local input event; the harness bots feed these
    through {!Avm_core.Avmm.queue_input}. *)

val input_role : role:int -> nplayers:int -> int
(** Must be the first input delivered to each guest. Role 0 = server. *)

val input_move : dx:int -> dy:int -> int
(** [dx], [dy] in [\[-128, 127\]]. *)

val input_aim : angle:int -> int
(** [angle] in [\[0, 65535\]]. *)

val input_fire : int
val input_reload : int
val input_set_cap : bool -> int
(** Toggle the 72 fps frame cap at runtime. *)

(** {1 KV store} *)

val kvstore_source : string
val kvstore_image : unit -> Avm_isa.Asm.image
val kv_input_role : role:int -> int
(** Role 0 = server, 1 = benchmark client. *)

(** {1 Fleet node}

    The fleet guest is a miniature kv store for the 1k–10k node
    witness-auditing experiments: it applies queued operations,
    reports a digest to its primary witness (guest dest id 0), folds
    received reports into its own digest without replying, and parks
    on the SLEEP port whenever idle — so the event-driven harness
    schedules nothing for it. *)

val fleet_source : string
val fleet_stack_top : int
val fleet_mem_words : int
val fleet_image : unit -> Avm_isa.Asm.image

val fleet_input_op : slot:int -> value:int -> int
(** One kv write: [slot] in [\[0, 255\]], [value] 16-bit. *)

val fleet_symbol : string -> int
(** Address of a fleet-guest global (e.g. ["g_vals"]) — what the
    cheating minority's memory pokes aim at. *)
