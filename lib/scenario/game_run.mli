(** Orchestration of one multiplayer game session (the paper's §6.2
    experimental setup: three machines, node 0 hosting the server).

    Drives a {!Avm_netsim.Net} world: boots one game guest per player,
    feeds role assignments and bot inputs, applies a cheat's runtime
    actions if one is active, and runs for the requested virtual
    duration. *)

type spec = {
  players : int;
  duration_us : float;
  config : Avm_core.Config.t;
  cheat : (int * Cheats.t) option;  (** cheating node index and cheat *)
  frame_cap : bool;  (** boot with the 72 fps cap enabled *)
  seed : int64;
  rsa_bits : int;  (** identity key size (tests shrink this for speed) *)
  faults : Avm_netsim.Faults.t option;
      (** network fault policy for the session; [None] = fault-free *)
}

val default_spec : spec
(** 3 players, 60 virtual seconds, avmm-rsa768 with 30 s snapshots, no
    cheat, no cap, 768-bit keys, no network faults. *)

type outcome = {
  net : Avm_netsim.Net.t;
  spec : spec;
  fps : float array;  (** average frame rate per node *)
  instructions : int array;
  devices : Avm_core.Secure_input.device array;
      (** each player's signing keyboard (§7.2 extension) *)
  attestations : Avm_core.Secure_input.attestation list array;
      (** signed event streams, oldest first; forged inputs (external
          aimbot) have no attestations *)
}

val play : ?on_slice:(Avm_netsim.Net.t -> float -> unit) -> spec -> outcome
(** Run the session to completion. [on_slice] is invoked after every
    50 ms slice with the world and the current virtual time — the
    log-growth experiments sample there. *)

val reference_image : unit -> int array
(** The reference image words (what auditors replay against). *)

val collect_auths : Avm_netsim.Net.t -> target:int -> Avm_tamperlog.Auth.t list
(** Pool every participant's collected authenticators for one node —
    the §4.6 step Alice performs before auditing Bob. *)

val audit_player :
  ?par:Avm_core.Audit.parallelism -> outcome -> auditor:int -> target:int -> Avm_core.Audit.outcome
(** Full audit of [target]'s log using the reference image and the
    authenticators collected by all participants. [auditor] is kept
    for symmetry (any participant reaches the same verdict). [par]
    parallelizes the syntactic pass; the verdict must not depend on
    the lane count. *)

val audit_inputs : outcome -> target:int -> (int, string) result
(** The §7.2 secure-input check: verify every input event in
    [target]'s log against the signed keyboard stream. This is what
    finally catches the external aimbot. *)
