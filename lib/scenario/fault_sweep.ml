open Avm_core
open Avm_netsim

type schedule = { label : string; faults : Faults.t option }

let schedules ~duration_us ~victim =
  let d = duration_us in
  (* Probabilistic faults heal at 80% of the session: the audit's
     every-send-acked rule exempts only the last [ack_grace] log
     entries, so the final stretch must give retransmissions a clean
     wire to converge on — exactly the partition→heal story of §4.6,
     applied to lossy/corrupting episodes. *)
  let heal = 0.8 *. d in
  [
    { label = "fault-free"; faults = None };
    { label = "loss-20%"; faults = Some (Faults.make ~drop:0.2 ~until_us:heal ()) };
    { label = "duplicate-30%"; faults = Some (Faults.make ~duplicate:0.3 ~until_us:heal ()) };
    {
      label = "reorder-50%";
      faults = Some (Faults.make ~reorder:0.5 ~jitter_us:20_000.0 ~until_us:heal ());
    };
    { label = "corrupt-15%"; faults = Some (Faults.make ~corrupt:0.15 ~until_us:heal ()) };
    {
      label = "partition+crash";
      faults =
        Some
          (Faults.make
             ~partitions:
               [ { Faults.from_us = 0.15 *. d; to_us = 0.35 *. d; node = victim } ]
             ~crashes:[ { Faults.from_us = 0.55 *. d; to_us = 0.65 *. d; node = victim } ]
             ());
    };
  ]

type verdicts = {
  honest_ok : bool array; (* audit verdict per player, all-honest session *)
  cheat_ok : bool array; (* audit verdict per player, one player cheating *)
}

type row = {
  label : string;
  verdicts : verdicts;
  retransmissions : int; (* both sessions pooled *)
  gaveup : int;
}

type outcome = { rows : row list; invariant_holds : bool }

let session_verdicts ~players ~duration_us ~seed ~rsa_bits ~cheat ~faults =
  let spec =
    {
      Game_run.players;
      duration_us;
      config =
        (* The retransmission schedule must be matched to the loss rate
           and session length: with 20% loss per leg and only a few
           virtual seconds, a 250 ms backoff base cannot converge, and
           sends would legitimately finish unacked — the default knobs
           are tuned for the 30–60 s sessions of the experiments. *)
        Config.make
          ~snapshot_every_us:(Some (int_of_float (duration_us /. 2.0)))
          ~retrans_base_us:60_000.0 ~retrans_cap_us:500_000.0 Config.Avmm_rsa768;
      cheat;
      frame_cap = false;
      seed;
      rsa_bits;
      faults;
    }
  in
  let o = Game_run.play spec in
  let ok =
    Array.init players (fun target ->
        let report = Game_run.audit_player o ~auditor:((target + 1) mod players) ~target in
        match report.Audit.verdict with Ok () -> true | Error _ -> false)
  in
  let retrans = Net.retransmissions o.Game_run.net in
  let gaveup =
    Array.fold_left
      (fun acc n -> acc + Avmm.retransmissions_gaveup (Net.node_avmm n))
      0
      (Net.nodes o.Game_run.net)
  in
  (ok, retrans, gaveup)

let sweep ?(players = 2) ?(duration_us = 4.0e6) ?(seed = 21L) ?(rsa_bits = 512)
    ?(cheat = Cheats.find "aimbot-zeus") ?(cheater = 1) ?schedules:scheds () =
  if cheater < 0 || cheater >= players then invalid_arg "Fault_sweep.sweep: cheater index";
  let scheds =
    match scheds with Some s -> s | None -> schedules ~duration_us ~victim:cheater
  in
  let rows =
    List.map
      (fun s ->
        let honest_ok, r1, g1 =
          session_verdicts ~players ~duration_us ~seed ~rsa_bits ~cheat:None
            ~faults:s.faults
        in
        let cheat_ok, r2, g2 =
          session_verdicts ~players ~duration_us ~seed ~rsa_bits
            ~cheat:(Some (cheater, cheat)) ~faults:s.faults
        in
        {
          label = s.label;
          verdicts = { honest_ok; cheat_ok };
          retransmissions = r1 + r2;
          gaveup = g1 + g2;
        })
      scheds
  in
  let baseline = (List.hd rows).verdicts in
  let sane =
    (* the fault-free run must itself be meaningful: every honest node
       passes, the cheat is detected, bystanders are not dragged in *)
    Array.for_all (fun b -> b) baseline.honest_ok
    && (not baseline.cheat_ok.(cheater))
    && Array.for_all (fun b -> b)
         (Array.mapi (fun i ok -> i = cheater || ok) baseline.cheat_ok)
  in
  let invariant_holds =
    sane
    && List.for_all
         (fun r ->
           r.verdicts.honest_ok = baseline.honest_ok
           && r.verdicts.cheat_ok = baseline.cheat_ok)
         rows
  in
  { rows; invariant_holds }
