open Avm_core
open Avm_netsim

type outcome = {
  net : Net.t;
  duration_us : float;
  server_snapshots : Avm_machine.Snapshot.t list;
  client_ops : int;
}

let server_image () = (Guests.kvstore_image ()).Avm_isa.Asm.words

let run ?(duration_us = 300.0e6) ?(snapshot_every_us = 20_000_000) ?(rsa_bits = 768)
    ?(seed = 7L) () =
  let config = Config.make ~snapshot_every_us:(Some snapshot_every_us) Config.Avmm_rsa768 in
  let image = server_image () in
  let net =
    Net.create ~seed ~rsa_bits ~config ~images:[ image; image ]
      ~mem_words:Guests.mem_words ~names:[ "kv-server"; "kv-client" ] ()
  in
  Net.queue_input net 0 (Guests.kv_input_role ~role:0);
  Net.queue_input net 1 (Guests.kv_input_role ~role:1);
  Net.run net ~until_us:duration_us ();
  let server = Net.node_avmm (Net.node net 0) in
  let client = Net.node_avmm (Net.node net 1) in
  let ops_addr = Avm_isa.Asm.symbol (Guests.kvstore_image ()) "g_ops" in
  {
    net;
    duration_us;
    server_snapshots = Avmm.snapshots server;
    client_ops = Avm_core.Avmm.peek client ~addr:ops_addr;
  }

let audit_server_chunk o ~start_snapshot ~k =
  let server = Net.node_avmm (Net.node o.net 0) in
  Spot_check.check_chunk ~image:(server_image ()) ~mem_words:Guests.mem_words
    ~snapshots:o.server_snapshots ~log:(Avmm.log server) ~peers:(Net.peers o.net)
    ~start_snapshot ~k ()

let full_audit_cost o =
  let server = Net.node_avmm (Net.node o.net 0) in
  let log = Avmm.log server in
  let entries = Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log) in
  let compressed =
    String.length (Avm_compress.Codec.compress (Avm_tamperlog.Log.encode_segment entries))
  in
  (Avm_machine.Machine.icount (Avmm.machine server), compressed)
