open Avm_core
open Avm_netsim

type spec = {
  players : int;
  duration_us : float;
  config : Config.t;
  cheat : (int * Cheats.t) option;
  frame_cap : bool;
  seed : int64;
  rsa_bits : int;
  faults : Faults.t option;
}

let default_spec =
  {
    players = 3;
    duration_us = 60.0e6;
    config = Config.make ~snapshot_every_us:(Some 30_000_000) Config.Avmm_rsa768;
    cheat = None;
    frame_cap = false;
    seed = 1L;
    rsa_bits = 768;
    faults = None;
  }

type outcome = {
  net : Net.t;
  spec : spec;
  fps : float array;
  instructions : int array;
  devices : Secure_input.device array;
  attestations : Secure_input.attestation list array;
}

let player_names n = List.init n (fun i -> Printf.sprintf "player%d" i)
let reference_image () = (Guests.game_image ()).Avm_isa.Asm.words

let play ?(on_slice = fun _ _ -> ()) spec =
  let images =
    List.init spec.players (fun i ->
        match spec.cheat with
        | Some (ci, cheat) when ci = i -> (Cheats.image_for cheat).Avm_isa.Asm.words
        | _ -> reference_image ())
  in
  let net =
    Net.create ~seed:spec.seed ?faults:spec.faults ~rsa_bits:spec.rsa_bits
      ~config:spec.config ~images ~mem_words:Guests.mem_words
      ~names:(player_names spec.players) ()
  in
  (* Every player has a signing keyboard (§7.2); genuine inputs are
     attested as they are typed. Forged inputs (the external aimbot's)
     enter through Avmm.queue_input directly and leave no attestation. *)
  let dev_rng = Avm_util.Rng.create (Int64.add spec.seed 777L) in
  let devices = Array.init spec.players (fun _ -> Secure_input.create_device dev_rng ()) in
  let attested : Secure_input.attestation list ref array =
    Array.init spec.players (fun _ -> ref [])
  in
  let typed i v =
    attested.(i) := Secure_input.attest devices.(i) v :: !(attested.(i));
    Net.queue_input net i v
  in
  (* Role assignment must be the first input each guest reads. *)
  for i = 0 to spec.players - 1 do
    let role = Guests.input_role ~role:i ~nplayers:spec.players in
    let role = if spec.frame_cap then role lor (1 lsl 16) else role in
    typed i role
  done;
  let bots =
    Array.init spec.players (fun i ->
        Bots.create ~seed:(Int64.add spec.seed (Int64.of_int (1000 + i))))
  in
  let step = 50_000.0 in
  let t = ref 0.0 in
  while !t < spec.duration_us do
    let last = !t in
    t := Float.min spec.duration_us (!t +. step);
    Net.run net ~until_us:!t ();
    for i = 0 to spec.players - 1 do
      Bots.tick bots.(i) ~now_us:!t ~last_us:last (typed i)
    done;
    (match spec.cheat with
    | Some (ci, cheat) ->
      let avmm = Net.node_avmm (Net.node net ci) in
      List.iter (fun act -> act avmm) (Cheats.runtime_actions cheat ~now_us:!t ~last_us:last)
    | None -> ());
    on_slice net !t
  done;
  let fps =
    Array.init spec.players (fun i ->
        float_of_int (Avmm.frames (Net.node_avmm (Net.node net i)))
        /. (spec.duration_us /. 1.0e6))
  in
  let instructions =
    Array.init spec.players (fun i ->
        Avm_machine.Machine.icount (Avm_core.Avmm.machine (Net.node_avmm (Net.node net i))))
  in
  {
    net;
    spec;
    fps;
    instructions;
    devices;
    attestations = Array.map (fun r -> List.rev !r) attested;
  }

let collect_auths net ~target =
  let name = Net.node_name (Net.node net target) in
  let pool = Multiparty.create ~self:"auditor" in
  Array.iter
    (fun n -> Multiparty.merge_auths pool ~from:(Net.node_ledger n) ~node:name)
    (Net.nodes net);
  Multiparty.auths_for pool name

let audit_player ?par outcome ~auditor ~target =
  ignore auditor;
  let net = outcome.net in
  let node = Net.node net target in
  let name = Net.node_name node in
  let log = Avmm.log (Net.node_avmm node) in
  let entries = Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log) in
  let certs = Net.certificates net in
  let fuel =
    (* The recorded run's instruction count bounds honest replay; give
       slack for divergence hunting. *)
    (2 * Avm_machine.Machine.icount (Avmm.machine (Net.node_avmm node))) + 5_000_000
  in
  Audit.full
    ~ctx:
      (Audit.ctx ~node_cert:(List.assoc name certs) ~peer_certs:certs
         ~auths:(collect_auths net ~target) ())
    ~image:(reference_image ()) ~mem_words:Guests.mem_words ~fuel ~peers:(Net.peers net)
    ~prev_hash:Avm_tamperlog.Log.genesis_hash ~entries ?par ()

let audit_inputs outcome ~target =
  let node = Net.node outcome.net target in
  let log = Avmm.log (Net.node_avmm node) in
  Secure_input.audit
    ~device_key:(Secure_input.device_public outcome.devices.(target))
    ~entries:(Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log))
    ~attestations:outcome.attestations.(target)
