open Avm_core
module Net = Avm_netsim.Net
module Topology = Avm_netsim.Topology
module Faults = Avm_netsim.Faults
module Sim = Avm_netsim.Sim
module Rng = Avm_util.Rng
module Identity = Avm_crypto.Identity
module Log = Avm_tamperlog.Log
module Entry = Avm_tamperlog.Entry
module Auth = Avm_tamperlog.Auth

type spec = {
  nodes : int;
  witnesses : int;
  epochs : int;
  epoch_us : float;
  activity : float;
  fork_frac : float;
  seed : int64;
  rsa_bits : int;
  key_pool : int;
  shards : int;
}

let default_spec =
  {
    nodes = 60;
    witnesses = 3;
    epochs = 3;
    epoch_us = 400_000.0;
    activity = 0.15;
    fork_frac = 0.05;
    seed = 11L;
    rsa_bits = 512;
    key_pool = 32;
    shards = 8;
  }

type forker = { node : int; epoch : int }

type outcome = {
  spec : spec;
  net : Net.t;
  assignment : Witness.assignment;
  verdicts : Witness.verdict list;
  forkers : forker list;
  exchange_detected : (int * int) list;
  baseline_detected : (int * int) list;
  false_flags : int list;
  proofs : Evidence.t list;
  proofs_verified : int;
  commit_auths : int;
  ex_messages : int;
  ex_auths : int;
  ex_bytes : int;
  sim_events : int;
  run_seconds : float;
  audit_seconds : float;
  exchange_seconds : float;
}

(* Distinct from the assignment's and the network's streams, so adding
   a forker never reshuffles who audits whom. *)
let driver_rng seed = Rng.create (Int64.logxor seed 0x65717569765FL)

let pick_forkers rng ~nodes ~epochs ~fork_frac =
  let count =
    if fork_frac <= 0.0 then 0
    else max 1 (int_of_float ((fork_frac *. float_of_int nodes) +. 0.5))
  in
  let chosen = Hashtbl.create (max 16 count) in
  let out = ref [] in
  while Hashtbl.length chosen < min count nodes do
    let node = Rng.int_in rng 0 (nodes - 1) in
    if not (Hashtbl.mem chosen node) then begin
      Hashtbl.add chosen node ();
      out := { node; epoch = Rng.int_in rng 1 epochs } :: !out
    end
  done;
  List.sort (fun a b -> compare a.node b.node) !out

(* Same slice as Fleet_run: reporters whose primary witness the target
   is, plus the target's own witnesses. *)
let cert_slices net (asg : Witness.assignment) =
  let senders = Array.make asg.nodes [] in
  Array.iteri (fun j set -> senders.(set.(0)) <- j :: senders.(set.(0))) asg.sets;
  let cert_of i = Identity.certificate (Avmm.identity (Net.node_avmm (Net.node net i))) in
  let name_of i = Net.node_name (Net.node net i) in
  Array.init asg.nodes (fun t ->
      let seen = Hashtbl.create 8 in
      let add acc i =
        if Hashtbl.mem seen i then acc
        else begin
          Hashtbl.add seen i ();
          (name_of i, cert_of i) :: acc
        end
      in
      let acc = List.fold_left add [] senders.(t) in
      Array.fold_left add acc asg.sets.(t))

(* The forged head: a commitment over a Note the node never logged, at
   the same seq and prev as the genuine one, signed with the node's
   real identity — exactly what a log fork looks like from outside. *)
let fork_commitment avmm ~epoch =
  let log = Avmm.log avmm in
  let n = Log.length log in
  let prev = Log.prev_hash log n in
  let entry =
    Entry.seal ~prev ~seq:n (Entry.Note (Printf.sprintf "commit epoch %d (forked)" epoch))
  in
  Auth.make (Avmm.identity avmm) ~entry ~prev_hash:prev

let run ?par spec =
  if spec.epochs < 1 then invalid_arg "Equivocation_run.run: need at least one epoch";
  if spec.witnesses < 2 then
    invalid_arg "Equivocation_run.run: equivocation needs at least two witnesses per node";
  let asg = Witness.assign ~seed:spec.seed ~nodes:spec.nodes ~k:spec.witnesses in
  let topology = Topology.of_adjacency asg.Witness.sets in
  let config = Config.make ~snapshot_every_us:None Config.Avmm_rsa768 in
  let image = Guests.fleet_image () in
  let names = List.init spec.nodes (fun i -> Printf.sprintf "n%d" i) in
  let images = List.init spec.nodes (fun _ -> image.Avm_isa.Asm.words) in
  let rng = driver_rng spec.seed in
  let forkers = pick_forkers rng ~nodes:spec.nodes ~epochs:spec.epochs ~fork_frac:spec.fork_frac in
  (* The adversary lives in the fault layer: a fork window makes the
     node two-faced from just after its fork epoch opens until halfway
     through the next, which covers the epoch-boundary commitment. *)
  let faults =
    Faults.make
      ~forks:
        (List.map
           (fun f ->
             {
               Faults.node = f.node;
               from_us = (float_of_int (f.epoch - 1) *. spec.epoch_us) +. 1.0;
               to_us = (float_of_int f.epoch +. 0.5) *. spec.epoch_us;
             })
           forkers)
      ()
  in
  let net =
    Net.create ~seed:spec.seed ~faults ~rsa_bits:spec.rsa_bits ~key_pool:spec.key_pool
      ~mem_words:Guests.fleet_mem_words ~log_backend:Avm_tamperlog.Segment_store.Memory
      ~topology ~config ~images ~names ()
  in
  let certs = cert_slices net asg in
  let cert_of i = Identity.certificate (Avmm.identity (Net.node_avmm (Net.node net i))) in
  Array.iter (fun n -> ignore (Avmm.take_snapshot (Net.node_avmm n))) (Net.nodes net);
  let view_of t =
    let avmm = Net.node_avmm (Net.node net t) in
    {
      Witness.log = Avmm.log avmm;
      snapshots = Avmm.snapshots avmm;
      image = image.Avm_isa.Asm.words;
      mem_words = Guests.fleet_mem_words;
      peers = Net.peers_of net t;
      node_cert = Identity.certificate (Avmm.identity avmm);
      peer_certs = certs.(t);
    }
  in
  (* One persistent store per witness, kept across epochs: a fork's two
     heads may reach the same store epochs apart. *)
  let stores = Array.init spec.nodes (fun _ -> Witness.equiv_store ()) in
  let verdicts = ref [] in
  let run_seconds = ref 0.0 in
  let audit_seconds = ref 0.0 in
  let exchange_seconds = ref 0.0 in
  let commit_auths = ref 0 in
  let ex_messages = ref 0 and ex_auths = ref 0 and ex_bytes = ref 0 in
  let accused_seen = Hashtbl.create 8 in
  let exchange_detected = ref [] in
  for epoch = 1 to spec.epochs do
    let epoch_end = float_of_int epoch *. spec.epoch_us in
    let t0 = Unix.gettimeofday () in
    for i = 0 to spec.nodes - 1 do
      if Rng.float rng 1.0 < spec.activity then
        for _ = 1 to 1 + Rng.int_in rng 0 2 do
          let slot = Rng.int_in rng 0 250 in
          let value = Rng.int_in rng 0 65535 in
          Net.queue_input net i (Guests.fleet_input_op ~slot ~value)
        done
    done;
    Net.run net ~until_us:epoch_end ();
    (* Seal every node's segment, then run the commitment protocol:
       the commitment Note lands after the boundary Snapshot_ref, so
       it is audited as part of the next epoch — which is exactly why
       the per-witness baseline audits cannot flag a fork until one
       epoch later, while the exchange catches it now. *)
    Array.iter (fun n -> ignore (Avmm.take_snapshot (Net.node_avmm n))) (Net.nodes net);
    for i = 0 to spec.nodes - 1 do
      let avmm = Net.node_avmm (Net.node net i) in
      Avmm.note avmm (Printf.sprintf "commit epoch %d" epoch);
      match Avmm.commitment avmm with
      | None -> ()
      | Some a ->
        let set = asg.Witness.sets.(i) in
        let record w auth =
          Multiparty.record_auth (Net.node_ledger (Net.node net w)) auth;
          incr commit_auths
        in
        if Net.two_faced net i then begin
          let b = fork_commitment avmm ~epoch in
          Array.iteri (fun slot w -> record w (if slot mod 2 = 0 then a else b)) set
        end
        else Array.iter (fun w -> record w a) set
    done;
    run_seconds := !run_seconds +. (Unix.gettimeofday () -. t0);
    let views = Array.init spec.nodes view_of in
    let auth_tbl = Hashtbl.create (spec.nodes * asg.Witness.k) in
    Array.iteri
      (fun t set ->
        let tname = Net.node_name (Net.node net t) in
        Array.iter
          (fun w ->
            Hashtbl.replace auth_tbl (t, w)
              (Multiparty.auths_for (Net.node_ledger (Net.node net w)) tname))
          set)
      asg.Witness.sets;
    let f (job : Witness.job) =
      let auths =
        match Hashtbl.find_opt auth_tbl (job.Witness.target, job.Witness.witness) with
        | Some l -> l
        | None -> []
      in
      Witness.audit_job ~view:views.(job.Witness.target) ~auths job
    in
    let jobs = Witness.epoch_jobs asg ~epoch in
    let t1 = Unix.gettimeofday () in
    let vs = Witness.run_sharded ?par ~shards:spec.shards ~f jobs in
    audit_seconds := !audit_seconds +. (Unix.gettimeofday () -. t1);
    verdicts := vs :: !verdicts;
    (* The tentpole: gossip each witness set's collected authenticators
       (commitments included) and pair up conflicting heads. *)
    let t2 = Unix.gettimeofday () in
    let stats =
      Witness.exchange asg ~stores
        ~collected:(fun ~target ~witness ->
          match Hashtbl.find_opt auth_tbl (target, witness) with Some l -> l | None -> [])
        ~cert_of
    in
    exchange_seconds := !exchange_seconds +. (Unix.gettimeofday () -. t2);
    ex_messages := !ex_messages + stats.Witness.ex_messages;
    ex_auths := !ex_auths + stats.Witness.ex_auths;
    ex_bytes := !ex_bytes + stats.Witness.ex_bytes;
    List.iter
      (fun (ev : Evidence.t) ->
        if not (Hashtbl.mem accused_seen ev.Evidence.accused) then begin
          Hashtbl.add accused_seen ev.Evidence.accused ();
          let idx = Scanf.sscanf ev.Evidence.accused "n%d" (fun i -> i) in
          exchange_detected := (idx, epoch) :: !exchange_detected
        end)
      stats.Witness.ex_proofs
  done;
  let verdicts = List.concat (List.rev !verdicts) in
  (* Per-witness baseline: first epoch each target was flagged by an
     ordinary audit job (the collected-auth-vs-log mismatch route). *)
  let baseline_first = Hashtbl.create 8 in
  List.iter
    (fun (v : Witness.verdict) ->
      if not v.Witness.ok then begin
        let t = v.Witness.job.Witness.target and e = v.Witness.job.Witness.epoch in
        match Hashtbl.find_opt baseline_first t with
        | Some e' when e' <= e -> ()
        | _ -> Hashtbl.replace baseline_first t e
      end)
    verdicts;
  let baseline_detected =
    Hashtbl.fold (fun t e acc -> (t, e) :: acc) baseline_first [] |> List.sort compare
  in
  let forker_set = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace forker_set f.node ()) forkers;
  let exchange_detected = List.sort compare !exchange_detected in
  let false_flags =
    List.filter (fun (t, _) -> not (Hashtbl.mem forker_set t)) (exchange_detected @ baseline_detected)
    |> List.map fst |> List.sort_uniq compare
  in
  (* Every proof must stand alone: a third party with only the accused
     node's certificate — no log, no image, no peers — re-verifies it. *)
  let proofs =
    Array.to_list stores
    |> List.concat_map Witness.equiv_proofs
    |> List.sort_uniq (fun (a : Evidence.t) b -> compare a.Evidence.accused b.Evidence.accused)
  in
  let proofs_verified =
    List.length
      (List.filter
         (fun (ev : Evidence.t) ->
           let idx = Scanf.sscanf ev.Evidence.accused "n%d" (fun i -> i) in
           let ctx = Audit_ctx.ctx ~node_cert:(cert_of idx) () in
           Audit.check_evidence ev ~ctx ~image:[||] ~peers:[] ())
         proofs)
  in
  {
    spec;
    net;
    assignment = asg;
    verdicts;
    forkers;
    exchange_detected;
    baseline_detected;
    false_flags;
    proofs;
    proofs_verified;
    commit_auths = !commit_auths;
    ex_messages = !ex_messages;
    ex_auths = !ex_auths;
    ex_bytes = !ex_bytes;
    sim_events = Sim.processed (Net.sim net);
    run_seconds = !run_seconds;
    audit_seconds = !audit_seconds;
    exchange_seconds = !exchange_seconds;
  }

let signature outcome =
  let b = Buffer.create 4096 in
  List.iter
    (fun (v : Witness.verdict) ->
      let j = v.Witness.job in
      Buffer.add_string b
        (Printf.sprintf "%d:%d:%d:%s:%b:%s\n" j.Witness.epoch j.Witness.target
           j.Witness.witness
           (match j.Witness.mode with Witness.Syntactic -> "syn" | Witness.Semantic -> "sem")
           v.Witness.ok v.Witness.detail))
    outcome.verdicts;
  List.iter
    (fun (ev : Evidence.t) ->
      match ev.Evidence.accusation with
      | Evidence.Equivocation { a; b = b' } ->
        Buffer.add_string b
          (Printf.sprintf "proof:%s:%d:%s:%s\n" ev.Evidence.accused a.Auth.seq a.Auth.hash
             b'.Auth.hash)
      | _ -> Buffer.add_string b (Printf.sprintf "proof:%s\n" ev.Evidence.accused))
    outcome.proofs;
  List.iter
    (fun (n, e) -> Buffer.add_string b (Printf.sprintf "caught:%d:%d\n" n e))
    outcome.exchange_detected;
  Digest.to_hex (Digest.string (Buffer.contents b))
