(** The peer-to-peer scenario from the paper's introduction: "nodes in
    peer-to-peer and federated systems may wish to verify that others
    follow the protocol and contribute their fair share of resources."

    Peers swap chunks of a file: each starts with a slice and requests
    missing chunks from their owners; the protocol obliges every peer
    to serve requests. A {b freerider} runs a patched client that
    keeps downloading but never uploads. Without AVMs this is
    deniable ("your requests must have been lost"); with them, the
    freerider's own log proves he received the requests, and replaying
    the reference client against that log produces the uploads his log
    lacks — an output divergence that convicts him. *)

val p2p_source : string
val p2p_image : unit -> Avm_isa.Asm.image

val freerider_image : unit -> Avm_isa.Asm.image
(** The patched client: requests chunks but never serves any. *)

type outcome = {
  net : Avm_netsim.Net.t;
  peers_n : int;
  duration_us : float;
  served : int array;  (** chunks each peer uploaded (from guest state) *)
  have : int array;  (** chunks each peer holds at the end *)
}

val run :
  ?peers_n:int ->
  ?duration_us:float ->
  ?freerider:int option ->
  ?rsa_bits:int ->
  ?seed:int64 ->
  unit ->
  outcome
(** Defaults: 4 peers, 20 virtual seconds, no freerider, 512-bit
    keys. *)

val audit : outcome -> target:int -> Avm_core.Audit.outcome
