open Avm_core
open Avm_netsim

(* Chunk c belongs initially to peer c / chunks_per_peer. Message
   types: 1 = REQUEST [requester, chunk], 2 = DATA [chunk, payload]. *)
let p2p_source =
  {|
const NCHUNKS = 32;
const PER_PEER = 8;

global role;
global nplayers;
global have[32];
global served;
global fetched;

fn serve(requester, chunk) {
  if (have[chunk] == 1) {
    out(NET_TX, requester);
    out(NET_TX, 2);
    out(NET_TX, chunk);
    out(NET_TX, chunk * 7 + 3);   // deterministic chunk payload
    out(NET_TX_SEND, 0);
    served = served + 1;
  }
}

fn drain() {
  var avail = in(NET_RX_AVAIL);
  while (avail > 0) {
    var typ = in(NET_RX);
    if (typ == 1) {
      var requester = in(NET_RX);
      var chunk = in(NET_RX);
      serve(requester, chunk);
    } else if (typ == 2) {
      var chunk2 = in(NET_RX);
      var payload = in(NET_RX);
      if (payload == chunk2 * 7 + 3 && have[chunk2] == 0) {
        have[chunk2] = 1;
        fetched = fetched + 1;
      }
    }
    out(NET_RX_NEXT, 0);
    avail = in(NET_RX_AVAIL);
  }
}

fn request_missing() {
  var r = in(RNG);
  var chunk = r % NCHUNKS;
  if (have[chunk] == 0) {
    var owner = chunk / PER_PEER;
    if (owner != role) {
      out(NET_TX, owner);
      out(NET_TX, 1);
      out(NET_TX, role);
      out(NET_TX, chunk);
      out(NET_TX_SEND, 0);
    }
  }
}

fn main() {
  var r = in(INPUT);
  role = r & 255;
  nplayers = (r >> 8) & 255;
  var i = role * PER_PEER;
  while (i < (role + 1) * PER_PEER) {
    have[i] = 1;
    i = i + 1;
  }
  var pace = 0;
  while (1) {
    var t = in(CLOCK);
    t = t;
    drain();
    pace = pace + 1;
    if (pace >= 40) {
      pace = 0;
      request_missing();
    }
  }
}
|}

let image_memo = Hashtbl.create 2

let compile_cached src =
  match Hashtbl.find_opt image_memo src with
  | Some img -> img
  | None ->
    let img = Avm_mlang.Compile.compile ~stack_top:Guests.stack_top src in
    Hashtbl.replace image_memo src img;
    img

let p2p_image () = compile_cached p2p_source

(* The freerider's patch: receive requests, serve nothing. *)
let freerider_image () =
  let patched_serve =
    {|fn serve(requester, chunk) {
  if (have[chunk] == 1) {
    served = served + 0;
    requester = requester + chunk;
  }
}|}
  in
  let original_serve =
    {|fn serve(requester, chunk) {
  if (have[chunk] == 1) {
    out(NET_TX, requester);
    out(NET_TX, 2);
    out(NET_TX, chunk);
    out(NET_TX, chunk * 7 + 3);   // deterministic chunk payload
    out(NET_TX_SEND, 0);
    served = served + 1;
  }
}|}
  in
  let i =
    let rec find j =
      if j + String.length original_serve > String.length p2p_source then
        failwith "serve function not found"
      else if String.sub p2p_source j (String.length original_serve) = original_serve then j
      else find (j + 1)
    in
    find 0
  in
  let patched =
    String.sub p2p_source 0 i
    ^ patched_serve
    ^ String.sub p2p_source
        (i + String.length original_serve)
        (String.length p2p_source - i - String.length original_serve)
  in
  compile_cached patched

type outcome = {
  net : Net.t;
  peers_n : int;
  duration_us : float;
  served : int array;
  have : int array;
}

let run ?(peers_n = 4) ?(duration_us = 20.0e6) ?(freerider = None) ?(rsa_bits = 512)
    ?(seed = 33L) () =
  let reference = (p2p_image ()).Avm_isa.Asm.words in
  let images =
    List.init peers_n (fun i ->
        match freerider with
        | Some f when f = i -> (freerider_image ()).Avm_isa.Asm.words
        | _ -> reference)
  in
  let names = List.init peers_n (Printf.sprintf "peer%d") in
  let config = Config.make ~snapshot_every_us:(Some 5_000_000) Config.Avmm_rsa768 in
  let net =
    Net.create ~seed ~rsa_bits ~config ~images ~mem_words:Guests.mem_words ~names ()
  in
  for i = 0 to peers_n - 1 do
    Net.queue_input net i ((i land 0xff) lor (peers_n lsl 8))
  done;
  Net.run net ~until_us:duration_us ();
  (* Globals moved in the patched image: use each node's own symbol
     table when reading its state. *)
  let image_of i =
    match freerider with Some f when f = i -> freerider_image () | _ -> p2p_image ()
  in
  let sym i name = Avm_isa.Asm.symbol (image_of i) name in
  let peek i addr = Avmm.peek (Net.node_avmm (Net.node net i)) ~addr in
  let served = Array.init peers_n (fun i -> peek i (sym i "g_served")) in
  let have =
    Array.init peers_n (fun i ->
        let base = sym i "g_have" in
        let count = ref 0 in
        for c = 0 to 31 do
          if peek i (base + c) = 1 then incr count
        done;
        !count)
  in
  { net; peers_n; duration_us; served; have }

let audit outcome ~target =
  let net = outcome.net in
  let node = Net.node net target in
  let name = Net.node_name node in
  let log = Avmm.log (Net.node_avmm node) in
  let entries = Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log) in
  let pool = Multiparty.create ~self:"pool" in
  Array.iter
    (fun n -> Multiparty.merge_auths pool ~from:(Net.node_ledger n) ~node:name)
    (Net.nodes net);
  let fuel =
    (2 * Avm_machine.Machine.icount (Avmm.machine (Net.node_avmm node))) + 5_000_000
  in
  Audit.full
    ~ctx:
      (Audit.ctx
         ~node_cert:(List.assoc name (Net.certificates net))
         ~peer_certs:(Net.certificates net)
         ~auths:(Multiparty.auths_for pool name) ())
    ~image:(p2p_image ()).Avm_isa.Asm.words ~mem_words:Guests.mem_words ~fuel
    ~peers:(Net.peers net) ~prev_hash:Avm_tamperlog.Log.genesis_hash ~entries ()
