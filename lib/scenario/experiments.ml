open Avm_core
open Avm_netsim
module Tablefmt = Avm_util.Tablefmt

type scale = Quick | Full

let duration_us scale full_us = match scale with Full -> full_us | Quick -> full_us /. 8.0
let rsa_bits = function Full -> 768 | Quick -> 512

let log_of net i = Avmm.log (Net.node_avmm (Net.node net i))

let game_spec ?(players = 3) ?(snapshot_every_us = Some 10_000_000) ?cheat ?(frame_cap = false)
    ?(clock_opt = None) ?(level = Config.Avmm_rsa768) ~scale ~duration () =
  let config = Config.make ~snapshot_every_us ?clock_opt level in
  {
    Game_run.players;
    duration_us = duration_us scale duration;
    config;
    cheat;
    frame_cap;
    seed = 11L;
    rsa_bits = rsa_bits scale;
    faults = None;
  }

(* --- Table 1 ------------------------------------------------------------ *)

type t1_row = { cheat : string; class2 : bool; detected : bool }
type t1_result = { rows : t1_row list; external_aimbot_detected : bool }

(* Host-side health/score pokes only make sense on the machine that
   runs the server. *)
let cheater_index (c : Cheats.t) =
  match c.Cheats.mechanism with
  | Cheats.Memory_poke { symbol = "g_phealth" | "g_pscore"; _ } -> 0
  | _ -> 1

let run_cheat_audit ~scale (c : Cheats.t) =
  let idx = cheater_index c in
  (* Detection runs need enough game time for slow-burn cheats (ammo
     depletion, reload hacks) to manifest; only the key size shrinks
     under Quick. *)
  let spec =
    {
      (game_spec ~scale ~duration:20.0e6 ~snapshot_every_us:(Some 5_000_000) ~cheat:(idx, c) ())
      with
      Game_run.duration_us = 20.0e6;
    }
  in
  let o = Game_run.play spec in
  let report = Game_run.audit_player o ~auditor:(1 - idx) ~target:idx in
  match report.Audit.verdict with Ok () -> false | Error _ -> true

let check_cheat ?(scale = Full) c = run_cheat_audit ~scale c

let table1 ?(scale = Full) () =
  let rows =
    List.map
      (fun (c : Cheats.t) ->
        let detected = run_cheat_audit ~scale c in
        { cheat = c.Cheats.name; class2 = c.Cheats.class2; detected })
      Cheats.catalog
  in
  let external_aimbot_detected = run_cheat_audit ~scale Cheats.external_aimbot in
  let detected = List.filter (fun r -> r.detected) rows in
  let class2 = List.filter (fun r -> r.class2 && r.detected) rows in
  Tablefmt.print ~title:"Table 1: Detectability of catalog cheats"
    ~header:[ "quantity"; "paper"; "measured" ]
    [
      [ "total cheats examined"; "26"; string_of_int (List.length rows) ];
      [ "detectable with AVMs"; "26"; string_of_int (List.length detected) ];
      [ "... in this implementation"; "22"; string_of_int (List.length detected - List.length class2) ];
      [ "... in any implementation"; "4"; string_of_int (List.length class2) ];
      [ "not detectable"; "0"; string_of_int (List.length rows - List.length detected) ];
      [
        "external (re-engineered) aimbot detected";
        "no";
        (if external_aimbot_detected then "yes" else "no");
      ];
    ];
  Tablefmt.print ~title:"Table 1 detail: per-cheat audit verdicts"
    ~header:[ "cheat"; "class"; "audit verdict" ]
    (List.map
       (fun r ->
         [
           r.cheat;
           (if r.class2 then "any-impl" else "this-impl");
           (if r.detected then "FAULTY (detected)" else "passed (NOT detected)");
         ])
       rows);
  { rows; external_aimbot_detected }

(* --- Figure 3 ------------------------------------------------------------ *)

type f3_result = {
  minutes : float list;
  avmm_mb : float list;
  vmware_mb : float list;
  avmm_mb_per_minute : float;
}

let fig3 ?(scale = Full) () =
  let samples = ref [] in
  let sample_every = duration_us scale 15.0e6 in
  let next = ref sample_every in
  let on_slice net now =
    if now >= !next then begin
      next := !next +. sample_every;
      let b = Logstats.of_log (log_of net 0) in
      samples :=
        (now, b.Logstats.total_bytes, Logstats.vmware_equivalent_bytes b) :: !samples
    end
  in
  let spec = game_spec ~scale ~duration:360.0e6 ~snapshot_every_us:None () in
  ignore (Game_run.play ~on_slice spec);
  let samples = List.rev !samples in
  let mb b = float_of_int b /. (1024.0 *. 1024.0) in
  let minutes = List.map (fun (t, _, _) -> t /. 60.0e6) samples in
  let avmm_mb = List.map (fun (_, a, _) -> mb a) samples in
  let vmware_mb = List.map (fun (_, _, v) -> mb v) samples in
  let rate =
    match (samples, List.rev samples) with
    | (t0, b0, _) :: _, (t1, b1, _) :: _ when t1 > t0 ->
      mb (b1 - b0) /. ((t1 -. t0) /. 60.0e6)
    | _ -> 0.0
  in
  Tablefmt.print ~title:"Figure 3: log growth while playing (server machine)"
    ~header:[ "minute"; "AVMM log (MB)"; "equivalent VMware log (MB)" ]
    (List.map2
       (fun m (a, v) -> [ Tablefmt.fixed m; Tablefmt.fixed a; Tablefmt.fixed v ])
       minutes
       (List.combine avmm_mb vmware_mb));
  Printf.printf "steady-state AVMM growth: %.3f MB/min (paper: ~8 MB/min at full scale)\n"
    rate;
  { minutes; avmm_mb; vmware_mb; avmm_mb_per_minute = rate }

(* --- Figure 4 ------------------------------------------------------------ *)

type f4_result = {
  breakdown : Logstats.breakdown;
  timetracker_share_of_replay : float;
  mac_share_of_replay : float;
  other_share_of_replay : float;
  tamper_evident_share : float;
  compressed_ratio : float;
}

let fig4 ?(scale = Full) () =
  let spec = game_spec ~scale ~duration:120.0e6 ~snapshot_every_us:None () in
  let o = Game_run.play spec in
  let log = log_of o.Game_run.net 0 in
  let b = Logstats.of_log log in
  let total = float_of_int b.Logstats.total_bytes in
  let replay =
    float_of_int (b.Logstats.timetracker_bytes + b.Logstats.mac_bytes + b.Logstats.other_replay_bytes)
  in
  let compressed = Logstats.compressed_bytes log in
  let r =
    {
      breakdown = b;
      timetracker_share_of_replay = float_of_int b.Logstats.timetracker_bytes /. replay;
      mac_share_of_replay = float_of_int b.Logstats.mac_bytes /. replay;
      other_share_of_replay = float_of_int b.Logstats.other_replay_bytes /. replay;
      tamper_evident_share = float_of_int b.Logstats.tamper_evident_bytes /. total;
      compressed_ratio = float_of_int compressed /. total;
    }
  in
  let pct x = Tablefmt.fixed (100.0 *. x) ^ "%" in
  Tablefmt.print ~title:"Figure 4: average log growth by content"
    ~header:[ "content"; "paper"; "measured" ]
    [
      [ "TimeTracker (of replay info)"; "59%"; pct r.timetracker_share_of_replay ];
      [ "MAC layer (of replay info)"; "14%"; pct r.mac_share_of_replay ];
      [ "other replay info"; "27%"; pct r.other_share_of_replay ];
      [ "tamper-evident logging (of total)"; "<30%"; pct r.tamper_evident_share ];
      [ "compressed size / raw"; "~31%"; pct r.compressed_ratio ];
    ];
  r

(* --- §6.5 frame cap ------------------------------------------------------- *)

type capopt_result = {
  uncapped_bytes : int;
  capped_noopt_bytes : int;
  capped_opt_bytes : int;
  growth_factor_noopt : float;
  capped_opt_vs_uncapped : float;
  fps_uncapped : float;
  fps_capped_opt : float;
}

let capopt ?(scale = Full) () =
  let one ~cap ~opt =
    let spec =
      game_spec ~scale ~duration:40.0e6 ~snapshot_every_us:None ~frame_cap:cap
        ~clock_opt:(Some opt) ()
    in
    let o = Game_run.play spec in
    (Avm_tamperlog.Log.byte_size (log_of o.Game_run.net 1), o.Game_run.fps.(1))
  in
  let uncapped_bytes, fps_uncapped = one ~cap:false ~opt:true in
  let capped_noopt_bytes, _ = one ~cap:true ~opt:false in
  let capped_opt_bytes, fps_capped_opt = one ~cap:true ~opt:true in
  let r =
    {
      uncapped_bytes;
      capped_noopt_bytes;
      capped_opt_bytes;
      growth_factor_noopt = float_of_int capped_noopt_bytes /. float_of_int uncapped_bytes;
      capped_opt_vs_uncapped = float_of_int capped_opt_bytes /. float_of_int uncapped_bytes;
      fps_uncapped;
      fps_capped_opt;
    }
  in
  Tablefmt.print ~title:"§6.5: 72fps cap, busy-wait clock reads, and the optimization"
    ~header:[ "configuration"; "log bytes"; "vs uncapped" ]
    [
      [ "uncapped, optimization on"; string_of_int uncapped_bytes; "1.00x" ];
      [
        "capped, optimization off";
        string_of_int capped_noopt_bytes;
        Tablefmt.fixed r.growth_factor_noopt ^ "x (paper: 18x)";
      ];
      [
        "capped, optimization on";
        string_of_int capped_opt_bytes;
        Tablefmt.fixed r.capped_opt_vs_uncapped ^ "x (paper: ~0.98x)";
      ];
    ];
  Printf.printf "fps: uncapped %.0f, capped+opt %.0f (cap target 72)\n" fps_uncapped
    fps_capped_opt;
  r

(* --- §6.6 audit cost -------------------------------------------------------- *)

type audit_cost_result = {
  play_seconds : float;
  compress_seconds : float;
  decompress_seconds : float;
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict_ok : bool;
}

let audit_cost ?(scale = Full) () =
  let spec = game_spec ~scale ~duration:120.0e6 () in
  let t0 = Unix.gettimeofday () in
  let o = Game_run.play spec in
  let play_seconds = Unix.gettimeofday () -. t0 in
  let log = log_of o.Game_run.net 0 in
  let entries = Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log) in
  let raw = Avm_tamperlog.Log.encode_segment entries in
  let t0 = Unix.gettimeofday () in
  let packed = Avm_compress.Codec.compress raw in
  let compress_seconds = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let unpacked = Avm_compress.Codec.decompress packed in
  let decompress_seconds = Unix.gettimeofday () -. t0 in
  assert (String.equal unpacked raw);
  let report = Game_run.audit_player o ~auditor:1 ~target:0 in
  let r =
    {
      play_seconds;
      compress_seconds;
      decompress_seconds;
      syntactic_seconds = report.Audit.syntactic_seconds;
      semantic_seconds = report.Audit.semantic_seconds;
      verdict_ok = (report.Audit.verdict = Ok ());
    }
  in
  Tablefmt.print ~title:"§6.6: audit cost (server log)"
    ~header:[ "phase"; "seconds"; "paper (2216s log)" ]
    [
      [ "recorded play (wall)"; Tablefmt.fixed play_seconds; "2216 (log span)" ];
      [ "compress"; Tablefmt.fixed compress_seconds; "34.7" ];
      [ "decompress"; Tablefmt.fixed decompress_seconds; "13.2" ];
      [ "syntactic check"; Tablefmt.fixed r.syntactic_seconds; "6.9" ];
      [ "semantic check (replay)"; Tablefmt.fixed r.semantic_seconds; "1977" ];
    ];
  Printf.printf "verdict: %s; semantic/play wall ratio %.2f (paper: 0.99)\n"
    (if r.verdict_ok then "CORRECT" else "FAULTY")
    (r.semantic_seconds /. r.play_seconds);
  (* In virtual terms the replay re-executes the recorded instruction
     stream, so replayed time ~ play time — the paper's actual claim. *)
  (match report.Audit.semantic with
  | Some (Replay.Verified { instructions; _ }) ->
    let upi = Config.us_per_instr spec.Game_run.config in
    Printf.printf "virtual replay/play ratio: %.2f (paper: 0.99, idle skipped)\n"
      (float_of_int instructions *. upi /. spec.Game_run.duration_us)
  | _ -> ());
  (* §6.4: a player being audited uploads the compressed log. *)
  let mbit = 8.0 *. float_of_int (String.length packed) /. 1.0e6 in
  Printf.printf
    "compressed log: %d B (%.1fx); upload at 1 Mbps: %.1f s for %.0f s of play (paper: 21 min \
     for 1 h)\n"
    (String.length packed)
    (float_of_int (String.length raw) /. float_of_int (String.length packed))
    mbit
    (spec.Game_run.duration_us /. 1.0e6);
  r

(* --- Figure 5 ping ------------------------------------------------------------ *)

type f5_row = { level : Config.level; median_us : float; p5_us : float; p95_us : float }

let fig5 ?(scale = Full) () =
  ignore scale;
  let tiny_image = [| Avm_isa.Isa.encode Avm_isa.Isa.Halt |] in
  let rows =
    List.map
      (fun level ->
        let config = Config.make level in
        let net =
          Net.create ~rsa_bits:512 ~config ~images:[ tiny_image; tiny_image ]
            ~names:[ "a"; "b" ] ()
        in
        let stats = Net.ping_rtts_us net ~samples:100 in
        {
          level;
          median_us = Avm_util.Stats.median stats;
          p5_us = Avm_util.Stats.percentile stats 5.0;
          p95_us = Avm_util.Stats.percentile stats 95.0;
        })
      Config.all_levels
  in
  let paper = [ "192 us"; "525 us"; "621 us"; ">2 ms"; "~5 ms" ] in
  Tablefmt.print ~title:"Figure 5: median ping RTT (100 ICMP echoes)"
    ~header:[ "configuration"; "median"; "5th pct"; "95th pct"; "paper" ]
    (List.map2
       (fun r p ->
         [
           Config.level_name r.level;
           Tablefmt.fixed r.median_us ^ " us";
           Tablefmt.fixed r.p5_us ^ " us";
           Tablefmt.fixed r.p95_us ^ " us";
           p;
         ])
       rows paper);
  rows

(* --- Figure 6 CPU utilization --------------------------------------------------- *)

type f6_result = { per_ht : float array; average : float; daemon_ht_util : float }

let fig6 ?(scale = Full) () =
  let spec = game_spec ~scale ~duration:30.0e6 ~snapshot_every_us:None () in
  let o = Game_run.play spec in
  let host = Net.node_host (Net.node o.Game_run.net 0) in
  let elapsed = o.Game_run.spec.Game_run.duration_us in
  let per_ht = Host.utilization host ~elapsed_us:elapsed in
  let average = Host.total_utilization host ~elapsed_us:elapsed in
  let r = { per_ht; average; daemon_ht_util = per_ht.(0) } in
  Tablefmt.print ~title:"Figure 6: CPU utilization per hyperthread (server, avmm-rsa768)"
    ~header:[ "hyperthread"; "utilization" ]
    (Array.to_list
       (Array.mapi
          (fun i u ->
            [
              Printf.sprintf "HT %d%s" i
                (if i = 0 then " (logging daemon)" else if i = 4 then " (hypertwin, idle)" else "");
              Tablefmt.fixed (100.0 *. u) ^ "%";
            ])
          per_ht)
    @ [ [ "average (paper: 12.5%)"; Tablefmt.fixed (100.0 *. average) ^ "%" ] ]);
  Printf.printf "daemon HT utilization: %.1f%% (paper: below 8%%)\n" (100.0 *. per_ht.(0));
  r

(* --- Figure 7 frame rates ---------------------------------------------------------- *)

type f7_row = { level : Config.level; fps : float array }

type f7_result = { ladder : f7_row list; same_ht_fps : float; drop_bare_to_avmm : float }

let fig7 ?(scale = Full) () =
  let run level =
    let spec = game_spec ~scale ~duration:30.0e6 ~snapshot_every_us:None ~level () in
    let o = Game_run.play spec in
    { level; fps = o.Game_run.fps }
  in
  let ladder = List.map run Config.all_levels in
  (* §6.9 ablation: daemon pinned to the game's hyperthread. *)
  let same_ht_fps =
    let spec = game_spec ~scale ~duration:30.0e6 ~snapshot_every_us:None () in
    let images = List.init 3 (fun _ -> Game_run.reference_image ()) in
    let net =
      Net.create ~seed:11L ~rsa_bits:(rsa_bits scale) ~config:spec.Game_run.config ~images
        ~mem_words:Guests.mem_words ~names:[ "p0"; "p1"; "p2" ] ()
    in
    Array.iter (fun n -> Net.set_same_ht n true) (Net.nodes net);
    for i = 0 to 2 do
      Net.queue_input net i (Guests.input_role ~role:i ~nplayers:3)
    done;
    Net.run net ~until_us:spec.Game_run.duration_us ();
    float_of_int (Avmm.frames (Net.node_avmm (Net.node net 1)))
    /. (spec.Game_run.duration_us /. 1.0e6)
  in
  let avg fps = Array.fold_left ( +. ) 0.0 fps /. float_of_int (Array.length fps) in
  let bare = avg (List.hd ladder).fps in
  let avmm = avg (List.nth ladder 4).fps in
  let r = { ladder; same_ht_fps; drop_bare_to_avmm = 1.0 -. (avmm /. bare) } in
  Tablefmt.print ~title:"Figure 7: average frame rate per machine (machine 0 hosts)"
    ~header:[ "configuration"; "m0 (host)"; "m1"; "m2"; "paper avg" ]
    (List.map2
       (fun row paper ->
         Config.level_name row.level
         :: (Array.to_list (Array.map (fun f -> Tablefmt.fixed ~decimals:0 f) row.fps) @ [ paper ]))
       ladder
       [ "158"; "~155"; "~139"; "~137"; "137" ]);
  Printf.printf "bare->avmm drop: %.1f%% (paper: 13%%); same-HT pinning: %.0f fps (paper: -11 fps)\n"
    (100.0 *. r.drop_bare_to_avmm) same_ht_fps;
  r

(* --- §6.7 traffic -------------------------------------------------------------------- *)

type traffic_result = { bare_kbps : float; avmm_kbps : float }

let traffic ?(scale = Full) () =
  let one level =
    let spec = game_spec ~scale ~duration:60.0e6 ~snapshot_every_us:None ~level () in
    let o = Game_run.play spec in
    Net.wire_kbps o.Game_run.net 0 ~elapsed_us:spec.Game_run.duration_us
  in
  let r = { bare_kbps = one Config.Bare_hw; avmm_kbps = one Config.Avmm_rsa768 } in
  Tablefmt.print ~title:"§6.7: outbound wire traffic of the hosting machine"
    ~header:[ "configuration"; "kbps"; "paper" ]
    [
      [ "bare-hw"; Tablefmt.fixed r.bare_kbps; "22" ];
      [ "avmm-rsa768"; Tablefmt.fixed r.avmm_kbps; "215.5" ];
    ];
  r

(* --- Figure 8 online auditing ----------------------------------------------------------- *)

type f8_row = { audits : int; fps : float; lag_entries : int }

let fig8 ?(scale = Full) () =
  let run_with_audits ?(slowdown = 1.0) audits =
    let spec = game_spec ~scale ~duration:30.0e6 ~snapshot_every_us:None () in
    let spec =
      if slowdown = 1.0 then spec
      else
        {
          spec with
          Game_run.config =
            Config.make ~snapshot_every_us:None ~artificial_slowdown:slowdown
              Config.Avmm_rsa768;
        }
    in
    let upi = Config.us_per_instr spec.Game_run.config in
    (* The auditor's replay speed comes from the hardware, not from the
       artificial slowdown applied to the recorded execution — that is
       the whole point of §6.11's trick. *)
    let audit_upi =
      Config.us_per_instr (Config.make ~snapshot_every_us:None Config.Avmm_rsa768)
    in
    ignore upi;
    (* Player 0 audits players 1..audits concurrently with the game. *)
    let auditors = ref [] in
    let contention =
      let a = float_of_int audits in
      1.0 +. (0.10 *. a) +. (0.06 *. a *. (a -. 1.0))
    in
    let lag = ref 0 in
    let on_slice net now =
      if !auditors = [] && audits > 0 then
        auditors :=
          List.init audits (fun j ->
              ( j + 1,
                Online_audit.create ~image:(Game_run.reference_image ())
                  ~mem_words:Guests.mem_words ~peers:(Net.peers net) () ));
      let auditor_avmm = Net.node_avmm (Net.node net 0) in
      ignore now;
      List.iter
        (fun (target, oa) ->
          Online_audit.observe_log oa (log_of net target);
          (match Online_audit.advance oa ~budget_instructions:(int_of_float (50_000.0 /. audit_upi)) with
          | `Ok -> ()
          | `Fault d ->
            failwith
              (Format.asprintf "online audit found a fault in an honest run: %a"
                 Replay.pp_outcome (Replay.Diverged d)));
          lag := Online_audit.lag_entries oa)
        !auditors;
      (* Cache/memory contention from concurrent replay VMs. *)
      if audits > 0 then
        Avmm.add_stall_us auditor_avmm (50_000.0 *. (contention -. 1.0) /. contention)
    in
    let o = Game_run.play ~on_slice spec in
    { audits; fps = o.Game_run.fps.(0); lag_entries = !lag }
  in
  let rows = List.map run_with_audits [ 0; 1; 2 ] in
  (* §6.11: a 5% artificial slowdown of the recorded execution lets the
     (slightly slower) replay keep up. *)
  let slowed = run_with_audits ~slowdown:1.05 1 in
  Tablefmt.print ~title:"Figure 8: frame rate with concurrent online audits (player 0)"
    ~header:[ "audits"; "fps"; "replay lag (entries)"; "paper fps" ]
    (List.map2
       (fun r paper ->
         [ string_of_int r.audits; Tablefmt.fixed ~decimals:0 r.fps;
           string_of_int r.lag_entries; paper ])
       rows [ "137"; "~120"; "104" ]
    @ [
        [
          "1 (5% slowdown)";
          Tablefmt.fixed ~decimals:0 slowed.fps;
          string_of_int slowed.lag_entries;
          "~130 (keeps up)";
        ];
      ]);
  rows

(* --- Figure 9 spot checking ------------------------------------------------------------------ *)

type f9_row = { k : int; time_pct : float; data_pct : float }

let fig9 ?(scale = Full) () =
  let o =
    match scale with
    | Full -> Kv_run.run ~rsa_bits:768 ()
    | Quick -> Kv_run.run ~duration_us:75.0e6 ~snapshot_every_us:5_000_000 ~rsa_bits:512 ()
  in
  let full_instr, full_bytes = Kv_run.full_audit_cost o in
  let nsnaps = List.length o.Kv_run.server_snapshots in
  let ks = List.filter (fun k -> k + 1 < nsnaps) [ 1; 3; 5; 9; 12 ] in
  let rows =
    List.map
      (fun k ->
        (* Exclude chunks that start at the beginning of the log, as
           the paper does (they are atypical). *)
        let starts =
          let all = List.init (nsnaps - 1 - k) (fun i -> i + 1) in
          match all with
          | a :: b :: c :: _ :: _ -> [ a; b; c ]
          | xs -> xs
        in
        let time = Avm_util.Stats.create () and data = Avm_util.Stats.create () in
        List.iter
          (fun start ->
            let rep = Kv_run.audit_server_chunk o ~start_snapshot:start ~k in
            (match rep.Spot_check.outcome with
            | Replay.Verified _ -> ()
            | Replay.Diverged d ->
              failwith
                (Format.asprintf "spot check diverged on an honest run: %a" Replay.pp_outcome
                   (Replay.Diverged d)));
            Avm_util.Stats.add time
              (100.0 *. float_of_int rep.Spot_check.replay_instructions /. float_of_int full_instr);
            Avm_util.Stats.add data
              (100.0
              *. float_of_int (rep.Spot_check.state_bytes + rep.Spot_check.log_bytes_compressed)
              /. float_of_int full_bytes))
          starts;
        { k; time_pct = Avm_util.Stats.mean time; data_pct = Avm_util.Stats.mean data })
      ks
  in
  Tablefmt.print ~title:"Figure 9: spot-check cost vs chunk size (kv-store, normalized to full audit)"
    ~header:[ "k (segments)"; "k/total"; "replay time"; "data transferred" ]
    (List.map
       (fun r ->
         [
           string_of_int r.k;
           Tablefmt.fixed (100.0 *. float_of_int r.k /. float_of_int (nsnaps - 1)) ^ "%";
           Tablefmt.fixed r.time_pct ^ "%";
           Tablefmt.fixed r.data_pct ^ "%";
         ])
       rows);
  print_endline
    "expected shape: both curves ~linear in k with a fixed per-chunk offset (snapshot\n\
     transfer + decompression) on the data curve.";
  rows

(* --- §6.12 snapshots --------------------------------------------------------------------------- *)

type snapshot_result = {
  count : int;
  min_incremental_bytes : int;
  max_incremental_bytes : int;
  full_state_bytes : int;
}

let snapshot_costs ?(scale = Full) () =
  let o =
    match scale with
    | Full -> Kv_run.run ~duration_us:120.0e6 ~snapshot_every_us:10_000_000 ()
    | Quick -> Kv_run.run ~duration_us:40.0e6 ~snapshot_every_us:5_000_000 ~rsa_bits:512 ()
  in
  let snaps = o.Kv_run.server_snapshots in
  let incr = List.filter (fun (s : Avm_machine.Snapshot.t) -> not s.Avm_machine.Snapshot.full) snaps in
  let sizes = List.map Avm_machine.Snapshot.size_bytes incr in
  let full_state_bytes =
    Guests.mem_words * 4
    (* plus the serialized device/register state *)
    + String.length (Avm_machine.Machine.serialize_meta (Avmm.machine (Net.node_avmm (Net.node o.Kv_run.net 0))))
  in
  let r =
    {
      count = List.length snaps;
      min_incremental_bytes = List.fold_left min max_int sizes;
      max_incremental_bytes = List.fold_left max 0 sizes;
      full_state_bytes;
    }
  in
  Tablefmt.print ~title:"§6.12: snapshot costs (kv-store server)"
    ~header:[ "quantity"; "measured"; "paper" ]
    [
      [ "snapshots taken"; string_of_int r.count; "15" ];
      [
        "incremental snapshot size";
        Printf.sprintf "%d - %d B" r.min_incremental_bytes r.max_incremental_bytes;
        "1.9 - 91 MB (disk)";
      ];
      [ "full memory state"; string_of_int r.full_state_bytes ^ " B"; "~530 MB (512 MB AVM)" ];
    ];
  r

(* --- §6.3 sanity -------------------------------------------------------------------------------- *)

type sanity_result = { honest_pass : bool; cheats_caught : string list }

let sanity ?(scale = Full) () =
  let four = [ "unlimited-ammo"; "teleport"; "aimbot-zeus"; "wallhack-transparent" ] in
  let caught = ref [] in
  let honest = ref true in
  List.iter
    (fun name ->
      let c = Cheats.find name in
      let idx = cheater_index c in
      let spec =
        {
          (game_spec ~scale ~duration:20.0e6 ~snapshot_every_us:(Some 5_000_000)
             ~cheat:(idx, c) ())
          with
          Game_run.duration_us = 20.0e6;
        }
      in
      let o = Game_run.play spec in
      (* every player audits every other player *)
      for target = 0 to 2 do
        let report = Game_run.audit_player o ~auditor:((target + 1) mod 3) ~target in
        match (report.Audit.verdict, target = idx) with
        | Error _, true -> caught := name :: !caught
        | Ok (), true -> ()
        | Ok (), false -> ()
        | Error _, false -> honest := false
      done)
    four;
  let r = { honest_pass = !honest; cheats_caught = List.rev !caught } in
  Tablefmt.print ~title:"§6.3: functionality check (4 preinstalled cheats)"
    ~header:[ "check"; "result" ]
    [
      [ "honest players always pass audit"; (if r.honest_pass then "yes" else "NO") ];
      [
        "cheaters caught";
        Printf.sprintf "%d/4 (%s)" (List.length r.cheats_caught)
          (String.concat ", " r.cheats_caught);
      ];
    ];
  r

let all ?(scale = Full) () =
  print_endline "=== Accountable Virtual Machines — evaluation reproduction ===";
  ignore (sanity ~scale ());
  ignore (table1 ~scale ());
  ignore (fig3 ~scale ());
  ignore (fig4 ~scale ());
  ignore (capopt ~scale ());
  ignore (audit_cost ~scale ());
  ignore (fig5 ~scale ());
  ignore (fig6 ~scale ());
  ignore (fig7 ~scale ());
  ignore (traffic ~scale ());
  ignore (fig8 ~scale ());
  ignore (fig9 ~scale ());
  ignore (snapshot_costs ~scale ());
  print_endline "\n=== done ==="
