open Avm_core
module Net = Avm_netsim.Net
module Topology = Avm_netsim.Topology
module Sim = Avm_netsim.Sim
module Rng = Avm_util.Rng
module Identity = Avm_crypto.Identity
module Daemon = Avm_service.Daemon
module Log = Avm_tamperlog.Log
module Entry = Avm_tamperlog.Entry

type spec = {
  sessions : int;
  epochs : int;
  epoch_us : float;
  activity : float;
  cheat_frac : float;
  tamper_frac : float;  (* fraction of cheats that rewrite the log in place *)
  seed : int64;
  rsa_bits : int;
  key_pool : int;
  max_lag : int;
  budget : int;  (* instructions per session per pump *)
  replay_rate : float;
  dedup : bool;
  spot_rate : int;
}

let default_spec =
  {
    sessions = 200;
    epochs = 3;
    epoch_us = 1_000_000.0;
    activity = 0.10;
    cheat_frac = 0.05;
    tamper_frac = 0.4;
    seed = 11L;
    rsa_bits = 512;
    key_pool = 32;
    max_lag = 4096;
    budget = 5_000_000;
    replay_rate = 1.0;
    dedup = true;
    spot_rate = 8;
  }

type cheat_kind = Poke of { slot : int; value : int } | Rewrite

type cheat = { node : int; epoch : int; kind : cheat_kind }

type outcome = {
  spec : spec;
  events : Daemon.event list;  (* in delivery order *)
  cheats : cheat list;
  detected : int list;
  missed : int list;
  false_flagged : int list;
  entries_ingested : int;
  lag_samples : int list;  (* every post-pump per-session lag *)
  lag_p50 : int;
  lag_p99 : int;
  lag_max : int;
  detection_latency_us : (string * float) list;
      (** per detected cheater: virtual microseconds from the mid-epoch
          injection to verdict delivery *)
  backpressure_engaged : int;
  backpressure_refusals : int;
  cache : Replay_cache.stats;
  cache_hits : int;
  sim_events : int;
  run_seconds : float;  (* wall clock spent simulating the fleet *)
  service_seconds : float;  (* wall clock spent in ingest + pump *)
  drain_rounds : int;
}

(* The driver's own random stream — distinct from the network's, so
   changing activity or cheats never reshuffles the simulation. *)
let driver_rng seed = Rng.create (Int64.logxor seed 0x736572766963655FL)

let pick_cheats rng ~sessions ~epochs ~cheat_frac ~tamper_frac =
  let count =
    if cheat_frac <= 0.0 then 0
    else max 1 (int_of_float ((cheat_frac *. float_of_int sessions) +. 0.5))
  in
  let chosen = Hashtbl.create (max 16 count) in
  let out = ref [] in
  while Hashtbl.length chosen < min count sessions do
    let node = Rng.int_in rng 0 (sessions - 1) in
    if not (Hashtbl.mem chosen node) then begin
      Hashtbl.add chosen node ();
      let epoch = Rng.int_in rng 1 epochs in
      let kind =
        if Rng.float rng 1.0 < tamper_frac then Rewrite
        else
          (* A kv slot the workload never writes (ops use 0..250):
             invisible to the guest's own outputs, only replay against
             the sealed snapshot digest surfaces it. *)
          Poke { slot = Rng.int_in rng 251 255; value = 1 + Rng.int_in rng 0 65534 }
      in
      out := { node; epoch; kind } :: !out
    end
  done;
  List.sort (fun a b -> compare a.node b.node) !out

let percentile sorted p =
  let n = List.length sorted in
  if n = 0 then 0 else List.nth sorted (min (n - 1) (n * p / 100))

let run ?par spec =
  if spec.sessions < 2 || spec.sessions mod 2 <> 0 then
    invalid_arg "Service_run.run: sessions must be even and >= 2";
  if spec.epochs < 1 then invalid_arg "Service_run.run: need at least one epoch";
  (* Producers are paired i <-> i xor 1: every node's epoch report (and
     its acks) goes to its partner, so one peer certificate per session
     covers the whole RECV/ACK surface. *)
  let adjacency = Array.init spec.sessions (fun i -> [| i lxor 1 |]) in
  let topology = Topology.of_adjacency adjacency in
  let config = Config.make ~snapshot_every_us:None Config.Avmm_rsa768 in
  let image = Guests.fleet_image () in
  let names = List.init spec.sessions (fun i -> Printf.sprintf "n%d" i) in
  let images = List.init spec.sessions (fun _ -> image.Avm_isa.Asm.words) in
  let net =
    Net.create ~seed:spec.seed ~rsa_bits:spec.rsa_bits ~key_pool:spec.key_pool
      ~mem_words:Guests.fleet_mem_words ~log_backend:Avm_tamperlog.Segment_store.Memory
      ~topology ~config ~images ~names ()
  in
  let rng = driver_rng spec.seed in
  let cheats =
    pick_cheats rng ~sessions:spec.sessions ~epochs:spec.epochs ~cheat_frac:spec.cheat_frac
      ~tamper_frac:spec.tamper_frac
  in
  let vals_addr = Guests.fleet_symbol "g_vals" in
  let avmm_of i = Net.node_avmm (Net.node net i) in
  let cert_of i = Identity.certificate (Avmm.identity (avmm_of i)) in
  let name_of i = Net.node_name (Net.node net i) in
  (* Baseline: snapshot seq 1 for every node before epoch 1, so each
     epoch seals exactly one replay chunk and chunk indexes line up
     with epochs. *)
  Array.iter (fun n -> ignore (Avmm.take_snapshot (Net.node_avmm n))) (Net.nodes net);
  let now_us = ref 0.0 in
  let injected_at = Hashtbl.create 16 in (* session id -> virtual us of injection *)
  let events = ref [] in
  let latencies = ref [] in
  let on_verdict (ev : Daemon.event) =
    events := ev :: !events;
    match Hashtbl.find_opt injected_at ev.Daemon.ev_session with
    | Some t0 -> latencies := (ev.Daemon.ev_session, !now_us -. t0) :: !latencies
    | None -> ()
  in
  let cache_was_enabled = Replay_cache.is_enabled () in
  Replay_cache.set_enabled spec.dedup;
  let cache = Replay_cache.create ~spot_rate:spec.spot_rate ~seed:spec.seed () in
  let daemon =
    Daemon.create ~max_lag_entries:spec.max_lag ~cache ~on_verdict ()
  in
  let metric name = Avm_obs.Metrics.counter (Avm_obs.Metrics.snapshot ()) name in
  let bp_engaged0 = metric "online_audit.backpressure_engaged" in
  let bp_refused0 = metric "online_audit.backpressure_refusals" in
  for i = 0 to spec.sessions - 1 do
    let partner = i lxor 1 in
    let ctx =
      Audit.ctx ~node_cert:(cert_of i)
        ~peer_certs:[ (name_of partner, cert_of partner) ]
        ()
    in
    let avmm = avmm_of i in
    Daemon.attach daemon ~id:(name_of i) ~ctx ~image:image.Avm_isa.Asm.words
      ~mem_words:Guests.fleet_mem_words ~replay_rate:spec.replay_rate
      ~snapshot_of:(fun () -> Avmm.snapshots avmm)
      ~peers:(Net.peers_of net i) ()
  done;
  let run_seconds = ref 0.0 in
  let service_seconds = ref 0.0 in
  let lag_samples = ref [] in
  let ingest_all () =
    for i = 0 to spec.sessions - 1 do
      ignore (Daemon.ingest daemon ~id:(name_of i) (Avmm.log (avmm_of i)))
    done
  in
  let pump_and_sample () =
    ignore (Daemon.pump daemon ~budget_instructions:spec.budget ?par () : int);
    List.iter
      (fun id ->
        lag_samples :=
          (Daemon.session_status daemon ~id).Online_audit.lag_entries :: !lag_samples)
      (Daemon.session_ids daemon)
  in
  for epoch = 1 to spec.epochs do
    let epoch_start = float_of_int (epoch - 1) *. spec.epoch_us in
    let epoch_mid = epoch_start +. (spec.epoch_us /. 2.0) in
    let epoch_end = float_of_int epoch *. spec.epoch_us in
    let t0 = Unix.gettimeofday () in
    (* Every cheater is active in its cheat epoch (a Rewrite needs
       fresh unobserved entries to corrupt); the rest of the activity
       is seeded. *)
    List.iter
      (fun c ->
        if c.epoch = epoch then
          Net.queue_input net c.node
            (Guests.fleet_input_op ~slot:(Rng.int_in rng 0 250)
               ~value:(Rng.int_in rng 0 65535)))
      cheats;
    for i = 0 to spec.sessions - 1 do
      if Rng.float rng 1.0 < spec.activity then
        for _ = 1 to 1 + Rng.int_in rng 0 2 do
          let slot = Rng.int_in rng 0 250 in
          let value = Rng.int_in rng 0 65535 in
          Net.queue_input net i (Guests.fleet_input_op ~slot ~value)
        done
    done;
    Net.run net ~until_us:epoch_mid ();
    now_us := epoch_mid;
    List.iter
      (fun c ->
        if c.epoch = epoch then begin
          Hashtbl.replace injected_at (name_of c.node) epoch_mid;
          match c.kind with
          | Poke { slot; value } ->
            Avmm.poke (avmm_of c.node) ~addr:(vals_addr + slot) ~value
          | Rewrite ->
            (* Rewrite the newest entry in place — it is still in the
               unobserved range, so the syntactic stream must catch it
               at the next ingest. *)
            let log = Avmm.log (avmm_of c.node) in
            Log.tamper_replace log (Log.length log) (Entry.Note "rewritten")
        end)
      cheats;
    Net.run net ~until_us:epoch_end ();
    now_us := epoch_end;
    (* Seal the epoch's chunk on every node, then stream it in. *)
    Array.iter (fun n -> ignore (Avmm.take_snapshot (Net.node_avmm n))) (Net.nodes net);
    run_seconds := !run_seconds +. (Unix.gettimeofday () -. t0);
    let t1 = Unix.gettimeofday () in
    ingest_all ();
    pump_and_sample ();
    service_seconds := !service_seconds +. (Unix.gettimeofday () -. t1)
  done;
  (* Drain: keep re-offering (backpressured producers included) and
     pumping until every live session has caught up. *)
  let drain_rounds = ref 0 in
  let t2 = Unix.gettimeofday () in
  let all_caught_up () =
    List.for_all
      (fun id ->
        let st = Daemon.session_status daemon ~id in
        st.Online_audit.verdict <> None || st.Online_audit.lag_entries = 0)
      (Daemon.session_ids daemon)
  in
  while (not (all_caught_up ())) && !drain_rounds < 1000 do
    incr drain_rounds;
    ingest_all ();
    pump_and_sample ()
  done;
  let final_events = Daemon.shutdown daemon in
  ignore (final_events : Daemon.event list);
  service_seconds := !service_seconds +. (Unix.gettimeofday () -. t2);
  Replay_cache.set_enabled cache_was_enabled;
  let events = List.rev !events in
  let flagged = Hashtbl.create 16 in
  List.iter (fun (ev : Daemon.event) -> Hashtbl.replace flagged ev.Daemon.ev_session ()) events;
  let cheater_set = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace cheater_set (name_of c.node) ()) cheats;
  let detected, missed =
    List.partition (fun c -> Hashtbl.mem flagged (name_of c.node)) cheats
  in
  let false_flagged =
    Hashtbl.fold
      (fun id () acc -> if Hashtbl.mem cheater_set id then acc else id :: acc)
      flagged []
    |> List.sort compare
    |> List.map (fun id -> int_of_string (String.sub id 1 (String.length id - 1)))
  in
  let daemon_stats = Daemon.stats daemon in
  let sorted_lags = List.sort compare !lag_samples in
  {
    spec;
    events;
    cheats;
    detected = List.map (fun c -> c.node) detected;
    missed = List.map (fun c -> c.node) missed;
    false_flagged;
    entries_ingested = daemon_stats.Daemon.entries_ingested;
    lag_samples = !lag_samples;
    lag_p50 = percentile sorted_lags 50;
    lag_p99 = percentile sorted_lags 99;
    lag_max = percentile sorted_lags 100;
    detection_latency_us = List.rev !latencies;
    backpressure_engaged = metric "online_audit.backpressure_engaged" - bp_engaged0;
    backpressure_refusals = metric "online_audit.backpressure_refusals" - bp_refused0;
    cache = Replay_cache.stats cache;
    cache_hits = (Replay_cache.stats cache).Replay_cache.hits;
    sim_events = Sim.processed (Net.sim net);
    run_seconds = !run_seconds;
    service_seconds = !service_seconds;
    drain_rounds = !drain_rounds;
  }

let signature outcome =
  let b = Buffer.create 1024 in
  let line (ev : Daemon.event) =
    Printf.sprintf "%s:%s:%s\n" ev.Daemon.ev_session
      (Format.asprintf "%a" Online_audit.pp_verdict ev.Daemon.ev_verdict)
      (match ev.Daemon.ev_entry_seq with Some s -> string_of_int s | None -> "-")
  in
  List.map line outcome.events |> List.sort compare |> List.iter (Buffer.add_string b);
  Digest.to_hex (Digest.string (Buffer.contents b))
