type t = {
  engine : Replay.engine;
  replay_rate : float;
  pool : Avm_util.Domain_pool.t option;
  owns_pool : bool; (* borrowed pools (par.pool) are not ours to shut down *)
  mutable fed_upto : int; (* last log seq pulled *)
  mutable fault : Replay.divergence option;
  mutable tampered : string option;
}

let create ~image ?mem_words ?(replay_rate = 0.955) ?(par = Audit_ctx.sequential) ~peers ()
    =
  let pool, owns_pool =
    match par.Audit_ctx.pool with
    | Some p -> ((if Avm_util.Domain_pool.jobs p > 1 then Some p else None), false)
    | None ->
      if par.Audit_ctx.jobs > 1 then
        (Some (Avm_util.Domain_pool.create ~jobs:par.Audit_ctx.jobs ()), true)
      else (None, false)
  in
  {
    engine = Replay.engine ~image ?mem_words ~peers ();
    replay_rate;
    pool;
    owns_pool;
    fed_upto = 0;
    fault = None;
    tampered = None;
  }

(* Syntactic fast path: recompute the hash chain of the newly observed
   range, one worker per sealed segment, off the segment index. The
   replay engine would eventually trip over most tampering too, but
   only after replaying up to it — this flags a broken chain the
   moment it is observed, at memory bandwidth rather than replay
   speed. *)
let verify_new_range pool log ~from ~upto =
  let module L = Avm_tamperlog.Log in
  let check (s : L.chunk_spec) = L.verify_segment ~prev:s.L.spec_prev_hash (s.L.spec_load ()) in
  Avm_obs.Trace.with_span ~name:"online_audit.verify_range"
    ~attrs:[ ("from", string_of_int from); ("upto", string_of_int upto) ]
  @@ fun () ->
  Avm_util.Domain_pool.map_list pool check (L.chunk_specs log ~from ~upto)
  |> List.find_map (function Error reason -> Some reason | Ok () -> None)

let observe_log t log =
  let len = Avm_tamperlog.Log.length log in
  if len > t.fed_upto then begin
    let from = t.fed_upto + 1 in
    Avm_obs.Metrics.incr ~by:(len - t.fed_upto) "online_audit.entries_observed";
    (match t.pool with
    | Some pool when t.tampered = None -> (
      match verify_new_range pool log ~from ~upto:len with
      | Some reason ->
        Avm_obs.Metrics.incr "online_audit.tampering_detected";
        t.tampered <- Some reason
      | None -> ())
    | _ -> ());
    Avm_tamperlog.Log.iter_range log ~from ~upto:len (Replay.feed_entry t.engine);
    t.fed_upto <- len
  end

let advance t ~budget_instructions =
  Avm_obs.Metrics.incr "online_audit.advances";
  match t.fault with
  | Some d -> `Fault d
  | None -> (
    let fuel = int_of_float (float_of_int budget_instructions *. t.replay_rate) in
    match Replay.crank t.engine ~fuel with
    | `Blocked | `Fuel_exhausted -> `Ok
    | `Fault d ->
      Avm_obs.Metrics.incr "online_audit.faults";
      t.fault <- Some d;
      `Fault d)

let lag_entries t = Replay.pending_entries t.engine
let replayed_instructions t = Replay.replayed_instructions t.engine
let fault t = t.fault
let tamper_detected t = t.tampered
let close t = if t.owns_pool then Option.iter Avm_util.Domain_pool.shutdown t.pool

module Legacy = struct
  let create ~image ?mem_words ?replay_rate ?(jobs = 1) ~peers () =
    create ~image ?mem_words ?replay_rate ~par:{ Audit_ctx.jobs; pool = None } ~peers ()
end
