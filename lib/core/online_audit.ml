type t = {
  engine : Replay.engine;
  replay_rate : float;
  mutable fed_upto : int; (* last log seq pulled *)
  mutable fault : Replay.divergence option;
}

let create ~image ?mem_words ?(replay_rate = 0.955) ~peers () =
  { engine = Replay.engine ~image ?mem_words ~peers (); replay_rate; fed_upto = 0; fault = None }

let observe_log t log =
  let len = Avm_tamperlog.Log.length log in
  if len > t.fed_upto then begin
    Avm_tamperlog.Log.iter_range log ~from:(t.fed_upto + 1) ~upto:len
      (Replay.feed_entry t.engine);
    t.fed_upto <- len
  end

let advance t ~budget_instructions =
  match t.fault with
  | Some d -> `Fault d
  | None -> (
    let fuel = int_of_float (float_of_int budget_instructions *. t.replay_rate) in
    match Replay.crank t.engine ~fuel with
    | `Blocked | `Fuel_exhausted -> `Ok
    | `Fault d ->
      t.fault <- Some d;
      `Fault d)

let lag_entries t = Replay.pending_entries t.engine
let replayed_instructions t = Replay.replayed_instructions t.engine
let fault t = t.fault
