module Log = Avm_tamperlog.Log
module Entry = Avm_tamperlog.Entry
module Snapshot = Avm_machine.Snapshot
module Machine = Avm_machine.Machine
module Metrics = Avm_obs.Metrics

type verdict =
  | Tampered of { reason : string; entry_seq : int option }
  | Diverged of Replay.divergence
  | Equivocated of { a : Avm_tamperlog.Auth.t; b : Avm_tamperlog.Auth.t }

let pp_verdict fmt = function
  | Tampered { reason; entry_seq } ->
    Format.fprintf fmt "tampered%s: %s"
      (match entry_seq with Some s -> Printf.sprintf " (entry %d)" s | None -> "")
      reason
  | Diverged d ->
    Format.fprintf fmt "diverged: %s at entry %s — %s"
      (Replay.kind_name d.Replay.kind)
      (match d.Replay.entry_seq with Some s -> string_of_int s | None -> "?")
      d.Replay.detail
  | Equivocated { a; b } ->
    Format.fprintf fmt "equivocated: two signed commitments at entry %d (%s vs %s)"
      a.Avm_tamperlog.Auth.seq
      (Avm_util.Hex.short a.Avm_tamperlog.Auth.hash)
      (Avm_util.Hex.short b.Avm_tamperlog.Auth.hash)

type status = {
  ingested_entries : int;
  retired_entries : int;
  chunks_retired : int;
  lag_entries : int;
  lag_us_estimate : float;
  replayed_instructions : int;
  cache_hits : int;
  throttled : bool;
  verdict : verdict option;
}

module Session = struct
  (* Between two Snapshot_ref boundaries the log is one independently
     replayable chunk — the same partition Spot_check cuts at, so the
     fingerprints computed here hit (and seed) the same fleet-wide
     Replay_cache entries the offline auditors use. The closing
     Snapshot_ref is the last entry of its chunk. *)
  type chunk = {
    c_from : int;  (* first entry seq of the chunk *)
    mutable c_upto : int;  (* last entry seq buffered so far *)
    c_pre_state : string;  (* state digest the chunk starts from *)
    c_prev_hash : string;  (* chain hash before c_from, for evidence *)
    mutable c_all_rev : Entry.t list;  (* every buffered entry, newest first *)
    mutable c_n : int;
    c_unfed : Entry.t Queue.t;  (* buffered but not yet fed to the engine *)
    mutable c_fed : int;
    mutable c_end : (int * string * int) option;
        (* closing (snapshot_seq, digest, at_icount); None = still open *)
    mutable c_print : Replay_cache.print option;
    mutable c_spot : Replay_cache.cached option;  (* hit designated for spot re-replay *)
    mutable c_emitted : bool;  (* replay emitted guest packets (peers-sensitive) *)
    mutable c_start_instr : int;  (* engine icount delta base for this chunk *)
  }

  (* Where the next instruction comes from: a live engine positioned at
     the head chunk's replay point, or — after a cache hit skipped a
     chunk — a boundary whose state must be materialized from
     downloaded snapshots before replay can resume. *)
  type resume =
    | R_engine of Replay.engine
    | R_boundary of { snapshot_seq : int; digest : string; at_icount : int; entry_seq : int }

  (* Chain-only syntactic mode for sessions opened without a ctx (the
     wrapper path): the full stream would false-flag honest logs whose
     peer certificates the caller never supplied. *)
  type syn =
    | Syn_full of Audit.syn_stream
    | Syn_chain of { mutable prev : string; mutable expected : int }

  type t = {
    image : int array;
    mem_words : int option;
    peers : (int * string) list;
    ctx : Audit_ctx.ctx option;
    replay_rate : float;
    high : int;
    low : int;
    cache : Replay_cache.t option;
    snapshot_of : (unit -> Snapshot.t list) option;
    syn : syn;
    chunks : chunk Queue.t;  (* head = oldest unretired; last = open tail *)
    mutable tail : chunk;
    mutable resume : resume;
    mutable fed_upto : int;  (* last log seq ingested *)
    mutable ingested : int;
    mutable retired : int;
    mutable n_chunks_retired : int;
    mutable instr_base : int;  (* instructions from dropped engines *)
    mutable n_cache_hits : int;
    mutable throttled : bool;
    mutable verdict : verdict option;
    mutable closed : bool;
    mutable ema_us_per_entry : float;
  }

  let new_chunk ~from ~pre_state ~prev_hash =
    {
      c_from = from;
      c_upto = from - 1;
      c_pre_state = pre_state;
      c_prev_hash = prev_hash;
      c_all_rev = [];
      c_n = 0;
      c_unfed = Queue.create ();
      c_fed = 0;
      c_end = None;
      c_print = None;
      c_spot = None;
      c_emitted = false;
      c_start_instr = 0;
    }

  let open_session ?ctx ~image ?mem_words ?(replay_rate = 0.955) ?(prev_hash = Log.genesis_hash)
      ?(high_watermark = 4096) ?low_watermark ?cache ?snapshot_of ~peers () =
    if high_watermark < 1 then invalid_arg "Online_audit: high_watermark must be positive";
    let low =
      match low_watermark with
      | Some l ->
        if l > high_watermark then
          invalid_arg "Online_audit: low_watermark above high_watermark";
        l
      | None -> high_watermark / 2
    in
    let e = Replay.engine ~image ?mem_words ~peers () in
    let pre_state = Replay.state_digest (Replay.engine_machine e) in
    let syn =
      match ctx with
      | Some c -> Syn_full (Audit.syn_stream ~ctx:c ~prev_hash)
      | None -> Syn_chain { prev = prev_hash; expected = -1 }
    in
    let tail = new_chunk ~from:1 ~pre_state ~prev_hash in
    let chunks = Queue.create () in
    Queue.push tail chunks;
    Metrics.incr "online_audit.sessions_opened";
    {
      image;
      mem_words;
      peers;
      ctx;
      replay_rate;
      high = high_watermark;
      low;
      cache;
      snapshot_of;
      syn;
      chunks;
      tail;
      resume = R_engine e;
      fed_upto = 0;
      ingested = 0;
      retired = 0;
      n_chunks_retired = 0;
      instr_base = 0;
      n_cache_hits = 0;
      throttled = false;
      verdict = None;
      closed = false;
      ema_us_per_entry = 0.;
    }

  let set_verdict t v =
    if t.verdict = None then begin
      t.verdict <- Some v;
      (match v with
      | Tampered _ -> Metrics.incr "online_audit.tampering_detected"
      | Diverged _ -> Metrics.incr "online_audit.faults"
      | Equivocated _ -> Metrics.incr "online_audit.equivocations")
    end

  (* The daemon's cross-session authenticator exchange lands here: a
     verified conflicting commitment pair is terminal for the session,
     exactly like a tampered chain — but carried by two signatures
     instead of a log download. *)
  let equivocate t ~a ~b =
    if Avm_tamperlog.Auth.conflicts a b then set_verdict t (Equivocated { a; b })

  let node_cert t =
    Option.map (fun ctx -> ctx.Audit_ctx.node_cert) t.ctx

  let lag_entries t =
    let unfed = Queue.fold (fun acc c -> acc + Queue.length c.c_unfed) 0 t.chunks in
    let pending =
      match t.resume with R_engine e -> Replay.pending_entries e | R_boundary _ -> 0
    in
    unfed + pending

  let total_instructions t =
    t.instr_base
    + (match t.resume with R_engine e -> Replay.replayed_instructions e | R_boundary _ -> 0)

  (* --- ingest ------------------------------------------------------- *)

  let syn_check t (e : Entry.t) =
    match t.syn with
    | Syn_full s ->
      let before = Audit.syn_failure_count s in
      Audit.syn_push s e;
      let after = Audit.syn_failure_count s in
      if after > before then begin
        let fresh =
          Audit.syn_failures s
          |> List.filteri (fun i _ -> i >= before)
          |> String.concat "; "
        in
        set_verdict t (Tampered { reason = fresh; entry_seq = Some e.Entry.seq })
      end
    | Syn_chain c ->
      if c.expected >= 0 && e.Entry.seq <> c.expected then
        set_verdict t
          (Tampered
             {
               reason = Printf.sprintf "sequence gap: expected %d, got %d" c.expected e.Entry.seq;
               entry_seq = Some e.Entry.seq;
             })
      else if not (Entry.chain_ok ~prev:c.prev e) then
        set_verdict t
          (Tampered
             {
               reason = Printf.sprintf "hash chain broken at entry %d" e.Entry.seq;
               entry_seq = Some e.Entry.seq;
             });
      c.prev <- e.Entry.hash;
      c.expected <- e.Entry.seq + 1

  let on_entry t (e : Entry.t) =
    t.fed_upto <- e.Entry.seq;
    if t.verdict = None then begin
      t.ingested <- t.ingested + 1;
      syn_check t e;
      let c = t.tail in
      c.c_all_rev <- e :: c.c_all_rev;
      c.c_n <- c.c_n + 1;
      c.c_upto <- e.Entry.seq;
      Queue.push e c.c_unfed;
      match e.Entry.content with
      | Entry.Snapshot_ref { digest; snapshot_seq; at_icount } ->
        c.c_end <- Some (snapshot_seq, digest, at_icount);
        let tail =
          new_chunk ~from:(e.Entry.seq + 1) ~pre_state:digest ~prev_hash:e.Entry.hash
        in
        t.tail <- tail;
        Queue.push tail t.chunks
      | _ -> ()
    end

  let ingest ?upto t log =
    if t.verdict <> None || t.closed then `Accepted
    else begin
      let lag = lag_entries t in
      if lag > t.high || (t.throttled && lag > t.low) then begin
        if not t.throttled then begin
          t.throttled <- true;
          Metrics.incr "online_audit.backpressure_engaged"
        end;
        Metrics.incr "online_audit.backpressure_refusals";
        `Backpressure lag
      end
      else begin
        if t.throttled then begin
          t.throttled <- false;
          Metrics.incr "online_audit.backpressure_released"
        end;
        (* Snapshot the length up front: the walk below assumes the log
           is not mutated underneath it. *)
        let len0 = Log.length log in
        let limit = match upto with Some u -> min u len0 | None -> len0 in
        if limit < t.fed_upto then
          set_verdict t
            (Tampered
               {
                 reason =
                   Printf.sprintf "log shrank: had observed %d entries, now %d" t.fed_upto limit;
                 entry_seq = None;
               })
        else if limit > t.fed_upto then begin
          let from = t.fed_upto + 1 in
          Metrics.incr ~by:(limit - t.fed_upto) "online_audit.entries_observed";
          Log.iter_range log ~from ~upto:limit (on_entry t);
          if Log.length log <> len0 then
            invalid_arg "Online_audit.ingest: log mutated during the call"
        end;
        `Accepted
      end
    end

  (* --- step --------------------------------------------------------- *)

  let fingerprint t c =
    Replay_cache.fingerprint ~image:t.image ?mem_words:t.mem_words ~peers:t.peers
      ~pre_state:c.c_pre_state (List.rev c.c_all_rev)

  (* A cache hit strands the engine (the skipped chunk's end state was
     never computed), so hits are only taken when downloaded snapshots
     can re-seat replay at the boundary. *)
  let hits_usable t =
    t.cache <> None && t.snapshot_of <> None && Replay_cache.is_enabled ()

  let retire_chunk t c =
    t.retired <- t.retired + c.c_n;
    t.n_chunks_retired <- t.n_chunks_retired + 1;
    ignore (Queue.pop t.chunks);
    Metrics.incr "online_audit.chunks_retired"

  let retire_hit t c =
    (match t.resume with
    | R_engine e -> t.instr_base <- t.instr_base + Replay.replayed_instructions e
    | R_boundary _ -> ());
    let snapshot_seq, digest, at_icount = Option.get c.c_end in
    t.resume <- R_boundary { snapshot_seq; digest; at_icount; entry_seq = c.c_upto };
    t.n_cache_hits <- t.n_cache_hits + 1;
    retire_chunk t c

  (* Materialize the downloaded state at a boundary and authenticate it
     against the logged digest — the Spot_check state-transfer step. A
     forged snapshot is a divergence; a missing one is a stall (the
     producer may simply not have shipped it yet). *)
  let reseat t (b : [ `B of int * string * int * int ]) =
    let (`B (snapshot_seq, digest, at_icount, entry_seq)) = b in
    let snaps = (Option.get t.snapshot_of) () in
    let chain = Snapshot.chain_upto snaps snapshot_seq in
    if not (List.exists (fun s -> s.Snapshot.seq = snapshot_seq) chain) then `Stall
    else begin
      let machine = Snapshot.materialize ?mem_words:t.mem_words ~image:t.image chain in
      let recomputed =
        Avm_crypto.Sha256.digest_list
          [
            Machine.serialize_meta machine;
            Avm_crypto.Merkle.root (Snapshot.merkle_of_machine machine);
            string_of_int at_icount;
          ]
      in
      if not (String.equal recomputed digest) then
        `Fault
          {
            Replay.kind = Replay.Snapshot_mismatch;
            at = Machine.landmark machine;
            entry_seq = Some entry_seq;
            detail = "downloaded snapshot does not match the logged digest";
          }
      else
        `Ok (Replay.engine ~image:t.image ?mem_words:t.mem_words ~start:machine ~peers:t.peers ())
    end

  let ensure_engine t =
    match t.resume with
    | R_engine e -> `Ok e
    | R_boundary { snapshot_seq; digest; at_icount; entry_seq } -> (
      match reseat t (`B (snapshot_seq, digest, at_icount, entry_seq)) with
      | `Ok e ->
        t.resume <- R_engine e;
        `Ok e
      | (`Fault _ | `Stall) as r -> r)

  let feed_unfed c e =
    while not (Queue.is_empty c.c_unfed) do
      Replay.feed_entry e (Queue.pop c.c_unfed);
      c.c_fed <- c.c_fed + 1
    done

  (* The head chunk replayed to completion: settle its cache protocol
     (confirm a spot-designated hit, or remember a fresh outcome) and
     retire it. The engine stays — it is already positioned at the next
     chunk's start. *)
  let complete_chunk t c e =
    (match t.cache with
    | Some cache when Replay_cache.is_enabled () && c.c_end <> None ->
      let instr = Replay.replayed_instructions e - c.c_start_instr in
      let p = match c.c_print with Some p -> p | None -> fingerprint t c in
      (match c.c_spot with
      | Some cached ->
        let matched =
          cached.Replay_cache.instructions = instr
          && cached.Replay_cache.entries_consumed = c.c_n
        in
        Replay_cache.confirm_spot cache p ~matched
      | None ->
        Replay_cache.remember cache p ~peers_sensitive:c.c_emitted ~instructions:instr
          ~entries_consumed:c.c_n ())
    | _ -> ());
    retire_chunk t c

  let rec drive t remaining =
    if t.verdict = None && remaining > 0 then
      match Queue.peek_opt t.chunks with
      | None -> ()
      | Some c ->
        (* Cache decision point: a closed head chunk nothing has been
           fed from yet can be fingerprinted and looked up before any
           replay is spent on it. *)
        if c.c_end <> None && c.c_fed = 0 && c.c_print = None && hits_usable t then begin
          let p = fingerprint t c in
          c.c_print <- Some p;
          match Replay_cache.find (Option.get t.cache) ~fuel:Replay.default_fuel p with
          | `Hit _ -> retire_hit t c
          | `Spot cached -> c.c_spot <- Some cached
          | `Miss -> ()
        end;
        let head_changed =
          match Queue.peek_opt t.chunks with Some c' -> c' != c | None -> true
        in
        if head_changed then drive t remaining (* hit retired the head; no fuel spent *)
        else begin
          match ensure_engine t with
          | `Stall -> ()
          | `Fault d -> set_verdict t (Diverged d)
          | `Ok e ->
            if c.c_fed = 0 then c.c_start_instr <- Replay.replayed_instructions e;
            feed_unfed c e;
            let before = Replay.replayed_instructions e in
            let res, emitted =
              if t.cache <> None then
                Replay_cache.measure_replay (fun () -> Replay.crank e ~fuel:remaining)
              else (Replay.crank e ~fuel:remaining, false)
            in
            c.c_emitted <- c.c_emitted || emitted;
            let remaining = remaining - (Replay.replayed_instructions e - before) in
            (match res with
            | `Fault d -> set_verdict t (Diverged d)
            | `Fuel_exhausted -> ()
            | `Blocked ->
              if c.c_end <> None && Queue.is_empty c.c_unfed then begin
                complete_chunk t c e;
                drive t remaining
              end
              (* else: open tail drained — wait for more entries *))
        end

  let step t ~budget_instructions =
    match t.verdict with
    | Some v -> Some v
    | None ->
      Metrics.incr "online_audit.advances";
      let wall0 = Avm_obs.Clock.now_s () in
      let retired0 = t.retired in
      let fuel = int_of_float (float_of_int budget_instructions *. t.replay_rate) in
      drive t (max fuel 0);
      let processed = t.retired - retired0 in
      if processed > 0 then begin
        let us_per_entry = (Avm_obs.Clock.now_s () -. wall0) *. 1e6 /. float_of_int processed in
        t.ema_us_per_entry <-
          (if t.ema_us_per_entry = 0. then us_per_entry
           else (0.8 *. t.ema_us_per_entry) +. (0.2 *. us_per_entry))
      end;
      t.verdict

  (* --- status / close ----------------------------------------------- *)

  let status t =
    let lag = lag_entries t in
    {
      ingested_entries = t.ingested;
      retired_entries = t.retired;
      chunks_retired = t.n_chunks_retired;
      lag_entries = lag;
      lag_us_estimate = float_of_int lag *. t.ema_us_per_entry;
      replayed_instructions = total_instructions t;
      cache_hits = t.n_cache_hits;
      throttled = t.throttled;
      verdict = t.verdict;
    }

  let close t =
    if not t.closed then begin
      t.closed <- true;
      (match t.syn with
      | Syn_full s when t.verdict = None ->
        let before = Audit.syn_failure_count s in
        let report = Audit.syn_finish s in
        let fresh = List.filteri (fun i _ -> i >= before) report.Audit.failures in
        if fresh <> [] then
          set_verdict t (Tampered { reason = String.concat "; " fresh; entry_seq = None })
      | Syn_full s -> ignore (Audit.syn_finish s)
      | Syn_chain _ -> ());
      Metrics.incr "online_audit.sessions_closed"
    end;
    t.verdict

  let outcome t =
    match (t.ctx, t.verdict) with
    | None, _ | _, None -> None
    | Some ctx, Some v ->
      let node = Avm_crypto.Identity.cert_name ctx.Audit_ctx.node_cert in
      let syntactic =
        match t.syn with
        | Syn_full s -> Audit.syn_report s
        | Syn_chain _ -> assert false (* ctx implies Syn_full *)
      in
      (* Evidence covers the chunk holding the offending entry (the
         head chunk when the verdict does not name one). *)
      let seq_of = function
        | Tampered { entry_seq; _ } -> entry_seq
        | Diverged d -> d.Replay.entry_seq
        | Equivocated { a; _ } -> Some a.Avm_tamperlog.Auth.seq
      in
      let chunk =
        match seq_of v with
        | Some seq ->
          Queue.fold
            (fun acc c -> if c.c_from <= seq && seq <= c.c_upto then Some c else acc)
            None t.chunks
        | None -> None
      in
      let chunk = match chunk with Some c -> Some c | None -> Queue.peek_opt t.chunks in
      let prev_hash, segment =
        match chunk with
        | Some c -> (c.c_prev_hash, List.rev c.c_all_rev)
        | None -> (Log.genesis_hash, [])
      in
      let accusation =
        match v with
        | Tampered { reason; _ } -> Evidence.Tampered_log { reason }
        | Diverged d -> Evidence.Replay_divergence d
        | Equivocated { a; b } -> Evidence.Equivocation { a; b }
      in
      let verdict_line = Format.asprintf "%a" pp_verdict v in
      Some
        {
          Audit.node;
          syntactic;
          semantic =
            (match v with
            | Diverged d -> Some (Replay.Diverged d)
            | Tampered _ | Equivocated _ -> None);
          syntactic_seconds = 0.;
          semantic_seconds = 0.;
          verdict = Error verdict_line;
          evidence =
            Some
              {
                Evidence.accused = node;
                prev_hash;
                segment;
                auths = ctx.Audit_ctx.auths;
                accusation;
              };
        }
end

(* --- the pre-session surface, kept where tests pin it ---------------- *)

type t = Session.t

let create ~image ?mem_words ?replay_rate ?(par = Audit_ctx.sequential) ~peers () =
  (* The chain pre-verification [par] used to buy is now inline and
     always on; extra lanes have nothing left to parallelize here. *)
  ignore par.Audit_ctx.jobs;
  Session.open_session ~image ?mem_words ?replay_rate ~peers ()

let observe_log t log = ignore (Session.ingest t log)

let advance t ~budget_instructions =
  match Session.step t ~budget_instructions with
  | Some (Diverged d) -> `Fault d
  | Some (Tampered _ | Equivocated _) | None -> `Ok

let lag_entries t = Session.lag_entries t
let replayed_instructions t = Session.total_instructions t

let fault t =
  match (Session.status t).verdict with Some (Diverged d) -> Some d | _ -> None

let tamper_detected t =
  match (Session.status t).verdict with
  | Some (Tampered { reason; _ }) -> Some reason
  | _ -> None

let close t = ignore (Session.close t)
