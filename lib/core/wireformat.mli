(** On-the-wire message formats between accountable machines.

    An {!envelope} is what actually crosses the network: the
    application payload produced inside the AVM, plus the sender's
    signature and the authenticator for the corresponding SEND log
    entry (paper §4.3). The receiving AVMM verifies and strips the
    envelope before the payload enters the AVM. An {!ack} answers
    every accepted message with the receiver's authenticator for its
    RECV entry. *)

val payload_of_words : int array -> string
(** Guest packets are word arrays; this is their canonical byte
    encoding (little-endian words). *)

val words_of_payload : string -> int array
(** Inverse of {!payload_of_words}.
    @raise Avm_util.Wire.Malformed if the length is not a multiple
    of 4. *)

type envelope = {
  src : string;
  dest : string;
  nonce : int;  (** per-sender counter; retransmissions reuse it *)
  payload : string;
  signature : string;  (** sender's signature over {!message_body} *)
  auth : Avm_tamperlog.Auth.t;  (** authenticator for the SEND entry *)
}

val message_body : src:string -> dest:string -> nonce:int -> payload:string -> string
(** The bytes the sender signs. *)

val verify_envelope : Avm_crypto.Identity.certificate -> envelope -> bool
(** Checks the sender signature and that the attached authenticator
    commits to exactly [SEND {dest; nonce; payload}]. *)

type ack = {
  acker : string;
  sender : string;
  nonce : int;  (** which of [sender]'s messages is acknowledged *)
  recv_auth : Avm_tamperlog.Auth.t;  (** authenticator for the RECV entry *)
}

val verify_ack :
  Avm_crypto.Identity.certificate ->
  ack ->
  sent:envelope ->
  bool
(** [verify_ack acker_cert ack ~sent] checks that the acknowledgment's
    authenticator really commits the acker to having logged
    [RECV(sent)]. *)

val encode_envelope : envelope -> string
val decode_envelope : string -> envelope
val encode_ack : ack -> string
val decode_ack : string -> ack

val envelope_wire_size : envelope -> int
(** Bytes on the wire including signature and authenticator — the unit
    of the §6.7 traffic numbers. *)

val ack_wire_size : ack -> int

(** {1 Non-accountable baseline}

    The unaccountable comparison system ships the same envelope with
    empty signature/authenticator fields. These helpers keep its byte
    accounting on the same encoder as the accountable path. *)

val null_auth : node:string -> Avm_tamperlog.Auth.t
(** The empty authenticator carried by baseline envelopes and acks. *)

val bare_envelope :
  src:string -> dest:string -> nonce:int -> payload:string -> envelope
(** An unsigned envelope with a {!null_auth}. *)

val bare_wire_size :
  src:string -> dest:string -> nonce:int -> payload:string -> int
(** [envelope_wire_size] of the corresponding {!bare_envelope}. *)
