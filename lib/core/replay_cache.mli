(** Deduplicated re-execution: a fleet-wide memo table for replay
    chunks (ROADMAP item 2, after "The Efficient Server Audit Problem,
    Deduplicated Re-execution, and the Web").

    A replay chunk is fingerprinted by what {e determines} its
    execution — the guest image digest, the authenticated pre-state
    digest it starts from, and a digest of its input-event stream —
    and the table remembers what the one full replay of that
    fingerprint {e established}: that the chunk's claims (the output
    payloads it logged and the post-state digest it sealed with) are
    exactly what deterministic re-execution produces, together with
    the instruction/entry counts of that verified replay. An identical
    chunk anywhere else in the fleet then audits as a three-digest
    compare: fingerprint match, claimed-outputs match, claimed
    post-state match. Any claim that differs from the cached one is a
    {e miss}, never a hit — so a cheater whose inputs collide with an
    honest node's cached chunk still gets fully replayed (and caught),
    because its tampered snapshot digest or forged outputs cannot
    equal the honest claims without breaking SHA-256.

    The remaining attack surface is a {e poisoned} table entry (an
    adversary who can write to the auditor's cache inserts its own
    claims as "verified"). The defense is spot-check scheduling
    (paper §3.5 applied to the cache): a seeded, fingerprint-
    deterministic minority of chunks is designated for full replay
    {e even on a hit}; a cached entry whose claims full replay fails
    to reproduce is evicted and counted under [replay.cache_poisoned].
    Determinism in the fingerprint (not in cache state or audit order)
    keeps verdict vectors identical across job counts.

    Domain-safety follows the {!Avm_crypto.Sigcache} design — bounded
    FIFO eviction, a global [Atomic] kill-switch so cache-on/off
    verdict equality is provable — except the store is genuinely
    shared (lock-striped) rather than per-domain, because one epoch's
    (target, witness) jobs must dedup against each other across
    {!Witness.run_sharded} worker domains. *)

type t

val create : ?capacity:int -> ?stripes:int -> ?spot_rate:int -> ?seed:int64 -> unit -> t
(** A fresh cache. [capacity] bounds total remembered chunks (default
    8192, FIFO per stripe); [stripes] is the lock-striping factor
    (default 16, rounded up to a power of two); [spot_rate] designates
    1-in-[spot_rate] fingerprints for full replay even on hit
    (default 8; [0] disables spot checks, [1] replays every hit);
    [seed] keys the designation so an adversary cannot predict — or a
    test can force — which chunks escape the cache. *)

val set_enabled : bool -> unit
(** Global kill-switch (all caches, every domain). Off by one
    [Atomic.set]: every lookup misses, every store is skipped, and
    audits behave exactly as if no cache were threaded through. *)

val is_enabled : unit -> bool
val clear : t -> unit
val size : t -> int
val capacity : t -> int
val spot_rate : t -> int

(** {1 Fingerprints} *)

type print
(** The fingerprint of one replay chunk {e plus} the chunk's claims:
    [key] (SHA-256 over image digest, memory geometry, landmark
    strictness, pre-state digest and the input-event stream), a
    separate digest of the auditor's peer map (matched only for
    packet-emitting chunks — see {!remember}), the claimed post-state
    digest (the last [Snapshot_ref] in the chunk, [""] if none) and
    the claimed-outputs digest (every [Send] destination/payload and
    every [Snapshot_ref] digest, in sequence order). Claim fields are
    deliberately {e excluded} from [key]: inputs determine execution,
    claims are what execution must be checked against. *)

type fp
(** A streaming fingerprint builder (one pass, no entry list
    materialized — segments feed it straight from {!Avm_tamperlog.Log.iter_range}). *)

val fp_create :
  image:int array ->
  ?mem_words:int ->
  ?strict_landmarks:bool ->
  peers:(int * string) list ->
  pre_state:string ->
  unit ->
  fp

val fp_feed : fp -> Avm_tamperlog.Entry.t -> unit
val fp_finish : fp -> print

val fingerprint :
  image:int array ->
  ?mem_words:int ->
  ?strict_landmarks:bool ->
  peers:(int * string) list ->
  pre_state:string ->
  Avm_tamperlog.Entry.t list ->
  print
(** [fp_create] / [fp_feed] / [fp_finish] over a materialized chunk. *)

val key_hex : print -> string
(** Hex of the lookup key (tests, debugging). *)

val chunk_bytes : print -> int
(** Total {!Avm_tamperlog.Entry.wire_size} of the fingerprinted chunk —
    what a hit saves re-walking at instruction level. *)

(** {1 The memo protocol} *)

type cached = { instructions : int; entries_consumed : int }
(** What the original verified replay measured — a hit reconstructs
    the exact [Replay.Verified] payload, so verdict vectors are
    byte-identical cache-on vs cache-off. *)

val find : t -> fuel:int -> print -> [ `Hit of cached | `Spot of cached | `Miss ]
(** [`Hit c]: fingerprint present and {e both} claim digests equal the
    cached ones — the chunk is verified without replay. [`Spot c]:
    same, but this fingerprint is designated for spot-check replay;
    the caller must replay fully and then {!confirm_spot}. [`Miss]:
    absent, claims differ (counted under
    [replay.cache_claim_mismatches]), or the cached replay needed more
    than [fuel] instructions. Bumps [replay.cache_hits] /
    [replay.cache_misses] / [replay.cache_bytes_saved]. *)

val remember :
  t -> print -> ?peers_sensitive:bool -> instructions:int -> entries_consumed:int ->
  unit -> unit
(** Store the result of a full {e verified} replay of [print]. Only
    verified outcomes may be remembered (divergences must re-replay
    everywhere — they are evidence, not overhead).

    [peers_sensitive] (default [true], the conservative choice) says
    whether that replay emitted any guest packet. The peer map is the
    one execution input kept {e out} of the fingerprint key — it only
    matters when packets are emitted, and fleet nodes all have
    different witness maps, so folding it into the key would kill
    cross-node dedup of the idle majority. Instead the rememberer's
    peers digest is stored with the entry and enforced on hit only
    when [peers_sensitive]; emission is itself determined by the
    fingerprint, so fingerprint-equal chunks agree on the flag. Use
    {!measure_replay} to compute it. *)

val note_packet_emitted : unit -> unit
(** Called by the replay engine once per guest packet emission (mapped
    to a peer or not); feeds {!measure_replay}. *)

val measure_replay : (unit -> 'a) -> 'a * bool
(** Run a replay thunk and report whether it emitted guest packets
    (the {!note_packet_emitted} delta around the call). Deltas from
    concurrent domains can only inflate the answer — pollution makes
    an entry peers-sensitive that needn't be, costing cross-peer hits
    but never soundness. *)

val confirm_spot : t -> print -> matched:bool -> unit
(** Report a spot-check replay's result against the cached entry.
    [matched = false] means the table lied: the entry is evicted and
    [replay.cache_poisoned] bumped. *)

type stats = {
  hits : int;
  misses : int;
  spot_checks : int;
  claim_mismatches : int;
  poisoned : int;
  bytes_saved : int;
  instructions_saved : int;
}

val stats : t -> stats
(** This instance's counters (the [replay.cache_*] metrics aggregate
    across instances). *)
