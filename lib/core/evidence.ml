open Avm_tamperlog

type accusation =
  | Tampered_log of { reason : string }
  | Replay_divergence of Replay.divergence
  | Unanswered_challenge of { auth : Auth.t }
  | Equivocation of { a : Auth.t; b : Auth.t }

type t = {
  accused : string;
  prev_hash : string;
  segment : Entry.t list;
  auths : Auth.t list;
  accusation : accusation;
}

let describe t =
  let what =
    match t.accusation with
    | Tampered_log { reason } -> "tampered log: " ^ reason
    | Replay_divergence d -> Format.asprintf "%a" Replay.pp_outcome (Replay.Diverged d)
    | Unanswered_challenge _ -> "machine refuses to produce its committed log"
    | Equivocation { a; b } ->
      Printf.sprintf "equivocation: two signed commitments at seq %d (%s vs %s)" a.Auth.seq
        (Avm_util.Hex.short a.Auth.hash) (Avm_util.Hex.short b.Auth.hash)
  in
  Printf.sprintf "evidence against %s (%d entries, %d authenticators): %s" t.accused
    (List.length t.segment) (List.length t.auths) what

(* --- serialization ------------------------------------------------------ *)

let divergence_kinds =
  [
    (0, Replay.Input_mismatch);
    (1, Replay.Irq_landmark_mismatch);
    (2, Replay.Output_mismatch);
    (3, Replay.Missing_output);
    (4, Replay.Snapshot_mismatch);
    (5, Replay.Crossref_mismatch);
    (6, Replay.Guest_halted_early);
    (7, Replay.Guest_stalled);
    (8, Replay.Guest_fault);
  ]

let write_accusation w = function
  | Tampered_log { reason } ->
    Avm_util.Wire.u8 w 0;
    Avm_util.Wire.bytes w reason
  | Replay_divergence d ->
    Avm_util.Wire.u8 w 1;
    let kind_id = fst (List.find (fun (_, k) -> k = d.Replay.kind) divergence_kinds) in
    Avm_util.Wire.u8 w kind_id;
    Avm_machine.Landmark.write w d.Replay.at;
    Avm_util.Wire.option w (fun w s -> Avm_util.Wire.varint w s) d.Replay.entry_seq;
    Avm_util.Wire.bytes w d.Replay.detail
  | Unanswered_challenge { auth } ->
    Avm_util.Wire.u8 w 2;
    Auth.write w auth
  | Equivocation { a; b } ->
    Avm_util.Wire.u8 w 3;
    Auth.write w a;
    Auth.write w b

let read_accusation r =
  match Avm_util.Wire.read_u8 r with
  | 0 -> Tampered_log { reason = Avm_util.Wire.read_bytes r }
  | 1 ->
    let kind_id = Avm_util.Wire.read_u8 r in
    let kind =
      match List.assoc_opt kind_id divergence_kinds with
      | Some k -> k
      | None -> raise (Avm_util.Wire.Malformed "bad divergence kind")
    in
    let at = Avm_machine.Landmark.read r in
    let entry_seq = Avm_util.Wire.read_option r Avm_util.Wire.read_varint in
    let detail = Avm_util.Wire.read_bytes r in
    Replay_divergence { Replay.kind; at; entry_seq; detail }
  | 2 -> Unanswered_challenge { auth = Auth.read r }
  | 3 ->
    let a = Auth.read r in
    let b = Auth.read r in
    Equivocation { a; b }
  | n -> raise (Avm_util.Wire.Malformed (Printf.sprintf "bad accusation tag %d" n))

let encode t =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w t.accused;
  Avm_util.Wire.bytes w t.prev_hash;
  Avm_util.Wire.list w Entry.write t.segment;
  Avm_util.Wire.list w Auth.write t.auths;
  write_accusation w t.accusation;
  Avm_util.Wire.contents w

let decode s =
  let r = Avm_util.Wire.reader s in
  let accused = Avm_util.Wire.read_bytes r in
  let prev_hash = Avm_util.Wire.read_bytes r in
  let segment = Avm_util.Wire.read_list r Entry.read in
  let auths = Avm_util.Wire.read_list r Auth.read in
  let accusation = read_accusation r in
  Avm_util.Wire.expect_end r;
  { accused; prev_hash; segment; auths; accusation }
