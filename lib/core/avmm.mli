(** The accountable virtual machine monitor (paper §4).

    Wraps an {!Avm_machine.Machine.t} in record mode:

    - every nondeterministic input (clock, RNG, local input, packet
      words) and every asynchronous interrupt (with its landmark) is
      appended to the tamper-evident log as it is served to the guest;
    - outgoing guest packets become signed {!Wireformat.envelope}s,
      each committed to by a SEND log entry and its authenticator;
    - incoming envelopes are verified, logged as RECV (signature
      included), stripped, and injected into the guest NIC — and every
      word the guest later reads from them is cross-referenced to the
      RECV entry;
    - acknowledgments are produced for every accepted message and
      demanded for every send;
    - periodic incremental snapshots are taken and their digests
      logged.

    The five {!Config.level}s degrade this gracefully: plain-VMM
    levels keep only the replay log or nothing, matching the paper's
    measurement ladder.

    Time: the monitor derives virtual microseconds from the executed
    instruction count via {!Config.us_per_instr}, plus any stalls
    injected by the clock-read optimization or the host scheduler. *)

type t

type slice_stats = {
  instructions : int;
  events_logged : int;
  sends : int;
  daemon_us : float;
      (** host CPU spent on logging + crypto, charged to the logging
          hyperthread by the host model *)
  end_us : float;  (** virtual time after the slice *)
}

val create :
  identity:Avm_crypto.Identity.t ->
  config:Config.t ->
  image:int array ->
  ?mem_words:int ->
  ?log_backend:Avm_tamperlog.Segment_store.backend ->
  peers:(int * string) list ->
  on_send:(Wireformat.envelope -> unit) ->
  unit ->
  t
(** [peers] maps the guest-visible destination ids (first word of each
    outgoing packet) to node names. [log_backend] (default
    [Compressed]) selects how the tamper-evident log stores its sealed
    segments; segments seal at every snapshot boundary, so a running
    AVMM keeps only the active tail uncompressed. *)

(** {1 Execution} *)

val run_slice : t -> until_us:float -> slice_stats
(** Run the guest until its virtual clock reaches [until_us] (or it
    halts, or parks itself on the SLEEP port). A guest parked with a
    deadline inside the slice wakes itself at the deadline; one parked
    past [until_us] leaves the slice empty. *)

val now_us : t -> float
val halted : t -> bool

val sleeping_until : t -> float option
(** [Some deadline] while the guest is parked on the SLEEP port
    ([infinity] = until an external wake), [None] while runnable. An
    event-driven harness schedules nothing for a parked node — that is
    what makes an idle fleet node cost zero. *)

val wake : t -> now_us:float -> unit
(** Unpark a sleeping guest and fast-forward its virtual clock to
    [now_us] (no instructions execute for the skipped interval). Used
    by the harness on packet arrival, local input, sleep deadline, or
    crash-heal; a no-op on a running guest. *)

val add_stall_us : t -> float -> unit
(** Advance virtual time without executing instructions — used by the
    host model when the logging daemon shares the guest's hyperthread
    (§6.9) or for the §6.11 artificial slowdown. *)

(** {1 Network} *)

val deliver :
  t ->
  Wireformat.envelope ->
  sender_cert:Avm_crypto.Identity.certificate ->
  [ `Ack of Wireformat.ack | `Duplicate of Wireformat.ack | `Rejected of string ]
(** Hand an incoming message to the monitor. On first receipt: verify,
    log RECV, enqueue into the guest NIC, raise the NIC interrupt, and
    return the acknowledgment. Retransmissions return the cached ack.
    At non-accountable levels verification and logging are skipped. *)

val accept_ack :
  t -> Wireformat.ack -> acker_cert:Avm_crypto.Identity.certificate -> (unit, string) result
(** Validate an acknowledgment for one of our sends and log it. *)

val unacked : t -> older_than_us:float -> Wireformat.envelope list
(** Sends not yet acknowledged whose most recent transmission is older
    than [older_than_us], sorted by nonce. Pure query: does not touch
    the retransmission schedule (see {!retransmit_due}). *)

val retransmit_due : t -> now_us:float -> Wireformat.envelope list
(** Unacked sends whose exponential-backoff timer has expired
    ({!Config.retrans_delay_us} past their last transmission), sorted
    by nonce. Each returned envelope is marked retransmitted: its
    last-sent time becomes [now_us] and its attempt count increments,
    so the next sweep backs off instead of returning the same stale
    set — the fix for the retransmission storm. Envelopes that exhaust
    [Config.retrans_max_attempts] are dropped from the schedule (once,
    counted in [net.backoff_gaveup]). Bumps [net.retransmissions]. *)

val retransmissions_sent : t -> int
(** Total envelopes handed back by {!retransmit_due} so far. *)

val next_retrans_at : t -> float
(** The earliest backoff deadline over all pending sends ([infinity]
    if none): when the next {!retransmit_due} call could return work
    or retire an envelope that exhausted its attempts. The harness
    turns this into one per-node heap event instead of a global
    sweep. *)

val retransmissions_gaveup : t -> int
(** Envelopes abandoned after [Config.retrans_max_attempts]. *)

(** {1 Guest-facing inputs} *)

val queue_input : t -> int -> unit
(** Enqueue a local input event (keyboard/mouse). Forged inputs from
    outside the AVM go through the same call — the monitor cannot tell
    the difference (paper §5.4, §7.2). *)

val note : t -> string -> unit
(** Append an operator annotation to the log. *)

val commitment : t -> Avm_tamperlog.Auth.t option
(** Sign an authenticator over the log's current last entry — the
    node's freshest commitment to its whole history, what it sends
    its witnesses at each epoch boundary for the cross-witness
    exchange (DESIGN.md §16). [None] at non-accountable levels or on
    an empty log. An equivocating node signs {e different}
    commitments for the same position to different witnesses; any two
    such authenticators are a transferable proof
    ({!Evidence.Equivocation}). *)

(** {1 Snapshots} *)

val take_snapshot : t -> Avm_machine.Snapshot.t option
(** Take an incremental snapshot now and log its digest. [None] at
    non-accountable levels. (Also invoked automatically per
    [config.snapshot_every_us].) *)

val snapshots : t -> Avm_machine.Snapshot.t list
(** All snapshots taken, oldest first. *)

(** {1 Inspection} *)

val machine : t -> Avm_machine.Machine.t
val log : t -> Avm_tamperlog.Log.t
val config : t -> Config.t
val name : t -> string
val identity : t -> Avm_crypto.Identity.t
val frames : t -> int
val total_daemon_us : t -> float
val clock_reads : t -> int
val bytes_sent_on_wire : t -> int
(** Total envelope + ack bytes this node has emitted (§6.7 traffic). *)

val seen_size : t -> int
(** Current population of the receive-side dedup table — bounded by
    {!Config.t.rx_dedup_window} (FIFO eviction, counted in
    [net.seen_evicted]). *)

(** {1 Adversary interface}

    What a cheating host can do to its own machine. None of these are
    logged — that is the point. *)

val poke : t -> addr:int -> value:int -> unit
(** Directly modify guest memory (unlimited-ammo style cheats). *)

val peek : t -> addr:int -> int
(** Read guest memory (wallhack-style information exposure; reading is
    inherently undetectable, paper §7.2). *)
