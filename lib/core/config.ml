type level = Bare_hw | Vmware_norec | Vmware_rec | Avmm_nosig | Avmm_rsa768

let level_name = function
  | Bare_hw -> "bare-hw"
  | Vmware_norec -> "vmware-norec"
  | Vmware_rec -> "vmware-rec"
  | Avmm_nosig -> "avmm-nosig"
  | Avmm_rsa768 -> "avmm-rsa768"

let all_levels = [ Bare_hw; Vmware_norec; Vmware_rec; Avmm_nosig; Avmm_rsa768 ]

type t = {
  level : level;
  mips : float;
  snapshot_every_us : int option;
  clock_opt : bool;
  rsa_bits : int;
  artificial_slowdown : float;
  retrans_base_us : float;
  retrans_cap_us : float;
  retrans_max_attempts : int;
  rx_dedup_window : int;
}

let virtualized t = t.level <> Bare_hw
let recording t = match t.level with Bare_hw | Vmware_norec -> false | _ -> true
let accountable t = match t.level with Avmm_nosig | Avmm_rsa768 -> true | _ -> false
let signing t = t.level = Avmm_rsa768

let make ?(snapshot_every_us = None) ?clock_opt ?(rsa_bits = 768)
    ?(artificial_slowdown = 1.0) ?(mips = 0.26) ?(retrans_base_us = 250_000.0)
    ?(retrans_cap_us = 4_000_000.0) ?(retrans_max_attempts = 0)
    ?(rx_dedup_window = 4096) level =
  if rx_dedup_window < 1 then invalid_arg "Config.make: rx_dedup_window must be >= 1";
  let t0 =
    {
      level;
      mips;
      snapshot_every_us;
      clock_opt = false;
      rsa_bits;
      artificial_slowdown;
      retrans_base_us;
      retrans_cap_us;
      retrans_max_attempts;
      rx_dedup_window;
    }
  in
  let clock_opt = match clock_opt with Some c -> c | None -> accountable t0 in
  { t0 with clock_opt }

(* Exponential backoff ladder: the k-th transmission of an envelope is
   followed by a silence of base * 2^(k-1), capped. The exponent is
   clamped so the ladder cannot overflow to infinity. *)
let retrans_delay_us t ~attempts =
  let n = min 30 (max 0 (attempts - 1)) in
  Float.min t.retrans_cap_us (t.retrans_base_us *. (2.0 ** float_of_int n))

(* Per-instruction slowdown factors, calibrated to Figure 7's ladder:
   virtualization costs ~2%, recording another ~11%, tamper-evident
   logging ~1% (the daemon runs on its own hyperthread, §6.9). *)
let us_per_instr t =
  let virt = if virtualized t then 1.02 else 1.0 in
  let rec_ = if recording t then 1.115 else 1.0 in
  let acct = if accountable t then 1.01 else 1.0 in
  1.0 /. t.mips *. virt *. rec_ *. acct *. t.artificial_slowdown

(* RSA cost scales ~cubically (sign) / ~quadratically (verify) with
   modulus size; 650 us / 55 us at 768 bits lands Figure 5's ~5 ms RTT
   with four signature pairs on the path. *)
let sign_cost_us t =
  if not (signing t) then 0.0
  else begin
    let s = float_of_int t.rsa_bits /. 768.0 in
    650.0 *. s *. s *. s
  end

let verify_cost_us t =
  if not (signing t) then 0.0
  else begin
    let s = float_of_int t.rsa_bits /. 768.0 in
    55.0 *. s *. s
  end

(* Per-packet host-side processing per endpoint (VMM exit, MAC-layer
   handling, daemon pipe), excluding signatures: Figure 5's ladder. *)
let packet_process_us t =
  match t.level with
  | Bare_hw -> 33.0
  | Vmware_norec -> 116.0
  | Vmware_rec -> 140.0
  | Avmm_nosig | Avmm_rsa768 -> 520.0

let per_event_log_us t = if recording t then 3.0 else 0.0
