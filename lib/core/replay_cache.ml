(* Fleet-wide replay memoization (DESIGN.md §14).

   Soundness rests on replay being a pure function of (image, memory
   geometry, landmark strictness, peer map, pre-state, input events):
   two chunks with equal fingerprints replay identically, so if one
   verified against its claims, the other verifies iff its claims are
   byte-equal to the cached ones. [find] therefore only answers `Hit
   when BOTH claim digests match — a tampered chunk can share an
   honest fingerprint (same inputs) but never its claims, so it falls
   through to full replay and diverges exactly as it would uncached.

   Claim fields are excluded from the key and folded into their own
   digests instead:

   - input digest:  every entry's seq, plus Exec/Recv/Ack/Note content
     verbatim, Send's nonce, Snapshot_ref's (snapshot_seq, at_icount);
   - output digest: Send's (dest, payload) and Snapshot_ref's digest,
     in sequence order; the last Snapshot_ref digest doubles as the
     claimed post-state.

   Recv/Ack signatures are inputs here (conservative: they are not
   read by replay, but including them only splits fingerprints, never
   merges what must stay apart). The idle-majority chunks that carry
   the fleet dedup win contain no messages at all. *)

module Metrics = Avm_obs.Metrics
module Sha256 = Avm_crypto.Sha256
open Avm_tamperlog

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

type cached = { instructions : int; entries_consumed : int }

(* What one verified replay established for a fingerprint key. The
   peer map is held out of the key so fleet peers (every node has
   different witnesses) can share idle chunks; it is enforced on hit
   only when the veried replay actually emitted packets
   ([s_peers_sensitive]) — emission is itself a pure function of the
   fingerprint, so fingerprint-equal chunks agree on it. *)
type slot = {
  s_peers : string; (* peers digest of the auditor that replayed *)
  s_peers_sensitive : bool; (* did that replay emit any packet? *)
  s_post : string; (* post-state claim *)
  s_outputs : string; (* outputs claim *)
  s_counts : cached;
}

type stripe = {
  lock : Mutex.t;
  tbl : (string, slot) Hashtbl.t;
  order : string Queue.t; (* insertion order, for FIFO eviction *)
}

type stats = {
  hits : int;
  misses : int;
  spot_checks : int;
  claim_mismatches : int;
  poisoned : int;
  bytes_saved : int;
  instructions_saved : int;
}

type t = {
  stripes : stripe array;
  stripe_cap : int;
  rate : int;
  seed : int64;
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_spots : int Atomic.t;
  c_mismatches : int Atomic.t;
  c_poisoned : int Atomic.t;
  c_bytes : int Atomic.t;
  c_instr : int Atomic.t;
}

let rec pow2_above n k = if k >= n then k else pow2_above n (k * 2)

let create ?(capacity = 8192) ?(stripes = 16) ?(spot_rate = 8) ?(seed = 0L) () =
  if capacity < 1 then invalid_arg "Replay_cache.create: capacity < 1";
  if spot_rate < 0 then invalid_arg "Replay_cache.create: spot_rate < 0";
  let stripes = pow2_above (max 1 stripes) 1 in
  {
    stripes =
      Array.init stripes (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 64; order = Queue.create () });
    stripe_cap = max 1 ((capacity + stripes - 1) / stripes);
    rate = spot_rate;
    seed;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_spots = Atomic.make 0;
    c_mismatches = Atomic.make 0;
    c_poisoned = Atomic.make 0;
    c_bytes = Atomic.make 0;
    c_instr = Atomic.make 0;
  }

let capacity t = t.stripe_cap * Array.length t.stripes
let spot_rate t = t.rate

let with_stripe t key f =
  let s = t.stripes.(Hashtbl.hash key land (Array.length t.stripes - 1)) in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s)

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.tbl;
      Queue.clear s.order;
      Mutex.unlock s.lock)
    t.stripes

let size t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.stripes

let stats t =
  {
    hits = Atomic.get t.c_hits;
    misses = Atomic.get t.c_misses;
    spot_checks = Atomic.get t.c_spots;
    claim_mismatches = Atomic.get t.c_mismatches;
    poisoned = Atomic.get t.c_poisoned;
    bytes_saved = Atomic.get t.c_bytes;
    instructions_saved = Atomic.get t.c_instr;
  }

(* --- fingerprinting ------------------------------------------------------ *)

(* The image digest is memoized per domain by physical identity: a
   fleet audit fingerprints thousands of chunks against the very same
   image array, and hashing it once per domain is free while hashing
   it per chunk would dominate the hit path. *)
let image_digests = Domain.DLS.new_key (fun () -> ref ([] : (int array * string) list))

let image_digest (img : int array) =
  let memo = Domain.DLS.get image_digests in
  match List.find_opt (fun (a, _) -> a == img) !memo with
  | Some (_, d) -> d
  | None ->
    let b = Buffer.create (Array.length img * 8) in
    Array.iter (fun w -> Buffer.add_int64_le b (Int64.of_int w)) img;
    let d = Sha256.digest_buffer b in
    memo := (img, d) :: (if List.length !memo >= 8 then [] else !memo);
    d

type print = {
  key : string;
  peers : string; (* digest of the (dest id, name) map, kept out of [key] *)
  post_state : string;
  outputs : string;
  bytes : int;
}

let key_hex p =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length p.key) (String.get p.key)))

let chunk_bytes p = p.bytes

type fp = {
  header : string; (* digest over everything execution depends on but the entries *)
  f_peers : string;
  f_in : Sha256.ctx;
  f_out : Sha256.ctx;
  f_buf : Buffer.t;
  mutable f_post : string;
  mutable f_bytes : int;
}

let fp_create ~image ?mem_words ?(strict_landmarks = true) ~peers ~pre_state () =
  let b = Buffer.create 256 in
  Buffer.add_string b (image_digest image);
  Buffer.add_int64_le b (Int64.of_int (Option.value mem_words ~default:(-1)));
  Buffer.add_char b (if strict_landmarks then '\001' else '\000');
  Buffer.add_string b pre_state;
  let header = Sha256.digest_buffer b in
  Buffer.clear b;
  List.iter
    (fun (id, name) ->
      Buffer.add_int64_le b (Int64.of_int id);
      Buffer.add_int64_le b (Int64.of_int (String.length name));
      Buffer.add_string b name)
    peers;
  {
    header;
    f_peers = Sha256.digest_buffer b;
    f_in = Sha256.init ();
    f_out = Sha256.init ();
    f_buf = Buffer.create 256;
    f_post = "";
    f_bytes = 0;
  }

let fp_feed f (e : Entry.t) =
  f.f_bytes <- f.f_bytes + Entry.wire_size e;
  let buf = f.f_buf in
  Buffer.clear buf;
  Buffer.add_int64_le buf (Int64.of_int e.Entry.seq);
  match e.Entry.content with
  | Entry.Send { dest; nonce; payload } ->
    Buffer.add_char buf 'S';
    Buffer.add_int64_le buf (Int64.of_int nonce);
    Sha256.feed_buffer f.f_in buf;
    Buffer.clear buf;
    Buffer.add_int64_le buf (Int64.of_int e.Entry.seq);
    Buffer.add_char buf 's';
    Buffer.add_int64_le buf (Int64.of_int (String.length dest));
    Buffer.add_string buf dest;
    Buffer.add_int64_le buf (Int64.of_int (String.length payload));
    Buffer.add_string buf payload;
    Sha256.feed_buffer f.f_out buf
  | Entry.Snapshot_ref { digest; snapshot_seq; at_icount } ->
    Buffer.add_char buf 'P';
    Buffer.add_int64_le buf (Int64.of_int snapshot_seq);
    Buffer.add_int64_le buf (Int64.of_int at_icount);
    Sha256.feed_buffer f.f_in buf;
    Buffer.clear buf;
    Buffer.add_int64_le buf (Int64.of_int e.Entry.seq);
    Buffer.add_char buf 'p';
    Buffer.add_string buf digest;
    Sha256.feed_buffer f.f_out buf;
    f.f_post <- digest
  | content ->
    Buffer.add_char buf (Char.chr (0x40 + Entry.type_tag content));
    Sha256.feed_buffer f.f_in buf;
    Sha256.feed f.f_in (Entry.content_bytes content)

let fp_finish f =
  let key = Sha256.digest_list [ f.header; Sha256.finalize f.f_in ] in
  {
    key;
    peers = f.f_peers;
    post_state = f.f_post;
    outputs = Sha256.finalize f.f_out;
    bytes = f.f_bytes;
  }

let fingerprint ~image ?mem_words ?strict_landmarks ~peers ~pre_state entries =
  let f = fp_create ~image ?mem_words ?strict_landmarks ~peers ~pre_state () in
  List.iter (fp_feed f) entries;
  fp_finish f

(* --- the memo protocol --------------------------------------------------- *)

(* Spot-check designation is a pure function of (seed, fingerprint
   key): 1-in-rate keys always replay fully, hit or not, regardless of
   cache contents, worker count or audit order — which is exactly what
   keeps verdict vectors deterministic AND denies a cache-poisoning
   adversary any fingerprint that is safe to lie about. *)
let spot_due t (p : print) =
  t.rate > 0
  && (let h = ref (Int64.to_int t.seed land max_int) in
      String.iter (fun c -> h := (((!h * 131) + Char.code c) land max_int)) p.key;
      !h mod t.rate = 0)

let miss t =
  Atomic.incr t.c_misses;
  Metrics.incr "replay.cache_misses";
  `Miss

let find t ~fuel (p : print) =
  if not (Atomic.get enabled) then `Miss
  else begin
    let found = with_stripe t p.key (fun s -> Hashtbl.find_opt s.tbl p.key) in
    match found with
    | Some { s_peers; s_peers_sensitive; s_post; s_outputs; s_counts = c }
      when String.equal s_post p.post_state
           && String.equal s_outputs p.outputs
           && ((not s_peers_sensitive) || String.equal s_peers p.peers)
           && c.instructions <= fuel ->
      if spot_due t p then begin
        Atomic.incr t.c_spots;
        Metrics.incr "replay.cache_spot_checks";
        `Spot c
      end
      else begin
        Atomic.incr t.c_hits;
        ignore (Atomic.fetch_and_add t.c_bytes p.bytes);
        ignore (Atomic.fetch_and_add t.c_instr c.instructions);
        Metrics.incr "replay.cache_hits";
        Metrics.incr ~by:p.bytes "replay.cache_bytes_saved";
        `Hit c
      end
    | Some _ ->
      (* Fingerprint collision with different claims: the canonical
         cheat shape. Full replay will produce the honest claims and
         diverge from this chunk's forged ones. *)
      Atomic.incr t.c_mismatches;
      Metrics.incr "replay.cache_claim_mismatches";
      miss t
    | None -> miss t
  end

let remember t (p : print) ?(peers_sensitive = true) ~instructions ~entries_consumed () =
  if Atomic.get enabled then
    with_stripe t p.key (fun s ->
        if not (Hashtbl.mem s.tbl p.key) then begin
          while Hashtbl.length s.tbl >= t.stripe_cap && not (Queue.is_empty s.order) do
            Hashtbl.remove s.tbl (Queue.pop s.order)
          done;
          Hashtbl.replace s.tbl p.key
            {
              s_peers = p.peers;
              s_peers_sensitive = peers_sensitive;
              s_post = p.post_state;
              s_outputs = p.outputs;
              s_counts = { instructions; entries_consumed };
            };
          Queue.add p.key s.order
        end)

(* Whether a replay thunk emitted guest packets, read off a process
   atomic the replay engine bumps per emission (mapped or not) via
   {!note_packet_emitted}. A dedicated atomic rather than the metrics
   counter: reading a counter means merging every shard's full table,
   far too slow for once-per-miss. Concurrent domains can only inflate
   the delta, so pollution errs toward peers-sensitive — fewer
   cross-peer hits, never an unsound one. *)
let packets_emitted = Atomic.make 0
let note_packet_emitted () = ignore (Atomic.fetch_and_add packets_emitted 1)

let measure_replay f =
  let e0 = Atomic.get packets_emitted in
  let r = f () in
  (r, Atomic.get packets_emitted > e0)

let confirm_spot t (p : print) ~matched =
  if not matched then begin
    Atomic.incr t.c_poisoned;
    Metrics.incr "replay.cache_poisoned";
    with_stripe t p.key (fun s -> Hashtbl.remove s.tbl p.key)
  end
