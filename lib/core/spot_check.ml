open Avm_tamperlog
open Avm_machine

type boundary = { entry_seq : int; snapshot_seq : int; at_icount : int }

(* Answered from the log's snapshot index — no entry data is touched,
   so a fully compressed log plans its spot checks without inflating a
   single segment. *)
let boundaries log =
  List.map
    (fun (entry_seq, snapshot_seq, at_icount) -> { entry_seq; snapshot_seq; at_icount })
    (Log.snapshot_index log)

type chunk_report = {
  start_snapshot : int;
  k : int;
  state_bytes : int;
  log_bytes_compressed : int;
  replay_instructions : int;
  outcome : Replay.outcome;
}

let check_chunk ~image ~mem_words ~snapshots ~log ~peers ~start_snapshot ~k =
  let bounds = boundaries log in
  let nth i =
    match List.find_opt (fun b -> b.snapshot_seq = i) bounds with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "Spot_check: no snapshot %d in log" i)
  in
  let start_b = nth start_snapshot in
  let end_b = nth (start_snapshot + k) in
  (* Materialize the authenticated state at the chunk's first snapshot. *)
  let chain =
    List.filter (fun (s : Snapshot.t) -> s.seq <= start_snapshot) snapshots
  in
  let machine = Snapshot.materialize ~mem_words ~image chain in
  (* Authenticate the downloaded state against the logged digest. *)
  let logged_digest =
    match (Log.entry log start_b.entry_seq).Entry.content with
    | Entry.Snapshot_ref { digest; _ } -> digest
    | _ -> assert false
  in
  let meta = Machine.serialize_meta machine in
  let root = Avm_crypto.Merkle.root (Snapshot.merkle_of_machine machine) in
  let recomputed =
    Avm_crypto.Sha256.digest_list [ meta; root; string_of_int start_b.at_icount ]
  in
  (* What the auditor transfers: the full state at the chunk start (the
     paper's "memory + disk snapshots") plus the compressed log. *)
  let state_bytes =
    String.length meta + (Memory.page_count (Machine.mem machine) * Memory.page_size * 4)
  in
  let from = start_b.entry_seq + 1 and upto = end_b.entry_seq in
  let log_bytes_compressed = Log.transfer_bytes log ~from ~upto in
  let outcome =
    if not (String.equal recomputed logged_digest) then
      Replay.Diverged
        {
          Replay.kind = Replay.Snapshot_mismatch;
          at = Machine.landmark machine;
          entry_seq = Some start_b.entry_seq;
          detail = "downloaded snapshot does not match the logged digest";
        }
    else
      Replay.replay_chunks ~image ~mem_words ~start:machine ~peers
        ~chunks:(Log.chunk_seq log ~from ~upto) ()
  in
  let replay_instructions =
    match outcome with
    | Replay.Verified { instructions; _ } -> instructions
    | Replay.Diverged _ -> Machine.icount machine - start_b.at_icount
  in
  {
    start_snapshot;
    k;
    state_bytes;
    log_bytes_compressed;
    replay_instructions;
    outcome;
  }
