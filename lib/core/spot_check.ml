open Avm_tamperlog
open Avm_machine

type boundary = { entry_seq : int; snapshot_seq : int; at_icount : int }

(* Answered from the log's snapshot index — no entry data is touched,
   so a fully compressed log plans its spot checks without inflating a
   single segment. *)
let boundaries log =
  List.map
    (fun (entry_seq, snapshot_seq, at_icount) -> { entry_seq; snapshot_seq; at_icount })
    (Log.snapshot_index log)

(* A prepared audit plan: the boundary index as an array + hashtable
   (one O(n) build instead of a List.find_opt scan per lookup) and the
   snapshot chain sorted once, so every chunk slices a prefix instead
   of re-filtering the full snapshot list. *)
type plan = {
  p_bounds : boundary array; (* ascending entry_seq *)
  p_by_snap : (int, boundary) Hashtbl.t; (* snapshot_seq -> boundary *)
  p_chain : Snapshot.t array; (* ascending snapshot seq *)
}

let plan ~log ~snapshots =
  let p_bounds = Array.of_list (boundaries log) in
  let p_by_snap = Hashtbl.create (max 16 (Array.length p_bounds)) in
  Array.iter (fun b -> Hashtbl.replace p_by_snap b.snapshot_seq b) p_bounds;
  { p_bounds; p_by_snap; p_chain = Array.of_list (Snapshot.chain_upto snapshots max_int) }

let plan_boundaries pl = Array.to_list pl.p_bounds

let boundary_of pl i =
  match Hashtbl.find_opt pl.p_by_snap i with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Spot_check: no snapshot %d in log" i)

(* The pre-filtered chain for [Snapshot.materialize]: the prefix of the
   sorted snapshot array with seq <= s. *)
let chain_to pl s =
  let n = Array.length pl.p_chain in
  let k = ref 0 in
  while !k < n && pl.p_chain.(!k).Snapshot.seq <= s do
    incr k
  done;
  Array.to_list (Array.sub pl.p_chain 0 !k)

let has_snapshot pl s = Array.exists (fun (sn : Snapshot.t) -> sn.seq = s) pl.p_chain

(* Materialize the downloaded state at a boundary and authenticate it
   against the logged digest; a forged download is itself evidence. *)
let downloaded_state pl ~image ?mem_words ~log (b : boundary) =
  let machine = Snapshot.materialize ?mem_words ~image (chain_to pl b.snapshot_seq) in
  let logged_digest =
    match (Log.entry log b.entry_seq).Entry.content with
    | Entry.Snapshot_ref { digest; _ } -> digest
    | _ -> assert false
  in
  let meta = Machine.serialize_meta machine in
  let root = Avm_crypto.Merkle.root (Snapshot.merkle_of_machine machine) in
  let recomputed =
    Avm_crypto.Sha256.digest_list [ meta; root; string_of_int b.at_icount ]
  in
  let fault =
    if String.equal recomputed logged_digest then None
    else
      Some
        {
          Replay.kind = Replay.Snapshot_mismatch;
          at = Machine.landmark machine;
          entry_seq = Some b.entry_seq;
          detail = "downloaded snapshot does not match the logged digest";
        }
  in
  (machine, fault)

type chunk_report = {
  start_snapshot : int;
  k : int;
  state_bytes : int;
  log_bytes_compressed : int;
  replay_instructions : int;
  outcome : Replay.outcome;
}

(* The logged digest at a boundary — the pre-state half of a chunk
   fingerprint. Using the *claimed* digest (not a materialized state's)
   is what lets a cache hit skip the state download entirely, and it
   is sound because entries are only remembered after the miss path's
   [downloaded_state] authenticated that very claim: a forged claim
   either misses (different fingerprint) or collides with an entry
   whose execution was verified to start from the claimed state. *)
let logged_digest log (b : boundary) =
  match (Log.entry log b.entry_seq).Entry.content with
  | Entry.Snapshot_ref { digest; _ } -> digest
  | _ -> assert false

(* Memoize one log range: fingerprint straight off the log (segment at
   a time, no entry list materialized), then run the [Replay.with_cache]
   protocol generalized to carry a report alongside the outcome. The
   per-path wall clocks feed the dedup bench: spot-designated hits are
   full replays of fingerprint-identical chunks, so
   [cache_spot_seconds] / [cache_hit_seconds] is a like-for-like
   measure of what each hit avoided. *)
let with_range_cache ?cache ~fuel ~image ?mem_words ?strict_landmarks ~peers ~log
    ~pre_state ~from ~upto ~(on_hit : Replay_cache.cached -> 'a) ~(full : unit -> 'a)
    ~(outcome_of : 'a -> Replay.outcome) () =
  match cache with
  | Some c when Replay_cache.is_enabled () -> (
    let t0 = Avm_obs.Clock.now_s () in
    let f = Replay_cache.fp_create ~image ?mem_words ?strict_landmarks ~peers ~pre_state () in
    Log.iter_range log ~from ~upto (Replay_cache.fp_feed f);
    let p = Replay_cache.fp_finish f in
    let clocked name r =
      Avm_obs.Metrics.observe name (Avm_obs.Clock.now_s () -. t0);
      r
    in
    let counts_match cached = function
      | Replay.Verified { instructions; entries_consumed } ->
        instructions = cached.Replay_cache.instructions
        && entries_consumed = cached.Replay_cache.entries_consumed
      | Replay.Diverged _ -> false
    in
    match Replay_cache.find c ~fuel p with
    | `Hit cached -> clocked "spot_check.cache_hit_seconds" (on_hit cached)
    | `Spot cached ->
      let r = full () in
      Replay_cache.confirm_spot c p ~matched:(counts_match cached (outcome_of r));
      clocked "spot_check.cache_spot_seconds" r
    | `Miss ->
      let r, emitted = Replay_cache.measure_replay full in
      (match outcome_of r with
      | Replay.Verified { instructions; entries_consumed } ->
        Replay_cache.remember c p ~peers_sensitive:emitted ~instructions
          ~entries_consumed ()
      | Replay.Diverged _ -> ());
      clocked "spot_check.cache_miss_seconds" r)
  | _ -> full ()

let check_chunk ?plan:pl ?cache ~image ~mem_words ~snapshots ~log ~peers ~start_snapshot
    ~k () =
  Avm_obs.Trace.with_span ~name:"spot_check.chunk"
    ~attrs:[ ("start_snapshot", string_of_int start_snapshot); ("k", string_of_int k) ]
  @@ fun () ->
  let pl = match pl with Some pl -> pl | None -> plan ~log ~snapshots in
  let start_b = boundary_of pl start_snapshot in
  let end_b = boundary_of pl (start_snapshot + k) in
  let from = start_b.entry_seq + 1 and upto = end_b.entry_seq in
  let full () =
    (* Materialize the authenticated state at the chunk's first
       snapshot; a forged download is itself the divergence. *)
    let machine, digest_fault = downloaded_state pl ~image ~mem_words ~log start_b in
    (* What the auditor transfers: the full state at the chunk start
       (the paper's "memory + disk snapshots") plus the compressed
       log. *)
    let state_bytes =
      String.length (Machine.serialize_meta machine)
      + (Memory.page_count (Machine.mem machine) * Memory.page_size * 4)
    in
    let log_bytes_compressed = Log.transfer_bytes log ~from ~upto in
    let outcome =
      match digest_fault with
      | Some d -> Replay.Diverged d
      | None ->
        Replay.replay_chunks ~image ~mem_words ~start:machine ~peers
          ~chunks:(Log.chunk_seq log ~from ~upto) ()
    in
    let replay_instructions =
      match outcome with
      | Replay.Verified { instructions; _ } -> instructions
      | Replay.Diverged _ -> Machine.icount machine - start_b.at_icount
    in
    Avm_obs.Metrics.incr ~by:state_bytes "spot_check.state_bytes";
    Avm_obs.Metrics.incr ~by:log_bytes_compressed "spot_check.log_bytes_compressed";
    Avm_obs.Metrics.incr ~by:replay_instructions "spot_check.replay_instructions";
    { start_snapshot; k; state_bytes; log_bytes_compressed; replay_instructions; outcome }
  in
  let report =
    with_range_cache ?cache ~fuel:Replay.default_fuel ~image ~mem_words ~peers ~log
      ~pre_state:(logged_digest log start_b) ~from ~upto
      ~on_hit:(fun { Replay_cache.instructions; entries_consumed } ->
        (* Nothing downloaded, nothing executed: the audit is the
           three-digest compare, and the report says so. *)
        {
          start_snapshot;
          k;
          state_bytes = 0;
          log_bytes_compressed = 0;
          replay_instructions = 0;
          outcome = Replay.Verified { instructions; entries_consumed };
        })
      ~full
      ~outcome_of:(fun r -> r.outcome)
      ()
  in
  Avm_obs.Metrics.incr "spot_check.chunks_checked";
  report

let check_chunks ?par ?cache ~image ~mem_words ~snapshots ~log ~peers chunks =
  let pl = plan ~log ~snapshots in
  let job (start_snapshot, k) =
    check_chunk ~plan:pl ?cache ~image ~mem_words ~snapshots ~log ~peers ~start_snapshot
      ~k ()
  in
  Audit_ctx.with_parallelism ?par (fun p ->
      match p with
      | Some pool -> Avm_util.Domain_pool.map_list pool job chunks
      | None -> List.map job chunks)

(* --- snapshot-partitioned full replay (the parallel semantic audit) ------ *)

(* The full log [1..upto] cut at every snapshot boundary whose state the
   auditor can actually materialize. Each piece replays independently:
   the first from the boot image, the rest from downloaded snapshot
   state, exactly like a k=1 spot check. *)
type piece = {
  pc_start : [ `Fresh | `Boundary of boundary ];
  pc_from : int;
  pc_upto : int;
}

let pieces pl ~upto =
  let cuts =
    List.filter
      (fun b -> b.entry_seq < upto && has_snapshot pl b.snapshot_seq)
      (Array.to_list pl.p_bounds)
  in
  let rec go start from = function
    | [] -> [ { pc_start = start; pc_from = from; pc_upto = upto } ]
    | b :: rest ->
      { pc_start = start; pc_from = from; pc_upto = b.entry_seq }
      :: go (`Boundary b) (b.entry_seq + 1) rest
  in
  go `Fresh 1 cuts

let replay_piece pl ~image ?mem_words ?fuel ?cache ~peers ~log piece =
  Avm_obs.Trace.with_span ~name:"replay.piece"
    ~attrs:
      [ ("from", string_of_int piece.pc_from); ("upto", string_of_int piece.pc_upto) ]
  @@ fun () ->
  Avm_obs.Metrics.incr "spot_check.pieces_replayed";
  let replay start =
    Replay.replay_chunks ~image ?mem_words ?start ?fuel ~peers
      ~chunks:(Log.chunk_seq log ~from:piece.pc_from ~upto:piece.pc_upto)
      ()
  in
  match piece.pc_start with
  | `Fresh ->
    (* The boot piece has no boundary claim to fingerprint against;
       Replay computes the fresh machine's state digest itself. *)
    Replay.replay_chunks ~image ?mem_words ?fuel ~peers ?cache
      ~chunks:(Log.chunk_seq log ~from:piece.pc_from ~upto:piece.pc_upto)
      ()
  | `Boundary b ->
    with_range_cache ?cache
      ~fuel:(Option.value fuel ~default:Replay.default_fuel)
      ~image ?mem_words ~peers ~log ~pre_state:(logged_digest log b) ~from:piece.pc_from
      ~upto:piece.pc_upto
      ~on_hit:(fun { Replay_cache.instructions; entries_consumed } ->
        Replay.Verified { instructions; entries_consumed })
      ~full:(fun () ->
        match downloaded_state pl ~image ?mem_words ~log b with
        | _, Some d -> Replay.Diverged d
        | machine, None -> replay (Some machine))
      ~outcome_of:Fun.id ()

(* Merge per-piece outcomes in sequence order: the earliest diverged
   piece wins (its replay saw exactly the states the sequential pass
   would have seen there — see the mli), and an all-verified run sums
   to the sequential totals because piece boundaries telescope. *)
let merge_outcomes outcomes =
  let rec go instructions fed = function
    | [] -> Replay.Verified { instructions; entries_consumed = fed }
    | Replay.Diverged d :: _ -> Replay.Diverged d
    | Replay.Verified { instructions = i; entries_consumed = f } :: rest ->
      go (instructions + i) (fed + f) rest
  in
  go 0 0 outcomes

let parallel_replay ?par ?cache ~image ?mem_words ?fuel ~snapshots ~log ~peers ?upto () =
  let upto = match upto with Some u -> u | None -> Log.length log in
  let streaming () =
    Replay.replay_chunks ~image ?mem_words ?fuel ~peers ?cache
      ~chunks:(Log.chunk_seq log ~from:1 ~upto)
      ()
  in
  Audit_ctx.with_parallelism ?par (fun p ->
      match p with
      | None -> streaming ()
      | Some pool -> (
        let pl = plan ~log ~snapshots in
        match pieces pl ~upto with
        | [ _ ] | [] ->
          (* nothing to partition: plain streaming replay *)
          streaming ()
        | ps ->
          merge_outcomes
            (Avm_util.Domain_pool.map_list pool
               (replay_piece pl ~image ?mem_words ?fuel ?cache ~peers ~log)
               ps)))
