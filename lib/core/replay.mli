(** Deterministic replay against a reference image — the semantic
    check of an audit (paper §4.5).

    The replayer instantiates a fresh machine from the reference image
    (or from an authenticated snapshot), then walks the log segment:

    - synchronous inputs are served back in order; the guest asking
      for a different port, or in a different order, is a divergence;
    - interrupts are injected exactly at their recorded landmarks; a
      landmark whose (pc, branch count) no longer matches the replayed
      machine is a divergence;
    - every output (packet send) is compared against the logged SEND;
    - every logged snapshot digest is recomputed from the replayed
      state and compared;
    - every word the recorded guest read from an incoming packet is
      cross-referenced against the corresponding RECV entry's payload
      (paper §4.4, "detecting inconsistencies").

    If there is any discrepancy whatsoever, replay terminates and
    reports the fault. *)

type divergence_kind =
  | Input_mismatch  (** guest requested a different input than logged *)
  | Irq_landmark_mismatch  (** landmark's (pc, branches) did not match *)
  | Output_mismatch  (** guest sent something not in the log *)
  | Missing_output  (** log claims a send the guest never produced *)
  | Snapshot_mismatch  (** replayed state digest differs from logged *)
  | Crossref_mismatch  (** injected packet words disagree with RECV *)
  | Guest_halted_early  (** machine halted with log events remaining *)
  | Guest_stalled  (** fuel exhausted with log events remaining *)
  | Guest_fault  (** reference guest crashed (bad opcode / wild access) *)

val kind_name : divergence_kind -> string

type divergence = {
  kind : divergence_kind;
  at : Avm_machine.Landmark.t;  (** replayed-machine position *)
  entry_seq : int option;  (** offending log entry, if any *)
  detail : string;
}

type outcome =
  | Verified of { instructions : int; entries_consumed : int }
  | Diverged of divergence

val pp_outcome : Format.formatter -> outcome -> unit

val default_fuel : int
(** 200M instructions — the default replay budget. *)

val state_digest : Avm_machine.Machine.t -> string
(** The digest a Snapshot_ref taken {e now} would seal: SHA-256 over
    (serialized meta, memory Merkle root, icount). The pre-state half
    of a {!Replay_cache} fingerprint. *)

val replay :
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  ?strict_landmarks:bool ->
  peers:(int * string) list ->
  ?cache:Replay_cache.t ->
  entries:Avm_tamperlog.Entry.t list ->
  unit ->
  outcome
(** [replay ~image ~peers ~entries ()] runs the semantic check.
    [start] is a pre-materialized machine for segment audits (default:
    boot the image). [fuel] bounds replay instructions (default 200M)
    so a divergent guest that spins cannot hang the auditor.
    [strict_landmarks] (default [true]) cross-checks the (pc, branch
    count) of every injected interrupt against its recorded landmark —
    the full ReVirt-style coordinate of paper §4.4. Setting it [false]
    injects on instruction count alone, the ablation DESIGN.md §5
    discusses: divergences are then only caught at the next observable
    mismatch, later and with a vaguer report. *)

val replay_chunks :
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  ?strict_landmarks:bool ->
  peers:(int * string) list ->
  ?cache:Replay_cache.t ->
  chunks:Avm_tamperlog.Entry.t list Seq.t ->
  unit ->
  outcome
(** Like {!replay}, but consumes the log as a lazy stream of chunks
    (one per sealed segment — see [Log.chunk_seq]): each chunk is fed
    and the engine cranked until it blocks before the next chunk is
    forced, so compressed segments inflate only as the replay reaches
    them. [replay] is [replay_chunks] over a singleton stream.

    With [cache] (and the {!Replay_cache} kill-switch on) the stream
    is forced up front, fingerprinted against the start state, and the
    memo protocol applies: a hit returns the original replay's
    [Verified] payload without executing an instruction, a
    spot-designated or missing fingerprint replays fully, and only
    verified outcomes are remembered. *)

val with_cache :
  ?cache:Replay_cache.t ->
  fuel:int ->
  print:(unit -> Replay_cache.print) ->
  replay:(unit -> outcome) ->
  unit ->
  outcome
(** The memo protocol itself, for callers (e.g. {!Spot_check}) that
    fingerprint without materializing entries: [print] is forced only
    when a cache is present and enabled; [replay] only on miss or
    spot-check. Guarantees the outcome equals what [replay ()] would
    return, except against a poisoned cache entry on a non-designated
    fingerprint — the window {!Replay_cache}'s seeded spot checks
    bound. *)

(** {1 Incremental engine}

    Online auditing (paper §6.11) replays a log {e while it is still
    being produced}: entries are {!feed} in as they arrive and
    {!crank} advances the replay as far as the available log allows.
    {!replay} is a thin wrapper over this engine. *)

type engine

val engine :
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?strict_landmarks:bool ->
  peers:(int * string) list ->
  unit ->
  engine

val feed : engine -> Avm_tamperlog.Entry.t list -> unit
(** Append newly received log entries (in log order). *)

val feed_entry : engine -> Avm_tamperlog.Entry.t -> unit
(** Single-entry [feed] — the hook streaming readers push into. *)

val crank : engine -> fuel:int -> [ `Blocked | `Fuel_exhausted | `Fault of divergence ]
(** Advance replay by at most [fuel] instructions. [`Blocked] means
    every fed entry has been consumed and verified so far — feed more
    (or, if the log is complete, the segment is verified). A returned
    [`Fault] is terminal. *)

val engine_machine : engine -> Avm_machine.Machine.t
(** The machine being replayed — replay-time analyses
    ({!Avm_analysis}) attach their tracer/watch hooks to it before
    cranking (paper §7.5). *)

val replayed_instructions : engine -> int
val consumed_entries : engine -> int
(** Entries verified so far (active entries only — passive RECV/ACK
    entries are accounted when fed). *)

val pending_entries : engine -> int
(** Active entries fed but not yet reproduced — the auditor's lag. *)
