(** Shared audit configuration records.

    Every audit entry point used to re-thread the same labeled
    arguments — who is being audited ([node_cert]), whose signatures
    appear in its log ([peer_certs]), which authenticators the auditor
    collected ([auths]), the acknowledgement grace window, and the
    [?jobs]/[?pool] pair. {!ctx} and {!parallelism} bundle them once;
    {!Audit}, {!Spot_check} and {!Online_audit} all take [~ctx] /
    [?par]. (Defined here, below those modules in the dependency
    order; {!Audit} re-exports both records under its own name.) *)

type ctx = {
  node_cert : Avm_crypto.Identity.certificate;
      (** certificate of the node under audit *)
  peer_certs : (string * Avm_crypto.Identity.certificate) list;
      (** certificates of its correspondents, for RECV signatures *)
  auths : Avm_tamperlog.Auth.t list;
      (** authenticators the auditor collected for this node *)
  ack_grace : int;
      (** most recent sends exempt from the every-send-acked rule *)
}

val ctx :
  node_cert:Avm_crypto.Identity.certificate ->
  ?peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  ?auths:Avm_tamperlog.Auth.t list ->
  ?ack_grace:int ->
  unit ->
  ctx
(** Smart constructor; [peer_certs] and [auths] default to [[]],
    [ack_grace] to 50. *)

type parallelism = {
  jobs : int;  (** worker count; 1 = sequential *)
  pool : Avm_util.Domain_pool.t option;
      (** run on this (borrowed) pool instead of spawning one *)
}

val sequential : parallelism
(** [{ jobs = 1; pool = None }] — the default everywhere. *)

val parallel : ?pool:Avm_util.Domain_pool.t -> int -> parallelism
(** [parallel jobs] spawns a scoped pool per call; [parallel ~pool jobs]
    borrows [pool] (its lane count wins over [jobs]). *)

val with_parallelism : ?par:parallelism -> (Avm_util.Domain_pool.t option -> 'a) -> 'a
(** Resolve [?par] the way every entry point does: an explicit
    multi-lane [pool] is borrowed as-is; otherwise [jobs > 1] spawns a
    pool scoped to the callback; anything else passes [None] (the
    sequential path). *)
