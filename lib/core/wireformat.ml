open Avm_util

let payload_of_words words =
  String.init
    (4 * Array.length words)
    (fun i -> Char.chr ((words.(i / 4) lsr (8 * (i mod 4))) land 0xff))

let words_of_payload s =
  if String.length s mod 4 <> 0 then raise (Wire.Malformed "payload not word-aligned");
  Array.init
    (String.length s / 4)
    (fun i ->
      let b j = Char.code s.[(4 * i) + j] in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

type envelope = {
  src : string;
  dest : string;
  nonce : int;
  payload : string;
  signature : string;
  auth : Avm_tamperlog.Auth.t;
}

let message_body ~src ~dest ~nonce ~payload =
  let w = Wire.writer () in
  Wire.bytes w "avm-message";
  Wire.bytes w src;
  Wire.bytes w dest;
  Wire.varint w nonce;
  Wire.bytes w payload;
  Wire.contents w

let verify_envelope cert env =
  String.equal (Avm_crypto.Identity.cert_name cert) env.src
  && Avm_crypto.Identity.verify cert
       ~msg:(message_body ~src:env.src ~dest:env.dest ~nonce:env.nonce ~payload:env.payload)
       ~signature:env.signature
  && Avm_tamperlog.Auth.matches_send env.auth ~payload:env.payload ~dest:env.dest
       ~nonce:env.nonce
  && String.equal env.auth.Avm_tamperlog.Auth.node env.src

type ack = {
  acker : string;
  sender : string;
  nonce : int;
  recv_auth : Avm_tamperlog.Auth.t;
}

let verify_ack acker_cert ack ~sent:(sent : envelope) =
  String.equal (Avm_crypto.Identity.cert_name acker_cert) ack.acker
  && ack.nonce = sent.nonce
  && String.equal ack.sender sent.src
  && String.equal ack.recv_auth.Avm_tamperlog.Auth.node ack.acker
  && Avm_tamperlog.Auth.verify acker_cert ack.recv_auth
  && Avm_tamperlog.Auth.matches_content ack.recv_auth
       (Avm_tamperlog.Entry.Recv
          { src = sent.src; nonce = sent.nonce; payload = sent.payload; signature = sent.signature })

let encode_envelope env =
  let w = Wire.writer () in
  Wire.bytes w env.src;
  Wire.bytes w env.dest;
  Wire.varint w env.nonce;
  Wire.bytes w env.payload;
  Wire.bytes w env.signature;
  Avm_tamperlog.Auth.write w env.auth;
  Wire.contents w

let decode_envelope s =
  let r = Wire.reader s in
  let src = Wire.read_bytes r in
  let dest = Wire.read_bytes r in
  let nonce = Wire.read_varint r in
  let payload = Wire.read_bytes r in
  let signature = Wire.read_bytes r in
  let auth = Avm_tamperlog.Auth.read r in
  Wire.expect_end r;
  { src; dest; nonce; payload; signature; auth }

let encode_ack a =
  let w = Wire.writer () in
  Wire.bytes w a.acker;
  Wire.bytes w a.sender;
  Wire.varint w a.nonce;
  Avm_tamperlog.Auth.write w a.recv_auth;
  Wire.contents w

let decode_ack s =
  let r = Wire.reader s in
  let acker = Wire.read_bytes r in
  let sender = Wire.read_bytes r in
  let nonce = Wire.read_varint r in
  let recv_auth = Avm_tamperlog.Auth.read r in
  Wire.expect_end r;
  { acker; sender; nonce; recv_auth }

let envelope_wire_size env = String.length (encode_envelope env)
let ack_wire_size a = String.length (encode_ack a)

(* Non-accountable (baseline) traffic: same envelope framing, but the
   signature and authenticator fields are empty. Sizing it with the
   real encoder keeps byte accounting consistent with the accountable
   path instead of hand-estimating header overhead. *)
let null_auth ~node =
  {
    Avm_tamperlog.Auth.node;
    seq = 0;
    hash = "";
    prev_hash = "";
    tag = 0;
    content_digest = "";
    signature = "";
  }

let bare_envelope ~src ~dest ~nonce ~payload =
  { src; dest; nonce; payload; signature = ""; auth = null_auth ~node:src }

let bare_wire_size ~src ~dest ~nonce ~payload =
  envelope_wire_size (bare_envelope ~src ~dest ~nonce ~payload)
