open Avm_machine
open Avm_tamperlog

type divergence_kind =
  | Input_mismatch
  | Irq_landmark_mismatch
  | Output_mismatch
  | Missing_output
  | Snapshot_mismatch
  | Crossref_mismatch
  | Guest_halted_early
  | Guest_stalled
  | Guest_fault

let kind_name = function
  | Input_mismatch -> "input-mismatch"
  | Irq_landmark_mismatch -> "irq-landmark-mismatch"
  | Output_mismatch -> "output-mismatch"
  | Missing_output -> "missing-output"
  | Snapshot_mismatch -> "snapshot-mismatch"
  | Crossref_mismatch -> "crossref-mismatch"
  | Guest_halted_early -> "guest-halted-early"
  | Guest_stalled -> "guest-stalled"
  | Guest_fault -> "guest-fault"

type divergence = {
  kind : divergence_kind;
  at : Landmark.t;
  entry_seq : int option;
  detail : string;
}

type outcome =
  | Verified of { instructions : int; entries_consumed : int }
  | Diverged of divergence

let pp_outcome fmt = function
  | Verified { instructions; entries_consumed } ->
    Format.fprintf fmt "@[<h>verified: %d instructions, %d log entries@]" instructions
      entries_consumed
  | Diverged d ->
    Format.fprintf fmt "@[<h>DIVERGED (%s) at %a%s: %s@]" (kind_name d.kind) Landmark.pp d.at
      (match d.entry_seq with Some s -> Printf.sprintf " entry #%d" s | None -> "")
      d.detail

exception Fault_exn of divergence

(* Entries the replayed execution must actively reproduce, in order. *)
let is_active (e : Entry.t) =
  match e.content with
  | Entry.Exec _ | Entry.Send _ | Entry.Snapshot_ref _ -> true
  | Entry.Recv _ | Entry.Ack _ | Entry.Note _ -> false

type engine = {
  machine : Machine.t;
  peers : (int * string) list;
  strict_landmarks : bool;
  mutable active : Entry.t array; (* growable queue of active entries *)
  mutable len : int;
  mutable pos : int;
  recvs : (int, int array) Hashtbl.t; (* RECV entry seq -> payload words *)
  rx_read : (int, int) Hashtbl.t; (* RECV entry seq -> words consumed *)
  mutable fed : int; (* total entries fed, incl. passive *)
  mutable first_seq : int; (* seq of the first fed entry; -1 before any *)
  mutable fault : divergence option;
  start_icount : int;
  backend : Machine.backend;
}

let peek e = if e.pos < e.len then Some e.active.(e.pos) else None
let advance e = e.pos <- e.pos + 1
let exhausted e = e.pos >= e.len

let push_active e entry =
  if e.len = Array.length e.active then begin
    let bigger = Array.make (max 64 (2 * e.len)) entry in
    Array.blit e.active 0 bigger 0 e.len;
    e.active <- bigger
  end;
  e.active.(e.len) <- entry;
  e.len <- e.len + 1

let feed_entry e (entry : Entry.t) =
  Avm_obs.Metrics.incr "replay.entries_fed";
  e.fed <- e.fed + 1;
  if e.first_seq < 0 then e.first_seq <- entry.Entry.seq;
  (match entry.content with
  | Entry.Recv { payload; _ } ->
    Hashtbl.replace e.recvs entry.seq (Wireformat.words_of_payload payload)
  | _ -> ());
  if is_active entry then push_active e entry

let feed e entries = List.iter (feed_entry e) entries

let crossref_check e ~entry_seq ~msg ~value at =
  match Hashtbl.find_opt e.recvs msg with
  | None ->
    (* References to entries before the replayed segment cannot be
       checked here (the syntactic check validates their ordering); a
       reference inside the segment that is not a RECV is a fault. *)
    if msg >= e.first_seq then
      raise
        (Fault_exn
           {
             kind = Crossref_mismatch;
             at;
             entry_seq = Some entry_seq;
             detail = Printf.sprintf "rx read references entry %d which is not a RECV" msg;
           })
  | Some words ->
    let idx = Option.value ~default:0 (Hashtbl.find_opt e.rx_read msg) in
    Hashtbl.replace e.rx_read msg (idx + 1);
    let expected = if idx < Array.length words then words.(idx) else 0 in
    if expected <> value then
      raise
        (Fault_exn
           {
             kind = Crossref_mismatch;
             at;
             entry_seq = Some entry_seq;
             detail =
               Printf.sprintf "word %d of message %d was injected as %d but RECV logged %d"
                 idx msg value expected;
           })

let engine ~image ?mem_words ?start ?(strict_landmarks = true) ~peers () =
  let machine =
    match start with
    | Some m -> m
    | None -> (
      match mem_words with
      | Some w -> Machine.create ~mem_words:w image
      | None -> Machine.create image)
  in
  let rec e =
    {
      machine;
      peers;
      strict_landmarks;
      active = Array.make 64 { Entry.seq = 0; content = Entry.Note ""; hash = "" };
      len = 0;
      pos = 0;
      recvs = Hashtbl.create 64;
      rx_read = Hashtbl.create 64;
      fed = 0;
      first_seq = -1;
      fault = None;
      start_icount = Machine.icount machine;
      backend =
        {
          Machine.io_in = (fun port -> io_in port);
          io_out = (fun _ _ -> ());
          observe = (fun o -> observe o);
          poll_irq = (fun () -> poll_irq ());
        };
    }
  and here () = Machine.landmark e.machine
  and io_in port =
    match peek e with
    | Some { Entry.content = Entry.Exec (Event.Io_in ev); seq; _ } when ev.port = port ->
      advance e;
      if ev.msg >= 0 then crossref_check e ~entry_seq:seq ~msg:ev.msg ~value:ev.value (here ());
      ev.value
    | Some entry ->
      raise
        (Fault_exn
           {
             kind = Input_mismatch;
             at = here ();
             entry_seq = Some entry.Entry.seq;
             detail =
               Printf.sprintf "guest read port %s but log has %s"
                 (Avm_isa.Isa.port_name port)
                 (Format.asprintf "%a" Entry.pp entry);
           })
    | None ->
      raise
        (Fault_exn
           {
             kind = Input_mismatch;
             at = here ();
             entry_seq = None;
             detail =
               Printf.sprintf "guest read port %s beyond the available log"
                 (Avm_isa.Isa.port_name port);
           })
  and poll_irq () =
    match peek e with
    | Some { Entry.content = Entry.Exec (Event.Irq { landmark; line }); seq; _ }
      when landmark.Landmark.icount = Machine.icount e.machine ->
      advance e;
      let now = here () in
      if e.strict_landmarks && not (Landmark.equal landmark now) then
        raise
          (Fault_exn
             {
               kind = Irq_landmark_mismatch;
               at = now;
               entry_seq = Some seq;
               detail =
                 Printf.sprintf "recorded landmark %s vs replayed %s"
                   (Landmark.to_string landmark) (Landmark.to_string now);
             });
      Some line
    | _ -> None
  and observe = function
    | Machine.Console _ | Machine.Frame -> ()
    | Machine.Packet_sent words ->
      if Array.length words = 0 then ()
      else begin
        (* Counted before the peer-map lookup: [Replay_cache] uses the
           delta across a replay to decide whether its outcome depended
           on the peer map at all (an unmapped emission is invisible in
           the log but still peers-sensitive). *)
        Replay_cache.note_packet_emitted ();
        Avm_obs.Metrics.incr "replay.packets_emitted";
        let dest_id = words.(0) in
        match List.assoc_opt dest_id e.peers with
        | None -> ()
        | Some dest -> (
          let payload =
            Wireformat.payload_of_words (Array.sub words 1 (Array.length words - 1))
          in
          match peek e with
          | Some { Entry.content = Entry.Send s; _ }
            when String.equal s.dest dest && String.equal s.payload payload ->
            advance e
          | Some entry ->
            raise
              (Fault_exn
                 {
                   kind = Output_mismatch;
                   at = here ();
                   entry_seq = Some entry.Entry.seq;
                   detail =
                     Printf.sprintf "guest sent %dB to %s but log has %s"
                       (String.length payload) dest
                       (Format.asprintf "%a" Entry.pp entry);
                 })
          | None ->
            raise
              (Fault_exn
                 {
                   kind = Output_mismatch;
                   at = here ();
                   entry_seq = None;
                   detail = "guest sent a packet beyond the available log";
                 }))
      end
  in
  e

(* Verify any due snapshot digests at the current instruction count. *)
let check_snapshots e =
  let continue = ref true in
  while !continue do
    match peek e with
    | Some { Entry.content = Entry.Snapshot_ref { digest; at_icount; snapshot_seq }; seq; _ }
      when at_icount <= Machine.icount e.machine ->
      if at_icount < Machine.icount e.machine then
        raise
          (Fault_exn
             {
               kind = Snapshot_mismatch;
               at = Machine.landmark e.machine;
               entry_seq = Some seq;
               detail = Printf.sprintf "snapshot %d was due at icount %d" snapshot_seq at_icount;
             });
      let meta = Machine.serialize_meta e.machine in
      let root = Avm_crypto.Merkle.root (Snapshot.merkle_of_machine e.machine) in
      let recomputed = Avm_crypto.Sha256.digest_list [ meta; root; string_of_int at_icount ] in
      if not (String.equal recomputed digest) then
        raise
          (Fault_exn
             {
               kind = Snapshot_mismatch;
               at = Machine.landmark e.machine;
               entry_seq = Some seq;
               detail = Printf.sprintf "replayed state digest differs for snapshot %d" snapshot_seq;
             });
      advance e
    | _ -> continue := false
  done

let engine_machine e = e.machine
let replayed_instructions e = Machine.icount e.machine - e.start_icount
let consumed_entries e = e.pos
let pending_entries e = e.len - e.pos

let crank e ~fuel =
  match e.fault with
  | Some d -> `Fault d
  | None -> (
    let icount0 = Machine.icount e.machine in
    let budget = ref fuel in
    let result = ref None in
    (try
       while !result = None do
         check_snapshots e;
         if exhausted e then result := Some `Blocked
         else if Machine.halted e.machine then
           raise
             (Fault_exn
                {
                  kind = Guest_halted_early;
                  at = Machine.landmark e.machine;
                  entry_seq = Option.map (fun (x : Entry.t) -> x.seq) (peek e);
                  detail = "reference machine halted with log entries remaining";
                })
         else if !budget <= 0 then result := Some `Fuel_exhausted
         else begin
           ignore (Machine.step e.machine e.backend);
           decr budget
         end
       done
     with
    | Fault_exn d ->
      Avm_obs.Metrics.incr "replay.divergences";
      e.fault <- Some d;
      result := Some (`Fault d)
    | Machine.Runtime_fault { pc; reason } ->
      let d =
        {
          kind = Guest_fault;
          at = Machine.landmark e.machine;
          entry_seq = None;
          detail = Printf.sprintf "reference guest faulted at pc=0x%x: %s" pc reason;
        }
      in
      Avm_obs.Metrics.incr "replay.divergences";
      e.fault <- Some d;
      result := Some (`Fault d));
    Avm_obs.Metrics.incr ~by:(Machine.icount e.machine - icount0) "replay.instructions";
    match !result with Some r -> r | None -> assert false)

let default_fuel = 200_000_000

(* The state digest replay itself seals into Snapshot_ref entries and
   checks in [check_snapshots] — also the pre-state half of a
   [Replay_cache] fingerprint. *)
let state_digest machine =
  let meta = Machine.serialize_meta machine in
  let root = Avm_crypto.Merkle.root (Snapshot.merkle_of_machine machine) in
  Avm_crypto.Sha256.digest_list [ meta; root; string_of_int (Machine.icount machine) ]

(* The memoization protocol shared by every cached replay path (here,
   Spot_check, and through them Audit/Witness): on a hit the exact
   Verified payload of the original replay is reconstructed, so the
   outcome — and every verdict derived from it — is byte-identical
   cache-on vs cache-off; a spot-designated hit replays anyway and
   reports disagreement as a poisoned entry; only verified outcomes
   are remembered. *)
let with_cache ?cache ~fuel ~print ~replay () =
  match cache with
  | Some c when Replay_cache.is_enabled () -> (
    let p = print () in
    match Replay_cache.find c ~fuel p with
    | `Hit { Replay_cache.instructions; entries_consumed } ->
      Verified { instructions; entries_consumed }
    | `Spot cached ->
      let o = replay () in
      let matched =
        match o with
        | Verified { instructions; entries_consumed } ->
          instructions = cached.Replay_cache.instructions
          && entries_consumed = cached.Replay_cache.entries_consumed
        | Diverged _ -> false
      in
      Replay_cache.confirm_spot c p ~matched;
      o
    | `Miss ->
      let o, emitted = Replay_cache.measure_replay replay in
      (match o with
      | Verified { instructions; entries_consumed } ->
        Replay_cache.remember c p ~peers_sensitive:emitted ~instructions
          ~entries_consumed ()
      | Diverged _ -> ());
      o)
  | _ -> replay ()

(* Drive an engine over a lazy stream of log chunks. Compressed
   segments inflate only when the replay actually reaches them: each
   chunk is fed, cranked until the engine blocks, and only then is the
   next chunk forced. *)
let replay_chunks_raw ~image ?mem_words ?start ?(fuel = default_fuel) ?strict_landmarks
    ~peers ~chunks () =
  let e = engine ~image ?mem_words ?start ?strict_landmarks ~peers () in
  let stalled () =
    Diverged
      {
        kind = Guest_stalled;
        at = Machine.landmark e.machine;
        entry_seq = Option.map (fun (x : Entry.t) -> x.seq) (peek e);
        detail = Printf.sprintf "fuel (%d instructions) exhausted" fuel;
      }
  in
  (* Crank until blocked on the current feed, or a terminal result. *)
  let rec drain remaining =
    match crank e ~fuel:(min remaining 10_000_000) with
    | `Blocked -> `More remaining
    | `Fault d -> `Done (Diverged d)
    | `Fuel_exhausted ->
      let left = fuel - replayed_instructions e in
      if left <= 0 then `Done (stalled ()) else drain left
  in
  (* Each drain after a feed replays exactly that chunk ([`Blocked]
     means every fed entry was consumed), so spanning the drain gives
     one wall-clock [replay.chunk] span per chunk. *)
  let chunk_no = ref (-1) in
  let spanned_drain remaining =
    if !chunk_no < 0 then drain remaining
    else
      Avm_obs.Trace.with_span ~name:"replay.chunk"
        ~attrs:[ ("chunk", string_of_int !chunk_no) ]
        (fun () -> drain remaining)
  in
  let rec go chunks remaining =
    match spanned_drain remaining with
    | `Done outcome -> outcome
    | `More remaining -> (
      match chunks () with
      | Seq.Nil ->
        (* [`Blocked] means every fed entry was consumed and verified. *)
        Verified { instructions = replayed_instructions e; entries_consumed = e.fed }
      | Seq.Cons (chunk, rest) ->
        incr chunk_no;
        Avm_obs.Metrics.incr "replay.chunks_replayed";
        feed e chunk;
        go rest remaining)
  in
  go chunks fuel

(* Caching forces the stream up front: the fingerprint must cover every
   entry before any outcome can be reused, and the chunks Seq is
   single-shot, so a hit that had already forced it lazily would leave
   nothing for the miss path. [Spot_check] keeps segment-at-a-time
   laziness on its own cached paths by fingerprinting straight off the
   log index instead. *)
let replay_chunks ~image ?mem_words ?start ?(fuel = default_fuel) ?strict_landmarks ~peers
    ?cache ~chunks () =
  match cache with
  | Some _ when Replay_cache.is_enabled () ->
    let entries = List.concat (List.of_seq chunks) in
    let machine =
      match start with
      | Some m -> m
      | None -> (
        match mem_words with
        | Some w -> Machine.create ~mem_words:w image
        | None -> Machine.create image)
    in
    with_cache ?cache ~fuel
      ~print:(fun () ->
        Replay_cache.fingerprint ~image ?mem_words ?strict_landmarks ~peers
          ~pre_state:(state_digest machine) entries)
      ~replay:(fun () ->
        replay_chunks_raw ~image ?mem_words ~start:machine ~fuel ?strict_landmarks ~peers
          ~chunks:(Seq.return entries) ())
      ()
  | _ -> replay_chunks_raw ~image ?mem_words ?start ~fuel ?strict_landmarks ~peers ~chunks ()

let replay ~image ?mem_words ?start ?fuel ?strict_landmarks ~peers ?cache ~entries () =
  replay_chunks ~image ?mem_words ?start ?fuel ?strict_landmarks ~peers ?cache
    ~chunks:(Seq.return entries) ()
