(** The five experiment configurations of the paper's evaluation
    (§6.2) and the host-cost model behind them.

    Real hardware is not available here, so each configuration charges
    calibrated virtual costs: a per-instruction slowdown for
    virtualization and recording, and per-operation costs for
    signatures and logging. The constants are calibrated so the
    bare-hardware numbers land near the paper's testbed (2.8 GHz
    Core i7: ~192 us switch RTT, ~158 fps Counterstrike) — the claims
    being reproduced are the {e relative} shapes. *)

type level =
  | Bare_hw  (** no virtualization, no logging *)
  | Vmware_norec  (** plain VMM *)
  | Vmware_rec  (** VMM + deterministic-replay recording *)
  | Avmm_nosig  (** full AVMM minus signatures *)
  | Avmm_rsa768  (** the complete system *)

val level_name : level -> string
val all_levels : level list

type t = {
  level : level;
  mips : float;  (** guest instructions per microsecond on bare hardware *)
  snapshot_every_us : int option;  (** snapshot period, if snapshots are on *)
  clock_opt : bool;  (** §6.5 consecutive-clock-read optimization *)
  rsa_bits : int;  (** signature key size when signing *)
  artificial_slowdown : float;
      (** extra execution slowdown factor (>= 1.0); §6.11 uses 1.05 to
          let online auditors keep up *)
  retrans_base_us : float;
      (** backoff before the first retransmission of an unacked send *)
  retrans_cap_us : float;  (** backoff ceiling *)
  retrans_max_attempts : int;
      (** give up retransmitting after this many transmissions;
          0 = never give up *)
  rx_dedup_window : int;
      (** how many accepted messages the receive-side dedup table
          remembers (FIFO); a retransmission of an evicted message is
          re-accepted and re-logged rather than answered from cache,
          which is safe — dedup is a bandwidth optimization, not a
          correctness requirement — and keeps the table's memory bound
          under sustained traffic *)
}

val make : ?snapshot_every_us:int option -> ?clock_opt:bool -> ?rsa_bits:int ->
  ?artificial_slowdown:float -> ?mips:float -> ?retrans_base_us:float ->
  ?retrans_cap_us:float -> ?retrans_max_attempts:int -> ?rx_dedup_window:int ->
  level -> t
(** Defaults: 0.26 instructions/us (the down-scaled guest speed that
    calibrates the bare-hardware frame rate to the paper's 158 fps —
    see DESIGN.md §2), no snapshots, clock-opt on for AVMM levels,
    768-bit keys, no artificial slowdown, retransmission backoff
    starting at 250 ms and doubling up to a 4 s cap, never giving up,
    a 4096-message receive dedup window.
    @raise Invalid_argument if [rx_dedup_window < 1]. *)

(** {1 Derived cost model} *)

val virtualized : t -> bool
val recording : t -> bool
(** Does this level record nondeterministic events? *)

val accountable : t -> bool
(** Does this level keep the tamper-evident message log? *)

val signing : t -> bool

val us_per_instr : t -> float
(** Guest-visible cost of one instruction, including virtualization,
    recording and artificial-slowdown factors. *)

val sign_cost_us : t -> float
(** CPU cost of one signature generation (0 when not signing). *)

val verify_cost_us : t -> float
(** CPU cost of one signature verification. *)

val packet_process_us : t -> float
(** Per-packet host processing (VMM exit, daemon pipe) excluding
    signatures; grows along the configuration ladder to mirror
    Figure 5's 192 us -> 525 us -> 621 us -> >2 ms progression. *)

val per_event_log_us : t -> float
(** Host cost of appending one execution event to the log. *)

val retrans_delay_us : t -> attempts:int -> float
(** Silence after the [attempts]-th transmission of an envelope before
    it becomes due for retransmission: [retrans_base_us * 2^(attempts-1)],
    capped at [retrans_cap_us]. *)
