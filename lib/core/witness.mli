(** Fleet-scale witness auditing (PeerReview-style, after the paper's
    §4.6 "who audits whom" discussion and the ROADMAP's fleet north
    star).

    Three pieces, deliberately separable:

    - {b assignment}: each node is audited by [k] seeded-randomly
      chosen peers. The draw is deterministic in the seed, so every
      participant (and every offline verifier) re-derives the same
      witness sets — no node picks its own auditors.
    - {b epoch scheduling}: time is cut into epochs; at each epoch
      boundary every node seals its log segment with a snapshot, and
      one audit job per (target, witness) pair is enqueued. Within a
      target's witness set one {e designated} witness (rotating per
      epoch) replays the epoch semantically; the others run the cheap
      syntactic pass, so per-epoch audit cost stays O(k) per node with
      exactly one replay.
    - {b the sharded auditor pool}: jobs are split into contiguous
      shards spread over a {!Avm_util.Domain_pool}, with per-shard
      [witness.shard<i>.*] metrics. Shard boundaries depend only on
      the job list, never on the worker count, so the verdict vector
      is identical at jobs 1 and jobs 4.

    {b Epoch convention.} Callers take a {e baseline} snapshot of
    every node before epoch 1 (snapshot seqs start at 0, so the
    baseline is seq 0), then one snapshot at each epoch end: epoch [e]
    is the log range between snapshot seq [e - 1] and [e], and
    {!audit_job} addresses it that way. *)

(** {1 Assignment} *)

type assignment = { nodes : int; k : int; sets : int array array }

val assign : seed:int64 -> nodes:int -> k:int -> assignment
(** [k] is clamped to [nodes - 1]; sets never contain the node itself.
    @raise Invalid_argument if [nodes < 2] or [k < 1]. *)

val witnesses : assignment -> int -> int array

(** {1 Epoch scheduling} *)

type mode =
  | Syntactic  (** hash chain + authenticator match over the epoch range *)
  | Semantic  (** spot-check replay of the epoch from authenticated state *)

type job = { epoch : int; target : int; witness : int; mode : mode }

val epoch_jobs : assignment -> epoch:int -> job list
(** All (target, witness) jobs for one epoch, ascending by target;
    the designated semantic witness rotates with the epoch. *)

(** {1 Auditing} *)

type target_view = {
  log : Avm_tamperlog.Log.t;
  snapshots : Avm_machine.Snapshot.t list;
  image : int array;
  mem_words : int;
  peers : (int * string) list;  (** the target's own dest-id map *)
  node_cert : Avm_crypto.Identity.certificate;
  peer_certs : (string * Avm_crypto.Identity.certificate) list;
}

type verdict = { job : job; ok : bool; detail : string }

val audit_job :
  ?cache:Replay_cache.t ->
  view:target_view ->
  auths:Avm_tamperlog.Auth.t list ->
  job ->
  verdict
(** Run one job against the target's log. [auths] is what this witness
    has collected for the target (envelope and ack authenticators);
    unmatched collected authenticators are not an error — they may
    belong to other epochs.

    [cache] is the fleet-wide replay memo table ({!Replay_cache}): the
    driver creates {e one} cache and passes it to every (target,
    witness) job it hands {!run_sharded}, so an epoch chunk identical
    across the idle majority replays once and hits everywhere else.
    Verdicts are unchanged; semantic jobs additionally bump
    [witness.semantic_entries] / [witness.semantic_us]. *)

(** {1 The sharded auditor pool} *)

val run_sharded :
  ?par:Audit_ctx.parallelism ->
  ?shards:int ->
  f:(job -> verdict) ->
  job list ->
  verdict list
(** Execute jobs across [shards] (default 8) contiguous shards on the
    pool [par] resolves to, preserving job order in the returned
    vector. Each shard bumps [witness.shard<i>.jobs] /
    [witness.shard<i>.failures] and times itself under
    [witness.shard<i>.seconds]; totals land in [witness.jobs] and
    [witness.failures]. *)

val coverage : verdict list -> nodes:int -> epoch:int -> float
(** Fraction of nodes with at least one verdict in [epoch]. *)

(** {1 Cross-witness authenticator exchange}

    The PeerReview mechanism the paper inherits for fork detection
    (§4.3): witnesses of the same target gossip the authenticators
    they have collected for it each epoch. Any two {e verified}
    authenticators from the same node with equal [seq] but different
    [hash] are a transferable {!Evidence.Equivocation} proof — two
    signatures and a compare, no log download, no replay. This is the
    detection path for a node that maintains forked logs and shows
    each witness a consistent-looking one: every per-witness audit
    passes, but the witnesses' stores cannot both be right. *)

type equiv_store
(** One witness's persistent store of verified authenticators, keyed
    by (node, seq), plus any equivocation proofs it has derived. Keep
    it across epochs: a fork only surfaces when {e both} heads reach
    the same store, possibly epochs apart. *)

type offer_result =
  | Fresh  (** first verified commitment seen for this (node, seq) *)
  | Known  (** duplicate of the stored one — honest retransmission *)
  | Rejected of string
      (** unverifiable (wrong cert, bad signature, inconsistent hash):
          dropped without touching the store, counted in
          [witness.equiv.rejected] — a corrupt copy never accuses *)
  | Conflict of Evidence.t
      (** verified, same (node, seq), different hash: a transferable
          equivocation proof, also banked in the store *)

val equiv_store : unit -> equiv_store

val offer :
  equiv_store -> cert:Avm_crypto.Identity.certificate -> Avm_tamperlog.Auth.t -> offer_result
(** Offer one authenticator (own collection or gossip) against the
    issuer's certificate. Only the first verified authenticator per
    (node, seq) is retained, so repeated offers are idempotent
    ([Known]) and a later conflicting one always pairs with the
    original. *)

val equiv_proofs : equiv_store -> Evidence.t list
(** All proofs this store has derived, at most one per accused, sorted
    by accused name. *)

val scan_log : equiv_store -> node:string -> log:Avm_tamperlog.Log.t -> int
(** Count stored commitments for [node] that name an in-range seq of
    the served [log] but fail {!Avm_tamperlog.Auth.matches_entry}
    against it (bumped into [witness.equiv.log_mismatches]). Such a
    mismatch corroborates a fork but is not by itself transferable —
    the served prefix is unsigned; the proof pair comes from
    {!offer}. *)

type exchange_stats = {
  ex_messages : int;  (** gossip messages (ordered witness pairs) *)
  ex_auths : int;  (** authenticators carried by those messages *)
  ex_bytes : int;  (** wire bytes of the carried authenticators *)
  ex_proofs : Evidence.t list;
      (** newly derived proofs fleet-wide, one per accused, sorted *)
}

val exchange :
  assignment ->
  stores:equiv_store array ->
  collected:(target:int -> witness:int -> Avm_tamperlog.Auth.t list) ->
  cert_of:(int -> Avm_crypto.Identity.certificate) ->
  exchange_stats
(** Run one epoch's exchange over the witness graph: for every target,
    each of its witnesses banks its own collected authenticators in
    its [stores] entry, then sends the list to each of the other
    [k - 1] witnesses of the same target. Sequential and
    deterministic (targets in index order, slots in set order), so
    the proof list — like the audit verdict vector — is invariant
    under the auditor pool's job count. Totals land in
    [witness.equiv.messages] / [.auths_exchanged] / [.bytes].
    @raise Invalid_argument unless [stores] has one entry per node. *)
