(** Transferable evidence of a fault (paper §3.1, §4.5).

    When an audit fails, the auditor packages everything a third party
    needs to repeat the checks: the log segment, the hash preceding
    it, and the collected authenticators. Because both checks are
    deterministic, the third party reaches the same verdict without
    trusting either the auditor or the accused. *)

type accusation =
  | Tampered_log of { reason : string }
      (** syntactic check failed: broken chain, authenticator
          mismatch, forged RECV, missing ack *)
  | Replay_divergence of Replay.divergence
      (** semantic check failed *)
  | Unanswered_challenge of { auth : Avm_tamperlog.Auth.t }
      (** the machine would not produce the log segment its own
          authenticator proves must exist (§4.5, §4.6) *)
  | Equivocation of { a : Avm_tamperlog.Auth.t; b : Avm_tamperlog.Auth.t }
      (** two authenticators signed by the accused committing to
          different hashes at the same sequence number — proof of a
          forked log (PeerReview's fork-evidence, surfaced here by the
          cross-witness authenticator exchange). Checking it needs no
          log access at all: verify both signatures under the
          accused's certificate and compare — see
          {!Audit.check_evidence}. *)

type t = {
  accused : string;
  prev_hash : string;
  segment : Avm_tamperlog.Entry.t list;
  auths : Avm_tamperlog.Auth.t list;
  accusation : accusation;
}

val describe : t -> string
(** A one-line human-readable summary of the accusation.

    The third party's verification — re-running the audit on the
    evidence — lives in {!Audit.check_evidence}, so that {!Audit} can
    in turn attach a ready-made [t] to every failed audit outcome;
    this module is pure data plus its wire format. *)

val encode : t -> string
val decode : string -> t
(** @raise Avm_util.Wire.Malformed on garbage. *)
