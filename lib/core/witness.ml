open Avm_tamperlog
module Identity = Avm_crypto.Identity

(* --- Witness-set assignment -------------------------------------------- *)

type assignment = { nodes : int; k : int; sets : int array array }

let assign ~seed ~nodes ~k =
  if nodes < 2 then invalid_arg "Witness.assign: need at least two nodes";
  let k = min k (nodes - 1) in
  if k < 1 then invalid_arg "Witness.assign: need at least one witness";
  let rng = Avm_util.Rng.create seed in
  let sets =
    Array.init nodes (fun i ->
        (* k distinct peers, self excluded: draw from [0, nodes-2] and
           shift past i, rejecting repeats. Seeded, so every party
           re-derives the same assignment — nobody gets to choose (or
           bribe) their own auditors. *)
        let chosen = Hashtbl.create k in
        let out = Array.make k (-1) in
        let filled = ref 0 in
        while !filled < k do
          let d = Avm_util.Rng.int_in rng 0 (nodes - 2) in
          let peer = if d >= i then d + 1 else d in
          if not (Hashtbl.mem chosen peer) then begin
            Hashtbl.add chosen peer ();
            out.(!filled) <- peer;
            incr filled
          end
        done;
        out)
  in
  { nodes; k; sets }

let witnesses asg i = Array.copy asg.sets.(i)

(* --- Epoch scheduling --------------------------------------------------- *)

type mode = Syntactic | Semantic

type job = { epoch : int; target : int; witness : int; mode : mode }

let epoch_jobs asg ~epoch =
  if epoch < 1 then invalid_arg "Witness.epoch_jobs: epochs start at 1";
  let jobs = ref [] in
  for target = asg.nodes - 1 downto 0 do
    let set = asg.sets.(target) in
    let designated = (epoch - 1 + target) mod Array.length set in
    Array.iteri
      (fun slot witness ->
        let mode = if slot = designated then Semantic else Syntactic in
        jobs := { epoch; target; witness; mode } :: !jobs)
      set
  done;
  !jobs

(* --- Auditing one epoch of one target ----------------------------------- *)

type target_view = {
  log : Log.t;
  snapshots : Avm_machine.Snapshot.t list;
  image : int array;
  mem_words : int;
  peers : (int * string) list;
  node_cert : Identity.certificate;
  peer_certs : (string * Identity.certificate) list;
}

type verdict = { job : job; ok : bool; detail : string }

let boundary_for view ~snapshot_seq =
  List.find_opt
    (fun (b : Spot_check.boundary) -> b.Spot_check.snapshot_seq = snapshot_seq)
    (Spot_check.boundaries view.log)

let audit_job ?cache ~view ~auths (job : job) =
  match job.mode with
  | Syntactic -> (
    (* The cheap per-epoch pass: hash chain over the epoch's sealed
       range, the witness's own collected authenticators matched
       against it, RECV signatures verified. *)
    match (boundary_for view ~snapshot_seq:(job.epoch - 1), boundary_for view ~snapshot_seq:job.epoch) with
    | Some b0, Some b1 ->
      let ctx =
        Audit.ctx ~node_cert:view.node_cert ~peer_certs:view.peer_certs ~auths ()
      in
      let from = b0.Spot_check.entry_seq + 1 and upto = b1.Spot_check.entry_seq in
      let r = Audit.syntactic_of_log ~ctx ~log:view.log ~from ~upto () in
      if r.Audit.failures = [] then { job; ok = true; detail = "" }
      else { job; ok = false; detail = List.hd r.Audit.failures }
    | _ -> { job; ok = false; detail = "epoch boundary snapshot missing from log" })
  | Semantic -> (
    (* The designated witness replays the epoch from the authenticated
       state at its opening snapshot (paper §3.5 spot check, k = 1):
       tampered state surfaces as a digest mismatch at the closing
       snapshot even if the node was otherwise idle. With [cache], the
       epoch chunk is fingerprinted first and an identical chunk
       already verified anywhere in the fleet resolves as a
       three-digest compare (DESIGN.md §14); the verdict is the same
       either way. [witness.semantic_entries] / [witness.semantic_us]
       accumulate the semantic throughput the dedup bench reports. *)
    let t0 = Avm_obs.Clock.now_s () in
    match
      Spot_check.check_chunk ?cache ~image:view.image ~mem_words:view.mem_words
        ~snapshots:view.snapshots ~log:view.log ~peers:view.peers
        ~start_snapshot:(job.epoch - 1) ~k:1 ()
    with
    | exception Invalid_argument msg -> { job; ok = false; detail = msg }
    | report ->
      Avm_obs.Metrics.incr
        ~by:(int_of_float ((Avm_obs.Clock.now_s () -. t0) *. 1e6))
        "witness.semantic_us";
      (match report.Spot_check.outcome with
      | Replay.Verified { entries_consumed; _ } ->
        Avm_obs.Metrics.incr ~by:entries_consumed "witness.semantic_entries";
        { job; ok = true; detail = "" }
      | Replay.Diverged d -> { job; ok = false; detail = Replay.kind_name d.Replay.kind }))

(* --- The sharded auditor pool ------------------------------------------- *)

let default_shards = 8

let run_sharded ?par ?(shards = default_shards) ~f jobs =
  let shards = max 1 shards in
  let jobs_arr = Array.of_list jobs in
  let n = Array.length jobs_arr in
  let shards = min shards (max 1 n) in
  (* Contiguous shard slices, independent of the worker count: the
     concatenated verdict vector is identical at jobs 1 and jobs 4. *)
  let slice s =
    let lo = s * n / shards and hi = ((s + 1) * n / shards) - 1 in
    (s, lo, hi)
  in
  let run_shard (s, lo, hi) =
    Avm_obs.Metrics.time (Printf.sprintf "witness.shard%d.seconds" s) @@ fun () ->
    let out = ref [] in
    for i = hi downto lo do
      let v = f jobs_arr.(i) in
      Avm_obs.Metrics.incr (Printf.sprintf "witness.shard%d.jobs" s);
      if not v.ok then Avm_obs.Metrics.incr (Printf.sprintf "witness.shard%d.failures" s);
      out := v :: !out
    done;
    !out
  in
  let shard_specs = List.init shards slice in
  let per_shard =
    Audit_ctx.with_parallelism ?par (fun p ->
        match p with
        | Some pool -> Avm_util.Domain_pool.map_list pool run_shard shard_specs
        | None -> List.map run_shard shard_specs)
  in
  let verdicts = List.concat per_shard in
  Avm_obs.Metrics.incr ~by:(List.length verdicts) "witness.jobs";
  Avm_obs.Metrics.incr
    ~by:(List.length (List.filter (fun v -> not v.ok) verdicts))
    "witness.failures";
  verdicts

(* --- Cross-witness authenticator exchange (equivocation detection) ------ *)

type equiv_store = {
  eq_auths : (string * int, Auth.t) Hashtbl.t; (* (node, seq) -> first verified auth *)
  eq_proofs : (string, Evidence.t) Hashtbl.t; (* accused -> first proof *)
}

type offer_result =
  | Fresh
  | Known
  | Rejected of string
  | Conflict of Evidence.t

let equiv_store () = { eq_auths = Hashtbl.create 64; eq_proofs = Hashtbl.create 4 }

let equiv_proofs store =
  Hashtbl.fold (fun _ ev acc -> ev :: acc) store.eq_proofs []
  |> List.sort (fun (a : Evidence.t) b -> compare a.Evidence.accused b.Evidence.accused)

let offer store ~cert (a : Auth.t) =
  (* Conservative by construction: an authenticator that cannot be
     verified — wrong certificate, corrupt signature, inconsistent
     hash — is dropped without touching the store. A single corrupt
     copy must never accuse anyone (the QCheck no-false-proof property
     pins this). *)
  if not (String.equal (Identity.cert_name cert) a.Auth.node) then begin
    Avm_obs.Metrics.incr "witness.equiv.rejected";
    Rejected "certificate does not name the authenticator's issuer"
  end
  else begin
    let key = (a.Auth.node, a.Auth.seq) in
    let stored = Hashtbl.find_opt store.eq_auths key in
    match stored with
    (* Re-offer of the banked copy (gossip lists are cumulative across
       epochs): the stored one already verified, skip the RSA verify. *)
    | Some b when String.equal b.Auth.hash a.Auth.hash -> Known
    | _ ->
    if not (Auth.verify cert a) then begin
      Avm_obs.Metrics.incr "witness.equiv.rejected";
      Rejected "bad signature or inconsistent hash"
    end
    else begin
    match stored with
    | None ->
      Hashtbl.replace store.eq_auths key a;
      Fresh
    | Some b ->
      (* Both verified, same node and seq, different hash: transferable
         proof. [b] (first seen) before [a] keeps proofs deterministic
         in offer order. *)
      let ev =
        {
          Evidence.accused = a.Auth.node;
          prev_hash = "";
          segment = [];
          auths = [];
          accusation = Evidence.Equivocation { a = b; b = a };
        }
      in
      if not (Hashtbl.mem store.eq_proofs a.Auth.node) then begin
        Hashtbl.replace store.eq_proofs a.Auth.node ev;
        Avm_obs.Metrics.incr "witness.equiv.proofs"
      end;
      Conflict ev
    end
  end

let scan_log store ~node ~(log : Log.t) =
  (* Corroboration for the "authenticator vs downloaded prefix" route:
     a stored commitment that names an in-range seq but does not match
     the served log means the node showed this witness set one history
     and signed another. The syntactic audit already fails the target
     for it when the auth is in the auditor's collected set; here it is
     counted from the exchange store's viewpoint. A lone mismatch is
     suspicion, not transferable proof — the served prefix is unsigned;
     the proof (when one exists) comes from the matching authenticator
     another witness collected, via {!offer}. *)
  let n = Log.length log in
  let mismatches = ref 0 in
  Hashtbl.iter
    (fun (owner, seq) (a : Auth.t) ->
      if String.equal owner node && seq >= 1 && seq <= n then
        if not (Auth.matches_entry a (Log.entry log seq)) then incr mismatches)
    store.eq_auths;
  if !mismatches > 0 then Avm_obs.Metrics.incr ~by:!mismatches "witness.equiv.log_mismatches";
  !mismatches

type exchange_stats = {
  ex_messages : int;
  ex_auths : int;
  ex_bytes : int;
  ex_proofs : Evidence.t list;
}

let exchange asg ~stores ~collected ~cert_of =
  if Array.length stores <> asg.nodes then
    invalid_arg "Witness.exchange: need one store per node";
  let messages = ref 0 and auths = ref 0 and bytes = ref 0 in
  let proofs = Hashtbl.create 4 in
  let take (ev : Evidence.t) =
    if not (Hashtbl.mem proofs ev.Evidence.accused) then
      Hashtbl.replace proofs ev.Evidence.accused ev
  in
  (* Deterministic sweep: targets in index order, witness slots in set
     order — verdicts and proofs never depend on auditor job count. *)
  for target = 0 to asg.nodes - 1 do
    let set = asg.sets.(target) in
    let cert = cert_of target in
    let lists = Array.map (fun w -> collected ~target ~witness:w) set in
    (* Each witness first banks what it collected itself... *)
    Array.iteri
      (fun slot list ->
        List.iter
          (fun a ->
            match offer stores.(set.(slot)) ~cert a with
            | Conflict ev -> take ev
            | Fresh | Known | Rejected _ -> ())
          list)
      lists;
    (* ...then gossips it to every other witness of the same target.
       One message per ordered (src, dst) witness pair carrying the
       src's collected list; the overhead counters are what the bench
       reports against the paper's "two signatures and a compare"
       claim. *)
    Array.iteri
      (fun src_slot list ->
        let payload = List.fold_left (fun acc a -> acc + Auth.wire_size a) 0 list in
        Array.iteri
          (fun dst_slot dst ->
            if dst_slot <> src_slot then begin
              incr messages;
              auths := !auths + List.length list;
              bytes := !bytes + payload;
              List.iter
                (fun a ->
                  match offer stores.(dst) ~cert a with
                  | Conflict ev -> take ev
                  | Fresh | Known | Rejected _ -> ())
                list
            end)
          set)
      lists
  done;
  Avm_obs.Metrics.incr ~by:!messages "witness.equiv.messages";
  Avm_obs.Metrics.incr ~by:!auths "witness.equiv.auths_exchanged";
  Avm_obs.Metrics.incr ~by:!bytes "witness.equiv.bytes";
  {
    ex_messages = !messages;
    ex_auths = !auths;
    ex_bytes = !bytes;
    ex_proofs =
      Hashtbl.fold (fun _ ev acc -> ev :: acc) proofs []
      |> List.sort (fun (a : Evidence.t) b -> compare a.Evidence.accused b.Evidence.accused);
  }

let coverage verdicts ~nodes ~epoch =
  let seen = Hashtbl.create (max 16 nodes) in
  List.iter
    (fun v -> if v.job.epoch = epoch then Hashtbl.replace seen v.job.target ())
    verdicts;
  float_of_int (Hashtbl.length seen) /. float_of_int nodes
