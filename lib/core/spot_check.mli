(** Spot checking: auditing k consecutive inter-snapshot segments
    instead of the whole log (paper §3.5, §6.12) — and, built on the
    same partition, the snapshot-parallel semantic audit.

    The log is divided into {e segments} by its Snapshot_ref entries;
    [k] consecutive segments form a {e k-chunk}. To check a chunk the
    auditor downloads the machine state at the chunk's first snapshot
    (authenticated against the logged digest), the compressed log
    segment, and replays it. Cost is therefore a fixed part (state
    transfer, decompression) plus a part linear in [k] — Figure 9.

    Because chunks between snapshots are independently verifiable,
    they are also independently {e replayable}: {!parallel_replay}
    cuts the whole log at its snapshot boundaries and replays every
    piece concurrently on a {!Avm_util.Domain_pool}. *)

type boundary = { entry_seq : int; snapshot_seq : int; at_icount : int }

val boundaries : Avm_tamperlog.Log.t -> boundary list
(** The Snapshot_ref entries of a log, in order. *)

type plan
(** A prepared audit plan over one log + snapshot set: the boundary
    index as an array/hashtable (O(1) lookup instead of a list scan
    per chunk) and the snapshot chain sorted and filtered {e once}, so
    each chunk slices a prefix instead of re-filtering the full
    snapshot list. Build it once and pass it to every chunk check of
    the same session. Read-only after construction — safe to share
    across worker domains. *)

val plan : log:Avm_tamperlog.Log.t -> snapshots:Avm_machine.Snapshot.t list -> plan
val plan_boundaries : plan -> boundary list

type chunk_report = {
  start_snapshot : int;
  k : int;
  state_bytes : int;  (** authenticated state downloaded at chunk start *)
  log_bytes_compressed : int;  (** compressed log segment shipped *)
  replay_instructions : int;
  outcome : Replay.outcome;
}

val check_chunk :
  ?plan:plan ->
  ?cache:Replay_cache.t ->
  image:int array ->
  mem_words:int ->
  snapshots:Avm_machine.Snapshot.t list ->
  log:Avm_tamperlog.Log.t ->
  peers:(int * string) list ->
  start_snapshot:int ->
  k:int ->
  unit ->
  chunk_report
(** [check_chunk ~start_snapshot ~k ...] audits the k-chunk beginning
    at snapshot [start_snapshot]. The snapshot chain is verified
    against the log's digest before replay; a forged snapshot is
    reported as a divergence. Pass [?plan] (built once) when checking
    many chunks of the same session — otherwise each call rebuilds the
    boundary index and re-sorts the snapshot chain.

    With [cache], the chunk is fingerprinted against the {e logged}
    boundary digest (no state materialized) and the {!Replay_cache}
    memo protocol applies: a hit skips the state download and the
    replay outright — the fleet dedup fast path — which is sound
    because entries are only remembered after a miss-path
    [downloaded_state] authenticated that same claimed digest.
    @raise Invalid_argument if the chunk runs past the last snapshot. *)

val check_chunks :
  ?par:Audit_ctx.parallelism ->
  ?cache:Replay_cache.t ->
  image:int array ->
  mem_words:int ->
  snapshots:Avm_machine.Snapshot.t list ->
  log:Avm_tamperlog.Log.t ->
  peers:(int * string) list ->
  (int * int) list ->
  chunk_report list
(** [check_chunks ... [(start, k); ...]] runs {!check_chunk} for every
    [(start_snapshot, k)] pair against one shared {!plan} — in
    parallel when [par] resolves to more than one lane
    ({!Audit_ctx.parallelism}). Reports come back in input order. *)

val parallel_replay :
  ?par:Audit_ctx.parallelism ->
  ?cache:Replay_cache.t ->
  image:int array ->
  ?mem_words:int ->
  ?fuel:int ->
  snapshots:Avm_machine.Snapshot.t list ->
  log:Avm_tamperlog.Log.t ->
  peers:(int * string) list ->
  ?upto:int ->
  unit ->
  Replay.outcome
(** The parallel semantic audit: cut [1..upto] (default: the whole
    log) at every snapshot boundary whose state [snapshots] can
    materialize, replay all pieces concurrently (each from its
    authenticated downloaded state, the first from the boot image),
    and merge outcomes in sequence order.

    With a complete, honest snapshot set this returns exactly what the
    sequential {!Replay.replay_chunks} over the whole log returns: an
    earlier piece only verifies if its replayed state matches the
    logged digest at its end boundary, so the next piece's
    materialized start state is the state the sequential replay would
    have carried there — the first divergence (and the all-verified
    instruction/entry totals, which telescope across boundaries) is
    identical. Differences are possible only where the designs
    genuinely differ: a forged {e downloaded} snapshot is reported
    here (kind [Snapshot_mismatch]) but invisible to a sequential
    replay that never downloads state, and [fuel] bounds each piece
    rather than the whole run.

    When [par] resolves to a single lane the whole range is replayed
    by the plain streaming pass (no pieces, no downloaded state). *)
