open Avm_machine
open Avm_tamperlog
module Identity = Avm_crypto.Identity

type pending_send = {
  envelope : Wireformat.envelope;
  sent_at_us : float; (* first transmission; never changes *)
  send_seq : int;
  mutable acked : bool;
  mutable last_sent_us : float; (* most recent (re)transmission *)
  mutable attempts : int; (* transmissions so far, initial send included *)
  mutable gave_up : bool;
}

type slice_stats = {
  instructions : int;
  events_logged : int;
  sends : int;
  daemon_us : float;
  end_us : float;
}

type t = {
  identity : Identity.t;
  config : Config.t;
  machine : Machine.t;
  log : Log.t;
  peers : (int * string) list;
  on_send : Wireformat.envelope -> unit;
  host_rng : Avm_util.Rng.t;
  input_queue : int Queue.t;
  rx_queue : (int array * int) Queue.t; (* packet words, RECV entry seq (-1 if unlogged) *)
  mutable rx_offset : int; (* read position within the head packet *)
  mutable nic_irq_pending : bool;
  mutable timer_interval_us : float; (* 0 = off *)
  mutable timer_next_us : float;
  mutable sleeping : bool;
  mutable sleep_until : float; (* infinity = until woken *)
  mutable extra_us : float; (* injected stalls: clock-opt, daemon sharing *)
  clock_opt : Clock_opt.t;
  mutable next_nonce : int;
  sends : (int, pending_send) Hashtbl.t; (* nonce -> pending *)
  seen : (string * int, Wireformat.ack) Hashtbl.t; (* dedup for accepted rx *)
  seen_order : (string * int) Queue.t; (* FIFO of [seen] keys, oldest first *)
  mutable retrans_count : int;
  mutable gaveup_count : int;
  snapshot_tracker : Snapshot.tracker;
  mutable snapshots_taken : Snapshot.t list; (* newest first *)
  mutable next_snapshot_us : float;
  mutable daemon_us_total : float;
  mutable slice_daemon_us : float;
  mutable slice_events : int;
  mutable slice_sends : int;
  mutable wire_bytes : int;
}

let us_per_instr t = Config.us_per_instr t.config
let now_us t = (float_of_int (Machine.icount t.machine) *. us_per_instr t) +. t.extra_us

let create ~identity ~config ~image ?mem_words
    ?(log_backend = Avm_tamperlog.Segment_store.Compressed) ~peers ~on_send () =
  let machine =
    match mem_words with
    | Some w -> Machine.create ~mem_words:w image
    | None -> Machine.create image
  in
  let seed =
    (* Deterministic per-identity host randomness keeps experiments
       reproducible without coupling machines to each other. *)
    let h = Avm_crypto.Sha256.digest (Identity.name identity) in
    let b i = Int64.of_int (Char.code h.[i]) in
    let acc = ref 0L in
    for i = 0 to 7 do
      acc := Int64.logor !acc (Int64.shift_left (b i) (8 * i))
    done;
    !acc
  in
  {
    identity;
    config;
    machine;
    log = Log.create ~backend:log_backend ();
    peers;
    on_send;
    host_rng = Avm_util.Rng.create seed;
    input_queue = Queue.create ();
    rx_queue = Queue.create ();
    rx_offset = 0;
    nic_irq_pending = false;
    timer_interval_us = 0.0;
    timer_next_us = infinity;
    sleeping = false;
    sleep_until = infinity;
    extra_us = 0.0;
    clock_opt =
      (* The paper's 5 us window assumes a GHz-rate guest; scale the
         windows to this configuration's instruction rate so that
         "consecutive" means the same number of instructions. *)
      Clock_opt.create
        ~threshold_us:(int_of_float (65.0 /. config.Config.mips))
        ~base_delay_us:(int_of_float (39.0 /. config.Config.mips))
        ~max_delay_us:1000 ();
    next_nonce = 1;
    sends = Hashtbl.create 64;
    seen = Hashtbl.create 64;
    seen_order = Queue.create ();
    retrans_count = 0;
    gaveup_count = 0;
    snapshot_tracker = Snapshot.tracker ();
    snapshots_taken = [];
    next_snapshot_us =
      (match config.Config.snapshot_every_us with
      | Some p -> float_of_int p
      | None -> infinity);
    daemon_us_total = 0.0;
    slice_daemon_us = 0.0;
    slice_events = 0;
    slice_sends = 0;
    wire_bytes = 0;
  }

let machine t = t.machine
let log t = t.log
let config t = t.config
let name t = Identity.name t.identity
let identity t = t.identity
let halted t = Machine.halted t.machine
let frames t = Machine.frames t.machine
let total_daemon_us t = t.daemon_us_total
let clock_reads t = Clock_opt.reads_observed t.clock_opt
let bytes_sent_on_wire t = t.wire_bytes
let add_stall_us t us = t.extra_us <- t.extra_us +. us

(* --- Sleep / wake ------------------------------------------------------ *)

let sleeping_until t = if t.sleeping then Some t.sleep_until else None

let wake t ~now_us:wake_us =
  if t.sleeping then begin
    (* The guest did not execute while parked: fast-forward its
       virtual clock to the wake time. Replay never calls this — the
       skipped interval is visible only through logged CLOCK reads,
       which replay serves from the log. *)
    let here = now_us t in
    if wake_us > here then t.extra_us <- t.extra_us +. (wake_us -. here);
    t.sleeping <- false;
    t.sleep_until <- infinity
  end

let charge_daemon t us =
  t.daemon_us_total <- t.daemon_us_total +. us;
  t.slice_daemon_us <- t.slice_daemon_us +. us

let log_event t ev =
  if Config.recording t.config then begin
    ignore (Log.append t.log (Entry.Exec ev));
    t.slice_events <- t.slice_events + 1;
    charge_daemon t (Config.per_event_log_us t.config)
  end

let peer_name t id = List.assoc_opt id t.peers

(* --- Recording backend ------------------------------------------------ *)

let serve_clock t =
  let base = now_us t in
  let delay = if t.config.Config.clock_opt then Clock_opt.on_read t.clock_opt ~now_us:base else 0.0 in
  if delay > 0.0 then t.extra_us <- t.extra_us +. delay;
  let value = int_of_float (base +. delay) land 0xffffffff in
  log_event t (Event.Io_in { port = Avm_isa.Isa.port_clock; value; msg = -1 });
  (* Track reads even when the optimization is off, for §6.5 stats. *)
  if not t.config.Config.clock_opt then ignore (Clock_opt.on_read t.clock_opt ~now_us:base);
  value

let rx_head t = if Queue.is_empty t.rx_queue then None else Some (Queue.peek t.rx_queue)

let serve_io_in t port =
  let open Avm_isa.Isa in
  let log_plain value = log_event t (Event.Io_in { port; value; msg = -1 }) in
  if port = port_clock then serve_clock t
  else if port = port_rng then begin
    let value = Avm_util.Rng.bits32 t.host_rng in
    log_plain value;
    value
  end
  else if port = port_input then begin
    let value = if Queue.is_empty t.input_queue then 0 else Queue.pop t.input_queue in
    log_plain value;
    value
  end
  else if port = port_input_avail then begin
    let value = Queue.length t.input_queue in
    log_plain value;
    value
  end
  else if port = port_net_rx_avail then begin
    let value = Queue.length t.rx_queue in
    log_plain value;
    value
  end
  else if port = port_net_rx_len then begin
    let value = match rx_head t with Some (words, _) -> Array.length words | None -> 0 in
    log_plain value;
    value
  end
  else if port = port_net_rx then begin
    match rx_head t with
    | None ->
      log_plain 0;
      0
    | Some (words, msg) ->
      let value = if t.rx_offset < Array.length words then words.(t.rx_offset) else 0 in
      t.rx_offset <- t.rx_offset + 1;
      log_event t (Event.Io_in { port; value; msg });
      value
  end
  else begin
    (* Unknown nondeterministic port: serve 0 but keep it honest by
       logging it, so replay stays faithful. *)
    log_plain 0;
    0
  end

let serve_io_out t port value =
  let open Avm_isa.Isa in
  if port = port_net_rx_next then begin
    if not (Queue.is_empty t.rx_queue) then ignore (Queue.pop t.rx_queue);
    t.rx_offset <- 0
  end
  else if port = port_timer_ctl then begin
    if value = 0 then begin
      t.timer_interval_us <- 0.0;
      t.timer_next_us <- infinity
    end
    else begin
      t.timer_interval_us <- float_of_int value;
      t.timer_next_us <- now_us t +. float_of_int value
    end
  end
  else if port = port_sleep then begin
    (* Park the guest: 0 = until an external wake (input, packet),
       n > 0 = for at most n virtual microseconds. Deterministic
       output, so nothing is logged; replay's io_out ignores it. *)
    t.sleeping <- true;
    t.sleep_until <- (if value <= 0 then infinity else now_us t +. float_of_int value)
  end

let handle_packet_sent t words =
  if Array.length words = 0 then ()
  else begin
    let dest_id = words.(0) in
    match peer_name t dest_id with
    | None -> () (* packet to an unknown peer id: dropped on the floor *)
    | Some dest ->
      let payload = Wireformat.payload_of_words (Array.sub words 1 (Array.length words - 1)) in
      let nonce = t.next_nonce in
      t.next_nonce <- nonce + 1;
      let src = name t in
      if Config.accountable t.config then begin
        let entry = Log.append t.log (Entry.Send { dest; nonce; payload }) in
        let prev = Log.prev_hash t.log entry.Entry.seq in
        let auth = Auth.make t.identity ~entry ~prev_hash:prev in
        let signature =
          if Config.signing t.config then
            Identity.sign t.identity (Wireformat.message_body ~src ~dest ~nonce ~payload)
          else ""
        in
        charge_daemon t (2.0 *. Config.sign_cost_us t.config);
        (* one signature for the message, one inside the authenticator *)
        let envelope = { Wireformat.src; dest; nonce; payload; signature; auth } in
        let now = now_us t in
        Hashtbl.replace t.sends nonce
          {
            envelope;
            sent_at_us = now;
            send_seq = entry.Entry.seq;
            acked = false;
            last_sent_us = now;
            attempts = 1;
            gave_up = false;
          };
        t.wire_bytes <- t.wire_bytes + Wireformat.envelope_wire_size envelope;
        t.slice_sends <- t.slice_sends + 1;
        t.on_send envelope
      end
      else begin
        (* Non-accountable levels still ship the packet, bare. *)
        let envelope = Wireformat.bare_envelope ~src ~dest ~nonce ~payload in
        let now = now_us t in
        Hashtbl.replace t.sends nonce
          {
            envelope;
            sent_at_us = now;
            send_seq = 0;
            acked = true;
            last_sent_us = now;
            attempts = 1;
            gave_up = false;
          };
        t.wire_bytes <- t.wire_bytes + Wireformat.envelope_wire_size envelope;
        t.slice_sends <- t.slice_sends + 1;
        t.on_send envelope
      end
  end

let poll_irq t () =
  if t.nic_irq_pending then begin
    t.nic_irq_pending <- false;
    log_event t (Event.Irq { landmark = Machine.landmark t.machine; line = 1 });
    Some 1
  end
  else if now_us t >= t.timer_next_us then begin
    t.timer_next_us <- t.timer_next_us +. t.timer_interval_us;
    log_event t (Event.Irq { landmark = Machine.landmark t.machine; line = 0 });
    Some 0
  end
  else None

let backend t =
  {
    Machine.io_in = (fun port -> serve_io_in t port);
    io_out = (fun port value -> serve_io_out t port value);
    observe =
      (function
      | Machine.Packet_sent words -> handle_packet_sent t words
      | Machine.Console _ | Machine.Frame -> ());
    poll_irq = poll_irq t;
  }

(* --- Snapshots --------------------------------------------------------- *)

let take_snapshot t =
  if not (Config.accountable t.config) then None
  else begin
    let snap = Snapshot.take t.snapshot_tracker t.machine in
    t.snapshots_taken <- snap :: t.snapshots_taken;
    ignore
      (Log.append t.log
         (Entry.Snapshot_ref
            {
              digest = Snapshot.state_digest snap;
              snapshot_seq = snap.Snapshot.seq;
              at_icount = snap.Snapshot.at_icount;
            }));
    charge_daemon t (50.0 +. (float_of_int (List.length snap.Snapshot.pages) *. 2.0));
    Some snap
  end

let snapshots t = List.rev t.snapshots_taken

(* --- Slice execution --------------------------------------------------- *)

let run_slice t ~until_us =
  t.slice_daemon_us <- 0.0;
  t.slice_events <- 0;
  t.slice_sends <- 0;
  (* A parked guest whose deadline falls inside this slice wakes
     itself; one parked past the horizon stays parked and the slice is
     empty. Standalone callers thus need no wake bookkeeping — the
     event-driven harness wakes nodes eagerly instead. *)
  if t.sleeping && t.sleep_until <= until_us then wake t ~now_us:t.sleep_until;
  let b = backend t in
  let start_instr = Machine.icount t.machine in
  let continue = ref ((not t.sleeping) && not (Machine.halted t.machine)) in
  while !continue && (not t.sleeping) && now_us t < until_us do
    if now_us t >= t.next_snapshot_us then begin
      ignore (take_snapshot t);
      match t.config.Config.snapshot_every_us with
      | Some p -> t.next_snapshot_us <- t.next_snapshot_us +. float_of_int p
      | None -> t.next_snapshot_us <- infinity
    end;
    continue := Machine.step t.machine b
  done;
  Avm_obs.Metrics.incr ~by:(Machine.icount t.machine - start_instr) "avmm.instructions";
  Avm_obs.Metrics.incr ~by:t.slice_events "avmm.events_logged";
  Avm_obs.Metrics.incr ~by:t.slice_sends "avmm.sends";
  Avm_obs.Metrics.observe "avmm.slice_daemon_us" t.slice_daemon_us;
  {
    instructions = Machine.icount t.machine - start_instr;
    events_logged = t.slice_events;
    sends = t.slice_sends;
    daemon_us = t.slice_daemon_us;
    end_us = now_us t;
  }

(* --- Network ingress --------------------------------------------------- *)

let make_ack t env recv_entry =
  let prev = Log.prev_hash t.log recv_entry.Entry.seq in
  let recv_auth = Auth.make t.identity ~entry:recv_entry ~prev_hash:prev in
  {
    Wireformat.acker = name t;
    sender = env.Wireformat.src;
    nonce = env.Wireformat.nonce;
    recv_auth;
  }

let deliver t env ~sender_cert =
  let key = (env.Wireformat.src, env.Wireformat.nonce) in
  match Hashtbl.find_opt t.seen key with
  | Some ack -> `Duplicate ack
  | None ->
    if Config.accountable t.config && Config.signing t.config
       && not (Wireformat.verify_envelope sender_cert env)
    then
      (* Not cached: a corrupted copy must not blacklist the nonce, or
         a later clean retransmission of the same message could never
         be accepted and an honest sender would look unresponsive. *)
      `Rejected "bad envelope signature or authenticator"
    else begin
      let words = Wireformat.words_of_payload env.Wireformat.payload in
      let ack =
        if Config.accountable t.config then begin
          let entry =
            Log.append t.log
              (Entry.Recv
                 {
                   src = env.Wireformat.src;
                   nonce = env.Wireformat.nonce;
                   payload = env.Wireformat.payload;
                   signature = env.Wireformat.signature;
                 })
          in
          charge_daemon t (Config.verify_cost_us t.config +. Config.sign_cost_us t.config);
          let ack = make_ack t env entry in
          t.wire_bytes <- t.wire_bytes + Wireformat.ack_wire_size ack;
          Queue.add (words, entry.Entry.seq) t.rx_queue;
          ack
        end
        else begin
          Queue.add (words, -1) t.rx_queue;
          {
            Wireformat.acker = name t;
            sender = env.Wireformat.src;
            nonce = env.Wireformat.nonce;
            recv_auth = Wireformat.null_auth ~node:(name t);
          }
        end
      in
      t.nic_irq_pending <- true;
      (* Bounded FIFO dedup window (à la Sigcache): one entry per
         accepted message would otherwise grow without limit under
         sustained traffic. A retransmission of an evicted message is
         simply re-accepted — correctness never depended on the cached
         ack, only bandwidth did. *)
      while Queue.length t.seen_order >= t.config.Config.rx_dedup_window do
        let oldest = Queue.pop t.seen_order in
        Hashtbl.remove t.seen oldest;
        Avm_obs.Metrics.incr "net.seen_evicted"
      done;
      Queue.add key t.seen_order;
      Hashtbl.replace t.seen key ack;
      `Ack ack
    end

let accept_ack t ack ~acker_cert =
  match Hashtbl.find_opt t.sends ack.Wireformat.nonce with
  | None -> Error "ack for unknown nonce"
  | Some pending ->
    if pending.acked then Ok ()
    else if not (Config.accountable t.config) then begin
      pending.acked <- true;
      Ok ()
    end
    else if
      Config.signing t.config
      && not (Wireformat.verify_ack acker_cert ack ~sent:pending.envelope)
    then Error "invalid ack"
    else begin
      charge_daemon t (Config.verify_cost_us t.config);
      ignore
        (Log.append t.log
           (Entry.Ack
              {
                src = ack.Wireformat.acker;
                acked_seq = pending.send_seq;
                signature = Auth.encode ack.Wireformat.recv_auth;
              }));
      pending.acked <- true;
      Ok ()
    end

let unacked t ~older_than_us =
  Hashtbl.fold
    (fun _ p acc ->
      if (not p.acked) && p.last_sent_us < older_than_us then p.envelope :: acc else acc)
    t.sends []
  |> List.sort (fun (a : Wireformat.envelope) b -> compare a.Wireformat.nonce b.Wireformat.nonce)

let retransmit_due t ~now_us =
  let max_attempts = t.config.Config.retrans_max_attempts in
  let due =
    Hashtbl.fold
      (fun _ p acc ->
        if p.acked || p.gave_up then acc
        else if max_attempts > 0 && p.attempts >= max_attempts then begin
          p.gave_up <- true;
          t.gaveup_count <- t.gaveup_count + 1;
          Avm_obs.Metrics.incr "net.backoff_gaveup";
          acc
        end
        else if now_us >= p.last_sent_us +. Config.retrans_delay_us t.config ~attempts:p.attempts
        then p :: acc
        else acc)
      t.sends []
    (* Hashtbl order is unspecified: sort for bit-determinism. *)
    |> List.sort (fun a b -> compare a.envelope.Wireformat.nonce b.envelope.Wireformat.nonce)
  in
  List.map
    (fun p ->
      p.last_sent_us <- now_us;
      p.attempts <- p.attempts + 1;
      t.retrans_count <- t.retrans_count + 1;
      Avm_obs.Metrics.incr "net.retransmissions";
      p.envelope)
    due

let retransmissions_sent t = t.retrans_count
let retransmissions_gaveup t = t.gaveup_count

let next_retrans_at t =
  (* Earliest moment any pending send needs attention. Envelopes past
     [retrans_max_attempts] still contribute their due time: the next
     {!retransmit_due} call is what marks them given-up. *)
  Hashtbl.fold
    (fun _ p acc ->
      if p.acked || p.gave_up then acc
      else
        Float.min acc (p.last_sent_us +. Config.retrans_delay_us t.config ~attempts:p.attempts))
    t.sends infinity

(* --- Local inputs, notes, adversary ------------------------------------ *)

let queue_input t v = Queue.add (v land 0xffffffff) t.input_queue

let note t s =
  if Config.recording t.config then ignore (Log.append t.log (Entry.Note s))

let seen_size t = Hashtbl.length t.seen

(* --- Commitments -------------------------------------------------------- *)

let commitment t =
  if not (Config.accountable t.config) then None
  else begin
    let n = Log.length t.log in
    if n = 0 then None
    else begin
      let entry = Log.entry t.log n in
      let prev = Log.prev_hash t.log n in
      charge_daemon t (Config.sign_cost_us t.config);
      Some (Auth.make t.identity ~entry ~prev_hash:prev)
    end
  end

let poke t ~addr ~value = Memory.write (Machine.mem t.machine) addr value
let peek t ~addr = Memory.read (Machine.mem t.machine) addr
