type ctx = {
  node_cert : Avm_crypto.Identity.certificate;
  peer_certs : (string * Avm_crypto.Identity.certificate) list;
  auths : Avm_tamperlog.Auth.t list;
  ack_grace : int;
}

let ctx ~node_cert ?(peer_certs = []) ?(auths = []) ?(ack_grace = 50) () =
  { node_cert; peer_certs; auths; ack_grace }

type parallelism = { jobs : int; pool : Avm_util.Domain_pool.t option }

let sequential = { jobs = 1; pool = None }
let parallel ?pool jobs = { jobs; pool }

module Pool = Avm_util.Domain_pool

let with_parallelism ?(par = sequential) f =
  match par.pool with
  | Some p -> f (if Pool.jobs p > 1 then Some p else None)
  | None -> if par.jobs > 1 then Pool.with_pool ~jobs:par.jobs (fun p -> f (Some p)) else f None
