open Avm_tamperlog

type breakdown = {
  timetracker_bytes : int;
  mac_bytes : int;
  other_replay_bytes : int;
  tamper_evident_bytes : int;
  payload_bytes : int;
  packets : int;
  total_bytes : int;
  entries : int;
}

let empty =
  {
    timetracker_bytes = 0;
    mac_bytes = 0;
    other_replay_bytes = 0;
    tamper_evident_bytes = 0;
    payload_bytes = 0;
    packets = 0;
    total_bytes = 0;
    entries = 0;
  }

let is_net_port port =
  let open Avm_isa.Isa in
  port = port_net_rx || port = port_net_rx_avail || port = port_net_rx_len

let add b (e : Entry.t) =
  let size = Entry.wire_size e in
  let b = { b with total_bytes = b.total_bytes + size; entries = b.entries + 1 } in
  match e.content with
  | Entry.Exec (Avm_machine.Event.Io_in { port; _ }) when port = Avm_isa.Isa.port_clock ->
    { b with timetracker_bytes = b.timetracker_bytes + size }
  | Entry.Exec (Avm_machine.Event.Io_in { port; _ }) when is_net_port port ->
    { b with mac_bytes = b.mac_bytes + size }
  | Entry.Exec (Avm_machine.Event.Irq { line = 1; _ }) ->
    { b with mac_bytes = b.mac_bytes + size }
  | Entry.Exec _ -> { b with other_replay_bytes = b.other_replay_bytes + size }
  | Entry.Send { payload; _ } | Entry.Recv { payload; _ } ->
    {
      b with
      tamper_evident_bytes = b.tamper_evident_bytes + size;
      payload_bytes = b.payload_bytes + String.length payload;
      packets = b.packets + 1;
    }
  | Entry.Ack _ | Entry.Snapshot_ref _ | Entry.Note _ ->
    { b with tamper_evident_bytes = b.tamper_evident_bytes + size }

let of_entries entries = List.fold_left add empty entries

let of_log log =
  let b = ref empty in
  Log.iter log (fun e -> b := add !b e);
  !b

(* The VMware-equivalent log keeps the replay streams and stores raw
   packet payloads in MAC entries (8 bytes of framing per packet);
   signatures, chain hashes and acks disappear. *)
let vmware_equivalent_bytes b =
  b.timetracker_bytes + b.mac_bytes + b.other_replay_bytes + b.payload_bytes
  + (8 * b.packets)

let compressed_bytes log =
  let all = Log.encode_range log ~from:1 ~upto:(Log.length log) in
  String.length (Avm_compress.Codec.compress all)
