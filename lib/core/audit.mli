(** The audit tool (paper §4.5): syntactic check, then semantic check.

    The {b syntactic} check needs no execution: it verifies the hash
    chain, matches every collected authenticator against the log,
    verifies the sender signatures inside RECV entries, checks that
    sends were acknowledged, and sanity-checks the cross-references
    from the input stream into the message stream. All five checks run
    in a {e single pass} over the entry stream ({!syntactic_feed}), so
    a segmented log is audited one sealed segment at a time without
    ever materializing the whole log.

    The {b semantic} check is {!Replay.replay}: deterministic replay
    of the segment against the reference image. {!full_of_log} streams
    it segment-by-segment via {!Replay.replay_chunks}.

    Both are deterministic, so any third party repeating them obtains
    the same verdict — that is what makes the output {!Evidence}.

    {b Parallelism.} Every entry point takes [?jobs] / [?pool]: with
    [jobs > 1] (or a multi-lane {!Avm_util.Domain_pool.t}) the
    syntactic pass fans out one worker per sealed segment and the
    semantic pass replays snapshot-delimited pieces concurrently
    ({!Spot_check.parallel_replay}). The parallel passes are stitched
    so that the report — verdict, counters and the failure list, byte
    for byte — is identical to the sequential pass; [jobs = 1] (the
    default) runs the original sequential code. Timing fields use
    process CPU time and therefore over-count wall-clock when
    parallel; benchmarks should measure wall-clock externally. *)

type syntactic_report = {
  entries_checked : int;
  auths_matched : int;  (** collected authenticators that matched the log *)
  recv_signatures_verified : int;
  failures : string list;  (** empty means the check passed *)
}

val syntactic_feed :
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  prev_hash:string ->
  feed:((Avm_tamperlog.Entry.t -> unit) -> unit) ->
  auths:Avm_tamperlog.Auth.t list ->
  ?ack_grace:int ->
  unit ->
  syntactic_report
(** The streaming core: [feed push] must call [push] exactly once per
    entry, in log order. All checks are evaluated in that single pass;
    obligations that need the cut point (unacked sends) settle when
    [feed] returns. [prev_hash] is the chain hash just before the first
    fed entry. *)

val syntactic :
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  prev_hash:string ->
  entries:Avm_tamperlog.Entry.t list ->
  auths:Avm_tamperlog.Auth.t list ->
  ?ack_grace:int ->
  ?jobs:int ->
  ?pool:Avm_util.Domain_pool.t ->
  unit ->
  syntactic_report
(** {!syntactic_feed} over a materialized list. [ack_grace] (default
    50) exempts the most recent sends from the every-send-is-acked
    rule: their acks may legitimately still be in flight when the log
    was cut. With [jobs > 1] or a multi-lane [pool], the list is cut
    into one contiguous slice per lane and checked in parallel, with
    a report identical to the sequential pass. *)

val syntactic_of_log :
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  log:Avm_tamperlog.Log.t ->
  ?from:int ->
  ?upto:int ->
  auths:Avm_tamperlog.Auth.t list ->
  ?ack_grace:int ->
  ?jobs:int ->
  ?pool:Avm_util.Domain_pool.t ->
  unit ->
  syntactic_report
(** {!syntactic_feed} over a segment store: streams [from..upto]
    (default: the whole log) segment by segment, inflating compressed
    segments one at a time. [prev_hash] is taken from the log's own
    index. With [jobs > 1] or a multi-lane [pool], sealed segments are
    checked concurrently (each worker inflating through its own
    domain-local cache) and the per-segment results stitched into the
    same report the sequential stream produces. *)

type report = {
  node : string;
  syntactic : syntactic_report;
  semantic : Replay.outcome option;  (** [None] if syntactic failed *)
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict : (unit, string) result;
}

val full :
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  peers:(int * string) list ->
  prev_hash:string ->
  entries:Avm_tamperlog.Entry.t list ->
  auths:Avm_tamperlog.Auth.t list ->
  ?jobs:int ->
  ?pool:Avm_util.Domain_pool.t ->
  unit ->
  report
(** Complete audit of one log segment. The semantic check runs only if
    the syntactic check passes (a broken chain is already evidence).
    [jobs]/[pool] parallelize the syntactic pass; the semantic replay
    of a bare entry list has no snapshot boundaries to cut at and
    stays sequential. *)

val full_of_log :
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  peers:(int * string) list ->
  log:Avm_tamperlog.Log.t ->
  ?from:int ->
  ?upto:int ->
  ?snapshots:Avm_machine.Snapshot.t list ->
  auths:Avm_tamperlog.Auth.t list ->
  ?jobs:int ->
  ?pool:Avm_util.Domain_pool.t ->
  unit ->
  report
(** {!full} driven straight off a segment store: both checks stream
    [from..upto] (default: the whole log) one sealed segment at a
    time — the syntactic pass via {!syntactic_of_log}, the semantic
    pass via {!Replay.replay_chunks} — with identical verdicts to
    {!full} on the materialized entry list.

    With [jobs > 1] (or a multi-lane [pool]) the syntactic pass runs
    one worker per sealed segment, and — when [snapshots] are supplied,
    [from = 1] and no [start] state overrides the boot image — the
    semantic pass becomes {!Spot_check.parallel_replay}, cutting the
    log at snapshot boundaries and replaying the pieces concurrently
    from authenticated downloaded state. *)

val pp_report : Format.formatter -> report -> unit
