(** The audit tool (paper §4.5): syntactic check, then semantic check.

    The {b syntactic} check needs no execution: it verifies the hash
    chain, matches every collected authenticator against the log,
    verifies the sender signatures inside RECV entries, checks that
    sends were acknowledged, and sanity-checks the cross-references
    from the input stream into the message stream. All five checks run
    in a {e single pass} over the entry stream ({!syntactic_feed}), so
    a segmented log is audited one sealed segment at a time without
    ever materializing the whole log.

    The {b semantic} check is {!Replay.replay}: deterministic replay
    of the segment against the reference image. {!full_of_log} streams
    it segment-by-segment via {!Replay.replay_chunks}.

    Both are deterministic, so any third party repeating them obtains
    the same verdict — that is what makes the output {!Evidence};
    failed audits come back with the transferable {!Evidence.t}
    already attached ({!outcome.evidence}), and {!check_evidence} is
    the third party's side of the exchange.

    {b Configuration.} Every entry point takes [~ctx] (who is audited,
    whose signatures appear in its log, the collected authenticators,
    the ack grace window — see {!ctx}) and [?par] (worker count or a
    borrowed {!Avm_util.Domain_pool.t} — see {!parallelism}). With
    more than one lane the syntactic pass fans out one worker per
    sealed segment and the semantic pass replays snapshot-delimited
    pieces concurrently ({!Spot_check.parallel_replay}). The parallel
    passes are stitched so that the outcome — verdict, counters and
    the failure list, byte for byte — is identical to the sequential
    pass; the default [par] runs the original sequential code.

    {b Observability.} Timing fields are monotonic wall-clock
    ({!Avm_obs.Clock}), correct under parallelism. Each pass bumps
    [audit.*] counters in {!Avm_obs.Metrics} and records one
    [audit.chunk] span per sealed segment (sequential and parallel
    alike) plus [audit.syntactic] / [audit.semantic] phase spans in
    {!Avm_obs.Trace}. *)

type ctx = Audit_ctx.ctx = {
  node_cert : Avm_crypto.Identity.certificate;
  peer_certs : (string * Avm_crypto.Identity.certificate) list;
  auths : Avm_tamperlog.Auth.t list;
  ack_grace : int;
}
(** See {!Audit_ctx.ctx}. [ack_grace] (conventionally 50) exempts the
    most recent sends from the every-send-is-acked rule: their acks
    may legitimately still be in flight when the log was cut. *)

val ctx :
  node_cert:Avm_crypto.Identity.certificate ->
  ?peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  ?auths:Avm_tamperlog.Auth.t list ->
  ?ack_grace:int ->
  unit ->
  ctx
(** {!Audit_ctx.ctx}: the smart constructor ([peer_certs], [auths]
    default empty, [ack_grace] 50). *)

type parallelism = Audit_ctx.parallelism = {
  jobs : int;
  pool : Avm_util.Domain_pool.t option;
}
(** See {!Audit_ctx.parallelism}. *)

val sequential : parallelism
val parallel : ?pool:Avm_util.Domain_pool.t -> int -> parallelism

type syntactic_report = {
  entries_checked : int;
  auths_matched : int;  (** collected authenticators that matched the log *)
  recv_signatures_verified : int;
  failures : string list;  (** empty means the check passed *)
}

(** {1 The incremental syntactic stream}

    The single-pass core as a long-lived value: a session pushes
    entries as they arrive (possibly over minutes of wall clock) and
    reads failures mid-stream — what {!Online_audit} and the service
    daemon run per session. {!syntactic_feed} drives the same
    machinery over one complete segment. *)

type syn_stream

val syn_stream : ctx:ctx -> prev_hash:string -> syn_stream
(** A fresh stream positioned just after the entry whose hash is
    [prev_hash] ([Log.genesis_hash] for a whole log). The collected
    authenticators in [ctx] are signature-checked and indexed here,
    once. *)

val syn_push : syn_stream -> Avm_tamperlog.Entry.t -> unit
(** Feed the next entry, in log order. Structural checks (chain hash,
    sequence, authenticator match, cross-references) are evaluated
    immediately; RECV sender-signature checks are deferred into a
    pending batch that {!Avm_crypto.Rsa.verify_batch} settles — either
    when the batch fills or on the next read accessor. Every accessor
    below flushes first, so a failure pushed by this entry is visible
    in {!syn_failures} as soon as any of them is consulted, at the
    exact position an immediate check would have reported. *)

val syn_failure_count : syn_stream -> int
(** Failures recorded so far (flushes pending signature checks, so
    the count is exact) — a streaming session detects "this entry
    broke something" by comparing counts around a {!syn_push}. *)

val syn_failures : syn_stream -> string list
(** Failures so far, oldest first (flushes pending signature
    checks). *)

val syn_report : syn_stream -> syntactic_report
(** The report as of now, {e without} settling cut-point obligations
    (unacked sends) and without recording metrics — a mid-session
    progress view. *)

val syn_finish : syn_stream -> syntactic_report
(** Settle the cut-point obligations (every send older than the ack
    grace window must be acknowledged), record the [audit.*] metrics,
    and return the final report. *)

val syntactic_feed :
  ctx:ctx -> prev_hash:string -> feed:((Avm_tamperlog.Entry.t -> unit) -> unit) -> unit ->
  syntactic_report
(** The streaming core over one segment: [feed push] must call [push]
    exactly once per entry, in log order — {!syn_stream}, [feed]
    every entry through {!syn_push}, {!syn_finish}. *)

val syntactic :
  ctx:ctx ->
  prev_hash:string ->
  entries:Avm_tamperlog.Entry.t list ->
  ?par:parallelism ->
  unit ->
  syntactic_report
(** {!syntactic_feed} over a materialized list. With more than one
    lane, the list is cut into several contiguous chunks per lane
    (finer than one-per-lane so work stealing can rebalance uneven
    chunks) and checked in parallel, with a report identical to the
    sequential pass. *)

val syntactic_of_log :
  ctx:ctx ->
  log:Avm_tamperlog.Log.t ->
  ?from:int ->
  ?upto:int ->
  ?par:parallelism ->
  unit ->
  syntactic_report
(** {!syntactic_feed} over a segment store: streams [from..upto]
    (default: the whole log) segment by segment, inflating compressed
    segments one at a time. [prev_hash] is taken from the log's own
    index. With more than one lane, sealed segments are checked
    concurrently (each worker inflating through its own domain-local
    cache) and the per-segment results stitched into the same report
    the sequential stream produces. Chunks backed by compressed
    segments ([Log.chunk_spec.spec_derived]) pay the per-entry hash
    comparison only on their first entry — inflation already
    recomputed the interior chain from the same base, so the boundary
    link plus sequence checks are equivalent. *)

(** {1 The unified audit outcome} *)

type outcome = {
  node : string;
  syntactic : syntactic_report;
  semantic : Replay.outcome option;  (** [None] if syntactic failed *)
  syntactic_seconds : float;  (** wall-clock *)
  semantic_seconds : float;  (** wall-clock *)
  verdict : (unit, string) result;
  evidence : Evidence.t option;
      (** on [Error _]: the transferable evidence, ready to hand to a
          third party ({!check_evidence}); [None] on [Ok ()] *)
}

val full :
  ctx:ctx ->
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  peers:(int * string) list ->
  ?cache:Replay_cache.t ->
  prev_hash:string ->
  entries:Avm_tamperlog.Entry.t list ->
  ?par:parallelism ->
  unit ->
  outcome
(** Complete audit of one log segment. The semantic check runs only if
    the syntactic check passes (a broken chain is already evidence).
    [par] parallelizes the syntactic pass; the semantic replay of a
    bare entry list has no snapshot boundaries to cut at and stays
    sequential. [cache] memoizes the semantic pass fleet-wide
    ({!Replay_cache}); verdicts are identical cache-on vs cache-off. *)

val full_of_log :
  ctx:ctx ->
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  peers:(int * string) list ->
  ?cache:Replay_cache.t ->
  log:Avm_tamperlog.Log.t ->
  ?from:int ->
  ?upto:int ->
  ?snapshots:Avm_machine.Snapshot.t list ->
  ?par:parallelism ->
  unit ->
  outcome
(** {!full} driven straight off a segment store: both checks stream
    [from..upto] (default: the whole log) one sealed segment at a
    time — the syntactic pass via {!syntactic_of_log}, the semantic
    pass via {!Replay.replay_chunks} — with identical verdicts to
    {!full} on the materialized entry list. The log segment is
    materialized into {!outcome.evidence} only when the audit fails.

    With more than one lane the syntactic pass runs one worker per
    sealed segment, and — when [snapshots] are supplied, [from = 1]
    and no [start] state overrides the boot image — the semantic pass
    becomes {!Spot_check.parallel_replay}, cutting the log at snapshot
    boundaries and replaying the pieces concurrently from
    authenticated downloaded state. *)

val check_evidence :
  Evidence.t ->
  ctx:ctx ->
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  peers:(int * string) list ->
  unit ->
  bool
(** The third party's verification: re-run the audit on the evidence
    (its own segment and authenticators; [ctx] supplies the
    certificates) and confirm a fault really is present. [true] means
    the evidence is valid and the accused is provably faulty; [false]
    means the evidence does not hold up (and the accuser is making an
    unsupported claim). For {!Evidence.Unanswered_challenge}, validity
    means the authenticator is genuine — the third party should then
    challenge the machine itself. For {!Evidence.Equivocation} no log
    or replay is consulted at all: the proof is two verified
    signatures over conflicting commitments at the same sequence
    number ([image], [peers] etc. are ignored). *)

val pp_outcome : Format.formatter -> outcome -> unit
