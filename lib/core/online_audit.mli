(** Online (concurrent) auditing — paper §6.11.

    "Players can incrementally audit other players' logs while the game
    is still in progress... cheating could be detected as soon as the
    externally visible behavior of the cheater's machine deviates from
    that of the reference machine."

    A {!Session.t} tails one growing tamper-evident log: the producer
    {!Session.ingest}s newly sealed entries (subject to backpressure
    when the auditor has fallen too far behind) and the auditor
    {!Session.step}s replay forward under a bounded instruction budget.
    Each entry runs through the streaming syntactic pass
    ({!Audit.syn_stream}) the moment it is observed, so tampering
    surfaces at memory bandwidth; replay verifies semantics chunk by
    chunk at the log's [Snapshot_ref] boundaries — the same partition
    {!Spot_check} cuts at, so the fingerprints computed here share the
    fleet-wide {!Replay_cache} with the offline auditors: a chunk any
    session (or offline audit) already verified retires without
    executing an instruction.

    Replay is slightly slower than recording (the paper measured ~7%),
    so an auditor falls behind by a few seconds per minute unless the
    recorded execution is artificially slowed (§6.11 uses 5%);
    [replay_rate] models this. *)

(** A terminal finding. [Tampered] comes from the syntactic stream (a
    broken hash chain, a bad signature, a shrunk log); [Diverged] from
    replay (the execution does not reproduce the log); [Equivocated]
    from the cross-session authenticator exchange (two verified
    commitments by the producer at the same seq with different hashes
    — see {!Session.equivocate} and {!Avm_core.Witness.offer}). *)
type verdict =
  | Tampered of { reason : string; entry_seq : int option }
  | Diverged of Replay.divergence
  | Equivocated of { a : Avm_tamperlog.Auth.t; b : Avm_tamperlog.Auth.t }

val pp_verdict : Format.formatter -> verdict -> unit

type status = {
  ingested_entries : int;  (** entries accepted so far *)
  retired_entries : int;  (** entries of fully verified (retired) chunks *)
  chunks_retired : int;  (** snapshot-delimited chunks fully verified *)
  lag_entries : int;  (** ingested but not yet reproduced *)
  lag_us_estimate : float;
      (** [lag_entries] x an EMA of observed wall-clock per retired
          entry — the bounded-lag gauge the service daemon enforces *)
  replayed_instructions : int;  (** actually executed (cache hits excluded) *)
  cache_hits : int;  (** chunks retired straight from the {!Replay_cache} *)
  throttled : bool;  (** backpressure currently engaged *)
  verdict : verdict option;  (** terminal once set *)
}

module Session : sig
  type t

  val open_session :
    ?ctx:Audit_ctx.ctx ->
    image:int array ->
    ?mem_words:int ->
    ?replay_rate:float ->
    ?prev_hash:string ->
    ?high_watermark:int ->
    ?low_watermark:int ->
    ?cache:Replay_cache.t ->
    ?snapshot_of:(unit -> Avm_machine.Snapshot.t list) ->
    peers:(int * string) list ->
    unit ->
    t
  (** Open a streaming audit session against the boot [image].

      [ctx] enables the full syntactic stream (authenticators, RECV
      signatures, ack obligations) and {!outcome} construction; without
      it only the hash chain and sequence numbering are checked — the
      honest-log-safe subset when peer certificates are unavailable.

      [high_watermark] (default 4096) and [low_watermark] (default
      half of high) bound the ingest queue: once [lag_entries] exceeds
      the high mark, {!ingest} refuses with [`Backpressure] until
      replay drains the lag back under the low mark (hysteresis, so the
      producer is not toggled every entry).

      [cache] plus [snapshot_of] (the producer's downloadable snapshot
      set, polled lazily) enable the fleet-wide memo protocol: a cache
      hit retires a whole chunk, and replay re-seats itself from the
      downloaded state at the chunk's end boundary — authenticated
      against the logged digest exactly as {!Spot_check} does, so a
      forged snapshot is a [Diverged] verdict, not a silent skip. Hits
      are never taken without [snapshot_of] (there would be no state to
      resume from); verified misses are still remembered for the rest
      of the fleet.

      [replay_rate] (default 0.955) scales the budget each {!step}
      gets, modeling replay running a few percent slower than the
      original execution (paper §6.11). *)

  val ingest : ?upto:int -> t -> Avm_tamperlog.Log.t -> [ `Accepted | `Backpressure of int ]
  (** Pull any entries appended since the last call ([?upto] caps the
      observed sequence number — the producer offering a partial
      segment). Every pulled entry is syntactically checked on the
      spot; a failure sets the session verdict immediately.
      [`Backpressure lag] means the watermark is exceeded: nothing was
      pulled, the entries stay in the producer's log, try again after
      {!step}. After a terminal verdict, ingest is a no-op [`Accepted].

      The log must not be mutated during the call; the observed length
      is snapshotted up front and re-checked after the walk, so a
      concurrent append raises [Invalid_argument] instead of corrupting
      the chain walk. *)

  val step : t -> budget_instructions:int -> verdict option
  (** Advance verification by up to [budget_instructions x replay_rate]
      instructions: take cache hits on fully ingested chunks, replay
      the rest, retire chunks as their closing snapshot digests verify.
      Returns the session verdict — [Some] is terminal and repeats on
      every later call. *)

  val status : t -> status

  val lag_entries : t -> int
  (** [= (status t).lag_entries], without building the record. *)

  val node_cert : t -> Avm_crypto.Identity.certificate option
  (** The audited producer's certificate, when the session was opened
      with [ctx] — what the service daemon verifies offered
      authenticators against before they can accuse this session. *)

  val equivocate : t -> a:Avm_tamperlog.Auth.t -> b:Avm_tamperlog.Auth.t -> unit
  (** Land an externally derived equivocation proof as this session's
      terminal verdict (first verdict wins, like any other). The
      caller — normally {!Avm_service.Daemon.offer_auth} — must have
      verified both authenticators against the producer's certificate;
      here only {!Avm_tamperlog.Auth.conflicts} is re-checked (a
      non-conflicting pair is ignored). Counted in
      [online_audit.equivocations]. *)

  val close : t -> verdict option
  (** Settle the cut-point obligations of the syntactic stream (every
      send older than the ack grace window must be acknowledged) and
      return the final verdict. Idempotent. *)

  val outcome : t -> Audit.outcome option
  (** The session's verdict as a transferable {!Audit.outcome},
      evidence attached — what the service daemon emits the moment a
      verdict lands, mid-session. The evidence segment is the buffered
      chunk holding the offending entry. [None] while the session is
      clean, or when the session was opened without [ctx]. *)
end

(** {1 The pre-session surface}

    Thin wrappers over {!Session}, kept because tests and Figure 8 pin
    them. [par] is accepted and ignored: the chain pre-verification it
    used to enable is now inline and always on. *)

type t = Session.t

val create :
  image:int array ->
  ?mem_words:int ->
  ?replay_rate:float ->
  ?par:Audit_ctx.parallelism ->
  peers:(int * string) list ->
  unit ->
  t

val observe_log : t -> Avm_tamperlog.Log.t -> unit
(** [Session.ingest] discarding the backpressure signal (the default
    watermark is high enough that a hand-driven auditor never hits
    it). *)

val advance : t -> budget_instructions:int -> [ `Ok | `Fault of Replay.divergence ]
(** [Session.step], mapping a [Diverged] verdict to [`Fault]. A
    [Tampered] verdict surfaces through {!tamper_detected}, as the old
    parallel chain pre-verification did. *)

val lag_entries : t -> int
val replayed_instructions : t -> int
val fault : t -> Replay.divergence option
val tamper_detected : t -> string option
val close : t -> unit
