(** Online (concurrent) auditing — paper §6.11.

    "Players can incrementally audit other players' logs while the game
    is still in progress... cheating could be detected as soon as the
    externally visible behavior of the cheater's machine deviates from
    that of the reference machine."

    An {!t} tails a growing tamper-evident log and replays it with a
    bounded instruction budget per step. Replay is slightly slower than
    recording (the paper measured ~7%), so an auditor falls behind by a
    few seconds per minute unless the recorded execution is
    artificially slowed (§6.11 uses 5%). *)

type t

val create :
  image:int array ->
  ?mem_words:int ->
  ?replay_rate:float ->
  ?jobs:int ->
  peers:(int * string) list ->
  unit ->
  t
(** [replay_rate] (default 0.955) scales the instruction budget each
    {!advance} gets relative to the recorded rate, modeling replay
    running a few percent slower than the original execution — which is
    why the auditor falls behind unless the recorded execution is
    artificially slowed by 5% (paper §6.11).

    [jobs > 1] (default 1) gives the auditor a private
    {!Avm_util.Domain_pool.t}: each {!observe_log} then re-verifies the
    hash chain of the newly observed range in parallel, one worker per
    sealed segment, so a broken chain surfaces via {!tamper_detected}
    the moment it is observed instead of when replay reaches it. Call
    {!close} when done to join the workers. *)

val observe_log : t -> Avm_tamperlog.Log.t -> unit
(** Pull any entries appended since the last call (the auditor
    streaming the log during the game). The log must not be mutated
    during the call. *)

val advance : t -> budget_instructions:int -> [ `Ok | `Fault of Replay.divergence ]
(** Replay up to [budget_instructions x replay_rate] more instructions.
    A [`Fault] is terminal: the auditor holds a divergence and can
    build evidence immediately, mid-game. *)

val lag_entries : t -> int
(** Log entries observed but not yet reproduced — how far behind the
    live execution this auditor is. *)

val replayed_instructions : t -> int
val fault : t -> Replay.divergence option

val tamper_detected : t -> string option
(** Human-readable reason if the parallel chain pre-verification (only
    active with [jobs > 1]) has caught a broken hash chain in an
    observed range. Independent of {!fault}, which reports semantic
    divergence found by replay. *)

val close : t -> unit
(** Join the worker domains of a [jobs > 1] auditor. Idempotent; a
    [jobs = 1] auditor needs no close. *)
