(** Online (concurrent) auditing — paper §6.11.

    "Players can incrementally audit other players' logs while the game
    is still in progress... cheating could be detected as soon as the
    externally visible behavior of the cheater's machine deviates from
    that of the reference machine."

    An {!t} tails a growing tamper-evident log and replays it with a
    bounded instruction budget per step. Replay is slightly slower than
    recording (the paper measured ~7%), so an auditor falls behind by a
    few seconds per minute unless the recorded execution is
    artificially slowed (§6.11 uses 5%). *)

type t

val create :
  image:int array ->
  ?mem_words:int ->
  ?replay_rate:float ->
  ?par:Audit_ctx.parallelism ->
  peers:(int * string) list ->
  unit ->
  t
(** [replay_rate] (default 0.955) scales the instruction budget each
    {!advance} gets relative to the recorded rate, modeling replay
    running a few percent slower than the original execution — which is
    why the auditor falls behind unless the recorded execution is
    artificially slowed by 5% (paper §6.11).

    When [par] ({!Audit_ctx.parallelism}, default sequential) resolves
    to more than one lane, the auditor verifies in parallel: each
    {!observe_log} re-verifies the hash chain of the newly observed
    range, one worker per sealed segment, so a broken chain surfaces
    via {!tamper_detected} the moment it is observed instead of when
    replay reaches it. A [par.jobs > 1] auditor owns a private pool —
    call {!close} when done to join the workers; a [par.pool] is
    borrowed and stays the caller's to shut down. *)

val observe_log : t -> Avm_tamperlog.Log.t -> unit
(** Pull any entries appended since the last call (the auditor
    streaming the log during the game). The log must not be mutated
    during the call. *)

val advance : t -> budget_instructions:int -> [ `Ok | `Fault of Replay.divergence ]
(** Replay up to [budget_instructions x replay_rate] more instructions.
    A [`Fault] is terminal: the auditor holds a divergence and can
    build evidence immediately, mid-game. *)

val lag_entries : t -> int
(** Log entries observed but not yet reproduced — how far behind the
    live execution this auditor is. *)

val replayed_instructions : t -> int
val fault : t -> Replay.divergence option

val tamper_detected : t -> string option
(** Human-readable reason if the parallel chain pre-verification (only
    active with [jobs > 1]) has caught a broken hash chain in an
    observed range. Independent of {!fault}, which reports semantic
    divergence found by replay. *)

val close : t -> unit
(** Join the worker domains of an auditor that owns its pool.
    Idempotent; a sequential or borrowed-pool auditor needs no
    close. *)

(** The pre-[parallelism] signature, kept as a thin wrapper for one
    release. *)
module Legacy : sig
  val create :
    image:int array ->
    ?mem_words:int ->
    ?replay_rate:float ->
    ?jobs:int ->
    peers:(int * string) list ->
    unit ->
    t
  [@@deprecated "use Online_audit.create ?par"]
end
