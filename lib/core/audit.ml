open Avm_tamperlog

type syntactic_report = {
  entries_checked : int;
  auths_matched : int;
  recv_signatures_verified : int;
  failures : string list;
}

(* The syntactic check as a single streaming fold: [feed] pushes every
   entry of the segment exactly once, in log order, and all five checks
   (hash chain, authenticator matching, RECV sender signatures, send
   acknowledgement, input-stream cross-references) run against that one
   pass. Only the collected authenticators — a set far smaller than the
   log — are pre-indexed up front; obligations that can only be settled
   once the cut point is known (unacked sends) are resolved at end of
   stream. *)
let syntactic_feed ~node_cert ~peer_certs ~prev_hash ~feed ~auths ?(ack_grace = 50) () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let node = Avm_crypto.Identity.cert_name node_cert in
  (* Authenticators: verify signatures and index by seq (not a pass
     over the entry stream). *)
  let auth_by_seq = Hashtbl.create 256 in
  List.iter
    (fun (a : Auth.t) ->
      if String.equal a.node node then begin
        if not (Auth.verify node_cert a) then
          fail "authenticator #%d: bad signature or inconsistent hash" a.seq
        else Hashtbl.add auth_by_seq a.seq a
      end)
    auths;
  let entries_checked = ref 0 in
  let auths_matched = ref 0 in
  let recv_sigs = ref 0 in
  (* Hash-chain state; only the first break is reported, matching
     [Log.verify_segment]. *)
  let prev = ref prev_hash in
  let expected_seq = ref (-1) in
  let chain_broken = ref false in
  (* Cross-reference and acknowledgement state. *)
  let first_seq = ref (-1) in
  let last_seq = ref 0 in
  let recv_seqs = Hashtbl.create 256 in
  let acked = Hashtbl.create 64 in
  let pending_sends = ref [] in
  let on_entry (e : Entry.t) =
    incr entries_checked;
    if !first_seq < 0 then first_seq := e.seq;
    last_seq := e.seq;
    (* 1. Hash chain. *)
    if not !chain_broken then begin
      if !expected_seq >= 0 && e.seq <> !expected_seq then begin
        chain_broken := true;
        fail "chain: sequence gap: expected %d, found %d" !expected_seq e.seq
      end
      else if
        not (String.equal (Entry.chain_hash ~prev:!prev ~seq:e.seq e.content) e.hash)
      then begin
        chain_broken := true;
        fail "chain: hash chain broken at entry %d" e.seq
      end
    end;
    prev := e.hash;
    expected_seq := e.seq + 1;
    (* 2. Collected authenticators must match the log. *)
    List.iter
      (fun (a : Auth.t) ->
        if Auth.matches_entry a e then incr auths_matched
        else fail "authenticator #%d does not match the log (forked or rewritten log)" a.seq)
      (Hashtbl.find_all auth_by_seq e.seq);
    match e.content with
    (* 3. RECV sender signatures. *)
    | Entry.Recv { src; nonce; payload; signature } ->
      Hashtbl.replace recv_seqs e.seq ();
      if signature <> "" then begin
        match List.assoc_opt src peer_certs with
        | None -> fail "entry #%d: no certificate for sender %s" e.seq src
        | Some cert ->
          let body = Wireformat.message_body ~src ~dest:node ~nonce ~payload in
          if Avm_crypto.Identity.verify cert ~msg:body ~signature then incr recv_sigs
          else fail "entry #%d: forged RECV — sender signature invalid" e.seq
      end
    (* 4. Send acknowledgement bookkeeping, settled at end of stream. *)
    | Entry.Ack { acked_seq; _ } -> Hashtbl.replace acked acked_seq ()
    | Entry.Send _ -> pending_sends := e.seq :: !pending_sends
    (* 5. Input-stream references into the message stream are sane. *)
    | Entry.Exec (Avm_machine.Event.Io_in { msg; _ }) when msg >= 0 ->
      if msg >= e.seq then fail "entry #%d: rx read references future entry %d" e.seq msg
      else if msg >= !first_seq && not (Hashtbl.mem recv_seqs msg) then
        fail "entry #%d: rx read references non-RECV entry %d" e.seq msg
      (* references before this segment are validated by earlier audits *)
    | _ -> ()
  in
  feed on_entry;
  (* Every send acknowledged, modulo the in-flight tail. *)
  List.iter
    (fun seq ->
      if seq <= !last_seq - ack_grace && not (Hashtbl.mem acked seq) then
        fail "entry #%d: SEND was never acknowledged" seq)
    (List.sort compare !pending_sends);
  {
    entries_checked = !entries_checked;
    auths_matched = !auths_matched;
    recv_signatures_verified = !recv_sigs;
    failures = List.rev !failures;
  }

(* --- parallel syntactic check ------------------------------------------- *)

module Pool = Avm_util.Domain_pool

(* Resolve the [?jobs] / [?pool] pair every entry point takes: an
   explicit pool wins; otherwise [jobs > 1] borrows a scoped pool; and
   [jobs = 1] (the default) stays on the sequential code path. *)
let with_pool ?jobs ?pool f =
  match pool with
  | Some p -> f (if Pool.jobs p > 1 then Some p else None)
  | None -> (
    match jobs with
    | Some j when j > 1 -> Pool.with_pool ~jobs:j (fun p -> f (Some p))
    | _ -> f None)

(* The parallel pass splits the entry stream into chunks that workers
   check independently, then stitches the per-chunk results back
   together sequentially. Everything order- or history-sensitive is
   carried as an *event*, replayed at stitch time in exact log order,
   so the stitched report is bit-identical to the streaming fold's:

   - [Ev_fail] is a finished failure message at its entry position.
   - [Ev_chain] is a chain failure; the stitcher drops it when an
     earlier chunk already broke, reproducing the single global
     "first break only" flag. A worker can evaluate the chain checks
     of a later chunk without knowing whether an earlier one broke,
     because the sequential fold advances [prev]/[expected] from the
     *stored* hashes regardless of validity — its state at a chunk
     boundary is exactly the segment index's [prev_hash]/[from].
   - [Ev_recv]/[Ev_xref] defer the "rx read references non-RECV
     entry" membership test: the stitcher grows the recv-seq table in
     event order and resolves each cross-reference against precisely
     the RECVs the sequential fold would have seen at that point. *)
type syn_event =
  | Ev_fail of string
  | Ev_chain of string
  | Ev_recv of int
  | Ev_xref of int * int  (* (entry seq, referenced msg seq) *)

type syn_chunk = {
  sc_prev_hash : string;  (* chain hash just before the chunk *)
  sc_expected_first : int;  (* expected first seq; -1 = no check (first chunk) *)
  sc_load : unit -> Entry.t list;
}

type chunk_pass = {
  cp_events : syn_event list;  (* entry order *)
  cp_sends : int list;
  cp_acked : int list;
  cp_entries : int;
  cp_auths : int;
  cp_recv_sigs : int;
  cp_broke : bool;
  cp_last : int;  (* seq of the chunk's last entry *)
}

(* One worker's pass over one chunk: the same five checks as
   [syntactic_feed], emitting events instead of final failures. *)
let run_chunk_pass ~node ~peer_certs ~auth_by_seq ~first_seq ~prev_hash ~expected_first
    entries =
  let events = ref [] in
  let ev e = events := e :: !events in
  let failf fmt = Printf.ksprintf (fun m -> ev (Ev_fail m)) fmt in
  let entries_checked = ref 0 in
  let auths_matched = ref 0 in
  let recv_sigs = ref 0 in
  let prev = ref prev_hash in
  let expected_seq = ref expected_first in
  let chain_broken = ref false in
  let sends = ref [] in
  let acked = ref [] in
  let last_seq = ref 0 in
  List.iter
    (fun (e : Entry.t) ->
      incr entries_checked;
      last_seq := e.seq;
      if not !chain_broken then begin
        if !expected_seq >= 0 && e.seq <> !expected_seq then begin
          chain_broken := true;
          ev
            (Ev_chain
               (Printf.sprintf "chain: sequence gap: expected %d, found %d" !expected_seq
                  e.seq))
        end
        else if
          not (String.equal (Entry.chain_hash ~prev:!prev ~seq:e.seq e.content) e.hash)
        then begin
          chain_broken := true;
          ev (Ev_chain (Printf.sprintf "chain: hash chain broken at entry %d" e.seq))
        end
      end;
      prev := e.hash;
      expected_seq := e.seq + 1;
      List.iter
        (fun (a : Auth.t) ->
          if Auth.matches_entry a e then incr auths_matched
          else
            failf "authenticator #%d does not match the log (forked or rewritten log)"
              a.seq)
        (Hashtbl.find_all auth_by_seq e.seq);
      match e.content with
      | Entry.Recv { src; nonce; payload; signature } ->
        ev (Ev_recv e.seq);
        if signature <> "" then begin
          match List.assoc_opt src peer_certs with
          | None -> failf "entry #%d: no certificate for sender %s" e.seq src
          | Some cert ->
            let body = Wireformat.message_body ~src ~dest:node ~nonce ~payload in
            if Avm_crypto.Identity.verify cert ~msg:body ~signature then incr recv_sigs
            else failf "entry #%d: forged RECV — sender signature invalid" e.seq
        end
      | Entry.Ack { acked_seq; _ } -> acked := acked_seq :: !acked
      | Entry.Send _ -> sends := e.seq :: !sends
      | Entry.Exec (Avm_machine.Event.Io_in { msg; _ }) when msg >= 0 ->
        if msg >= e.seq then failf "entry #%d: rx read references future entry %d" e.seq msg
        else if msg >= first_seq then ev (Ev_xref (e.seq, msg))
      | _ -> ())
    entries;
  {
    cp_events = List.rev !events;
    cp_sends = !sends;
    cp_acked = !acked;
    cp_entries = !entries_checked;
    cp_auths = !auths_matched;
    cp_recv_sigs = !recv_sigs;
    cp_broke = !chain_broken;
    cp_last = !last_seq;
  }

(* Split [xs] into at most [n] contiguous slices, preserving order. *)
let slice_list n xs =
  let len = List.length xs in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let per = (len + n - 1) / n in
    let rec go i acc cur = function
      | [] -> List.rev (List.rev cur :: acc)
      | x :: rest ->
        if i = per then go 1 (List.rev cur :: acc) [ x ] rest
        else go (i + 1) acc (x :: cur) rest
    in
    go 0 [] [] xs
  end

(* Authenticator signature checks are embarrassingly parallel; slice
   order is preserved so both the failure list and the [Hashtbl.add]
   order (which [find_all] reflects) match the sequential pre-pass. *)
let verify_auth_slice ~node ~node_cert slice =
  let oks = ref [] in
  let fails = ref [] in
  List.iter
    (fun (a : Auth.t) ->
      if String.equal a.node node then begin
        if Auth.verify node_cert a then oks := a :: !oks
        else
          fails :=
            Printf.sprintf "authenticator #%d: bad signature or inconsistent hash" a.seq
            :: !fails
      end)
    slice;
  (List.rev !oks, List.rev !fails)

let stitch ~ack_grace ~auth_failures passes =
  let failures = ref [] in
  let push m = failures := m :: !failures in
  List.iter push auth_failures;
  let recv_seqs = Hashtbl.create 256 in
  let broke = ref false in
  List.iter
    (fun cp ->
      List.iter
        (function
          | Ev_fail m -> push m
          | Ev_chain m -> if not !broke then push m
          | Ev_recv s -> Hashtbl.replace recv_seqs s ()
          | Ev_xref (seq, msg) ->
            if not (Hashtbl.mem recv_seqs msg) then
              push (Printf.sprintf "entry #%d: rx read references non-RECV entry %d" seq msg))
        cp.cp_events;
      if cp.cp_broke then broke := true)
    passes;
  let acked = Hashtbl.create 64 in
  List.iter (fun cp -> List.iter (fun s -> Hashtbl.replace acked s ()) cp.cp_acked) passes;
  let last_seq = List.fold_left (fun _ cp -> cp.cp_last) 0 passes in
  List.iter
    (fun seq ->
      if seq <= last_seq - ack_grace && not (Hashtbl.mem acked seq) then
        push (Printf.sprintf "entry #%d: SEND was never acknowledged" seq))
    (List.sort compare (List.concat_map (fun cp -> cp.cp_sends) passes));
  {
    entries_checked = List.fold_left (fun n cp -> n + cp.cp_entries) 0 passes;
    auths_matched = List.fold_left (fun n cp -> n + cp.cp_auths) 0 passes;
    recv_signatures_verified = List.fold_left (fun n cp -> n + cp.cp_recv_sigs) 0 passes;
    failures = List.rev !failures;
  }

let syntactic_parallel ~pool ~node_cert ~peer_certs ~auths ~ack_grace ~first_seq chunks =
  let node = Avm_crypto.Identity.cert_name node_cert in
  let verified =
    Pool.map_list pool (verify_auth_slice ~node ~node_cert) (slice_list (Pool.jobs pool) auths)
  in
  let auth_by_seq = Hashtbl.create 256 in
  List.iter
    (fun (oks, _) -> List.iter (fun (a : Auth.t) -> Hashtbl.add auth_by_seq a.seq a) oks)
    verified;
  let auth_failures = List.concat_map snd verified in
  let passes =
    Pool.map_list pool
      (fun c ->
        run_chunk_pass ~node ~peer_certs ~auth_by_seq ~first_seq ~prev_hash:c.sc_prev_hash
          ~expected_first:c.sc_expected_first (c.sc_load ()))
      chunks
  in
  stitch ~ack_grace ~auth_failures passes

(* Chunking a materialized list: contiguous near-equal slices, one per
   pool lane; boundary state comes from the previous slice's last
   entry, exactly the values the sequential fold carries there. *)
let list_chunks ~prev_hash ~lanes entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let lanes = max 1 (min lanes n) in
  let per = (n + lanes - 1) / lanes in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let hi = min n (i + per) in
      let sub = Array.sub arr i (hi - i) in
      go hi
        ({
           sc_prev_hash = (if i = 0 then prev_hash else arr.(i - 1).Entry.hash);
           sc_expected_first = (if i = 0 then -1 else arr.(i - 1).Entry.seq + 1);
           sc_load = (fun () -> Array.to_list sub);
         }
        :: acc)
    end
  in
  go 0 []

(* Chunking a segment store: one chunk per sealed segment (tail last),
   straight off the index — compressed segments inflate inside the
   worker, through the per-domain cache. *)
let log_chunks log ~from ~upto =
  List.map
    (fun (s : Log.chunk_spec) ->
      {
        sc_prev_hash = s.Log.spec_prev_hash;
        sc_expected_first = (if s.Log.spec_from <= from then -1 else s.Log.spec_from);
        sc_load = s.Log.spec_load;
      })
    (Log.chunk_specs log ~from ~upto)

let syntactic ~node_cert ~peer_certs ~prev_hash ~entries ~auths ?(ack_grace = 50) ?jobs
    ?pool () =
  let sequential () =
    syntactic_feed ~node_cert ~peer_certs ~prev_hash
      ~feed:(fun f -> List.iter f entries)
      ~auths ~ack_grace ()
  in
  with_pool ?jobs ?pool (fun p ->
      match p with
      | Some pool -> (
        match list_chunks ~prev_hash ~lanes:(Pool.jobs pool) entries with
        | [] | [ _ ] -> sequential ()
        | chunks ->
          syntactic_parallel ~pool ~node_cert ~peer_certs ~auths ~ack_grace
            ~first_seq:(List.hd entries).Entry.seq chunks)
      | None -> sequential ())

let syntactic_of_log ~node_cert ~peer_certs ~log ?(from = 1) ?upto ~auths ?(ack_grace = 50)
    ?jobs ?pool () =
  let upto = match upto with Some u -> u | None -> Log.length log in
  let sequential () =
    syntactic_feed ~node_cert ~peer_certs
      ~prev_hash:(Log.prev_hash log from)
      ~feed:(fun f -> Log.iter_range log ~from ~upto f)
      ~auths ~ack_grace ()
  in
  with_pool ?jobs ?pool (fun p ->
      match p with
      | Some pool -> (
        match log_chunks log ~from ~upto with
        | [] | [ _ ] -> sequential ()
        | chunks ->
          syntactic_parallel ~pool ~node_cert ~peer_certs ~auths ~ack_grace
            ~first_seq:(max 1 from) chunks)
      | None -> sequential ())

type report = {
  node : string;
  syntactic : syntactic_report;
  semantic : Replay.outcome option;
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict : (unit, string) result;
}

(* Shared tail of [full] / [full_of_log]: run the semantic check only
   if the syntactic check passed (a broken chain is already evidence). *)
let conclude ~node ~syn ~t0 ~t1 ~semantic =
  if syn.failures <> [] then
    {
      node;
      syntactic = syn;
      semantic = None;
      syntactic_seconds = t1 -. t0;
      semantic_seconds = 0.0;
      verdict = Error (String.concat "; " syn.failures);
    }
  else begin
    let outcome = semantic () in
    let t2 = Sys.time () in
    {
      node;
      syntactic = syn;
      semantic = Some outcome;
      syntactic_seconds = t1 -. t0;
      semantic_seconds = t2 -. t1;
      verdict =
        (match outcome with
        | Replay.Verified _ -> Ok ()
        | Replay.Diverged d -> Error (Format.asprintf "%a" Replay.pp_outcome (Replay.Diverged d)));
    }
  end

let full ~node_cert ~peer_certs ~image ?mem_words ?start ?fuel ~peers ~prev_hash ~entries
    ~auths ?jobs ?pool () =
  with_pool ?jobs ?pool (fun p ->
      let t0 = Sys.time () in
      let syn = syntactic ~node_cert ~peer_certs ~prev_hash ~entries ~auths ?pool:p () in
      let t1 = Sys.time () in
      conclude ~node:(Avm_crypto.Identity.cert_name node_cert) ~syn ~t0 ~t1
        ~semantic:(fun () -> Replay.replay ~image ?mem_words ?start ?fuel ~peers ~entries ()))

let full_of_log ~node_cert ~peer_certs ~image ?mem_words ?start ?fuel ~peers ~log ?(from = 1)
    ?upto ?snapshots ~auths ?jobs ?pool () =
  let upto = match upto with Some u -> u | None -> Log.length log in
  with_pool ?jobs ?pool (fun p ->
      let t0 = Sys.time () in
      let syn = syntactic_of_log ~node_cert ~peer_certs ~log ~from ~upto ~auths ?pool:p () in
      let t1 = Sys.time () in
      (* The semantic pass partitions at snapshot boundaries only when
         it owns the whole run: a caller-supplied start state or a
         partial range keeps the plain streaming replay. *)
      let semantic () =
        match (p, snapshots, start) with
        | Some pool, Some snaps, None when from = 1 ->
          Spot_check.parallel_replay ~pool ~image ?mem_words ?fuel ~snapshots:snaps ~log
            ~peers ~upto ()
        | _ ->
          Replay.replay_chunks ~image ?mem_words ?start ?fuel ~peers
            ~chunks:(Log.chunk_seq log ~from ~upto) ()
      in
      conclude ~node:(Avm_crypto.Identity.cert_name node_cert) ~syn ~t0 ~t1 ~semantic)

let pp_report fmt r =
  Format.fprintf fmt "@[<v>audit of %s:@ syntactic: %d entries, %d auths, %d recv sigs — %s@ "
    r.node r.syntactic.entries_checked r.syntactic.auths_matched
    r.syntactic.recv_signatures_verified
    (if r.syntactic.failures = [] then "PASS"
     else "FAIL: " ^ String.concat "; " r.syntactic.failures);
  (match r.semantic with
  | None -> Format.fprintf fmt "semantic: skipped@ "
  | Some o -> Format.fprintf fmt "semantic: %a@ " Replay.pp_outcome o);
  Format.fprintf fmt "verdict: %s@]"
    (match r.verdict with Ok () -> "CORRECT" | Error e -> "FAULTY (" ^ e ^ ")")
