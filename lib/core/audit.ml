open Avm_tamperlog
module Metrics = Avm_obs.Metrics
module Trace = Avm_obs.Trace
module Clock = Avm_obs.Clock

type ctx = Audit_ctx.ctx = {
  node_cert : Avm_crypto.Identity.certificate;
  peer_certs : (string * Avm_crypto.Identity.certificate) list;
  auths : Auth.t list;
  ack_grace : int;
}

let ctx = Audit_ctx.ctx

type parallelism = Audit_ctx.parallelism = {
  jobs : int;
  pool : Avm_util.Domain_pool.t option;
}

let sequential = Audit_ctx.sequential
let parallel = Audit_ctx.parallel

type syntactic_report = {
  entries_checked : int;
  auths_matched : int;
  recv_signatures_verified : int;
  failures : string list;
}

(* Both the streaming fold and the parallel stitcher account through
   here, so the [audit.*] counters agree with the report whichever
   path produced it. *)
let record_syntactic_metrics r =
  Metrics.incr ~by:r.entries_checked "audit.entries_checked";
  Metrics.incr ~by:r.auths_matched "audit.auths_matched";
  Metrics.incr ~by:r.recv_signatures_verified "audit.recv_signatures_verified";
  Metrics.incr ~by:(List.length r.failures) "audit.failures"

(* The syntactic check as an incremental stream: all five checks
   (hash chain, authenticator matching, RECV sender signatures, send
   acknowledgement, input-stream cross-references) run against one
   pass over the entry stream, whose state lives in a record so a
   long-lived session ({!Online_audit}) can push entries as they
   arrive and read failures mid-stream. Only the collected
   authenticators — a set far smaller than the log — are pre-indexed
   up front; obligations that can only be settled once the cut point
   is known (unacked sends) are resolved by [syn_finish]. *)
(* A failure-stream cell: either a finished message or the positional
   placeholder of a deferred RECV signature check. Deferring lets the
   stream hand whole batches to [Rsa.verify_batch]; a placeholder that
   verifies is dropped at flush time, one that fails becomes its
   message in exactly the position an immediate check would have put
   it, so the resolved failure list is byte-identical to the old
   entry-at-a-time stream. *)
type syn_cell = Cell_msg of string | Cell_sig of int  (* index into the pending batch *)

(* Flush once this many signature checks are queued; bounds both the
   placeholder scan and the batch array. *)
let sig_batch_cap = 512

type syn_stream = {
  ss_node : string;
  ss_peer_certs : (string * Avm_crypto.Identity.certificate) list;
  ss_ack_grace : int;
  ss_auth_by_seq : (int, Auth.t) Hashtbl.t;
  mutable ss_failures : syn_cell list; (* newest first *)
  mutable ss_nfail : int; (* resolved failures only *)
  mutable ss_entries_checked : int;
  mutable ss_auths_matched : int;
  mutable ss_recv_sigs : int;
  (* Deferred RECV signature checks: (seq, cert, body, signature),
     newest first, batched through [Identity.verify_batch]. *)
  mutable ss_sig_pending : (int * Avm_crypto.Identity.certificate * string * string) list;
  mutable ss_sig_npending : int;
  (* Hash-chain state; only the first break is reported, matching
     [Log.verify_segment]. *)
  mutable ss_prev : string;
  mutable ss_expected_seq : int;
  mutable ss_chain_broken : bool;
  (* Cross-reference and acknowledgement state. *)
  mutable ss_first_seq : int;
  mutable ss_last_seq : int;
  ss_recv_seqs : (int, unit) Hashtbl.t;
  ss_acked : (int, unit) Hashtbl.t;
  mutable ss_pending_sends : int list;
}

let syn_fail s fmt =
  Printf.ksprintf
    (fun m ->
      s.ss_failures <- Cell_msg m :: s.ss_failures;
      s.ss_nfail <- s.ss_nfail + 1)
    fmt

(* Resolve every queued signature check: one batched verification,
   then placeholders collapse in place. *)
let syn_flush s =
  if s.ss_sig_npending > 0 then begin
    let pending = Array.of_list (List.rev s.ss_sig_pending) in
    s.ss_sig_pending <- [];
    s.ss_sig_npending <- 0;
    let verdicts =
      Avm_crypto.Identity.verify_batch
        (Array.map (fun (_, cert, body, signature) -> (cert, body, signature)) pending)
    in
    s.ss_failures <-
      List.filter_map
        (function
          | Cell_msg _ as c -> Some c
          | Cell_sig i ->
            if verdicts.(i) then begin
              s.ss_recv_sigs <- s.ss_recv_sigs + 1;
              None
            end
            else begin
              let seq, _, _, _ = pending.(i) in
              s.ss_nfail <- s.ss_nfail + 1;
              Some (Cell_msg (Printf.sprintf "entry #%d: forged RECV — sender signature invalid" seq))
            end)
        s.ss_failures
  end

let syn_stream ~ctx:{ node_cert; peer_certs; auths; ack_grace } ~prev_hash =
  let s =
    {
      ss_node = Avm_crypto.Identity.cert_name node_cert;
      ss_peer_certs = peer_certs;
      ss_ack_grace = ack_grace;
      ss_auth_by_seq = Hashtbl.create 256;
      ss_failures = [];
      ss_nfail = 0;
      ss_entries_checked = 0;
      ss_auths_matched = 0;
      ss_recv_sigs = 0;
      ss_sig_pending = [];
      ss_sig_npending = 0;
      ss_prev = prev_hash;
      ss_expected_seq = -1;
      ss_chain_broken = false;
      ss_first_seq = -1;
      ss_last_seq = 0;
      ss_recv_seqs = Hashtbl.create 256;
      ss_acked = Hashtbl.create 64;
      ss_pending_sends = [];
    }
  in
  (* Authenticators: verify signatures — batched, they share the one
     node key — and index by seq (not a pass over the entry stream). *)
  let mine = Array.of_list (List.filter (fun (a : Auth.t) -> String.equal a.node s.ss_node) auths) in
  let verdicts = Auth.verify_batch (Array.map (fun a -> (node_cert, a)) mine) in
  Array.iteri
    (fun i (a : Auth.t) ->
      if verdicts.(i) then Hashtbl.add s.ss_auth_by_seq a.seq a
      else syn_fail s "authenticator #%d: bad signature or inconsistent hash" a.seq)
    mine;
  s

(* [hash_derived] marks entries whose [hash] field was recomputed from
   the running chain at inflation ([Log.chunk_spec.spec_derived]): the
   per-entry digest comparison is a tautology there and is skipped;
   every other check, including the sequence-gap check, still runs. *)
let syn_push_gen ~hash_derived s (e : Entry.t) =
  s.ss_entries_checked <- s.ss_entries_checked + 1;
  if s.ss_first_seq < 0 then s.ss_first_seq <- e.seq;
  s.ss_last_seq <- e.seq;
  (* 1. Hash chain. *)
  if not s.ss_chain_broken then begin
    if s.ss_expected_seq >= 0 && e.seq <> s.ss_expected_seq then begin
      s.ss_chain_broken <- true;
      syn_fail s "chain: sequence gap: expected %d, found %d" s.ss_expected_seq e.seq
    end
    else if (not hash_derived) && not (Entry.chain_ok ~prev:s.ss_prev e) then begin
      s.ss_chain_broken <- true;
      syn_fail s "chain: hash chain broken at entry %d" e.seq
    end
  end;
  s.ss_prev <- e.hash;
  s.ss_expected_seq <- e.seq + 1;
  (* 2. Collected authenticators must match the log. *)
  List.iter
    (fun (a : Auth.t) ->
      if Auth.matches_entry a e then s.ss_auths_matched <- s.ss_auths_matched + 1
      else syn_fail s "authenticator #%d does not match the log (forked or rewritten log)" a.seq)
    (Hashtbl.find_all s.ss_auth_by_seq e.seq);
  match e.content with
  (* 3. RECV sender signatures, deferred into the signature batch. *)
  | Entry.Recv { src; nonce; payload; signature } ->
    Hashtbl.replace s.ss_recv_seqs e.seq ();
    if signature <> "" then begin
      match List.assoc_opt src s.ss_peer_certs with
      | None -> syn_fail s "entry #%d: no certificate for sender %s" e.seq src
      | Some cert ->
        let body = Wireformat.message_body ~src ~dest:s.ss_node ~nonce ~payload in
        s.ss_failures <- Cell_sig s.ss_sig_npending :: s.ss_failures;
        s.ss_sig_pending <- (e.seq, cert, body, signature) :: s.ss_sig_pending;
        s.ss_sig_npending <- s.ss_sig_npending + 1;
        if s.ss_sig_npending >= sig_batch_cap then syn_flush s
    end
  (* 4. Send acknowledgement bookkeeping, settled at end of stream. *)
  | Entry.Ack { acked_seq; _ } -> Hashtbl.replace s.ss_acked acked_seq ()
  | Entry.Send _ -> s.ss_pending_sends <- e.seq :: s.ss_pending_sends
  (* 5. Input-stream references into the message stream are sane. *)
  | Entry.Exec (Avm_machine.Event.Io_in { msg; _ }) when msg >= 0 ->
    if msg >= e.seq then syn_fail s "entry #%d: rx read references future entry %d" e.seq msg
    else if msg >= s.ss_first_seq && not (Hashtbl.mem s.ss_recv_seqs msg) then
      syn_fail s "entry #%d: rx read references non-RECV entry %d" e.seq msg
    (* references before this segment are validated by earlier audits *)
  | _ -> ()

let syn_push s e = syn_push_gen ~hash_derived:false s e

let syn_failure_count s =
  syn_flush s;
  s.ss_nfail

let cell_msg = function Cell_msg m -> m | Cell_sig _ -> assert false (* flushed *)

let syn_failures s =
  syn_flush s;
  List.rev_map cell_msg s.ss_failures

let syn_report s =
  syn_flush s;
  {
    entries_checked = s.ss_entries_checked;
    auths_matched = s.ss_auths_matched;
    recv_signatures_verified = s.ss_recv_sigs;
    failures = List.rev_map cell_msg s.ss_failures;
  }

let syn_finish s =
  syn_flush s;
  (* Every send acknowledged, modulo the in-flight tail. *)
  List.iter
    (fun seq ->
      if seq <= s.ss_last_seq - s.ss_ack_grace && not (Hashtbl.mem s.ss_acked seq) then
        syn_fail s "entry #%d: SEND was never acknowledged" seq)
    (List.sort compare s.ss_pending_sends);
  let report = syn_report s in
  record_syntactic_metrics report;
  report

let syntactic_feed ~ctx ~prev_hash ~feed () =
  let s = syn_stream ~ctx ~prev_hash in
  feed (syn_push s);
  syn_finish s

(* --- parallel syntactic check ------------------------------------------- *)

module Pool = Avm_util.Domain_pool

(* The parallel pass splits the entry stream into chunks that workers
   check independently, then stitches the per-chunk results back
   together sequentially. Everything order- or history-sensitive is
   carried as an *event*, replayed at stitch time in exact log order,
   so the stitched report is bit-identical to the streaming fold's:

   - [Ev_fail] is a finished failure message at its entry position.
   - [Ev_chain] is a chain failure; the stitcher drops it when an
     earlier chunk already broke, reproducing the single global
     "first break only" flag. A worker can evaluate the chain checks
     of a later chunk without knowing whether an earlier one broke,
     because the sequential fold advances [prev]/[expected] from the
     *stored* hashes regardless of validity — its state at a chunk
     boundary is exactly the segment index's [prev_hash]/[from].
   - [Ev_recv]/[Ev_xref] defer the "rx read references non-RECV
     entry" membership test: the stitcher grows the recv-seq table in
     event order and resolves each cross-reference against precisely
     the RECVs the sequential fold would have seen at that point. *)
type syn_event =
  | Ev_fail of string
  | Ev_chain of string
  | Ev_recv of int
  | Ev_xref of int * int  (* (entry seq, referenced msg seq) *)

type syn_chunk = {
  sc_prev_hash : string;  (* chain hash just before the chunk *)
  sc_expected_first : int;  (* expected first seq; -1 = no check (first chunk) *)
  sc_derived : bool;  (* entry hashes recomputed at inflation (Log.spec_derived) *)
  sc_load : unit -> Entry.t list;
}

type chunk_pass = {
  cp_events : syn_event list;  (* entry order *)
  cp_sends : int list;
  cp_acked : int list;
  cp_entries : int;
  cp_auths : int;
  cp_recv_sigs : int;
  cp_broke : bool;
  cp_last : int;  (* seq of the chunk's last entry *)
}

(* A chunk-pass event cell: a finished event or a deferred RECV
   signature check, resolved by one batched verification at the end of
   the chunk — the chunk-local form of [syn_cell]. *)
type chunk_cell = C_ev of syn_event | C_sig of int

(* One worker's pass over one chunk: the same five checks as
   [syntactic_feed], emitting events instead of final failures. With
   [derived] (compressed-backed chunk) the per-entry hash comparison is
   skipped except on the first entry, which still ties the chunk to the
   chain hash carried in from outside the inflation. *)
let run_chunk_pass ~node ~peer_certs ~auth_by_seq ~first_seq ~prev_hash ~expected_first
    ~derived entries =
  let cells = ref [] in
  let ev e = cells := C_ev e :: !cells in
  let failf fmt = Printf.ksprintf (fun m -> ev (Ev_fail m)) fmt in
  let sig_pending = ref [] in
  let sig_npending = ref 0 in
  let entries_checked = ref 0 in
  let auths_matched = ref 0 in
  let recv_sigs = ref 0 in
  let prev = ref prev_hash in
  let expected_seq = ref expected_first in
  let chain_broken = ref false in
  let sends = ref [] in
  let acked = ref [] in
  let last_seq = ref 0 in
  List.iter
    (fun (e : Entry.t) ->
      let first_entry = !entries_checked = 0 in
      incr entries_checked;
      last_seq := e.seq;
      if not !chain_broken then begin
        if !expected_seq >= 0 && e.seq <> !expected_seq then begin
          chain_broken := true;
          ev
            (Ev_chain
               (Printf.sprintf "chain: sequence gap: expected %d, found %d" !expected_seq
                  e.seq))
        end
        else if
          ((not derived) || first_entry) && not (Entry.chain_ok ~prev:!prev e)
        then begin
          chain_broken := true;
          ev (Ev_chain (Printf.sprintf "chain: hash chain broken at entry %d" e.seq))
        end
      end;
      prev := e.hash;
      expected_seq := e.seq + 1;
      List.iter
        (fun (a : Auth.t) ->
          if Auth.matches_entry a e then incr auths_matched
          else
            failf "authenticator #%d does not match the log (forked or rewritten log)"
              a.seq)
        (Hashtbl.find_all auth_by_seq e.seq);
      match e.content with
      | Entry.Recv { src; nonce; payload; signature } ->
        ev (Ev_recv e.seq);
        if signature <> "" then begin
          match List.assoc_opt src peer_certs with
          | None -> failf "entry #%d: no certificate for sender %s" e.seq src
          | Some cert ->
            let body = Wireformat.message_body ~src ~dest:node ~nonce ~payload in
            cells := C_sig !sig_npending :: !cells;
            sig_pending := (e.seq, cert, body, signature) :: !sig_pending;
            incr sig_npending
        end
      | Entry.Ack { acked_seq; _ } -> acked := acked_seq :: !acked
      | Entry.Send _ -> sends := e.seq :: !sends
      | Entry.Exec (Avm_machine.Event.Io_in { msg; _ }) when msg >= 0 ->
        if msg >= e.seq then failf "entry #%d: rx read references future entry %d" e.seq msg
        else if msg >= first_seq then ev (Ev_xref (e.seq, msg))
      | _ -> ())
    entries;
  (* Resolve the chunk's deferred signature checks in one batch. *)
  let pending = Array.of_list (List.rev !sig_pending) in
  let verdicts =
    Avm_crypto.Identity.verify_batch
      (Array.map (fun (_, cert, body, signature) -> (cert, body, signature)) pending)
  in
  let events =
    List.fold_left
      (fun acc cell ->
        match cell with
        | C_ev e -> e :: acc
        | C_sig i ->
          if verdicts.(i) then begin
            incr recv_sigs;
            acc
          end
          else begin
            let seq, _, _, _ = pending.(i) in
            Ev_fail (Printf.sprintf "entry #%d: forged RECV — sender signature invalid" seq)
            :: acc
          end)
      [] !cells
  in
  {
    cp_events = events;
    cp_sends = !sends;
    cp_acked = !acked;
    cp_entries = !entries_checked;
    cp_auths = !auths_matched;
    cp_recv_sigs = !recv_sigs;
    cp_broke = !chain_broken;
    cp_last = !last_seq;
  }

(* Split [xs] into at most [n] contiguous slices, preserving order. *)
let slice_list n xs =
  let len = List.length xs in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let per = (len + n - 1) / n in
    let rec go i acc cur = function
      | [] -> List.rev (List.rev cur :: acc)
      | x :: rest ->
        if i = per then go 1 (List.rev cur :: acc) [ x ] rest
        else go (i + 1) acc (x :: cur) rest
    in
    go 0 [] [] xs
  end

(* Authenticator signature checks are embarrassingly parallel; slice
   order is preserved so both the failure list and the [Hashtbl.add]
   order (which [find_all] reflects) match the sequential pre-pass.
   Within a slice the signatures go through one batched verification —
   they all share the node key. *)
let verify_auth_slice ~node ~node_cert slice =
  let mine = Array.of_list (List.filter (fun (a : Auth.t) -> String.equal a.node node) slice) in
  let verdicts = Auth.verify_batch (Array.map (fun a -> (node_cert, a)) mine) in
  let oks = ref [] in
  let fails = ref [] in
  Array.iteri
    (fun i (a : Auth.t) ->
      if verdicts.(i) then oks := a :: !oks
      else
        fails :=
          Printf.sprintf "authenticator #%d: bad signature or inconsistent hash" a.seq
          :: !fails)
    mine;
  (List.rev !oks, List.rev !fails)

let stitch ~ack_grace ~auth_failures passes =
  let failures = ref [] in
  let push m = failures := m :: !failures in
  List.iter push auth_failures;
  let recv_seqs = Hashtbl.create 256 in
  let broke = ref false in
  List.iter
    (fun cp ->
      List.iter
        (function
          | Ev_fail m -> push m
          | Ev_chain m -> if not !broke then push m
          | Ev_recv s -> Hashtbl.replace recv_seqs s ()
          | Ev_xref (seq, msg) ->
            if not (Hashtbl.mem recv_seqs msg) then
              push (Printf.sprintf "entry #%d: rx read references non-RECV entry %d" seq msg))
        cp.cp_events;
      if cp.cp_broke then broke := true)
    passes;
  let acked = Hashtbl.create 64 in
  List.iter (fun cp -> List.iter (fun s -> Hashtbl.replace acked s ()) cp.cp_acked) passes;
  let last_seq = List.fold_left (fun _ cp -> cp.cp_last) 0 passes in
  List.iter
    (fun seq ->
      if seq <= last_seq - ack_grace && not (Hashtbl.mem acked seq) then
        push (Printf.sprintf "entry #%d: SEND was never acknowledged" seq))
    (List.sort compare (List.concat_map (fun cp -> cp.cp_sends) passes));
  let report =
    {
      entries_checked = List.fold_left (fun n cp -> n + cp.cp_entries) 0 passes;
      auths_matched = List.fold_left (fun n cp -> n + cp.cp_auths) 0 passes;
      recv_signatures_verified = List.fold_left (fun n cp -> n + cp.cp_recv_sigs) 0 passes;
      failures = List.rev !failures;
    }
  in
  record_syntactic_metrics report;
  report

let chunk_span i f =
  Trace.with_span ~name:"audit.chunk" ~attrs:[ ("chunk", string_of_int i) ] f

let syntactic_parallel ~pool ~node_cert ~peer_certs ~auths ~ack_grace ~first_seq chunks =
  let node = Avm_crypto.Identity.cert_name node_cert in
  let verified =
    Pool.map_list pool (verify_auth_slice ~node ~node_cert) (slice_list (Pool.jobs pool) auths)
  in
  let auth_by_seq = Hashtbl.create 256 in
  List.iter
    (fun (oks, _) -> List.iter (fun (a : Auth.t) -> Hashtbl.add auth_by_seq a.seq a) oks)
    verified;
  let auth_failures = List.concat_map snd verified in
  let passes =
    Pool.map_list pool
      (fun (i, c) ->
        chunk_span i (fun () ->
            run_chunk_pass ~node ~peer_certs ~auth_by_seq ~first_seq
              ~prev_hash:c.sc_prev_hash ~expected_first:c.sc_expected_first
              ~derived:c.sc_derived (c.sc_load ())))
      (List.mapi (fun i c -> (i, c)) chunks)
  in
  stitch ~ack_grace ~auth_failures passes

(* Chunking a materialized list: contiguous near-equal slices, several
   per pool lane so the work-stealing scheduler can rebalance uneven
   chunks (signature-dense slices take far longer than EXEC-dense
   ones); boundary state comes from the previous slice's last entry,
   exactly the values the sequential fold carries there. *)
let chunks_per_lane = 4

let list_chunks ~prev_hash ~lanes entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let pieces = max 1 (min (lanes * chunks_per_lane) n) in
  let per = (n + pieces - 1) / pieces in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let hi = min n (i + per) in
      let sub = Array.sub arr i (hi - i) in
      go hi
        ({
           sc_prev_hash = (if i = 0 then prev_hash else arr.(i - 1).Entry.hash);
           sc_expected_first = (if i = 0 then -1 else arr.(i - 1).Entry.seq + 1);
           sc_derived = false;
           sc_load = (fun () -> Array.to_list sub);
         }
        :: acc)
    end
  in
  go 0 []

(* Chunking a segment store: one chunk per sealed segment (tail last),
   straight off the index — compressed segments inflate inside the
   worker, through the per-domain cache. *)
let log_chunks log ~from ~upto =
  List.map
    (fun (s : Log.chunk_spec) ->
      {
        sc_prev_hash = s.Log.spec_prev_hash;
        sc_expected_first = (if s.Log.spec_from <= from then -1 else s.Log.spec_from);
        sc_derived = s.Log.spec_derived;
        sc_load = s.Log.spec_load;
      })
    (Log.chunk_specs log ~from ~upto)

let syntactic ~ctx ~prev_hash ~entries ?par () =
  let sequential () =
    chunk_span 0 (fun () ->
        syntactic_feed ~ctx ~prev_hash ~feed:(fun f -> List.iter f entries) ())
  in
  Audit_ctx.with_parallelism ?par (fun p ->
      match p with
      | Some pool -> (
        match list_chunks ~prev_hash ~lanes:(Pool.jobs pool) entries with
        | [] | [ _ ] -> sequential ()
        | chunks ->
          syntactic_parallel ~pool ~node_cert:ctx.node_cert ~peer_certs:ctx.peer_certs
            ~auths:ctx.auths ~ack_grace:ctx.ack_grace
            ~first_seq:(List.hd entries).Entry.seq chunks)
      | None -> sequential ())

let syntactic_of_log ~ctx ~log ?(from = 1) ?upto ?par () =
  let upto = match upto with Some u -> u | None -> Log.length log in
  (* The sequential stream walks the same per-segment chunk specs the
     parallel pass fans out over (their concatenation is exactly
     [iter_range from..upto]), so both paths record one [audit.chunk]
     span per sealed segment. A derived (compressed-backed) chunk only
     pays the full hash check on its first entry — the link into the
     chunk — because inflation recomputed every hash inside it from
     that same chain. *)
  let sequential () =
    let st = syn_stream ~ctx ~prev_hash:(Log.prev_hash log from) in
    List.iteri
      (fun i (spec : Log.chunk_spec) ->
        chunk_span i (fun () ->
            let first = ref true in
            List.iter
              (fun e ->
                if !first || not spec.Log.spec_derived then begin
                  first := false;
                  syn_push st e
                end
                else syn_push_gen ~hash_derived:true st e)
              (spec.Log.spec_load ())))
      (Log.chunk_specs log ~from ~upto);
    syn_finish st
  in
  Audit_ctx.with_parallelism ?par (fun p ->
      match p with
      | Some pool -> (
        match log_chunks log ~from ~upto with
        | [] | [ _ ] -> sequential ()
        | chunks ->
          syntactic_parallel ~pool ~node_cert:ctx.node_cert ~peer_certs:ctx.peer_certs
            ~auths:ctx.auths ~ack_grace:ctx.ack_grace ~first_seq:(max 1 from) chunks)
      | None -> sequential ())

(* --- the unified outcome ------------------------------------------------- *)

type outcome = {
  node : string;
  syntactic : syntactic_report;
  semantic : Replay.outcome option;
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict : (unit, string) result;
  evidence : Evidence.t option;
}

(* Shared tail of [full] / [full_of_log]: run the semantic check only
   if the syntactic check passed (a broken chain is already evidence),
   and package the evidence on any fault. [segment] materializes the
   accused entries lazily — a log-backed audit inflates them only when
   it actually has an accusation to ship. *)
let conclude ~(ctx : ctx) ~syn ~prev_hash ~segment ~t0 ~t1 ~semantic =
  let node = Avm_crypto.Identity.cert_name ctx.node_cert in
  let evidence accusation =
    Some
      {
        Evidence.accused = node;
        prev_hash;
        segment = segment ();
        auths = ctx.auths;
        accusation;
      }
  in
  Metrics.observe "audit.syntactic_seconds" (t1 -. t0);
  if syn.failures <> [] then begin
    let reason = String.concat "; " syn.failures in
    Metrics.incr "audit.verdicts_faulty";
    {
      node;
      syntactic = syn;
      semantic = None;
      syntactic_seconds = t1 -. t0;
      semantic_seconds = 0.0;
      verdict = Error reason;
      evidence = evidence (Evidence.Tampered_log { reason });
    }
  end
  else begin
    let outcome = Trace.with_span ~name:"audit.semantic" semantic in
    let t2 = Clock.now_s () in
    Metrics.observe "audit.semantic_seconds" (t2 -. t1);
    let semantic_seconds = t2 -. t1 in
    match outcome with
    | Replay.Verified _ ->
      Metrics.incr "audit.verdicts_correct";
      {
        node;
        syntactic = syn;
        semantic = Some outcome;
        syntactic_seconds = t1 -. t0;
        semantic_seconds;
        verdict = Ok ();
        evidence = None;
      }
    | Replay.Diverged d ->
      Metrics.incr "audit.verdicts_faulty";
      {
        node;
        syntactic = syn;
        semantic = Some outcome;
        syntactic_seconds = t1 -. t0;
        semantic_seconds;
        verdict = Error (Format.asprintf "%a" Replay.pp_outcome (Replay.Diverged d));
        evidence = evidence (Evidence.Replay_divergence d);
      }
  end

let full ~ctx ~image ?mem_words ?start ?fuel ~peers ?cache ~prev_hash ~entries ?par () =
  Audit_ctx.with_parallelism ?par (fun p ->
      let par = { jobs = 1; pool = p } in
      let t0 = Clock.now_s () in
      let syn =
        Trace.with_span ~name:"audit.syntactic" (fun () ->
            syntactic ~ctx ~prev_hash ~entries ~par ())
      in
      let t1 = Clock.now_s () in
      conclude ~ctx ~syn ~prev_hash
        ~segment:(fun () -> entries)
        ~t0 ~t1
        ~semantic:(fun () ->
          Replay.replay ~image ?mem_words ?start ?fuel ~peers ?cache ~entries ()))

let full_of_log ~ctx ~image ?mem_words ?start ?fuel ~peers ?cache ~log ?(from = 1) ?upto
    ?snapshots ?par () =
  let upto = match upto with Some u -> u | None -> Log.length log in
  Audit_ctx.with_parallelism ?par (fun p ->
      let par = { jobs = 1; pool = p } in
      let t0 = Clock.now_s () in
      let syn =
        Trace.with_span ~name:"audit.syntactic" (fun () ->
            syntactic_of_log ~ctx ~log ~from ~upto ~par ())
      in
      let t1 = Clock.now_s () in
      (* The semantic pass partitions at snapshot boundaries only when
         it owns the whole run: a caller-supplied start state or a
         partial range keeps the plain streaming replay. *)
      let semantic () =
        match (p, snapshots, start) with
        | Some pool, Some snaps, None when from = 1 ->
          Spot_check.parallel_replay ~par:{ jobs = Pool.jobs pool; pool = Some pool } ?cache
            ~image ?mem_words ?fuel ~snapshots:snaps ~log ~peers ~upto ()
        | _ ->
          Replay.replay_chunks ~image ?mem_words ?start ?fuel ~peers ?cache
            ~chunks:(Log.chunk_seq log ~from ~upto) ()
      in
      conclude ~ctx ~syn
        ~prev_hash:(Log.prev_hash log from)
        ~segment:(fun () -> Log.segment log ~from ~upto)
        ~t0 ~t1 ~semantic)

let check_evidence (ev : Evidence.t) ~ctx ~image ?mem_words ?start ?fuel ~peers () =
  if not (String.equal (Avm_crypto.Identity.cert_name ctx.node_cert) ev.accused) then false
  else begin
    match ev.accusation with
    | Evidence.Unanswered_challenge { auth } ->
      (* The authenticator proves entries up to [auth.seq] exist; that
         is all a third party can verify offline. *)
      Auth.verify ctx.node_cert auth
    | Evidence.Equivocation { a; b } ->
      (* Pure two-signature proof: no log, no replay. Both
         authenticators must be genuine commitments by the accused at
         the same seq with different hashes; anything less (one bad
         signature, a name mismatch, equal hashes) proves nothing. *)
      String.equal a.Auth.node ev.accused
      && Auth.conflicts a b
      && Auth.verify ctx.node_cert a
      && Auth.verify ctx.node_cert b
    | Evidence.Tampered_log _ | Evidence.Replay_divergence _ -> (
      let ctx = { ctx with auths = ev.auths } in
      let o =
        full ~ctx ~image ?mem_words ?start ?fuel ~peers ~prev_hash:ev.prev_hash
          ~entries:ev.segment ()
      in
      match o.verdict with Ok () -> false | Error _ -> true)
  end

let pp_outcome fmt r =
  Format.fprintf fmt "@[<v>audit of %s:@ syntactic: %d entries, %d auths, %d recv sigs — %s@ "
    r.node r.syntactic.entries_checked r.syntactic.auths_matched
    r.syntactic.recv_signatures_verified
    (if r.syntactic.failures = [] then "PASS"
     else "FAIL: " ^ String.concat "; " r.syntactic.failures);
  (match r.semantic with
  | None -> Format.fprintf fmt "semantic: skipped@ "
  | Some o -> Format.fprintf fmt "semantic: %a@ " Replay.pp_outcome o);
  Format.fprintf fmt "verdict: %s@]"
    (match r.verdict with Ok () -> "CORRECT" | Error e -> "FAULTY (" ^ e ^ ")")
