open Avm_tamperlog

type syntactic_report = {
  entries_checked : int;
  auths_matched : int;
  recv_signatures_verified : int;
  failures : string list;
}

(* The syntactic check as a single streaming fold: [feed] pushes every
   entry of the segment exactly once, in log order, and all five checks
   (hash chain, authenticator matching, RECV sender signatures, send
   acknowledgement, input-stream cross-references) run against that one
   pass. Only the collected authenticators — a set far smaller than the
   log — are pre-indexed up front; obligations that can only be settled
   once the cut point is known (unacked sends) are resolved at end of
   stream. *)
let syntactic_feed ~node_cert ~peer_certs ~prev_hash ~feed ~auths ?(ack_grace = 50) () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let node = Avm_crypto.Identity.cert_name node_cert in
  (* Authenticators: verify signatures and index by seq (not a pass
     over the entry stream). *)
  let auth_by_seq = Hashtbl.create 256 in
  List.iter
    (fun (a : Auth.t) ->
      if String.equal a.node node then begin
        if not (Auth.verify node_cert a) then
          fail "authenticator #%d: bad signature or inconsistent hash" a.seq
        else Hashtbl.add auth_by_seq a.seq a
      end)
    auths;
  let entries_checked = ref 0 in
  let auths_matched = ref 0 in
  let recv_sigs = ref 0 in
  (* Hash-chain state; only the first break is reported, matching
     [Log.verify_segment]. *)
  let prev = ref prev_hash in
  let expected_seq = ref (-1) in
  let chain_broken = ref false in
  (* Cross-reference and acknowledgement state. *)
  let first_seq = ref (-1) in
  let last_seq = ref 0 in
  let recv_seqs = Hashtbl.create 256 in
  let acked = Hashtbl.create 64 in
  let pending_sends = ref [] in
  let on_entry (e : Entry.t) =
    incr entries_checked;
    if !first_seq < 0 then first_seq := e.seq;
    last_seq := e.seq;
    (* 1. Hash chain. *)
    if not !chain_broken then begin
      if !expected_seq >= 0 && e.seq <> !expected_seq then begin
        chain_broken := true;
        fail "chain: sequence gap: expected %d, found %d" !expected_seq e.seq
      end
      else if
        not (String.equal (Entry.chain_hash ~prev:!prev ~seq:e.seq e.content) e.hash)
      then begin
        chain_broken := true;
        fail "chain: hash chain broken at entry %d" e.seq
      end
    end;
    prev := e.hash;
    expected_seq := e.seq + 1;
    (* 2. Collected authenticators must match the log. *)
    List.iter
      (fun (a : Auth.t) ->
        if Auth.matches_entry a e then incr auths_matched
        else fail "authenticator #%d does not match the log (forked or rewritten log)" a.seq)
      (Hashtbl.find_all auth_by_seq e.seq);
    match e.content with
    (* 3. RECV sender signatures. *)
    | Entry.Recv { src; nonce; payload; signature } ->
      Hashtbl.replace recv_seqs e.seq ();
      if signature <> "" then begin
        match List.assoc_opt src peer_certs with
        | None -> fail "entry #%d: no certificate for sender %s" e.seq src
        | Some cert ->
          let body = Wireformat.message_body ~src ~dest:node ~nonce ~payload in
          if Avm_crypto.Identity.verify cert ~msg:body ~signature then incr recv_sigs
          else fail "entry #%d: forged RECV — sender signature invalid" e.seq
      end
    (* 4. Send acknowledgement bookkeeping, settled at end of stream. *)
    | Entry.Ack { acked_seq; _ } -> Hashtbl.replace acked acked_seq ()
    | Entry.Send _ -> pending_sends := e.seq :: !pending_sends
    (* 5. Input-stream references into the message stream are sane. *)
    | Entry.Exec (Avm_machine.Event.Io_in { msg; _ }) when msg >= 0 ->
      if msg >= e.seq then fail "entry #%d: rx read references future entry %d" e.seq msg
      else if msg >= !first_seq && not (Hashtbl.mem recv_seqs msg) then
        fail "entry #%d: rx read references non-RECV entry %d" e.seq msg
      (* references before this segment are validated by earlier audits *)
    | _ -> ()
  in
  feed on_entry;
  (* Every send acknowledged, modulo the in-flight tail. *)
  List.iter
    (fun seq ->
      if seq <= !last_seq - ack_grace && not (Hashtbl.mem acked seq) then
        fail "entry #%d: SEND was never acknowledged" seq)
    (List.sort compare !pending_sends);
  {
    entries_checked = !entries_checked;
    auths_matched = !auths_matched;
    recv_signatures_verified = !recv_sigs;
    failures = List.rev !failures;
  }

let syntactic ~node_cert ~peer_certs ~prev_hash ~entries ~auths ?ack_grace () =
  syntactic_feed ~node_cert ~peer_certs ~prev_hash
    ~feed:(fun f -> List.iter f entries)
    ~auths ?ack_grace ()

let syntactic_of_log ~node_cert ~peer_certs ~log ?(from = 1) ?upto ~auths ?ack_grace () =
  let upto = match upto with Some u -> u | None -> Log.length log in
  syntactic_feed ~node_cert ~peer_certs
    ~prev_hash:(Log.prev_hash log from)
    ~feed:(fun f -> Log.iter_range log ~from ~upto f)
    ~auths ?ack_grace ()

type report = {
  node : string;
  syntactic : syntactic_report;
  semantic : Replay.outcome option;
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict : (unit, string) result;
}

(* Shared tail of [full] / [full_of_log]: run the semantic check only
   if the syntactic check passed (a broken chain is already evidence). *)
let conclude ~node ~syn ~t0 ~t1 ~semantic =
  if syn.failures <> [] then
    {
      node;
      syntactic = syn;
      semantic = None;
      syntactic_seconds = t1 -. t0;
      semantic_seconds = 0.0;
      verdict = Error (String.concat "; " syn.failures);
    }
  else begin
    let outcome = semantic () in
    let t2 = Sys.time () in
    {
      node;
      syntactic = syn;
      semantic = Some outcome;
      syntactic_seconds = t1 -. t0;
      semantic_seconds = t2 -. t1;
      verdict =
        (match outcome with
        | Replay.Verified _ -> Ok ()
        | Replay.Diverged d -> Error (Format.asprintf "%a" Replay.pp_outcome (Replay.Diverged d)));
    }
  end

let full ~node_cert ~peer_certs ~image ?mem_words ?start ?fuel ~peers ~prev_hash ~entries
    ~auths () =
  let t0 = Sys.time () in
  let syn = syntactic ~node_cert ~peer_certs ~prev_hash ~entries ~auths () in
  let t1 = Sys.time () in
  conclude ~node:(Avm_crypto.Identity.cert_name node_cert) ~syn ~t0 ~t1 ~semantic:(fun () ->
      Replay.replay ~image ?mem_words ?start ?fuel ~peers ~entries ())

let full_of_log ~node_cert ~peer_certs ~image ?mem_words ?start ?fuel ~peers ~log ?(from = 1)
    ?upto ~auths () =
  let upto = match upto with Some u -> u | None -> Log.length log in
  let t0 = Sys.time () in
  let syn = syntactic_of_log ~node_cert ~peer_certs ~log ~from ~upto ~auths () in
  let t1 = Sys.time () in
  conclude ~node:(Avm_crypto.Identity.cert_name node_cert) ~syn ~t0 ~t1 ~semantic:(fun () ->
      Replay.replay_chunks ~image ?mem_words ?start ?fuel ~peers
        ~chunks:(Log.chunk_seq log ~from ~upto) ())

let pp_report fmt r =
  Format.fprintf fmt "@[<v>audit of %s:@ syntactic: %d entries, %d auths, %d recv sigs — %s@ "
    r.node r.syntactic.entries_checked r.syntactic.auths_matched
    r.syntactic.recv_signatures_verified
    (if r.syntactic.failures = [] then "PASS"
     else "FAIL: " ^ String.concat "; " r.syntactic.failures);
  (match r.semantic with
  | None -> Format.fprintf fmt "semantic: skipped@ "
  | Some o -> Format.fprintf fmt "semantic: %a@ " Replay.pp_outcome o);
  Format.fprintf fmt "verdict: %s@]"
    (match r.verdict with Ok () -> "CORRECT" | Error e -> "FAULTY (" ^ e ^ ")")
