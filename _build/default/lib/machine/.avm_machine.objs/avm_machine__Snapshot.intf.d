lib/machine/snapshot.mli: Avm_crypto Machine
