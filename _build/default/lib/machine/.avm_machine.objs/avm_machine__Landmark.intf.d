lib/machine/landmark.mli: Avm_util Format
