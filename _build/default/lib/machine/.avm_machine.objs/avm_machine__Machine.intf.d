lib/machine/machine.mli: Avm_isa Landmark Memory
