lib/machine/partial_state.mli: Avm_crypto Machine
