lib/machine/memory.mli:
