lib/machine/snapshot.ml: Array Avm_crypto Avm_util List Machine Memory String Wire
