lib/machine/partial_state.ml: Avm_crypto Avm_util List Machine Memory Snapshot String Wire
