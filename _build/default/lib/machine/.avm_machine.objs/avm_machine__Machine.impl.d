lib/machine/machine.ml: Array Avm_isa Avm_util Hashtbl Isa Landmark List Memory Printf String Wire
