lib/machine/event.ml: Avm_isa Avm_util Format Landmark Printf
