lib/machine/memory.ml: Array Char String
