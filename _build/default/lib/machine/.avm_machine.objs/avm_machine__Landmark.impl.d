lib/machine/landmark.ml: Avm_util Format Stdlib
