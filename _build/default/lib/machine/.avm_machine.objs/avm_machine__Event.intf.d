lib/machine/event.mli: Avm_util Format Landmark
