(** Execution landmarks: the exact position of an asynchronous event.

    Wall-clock time cannot time interrupt injection precisely, so the
    paper's AVMM uses the instruction pointer plus a branch counter
    (§4.4, after ReVirt). We record all three of instruction count,
    pc and taken-branch count: the instruction count pinpoints the
    injection during replay, and the (pc, branches) pair is
    cross-checked at that point — any mismatch means the replayed
    execution already diverged from the recorded one. *)

type t = { icount : int; pc : int; branches : int }

val compare : t -> t -> int
(** Ordered by [icount]. *)

val equal : t -> t -> bool
val write : Avm_util.Wire.writer -> t -> unit
val read : Avm_util.Wire.reader -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
