type page = { index : int; data : string; proof : Avm_crypto.Merkle.proof }

type t = { root : string; page_count : int; meta : string; pages : page list }

let extract machine ~pages =
  let mem = Machine.mem machine in
  let n = Memory.page_count mem in
  let tree = Snapshot.merkle_of_machine machine in
  let wanted = List.sort_uniq compare (List.filter (fun p -> p >= 0 && p < n) pages) in
  {
    root = Avm_crypto.Merkle.root tree;
    page_count = n;
    meta = Machine.serialize_meta machine;
    pages =
      List.map
        (fun index ->
          { index; data = Memory.page_data mem index; proof = Avm_crypto.Merkle.prove tree index })
        wanted;
  }

let verify t ~expected_root =
  String.equal t.root expected_root
  && List.for_all
       (fun p ->
         p.proof.Avm_crypto.Merkle.index = p.index
         && Avm_crypto.Merkle.verify_proof ~root:expected_root ~leaf_count:t.page_count
              ~leaf:p.data p.proof)
       t.pages

let write_proof w (p : Avm_crypto.Merkle.proof) =
  Avm_util.Wire.varint w p.Avm_crypto.Merkle.index;
  Avm_util.Wire.list w (fun w h -> Avm_util.Wire.bytes w h) p.Avm_crypto.Merkle.path

let read_proof r =
  let index = Avm_util.Wire.read_varint r in
  let path = Avm_util.Wire.read_list r Avm_util.Wire.read_bytes in
  { Avm_crypto.Merkle.index; path }

let encode t =
  let open Avm_util in
  let w = Wire.writer () in
  Wire.bytes w t.root;
  Wire.varint w t.page_count;
  Wire.bytes w t.meta;
  Wire.list w
    (fun w p ->
      Wire.varint w p.index;
      Wire.bytes w p.data;
      write_proof w p.proof)
    t.pages;
  Wire.contents w

let decode s =
  let open Avm_util in
  let r = Wire.reader s in
  let root = Wire.read_bytes r in
  let page_count = Wire.read_varint r in
  let meta = Wire.read_bytes r in
  let pages =
    Wire.read_list r (fun r ->
        let index = Wire.read_varint r in
        let data = Wire.read_bytes r in
        let proof = read_proof r in
        { index; data; proof })
  in
  Wire.expect_end r;
  { root; page_count; meta; pages }

let disclosed_bytes t = String.length (encode t)
