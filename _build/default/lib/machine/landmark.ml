type t = { icount : int; pc : int; branches : int }

let compare a b = Stdlib.compare a.icount b.icount
let equal a b = a.icount = b.icount && a.pc = b.pc && a.branches = b.branches

let write w t =
  Avm_util.Wire.varint w t.icount;
  Avm_util.Wire.varint w t.pc;
  Avm_util.Wire.varint w t.branches

let read r =
  let icount = Avm_util.Wire.read_varint r in
  let pc = Avm_util.Wire.read_varint r in
  let branches = Avm_util.Wire.read_varint r in
  { icount; pc; branches }

let pp fmt t = Format.fprintf fmt "@[<h>i=%d pc=0x%x br=%d@]" t.icount t.pc t.branches
let to_string t = Format.asprintf "%a" pp t
