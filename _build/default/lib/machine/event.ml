type t =
  | Io_in of { port : int; value : int; msg : int }
  | Irq of { landmark : Landmark.t; line : int }

let write w = function
  | Io_in { port; value; msg } ->
    Avm_util.Wire.u8 w 0;
    Avm_util.Wire.varint w port;
    Avm_util.Wire.u32 w value;
    Avm_util.Wire.varint w (msg + 1)
  | Irq { landmark; line } ->
    Avm_util.Wire.u8 w 1;
    Landmark.write w landmark;
    Avm_util.Wire.varint w line

let read r =
  match Avm_util.Wire.read_u8 r with
  | 0 ->
    let port = Avm_util.Wire.read_varint r in
    let value = Avm_util.Wire.read_u32 r in
    let msg = Avm_util.Wire.read_varint r - 1 in
    Io_in { port; value; msg }
  | 1 ->
    let landmark = Landmark.read r in
    let line = Avm_util.Wire.read_varint r in
    Irq { landmark; line }
  | n -> raise (Avm_util.Wire.Malformed (Printf.sprintf "bad event tag %d" n))

let encode t =
  let w = Avm_util.Wire.writer () in
  write w t;
  Avm_util.Wire.contents w

let decode s =
  let r = Avm_util.Wire.reader s in
  let t = read r in
  Avm_util.Wire.expect_end r;
  t

let pp fmt = function
  | Io_in { port; value; msg } ->
    Format.fprintf fmt "@[<h>in %s = %d%s@]" (Avm_isa.Isa.port_name port) value
      (if msg >= 0 then Printf.sprintf " (msg %d)" msg else "")
  | Irq { landmark; line } ->
    Format.fprintf fmt "@[<h>irq %d @@ %a@]" line Landmark.pp landmark

let equal a b =
  match (a, b) with
  | Io_in x, Io_in y -> x.port = y.port && x.value = y.value && x.msg = y.msg
  | Irq x, Irq y -> x.line = y.line && Landmark.equal x.landmark y.landmark
  | Io_in _, Irq _ | Irq _, Io_in _ -> false
