(** Word-addressed guest memory with per-page dirty tracking.

    Pages are {!page_size} words. Dirty bits drive incremental
    snapshots ({!Snapshot}) and per-page hash caching: only pages
    written since the last snapshot are re-serialized and re-hashed. *)

type t

val page_size : int
(** 256 words (1 KiB). *)

val create : words:int -> t
(** Zero-filled memory of at least [words] words (rounded up to whole
    pages). *)

val size : t -> int
(** Capacity in words. *)

val page_count : t -> int

exception Fault of int
(** Out-of-range access; carries the offending address. *)

val read : t -> int -> int
(** [read m addr] is the 32-bit word at [addr].
    @raise Fault when out of range. *)

val write : t -> int -> int -> unit
(** [write m addr v] stores the low 32 bits of [v], marking the page
    dirty.
    @raise Fault when out of range. *)

val load_image : t -> int array -> unit
(** [load_image m words] copies a program image to address 0.
    @raise Fault if the image does not fit. *)

val page_data : t -> int -> string
(** [page_data m p] serializes page [p] (little-endian words). *)

val set_page_data : t -> int -> string -> unit
(** Inverse of {!page_data}; marks the page dirty.
    @raise Invalid_argument on wrong length. *)

val dirty_pages : t -> int list
(** Pages written since the last {!clear_dirty}, ascending. *)

val clear_dirty : t -> unit

val copy : t -> t
(** Deep copy (dirty bits included; the watch hook is not copied). *)

val set_watch : t -> (int -> old:int -> value:int -> unit) option -> unit
(** [set_watch m hook] installs (or clears) a write observer, invoked
    on every {!write} with the address, previous and new value. Used
    by replay-time analyses ({!Avm_analysis.Watchpoints}); costs one
    branch per write when unset. *)
