(** Partial, authenticated state transfer (paper §4.4 and §7.3).

    "When Alice audits a log segment, she can either download an entire
    snapshot or incrementally request the parts of the state that are
    accessed during replay. In either case, she can use the hash tree
    to authenticate the state she has downloaded." And for privacy:
    "Alice can use the hash tree to remove any part of the snapshot
    that is not necessary to replay the relevant segment."

    A {!t} is a pruned view of a machine's memory: the pages the
    auditor (or a piece of evidence) actually needs, each with a Merkle
    inclusion proof against the logged root. Everything else stays
    private. *)

type page = { index : int; data : string; proof : Avm_crypto.Merkle.proof }

type t = {
  root : string;  (** the Merkle root the pages authenticate against *)
  page_count : int;  (** total pages in the full state *)
  meta : string;  (** machine meta-state ({!Machine.serialize_meta}) *)
  pages : page list;  (** only the disclosed pages *)
}

val extract : Machine.t -> pages:int list -> t
(** [extract m ~pages] is what the audited machine serves: the
    requested pages with proofs, the meta-state, and the root.
    Duplicate or out-of-range indices are ignored. *)

val verify : t -> expected_root:string -> bool
(** The auditor's check: every disclosed page carries a valid inclusion
    proof against [expected_root] (which she obtained from a logged,
    authenticator-covered Snapshot_ref). *)

val disclosed_bytes : t -> int
(** Bytes revealed (meta + pages + proofs) — compare against the full
    state size to quantify the privacy/transfer saving. *)

val encode : t -> string
val decode : string -> t
(** @raise Avm_util.Wire.Malformed on garbage. *)
