open Avm_isa

type observation = Console of int | Frame | Packet_sent of int array

type backend = {
  io_in : int -> int;
  io_out : int -> int -> unit;
  observe : observation -> unit;
  poll_irq : unit -> int option;
}

let null_backend =
  { io_in = (fun _ -> 0); io_out = (fun _ _ -> ()); observe = ignore; poll_irq = (fun () -> None) }

type t = {
  regs : int array;
  mutable pc : int;
  mutable icount : int;
  mutable branches : int;
  mem : Memory.t;
  mutable halted : bool;
  mutable int_enabled : bool;
  mutable in_handler : bool;
  mutable saved_pc : int;
  mutable ivt : int;
  mutable last_irq : int;
  mutable tx : int list; (* NET_TX assembly buffer, reversed *)
  mutable frames : int;
  mutable console_chars : int;
  disk : (int, int array) Hashtbl.t;
  mutable disk_sector : int;
  mutable disk_word : int;
  mutable tracer : (t -> Avm_isa.Isa.instr -> unit) option;
  (* Decode cache, keyed by address and validated against the current
     memory word — self-modifying code simply misses. *)
  icache_word : int array;
  icache_instr : Isa.instr array;
}

exception Runtime_fault of { pc : int; reason : string }

let mask32 = 0xffffffff
let sector_words = 256

let create ?(mem_words = 65536) image =
  let mem = Memory.create ~words:mem_words in
  Memory.load_image mem image;
  Memory.clear_dirty mem;
  {
    icache_word = Array.make (Memory.size mem) (-1);
    icache_instr = Array.make (Memory.size mem) Isa.Nop;
    regs = Array.make 16 0;
    pc = 0;
    icount = 0;
    branches = 0;
    mem;
    halted = false;
    int_enabled = false;
    in_handler = false;
    saved_pc = 0;
    ivt = 0;
    last_irq = 0;
    tx = [];
    frames = 0;
    console_chars = 0;
    disk = Hashtbl.create 16;
    disk_sector = 0;
    disk_word = 0;
    tracer = None;
  }

let landmark m = { Landmark.icount = m.icount; pc = m.pc; branches = m.branches }
let halted m = m.halted
let pc m = m.pc
let icount m = m.icount
let branches m = m.branches
let reg m i = m.regs.(i)
let set_reg m i v = m.regs.(i) <- v land mask32
let mem m = m.mem
let frames m = m.frames
let console_chars m = m.console_chars

let fault m reason =
  m.halted <- true;
  raise (Runtime_fault { pc = m.pc; reason })

(* Signed view of a 32-bit word. *)
let s v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let disk_sector_data m sector =
  match Hashtbl.find_opt m.disk sector with
  | Some a -> a
  | None ->
    let a = Array.make sector_words 0 in
    Hashtbl.replace m.disk sector a;
    a

let handle_in m backend port =
  if port = Isa.port_disk_read then begin
    let a = disk_sector_data m m.disk_sector in
    let v = a.(m.disk_word land (sector_words - 1)) in
    m.disk_word <- (m.disk_word + 1) land (sector_words - 1);
    v
  end
  else if port = Isa.port_irq_cause then m.last_irq
  else backend.io_in port land mask32

let handle_out m backend port v =
  if port = Isa.port_console then begin
    m.console_chars <- m.console_chars + 1;
    backend.observe (Console v)
  end
  else if port = Isa.port_frame then begin
    m.frames <- m.frames + 1;
    backend.observe Frame
  end
  else if port = Isa.port_net_tx then m.tx <- v :: m.tx
  else if port = Isa.port_net_tx_send then begin
    let packet = Array.of_list (List.rev m.tx) in
    m.tx <- [];
    backend.observe (Packet_sent packet)
  end
  else if port = Isa.port_disk_sector then m.disk_sector <- v
  else if port = Isa.port_disk_word then m.disk_word <- v land (sector_words - 1)
  else if port = Isa.port_disk_write then begin
    let a = disk_sector_data m m.disk_sector in
    a.(m.disk_word land (sector_words - 1)) <- v;
    m.disk_word <- (m.disk_word + 1) land (sector_words - 1)
  end
  else if port = Isa.port_ivt then m.ivt <- v
  else backend.io_out port v

let deliver_irq m line =
  m.saved_pc <- m.pc;
  m.pc <- m.ivt;
  m.in_handler <- true;
  m.int_enabled <- false;
  m.last_irq <- line

let step m backend =
  if m.halted then false
  else begin
    if m.int_enabled && not m.in_handler then begin
      match backend.poll_irq () with
      | Some line -> deliver_irq m line
      | None -> ()
    end;
    let word = try Memory.read m.mem m.pc with Memory.Fault a -> fault m (Printf.sprintf "pc out of range: 0x%x" a) in
    let i =
      if m.icache_word.(m.pc) = word then m.icache_instr.(m.pc)
      else begin
        let d = try Isa.decode word with Isa.Decode_error w -> fault m (Printf.sprintf "bad opcode 0x%08x" w) in
        m.icache_word.(m.pc) <- word;
        m.icache_instr.(m.pc) <- d;
        d
      end
    in
    (match m.tracer with None -> () | Some hook -> hook m i);
    m.icount <- m.icount + 1;
    let next = m.pc + 1 in
    let r i = m.regs.(i) in
    let set i v = m.regs.(i) <- v land mask32 in
    let mem_read a = try Memory.read m.mem a with Memory.Fault a -> fault m (Printf.sprintf "load fault at 0x%x" a) in
    let mem_write a v = try Memory.write m.mem a v with Memory.Fault a -> fault m (Printf.sprintf "store fault at 0x%x" a) in
    let jump target =
      m.branches <- m.branches + 1;
      m.pc <- target land mask32
    in
    let branch cond off = if cond then jump (next + off) else m.pc <- next in
    (match i with
    | Isa.Halt ->
      m.halted <- true;
      m.pc <- next
    | Isa.Nop -> m.pc <- next
    | Isa.Ei ->
      m.int_enabled <- true;
      m.pc <- next
    | Isa.Di ->
      m.int_enabled <- false;
      m.pc <- next
    | Isa.Iret ->
      m.in_handler <- false;
      m.int_enabled <- true;
      m.pc <- m.saved_pc
    | Isa.Mov (d, sr) ->
      set d (r sr);
      m.pc <- next
    | Isa.Movi (d, v) ->
      set d v;
      m.pc <- next
    | Isa.Lui (d, v) ->
      set d (v lsl 16);
      m.pc <- next
    | Isa.Add (d, a, b) ->
      set d (r a + r b);
      m.pc <- next
    | Isa.Sub (d, a, b) ->
      set d (r a - r b);
      m.pc <- next
    | Isa.Mul (d, a, b) ->
      set d (r a * r b);
      m.pc <- next
    | Isa.Div (d, a, b) ->
      set d (if r b = 0 then 0 else s (r a) / s (r b));
      m.pc <- next
    | Isa.Rem (d, a, b) ->
      set d (if r b = 0 then 0 else s (r a) mod s (r b));
      m.pc <- next
    | Isa.And (d, a, b) ->
      set d (r a land r b);
      m.pc <- next
    | Isa.Or (d, a, b) ->
      set d (r a lor r b);
      m.pc <- next
    | Isa.Xor (d, a, b) ->
      set d (r a lxor r b);
      m.pc <- next
    | Isa.Shl (d, a, b) ->
      set d (r a lsl (r b land 31));
      m.pc <- next
    | Isa.Shr (d, a, b) ->
      set d (r a lsr (r b land 31));
      m.pc <- next
    | Isa.Sar (d, a, b) ->
      set d (s (r a) asr (r b land 31));
      m.pc <- next
    | Isa.Slt (d, a, b) ->
      set d (if s (r a) < s (r b) then 1 else 0);
      m.pc <- next
    | Isa.Sltu (d, a, b) ->
      set d (if r a < r b then 1 else 0);
      m.pc <- next
    | Isa.Seq (d, a, b) ->
      set d (if r a = r b then 1 else 0);
      m.pc <- next
    | Isa.Addi (d, a, v) ->
      set d (r a + v);
      m.pc <- next
    | Isa.Andi (d, a, v) ->
      set d (r a land v);
      m.pc <- next
    | Isa.Ori (d, a, v) ->
      set d (r a lor v);
      m.pc <- next
    | Isa.Xori (d, a, v) ->
      set d (r a lxor v);
      m.pc <- next
    | Isa.Shli (d, a, v) ->
      set d (r a lsl v);
      m.pc <- next
    | Isa.Shri (d, a, v) ->
      set d (r a lsr v);
      m.pc <- next
    | Isa.Sari (d, a, v) ->
      set d (s (r a) asr v);
      m.pc <- next
    | Isa.Load (d, a, off) ->
      set d (mem_read (r a + off));
      m.pc <- next
    | Isa.Store (v, a, off) ->
      mem_write (r a + off) (r v);
      m.pc <- next
    | Isa.Jmp off -> jump (next + off)
    | Isa.Jal (d, off) ->
      set d next;
      jump (next + off)
    | Isa.Jr a -> jump (r a)
    | Isa.Jalr (d, a) ->
      let target = r a in
      set d next;
      jump target
    | Isa.Beq (a, b, off) -> branch (r a = r b) off
    | Isa.Bne (a, b, off) -> branch (r a <> r b) off
    | Isa.Blt (a, b, off) -> branch (s (r a) < s (r b)) off
    | Isa.Bge (a, b, off) -> branch (s (r a) >= s (r b)) off
    | Isa.Bltu (a, b, off) -> branch (r a < r b) off
    | Isa.Bgeu (a, b, off) -> branch (r a >= r b) off
    | Isa.In (d, port) ->
      set d (handle_in m backend port);
      m.pc <- next
    | Isa.Out (sr, port) ->
      handle_out m backend port (r sr);
      m.pc <- next);
    not m.halted
  end

let run m backend ~fuel =
  let executed = ref 0 in
  let continue = ref (not m.halted) in
  while !continue && !executed < fuel do
    continue := step m backend;
    incr executed
  done;
  !executed

let serialize_meta m =
  let open Avm_util in
  let w = Wire.writer () in
  Array.iter (Wire.u32 w) m.regs;
  Wire.varint w m.pc;
  Wire.varint w m.icount;
  Wire.varint w m.branches;
  Wire.bool w m.halted;
  Wire.bool w m.int_enabled;
  Wire.bool w m.in_handler;
  Wire.varint w m.saved_pc;
  Wire.varint w m.ivt;
  Wire.varint w m.last_irq;
  Wire.list w (fun w v -> Wire.u32 w v) (List.rev m.tx);
  Wire.varint w m.frames;
  Wire.varint w m.console_chars;
  Wire.varint w m.disk_sector;
  Wire.varint w m.disk_word;
  let sectors = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.disk [] in
  let sectors = List.sort compare sectors in
  Wire.list w
    (fun w (sector, data) ->
      Wire.varint w sector;
      Array.iter (Wire.u32 w) data)
    sectors;
  Wire.contents w

let restore_meta m blob =
  let open Avm_util in
  let r = Wire.reader blob in
  for i = 0 to 15 do
    m.regs.(i) <- Wire.read_u32 r
  done;
  m.pc <- Wire.read_varint r;
  m.icount <- Wire.read_varint r;
  m.branches <- Wire.read_varint r;
  m.halted <- Wire.read_bool r;
  m.int_enabled <- Wire.read_bool r;
  m.in_handler <- Wire.read_bool r;
  m.saved_pc <- Wire.read_varint r;
  m.ivt <- Wire.read_varint r;
  m.last_irq <- Wire.read_varint r;
  m.tx <- List.rev (Wire.read_list r Wire.read_u32);
  m.frames <- Wire.read_varint r;
  m.console_chars <- Wire.read_varint r;
  m.disk_sector <- Wire.read_varint r;
  m.disk_word <- Wire.read_varint r;
  Hashtbl.reset m.disk;
  let sectors =
    Wire.read_list r (fun r ->
        let sector = Wire.read_varint r in
        let data = Array.init sector_words (fun _ -> Wire.read_u32 r) in
        (sector, data))
  in
  List.iter (fun (sector, data) -> Hashtbl.replace m.disk sector data) sectors;
  Wire.expect_end r

let set_tracer m hook = m.tracer <- hook

let copy m =
  {
    m with
    tracer = None;
    icache_word = Array.copy m.icache_word;
    icache_instr = Array.copy m.icache_instr;
    regs = Array.copy m.regs;
    mem = Memory.copy m.mem;
    disk =
      (let h = Hashtbl.create (Hashtbl.length m.disk) in
       Hashtbl.iter (fun k v -> Hashtbl.replace h k (Array.copy v)) m.disk;
       h);
  }

let state_equal a b =
  String.equal (serialize_meta a) (serialize_meta b)
  && Memory.size a.mem = Memory.size b.mem
  &&
  let n = Memory.size a.mem in
  let rec go i = i >= n || (Memory.read a.mem i = Memory.read b.mem i && go (i + 1)) in
  go 0
