(** Nondeterministic events recorded during execution (paper §4.4).

    Two kinds exist:

    - {b synchronous inputs} ([Io_in]): the guest explicitly requested
      them with an [In] instruction, so no timing information is needed
      — during replay the guest re-issues the same requests in the same
      order (any difference is itself a divergence);
    - {b asynchronous events} ([Irq]): interrupts arrive between
      instructions, so each carries a {!Landmark.t} telling the
      replayer exactly where to inject it.

    Reads from the virtual disk are deliberately {i not} events: the
    auditor has the reference image, so those values are reproducible
    (paper §4.4, "not all inputs are nondeterministic"). *)

type t =
  | Io_in of { port : int; value : int; msg : int }
      (** A value served to an [In] instruction. [msg] is the
          tamper-evident-log sequence number of the RECV entry this
          read is part of, for NET_RX reads; [-1] otherwise. This is
          the cross-reference between the message stream and the input
          stream that lets audits detect packets altered between
          receipt and injection. *)
  | Irq of { landmark : Landmark.t; line : int }
      (** Interrupt [line] delivered at [landmark]. Line 0 is the
          timer, line 1 the NIC. *)

val write : Avm_util.Wire.writer -> t -> unit
val read : Avm_util.Wire.reader -> t
val encode : t -> string
val decode : string -> t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
