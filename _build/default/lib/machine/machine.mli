(** The AVM-32 virtual machine.

    Executes guest images instruction by instruction, routing all
    nondeterministic I/O through a {!backend} supplied by the caller.
    The AVMM ({!Avm_core.Avmm}) installs a recording backend that logs
    every nondeterministic value; the audit tool installs a replaying
    backend that serves the logged values back and cross-checks
    everything observable. Running the same image against backends
    that serve identical values yields bit-identical executions — the
    determinism property the whole paper rests on.

    Deterministic devices (the virtual disk, the IRQ-cause register,
    the frame counter, the NET_TX assembly buffer) live inside the
    machine and are part of its snapshotted state. *)

type t

(** What the guest makes externally observable. *)
type observation =
  | Console of int  (** byte written to the console *)
  | Frame  (** one frame rendered (screen refresh marker) *)
  | Packet_sent of int array  (** flushed NET_TX buffer: one outgoing packet *)

type backend = {
  io_in : int -> int;
      (** [io_in port] serves an [In] from a nondeterministic port. *)
  io_out : int -> int -> unit;
      (** [io_out port value] forwards [Out]s that target hardware
          outside the machine (NET_RX_NEXT, TIMER_CTL, unknown
          ports). *)
  observe : observation -> unit;
      (** Called on every observable output, in execution order. *)
  poll_irq : unit -> int option;
      (** Consulted between instructions when the CPU can accept an
          interrupt. Returning [Some line] delivers the interrupt; the
          backend must then consider it consumed. *)
}

val null_backend : backend
(** Ignores outputs, serves 0 on every input, never interrupts. *)

(** {1 Construction and execution} *)

val create : ?mem_words:int -> int array -> t
(** [create image] is a machine with [image] loaded at address 0,
    pc = 0, all registers zero. Default memory: 65536 words. *)

exception Runtime_fault of { pc : int; reason : string }
(** Raised when the guest does something undefined: bad opcode, memory
    access out of range. A faulting guest is halted. *)

val step : t -> backend -> bool
(** [step m b] delivers at most one pending interrupt and executes one
    instruction. Returns [false] iff the machine is (now) halted.
    @raise Runtime_fault on undefined behaviour (machine halts). *)

val run : t -> backend -> fuel:int -> int
(** [run m b ~fuel] steps until halt or [fuel] instructions; returns
    instructions executed. *)

(** {1 Inspection} *)

val landmark : t -> Landmark.t
(** Current (instruction count, pc, branch count) — the injection
    coordinate for asynchronous events. *)

val halted : t -> bool
val pc : t -> int
val icount : t -> int
val branches : t -> int
val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val mem : t -> Memory.t
val frames : t -> int
(** Frames rendered since boot (FRAME port writes). *)

val console_chars : t -> int
(** Console bytes written since boot. *)

(** {1 State serialization}

    [meta] covers everything except memory pages: registers, pc,
    counters, interrupt state, devices. Memory travels separately so
    snapshots can be incremental (see {!Snapshot}). *)

val serialize_meta : t -> string
val restore_meta : t -> string -> unit
(** @raise Avm_util.Wire.Malformed on garbage. *)

val set_tracer : t -> (t -> Avm_isa.Isa.instr -> unit) option -> unit
(** [set_tracer m hook] installs (or clears) an instruction observer:
    called once per executed instruction, after decode and {e before}
    execution, with the machine's pre-state. This is the paper's §7.5
    hook — expensive analyses (taint tracking, profiling, watchpoints)
    run during audit replay, never in the live system. Costs one
    branch per instruction when unset. *)

val copy : t -> t
(** Deep copy (for forking executions in tests and spot checks;
    tracers are not copied). *)

val state_equal : t -> t -> bool
(** Full-state comparison: meta and all memory words. *)
