(** SHA-256 (FIPS 180-4), implemented from scratch.

    The AVMM design assumes a hash function that is pre-image,
    second-pre-image and collision resistant (paper §4.1, assumption 2).
    Hash chains, authenticators, Merkle snapshot trees and message
    digests all use this module. *)

type ctx
(** Streaming hash state. *)

val init : unit -> ctx
(** Fresh state. *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs the bytes of [s]. *)

val finalize : ctx -> string
(** [finalize ctx] is the 32-byte digest. The context must not be used
    afterwards. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 of [s]. *)

val digest_list : string list -> string
(** [digest_list parts] hashes the concatenation of [parts] without
    building it. *)

val hex : string -> string
(** [hex s] is the digest of [s] in lowercase hex (convenience for
    tests and display). *)

val digest_length : int
(** 32. *)
