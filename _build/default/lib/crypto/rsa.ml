type public_key = { n : Bignum.t; e : Bignum.t }

type private_key = {
  n : Bignum.t;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t;
  dq : Bignum.t;
  qinv : Bignum.t;
}

type keypair = { public : public_key; private_ : private_key; bits : int }

let e_value = Bignum.of_int 65537

let generate rng ~bits =
  if bits < 32 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Bignum.random_prime rng ~bits:half in
    let q = Bignum.random_prime rng ~bits:(bits - half) in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      let p1 = Bignum.sub p Bignum.one and q1 = Bignum.sub q Bignum.one in
      let phi = Bignum.mul p1 q1 in
      match (Bignum.mod_inv e_value phi, Bignum.mod_inv q p) with
      | Some d, Some qinv when Bignum.bit_length n = bits ->
        let dp = Bignum.rem d p1 and dq = Bignum.rem d q1 in
        { public = { n; e = e_value }; private_ = { n; d; p; q; dp; dq; qinv }; bits }
      | _ -> go ()
    end
  in
  go ()

let signature_length (key : public_key) = (Bignum.bit_length key.n + 7) / 8

(* EMSA-PKCS1-v1_5-style: 0x00 0x01 0xFF... 0x00 || digest. *)
let pad_digest ~len digest =
  if len < String.length digest + 11 then invalid_arg "Rsa: modulus too small for digest";
  let ff_len = len - String.length digest - 3 in
  String.concat "" [ "\x00\x01"; String.make ff_len '\xff'; "\x00"; digest ]

(* m^d mod n via the Chinese Remainder Theorem: two half-size
   exponentiations instead of one full-size one (~4x faster). *)
let private_power key m =
  let mp = Bignum.mod_pow (Bignum.rem m key.p) key.dp key.p in
  let mq = Bignum.mod_pow (Bignum.rem m key.q) key.dq key.q in
  (* h = qinv * (mp - mq) mod p; result = mq + h * q *)
  let diff =
    if Bignum.compare mp mq >= 0 then Bignum.sub mp mq
    else Bignum.sub key.p (Bignum.rem (Bignum.sub mq mp) key.p)
  in
  let h = Bignum.rem (Bignum.mul key.qinv diff) key.p in
  Bignum.add mq (Bignum.mul h key.q)

let sign (key : private_key) msg =
  let len = (Bignum.bit_length key.n + 7) / 8 in
  let em = pad_digest ~len (Sha256.digest msg) in
  let m = Bignum.of_bytes_be em in
  Bignum.to_bytes_be ~len (private_power key m)

let verify (key : public_key) ~msg ~signature =
  let len = signature_length key in
  if String.length signature <> len then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s key.n >= 0 then false
    else begin
      let m = Bignum.mod_pow s key.e key.n in
      let expected = pad_digest ~len (Sha256.digest msg) in
      String.equal (Bignum.to_bytes_be ~len m) expected
    end
  end

let public_to_string (key : public_key) =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w (Bignum.to_bytes_be key.n);
  Avm_util.Wire.bytes w (Bignum.to_bytes_be key.e);
  Avm_util.Wire.contents w

let public_of_string s =
  let r = Avm_util.Wire.reader s in
  let n = Bignum.of_bytes_be (Avm_util.Wire.read_bytes r) in
  let e = Bignum.of_bytes_be (Avm_util.Wire.read_bytes r) in
  Avm_util.Wire.expect_end r;
  { n; e }
