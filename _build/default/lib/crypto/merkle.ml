(* Interior nodes are H("N" || left || right); leaves H("L" || page).
   Odd nodes are promoted unchanged (no duplication), so [leaf_count]
   is part of what [verify_proof] must know. *)

type t = { levels : string array array; count : int }

let leaf_hash page = Sha256.digest_list [ "L"; page ]
let node_hash left right = Sha256.digest_list [ "N"; left; right ]
let empty_root = Sha256.digest "E"

let of_leaf_hashes hashes =
  let level0 = Array.of_list hashes in
  let rec build acc level =
    if Array.length level <= 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let next =
        Array.init
          ((n + 1) / 2)
          (fun i ->
            if (2 * i) + 1 < n then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      build (level :: acc) next
    end
  in
  let levels =
    if Array.length level0 = 0 then [| [||] |] else Array.of_list (build [] level0)
  in
  { levels; count = Array.length level0 }

let of_leaves pages = of_leaf_hashes (List.map leaf_hash pages)

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  if Array.length top = 0 then empty_root else top.(0)

let leaf_count t = t.count

type proof = { index : int; path : string list }

let prove t i =
  if i < 0 || i >= t.count then invalid_arg "Merkle.prove: index out of range";
  let path = ref [] in
  let idx = ref i in
  for level = 0 to Array.length t.levels - 2 do
    let nodes = t.levels.(level) in
    let sibling = if !idx mod 2 = 0 then !idx + 1 else !idx - 1 in
    if sibling < Array.length nodes then path := nodes.(sibling) :: !path;
    (* When the sibling is missing the node is promoted unchanged, so
       nothing is appended for this level. *)
    idx := !idx / 2
  done;
  { index = i; path = List.rev !path }

let verify_proof ~root:expected ~leaf_count ~leaf proof =
  if proof.index < 0 || proof.index >= leaf_count then false
  else begin
    (* Recompute the root, tracking the width of each level so we know
       when a node is promoted without a sibling. *)
    let rec go digest idx width path =
      if width <= 1 then (digest, path)
      else begin
        let has_sibling = if idx mod 2 = 0 then idx + 1 < width else true in
        match (has_sibling, path) with
        | false, _ -> go digest (idx / 2) ((width + 1) / 2) path
        | true, [] -> (digest, [ "short" ]) (* path too short: fail below *)
        | true, sib :: rest ->
          let digest =
            if idx mod 2 = 0 then node_hash digest sib else node_hash sib digest
          in
          go digest (idx / 2) ((width + 1) / 2) rest
      end
    in
    let computed, leftover = go (leaf_hash leaf) proof.index leaf_count proof.path in
    leftover = [] && String.equal computed expected
  end
