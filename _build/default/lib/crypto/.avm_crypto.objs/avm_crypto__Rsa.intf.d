lib/crypto/rsa.mli: Avm_util Bignum
