lib/crypto/merkle.mli:
