lib/crypto/hmac.ml: Avm_util Char Sha256 String
