lib/crypto/identity.ml: Avm_util Rsa
