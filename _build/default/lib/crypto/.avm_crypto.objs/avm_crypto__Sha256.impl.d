lib/crypto/sha256.ml: Array Avm_util Bytes Char List String
