lib/crypto/bignum.mli: Avm_util Format
