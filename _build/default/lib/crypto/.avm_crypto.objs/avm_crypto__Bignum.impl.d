lib/crypto/bignum.ml: Array Avm_util Bytes Char Format List Stdlib String
