lib/crypto/identity.mli: Avm_util Rsa
