lib/crypto/hmac.mli:
