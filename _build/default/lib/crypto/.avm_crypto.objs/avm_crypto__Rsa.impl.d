lib/crypto/rsa.ml: Avm_util Bignum Sha256 String
