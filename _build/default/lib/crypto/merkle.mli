(** Merkle hash trees over snapshot pages (paper §4.4).

    The AVMM maintains a hash tree over the AVM's state pages; after
    each snapshot it records the root in the tamper-evident log. An
    auditor who downloads only the pages touched during replay can
    authenticate them against the root with {!verify_proof}, and prune
    the rest for privacy (paper §7.3). *)

type t
(** An immutable tree over a fixed, ordered list of leaves. *)

val of_leaves : string list -> t
(** [of_leaves pages] builds the tree over the given page payloads
    (each leaf is hashed; interior nodes hash child digests with
    distinct domain-separation tags). An empty list yields a
    well-defined sentinel root. *)

val of_leaf_hashes : string list -> t
(** Like {!of_leaves} for callers that already hold the 32-byte leaf
    digests. *)

val root : t -> string
(** 32-byte root digest. *)

val leaf_count : t -> int

val leaf_hash : string -> string
(** [leaf_hash page] is the domain-separated digest of a page. *)

type proof = { index : int; path : string list }
(** Authentication path from leaf [index] to the root; [path] lists the
    sibling digest at each level, bottom-up. *)

val prove : t -> int -> proof
(** [prove t i] is the inclusion proof for leaf [i].
    @raise Invalid_argument if [i] is out of range. *)

val verify_proof : root:string -> leaf_count:int -> leaf:string -> proof -> bool
(** [verify_proof ~root ~leaf_count ~leaf p] checks that [leaf] (the
    page payload) sits at [p.index] in a tree with the given root. *)
