(** HMAC-SHA256 (RFC 2104).

    Used for keyed integrity checks in tests and as the pseudo-random
    function behind deterministic padding; the tamper-evident log itself
    uses public-key signatures ({!Rsa}) for non-repudiation. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under
    [key]. *)

val hex : key:string -> string -> string
(** [hex ~key msg] is the tag in lowercase hex. *)
