(** Deterministic player behaviour.

    Each bot stands in for one human player: it moves, aims, fires in
    bursts and reloads, at rates chosen so the guest's traffic pattern
    matches the paper's observation of ~26 small packets per second
    per client. Bots are seeded, so a run is reproducible end to
    end. *)

type t

val create : seed:int64 -> t

val tick : t -> now_us:float -> last_us:float -> (int -> unit) -> unit
(** [tick bot ~now_us ~last_us queue] emits the input events this
    player generates in [(last_us, now_us]] through [queue] (an
    {!Avm_core.Avmm.queue_input} partial application). *)
