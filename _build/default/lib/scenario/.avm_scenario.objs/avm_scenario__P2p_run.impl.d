lib/scenario/p2p_run.ml: Array Audit Avm_core Avm_isa Avm_machine Avm_mlang Avm_netsim Avm_tamperlog Avmm Config Guests Hashtbl List Multiparty Net Printf String
