lib/scenario/experiments.mli: Avm_core Cheats
