lib/scenario/game_run.mli: Avm_core Avm_netsim Avm_tamperlog Cheats
