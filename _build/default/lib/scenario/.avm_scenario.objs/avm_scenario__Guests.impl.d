lib/scenario/guests.ml: Avm_isa Avm_mlang Hashtbl Printf String
