lib/scenario/bots.mli:
