lib/scenario/guests.mli: Avm_isa
