lib/scenario/bots.ml: Avm_util Guests
