lib/scenario/game_run.ml: Array Audit Avm_core Avm_isa Avm_machine Avm_netsim Avm_tamperlog Avm_util Avmm Bots Cheats Config Float Guests Int64 List Multiparty Net Printf Secure_input
