lib/scenario/kv_run.ml: Avm_compress Avm_core Avm_isa Avm_machine Avm_netsim Avm_tamperlog Avmm Config Guests Net Spot_check String
