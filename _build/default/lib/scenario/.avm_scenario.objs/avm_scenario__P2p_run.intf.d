lib/scenario/p2p_run.mli: Avm_core Avm_isa Avm_netsim
