lib/scenario/cheats.mli: Avm_core Avm_isa
