lib/scenario/cheats.ml: Avm_core Guests List String
