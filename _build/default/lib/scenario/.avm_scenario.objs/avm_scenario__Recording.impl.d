lib/scenario/recording.ml: Auth Avm_core Avm_crypto Avm_isa Avm_netsim Avm_tamperlog Avm_util Entry Fun Game_run Guests Log Net String Wire
