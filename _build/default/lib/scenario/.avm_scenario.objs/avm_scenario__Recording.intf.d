lib/scenario/recording.mli: Avm_crypto Avm_tamperlog Game_run
