lib/scenario/kv_run.mli: Avm_core Avm_machine Avm_netsim
