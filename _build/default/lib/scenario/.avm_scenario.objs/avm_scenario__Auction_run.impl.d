lib/scenario/auction_run.ml: Array Audit Avm_core Avm_isa Avm_machine Avm_mlang Avm_netsim Avm_tamperlog Avm_util Avmm Config Guests List Multiparty Net Printf
