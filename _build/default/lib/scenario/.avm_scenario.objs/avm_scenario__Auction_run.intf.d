lib/scenario/auction_run.mli: Avm_core Avm_isa Avm_netsim
