(** The cheat catalog (paper §5.3–5.4, Table 1).

    Twenty-six cheats, mirroring the paper's survey of real
    Counterstrike cheats downloaded from community forums:

    - {b class 1} (22 cheats): must be installed in the VM image —
      hacked aim logic, wallhacks, ESP overlays, speed hacks, trigger
      bots... Implemented as source patches to the game image
      ({!Guests.game_with_patch}); detected because replay against the
      {e reference} image diverges.
    - {b class 2} (4 cheats): make the machine's network-visible
      behaviour inconsistent with {e any} correct execution —
      unlimited ammunition, teleport, host-side health/score
      manipulation. Implemented as runtime memory pokes into the
      (unmodified) guest; detected in any implementation.

    {!external_aimbot} is the paper's §5.4 escape: an aimbot
    re-engineered as a program {e outside} the AVM feeding perfect aim
    through the real input channel. It is intentionally {e not}
    detectable — the functionality test asserts that audits pass. *)

type mechanism =
  | Image_patch of { anchor : string; replacement : string }
      (** install: substitute a fragment of the game source *)
  | Memory_poke of { symbol : string; index : int; value : int; period_us : float }
      (** runtime: write [value] to global [symbol]\[[index]\] every
          [period_us] *)
  | Input_forge of { period_us : float }
      (** external: feed synthesized perfect-aim/fire inputs *)

type t = {
  name : string;
  description : string;
  class2 : bool;  (** detectable in any implementation *)
  mechanism : mechanism;
}

val catalog : t list
(** The 26 cheats of Table 1. *)

val external_aimbot : t
(** Not part of the catalog (and not detectable). *)

val find : string -> t
(** Look up a catalog cheat by name.
    @raise Not_found if absent. *)

val image_for : t -> Avm_isa.Asm.image
(** The VM image the cheater boots: patched for class-1 cheats, the
    reference image otherwise. *)

val runtime_actions : t -> now_us:float -> last_us:float -> (Avm_core.Avmm.t -> unit) list
(** Host-side actions (pokes, forged inputs) due in
    [(last_us, now_us]]; empty for pure image cheats. *)
