(** On-disk recordings: what a player stores (or uploads when audited).

    One file per node, containing everything an auditor needs besides
    the reference image: the tamper-evident log, the authenticators the
    other participants collected about this node, the certificates, the
    peer-id mapping, and which scenario image the AVM booted. The
    [bin/avm_run] and [bin/avm_audit] executables are thin CLIs over
    this module. *)

type scenario = Game | Kvstore

val scenario_name : scenario -> string
val scenario_of_name : string -> scenario option
val image_of_scenario : scenario -> int array
(** The {e reference} image — an auditor never trusts the recording for
    this. *)

type t = {
  scenario : scenario;
  node : string;  (** whose execution this is *)
  mem_words : int;
  ca_public : Avm_crypto.Rsa.public_key;
  certificates : (string * Avm_crypto.Identity.certificate) list;
  peers : (int * string) list;
  entries : Avm_tamperlog.Entry.t list;
  auths : Avm_tamperlog.Auth.t list;  (** collected by the other players *)
}

val encode : t -> string
val decode : string -> t
(** @raise Avm_util.Wire.Malformed on garbage. *)

val save : path:string -> t -> unit
val load : path:string -> t
(** @raise Sys_error / Avm_util.Wire.Malformed *)

val of_game_node : Game_run.outcome -> int -> t
(** Extract node [i]'s recording (plus pooled authenticators) from a
    finished game. *)
