(** Regeneration of every table and figure in the paper's evaluation
    (§6). Each function runs the workload, prints the paper-shaped
    rows/series to stdout, and returns a machine-readable summary used
    by the test suite to assert the qualitative claims.

    [quick] variants shrink durations and key sizes so `dune runtest`
    stays fast; `bin/experiments` runs the full-size versions and
    EXPERIMENTS.md records paper-vs-measured numbers. *)

type scale = Quick | Full

val duration_us : scale -> float -> float
(** [duration_us scale full_us] shrinks durations 8x under [Quick]. *)

val rsa_bits : scale -> int
(** 768 under [Full], 512 under [Quick]. *)

(** {1 Table 1 — cheat detectability} *)

type t1_row = { cheat : string; class2 : bool; detected : bool }

type t1_result = {
  rows : t1_row list;
  external_aimbot_detected : bool;  (** expected [false] *)
}

val table1 : ?scale:scale -> unit -> t1_result

val check_cheat : ?scale:scale -> Cheats.t -> bool
(** Run one game with the cheat installed and audit the cheater;
    [true] iff the audit reports a fault. (Used by the test suite to
    spot-check the catalog without running all 26 games.) *)

(** {1 Figure 3 — log growth over time} *)

type f3_result = {
  minutes : float list;
  avmm_mb : float list;
  vmware_mb : float list;
  avmm_mb_per_minute : float;  (** steady-state growth rate *)
}

val fig3 : ?scale:scale -> unit -> f3_result

(** {1 Figure 4 — log content breakdown} *)

type f4_result = {
  breakdown : Avm_core.Logstats.breakdown;
  timetracker_share_of_replay : float;
  mac_share_of_replay : float;
  other_share_of_replay : float;
  tamper_evident_share : float;  (** of the total log *)
  compressed_ratio : float;  (** compressed/raw *)
}

val fig4 : ?scale:scale -> unit -> f4_result

(** {1 §6.5 — frame cap and the clock-read optimization} *)

type capopt_result = {
  uncapped_bytes : int;
  capped_noopt_bytes : int;
  capped_opt_bytes : int;
  growth_factor_noopt : float;  (** paper: 18x *)
  capped_opt_vs_uncapped : float;  (** paper: ~0.98 *)
  fps_uncapped : float;
  fps_capped_opt : float;
}

val capopt : ?scale:scale -> unit -> capopt_result

(** {1 §6.6 — audit cost} *)

type audit_cost_result = {
  play_seconds : float;  (** wall time of the recorded run *)
  compress_seconds : float;
  decompress_seconds : float;
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict_ok : bool;
}

val audit_cost : ?scale:scale -> unit -> audit_cost_result

(** {1 Figure 5 — ping round-trip times} *)

type f5_row = { level : Avm_core.Config.level; median_us : float; p5_us : float; p95_us : float }

val fig5 : ?scale:scale -> unit -> f5_row list

(** {1 Figure 6 — CPU utilization} *)

type f6_result = {
  per_ht : float array;  (** server machine, avmm-rsa768 *)
  average : float;
  daemon_ht_util : float;
}

val fig6 : ?scale:scale -> unit -> f6_result

(** {1 Figure 7 — frame rate ladder} *)

type f7_row = { level : Avm_core.Config.level; fps : float array (* per machine *) }

type f7_result = {
  ladder : f7_row list;
  same_ht_fps : float;  (** avmm-rsa768 with daemon sharing the game HT *)
  drop_bare_to_avmm : float;  (** paper: ~13% *)
}

val fig7 : ?scale:scale -> unit -> f7_result

(** {1 §6.7 — network traffic} *)

type traffic_result = { bare_kbps : float; avmm_kbps : float }

val traffic : ?scale:scale -> unit -> traffic_result

(** {1 Figure 8 — online auditing} *)

type f8_row = { audits : int; fps : float; lag_entries : int }

val fig8 : ?scale:scale -> unit -> f8_row list

(** {1 Figure 9 — spot checking} *)

type f9_row = {
  k : int;
  time_pct : float;  (** replay cost vs full audit, % *)
  data_pct : float;  (** transfer vs full audit, % *)
}

val fig9 : ?scale:scale -> unit -> f9_row list

(** {1 §6.12 — snapshot costs} *)

type snapshot_result = {
  count : int;
  min_incremental_bytes : int;
  max_incremental_bytes : int;
  full_state_bytes : int;
}

val snapshot_costs : ?scale:scale -> unit -> snapshot_result

(** {1 §6.3 — functionality check} *)

type sanity_result = { honest_pass : bool; cheats_caught : string list }

val sanity : ?scale:scale -> unit -> sanity_result

val all : ?scale:scale -> unit -> unit
(** Run everything in paper order. *)
