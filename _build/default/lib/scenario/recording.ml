open Avm_tamperlog
module Identity = Avm_crypto.Identity

type scenario = Game | Kvstore

let scenario_name = function Game -> "game" | Kvstore -> "kvstore"

let scenario_of_name = function
  | "game" -> Some Game
  | "kvstore" -> Some Kvstore
  | _ -> None

let image_of_scenario = function
  | Game -> (Guests.game_image ()).Avm_isa.Asm.words
  | Kvstore -> (Guests.kvstore_image ()).Avm_isa.Asm.words

type t = {
  scenario : scenario;
  node : string;
  mem_words : int;
  ca_public : Avm_crypto.Rsa.public_key;
  certificates : (string * Identity.certificate) list;
  peers : (int * string) list;
  entries : Entry.t list;
  auths : Auth.t list;
}

let magic = "AVMREC1"

let encode t =
  let open Avm_util in
  let w = Wire.writer () in
  Wire.raw w magic;
  Wire.bytes w (scenario_name t.scenario);
  Wire.bytes w t.node;
  Wire.varint w t.mem_words;
  Wire.bytes w (Avm_crypto.Rsa.public_to_string t.ca_public);
  Wire.list w
    (fun w (name, cert) ->
      Wire.bytes w name;
      Wire.bytes w (Identity.cert_to_string cert))
    t.certificates;
  Wire.list w
    (fun w (id, name) ->
      Wire.varint w id;
      Wire.bytes w name)
    t.peers;
  Wire.bytes w (Log.encode_segment t.entries);
  Wire.list w Auth.write t.auths;
  Wire.contents w

let decode s =
  let open Avm_util in
  let r = Wire.reader s in
  if not (String.equal (Wire.read_raw r (String.length magic)) magic) then
    raise (Wire.Malformed "not an AVM recording");
  let scenario =
    match scenario_of_name (Wire.read_bytes r) with
    | Some sc -> sc
    | None -> raise (Wire.Malformed "unknown scenario")
  in
  let node = Wire.read_bytes r in
  let mem_words = Wire.read_varint r in
  let ca_public = Avm_crypto.Rsa.public_of_string (Wire.read_bytes r) in
  let certificates =
    Wire.read_list r (fun r ->
        let name = Wire.read_bytes r in
        let cert = Identity.cert_of_string (Wire.read_bytes r) in
        (name, cert))
  in
  let peers =
    Wire.read_list r (fun r ->
        let id = Wire.read_varint r in
        let name = Wire.read_bytes r in
        (id, name))
  in
  let entries = Log.decode_segment ~prev:Log.genesis_hash (Wire.read_bytes r) in
  let auths = Wire.read_list r Auth.read in
  Wire.expect_end r;
  { scenario; node; mem_words; ca_public; certificates; peers; entries; auths }

let save ~path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode t))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

let of_game_node (o : Game_run.outcome) i =
  let open Avm_netsim in
  let net = o.Game_run.net in
  let node = Net.node net i in
  let avmm = Net.node_avmm node in
  let log = Avm_core.Avmm.log avmm in
  {
    scenario = Game;
    node = Net.node_name node;
    mem_words = Guests.mem_words;
    ca_public = Identity.ca_public (Net.ca net);
    certificates = Net.certificates net;
    peers = Net.peers net;
    entries = Log.segment log ~from:1 ~upto:(Log.length log);
    auths = Game_run.collect_auths net ~target:i;
  }
