(** The client/server workload of the spot-checking experiment
    (paper §6.12): a key-value server in one AVM and a benchmark
    client in another, standing in for MySQL + sql-bench.

    Time is scaled: the paper runs 75 minutes with 5-minute
    snapshots; we default to 300 virtual seconds with 20-second
    snapshots — the same 15 inter-snapshot segments, so Figure 9's
    k-chunk sweep carries over unchanged. *)

type outcome = {
  net : Avm_netsim.Net.t;
  duration_us : float;
  server_snapshots : Avm_machine.Snapshot.t list;
  client_ops : int;  (** completed benchmark operations *)
}

val run :
  ?duration_us:float ->
  ?snapshot_every_us:int ->
  ?rsa_bits:int ->
  ?seed:int64 ->
  unit ->
  outcome

val server_image : unit -> int array
val audit_server_chunk : outcome -> start_snapshot:int -> k:int -> Avm_core.Spot_check.chunk_report
(** Spot-check one k-chunk of the server's log. *)

val full_audit_cost : outcome -> int * int
(** [(instructions, compressed_log_bytes)] of a full audit of the
    server — the 100% reference point in Figure 9. *)
