type t = { rng : Avm_util.Rng.t; mutable burst_left : int }

let create ~seed = { rng = Avm_util.Rng.create seed; burst_left = 0 }

(* Event rates per second of game time. *)
let move_hz = 12.0
let aim_hz = 5.0
let burst_hz = 1.2
let reload_hz = 0.05

let crossings ~now_us ~last_us hz =
  let period = 1.0e6 /. hz in
  int_of_float (now_us /. period) - int_of_float (last_us /. period)

let tick bot ~now_us ~last_us queue =
  let n_moves = crossings ~now_us ~last_us move_hz in
  for _ = 1 to n_moves do
    let dx = Avm_util.Rng.int_in bot.rng (-20) 20 in
    let dy = Avm_util.Rng.int_in bot.rng (-20) 20 in
    queue (Guests.input_move ~dx ~dy)
  done;
  let n_aims = crossings ~now_us ~last_us aim_hz in
  for _ = 1 to n_aims do
    queue (Guests.input_aim ~angle:(Avm_util.Rng.int bot.rng 65536))
  done;
  let n_bursts = crossings ~now_us ~last_us burst_hz in
  for _ = 1 to n_bursts do
    bot.burst_left <- bot.burst_left + 3 + Avm_util.Rng.int bot.rng 4
  done;
  (* Fire pending burst rounds at ~10 rounds/s. *)
  let n_shots = min bot.burst_left (crossings ~now_us ~last_us 10.0) in
  for _ = 1 to n_shots do
    queue Guests.input_fire;
    bot.burst_left <- bot.burst_left - 1
  done;
  let n_reloads = crossings ~now_us ~last_us reload_hz in
  for _ = 1 to n_reloads do
    queue Guests.input_reload
  done
