type mechanism =
  | Image_patch of { anchor : string; replacement : string }
  | Memory_poke of { symbol : string; index : int; value : int; period_us : float }
  | Input_forge of { period_us : float }

type t = { name : string; description : string; class2 : bool; mechanism : mechanism }

(* Source anchors in Guests.game_source. Each must occur exactly once. *)
let aim_anchor = "angle = val & 0xFFFF;"
let fire_anchor = "if (ammo > 0) { ammo = ammo - 1; fired_since = fired_since + 1; }"
let vis_anchor = "if (d < 250000) { vis = vis + 1; }"
let move_anchor = "myx = myx + dx;"
let move_y_anchor = "myy = myy + dy;"
let reload_anchor = "} else if (tag == 4) {\n      ammo = 30;"
let render_mid_anchor = "var mid = in(CLOCK);"
let spin_anchor = "while (s < RENDER_SPIN) { s = s + 1; }"
let drain_health_anchor = "phealth[i] = in(NET_RX);"
let drain_y_anchor = "py[i] = in(NET_RX);"

let patch name description ~anchor ~replacement =
  { name; description; class2 = false; mechanism = Image_patch { anchor; replacement } }

let poke name description ~symbol ?(index = 0) ~value ~period_us () =
  { name; description; class2 = true; mechanism = Memory_poke { symbol; index; value; period_us } }

let catalog =
  [
    (* --- aimbots: hacked aim logic in the image (5) ------------------- *)
    patch "aimbot-zeus" "snaps aim onto the nearest opponent on every aim input"
      ~anchor:aim_anchor
      ~replacement:"angle = (nearest_other(role) * 4096 + 2048) & 0xFFFF;";
    patch "aimbot-silent" "keeps the displayed angle but aims perfectly when firing"
      ~anchor:aim_anchor ~replacement:"angle = ((val & 0xFFFF) & 0xF000) | 0x0AAA;";
    patch "aimbot-smooth" "interpolates the crosshair toward the target"
      ~anchor:aim_anchor
      ~replacement:"angle = (angle + ((nearest_other(role) * 4096) - angle) / 4) & 0xFFFF;";
    patch "aimbot-fov" "locks aim when a target enters the field of view"
      ~anchor:aim_anchor
      ~replacement:"if (nearest_other(role) >= 0) { angle = 0x1234; } else { angle = val & 0xFFFF; }";
    patch "aimbot-pixel" "classic colour-key aimbot: scans the frame for enemies"
      ~anchor:aim_anchor ~replacement:"angle = (val + px[0] + py[0]) & 0xFFFF;";
    (* --- trigger bots: auto-fire in the image (3) ---------------------- *)
    patch "triggerbot-classic" "fires automatically whenever the crosshair covers an enemy"
      ~anchor:aim_anchor
      ~replacement:
        "angle = val & 0xFFFF; if (nearest_other(role) >= 0 && ammo > 0) { ammo = ammo - 1; fired_since = fired_since + 1; }";
    patch "triggerbot-burst" "fires a burst on every aim adjustment" ~anchor:aim_anchor
      ~replacement:
        "angle = val & 0xFFFF; if (ammo > 1) { ammo = ammo - 2; fired_since = fired_since + 2; }";
    patch "triggerbot-delay" "humanized trigger bot with a pseudo-random delay"
      ~anchor:aim_anchor
      ~replacement:
        "angle = val & 0xFFFF; if ((frame_no & 3) == 0 && ammo > 0) { ammo = ammo - 1; fired_since = fired_since + 1; }";
    (* --- wallhacks: altered visibility in the renderer (4) ------------- *)
    patch "wallhack-transparent" "renders world textures transparent" ~anchor:vis_anchor
      ~replacement:"vis = vis + 1;";
    patch "wallhack-driver" "graphics-driver hack removing occlusion (the ASUS driver trick)"
      ~anchor:vis_anchor ~replacement:"if (d < 2000000000) { vis = vis + 1; }";
    patch "wallhack-lambert" "full-bright models visible through geometry" ~anchor:vis_anchor
      ~replacement:"vis = vis + 2;";
    patch "wallhack-wireframe" "wireframe world rendering" ~anchor:vis_anchor
      ~replacement:"if (d < 250000) { vis = vis + 1; } vis = vis + nplayers;";
    (* --- ESP / radar overlays (2) --------------------------------------- *)
    patch "esp-radar" "overlays all player positions on a radar" ~anchor:render_mid_anchor
      ~replacement:"var mid = in(CLOCK) + px[0] + px[1] + px[2];";
    patch "esp-health" "draws every opponent's health above their heads"
      ~anchor:render_mid_anchor
      ~replacement:"var mid = in(CLOCK); vis = vis + phealth[0] + phealth[1];";
    (* --- movement hacks (2) --------------------------------------------- *)
    patch "speedhack-4x" "multiplies movement speed by four" ~anchor:move_anchor
      ~replacement:"myx = myx + dx * 4;";
    patch "speedhack-bhop" "scripted bunny-hop: doubled movement on both axes"
      ~anchor:move_y_anchor ~replacement:"myy = myy + dy * 2; myx = myx + dx;";
    (* --- weapon mods (3) ------------------------------------------------- *)
    patch "norecoil" "removes recoil so every shot lands" ~anchor:fire_anchor
      ~replacement:
        "if (ammo > 0) { ammo = ammo - 1; fired_since = fired_since + 1; angle = angle & 0xFF00; }";
    patch "rapidfire" "doubles the fire rate" ~anchor:fire_anchor
      ~replacement:"if (ammo > 0) { ammo = ammo - 1; fired_since = fired_since + 2; }";
    patch "bigclip" "enlarges the magazine on reload" ~anchor:reload_anchor
      ~replacement:"} else if (tag == 4) {\n      ammo = 99;";
    (* --- client display hacks (2) ----------------------------------------- *)
    patch "godmode-display" "pins the displayed health at 100" ~anchor:drain_health_anchor
      ~replacement:"phealth[i] = in(NET_RX); phealth[role] = 100;";
    patch "maphack" "reveals server-side positions before they are rendered"
      ~anchor:drain_y_anchor ~replacement:"py[i] = in(NET_RX) & 0xFFFF;";
    (* --- engine timing hack (1) -------------------------------------------- *)
    patch "fpshack" "skips the raster pass to inflate the frame rate" ~anchor:spin_anchor
      ~replacement:"s = RENDER_SPIN;";
    (* --- class 2: memory manipulation, detectable in any form (4) ---------- *)
    poke "unlimited-ammo" "rewrites the ammunition counter in game memory" ~symbol:"g_ammo"
      ~value:30 ~period_us:200_000.0 ();
    poke "teleport" "rewrites the player's position" ~symbol:"g_myx" ~value:9000
      ~period_us:2_000_000.0 ();
    poke "unlimited-health" "host pins his own health at 200 in the server's world state"
      ~symbol:"g_phealth" ~index:0 ~value:200 ~period_us:500_000.0 ();
    poke "scorehack" "host rewrites his own score in the server's world state"
      ~symbol:"g_pscore" ~index:0 ~value:99 ~period_us:1_000_000.0 ();
  ]

let external_aimbot =
  {
    name = "external-aimbot";
    description =
      "re-engineered aimbot running outside the AVM, feeding perfect aim through the \
       real input channel (paper §5.4: not detectable without trusted input hardware)";
    class2 = false;
    mechanism = Input_forge { period_us = 100_000.0 };
  }

let find name = List.find (fun c -> String.equal c.name name) catalog

let image_for c =
  match c.mechanism with
  | Image_patch { anchor; replacement } -> Guests.game_with_patch ~old:anchor ~new_:replacement
  | Memory_poke _ | Input_forge _ -> Guests.game_image ()

let runtime_actions c ~now_us ~last_us =
  let due period =
    (* Number of period boundaries crossed in (last_us, now_us]. *)
    int_of_float (now_us /. period) - int_of_float (last_us /. period)
  in
  match c.mechanism with
  | Image_patch _ -> []
  | Memory_poke { symbol; index; value; period_us } ->
    let n = due period_us in
    List.init n (fun _ avmm ->
        let addr = Guests.game_symbol symbol + index in
        Avm_core.Avmm.poke avmm ~addr ~value)
  | Input_forge { period_us } ->
    let n = due period_us in
    List.init n (fun _ avmm ->
        (* Perfect aim plus a disciplined trigger — exactly what a human
           with superhuman reflexes would type. *)
        Avm_core.Avmm.queue_input avmm (Guests.input_aim ~angle:0x2222);
        Avm_core.Avmm.queue_input avmm Guests.input_fire)
