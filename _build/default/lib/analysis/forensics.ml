open Avm_core

type result = {
  outcome : Replay.outcome;
  taint_findings : Taint.finding list;
  profile : Profile.t option;
  watch_hits : Watchpoints.hit list;
}

let replay ~image ?mem_words ?(fuel = 200_000_000) ~peers ~entries ?taint ?profile ?watch () =
  let engine = Replay.engine ~image ?mem_words ~peers () in
  let machine = Replay.engine_machine engine in
  (* Compose the instruction-level analyses on the single tracer. *)
  let hooks =
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun t m i -> Taint.on_instr_hook t m i) taint;
        Option.map (fun p m i -> Profile.on_instr_hook p m i) profile;
      ]
  in
  (match hooks with
  | [] -> ()
  | hooks -> Avm_machine.Machine.set_tracer machine (Some (fun m i -> List.iter (fun h -> h m i) hooks)));
  (match watch with Some w -> Watchpoints.attach w machine | None -> ());
  Replay.feed engine entries;
  let rec drain budget =
    if budget <= 0 then
      Replay.Diverged
        {
          Replay.kind = Replay.Guest_stalled;
          at = Avm_machine.Machine.landmark machine;
          entry_seq = None;
          detail = "fuel exhausted";
        }
    else begin
      match Replay.crank engine ~fuel:(min budget 10_000_000) with
      | `Blocked ->
        Replay.Verified
          {
            instructions = Replay.replayed_instructions engine;
            entries_consumed = List.length entries;
          }
      | `Fault d -> Replay.Diverged d
      | `Fuel_exhausted -> drain (budget - 10_000_000)
    end
  in
  let outcome = drain fuel in
  {
    outcome;
    taint_findings = (match taint with Some t -> Taint.findings t | None -> []);
    profile;
    watch_hits = (match watch with Some w -> Watchpoints.hits w | None -> []);
  }
