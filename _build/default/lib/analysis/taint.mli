(** Replay-time dynamic taint tracking (paper §7.5).

    "Taint tracking can reliably detect the unsafe use of data that
    were received from an untrusted source, thus detecting buffer
    overwrite attacks and other forms of unauthorized software
    installation" — run during an off-line replay, where its runtime
    cost does not matter.

    This implementation tracks word-granularity taint through the
    AVM-32 dataflow, via the machine's tracer hook: it observes each
    instruction {e before} execution (with pre-state register values,
    so effective addresses are exact) and updates shadow taint for
    registers and memory. Explicit flows only; implicit (control-flow)
    propagation is out of scope, as in classic Newsome–Song style
    tracking.

    Sources (configurable): words read from the network (NET_RX) and,
    optionally, local input (INPUT). Policy violations reported:

    - {b control-flow hijack}: an indirect jump ([jr]/[jalr]) through a
      tainted register — the moral equivalent of a smashed return
      address;
    - {b code injection}: execution reaches an instruction whose memory
      word is tainted;
    - {b tainted sink}: tainted data written to a configured sink port
      (e.g. DISK_WRITE when the policy forbids persisting raw network
      bytes). *)

type finding = {
  at : Avm_machine.Landmark.t;
  kind : [ `Hijacked_control_flow | `Tainted_code_executed | `Tainted_sink of int ];
  detail : string;
}

type t

val create :
  ?taint_network:bool ->
  ?taint_input:bool ->
  ?sink_ports:int list ->
  ?max_findings:int ->
  unit ->
  t
(** Defaults: network tainted, local input not, no sink ports, at most
    1000 findings retained. *)

val on_instr_hook : t -> Avm_machine.Machine.t -> Avm_isa.Isa.instr -> unit
(** The raw per-instruction hook, for composing several analyses on
    one tracer (see {!Forensics}). *)

val attach : t -> Avm_machine.Machine.t -> unit
(** Install the analysis on a machine (replaces any previous tracer).
    Typically called on {!Avm_core.Replay.engine_machine}. *)

val detach : Avm_machine.Machine.t -> unit

val findings : t -> finding list
(** Violations observed so far, oldest first. *)

val tainted_registers : t -> int list
val tainted_words : t -> int
(** Number of currently-tainted memory words. *)

val pp_finding : Format.formatter -> finding -> unit
