open Avm_machine

type hit = { at_icount : int; addr : int; old : int; value : int }

type t = {
  watched : (int, unit) Hashtbl.t;
  mutable history : hit list; (* newest first *)
  mutable machine : Machine.t option;
}

let create ~addrs =
  let watched = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace watched a ()) addrs;
  { watched; history = []; machine = None }

let on_write t addr ~old ~value =
  if Hashtbl.mem t.watched addr then begin
    let at_icount = match t.machine with Some m -> Machine.icount m | None -> -1 in
    t.history <- { at_icount; addr; old; value } :: t.history
  end

let attach t machine =
  t.machine <- Some machine;
  Memory.set_watch (Machine.mem machine) (Some (on_write t))

let detach machine = Memory.set_watch (Machine.mem machine) None
let hits t = List.rev t.history

let last_value t addr =
  let rec go = function
    | [] -> None
    | h :: rest -> if h.addr = addr then Some h.value else go rest
  in
  go t.history
