(** Replay-time memory watchpoints (paper §7.5 forensics).

    Record every write to a set of guest addresses during replay, with
    the instruction count at which it happened. After a divergence
    report like "ammo behaves impossibly", an auditor re-replays with a
    watchpoint on the ammo word and gets its full legitimate history to
    compare against claimed behaviour. *)

type hit = { at_icount : int; addr : int; old : int; value : int }

type t

val create : addrs:int list -> t
val attach : t -> Avm_machine.Machine.t -> unit
(** Installs a memory watch hook (replaces any previous one). *)

val detach : Avm_machine.Machine.t -> unit
val hits : t -> hit list
(** Chronological write history of the watched addresses. *)

val last_value : t -> int -> int option
(** Most recent value written to an address, if any write was seen. *)
