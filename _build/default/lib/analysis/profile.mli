(** Replay-time execution profiling (paper §7.5).

    Counts opcodes, taken/not-taken branches, and per-pc execution
    frequency during a replay. An auditor uses this to understand
    {e what} a divergent or suspicious execution was doing — the
    forensics side of "decoupling dynamic program analysis from
    execution". *)

type t

val create : unit -> t

val on_instr_hook : t -> Avm_machine.Machine.t -> Avm_isa.Isa.instr -> unit
(** The raw per-instruction hook, for composing several analyses on
    one tracer (see {!Forensics}). *)

val attach : t -> Avm_machine.Machine.t -> unit
val detach : Avm_machine.Machine.t -> unit

val instructions : t -> int
val distinct_pcs : t -> int
(** Coverage: how many distinct instruction addresses executed. *)

val opcode_histogram : t -> (string * int) list
(** Mnemonic -> count, descending. *)

val hottest : t -> n:int -> (int * int) list
(** The [n] most-executed pcs as [(pc, count)], descending. *)

val branch_count : t -> int
(** Control-transfer instructions executed. *)

val report : t -> image:int array -> string
(** Human-readable summary with disassembly of the hot spots. *)
