open Avm_isa
open Avm_machine

type t = {
  mutable instructions : int;
  mutable branches : int;
  pc_counts : (int, int ref) Hashtbl.t;
  op_counts : (string, int ref) Hashtbl.t;
}

let create () =
  { instructions = 0; branches = 0; pc_counts = Hashtbl.create 1024; op_counts = Hashtbl.create 64 }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let mnemonic instr =
  match String.index_opt (Isa.to_string instr) ' ' with
  | Some i -> String.sub (Isa.to_string instr) 0 i
  | None -> Isa.to_string instr

let on_instr t m instr =
  t.instructions <- t.instructions + 1;
  if Isa.is_branch instr then t.branches <- t.branches + 1;
  bump t.pc_counts (Machine.pc m);
  bump t.op_counts (mnemonic instr)

let on_instr_hook = on_instr
let attach t machine = Machine.set_tracer machine (Some (on_instr t))
let detach machine = Machine.set_tracer machine None
let instructions t = t.instructions
let distinct_pcs t = Hashtbl.length t.pc_counts
let branch_count t = t.branches

let sorted_desc tbl =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let opcode_histogram t = sorted_desc t.op_counts

let hottest t ~n =
  let all = sorted_desc t.pc_counts in
  List.filteri (fun i _ -> i < n) all

let report t ~image =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "profile: %d instructions, %d distinct pcs, %d control transfers\n"
       t.instructions (distinct_pcs t) t.branches);
  Buffer.add_string buf "top opcodes:\n";
  List.iteri
    (fun i (op, n) ->
      if i < 8 then Buffer.add_string buf (Printf.sprintf "  %-6s %d\n" op n))
    (opcode_histogram t);
  Buffer.add_string buf "hottest code:\n";
  List.iter
    (fun (pc, n) ->
      let text =
        if pc >= 0 && pc < Array.length image then Avm_isa.Disasm.instruction image.(pc)
        else "?"
      in
      Buffer.add_string buf (Printf.sprintf "  %06x: %-24s %d\n" pc text n))
    (hottest t ~n:8);
  Buffer.contents buf
