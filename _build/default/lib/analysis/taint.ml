open Avm_isa
open Avm_machine

type finding = {
  at : Landmark.t;
  kind : [ `Hijacked_control_flow | `Tainted_code_executed | `Tainted_sink of int ];
  detail : string;
}

type t = {
  taint_network : bool;
  taint_input : bool;
  sink_ports : int list;
  max_findings : int;
  reg_taint : bool array;
  mem_taint : (int, unit) Hashtbl.t; (* tainted word addresses *)
  mutable found : finding list; (* newest first *)
  mutable count : int;
}

let create ?(taint_network = true) ?(taint_input = false) ?(sink_ports = [])
    ?(max_findings = 1000) () =
  {
    taint_network;
    taint_input;
    sink_ports;
    max_findings;
    reg_taint = Array.make 16 false;
    mem_taint = Hashtbl.create 256;
    found = [];
    count = 0;
  }

let mem_tainted t addr = Hashtbl.mem t.mem_taint addr

let set_mem t addr tainted =
  if tainted then Hashtbl.replace t.mem_taint addr ()
  else Hashtbl.remove t.mem_taint addr

let report t at kind detail =
  if t.count < t.max_findings then begin
    t.found <- { at; kind; detail } :: t.found;
    t.count <- t.count + 1
  end

let is_source t port =
  (t.taint_network && port = Isa.port_net_rx) || (t.taint_input && port = Isa.port_input)

(* Dataflow, mirroring Machine.step's semantics. Runs on the
   pre-execution state, so register values give exact effective
   addresses. *)
let on_instr t m instr =
  let rt = t.reg_taint in
  let at () = Machine.landmark m in
  (* Code injection: the word we are about to execute is tainted. *)
  if mem_tainted t (Machine.pc m) then
    report t (at ()) `Tainted_code_executed
      (Printf.sprintf "instruction word at pc=0x%x is network-derived" (Machine.pc m));
  match instr with
  | Isa.Halt | Isa.Nop | Isa.Ei | Isa.Di | Isa.Iret -> ()
  | Isa.Mov (d, s) -> rt.(d) <- rt.(s)
  | Isa.Movi (d, _) | Isa.Lui (d, _) -> rt.(d) <- false
  | Isa.Add (d, a, b)
  | Isa.Sub (d, a, b)
  | Isa.Mul (d, a, b)
  | Isa.Div (d, a, b)
  | Isa.Rem (d, a, b)
  | Isa.And (d, a, b)
  | Isa.Or (d, a, b)
  | Isa.Xor (d, a, b)
  | Isa.Shl (d, a, b)
  | Isa.Shr (d, a, b)
  | Isa.Sar (d, a, b)
  | Isa.Slt (d, a, b)
  | Isa.Sltu (d, a, b)
  | Isa.Seq (d, a, b) ->
    rt.(d) <- rt.(a) || rt.(b)
  | Isa.Addi (d, a, _)
  | Isa.Andi (d, a, _)
  | Isa.Ori (d, a, _)
  | Isa.Xori (d, a, _)
  | Isa.Shli (d, a, _)
  | Isa.Shri (d, a, _)
  | Isa.Sari (d, a, _) ->
    rt.(d) <- rt.(a)
  | Isa.Load (d, a, off) ->
    let addr = Machine.reg m a + off in
    (* Pointer taint propagates: reading through an attacker-derived
       pointer yields attacker-controlled data. *)
    rt.(d) <- rt.(a) || mem_tainted t addr
  | Isa.Store (v, a, off) ->
    let addr = Machine.reg m a + off in
    set_mem t addr (rt.(v) || rt.(a))
  | Isa.Jmp _ -> ()
  | Isa.Jal (d, _) -> rt.(d) <- false
  | Isa.Jr a ->
    if rt.(a) then
      report t (at ()) `Hijacked_control_flow
        (Printf.sprintf "jr through tainted %s (target 0x%x)" (Isa.reg_name a) (Machine.reg m a))
  | Isa.Jalr (d, a) ->
    if rt.(a) then
      report t (at ()) `Hijacked_control_flow
        (Printf.sprintf "jalr through tainted %s (target 0x%x)" (Isa.reg_name a)
           (Machine.reg m a));
    rt.(d) <- false
  | Isa.Beq _ | Isa.Bne _ | Isa.Blt _ | Isa.Bge _ | Isa.Bltu _ | Isa.Bgeu _ ->
    () (* implicit flows not tracked *)
  | Isa.In (d, port) -> rt.(d) <- is_source t port
  | Isa.Out (s, port) ->
    if rt.(s) && List.mem port t.sink_ports then
      report t (at ()) (`Tainted_sink port)
        (Printf.sprintf "tainted word written to %s" (Isa.port_name port))

let on_instr_hook = on_instr
let attach t machine = Machine.set_tracer machine (Some (on_instr t))
let detach machine = Machine.set_tracer machine None
let findings t = List.rev t.found

let tainted_registers t =
  let acc = ref [] in
  for i = 15 downto 0 do
    if t.reg_taint.(i) then acc := i :: !acc
  done;
  !acc

let tainted_words t = Hashtbl.length t.mem_taint

let pp_finding fmt f =
  let kind =
    match f.kind with
    | `Hijacked_control_flow -> "control-flow hijack"
    | `Tainted_code_executed -> "tainted code executed"
    | `Tainted_sink p -> Printf.sprintf "tainted data at sink %s" (Isa.port_name p)
  in
  Format.fprintf fmt "@[<h>[%s] %a: %s@]" kind Landmark.pp f.at f.detail
