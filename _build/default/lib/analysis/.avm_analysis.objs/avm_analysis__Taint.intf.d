lib/analysis/taint.mli: Avm_isa Avm_machine Format
