lib/analysis/taint.ml: Array Avm_isa Avm_machine Format Hashtbl Isa Landmark List Machine Printf
