lib/analysis/watchpoints.ml: Avm_machine Hashtbl List Machine Memory
