lib/analysis/forensics.mli: Avm_core Avm_tamperlog Profile Taint Watchpoints
