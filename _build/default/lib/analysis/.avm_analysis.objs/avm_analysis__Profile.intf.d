lib/analysis/profile.mli: Avm_isa Avm_machine
