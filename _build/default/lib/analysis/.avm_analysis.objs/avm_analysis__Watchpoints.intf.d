lib/analysis/watchpoints.mli: Avm_machine
