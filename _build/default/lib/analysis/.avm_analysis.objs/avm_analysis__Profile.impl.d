lib/analysis/profile.ml: Array Avm_isa Avm_machine Buffer Hashtbl Isa List Machine Printf String
