lib/analysis/forensics.ml: Avm_core Avm_machine List Option Profile Replay Taint Watchpoints
