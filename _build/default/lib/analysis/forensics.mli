(** One-call replay with analyses attached (paper §7.5).

    "Sophisticated runtime techniques can be used during replay to
    detect bugs, vulnerabilities and attacks as part of a normal
    audit." This module wires {!Taint}, {!Profile} and {!Watchpoints}
    onto a {!Avm_core.Replay.engine} and runs the semantic check. *)

type result = {
  outcome : Avm_core.Replay.outcome;
  taint_findings : Taint.finding list;
  profile : Profile.t option;
  watch_hits : Watchpoints.hit list;
}

val replay :
  image:int array ->
  ?mem_words:int ->
  ?fuel:int ->
  peers:(int * string) list ->
  entries:Avm_tamperlog.Entry.t list ->
  ?taint:Taint.t ->
  ?profile:Profile.t ->
  ?watch:Watchpoints.t ->
  unit ->
  result
(** Replays the segment with the given analyses attached (taint and
    profile compose on the instruction tracer; watchpoints use the
    memory hook). Analyses observe the {e replayed} reference
    execution — i.e. the legitimate behaviour the audited machine
    committed to. *)
