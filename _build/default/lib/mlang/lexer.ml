type token = INT of int | IDENT of string | KW of string | PUNCT of string | EOF

type lexeme = { token : token; line : int }

exception Error of { line : int; message : string }

let keywords =
  [ "var"; "fn"; "interrupt"; "global"; "const"; "if"; "else"; "while"; "break";
    "continue"; "return" ]

(* Longest first so that e.g. "<<" is not read as "<" "<". *)
let puncts =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "("; ")"; "{"; "}"; "["; "]";
    ";"; ","; "="; "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<"; ">"; "!"; "~" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let emit token = out := { token; line = !line } :: !out in
  let starts_with p =
    String.length p <= n - !pos && String.equal (String.sub src !pos (String.length p)) p
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if starts_with "//" then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '\'' then begin
      if !pos + 2 < n && src.[!pos + 2] = '\'' then begin
        emit (INT (Char.code src.[!pos + 1]));
        pos := !pos + 3
      end
      else raise (Error { line = !line; message = "bad char literal" })
    end
    else if is_digit c then begin
      let start = !pos in
      if starts_with "0x" || starts_with "0X" then begin
        pos := !pos + 2;
        while !pos < n && (is_digit src.[!pos] || is_ident src.[!pos]) do
          incr pos
        done
      end
      else
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
      let text = String.sub src start (!pos - start) in
      match int_of_string_opt text with
      | Some v -> emit (INT v)
      | None -> raise (Error { line = !line; message = "bad integer " ^ text })
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident src.[!pos] do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      emit (if List.mem text keywords then KW text else IDENT text)
    end
    else begin
      match List.find_opt starts_with puncts with
      | Some p ->
        emit (PUNCT p);
        pos := !pos + String.length p
      | None ->
        raise (Error { line = !line; message = Printf.sprintf "unexpected character %C" c })
    end
  done;
  List.rev ({ token = EOF; line = !line } :: !out)
