(** One-call compiler facade: mlang source to an AVM-32 image. *)

exception Error of { phase : string; message : string }
(** Any lexing/parsing/codegen/assembly failure, tagged with the
    phase. *)

val compile : ?stack_top:int -> string -> Avm_isa.Asm.image
(** [compile source] is the bootable memory image. [stack_top]
    (default 65536) must not exceed the machine's [mem_words]. *)

val compile_to_asm : ?stack_top:int -> string -> string
(** The intermediate assembly, for inspection and tests. *)
