(** Hand-rolled lexer for mlang. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** var fn interrupt global const if else while break continue return *)
  | PUNCT of string  (** operators and delimiters, longest-match *)
  | EOF

type lexeme = { token : token; line : int }

exception Error of { line : int; message : string }

val tokenize : string -> lexeme list
(** Comments: [//] to end of line. Integers: decimal, hex ([0x..]),
    char literals (['a']).
    @raise Error on an unrecognized character. *)
