open Ast

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type ginfo = { label : string; gsize : int }

type env = {
  globals : (string, ginfo) Hashtbl.t;
  consts : (string, int) Hashtbl.t;
  funcs : (string, int * bool) Hashtbl.t; (* arity, interrupt *)
  buf : Buffer.t;
  mutable next_label : int;
}

type frame = {
  params : string list;
  locals : (string * int) list; (* name -> slot index *)
  mutable loop_labels : (string * string) list; (* (break, continue) stack *)
  in_interrupt : bool;
}

let emit env fmt = Printf.ksprintf (fun s -> Buffer.add_string env.buf ("    " ^ s ^ "\n")) fmt
let emit_label env l = Buffer.add_string env.buf (l ^ ":\n")

let fresh env prefix =
  let n = env.next_label in
  env.next_label <- n + 1;
  Printf.sprintf "L%s_%d" prefix n

let builtin_arity = [ ("in", 1); ("out", 2); ("halt", 0); ("ei", 0); ("di", 0); ("ivt", 1) ]

(* Compile-time constant evaluation, for port numbers and global
   initializers. *)
let rec const_eval env = function
  | Int v -> Some v
  | Var name -> Hashtbl.find_opt env.consts name
  | Unop (Neg, e) -> Option.map (fun v -> -v) (const_eval env e)
  | Binop (op, a, b) -> (
    match (const_eval env a, const_eval env b) with
    | Some x, Some y -> (
      match op with
      | Add -> Some (x + y)
      | Sub -> Some (x - y)
      | Mul -> Some (x * y)
      | Shl -> Some (x lsl y)
      | BOr -> Some (x lor y)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* Collect local variable declarations (flat scoping per function). *)
let collect_locals (f : func) =
  let seen = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace seen p ()) f.params;
  let locals = ref [] in
  let add name =
    if Hashtbl.mem seen name then
      fail "function %s: duplicate variable %s (mlang scoping is flat per function)" f.fname
        name;
    Hashtbl.replace seen name ();
    locals := name :: !locals
  in
  let rec walk_stmt = function
    | Decl (name, _) -> add name
    | If (_, a, b) ->
      List.iter walk_stmt a;
      List.iter walk_stmt b
    | While (_, body) -> List.iter walk_stmt body
    | Assign _ | Assign_index _ | Break | Continue | Return _ | Expr _ -> ()
  in
  List.iter walk_stmt f.body;
  List.mapi (fun i name -> (name, i)) (List.rev !locals)

let local_offset frame name =
  match List.assoc_opt name frame.locals with
  | Some slot -> Some (-1 - slot)
  | None -> (
    match List.find_index (fun p -> String.equal p name) frame.params with
    | Some i -> Some (2 + (List.length frame.params - 1 - i))
    | None -> None)

let rec gen_expr env frame e =
  match e with
  | Int v ->
    emit env "li r1, %d" v;
    emit env "push r1"
  | Var name -> (
    match local_offset frame name with
    | Some off ->
      emit env "load r1, fp, %d" off;
      emit env "push r1"
    | None -> (
      match Hashtbl.find_opt env.consts name with
      | Some v ->
        emit env "li r1, %d" v;
        emit env "push r1"
      | None -> (
        match Hashtbl.find_opt env.globals name with
        | Some g ->
          emit env "la r1, %s" g.label;
          emit env "load r1, r1, 0";
          emit env "push r1"
        | None -> fail "undefined variable %s" name)))
  | Index (name, idx) -> (
    match Hashtbl.find_opt env.globals name with
    | Some g ->
      gen_expr env frame idx;
      emit env "la r1, %s" g.label;
      emit env "pop r2";
      emit env "add r1, r1, r2";
      emit env "load r1, r1, 0";
      emit env "push r1"
    | None -> fail "undefined array %s" name)
  | Unop (op, a) ->
    gen_expr env frame a;
    emit env "pop r1";
    (match op with
    | Neg ->
      emit env "movi r2, 0";
      emit env "sub r1, r2, r1"
    | LNot ->
      emit env "movi r2, 0";
      emit env "seq r1, r1, r2"
    | BNot ->
      emit env "movi r2, -1";
      emit env "xor r1, r1, r2");
    emit env "push r1"
  | Binop (LAnd, a, b) ->
    let lfalse = fresh env "and_false" and lend = fresh env "and_end" in
    gen_expr env frame a;
    emit env "pop r1";
    emit env "movi r2, 0";
    emit env "beq r1, r2, %s" lfalse;
    gen_expr env frame b;
    emit env "pop r1";
    emit env "movi r2, 0";
    emit env "beq r1, r2, %s" lfalse;
    emit env "movi r1, 1";
    emit env "jmp %s" lend;
    emit_label env lfalse;
    emit env "movi r1, 0";
    emit_label env lend;
    emit env "push r1"
  | Binop (LOr, a, b) ->
    let ltrue = fresh env "or_true" and lend = fresh env "or_end" in
    gen_expr env frame a;
    emit env "pop r1";
    emit env "movi r2, 0";
    emit env "bne r1, r2, %s" ltrue;
    gen_expr env frame b;
    emit env "pop r1";
    emit env "movi r2, 0";
    emit env "bne r1, r2, %s" ltrue;
    emit env "movi r1, 0";
    emit env "jmp %s" lend;
    emit_label env ltrue;
    emit env "movi r1, 1";
    emit_label env lend;
    emit env "push r1"
  | Binop (op, a, b) ->
    gen_expr env frame a;
    gen_expr env frame b;
    emit env "pop r2"; (* rhs *)
    emit env "pop r1"; (* lhs *)
    (match op with
    | Add -> emit env "add r1, r1, r2"
    | Sub -> emit env "sub r1, r1, r2"
    | Mul -> emit env "mul r1, r1, r2"
    | Div -> emit env "div r1, r1, r2"
    | Rem -> emit env "rem r1, r1, r2"
    | BAnd -> emit env "and r1, r1, r2"
    | BOr -> emit env "or r1, r1, r2"
    | BXor -> emit env "xor r1, r1, r2"
    | Shl -> emit env "shl r1, r1, r2"
    | Shr -> emit env "shr r1, r1, r2"
    | Eq -> emit env "seq r1, r1, r2"
    | Ne ->
      emit env "seq r1, r1, r2";
      emit env "xori r1, r1, 1"
    | Lt -> emit env "slt r1, r1, r2"
    | Gt -> emit env "slt r1, r2, r1"
    | Le ->
      emit env "slt r1, r2, r1";
      emit env "xori r1, r1, 1"
    | Ge ->
      emit env "slt r1, r1, r2";
      emit env "xori r1, r1, 1"
    | LAnd | LOr -> assert false);
    emit env "push r1"
  | Call (name, args) -> gen_call env frame name args

and gen_call env frame name args =
  let require_port e =
    match const_eval env e with
    | Some v when v >= 0 && v <= 0xffff -> v
    | Some v -> fail "port %d out of range in call to %s" v name
    | None -> fail "%s requires a compile-time constant port" name
  in
  match (name, args) with
  | "in", [ p ] ->
    emit env "in r1, %d" (require_port p);
    emit env "push r1"
  | "out", [ p; e ] ->
    let port = require_port p in
    gen_expr env frame e;
    emit env "pop r1";
    emit env "out r1, %d" port;
    emit env "movi r1, 0";
    emit env "push r1"
  | "halt", [] ->
    emit env "halt";
    emit env "movi r1, 0";
    emit env "push r1"
  | "ei", [] ->
    emit env "ei";
    emit env "movi r1, 0";
    emit env "push r1"
  | "di", [] ->
    emit env "di";
    emit env "movi r1, 0";
    emit env "push r1"
  | "ivt", [ Var handler ] ->
    (match Hashtbl.find_opt env.funcs handler with
    | Some (_, true) -> ()
    | Some (_, false) -> fail "ivt(%s): %s is not an interrupt fn" handler handler
    | None -> fail "ivt(%s): undefined function" handler);
    emit env "la r1, f_%s" handler;
    emit env "out r1, IVT";
    emit env "movi r1, 0";
    emit env "push r1"
  | ("in" | "out" | "halt" | "ei" | "di" | "ivt"), _ ->
    fail "builtin %s: wrong arguments (expected arity %d)" name (List.assoc name builtin_arity)
  | _, _ -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> fail "undefined function %s" name
    | Some (_, true) -> fail "cannot call interrupt fn %s directly" name
    | Some (arity, false) ->
      if List.length args <> arity then
        fail "call to %s: expected %d arguments, got %d" name arity (List.length args);
      List.iter (gen_expr env frame) args;
      emit env "call f_%s" name;
      if arity > 0 then emit env "addi sp, sp, %d" arity;
      emit env "push r1")

let gen_epilogue env frame =
  if frame.in_interrupt then begin
    emit env "mov sp, fp";
    emit env "pop fp";
    emit env "pop lr";
    emit env "pop at";
    emit env "pop r3";
    emit env "pop r2";
    emit env "pop r1";
    emit env "iret"
  end
  else begin
    emit env "mov sp, fp";
    emit env "pop fp";
    emit env "pop lr";
    emit env "ret"
  end

let rec gen_stmt env frame = function
  | Decl (name, init) -> (
    match init with
    | None -> ()
    | Some e -> (
      gen_expr env frame e;
      emit env "pop r1";
      match local_offset frame name with
      | Some off -> emit env "store r1, fp, %d" off
      | None -> assert false))
  | Assign (name, e) -> (
    gen_expr env frame e;
    match local_offset frame name with
    | Some off ->
      emit env "pop r1";
      emit env "store r1, fp, %d" off
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some g ->
        emit env "la r1, %s" g.label;
        emit env "pop r2";
        emit env "store r2, r1, 0"
      | None ->
        if Hashtbl.mem env.consts name then fail "cannot assign to const %s" name
        else fail "undefined variable %s" name))
  | Assign_index (name, idx, e) -> (
    match Hashtbl.find_opt env.globals name with
    | None -> fail "undefined array %s" name
    | Some g ->
      gen_expr env frame e;
      gen_expr env frame idx;
      emit env "la r1, %s" g.label;
      emit env "pop r2"; (* index *)
      emit env "add r1, r1, r2";
      emit env "pop r2"; (* value *)
      emit env "store r2, r1, 0")
  | If (cond, then_, else_) ->
    let lelse = fresh env "else" and lend = fresh env "endif" in
    gen_expr env frame cond;
    emit env "pop r1";
    emit env "movi r2, 0";
    emit env "beq r1, r2, %s" lelse;
    List.iter (gen_stmt env frame) then_;
    emit env "jmp %s" lend;
    emit_label env lelse;
    List.iter (gen_stmt env frame) else_;
    emit_label env lend
  | While (cond, body) ->
    let lcond = fresh env "while" and lend = fresh env "endwhile" in
    emit_label env lcond;
    gen_expr env frame cond;
    emit env "pop r1";
    emit env "movi r2, 0";
    emit env "beq r1, r2, %s" lend;
    frame.loop_labels <- (lend, lcond) :: frame.loop_labels;
    List.iter (gen_stmt env frame) body;
    frame.loop_labels <- List.tl frame.loop_labels;
    emit env "jmp %s" lcond;
    emit_label env lend
  | Break -> (
    match frame.loop_labels with
    | (lend, _) :: _ -> emit env "jmp %s" lend
    | [] -> fail "break outside a loop")
  | Continue -> (
    match frame.loop_labels with
    | (_, lcond) :: _ -> emit env "jmp %s" lcond
    | [] -> fail "continue outside a loop")
  | Return e ->
    (match e with
    | Some e ->
      gen_expr env frame e;
      emit env "pop r1"
    | None -> emit env "movi r1, 0");
    gen_epilogue env frame
  | Expr e ->
    gen_expr env frame e;
    emit env "pop r1" (* discard *)

let gen_func env (f : func) =
  if f.interrupt && f.params <> [] then fail "interrupt fn %s cannot take parameters" f.fname;
  let locals = collect_locals f in
  let frame = { params = f.params; locals; loop_labels = []; in_interrupt = f.interrupt } in
  emit_label env ("f_" ^ f.fname);
  if f.interrupt then begin
    emit env "push r1";
    emit env "push r2";
    emit env "push r3";
    emit env "push at";
    emit env "push lr";
    emit env "push fp"
  end
  else begin
    emit env "push lr";
    emit env "push fp"
  end;
  emit env "mov fp, sp";
  if locals <> [] then emit env "addi sp, sp, %d" (-List.length locals);
  List.iter (gen_stmt env frame) f.body;
  (* Implicit return for functions that fall off the end. *)
  emit env "movi r1, 0";
  gen_epilogue env frame

let generate ?(stack_top = 65536) program =
  let env =
    {
      globals = Hashtbl.create 16;
      consts = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      buf = Buffer.create 4096;
      next_label = 0;
    }
  in
  List.iter (fun (n, v) -> Hashtbl.replace env.consts n v) Avm_isa.Isa.named_ports;
  (* First pass: register declarations. *)
  List.iter
    (function
      | Global { gname; size; _ } ->
        if Hashtbl.mem env.globals gname then fail "duplicate global %s" gname;
        Hashtbl.replace env.globals gname { label = "g_" ^ gname; gsize = size }
      | Const (name, v) ->
        if Hashtbl.mem env.consts name then fail "duplicate const %s" name;
        Hashtbl.replace env.consts name v
      | Func f ->
        if Hashtbl.mem env.funcs f.fname then fail "duplicate function %s" f.fname;
        Hashtbl.replace env.funcs f.fname (List.length f.params, f.interrupt))
    program;
  if not (Hashtbl.mem env.funcs "main") then fail "no fn main() defined";
  (* Entry stanza. *)
  emit env "li sp, %d" stack_top;
  emit env "movi fp, 0";
  emit env "call f_main";
  emit env "halt";
  (* Code. *)
  List.iter (function Func f -> gen_func env f | Global _ | Const _ -> ()) program;
  (* Data. *)
  List.iter
    (function
      | Global { gname; size; init } ->
        emit_label env ("g_" ^ gname);
        List.iter (fun v -> emit env ".word %d" v) init;
        let rest = size - List.length init in
        if rest > 0 then emit env ".space %d" rest
      | Const _ | Func _ -> ())
    program;
  Buffer.contents env.buf
