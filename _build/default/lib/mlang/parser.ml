open Ast

exception Error of { line : int; message : string }

type state = { mutable toks : Lexer.lexeme list }

let fail (st : state) fmt =
  let line = match st.toks with { Lexer.line; _ } :: _ -> line | [] -> 0 in
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let peek st = match st.toks with t :: _ -> t.Lexer.token | [] -> Lexer.EOF
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q -> advance st
  | _ -> fail st "expected %s" p

let eat_kw st k =
  match peek st with
  | Lexer.KW q when String.equal k q -> advance st
  | _ -> fail st "expected keyword %s" k

let try_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st "expected an identifier"

let int_lit st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    v
  | Lexer.PUNCT "-" -> (
    advance st;
    match peek st with
    | Lexer.INT v ->
      advance st;
      -v
    | _ -> fail st "expected an integer")
  | _ -> fail st "expected an integer"

(* Binary operator precedence, higher binds tighter. *)
let binop_of_punct = function
  | "||" -> Some (LOr, 1)
  | "&&" -> Some (LAnd, 2)
  | "|" -> Some (BOr, 3)
  | "^" -> Some (BXor, 4)
  | "&" -> Some (BAnd, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Rem, 10)
  | _ -> None

let rec expr st = binary st 0

and binary st min_prec =
  let lhs = ref (unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = binary st (prec + 1) in
        lhs := Binop (op, !lhs, rhs)
      | _ -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Unop (Neg, unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Unop (LNot, unary st)
  | Lexer.PUNCT "~" ->
    advance st;
    Unop (BNot, unary st)
  | _ -> primary st

and primary st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    Int v
  | Lexer.PUNCT "(" ->
    advance st;
    let e = expr st in
    eat_punct st ")";
    e
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = ref [] in
      if not (try_punct st ")") then begin
        let rec loop () =
          args := expr st :: !args;
          if try_punct st "," then loop () else eat_punct st ")"
        in
        loop ()
      end;
      Call (name, List.rev !args)
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = expr st in
      eat_punct st "]";
      Index (name, idx)
    | _ -> Var name)
  | _ -> fail st "expected an expression"

let rec stmt st =
  match peek st with
  | Lexer.KW "var" ->
    advance st;
    let name = ident st in
    let init = if try_punct st "=" then Some (expr st) else None in
    eat_punct st ";";
    Decl (name, init)
  | Lexer.KW "if" ->
    advance st;
    if_stmt st
  | Lexer.KW "while" ->
    advance st;
    eat_punct st "(";
    let cond = expr st in
    eat_punct st ")";
    let body = block st in
    While (cond, body)
  | Lexer.KW "break" ->
    advance st;
    eat_punct st ";";
    Break
  | Lexer.KW "continue" ->
    advance st;
    eat_punct st ";";
    Continue
  | Lexer.KW "return" ->
    advance st;
    if try_punct st ";" then Return None
    else begin
      let e = expr st in
      eat_punct st ";";
      Return (Some e)
    end
  | Lexer.IDENT name -> (
    (* Could be an assignment, an indexed assignment, or an expression
       statement; decide by looking past the identifier. *)
    match st.toks with
    | _ :: { Lexer.token = Lexer.PUNCT "="; _ } :: _ ->
      advance st;
      advance st;
      let e = expr st in
      eat_punct st ";";
      Assign (name, e)
    | _ :: { Lexer.token = Lexer.PUNCT "["; _ } :: _ -> (
      (* Either a[i] = e; or an expression mentioning a[i]. Parse the
         index, then decide. *)
      advance st;
      advance st;
      let idx = expr st in
      eat_punct st "]";
      match peek st with
      | Lexer.PUNCT "=" ->
        advance st;
        let e = expr st in
        eat_punct st ";";
        Assign_index (name, idx, e)
      | _ ->
        (* Re-build the expression we already consumed and continue
           parsing the remainder as a binary expression. *)
        let lhs = Index (name, idx) in
        let e = binary_with st lhs in
        eat_punct st ";";
        Expr e)
    | _ ->
      let e = expr st in
      eat_punct st ";";
      Expr e)
  | _ ->
    let e = expr st in
    eat_punct st ";";
    Expr e

and binary_with st lhs =
  (* Continue precedence climbing with an already-parsed left side. *)
  let res = ref lhs in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some (op, prec) ->
        advance st;
        let rhs = binary st (prec + 1) in
        res := Binop (op, !res, rhs)
      | None -> continue := false)
    | _ -> continue := false
  done;
  !res

and if_stmt st =
  eat_punct st "(";
  let cond = expr st in
  eat_punct st ")";
  let then_ = block st in
  let else_ =
    match peek st with
    | Lexer.KW "else" -> (
      advance st;
      match peek st with
      | Lexer.KW "if" ->
        advance st;
        [ if_stmt st ]
      | _ -> block st)
    | _ -> []
  in
  If (cond, then_, else_)

and block st =
  eat_punct st "{";
  let stmts = ref [] in
  while not (try_punct st "}") do
    stmts := stmt st :: !stmts
  done;
  List.rev !stmts

let func st interrupt =
  let fname = ident st in
  eat_punct st "(";
  let params = ref [] in
  if not (try_punct st ")") then begin
    let rec loop () =
      params := ident st :: !params;
      if try_punct st "," then loop () else eat_punct st ")"
    in
    loop ()
  end;
  let body = block st in
  Func { fname; params = List.rev !params; body; interrupt }

let decl st =
  match peek st with
  | Lexer.KW "global" ->
    advance st;
    let gname = ident st in
    let size =
      if try_punct st "[" then begin
        let s = int_lit st in
        eat_punct st "]";
        s
      end
      else 1
    in
    if size < 1 then fail st "global %s: size must be positive" gname;
    let init =
      if try_punct st "=" then begin
        if try_punct st "{" then begin
          let vals = ref [ int_lit st ] in
          while try_punct st "," do
            vals := int_lit st :: !vals
          done;
          eat_punct st "}";
          List.rev !vals
        end
        else [ int_lit st ]
      end
      else []
    in
    if List.length init > size then fail st "global %s: too many initializers" gname;
    eat_punct st ";";
    Global { gname; size; init }
  | Lexer.KW "const" ->
    advance st;
    let name = ident st in
    eat_punct st "=";
    let v = int_lit st in
    eat_punct st ";";
    Const (name, v)
  | Lexer.KW "interrupt" ->
    advance st;
    eat_kw st "fn";
    func st true
  | Lexer.KW "fn" ->
    advance st;
    func st false
  | _ -> fail st "expected a declaration"

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let decls = ref [] in
  while peek st <> Lexer.EOF do
    decls := decl st :: !decls
  done;
  List.rev !decls
