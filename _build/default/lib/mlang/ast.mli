(** Abstract syntax of mlang, the small imperative language guest
    images are written in.

    mlang is this repository's stand-in for the C the paper's guest
    software was compiled from: word-sized integers, globals (scalars
    and arrays), functions with recursion, interrupt handlers, and
    I/O-port intrinsics. See [lib/mlang/parser.mli] for the concrete
    grammar. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr  (** short-circuiting *)

type unop = Neg | LNot | BNot

type expr =
  | Int of int
  | Var of string  (** local, param, global scalar, or constant *)
  | Index of string * expr  (** global array element *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** user function or builtin *)

type stmt =
  | Decl of string * expr option  (** [var x = e;] *)
  | Assign of string * expr
  | Assign_index of string * expr * expr  (** [a\[i\] = e;] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Break
  | Continue
  | Return of expr option
  | Expr of expr

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  interrupt : bool;  (** compiled with an IRET epilogue and full register save *)
}

type decl =
  | Global of { gname : string; size : int; init : int list }
      (** [size] in words; scalars have size 1 *)
  | Const of string * int
  | Func of func

type program = decl list
