(** Recursive-descent parser for mlang.

    Grammar (EBNF, whitespace-insensitive, [//] comments):

    {v
    program   ::= decl*
    decl      ::= "global" IDENT ("[" INT "]")? ("=" init)? ";"
                | "const" IDENT "=" INT ";"
                | "interrupt"? "fn" IDENT "(" ( IDENT ( "," IDENT )* )? ")" block
    init      ::= INT | "{" INT ("," INT)* "}"
    block     ::= "{" stmt* "}"
    stmt      ::= "var" IDENT ("=" expr)? ";"
                | IDENT "=" expr ";"
                | IDENT "[" expr "]" "=" expr ";"
                | "if" "(" expr ")" block ("else" (block | if-stmt))?
                | "while" "(" expr ")" block
                | "break" ";" | "continue" ";"
                | "return" expr? ";"
                | expr ";"
    expr      ::= precedence climbing over:
                  || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ;
                  + - ; * / % ; unary - ! ~ ; primary
    primary   ::= INT | CHAR | IDENT | IDENT "(" args ")"
                | IDENT "[" expr "]" | "(" expr ")"
    v} *)

exception Error of { line : int; message : string }

val parse : string -> Ast.program
(** @raise Error with a source line on any syntax problem. *)
