type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr

type unop = Neg | LNot | BNot

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list

type stmt =
  | Decl of string * expr option
  | Assign of string * expr
  | Assign_index of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Break
  | Continue
  | Return of expr option
  | Expr of expr

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  interrupt : bool;
}

type decl =
  | Global of { gname : string; size : int; init : int list }
  | Const of string * int
  | Func of func

type program = decl list
