lib/mlang/compile.mli: Avm_isa
