lib/mlang/codegen.ml: Ast Avm_isa Buffer Hashtbl List Option Printf String
