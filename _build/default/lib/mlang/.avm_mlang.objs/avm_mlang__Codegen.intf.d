lib/mlang/codegen.mli: Ast
