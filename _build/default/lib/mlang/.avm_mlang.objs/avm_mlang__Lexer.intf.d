lib/mlang/lexer.mli:
