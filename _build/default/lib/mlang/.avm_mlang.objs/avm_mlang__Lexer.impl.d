lib/mlang/lexer.ml: Char List Printf String
