lib/mlang/compile.ml: Avm_isa Codegen Lexer Parser Printf
