lib/mlang/ast.ml:
