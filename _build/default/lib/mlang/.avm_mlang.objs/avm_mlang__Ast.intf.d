lib/mlang/ast.mli:
