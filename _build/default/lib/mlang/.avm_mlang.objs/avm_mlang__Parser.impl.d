lib/mlang/parser.ml: Ast Lexer List Printf String
