(** AVM-32 code generation for mlang.

    A simple, predictable stack-machine translation: every expression
    pushes its value on the guest stack; statements keep the stack
    balanced. No optimization is attempted — guest cycles are virtual,
    and a naive mapping keeps the compiler small and auditable.

    Conventions: [sp]=r13 stack pointer (full-descending), [fp]=r12
    frame pointer, [lr]=r14 link, [at]=r15 assembler temporary;
    expression evaluation uses r1/r2; results return in r1. Interrupt
    functions save r1–r3, at, lr, fp and end in [iret].

    Builtins: [in(PORT)], [out(PORT, e)] (PORT must be a compile-time
    constant: a literal or a [const]; all {!Avm_isa.Isa.named_ports}
    are predefined), [halt()], [ei()], [di()], [ivt(handler_name)]. *)

exception Error of string

val generate : ?stack_top:int -> Ast.program -> string
(** [generate prog] is AVM-32 assembly text for {!Avm_isa.Asm}. The
    program must define [fn main()]. [stack_top] (default 65536) is
    the initial stack pointer.
    @raise Error on undefined names, arity mismatches, duplicate
    definitions, [break] outside a loop, or non-constant port
    arguments. *)
