exception Error of { phase : string; message : string }

let wrap phase f x =
  try f x with
  | Lexer.Error { line; message } ->
    raise (Error { phase; message = Printf.sprintf "line %d: %s" line message })
  | Parser.Error { line; message } ->
    raise (Error { phase; message = Printf.sprintf "line %d: %s" line message })
  | Codegen.Error message -> raise (Error { phase; message })
  | Avm_isa.Asm.Error { line; message } ->
    raise (Error { phase; message = Printf.sprintf "asm line %d: %s" line message })

let compile_to_asm ?stack_top source =
  wrap "compile" (fun s -> Codegen.generate ?stack_top (Parser.parse s)) source

let compile ?stack_top source =
  wrap "assemble" Avm_isa.Asm.assemble (compile_to_asm ?stack_top source)
