exception Error of { line : int; message : string }

type image = { words : int array; symbols : (string * int) list }

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* Operands as parsed; symbols are resolved in pass 2. *)
type operand = Reg of int | Imm of int | Sym of string

type item =
  | Op of { line : int; mnemonic : string; operands : operand list }
  | Data_word of { line : int; value : operand }
  | Data_space of int

let registers =
  [ ("fp", 12); ("sp", 13); ("lr", 14); ("at", 15) ]
  @ List.init 16 (fun i -> (Printf.sprintf "r%d" i, i))

let tokenize line_no raw =
  let raw = match String.index_opt raw ';' with Some i -> String.sub raw 0 i | None -> raw in
  let raw = String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) raw in
  String.split_on_char ' ' raw
  |> List.filter (fun t -> t <> "")
  |> fun toks ->
  if List.exists (fun t -> String.contains t ',') toks then fail line_no "stray comma";
  toks

let parse_int line tok =
  let parse s = try Some (int_of_string s) with Failure _ -> None in
  match tok with
  | "" -> fail line "empty operand"
  | _ when String.length tok = 3 && tok.[0] = '\'' && tok.[2] = '\'' -> Some (Char.code tok.[1])
  | _ -> parse tok

let parse_operand equs line tok =
  match List.assoc_opt (String.lowercase_ascii tok) registers with
  | Some r -> Reg r
  | None -> (
    match parse_int line tok with
    | Some v -> Imm v
    | None -> (
      match List.assoc_opt tok !equs with
      | Some v -> Imm v
      | None -> Sym tok))

(* Pass 1: parse every line, assign addresses, record labels. *)
let parse source =
  let equs = ref Isa.named_ports in
  let items = ref [] in
  let labels = Hashtbl.create 64 in
  let addr = ref 0 in
  let size_of_pseudo line mnemonic operands =
    (* Word count each item will occupy after expansion. *)
    match (mnemonic, operands) with
    | "li", [ Reg _; Imm v ] -> if v >= -32768 && v <= 32767 then 1 else 2
    | "li", [ Reg _; Sym _ ] -> 2 (* symbol value unknown yet: fixed form *)
    | "li", _ -> fail line "li needs a register and an immediate"
    | "la", _ -> 2
    | "push", _ | "pop", _ -> 2
    | _ -> 1
  in
  let handle_line line_no raw =
    let toks = tokenize line_no raw in
    match toks with
    | [] -> ()
    | first :: rest ->
      let first, rest =
        if String.length first > 1 && first.[String.length first - 1] = ':' then begin
          let label = String.sub first 0 (String.length first - 1) in
          if Hashtbl.mem labels label then fail line_no "duplicate label %s" label;
          Hashtbl.add labels label !addr;
          match rest with [] -> ("", []) | m :: ops -> (m, ops)
        end
        else (first, rest)
      in
      if first = "" then ()
      else begin
        let mnemonic = String.lowercase_ascii first in
        match mnemonic with
        | ".equ" -> (
          match rest with
          | [ name; value ] -> (
            match parse_int line_no value with
            | Some v -> equs := (name, v) :: !equs
            | None -> (
              match List.assoc_opt value !equs with
              | Some v -> equs := (name, v) :: !equs
              | None -> fail line_no ".equ value must be a constant"))
          | _ -> fail line_no ".equ needs a name and a value")
        | ".word" -> (
          match rest with
          | [ tok ] ->
            items := Data_word { line = line_no; value = parse_operand equs line_no tok } :: !items;
            incr addr
          | _ -> fail line_no ".word needs exactly one value")
        | ".space" -> (
          match rest with
          | [ tok ] -> (
            match parse_int line_no tok with
            | Some n when n >= 0 ->
              items := Data_space n :: !items;
              addr := !addr + n
            | _ -> fail line_no ".space needs a non-negative count")
          | _ -> fail line_no ".space needs exactly one count")
        | _ ->
          let operands = List.map (parse_operand equs line_no) rest in
          items := Op { line = line_no; mnemonic; operands } :: !items;
          addr := !addr + size_of_pseudo line_no mnemonic operands
      end
  in
  List.iteri (fun i raw -> handle_line (i + 1) raw) (String.split_on_char '\n' source);
  (List.rev !items, labels, !addr)

(* Pass 2: resolve symbols and emit words. *)
let assemble source =
  let items, labels, total = parse source in
  let words = Array.make total 0 in
  let pos = ref 0 in
  let lookup line name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> fail line "undefined symbol %s" name
  in
  let emit i =
    words.(!pos) <- Isa.encode i;
    incr pos
  in
  let reg line = function
    | Reg r -> r
    | Imm _ | Sym _ -> fail line "expected a register"
  in
  let imm line = function
    | Imm v -> v
    | Sym s -> lookup line s
    | Reg _ -> fail line "expected an immediate"
  in
  let check16s line v =
    if v < -32768 || v > 32767 then fail line "immediate %d out of signed 16-bit range" v;
    v
  in
  let check16u line v =
    if v < 0 || v > 0xffff then fail line "immediate %d out of unsigned 16-bit range" v;
    v
  in
  let branch_off line target =
    let off = target - (!pos + 1) in
    if off < -32768 || off > 32767 then fail line "branch target out of range";
    off
  in
  let target line = function
    | Sym s -> lookup line s
    | Imm v -> v
    | Reg _ -> fail line "expected a label or address"
  in
  let emit_li rd v =
    let v32 = v land 0xffffffff in
    if v >= -32768 && v <= 32767 then emit (Isa.Movi (rd, v))
    else begin
      emit (Isa.Lui (rd, (v32 lsr 16) land 0xffff));
      emit (Isa.Ori (rd, rd, v32 land 0xffff))
    end
  in
  let sp = 13 and lr = 14 in
  let handle = function
    | Data_word { line; value } ->
      words.(!pos) <- imm line value land 0xffffffff;
      incr pos
    | Data_space n -> pos := !pos + n
    | Op { line; mnemonic; operands } -> (
      let r = reg line and i16s o = check16s line (imm line o) in
      let i16u o = check16u line (imm line o) in
      match (mnemonic, operands) with
      | "halt", [] -> emit Isa.Halt
      | "nop", [] -> emit Isa.Nop
      | "ei", [] -> emit Isa.Ei
      | "di", [] -> emit Isa.Di
      | "iret", [] -> emit Isa.Iret
      | "mov", [ a; b ] -> emit (Isa.Mov (r a, r b))
      | "movi", [ a; b ] -> emit (Isa.Movi (r a, i16s b))
      | "lui", [ a; b ] -> emit (Isa.Lui (r a, i16u b))
      | "add", [ a; b; c ] -> emit (Isa.Add (r a, r b, r c))
      | "sub", [ a; b; c ] -> emit (Isa.Sub (r a, r b, r c))
      | "mul", [ a; b; c ] -> emit (Isa.Mul (r a, r b, r c))
      | "div", [ a; b; c ] -> emit (Isa.Div (r a, r b, r c))
      | "rem", [ a; b; c ] -> emit (Isa.Rem (r a, r b, r c))
      | "and", [ a; b; c ] -> emit (Isa.And (r a, r b, r c))
      | "or", [ a; b; c ] -> emit (Isa.Or (r a, r b, r c))
      | "xor", [ a; b; c ] -> emit (Isa.Xor (r a, r b, r c))
      | "shl", [ a; b; c ] -> emit (Isa.Shl (r a, r b, r c))
      | "shr", [ a; b; c ] -> emit (Isa.Shr (r a, r b, r c))
      | "sar", [ a; b; c ] -> emit (Isa.Sar (r a, r b, r c))
      | "slt", [ a; b; c ] -> emit (Isa.Slt (r a, r b, r c))
      | "sltu", [ a; b; c ] -> emit (Isa.Sltu (r a, r b, r c))
      | "seq", [ a; b; c ] -> emit (Isa.Seq (r a, r b, r c))
      | "addi", [ a; b; c ] -> emit (Isa.Addi (r a, r b, i16s c))
      | "andi", [ a; b; c ] -> emit (Isa.Andi (r a, r b, i16u c))
      | "ori", [ a; b; c ] -> emit (Isa.Ori (r a, r b, i16u c))
      | "xori", [ a; b; c ] -> emit (Isa.Xori (r a, r b, i16u c))
      | "shli", [ a; b; c ] -> emit (Isa.Shli (r a, r b, i16u c land 31))
      | "shri", [ a; b; c ] -> emit (Isa.Shri (r a, r b, i16u c land 31))
      | "sari", [ a; b; c ] -> emit (Isa.Sari (r a, r b, i16u c land 31))
      | "load", [ a; b; c ] -> emit (Isa.Load (r a, r b, i16s c))
      | "load", [ a; b ] -> emit (Isa.Load (r a, r b, 0))
      | "store", [ a; b; c ] -> emit (Isa.Store (r a, r b, i16s c))
      | "store", [ a; b ] -> emit (Isa.Store (r a, r b, 0))
      | "jmp", [ t ] -> emit (Isa.Jmp (branch_off line (target line t)))
      | "jal", [ a; t ] -> emit (Isa.Jal (r a, branch_off line (target line t)))
      | "jr", [ a ] -> emit (Isa.Jr (r a))
      | "jalr", [ a; b ] -> emit (Isa.Jalr (r a, r b))
      | "beq", [ a; b; t ] -> emit (Isa.Beq (r a, r b, branch_off line (target line t)))
      | "bne", [ a; b; t ] -> emit (Isa.Bne (r a, r b, branch_off line (target line t)))
      | "blt", [ a; b; t ] -> emit (Isa.Blt (r a, r b, branch_off line (target line t)))
      | "bge", [ a; b; t ] -> emit (Isa.Bge (r a, r b, branch_off line (target line t)))
      | "bltu", [ a; b; t ] -> emit (Isa.Bltu (r a, r b, branch_off line (target line t)))
      | "bgeu", [ a; b; t ] -> emit (Isa.Bgeu (r a, r b, branch_off line (target line t)))
      | "in", [ a; p ] -> emit (Isa.In (r a, i16u p))
      | "out", [ a; p ] -> emit (Isa.Out (r a, i16u p))
      (* pseudo-instructions *)
      | "li", [ a; (Sym _ as t) ] | "la", [ a; (Sym _ as t) ] ->
        let addr = target line t land 0xffffffff in
        emit (Isa.Lui (r a, (addr lsr 16) land 0xffff));
        emit (Isa.Ori (r a, r a, addr land 0xffff))
      | "li", [ a; v ] -> emit_li (r a) (imm line v)
      | "la", [ a; t ] ->
        let addr = target line t land 0xffffffff in
        emit (Isa.Lui (r a, (addr lsr 16) land 0xffff));
        emit (Isa.Ori (r a, r a, addr land 0xffff))
      | "push", [ a ] ->
        emit (Isa.Addi (sp, sp, -1));
        emit (Isa.Store (r a, sp, 0))
      | "pop", [ a ] ->
        emit (Isa.Load (r a, sp, 0));
        emit (Isa.Addi (sp, sp, 1))
      | "ret", [] -> emit (Isa.Jr lr)
      | "call", [ t ] -> emit (Isa.Jal (lr, branch_off line (target line t)))
      | m, _ -> fail line "unknown instruction or bad operands: %s" m)
  in
  List.iter handle items;
  assert (!pos = total);
  let symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [] in
  { words; symbols = List.sort compare symbols }

let symbol img name = List.assoc name img.symbols
