let instruction word =
  match Isa.decode word with
  | i -> Isa.to_string i
  | exception Isa.Decode_error _ -> Printf.sprintf ".word %d" word

let listing ?(from = 0) ?count words =
  let count = match count with Some c -> c | None -> Array.length words - from in
  let buf = Buffer.create (count * 24) in
  for addr = from to min (Array.length words - 1) (from + count - 1) do
    Buffer.add_string buf (Printf.sprintf "%06x:  %s\n" addr (instruction words.(addr)))
  done;
  Buffer.contents buf
