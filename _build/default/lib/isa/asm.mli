(** Two-pass assembler for AVM-32.

    Syntax, one statement per line ([;] starts a comment):

    {v
      .equ  NAME 123        ; named constant
      .word 42              ; literal data word (labels allowed)
      .space 16             ; 16 zero words
    start:
      movi  r1, 10          ; immediates: decimal, 0x.., char 'a', .equ names
      li    r1, 0x12345678  ; pseudo: expands to movi or lui+ori
      la    r1, start       ; pseudo: load a label's absolute address
      add   r1, r2, r3
      beq   r1, r2, start   ; branch targets are labels
      jal   lr, start
      in    r1, CLOCK       ; ports by symbolic name or number
      out   r1, CONSOLE
    v}

    Registers: [r0]..[r15] with aliases [fp]=r12, [sp]=r13, [lr]=r14,
    [at]=r15. Branch/jump label offsets are computed relative to the
    next instruction. *)

exception Error of { line : int; message : string }
(** Assembly-time failure, with the 1-based source line. *)

type image = {
  words : int array;  (** the memory image, starting at address 0 *)
  symbols : (string * int) list;  (** label -> address *)
}

val assemble : string -> image
(** [assemble source] assembles a full program.
    @raise Error with a line number on any syntax or range problem. *)

val symbol : image -> string -> int
(** [symbol img name] looks up a label.
    @raise Not_found if absent. *)
