lib/isa/isa.ml: List Printf
