lib/isa/disasm.ml: Array Buffer Isa Printf
