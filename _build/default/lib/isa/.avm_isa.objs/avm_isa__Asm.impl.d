lib/isa/asm.ml: Array Char Hashtbl Isa List Printf String
