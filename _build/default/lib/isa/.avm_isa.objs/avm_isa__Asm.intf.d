lib/isa/asm.mli:
