lib/isa/disasm.mli:
