lib/isa/isa.mli:
