(** Disassembler for AVM-32 memory images.

    Used by audit tooling to render divergence reports ("replay
    diverged at pc=0x41, [out r3, NET_TX]") and by tests. *)

val instruction : int -> string
(** [instruction word] decodes and renders one word, or ".word N" if it
    is not a valid instruction. *)

val listing : ?from:int -> ?count:int -> int array -> string
(** [listing words] renders an address-annotated listing of a slice of
    the image (default: all of it). *)
