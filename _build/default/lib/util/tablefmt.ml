let render ~header rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Tablefmt.render: ragged row")
    rows;
  let all = header :: rows in
  let widths = Array.make arity 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: rule :: body) @ [ "" ])

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n%s" title (render ~header rows)

let fixed ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let mb bytes = fixed (bytes /. (1024.0 *. 1024.0))
