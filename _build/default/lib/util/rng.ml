type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64: Steele, Lea & Flood, OOPSLA 2014. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  mask mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (bits /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L
let bits32 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 32)

let bytes t n =
  String.init n (fun _ -> Char.chr (Int64.to_int (Int64.logand (next_int64 t) 0xffL)))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u
