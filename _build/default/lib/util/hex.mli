(** Hexadecimal encoding of binary strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s]. *)

val decode : string -> string
(** [decode h] inverts {!encode}.
    @raise Invalid_argument on odd length or non-hex characters. *)

val short : string -> string
(** [short s] is the first 8 hex digits of [s], for display. *)
