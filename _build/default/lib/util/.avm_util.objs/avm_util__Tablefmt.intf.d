lib/util/tablefmt.mli:
