lib/util/stats.mli:
