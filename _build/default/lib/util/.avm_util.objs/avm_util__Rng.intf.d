lib/util/rng.mli:
