lib/util/hex.mli:
