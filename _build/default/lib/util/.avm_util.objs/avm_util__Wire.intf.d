lib/util/wire.mli:
