(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in the repository flows through this module so that
    experiments, workloads and key generation are reproducible from a
    seed. Not cryptographically secure; see the note in
    {!Avm_crypto.Rsa.generate} about why that is acceptable here. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] is a generator with the given seed. Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bits32 : t -> int
(** [bits32 t] is a uniform 32-bit non-negative integer. *)

val bytes : t -> int -> string
(** [bytes t n] is a string of [n] uniform bytes. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a].
    @raise Invalid_argument if [a] is empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution, used for
    packet inter-arrival times in the network simulator. *)
