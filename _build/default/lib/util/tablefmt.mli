(** Plain-text table rendering for the experiment harness output.

    The harness prints each paper table/figure as an aligned text table
    so runs can be eyeballed against the paper and diffed between
    revisions. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] lays out the rows under the header with
    column-aligned padding. Every row must have the same arity as the
    header.
    @raise Invalid_argument on ragged rows. *)

val print : title:string -> header:string list -> string list list -> unit
(** [print ~title ~header rows] writes a titled table to stdout. *)

val fixed : ?decimals:int -> float -> string
(** [fixed x] renders [x] with [decimals] (default 2) fraction digits;
    [nan] renders as ["-"]. *)

val mb : float -> string
(** [mb bytes] renders a byte count as mebibytes with two decimals. *)
