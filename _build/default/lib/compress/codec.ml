exception Corrupt of string

let magic = "AVMZ1"
let nsymbols = 256 + (Lzss.max_match - Lzss.min_match + 1) (* literals + match lengths *)
let distance_bits = 12

let symbol_of_token = function
  | Lzss.Literal c -> Char.code c
  | Lzss.Match { length; _ } -> 256 + (length - Lzss.min_match)

let compress input =
  let tokens = Lzss.tokenize input in
  let freqs = Array.make nsymbols 0 in
  List.iter (fun t -> let s = symbol_of_token t in freqs.(s) <- freqs.(s) + 1) tokens;
  (* The empty input has no tokens; give the code one dummy symbol. *)
  if tokens = [] then freqs.(0) <- 1;
  let code = Huffman.of_frequencies freqs in
  let enc = Huffman.encoder code in
  let bits = Bitio.writer () in
  Huffman.write_lengths code bits;
  List.iter
    (fun t ->
      Huffman.encode enc bits (symbol_of_token t);
      match t with
      | Lzss.Literal _ -> ()
      | Lzss.Match { distance; _ } ->
        Bitio.put_bits bits ~value:(distance - 1) ~count:distance_bits)
    tokens;
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.raw w magic;
  Avm_util.Wire.varint w (String.length input);
  Avm_util.Wire.bytes w (Bitio.contents bits);
  Avm_util.Wire.contents w

let decompress packed =
  let open Avm_util in
  let fail msg = raise (Corrupt msg) in
  let r = Wire.reader packed in
  (try if not (String.equal (Wire.read_raw r (String.length magic)) magic) then fail "bad magic"
   with Wire.Truncated -> fail "truncated header");
  let orig_len, payload =
    try
      let orig_len = Wire.read_varint r in
      let payload = Wire.read_bytes r in
      (orig_len, payload)
    with Wire.Truncated | Wire.Malformed _ -> fail "truncated payload"
  in
  let bits = Bitio.reader payload in
  let code, dec =
    try
      let code = Huffman.read_lengths ~symbols:nsymbols bits in
      (code, Huffman.decoder code)
    with Bitio.Out_of_bits -> fail "truncated code table"
  in
  ignore code;
  let buf = Buffer.create (max orig_len 16) in
  (try
     while Buffer.length buf < orig_len do
       let sym = Huffman.decode dec bits in
       if sym < 256 then Buffer.add_char buf (Char.chr sym)
       else begin
         let length = sym - 256 + Lzss.min_match in
         let distance = Bitio.get_bits bits distance_bits + 1 in
         let start = Buffer.length buf - distance in
         if start < 0 then fail "reference before start";
         for k = 0 to length - 1 do
           Buffer.add_char buf (Buffer.nth buf (start + k))
         done
       end
     done
   with
  | Bitio.Out_of_bits -> fail "truncated bitstream"
  | Failure _ -> fail "bad huffman code");
  if Buffer.length buf <> orig_len then fail "length mismatch";
  Buffer.contents buf

let ratio s =
  if String.length s = 0 then 1.0
  else float_of_int (String.length s) /. float_of_int (String.length (compress s))
