(** Bit-level I/O for the Huffman coder. Bits are packed MSB-first
    within each byte. *)

type writer

val writer : unit -> writer

val put_bit : writer -> int -> unit
(** [put_bit w b] appends bit [b] (0 or 1). *)

val put_bits : writer -> value:int -> count:int -> unit
(** [put_bits w ~value ~count] appends the low [count] bits of [value],
    most significant first. [count <= 57]. *)

val contents : writer -> string
(** Flushes (zero-padding the final byte) and returns the bitstream. *)

val bit_length : writer -> int
(** Number of bits written so far. *)

type reader

exception Out_of_bits

val reader : string -> reader
val get_bit : reader -> int
val get_bits : reader -> int -> int
(** [get_bits r count] reads [count] bits MSB-first.
    @raise Out_of_bits past the end. *)
