lib/compress/huffman.ml: Array Bitio List Queue Stdlib
