lib/compress/codec.ml: Array Avm_util Bitio Buffer Char Huffman List Lzss String Wire
