lib/compress/lzss.mli:
