lib/compress/lzss.ml: Array Buffer Char List String
