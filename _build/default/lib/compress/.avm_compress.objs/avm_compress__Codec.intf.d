lib/compress/codec.mli:
