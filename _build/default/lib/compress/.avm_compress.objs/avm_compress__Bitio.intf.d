lib/compress/bitio.mli:
