(** LZSS tokenization: a sliding-window dictionary coder.

    Input becomes a stream of literals and back-references
    [(distance, length)] into the previous {!window_size} bytes.
    Match finding uses 3-byte hash chains, as in DEFLATE. *)

val window_size : int
(** 4096 bytes. *)

val min_match : int
(** 3. *)

val max_match : int
(** 258. *)

type token =
  | Literal of char
  | Match of { distance : int; length : int }
      (** [distance] in [\[1, window_size\]], [length] in
          [\[min_match, max_match\]]. *)

val tokenize : string -> token list
(** Greedy parse of the input into tokens. *)

val untokenize : token list -> string
(** Inverse of {!tokenize} (and of any valid token stream).
    @raise Invalid_argument on a reference before the start of
    output. *)
