type writer = { buf : Buffer.t; mutable acc : int; mutable nbits : int; mutable total : int }

let writer () = { buf = Buffer.create 256; acc = 0; nbits = 0; total = 0 }

let put_bit w b =
  w.acc <- (w.acc lsl 1) lor (b land 1);
  w.nbits <- w.nbits + 1;
  w.total <- w.total + 1;
  if w.nbits = 8 then begin
    Buffer.add_char w.buf (Char.chr w.acc);
    w.acc <- 0;
    w.nbits <- 0
  end

let put_bits w ~value ~count =
  if count < 0 || count > 57 then invalid_arg "Bitio.put_bits";
  for i = count - 1 downto 0 do
    put_bit w ((value lsr i) land 1)
  done

let bit_length w = w.total

let contents w =
  let tail =
    if w.nbits = 0 then ""
    else String.make 1 (Char.chr (w.acc lsl (8 - w.nbits)))
  in
  Buffer.contents w.buf ^ tail

type reader = { input : string; mutable pos : int }

exception Out_of_bits

let reader input = { input; pos = 0 }

let get_bit r =
  let byte = r.pos / 8 in
  if byte >= String.length r.input then raise Out_of_bits;
  let bit = (Char.code r.input.[byte] lsr (7 - (r.pos mod 8))) land 1 in
  r.pos <- r.pos + 1;
  bit

let get_bits r count =
  let v = ref 0 in
  for _ = 1 to count do
    v := (!v lsl 1) lor get_bit r
  done;
  !v
