(** Lossless log/snapshot compressor: LZSS + canonical Huffman.

    Stands in for the "bzip2 + VMM-specific lossless compression" the
    paper applies to AVMM logs (§6.4); the measured "after compression"
    series in Figures 3, 4 and 9 run through this codec.

    Format: ["AVMZ1"] magic, varint original length, 4-bit Huffman code
    lengths for the 512-symbol literal/length alphabet, then the
    Huffman bitstream (each match symbol followed by 12 raw distance
    bits). *)

exception Corrupt of string
(** Raised by {!decompress} on malformed input. *)

val compress : string -> string
(** [compress s] never fails; incompressible data grows by the small
    header plus the literal-coding overhead. *)

val decompress : string -> string
(** Inverse of {!compress}.
    @raise Corrupt on data not produced by {!compress}. *)

val ratio : string -> float
(** [ratio s] is [length s / length (compress s)] — e.g. [3.2] means
    3.2x smaller. Returns 1.0 for the empty string. *)
